// Reproduces Table X: impact of thermal stability Delta on ECC-6 vs
// SuDoku. BERs are derived from the device model at each Delta; the
// paper's FIT values are printed alongside.
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"
#include "sttram/device_model.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main() {
  bench::print_header("Table X: Impact of Delta — ECC-6 vs SuDoku");

  struct Row {
    double delta;
    const char* paper_ecc6;
    const char* paper_sudoku;
    const char* paper_strength;
  };
  const Row rows[] = {
      {35, "0.092", "1.05e-4", "874x"},
      {34, "4.63", "1.15e-2", "402x"},
      {33, "1240", "8", "155x"},
  };

  std::printf("\n  %-6s %10s | %10s %8s | %12s %12s %10s | %10s %8s\n", "Delta",
              "BER(model)", "ECC-6", "paper", "Z (strict)", "Z (mech)", "paper",
              "strength", "paper");
  for (const auto& r : rows) {
    ThermalParams tp;
    tp.delta_mean = r.delta;
    const double ber = effective_ber(tp, 0.02);
    CacheParams c;
    c.ber = ber;
    const double f6 = ecc_k(c, 6).fit();
    const double fz_strict = sudoku_z_due(c, SdrModel::kStrict).fit();
    const double fz_mech = sudoku_z_due(c).fit();
    std::printf("  %-6.0f %10s | %10s %8s | %12s %12s %10s | %9.0fx %8s\n", r.delta,
                bench::sci(ber).c_str(), bench::sci(f6).c_str(), r.paper_ecc6,
                bench::sci(fz_strict).c_str(), bench::sci(fz_mech).c_str(),
                r.paper_sudoku, f6 / fz_mech, r.paper_strength);
  }
  std::printf("\n  'strength' uses the mechanistic model (what the implemented\n");
  std::printf("  controller achieves): SuDoku stays orders of magnitude stronger\n");
  std::printf("  than ECC-6 as Delta shrinks — the Table X claim. The strict\n");
  std::printf("  (static-blocking) bound collapses at Delta 33 because its\n");
  std::printf("  multi-soft-partner term saturates at high BER.\n");
  return 0;
}
