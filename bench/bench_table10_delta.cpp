// Reproduces Table X: impact of thermal stability Delta on ECC-6 vs
// SuDoku. BERs are derived from the device model at each Delta; the
// paper's FIT values are printed alongside.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"
#include "sttram/device_model.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, bench::analytical_options());
  bench::print_header("Table X: Impact of Delta — ECC-6 vs SuDoku");

  struct Row {
    double delta;
    double paper_ecc6;
    double paper_sudoku;
    double paper_strength;
  };
  const Row paper_rows[] = {
      {35, 0.092, 1.05e-4, 874},
      {34, 4.63, 1.15e-2, 402},
      {33, 1240, 8, 155},
  };

  const auto t0 = std::chrono::steady_clock::now();
  exp::JsonArray rows;
  exp::JsonArray comparison;
  std::printf("\n  %-6s %10s | %10s %8s | %12s %12s %10s | %10s %8s\n", "Delta",
              "BER(model)", "ECC-6", "paper", "Z (strict)", "Z (mech)", "paper",
              "strength", "paper");
  for (const auto& r : paper_rows) {
    ThermalParams tp;
    tp.delta_mean = r.delta;
    const double ber = effective_ber(tp, 0.02);
    CacheParams c;
    c.ber = ber;
    const double f6 = ecc_k(c, 6).fit();
    const double fz_strict = sudoku_z_due(c, SdrModel::kStrict).fit();
    const double fz_mech = sudoku_z_due(c).fit();
    std::printf("  %-6.0f %10s | %10s %8s | %12s %12s %10s | %9.0fx %8s\n", r.delta,
                bench::sci(ber).c_str(), bench::sci(f6).c_str(),
                bench::sci(r.paper_ecc6).c_str(), bench::sci(fz_strict).c_str(),
                bench::sci(fz_mech).c_str(), bench::sci(r.paper_sudoku).c_str(),
                f6 / fz_mech, (bench::fixed(r.paper_strength, 0) + "x").c_str());
    exp::JsonObject row;
    row.set("delta", r.delta)
        .set("ber_model", ber)
        .set("fit_ecc6", f6)
        .set("fit_z_strict", fz_strict)
        .set("fit_z_mechanistic", fz_mech)
        .set("strength_mechanistic", f6 / fz_mech);
    rows.push(row);
    const std::string label = "Delta=" + bench::fixed(r.delta, 0);
    comparison.push(bench::paper_row(label + " ECC-6 FIT", r.paper_ecc6, f6));
    comparison.push(
        bench::paper_row(label + " SuDoku FIT (mech)", r.paper_sudoku, fz_mech));
    comparison.push(
        bench::paper_row(label + " strength", r.paper_strength, f6 / fz_mech));
  }
  std::printf("\n  'strength' uses the mechanistic model (what the implemented\n");
  std::printf("  controller achieves): SuDoku stays orders of magnitude stronger\n");
  std::printf("  than ECC-6 as Delta shrinks — the Table X claim. The strict\n");
  std::printf("  (static-blocking) bound collapses at Delta 33 because its\n");
  std::printf("  multi-soft-partner term saturates at high BER.\n");

  exp::JsonObject config;
  config.set("scrub_interval_s", 0.02).set("sigma_fraction", 0.1);
  exp::JsonObject result;
  result.set("rows", rows).set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = 3;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "table10_delta", config, result, stats);
  return 0;
}
