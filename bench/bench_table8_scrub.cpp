// Reproduces Table VIII: FIT rate vs scrub interval (10/20/40 ms) for
// ECC-5, ECC-6 and SuDoku-Z. The BER-per-scrub values come straight from
// the paper's row (themselves consistent with Eq. 1's near-linear scaling);
// the device model's own BER at each interval is printed for comparison.
//
// The analytical rows are backed by a functional shape check: the
// continuous-time scrub engine runs at a fixed per-second fault rate under
// each interval, so a doubled interval must roughly double the corrections
// per sweep (longer exposure windows). Per-interval scrub.* / sudoku.*
// series land in the bench/out artifact's metrics section.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "exp/metrics_io.h"
#include "exp/result_sink.h"
#include "reliability/analytical.h"
#include "sttram/device_model.h"
#include "sudoku/scrubber.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args =
      bench::BenchArgs::parse(argc, argv, bench::single_threaded_options());
  bench::print_header("Table VIII: FIT-Rate vs Scrub Intervals (default: 20ms)");

  struct Row {
    double interval_s;
    double ber;            // paper's BER-per-scrub column
    const char* paper_ecc5;
    const char* paper_ecc6;
    const char* paper_z;
  };
  const Row rows[] = {
      {0.01, 2.7e-6, "6.74", "1.66e-3", "5.49e-7"},
      {0.02, 5.3e-6, "215", "0.092", "1.05e-4"},
      {0.04, 1.09e-5, "6870", "6.76", "0.04"},
  };

  exp::JsonArray fit_rows;
  std::printf("\n  %-8s %10s %12s | %10s %8s | %10s %9s | %12s %10s\n", "Scrub",
              "BER/scrub", "model BER", "ECC-5", "paper", "ECC-6", "paper",
              "SuDoku-Z(strict)", "paper");
  for (const auto& r : rows) {
    CacheParams c;
    c.ber = r.ber;
    c.scrub_interval_s = r.interval_s;
    ThermalParams tp;
    const double model_ber = effective_ber(tp, r.interval_s);
    const double fit5 = ecc_k(c, 5).fit();
    const double fit6 = ecc_k(c, 6).fit();
    const double fitz = sudoku_z_due(c, SdrModel::kStrict).fit();
    std::printf("  %4.0fms %11s %12s | %10s %8s | %10s %9s | %12s %10s\n",
                r.interval_s * 1e3, bench::sci(r.ber).c_str(),
                bench::sci(model_ber).c_str(), bench::sci(fit5).c_str(),
                r.paper_ecc5, bench::sci(fit6).c_str(), r.paper_ecc6,
                bench::sci(fitz).c_str(), r.paper_z);
    exp::JsonObject jr;
    jr.set("interval_s", r.interval_s)
        .set("ber_per_scrub", r.ber)
        .set("model_ber", model_ber)
        .set("fit_ecc5", fit5)
        .set("fit_ecc6", fit6)
        .set("fit_sudoku_z_strict", fitz);
    fit_rows.push(jr);
  }
  std::printf("\n  shape check: ECC-5 violates the 1-FIT target even at 10ms;\n");
  std::printf("  SuDoku-Z holds it at 40ms (paper's central Table VIII claim).\n");

  bench::print_header(
      "Functional shape check: corrections per sweep vs interval (fixed fault rate)");
  // Accelerated fixed per-second per-bit rate; only the interval varies, so
  // the exposure window — and with it the corrections per sweep — must
  // scale roughly linearly with the interval, mirroring Eq. 1's regime.
  const double rate = 2e-4 / 0.02;
  const std::uint32_t intervals = static_cast<std::uint32_t>(30 * args.scale);
  obs::MetricsRegistry metrics;
  exp::JsonArray scrub_rows;
  std::uint64_t total_lines = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::printf("\n  %-10s %14s %18s\n", "interval", "corrections", "corrections/sweep");
  for (const auto& r : rows) {
    SudokuConfig cfg;
    cfg.geo.num_lines = 4096;
    cfg.geo.group_size = 64;
    cfg.level = SudokuLevel::kZ;
    SudokuController ctrl(cfg);
    ctrl.attach_metrics(&metrics);
    Rng rng(args.seed_or(21));
    ctrl.format_random(rng);
    ScrubSchedule sched;
    sched.interval_s = r.interval_s;
    const auto s = run_continuous_scrub(ctrl, sched, rate, 8, intervals, rng, &metrics);
    const double per_sweep =
        s.sweeps > 0 ? static_cast<double>(s.ecc1_corrections) / s.sweeps : 0.0;
    std::printf("  %6.0fms %14llu %18.1f\n", r.interval_s * 1e3,
                static_cast<unsigned long long>(s.ecc1_corrections), per_sweep);
    exp::JsonObject jr;
    jr.set("interval_s", r.interval_s)
        .set("sweeps", s.sweeps)
        .set("ecc1_corrections", s.ecc1_corrections)
        .set("corrections_per_sweep", per_sweep)
        .set("due_lines", s.due_lines);
    scrub_rows.push(jr);
    total_lines += s.lines_scrubbed;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("\n  expected: corrections/sweep roughly doubles 10ms->20ms->40ms.\n");

  exp::JsonObject config;
  config.set("num_lines", std::uint64_t{4096})
      .set("group_size", 64)
      .set("fault_rate_per_bit_s", rate)
      .set("intervals_per_row", intervals)
      .set("seed", args.seed_or(21));
  exp::JsonObject result;
  result.set("fit_rows", fit_rows).set("scrub_shape_check", scrub_rows);

  exp::RunStats stats;
  stats.trials = total_lines;
  stats.wall_seconds = wall;
  stats.threads = 1;
  stats.shards = 1;
  const exp::ResultSink sink(args.out_dir);
  const auto path = sink.write("table8_scrub", config, result, stats, &metrics);
  std::printf("  artifact: %s\n", path.string().c_str());
  if (args.json) {
    const auto root =
        exp::ResultSink::make_root("table8_scrub", config, result, stats, &metrics);
    std::printf("%s\n", root.str(/*pretty=*/true).c_str());
  }
  return 0;
}
