// Reproduces Table VIII: FIT rate vs scrub interval (10/20/40 ms) for
// ECC-5, ECC-6 and SuDoku-Z. The BER-per-scrub values come straight from
// the paper's row (themselves consistent with Eq. 1's near-linear scaling);
// the device model's own BER at each interval is printed for comparison.
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"
#include "sttram/device_model.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main() {
  bench::print_header("Table VIII: FIT-Rate vs Scrub Intervals (default: 20ms)");

  struct Row {
    double interval_s;
    double ber;            // paper's BER-per-scrub column
    const char* paper_ecc5;
    const char* paper_ecc6;
    const char* paper_z;
  };
  const Row rows[] = {
      {0.01, 2.7e-6, "6.74", "1.66e-3", "5.49e-7"},
      {0.02, 5.3e-6, "215", "0.092", "1.05e-4"},
      {0.04, 1.09e-5, "6870", "6.76", "0.04"},
  };

  std::printf("\n  %-8s %10s %12s | %10s %8s | %10s %9s | %12s %10s\n", "Scrub",
              "BER/scrub", "model BER", "ECC-5", "paper", "ECC-6", "paper",
              "SuDoku-Z(strict)", "paper");
  for (const auto& r : rows) {
    CacheParams c;
    c.ber = r.ber;
    c.scrub_interval_s = r.interval_s;
    ThermalParams tp;
    const double model_ber = effective_ber(tp, r.interval_s);
    std::printf("  %4.0fms %11s %12s | %10s %8s | %10s %9s | %12s %10s\n",
                r.interval_s * 1e3, bench::sci(r.ber).c_str(),
                bench::sci(model_ber).c_str(), bench::sci(ecc_k(c, 5).fit()).c_str(),
                r.paper_ecc5, bench::sci(ecc_k(c, 6).fit()).c_str(), r.paper_ecc6,
                bench::sci(sudoku_z_due(c, SdrModel::kStrict).fit()).c_str(), r.paper_z);
  }
  std::printf("\n  shape check: ECC-5 violates the 1-FIT target even at 10ms;\n");
  std::printf("  SuDoku-Z holds it at 40ms (paper's central Table VIII claim).\n");
  return 0;
}
