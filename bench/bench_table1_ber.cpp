// Reproduces Table I: thermal stability vs bit-error rate over a 20 ms
// scrub interval, for Delta = 60 (32 nm) and Delta = 35 (22 nm) at
// sigma = 10%. Also prints the §I headline numbers (18-day cell MTTF at
// Delta 35; ~1 hour population-average failure time; expected faulty bits
// in a 64 MB cache per interval).
#include <cstdio>

#include "bench_util.h"
#include "sttram/device_model.h"

using namespace sudoku;

int main() {
  bench::print_header("Table I: Thermal Stability vs Error Rate (20ms period)");
  bench::print_subnote("paper: Delta=60 -> 2.7e-12, Delta=35 -> 5.3e-6 (recomputed from [5])");

  std::printf("\n  %-28s %14s %14s\n", "Mean Thermal Stability", "60 (32nm)", "35 (22nm)");
  std::printf("  %-28s", "BER p_cell (20ms, sigma=10%)");
  for (const double delta : {60.0, 35.0}) {
    ThermalParams p;
    p.delta_mean = delta;
    std::printf(" %14s", bench::sci(effective_ber(p, 0.02)).c_str());
  }
  std::printf("\n");

  bench::print_header("Section I headline numbers");
  ThermalParams p35;
  std::printf("  cell MTTF at Delta=35 (no variation): %.1f days   (paper: ~18 days)\n",
              mttf_cell_at_mean_delta(p35) / 86400.0);
  std::printf("  population-average cell failure time: %.2f hours  (paper: ~1 hour)\n",
              1.0 / mean_flip_rate(p35) / 3600.0);
  const double ber = effective_ber(p35, 0.02);
  const double bits = (64.0 * 1024 * 1024 / 64) * 512;
  std::printf("  expected faulty bits in 64MB / 20ms:  %.0f        (paper: 2880)\n",
              ber * bits);
  std::printf("  corresponding BER:                    %s    (paper: 5.3e-6)\n",
              bench::sci(ber).c_str());

  std::printf("\n  note: the paper's BERs are recomputed from Naeimi et al. figures;\n"
              "  our Eq.1 + Gauss-Hermite integration over Delta~N(mu,0.1mu) lands\n"
              "  within the same order of magnitude (see EXPERIMENTS.md).\n");
  return 0;
}
