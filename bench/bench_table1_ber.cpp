// Reproduces Table I: thermal stability vs bit-error rate over a 20 ms
// scrub interval, for Delta = 60 (32 nm) and Delta = 35 (22 nm) at
// sigma = 10%. Also prints the §I headline numbers (18-day cell MTTF at
// Delta 35; ~1 hour population-average failure time; expected faulty bits
// in a 64 MB cache per interval).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "sttram/device_model.h"

using namespace sudoku;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, bench::analytical_options());
  bench::print_header("Table I: Thermal Stability vs Error Rate (20ms period)");
  bench::print_subnote("paper: Delta=60 -> 2.7e-12, Delta=35 -> 5.3e-6 (recomputed from [5])");

  const auto t0 = std::chrono::steady_clock::now();
  const double paper_ber[] = {2.7e-12, 5.3e-6};
  exp::JsonArray rows;
  exp::JsonArray comparison;
  std::printf("\n  %-28s %14s %14s\n", "Mean Thermal Stability", "60 (32nm)", "35 (22nm)");
  std::printf("  %-28s", "BER p_cell (20ms, sigma=10%)");
  int i = 0;
  for (const double delta : {60.0, 35.0}) {
    ThermalParams p;
    p.delta_mean = delta;
    const double ber = effective_ber(p, 0.02);
    std::printf(" %14s", bench::sci(ber).c_str());
    exp::JsonObject row;
    row.set("delta_mean", delta).set("ber_20ms", ber).set("paper_ber", paper_ber[i]);
    rows.push(row);
    comparison.push(bench::paper_row("BER at Delta=" + bench::fixed(delta, 0),
                                     paper_ber[i], ber));
    ++i;
  }
  std::printf("\n");

  bench::print_header("Section I headline numbers");
  ThermalParams p35;
  const double mttf_days = mttf_cell_at_mean_delta(p35) / 86400.0;
  std::printf("  cell MTTF at Delta=35 (no variation): %.1f days   (paper: ~18 days)\n",
              mttf_days);
  const double pop_avg_hours = 1.0 / mean_flip_rate(p35) / 3600.0;
  std::printf("  population-average cell failure time: %.2f hours  (paper: ~1 hour)\n",
              pop_avg_hours);
  const double ber = effective_ber(p35, 0.02);
  const double bits = (64.0 * 1024 * 1024 / 64) * 512;
  const double faulty_bits = ber * bits;
  std::printf("  expected faulty bits in 64MB / 20ms:  %.0f        (paper: 2880)\n",
              faulty_bits);
  std::printf("  corresponding BER:                    %s    (paper: 5.3e-6)\n",
              bench::sci(ber).c_str());

  std::printf("\n  note: the paper's BERs are recomputed from Naeimi et al. figures;\n"
              "  our Eq.1 + Gauss-Hermite integration over Delta~N(mu,0.1mu) lands\n"
              "  within the same order of magnitude (see EXPERIMENTS.md).\n");

  comparison.push(bench::paper_row("cell MTTF at Delta=35 (days)", 18.0, mttf_days));
  comparison.push(
      bench::paper_row("population-average failure time (hours)", 1.0, pop_avg_hours));
  comparison.push(bench::paper_row("faulty bits in 64MB per 20ms", 2880.0, faulty_bits));

  exp::JsonObject config;
  config.set("scrub_interval_s", 0.02).set("sigma_fraction", 0.1);
  exp::JsonObject result;
  result.set("rows", rows)
      .set("mttf_cell_delta35_days", mttf_days)
      .set("population_average_failure_hours", pop_avg_hours)
      .set("faulty_bits_64mb_per_interval", faulty_bits)
      .set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = 2;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "table1_ber", config, result, stats);
  return 0;
}
