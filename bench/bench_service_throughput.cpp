// Concurrent-service throughput (docs/service.md): drive the bank-sharded
// resilient-memory service with N closed-loop clients (plus one open-loop
// Poisson point) and sweep clients × banks × error rate for SuDoku-Z and
// the Hi-ECC baseline. Reports QPS, read-latency quantiles and the repair
// queue's depth watermark per point.
//
// Unlike the table/figure benches this artifact is host-timing: QPS and
// latency depend on the machine and the scheduler, so repro.sh checks only
// its *schema* against the golden copy (--ignore on the measured fields)
// and CI runs the --quick sweep under TSan for the data-race guarantee
// rather than the numbers.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exp/metrics_io.h"
#include "service/load_gen.h"
#include "service/service.h"

using namespace sudoku;

namespace {

struct Point {
  std::string scheme;   // "sudoku-z" | "hiecc"
  std::string mode;     // "closed" | "open"
  std::uint32_t clients;
  std::uint32_t banks;
  double ber;           // per bit per injection interval
};

BitVec pattern_line(std::uint32_t bank, std::uint64_t line) {
  BitVec data(512);
  std::uint64_t state = (static_cast<std::uint64_t>(bank) << 40) ^ line;
  for (std::uint32_t i = 0; i < 512; i += 64) {
    data.set_bits(i, 64, splitmix64_next(state));
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs::Options opts;
  opts.threads = false;
  opts.checkpoint = false;
  opts.scale = false;
  opts.load = true;
  opts.extra_flags = {"--quick"};
  const auto args = bench::BenchArgs::parse(argc, argv, opts);
  const bool quick = args.has_extra("--quick");

  const std::uint64_t lines_per_bank = quick ? 4096 : 16384;
  const std::uint32_t duration_ms =
      args.duration_ms != 0 ? args.duration_ms : (quick ? 60u : 200u);
  const std::uint64_t seed = args.seed_or(1);

  std::vector<std::uint32_t> client_sweep =
      quick ? std::vector<std::uint32_t>{1, 2} : std::vector<std::uint32_t>{1, 2, 4, 8};
  std::vector<std::uint32_t> bank_sweep =
      quick ? std::vector<std::uint32_t>{2} : std::vector<std::uint32_t>{1, 8};
  if (args.clients != 0) client_sweep = {args.clients};
  if (args.banks != 0) bank_sweep = {args.banks};
  const std::uint32_t top_clients = client_sweep.back();
  const std::uint32_t top_banks = bank_sweep.back();

  std::vector<Point> points;
  for (const auto banks : bank_sweep) {
    for (const auto clients : client_sweep) {
      points.push_back({"sudoku-z", "closed", clients, banks, 1e-5});
    }
  }
  for (const double ber : {0.0, 1e-4}) {  // 1e-5 already covered above
    points.push_back({"sudoku-z", "closed", top_clients, top_banks, ber});
  }
  points.push_back({"hiecc", "closed", top_clients, top_banks, 1e-5});
  points.push_back({"sudoku-z", "open", top_clients, top_banks, 1e-5});

  bench::print_header(
      "Concurrent service throughput: clients x banks x error rate");
  bench::print_subnote(
      "host-timing bench: numbers vary with machine load; schema is golden");
  std::printf("\n  %-9s %-6s %7s %5s %8s %10s %9s %9s %9s %6s\n", "scheme",
              "mode", "clients", "banks", "ber", "qps", "p50_ns", "p99_ns",
              "p999_ns", "qmax");

  exp::JsonArray rows;
  obs::MetricsRegistry merged;
  exp::RunStats run_stats;
  run_stats.threads = top_clients;
  run_stats.shards = points.size();
  const auto t0 = std::chrono::steady_clock::now();
  double qps_1_client = 0.0, qps_top_client = 0.0;

  for (const auto& p : points) {
    service::ServiceConfig scfg;
    scfg.banks = p.banks;
    scfg.repair_workers = 1;
    service::MemoryService svc(scfg, [&](std::uint32_t) {
      if (p.scheme == "hiecc") {
        return service::make_hiecc_backend(lines_per_bank);
      }
      SudokuConfig cfg;
      cfg.geo.num_lines = lines_per_bank;
      cfg.geo.group_size = 64;
      cfg.level = SudokuLevel::kZ;
      return service::make_sudoku_backend(cfg);
    });
    svc.format(pattern_line);

    service::LoadConfig lcfg;
    lcfg.clients = p.clients;
    lcfg.open_loop = p.mode == "open";
    lcfg.open_loop_rate = 200000.0;
    lcfg.duration_ms = duration_ms;
    lcfg.seed = seed;
    if (p.ber > 0.0) {
      lcfg.ber_per_interval = p.ber;
      lcfg.inject_interval_ms = 10;
    }
    const service::LoadReport rep = service::run_load(svc, lcfg);
    merged += rep.metrics;
    run_stats.trials += rep.ops;

    if (p.scheme == "sudoku-z" && p.mode == "closed" && p.banks == top_banks &&
        p.ber == 1e-5) {
      if (p.clients == 1) qps_1_client = rep.qps;
      if (p.clients == top_clients) qps_top_client = rep.qps;
    }

    std::printf("  %-9s %-6s %7u %5u %8s %10.0f %9.0f %9.0f %9.0f %6llu\n",
                p.scheme.c_str(), p.mode.c_str(), p.clients, p.banks,
                bench::sci(p.ber).c_str(), rep.qps, rep.read_latency_ns.p50,
                rep.read_latency_ns.p99, rep.read_latency_ns.p999,
                static_cast<unsigned long long>(rep.queue_depth_max));

    exp::JsonObject row;
    row.set("scheme", p.scheme)
        .set("mode", p.mode)
        .set("clients", p.clients)
        .set("banks", p.banks)
        .set("lines_per_bank", lines_per_bank)
        .set("ber", p.ber)
        .set("duration_ms", duration_ms);
    exp::JsonObject measured;
    measured.set("ops", rep.ops)
        .set("reads", rep.reads)
        .set("writes", rep.writes)
        .set("due_reads", rep.due_reads)
        .set("qps", rep.qps)
        .set("p50_ns", rep.read_latency_ns.p50)
        .set("p99_ns", rep.read_latency_ns.p99)
        .set("p999_ns", rep.read_latency_ns.p999)
        .set("max_ns", rep.read_latency_ns.max)
        .set("queue_depth_max", rep.queue_depth_max)
        .set("wall_seconds", rep.wall_seconds);
    row.set("measured", measured);
    rows.push(row);
  }

  if (qps_1_client > 0.0 && top_clients > 1) {
    std::printf("\n  scaling %u -> %u clients (banks=%u, ber=1e-5): %.2fx\n",
                1u, top_clients, top_banks, qps_top_client / qps_1_client);
    bench::print_subnote(
        "acceptance: >= 2.5x on an 8-core host; meaningless on fewer cores");
  }

  run_stats.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

  exp::JsonObject config;
  config.set("quick", quick)
      .set("lines_per_bank", lines_per_bank)
      .set("group_size", 64)
      .set("duration_ms", duration_ms)
      .set("open_loop_rate", 200000.0)
      .set("inject_interval_ms", 10)
      .set("seed", seed);
  exp::JsonObject result;
  result.set("rows", rows);
  bench::emit_artifact(args, "service_throughput", config, result, run_stats,
                       &merged);
  return 0;
}
