// Reproduces Table IX: sensitivity of SuDoku's FIT rate to cache size
// (32 / 64 / 128 MB). FIT scales linearly with the number of lines.
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main() {
  bench::print_header("Table IX: Sensitivity to Cache Size");

  const char* paper[] = {"0.52e-4", "1.05e-4", "2.1e-4"};
  std::printf("\n  %-10s %18s %18s %12s\n", "Cache", "FIT (strict)",
              "FIT (mechanistic)", "paper");
  int i = 0;
  double prev_strict = 0;
  for (const std::uint64_t mb : {32, 64, 128}) {
    CacheParams c;
    c.num_lines = mb * (1ull << 20) / 64;
    const double strict = sudoku_z_due(c, SdrModel::kStrict).fit();
    const double mech = sudoku_z_due(c).fit();
    std::printf("  %3lluMB %23s %18s %12s", static_cast<unsigned long long>(mb),
                bench::sci(strict).c_str(), bench::sci(mech).c_str(), paper[i++]);
    if (prev_strict > 0) std::printf("   (x%.2f vs previous)", strict / prev_strict);
    std::printf("\n");
    prev_strict = strict;
  }
  std::printf("\n  linear-in-size scaling reproduced (paper: 0.5x / 1x / 2x).\n");
  return 0;
}
