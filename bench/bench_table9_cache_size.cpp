// Reproduces Table IX: sensitivity of SuDoku's FIT rate to cache size
// (32 / 64 / 128 MB). FIT scales linearly with the number of lines.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, bench::analytical_options());
  bench::print_header("Table IX: Sensitivity to Cache Size");

  const double paper[] = {0.52e-4, 1.05e-4, 2.1e-4};
  const auto t0 = std::chrono::steady_clock::now();
  exp::JsonArray rows;
  exp::JsonArray comparison;
  std::printf("\n  %-10s %18s %18s %12s\n", "Cache", "FIT (strict)",
              "FIT (mechanistic)", "paper");
  int i = 0;
  double prev_strict = 0;
  for (const std::uint64_t mb : {32, 64, 128}) {
    CacheParams c;
    c.num_lines = mb * (1ull << 20) / 64;
    const double strict = sudoku_z_due(c, SdrModel::kStrict).fit();
    const double mech = sudoku_z_due(c).fit();
    std::printf("  %3lluMB %23s %18s %12s", static_cast<unsigned long long>(mb),
                bench::sci(strict).c_str(), bench::sci(mech).c_str(),
                bench::sci(paper[i]).c_str());
    if (prev_strict > 0) std::printf("   (x%.2f vs previous)", strict / prev_strict);
    std::printf("\n");
    exp::JsonObject row;
    row.set("cache_mb", mb)
        .set("fit_strict", strict)
        .set("fit_mechanistic", mech)
        .set("ratio_vs_previous", prev_strict > 0 ? strict / prev_strict : 0.0);
    rows.push(row);
    comparison.push(bench::paper_row(
        std::to_string(mb) + "MB FIT (strict)", paper[i], strict));
    prev_strict = strict;
    ++i;
  }
  std::printf("\n  linear-in-size scaling reproduced (paper: 0.5x / 1x / 2x).\n");

  exp::JsonObject config;
  CacheParams base;
  config.set("ber", base.ber).set("group_size", base.group_size);
  exp::JsonObject result;
  result.set("rows", rows).set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = 3;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "table9_cache_size", config, result, stats);
  return 0;
}
