// Feature ablation across the SuDoku ladder: X (RAID-4 only), Y (+SDR),
// Z (+skewed hashing), and the paper's footnote-4 variant (skewed hashing
// WITHOUT SDR). Analytical FITs at the operating point plus a functional
// Monte-Carlo bake-off at accelerated BER.
//
// The bake-off runs on the src/exp engine: trials shard across the
// work-stealing pool with per-trial seed streams (bit-identical for any
// --threads value), and with --checkpoint=DIR each level's finished shards
// persist under their own scope so an interrupted sweep resumes mid-ladder.
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "exp/checkpoint.h"
#include "exp/mc_experiments.h"
#include "exp/metrics_io.h"
#include "reliability/analytical.h"
#include "reliability/montecarlo.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  exp::install_signal_handlers();
  const std::uint64_t intervals = 400 * args.scale;

  bench::print_header("Ablation: which mechanism buys how much reliability?");
  CacheParams c;
  const double fit_x = sudoku_x_due(c).fit();
  const double fit_y = sudoku_y_due(c).fit();
  const double fit_z_no_sdr = sudoku_z_no_sdr(c).fit();
  const double fit_z_strict = sudoku_z_due(c, SdrModel::kStrict).fit();
  const double fit_z_mech = sudoku_z_due(c).fit();
  std::printf("\n  analytical FIT at the paper's operating point (BER 5.3e-6):\n");
  std::printf("  %-34s %14s\n", "SuDoku-X (ECC-1+CRC+RAID-4)", bench::sci(fit_x).c_str());
  std::printf("  %-34s %14s\n", "SuDoku-Y (+SDR, mechanistic)", bench::sci(fit_y).c_str());
  std::printf("  %-34s %14s   (paper footnote 4: ~4e6)\n", "Z-hashing WITHOUT SDR",
              bench::sci(fit_z_no_sdr).c_str());
  std::printf("  %-34s %14s\n", "SuDoku-Z (+skewed hash, strict)",
              bench::sci(fit_z_strict).c_str());
  std::printf("  %-34s %14s\n", "SuDoku-Z (mechanistic)", bench::sci(fit_z_mech).c_str());

  bench::print_header(
      "Functional Monte-Carlo bake-off (256 KB, 64-line groups, BER 2.5e-4)");
  bench::print_subnote("BER chosen so X saturates, Y fails measurably, Z survives —");
  bench::print_subnote("the orders-of-magnitude ladder in one observable regime.");

  std::optional<exp::CheckpointStore> store;
  if (args.checkpointing()) store.emplace(args.checkpoint_dir, args.resume);
  exp::ShardRunReport report;

  exp::RunStats total_stats;
  obs::MetricsRegistry total_metrics;
  exp::JsonArray rows;
  for (const auto level : {SudokuLevel::kX, SudokuLevel::kY, SudokuLevel::kZ}) {
    McConfig cfg;
    cfg.cache.num_lines = 1u << 12;
    cfg.cache.group_size = 64;
    cfg.cache.ber = 2.5e-4;
    cfg.level = level;
    cfg.max_intervals = intervals;
    cfg.seed = args.seed_or(5);

    exp::ExpOptions opts;
    opts.threads = args.threads;
    opts.checkpoint = store ? &*store : nullptr;
    opts.checkpoint_scope = std::string("ablation_features.") + to_string(level);
    opts.report = &report;
    opts.fleet = args.fleet;

    exp::RunStats stats;
    const auto r = exp::run_montecarlo_parallel(cfg, opts, &stats);
    bench::exit_if_interrupted(args);
    total_stats += stats;
    total_metrics += r.metrics;

    std::printf("  %-9s due_lines=%-6llu failure_intervals=%llu/%llu  sdr=%llu hash2=%llu\n",
                to_string(level), static_cast<unsigned long long>(r.due_lines),
                static_cast<unsigned long long>(r.failure_intervals),
                static_cast<unsigned long long>(r.intervals),
                static_cast<unsigned long long>(r.sdr_repairs),
                static_cast<unsigned long long>(r.hash2_invocations));
    exp::JsonObject row;
    row.set("level", to_string(level))
        .set("intervals", r.intervals)
        .set("faults_injected", r.faults_injected)
        .set("due_lines", r.due_lines)
        .set("sdc_lines", r.sdc_lines)
        .set("failure_intervals", r.failure_intervals)
        .set("sdr_repairs", r.sdr_repairs)
        .set("hash2_invocations", r.hash2_invocations);
    rows.push(row);
  }
  std::printf("\n  each rung of the ladder cuts failures by orders of magnitude\n");
  std::printf("  (X >> Y >> Z), reproducing the paper's §III->§V progression.\n");

  exp::JsonArray comparison;
  comparison.push(
      bench::paper_row("Z-hashing WITHOUT SDR FIT (footnote 4)", 4e6, fit_z_no_sdr));
  comparison.push(bench::paper_row("SuDoku-Z FIT (strict)", 1.05e-4, fit_z_strict));

  exp::JsonObject analytical;
  analytical.set("fit_x", fit_x)
      .set("fit_y", fit_y)
      .set("fit_z_no_sdr", fit_z_no_sdr)
      .set("fit_z_strict", fit_z_strict)
      .set("fit_z_mechanistic", fit_z_mech);

  exp::JsonObject config;
  config.set("num_lines", std::uint64_t{1u << 12})
      .set("group_size", 64)
      .set("ber", 2.5e-4)
      .set("intervals_per_level", intervals)
      .set("seed", args.seed_or(5))
      .set("scale", args.scale);
  exp::JsonObject result;
  result.set("analytical", analytical)
      .set("bakeoff", rows)
      .set("paper_comparison", comparison);

  bench::emit_artifact(args, "ablation_features", config, result, total_stats,
                       &total_metrics, &report);
  if (store || report.degraded()) {
    std::printf("  fault tolerance: %llu/%llu shards resumed, %llu retries, "
                "%llu quarantined (%llu trials)\n",
                static_cast<unsigned long long>(report.shards_resumed),
                static_cast<unsigned long long>(report.shards_total),
                static_cast<unsigned long long>(report.shards_retried),
                static_cast<unsigned long long>(report.shards_quarantined),
                static_cast<unsigned long long>(report.trials_quarantined));
  }
  return 0;
}
