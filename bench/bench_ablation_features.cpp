// Feature ablation across the SuDoku ladder: X (RAID-4 only), Y (+SDR),
// Z (+skewed hashing), and the paper's footnote-4 variant (skewed hashing
// WITHOUT SDR). Analytical FITs at the operating point plus a functional
// Monte-Carlo bake-off at accelerated BER.
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"
#include "reliability/montecarlo.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const std::uint64_t intervals = argc > 1 ? std::stoull(argv[1]) : 400;

  bench::print_header("Ablation: which mechanism buys how much reliability?");
  CacheParams c;
  std::printf("\n  analytical FIT at the paper's operating point (BER 5.3e-6):\n");
  std::printf("  %-34s %14s\n", "SuDoku-X (ECC-1+CRC+RAID-4)",
              bench::sci(sudoku_x_due(c).fit()).c_str());
  std::printf("  %-34s %14s\n", "SuDoku-Y (+SDR, mechanistic)",
              bench::sci(sudoku_y_due(c).fit()).c_str());
  std::printf("  %-34s %14s   (paper footnote 4: ~4e6)\n",
              "Z-hashing WITHOUT SDR",
              bench::sci(sudoku_z_no_sdr(c).fit()).c_str());
  std::printf("  %-34s %14s\n", "SuDoku-Z (+skewed hash, strict)",
              bench::sci(sudoku_z_due(c, SdrModel::kStrict).fit()).c_str());
  std::printf("  %-34s %14s\n", "SuDoku-Z (mechanistic)",
              bench::sci(sudoku_z_due(c).fit()).c_str());

  bench::print_header(
      "Functional Monte-Carlo bake-off (256 KB, 64-line groups, BER 2.5e-4)");
  bench::print_subnote("BER chosen so X saturates, Y fails measurably, Z survives —");
  bench::print_subnote("the orders-of-magnitude ladder in one observable regime.");
  for (const auto level : {SudokuLevel::kX, SudokuLevel::kY, SudokuLevel::kZ}) {
    McConfig cfg;
    cfg.cache.num_lines = 1u << 12;
    cfg.cache.group_size = 64;
    cfg.cache.ber = 2.5e-4;
    cfg.level = level;
    cfg.max_intervals = intervals;
    cfg.seed = 5;
    const auto r = run_montecarlo(cfg);
    std::printf("  %-9s due_lines=%-6llu failure_intervals=%llu/%llu  sdr=%llu hash2=%llu\n",
                to_string(level), static_cast<unsigned long long>(r.due_lines),
                static_cast<unsigned long long>(r.failure_intervals),
                static_cast<unsigned long long>(r.intervals),
                static_cast<unsigned long long>(r.sdr_repairs),
                static_cast<unsigned long long>(r.hash2_invocations));
  }
  std::printf("\n  each rung of the ladder cuts failures by orders of magnitude\n");
  std::printf("  (X >> Y >> Z), reproducing the paper's §III->§V progression.\n");
  return 0;
}
