// Reproduces Table IV: probability of SRAM cache failure at low Vmin
// (per-cell failure probability 1e-3), for uniform ECC-7/8/9 and SuDoku.
// The ECC rows follow the paper's accounting exactly (binomial over the
// 512-bit dataword). The paper's SuDoku row (3.8e-10) is not derivable
// from the transient-fault machinery — at BER 1e-3 a 512-line RAID-Group
// holds ~46 multi-bit lines — so we print the paper's value alongside what
// each of our models actually yields, and flag the discrepancy (see
// EXPERIMENTS.md: Vmin faults are *permanent and locatable*, which changes
// the repair model entirely).
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main() {
  bench::print_header("Table IV: Probability of SRAM Cache Failure (BER = 1e-3, Vmin < 500mV)");

  CacheParams c;
  c.ber = 1e-3;

  const double paper[] = {0.11, 0.0066, 3.5e-4};
  std::printf("\n  %-10s %16s %12s\n", "Scheme", "P(cache fail)", "paper");
  for (int k = 7; k <= 9; ++k) {
    std::printf("  ECC-%-6d %16s %12s\n", k,
                bench::sci(sram_vmin_cache_failure_ecc(c, k)).c_str(),
                bench::sci(paper[k - 7]).c_str());
  }
  std::printf("  %-10s %16s %12s\n", "SuDoku", "(see below)", "3.8e-10");

  std::printf(
      "\n  SuDoku at BER 1e-3 under the *transient* model (our Z machinery,\n"
      "  512-line groups): P ~= %s -- the groups saturate with multi-bit\n"
      "  lines, so the paper's 3.8e-10 must assume the permanent-fault\n"
      "  regime where positions are known from boot-time test/parity and\n"
      "  repair degenerates to erasure decoding. With known positions a\n"
      "  line is repairable for any fault count and failure needs two\n"
      "  heavily-overlapping lines; the paper gives no formula for this.\n",
      bench::sci(sudoku_z_due(c).p_interval()).c_str());
  std::printf(
      "  Qualitative claim preserved: SuDoku's detection(CRC)+parity repair\n"
      "  avoids both uniform ECC-8 storage and runtime Vmin testing.\n");
  return 0;
}
