// Reproduces Table IV: probability of SRAM cache failure at low Vmin
// (per-cell failure probability 1e-3), for uniform ECC-7/8/9 and SuDoku.
// The ECC rows follow the paper's accounting exactly (binomial over the
// 512-bit dataword). The paper's SuDoku row (3.8e-10) is not derivable
// from the transient-fault machinery — at BER 1e-3 a 512-line RAID-Group
// holds ~46 multi-bit lines — so we print the paper's value alongside what
// each of our models actually yields, and flag the discrepancy (see
// EXPERIMENTS.md: Vmin faults are *permanent and locatable*, which changes
// the repair model entirely).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, bench::analytical_options());
  bench::print_header("Table IV: Probability of SRAM Cache Failure (BER = 1e-3, Vmin < 500mV)");

  CacheParams c;
  c.ber = 1e-3;

  const auto t0 = std::chrono::steady_clock::now();
  const double paper[] = {0.11, 0.0066, 3.5e-4};
  exp::JsonArray rows;
  exp::JsonArray comparison;
  std::printf("\n  %-10s %16s %12s\n", "Scheme", "P(cache fail)", "paper");
  for (int k = 7; k <= 9; ++k) {
    const double p = sram_vmin_cache_failure_ecc(c, k);
    std::printf("  ECC-%-6d %16s %12s\n", k, bench::sci(p).c_str(),
                bench::sci(paper[k - 7]).c_str());
    exp::JsonObject row;
    row.set("ecc_k", k).set("p_cache_fail", p);
    rows.push(row);
    comparison.push(bench::paper_row("ECC-" + std::to_string(k) + " P(cache fail)",
                                     paper[k - 7], p));
  }
  std::printf("  %-10s %16s %12s\n", "SuDoku", "(see below)", "3.8e-10");

  const double sudoku_transient = sudoku_z_due(c).p_interval();
  std::printf(
      "\n  SuDoku at BER 1e-3 under the *transient* model (our Z machinery,\n"
      "  512-line groups): P ~= %s -- the groups saturate with multi-bit\n"
      "  lines, so the paper's 3.8e-10 must assume the permanent-fault\n"
      "  regime where positions are known from boot-time test/parity and\n"
      "  repair degenerates to erasure decoding. With known positions a\n"
      "  line is repairable for any fault count and failure needs two\n"
      "  heavily-overlapping lines; the paper gives no formula for this.\n",
      bench::sci(sudoku_transient).c_str());
  std::printf(
      "  Qualitative claim preserved: SuDoku's detection(CRC)+parity repair\n"
      "  avoids both uniform ECC-8 storage and runtime Vmin testing.\n");
  comparison.push(bench::paper_row("SuDoku P(cache fail), transient model vs paper",
                                   3.8e-10, sudoku_transient));

  exp::JsonObject config;
  config.set("ber", c.ber).set("num_lines", c.num_lines).set("group_size", c.group_size);
  exp::JsonObject result;
  result.set("rows", rows)
      .set("sudoku_transient_model_p", sudoku_transient)
      .set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = 3;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "table4_sram_vmin", config, result, stats);
  return 0;
}
