// §VII-E / §II-D footnote: the scrub sweep must fit in a few percent of
// cache bandwidth. Prints the bandwidth cost of the sweep across scrub
// intervals and cache sizes, and runs the continuous-time scrub engine to
// show the sweep keeping up with fault arrival at the paper's rates.
#include <cstdio>

#include "bench_util.h"
#include "sttram/device_model.h"
#include "sudoku/scrubber.h"

using namespace sudoku;

int main() {
  bench::print_header("Scrub bandwidth (§VII-E): sweep cost vs interval and size");
  std::printf("\n  %-10s %-10s %14s\n", "cache", "interval", "bank bandwidth");
  for (const std::uint64_t mb : {32ull, 64ull, 128ull}) {
    for (const double interval_ms : {10.0, 20.0, 40.0}) {
      ScrubSchedule s;
      s.interval_s = interval_ms / 1000.0;
      const std::uint64_t lines = mb * (1ull << 20) / 64;
      std::printf("  %6lluMB %8.0fms %13.2f%%\n", static_cast<unsigned long long>(mb),
                  interval_ms, 100.0 * s.bandwidth_fraction(lines));
    }
  }
  std::printf("\n  paper: 20ms keeps the 64MB sweep within 'a few percent'.\n");

  bench::print_header("Continuous-time scrub engine at an accelerated fault rate");
  SudokuConfig cfg;
  cfg.geo.num_lines = 4096;
  cfg.geo.group_size = 64;
  cfg.level = SudokuLevel::kZ;
  SudokuController ctrl(cfg);
  Rng rng(1);
  ctrl.format_random(rng);
  ScrubSchedule sched;
  // 1e-4 per bit per 20ms interval, delivered continuously.
  const auto stats = run_continuous_scrub(ctrl, sched, 1e-4 / 0.02, 16, 200, rng);
  std::printf("\n  simulated time        : %.2f s (%llu sweeps)\n",
              stats.simulated_seconds, static_cast<unsigned long long>(stats.sweeps));
  std::printf("  faults injected       : %llu\n",
              static_cast<unsigned long long>(stats.faults_injected));
  std::printf("  ECC-1 corrections     : %llu\n",
              static_cast<unsigned long long>(stats.ecc1_corrections));
  std::printf("  RAID-4 / SDR repairs  : %llu / %llu\n",
              static_cast<unsigned long long>(stats.raid4_repairs),
              static_cast<unsigned long long>(stats.sdr_repairs));
  std::printf("  DUE lines             : %llu\n",
              static_cast<unsigned long long>(stats.due_lines));
  // Faults that arrived after a line's last visit are still latent; drain
  // them with one final sweep before auditing the parity invariant.
  ctrl.scrub_all();
  std::printf("  parities consistent   : %s (after final sweep)\n",
              ctrl.parities_consistent() ? "yes" : "NO");
  return 0;
}
