// §VII-E / §II-D footnote: the scrub sweep must fit in a few percent of
// cache bandwidth. Prints the bandwidth cost of the sweep across scrub
// intervals and cache sizes, and runs the continuous-time scrub engine to
// show the sweep keeping up with fault arrival at the paper's rates. The
// engine's scrub.* series and the controller's sudoku.* instruments are
// recorded into the bench/out artifact's metrics section.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "exp/metrics_io.h"
#include "exp/result_sink.h"
#include "sttram/device_model.h"
#include "sudoku/scrubber.h"

using namespace sudoku;

int main(int argc, char** argv) {
  const auto args =
      bench::BenchArgs::parse(argc, argv, bench::single_threaded_options());
  bench::print_header("Scrub bandwidth (§VII-E): sweep cost vs interval and size");
  std::printf("\n  %-10s %-10s %14s\n", "cache", "interval", "bank bandwidth");
  exp::JsonArray bw_rows;
  for (const std::uint64_t mb : {32ull, 64ull, 128ull}) {
    for (const double interval_ms : {10.0, 20.0, 40.0}) {
      ScrubSchedule s;
      s.interval_s = interval_ms / 1000.0;
      const std::uint64_t lines = mb * (1ull << 20) / 64;
      const double frac = s.bandwidth_fraction(lines);
      std::printf("  %6lluMB %8.0fms %13.2f%%\n", static_cast<unsigned long long>(mb),
                  interval_ms, 100.0 * frac);
      exp::JsonObject jr;
      jr.set("cache_mb", mb)
          .set("interval_ms", interval_ms)
          .set("bandwidth_fraction", frac);
      bw_rows.push(jr);
    }
  }
  std::printf("\n  paper: 20ms keeps the 64MB sweep within 'a few percent'.\n");

  bench::print_header("Continuous-time scrub engine at an accelerated fault rate");
  SudokuConfig cfg;
  cfg.geo.num_lines = 4096;
  cfg.geo.group_size = 64;
  cfg.level = SudokuLevel::kZ;
  SudokuController ctrl(cfg);
  obs::MetricsRegistry metrics;
  ctrl.attach_metrics(&metrics);
  Rng rng(args.seed_or(1));
  ctrl.format_random(rng);
  ScrubSchedule sched;
  const std::uint32_t intervals = static_cast<std::uint32_t>(200 * args.scale);
  const auto t0 = std::chrono::steady_clock::now();
  // 1e-4 per bit per 20ms interval, delivered continuously.
  const auto stats = run_continuous_scrub(ctrl, sched, 1e-4 / 0.02, 16, intervals,
                                          rng, &metrics);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("\n  simulated time        : %.2f s (%llu sweeps)\n",
              stats.simulated_seconds, static_cast<unsigned long long>(stats.sweeps));
  std::printf("  faults injected       : %llu\n",
              static_cast<unsigned long long>(stats.faults_injected));
  std::printf("  ECC-1 corrections     : %llu\n",
              static_cast<unsigned long long>(stats.ecc1_corrections));
  std::printf("  RAID-4 / SDR repairs  : %llu / %llu\n",
              static_cast<unsigned long long>(stats.raid4_repairs),
              static_cast<unsigned long long>(stats.sdr_repairs));
  std::printf("  DUE lines             : %llu\n",
              static_cast<unsigned long long>(stats.due_lines));
  // Faults that arrived after a line's last visit are still latent; drain
  // them with one final sweep before auditing the parity invariant.
  ctrl.scrub_all();
  const bool consistent = ctrl.parities_consistent();
  std::printf("  parities consistent   : %s (after final sweep)\n",
              consistent ? "yes" : "NO");

  exp::JsonObject config;
  config.set("num_lines", cfg.geo.num_lines)
      .set("group_size", cfg.geo.group_size)
      .set("intervals", intervals)
      .set("fault_rate_per_bit_s", 1e-4 / 0.02)
      .set("seed", args.seed_or(1));
  exp::JsonObject result;
  result.set("bandwidth_rows", bw_rows)
      .set("sweeps", stats.sweeps)
      .set("faults_injected", stats.faults_injected)
      .set("ecc1_corrections", stats.ecc1_corrections)
      .set("raid4_repairs", stats.raid4_repairs)
      .set("sdr_repairs", stats.sdr_repairs)
      .set("due_lines", stats.due_lines)
      .set("simulated_seconds", stats.simulated_seconds)
      .set("parities_consistent", consistent);

  exp::RunStats run_stats;
  run_stats.trials = stats.lines_scrubbed;
  run_stats.wall_seconds = wall;
  run_stats.threads = 1;
  run_stats.shards = 1;
  const exp::ResultSink sink(args.out_dir);
  const auto path =
      sink.write("scrub_bandwidth", config, result, run_stats, &metrics);
  std::printf("  artifact: %s\n", path.string().c_str());
  if (args.json) {
    const auto root = exp::ResultSink::make_root("scrub_bandwidth", config, result,
                                                 run_stats, &metrics);
    std::printf("%s\n", root.str(/*pretty=*/true).c_str());
  }
  return consistent ? 0 : 1;
}
