// Reproduces Table II: per-line failure probability, cache failure
// probability per 20 ms, and FIT rate of a 64 MB cache protected with
// ECC-1 .. ECC-6 at BER 5.3e-6.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main() {
  bench::print_header(
      "Table II: FIT Rate of 64MB Cache for various ECC, BER 5.3e-6 / 20ms");

  CacheParams c;  // paper defaults
  const double paper_line[] = {3.9e-6, 3.8e-9, 2.9e-12, 1.9e-15, 1e-18, 4.9e-22};
  const double paper_cache[] = {9.8e-1, 4e-3, 3.1e-6, 2e-9, 1.1e-12, 5.1e-16};
  const char* paper_fit[] = {">1e14", "7.2e11", "5.5e8", "3.5e5", "191", "0.092"};

  std::printf("\n  %-8s %16s %12s %16s %12s %12s %10s\n", "ECC/line",
              "P(line-fail)", "paper", "P(cache-fail)", "paper", "FIT", "paper");
  for (int k = 1; k <= 6; ++k) {
    const std::uint32_t bits = 512 + 10u * k;
    const double p_line = std::exp(log_p_line_ge(bits, k + 1, c.ber));
    const auto r = ecc_k(c, k);
    std::printf("  ECC-%-4d %16s %12s %16s %12s %12s %10s\n", k,
                bench::sci(p_line).c_str(), bench::sci(paper_line[k - 1]).c_str(),
                bench::sci(r.p_interval()).c_str(), bench::sci(paper_cache[k - 1]).c_str(),
                bench::sci(r.fit()).c_str(), paper_fit[k - 1]);
  }
  std::printf("\n  line width per ECC-k = 512 data + 10k check bits (BCH, m=10).\n");
  return 0;
}
