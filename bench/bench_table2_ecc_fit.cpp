// Reproduces Table II: per-line failure probability, cache failure
// probability per 20 ms, and FIT rate of a 64 MB cache protected with
// ECC-1 .. ECC-6 at BER 5.3e-6.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, bench::analytical_options());
  bench::print_header(
      "Table II: FIT Rate of 64MB Cache for various ECC, BER 5.3e-6 / 20ms");

  CacheParams c;  // paper defaults
  const double paper_line[] = {3.9e-6, 3.8e-9, 2.9e-12, 1.9e-15, 1e-18, 4.9e-22};
  const double paper_cache[] = {9.8e-1, 4e-3, 3.1e-6, 2e-9, 1.1e-12, 5.1e-16};
  const char* paper_fit[] = {">1e14", "7.2e11", "5.5e8", "3.5e5", "191", "0.092"};

  const auto t0 = std::chrono::steady_clock::now();
  exp::JsonArray rows;
  exp::JsonArray comparison;
  std::printf("\n  %-8s %16s %12s %16s %12s %12s %10s\n", "ECC/line",
              "P(line-fail)", "paper", "P(cache-fail)", "paper", "FIT", "paper");
  for (int k = 1; k <= 6; ++k) {
    const std::uint32_t bits = 512 + 10u * k;
    const double p_line = std::exp(log_p_line_ge(bits, k + 1, c.ber));
    const auto r = ecc_k(c, k);
    std::printf("  ECC-%-4d %16s %12s %16s %12s %12s %10s\n", k,
                bench::sci(p_line).c_str(), bench::sci(paper_line[k - 1]).c_str(),
                bench::sci(r.p_interval()).c_str(), bench::sci(paper_cache[k - 1]).c_str(),
                bench::sci(r.fit()).c_str(), paper_fit[k - 1]);
    exp::JsonObject row;
    row.set("ecc_k", k)
        .set("line_bits", bits)
        .set("p_line_fail", p_line)
        .set("p_cache_fail", r.p_interval())
        .set("fit", r.fit());
    rows.push(row);
    const std::string label = "ECC-" + std::to_string(k);
    comparison.push(
        bench::paper_row(label + " P(line-fail)", paper_line[k - 1], p_line));
    comparison.push(
        bench::paper_row(label + " P(cache-fail)", paper_cache[k - 1], r.p_interval()));
    comparison.push(bench::paper_row(label + " FIT", paper_fit[k - 1], r.fit()));
  }
  std::printf("\n  line width per ECC-k = 512 data + 10k check bits (BCH, m=10).\n");

  exp::JsonObject config;
  config.set("ber", c.ber)
      .set("num_lines", c.num_lines)
      .set("scrub_interval_s", c.scrub_interval_s);
  exp::JsonObject result;
  result.set("rows", rows).set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = 6;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "table2_ecc_fit", config, result, stats);
  return 0;
}
