// Reproduces Table II: per-line failure probability, cache failure
// probability per 20 ms, and FIT rate of a 64 MB cache protected with
// ECC-1 .. ECC-6 at BER 5.3e-6.
//
// The ECC-1/ECC-2 rows additionally carry an importance-sampled MC
// cross-check (exp/rare_event): a count-stratified estimator over 64-line
// blocks whose exact answer is closed-form (lines fail independently, so
// P[block] = 1 - (1 - P[line >= k+1 faults])^64), giving an end-to-end
// validation of the likelihood-ratio math at the paper's operating point,
// where the unweighted probability (~2e-7 per block for ECC-2) is far out
// of naive MC reach.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/prob.h"
#include "exp/rare_event.h"
#include "reliability/analytical.h"
#include "sttram/fault_injector.h"

using namespace sudoku;
using namespace sudoku::reliability;

namespace {

// Stratified MC for ECC-k over a block of `block_lines` independent lines:
// an interval fails when any line collects more than k faults. Exact
// answer: 1 - (1 - P[Binomial(line_bits, ber) >= k+1])^block_lines.
exp::RareEventEstimate ecc_block_estimate(int k, std::uint64_t block_lines,
                                          std::uint32_t line_bits, double ber,
                                          std::uint64_t trials,
                                          std::uint64_t seed) {
  exp::StratifyParams params;
  params.total_bits = static_cast<double>(block_lines) * line_bits;
  params.ber = ber;
  params.trials = trials;
  params.min_count = static_cast<std::uint64_t>(k) + 1;  // fewer can't fail
  const auto plan = exp::plan_strata(params);
  FaultInjector injector(block_lines, line_bits, ber);
  return exp::run_stratified(
      plan, seed, [&](std::uint64_t count, Rng& rng) {
        const auto batch = injector.sample_exact(rng, count);
        for (const auto& [line, bits] : batch) {
          if (bits.size() > static_cast<std::size_t>(k)) return true;
        }
        return false;
      });
}

}  // namespace

int main(int argc, char** argv) {
  const auto args =
      bench::BenchArgs::parse(argc, argv, bench::single_threaded_options());
  bench::print_header(
      "Table II: FIT Rate of 64MB Cache for various ECC, BER 5.3e-6 / 20ms");

  CacheParams c;  // paper defaults
  const double paper_line[] = {3.9e-6, 3.8e-9, 2.9e-12, 1.9e-15, 1e-18, 4.9e-22};
  const double paper_cache[] = {9.8e-1, 4e-3, 3.1e-6, 2e-9, 1.1e-12, 5.1e-16};
  const char* paper_fit[] = {">1e14", "7.2e11", "5.5e8", "3.5e5", "191", "0.092"};

  const auto t0 = std::chrono::steady_clock::now();
  exp::JsonArray rows;
  exp::JsonArray comparison;
  std::printf("\n  %-8s %16s %12s %16s %12s %12s %10s\n", "ECC/line",
              "P(line-fail)", "paper", "P(cache-fail)", "paper", "FIT", "paper");
  for (int k = 1; k <= 6; ++k) {
    const std::uint32_t bits = 512 + 10u * k;
    const double p_line = std::exp(log_p_line_ge(bits, k + 1, c.ber));
    const auto r = ecc_k(c, k);
    std::printf("  ECC-%-4d %16s %12s %16s %12s %12s %10s\n", k,
                bench::sci(p_line).c_str(), bench::sci(paper_line[k - 1]).c_str(),
                bench::sci(r.p_interval()).c_str(), bench::sci(paper_cache[k - 1]).c_str(),
                bench::sci(r.fit()).c_str(), paper_fit[k - 1]);
    exp::JsonObject row;
    row.set("ecc_k", k)
        .set("line_bits", bits)
        .set("p_line_fail", p_line)
        .set("p_cache_fail", r.p_interval())
        .set("fit", r.fit());
    rows.push(row);
    const std::string label = "ECC-" + std::to_string(k);
    comparison.push(
        bench::paper_row(label + " P(line-fail)", paper_line[k - 1], p_line));
    comparison.push(
        bench::paper_row(label + " P(cache-fail)", paper_cache[k - 1], r.p_interval()));
    comparison.push(bench::paper_row(label + " FIT", paper_fit[k - 1], r.fit()));
  }
  std::printf("\n  line width per ECC-k = 512 data + 10k check bits (BCH, m=10).\n");

  // ---- stratified-MC cross-check (ECC-1, ECC-2) -------------------------
  const std::uint64_t block_lines = 64;
  const std::uint64_t trials = 20000 * args.scale;
  const std::uint64_t seed = args.seed_or(43);
  exp::JsonArray checks;
  std::uint64_t check_trials = 0;
  std::printf("\n  Stratified-MC cross-check, %llu-line blocks, %llu trials each:\n",
              static_cast<unsigned long long>(block_lines),
              static_cast<unsigned long long>(trials));
  for (int k = 1; k <= 2; ++k) {
    const std::uint32_t bits = 512 + 10u * k;
    const auto est =
        ecc_block_estimate(k, block_lines, bits, c.ber, trials, seed + k);
    const double p_line = std::exp(log_p_line_ge(bits, k + 1, c.ber));
    const double p_block_exact =
        exp::lift_units(p_line, static_cast<double>(block_lines));
    const double n_blocks =
        static_cast<double>(c.num_lines) / static_cast<double>(block_lines);
    const double p_cache_mc = exp::lift_units(est.p_unit, n_blocks);
    const double fit_mc = fit_from_interval_prob(p_cache_mc, c.scrub_interval_s);
    const bool agrees =
        std::abs(est.p_unit - p_block_exact) <= est.ci95_unit();
    std::printf("    ECC-%d  p(block) MC %s +- %s  exact %s  %s   FIT(MC) %s\n",
                k, bench::sci(est.p_unit).c_str(), bench::sci(est.ci95_unit()).c_str(),
                bench::sci(p_block_exact).c_str(),
                agrees ? "[within 95% CI]" : "[OUTSIDE 95% CI]",
                bench::sci(fit_mc).c_str());
    exp::JsonObject o;
    o.set("ecc_k", k)
        .set("block_lines", block_lines)
        .set("p_block_mc", est.p_unit)
        .set("p_block_ci95", est.ci95_unit())
        .set("p_block_exact", p_block_exact)
        .set("p_cache_mc", p_cache_mc)
        .set("fit_mc", fit_mc)
        .set("ess", est.ess)
        .set("trials", est.trials)
        .set("excluded_mass", est.excluded_mass)
        .set("within_ci95", agrees);
    checks.push(o);
    check_trials += est.trials;
  }

  exp::JsonObject config;
  config.set("ber", c.ber)
      .set("num_lines", c.num_lines)
      .set("scrub_interval_s", c.scrub_interval_s)
      .set("rare_event_trials", trials)
      .set("rare_event_seed", seed);
  exp::JsonObject result;
  result.set("rows", rows)
      .set("rare_event_check", checks)
      .set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = 6 + check_trials;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "table2_ecc_fit", config, result, stats);
  return 0;
}
