// §VII-B correction-latency analysis. Two parts:
//  1. The paper's hardware latency model: RAID-4 correction reads all 512
//     lines of a group at 9 ns ⇒ ~4.6-16 µs; SuDoku-Y ~20 µs; SuDoku-Z up
//     to ~80 µs; each incurred so rarely the performance cost is <0.01%.
//     This part is deterministic and is what the artifact records.
//  2. google-benchmark measurements of our *functional* implementations
//     (host-CPU time, not STTRAM time — useful for simulator budgeting).
//     Opt-in via --gbench: timings are machine-dependent, so they stay out
//     of the artifact and out of the golden-diff loop.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "sudoku/controller.h"

using namespace sudoku;

namespace {

SudokuController make_controller(SudokuLevel level, Rng& rng) {
  SudokuConfig cfg;
  cfg.geo.num_lines = 1u << 14;
  // Paper-default 512-line groups for X/Y; SuDoku-Z's skewed hash needs
  // num_lines >= group^2, so the Z microbenchmark uses 128-line groups.
  cfg.geo.group_size = level == SudokuLevel::kZ ? 128 : 512;
  cfg.level = level;
  SudokuController ctrl(cfg);
  ctrl.format_random(rng);
  return ctrl;
}

void BM_Ecc1CorrectLine(benchmark::State& state) {
  Rng rng(1);
  LineCodec codec;
  BitVec data(LineCodec::kDataBits);
  auto w = data.words();
  for (auto& word : w) word = rng.next_u64();
  const BitVec good = codec.encode(data);
  for (auto _ : state) {
    BitVec bad = good;
    bad.flip(static_cast<std::uint32_t>(rng.next_below(codec.total_bits())));
    benchmark::DoNotOptimize(codec.check_and_correct(bad));
  }
}
BENCHMARK(BM_Ecc1CorrectLine);

void BM_Raid4GroupRepair(benchmark::State& state) {
  Rng rng(2);
  auto ctrl = make_controller(SudokuLevel::kX, rng);
  for (auto _ : state) {
    state.PauseTiming();
    const auto line = rng.next_below(1u << 14);
    for (int i = 0; i < 4; ++i) {
      ctrl.array().flip(line, static_cast<std::uint32_t>(rng.next_below(553)));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(ctrl.read_data(line));
  }
}
BENCHMARK(BM_Raid4GroupRepair);

void BM_SdrTwoLineRepair(benchmark::State& state) {
  Rng rng(3);
  auto ctrl = make_controller(SudokuLevel::kY, rng);
  for (auto _ : state) {
    state.PauseTiming();
    // Two 2-fault lines in group 0.
    std::uint64_t l1 = rng.next_below(512), l2 = l1;
    while (l2 == l1) l2 = rng.next_below(512);
    for (const auto l : {l1, l2}) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(553));
      auto b = a;
      while (b == a) b = static_cast<std::uint32_t>(rng.next_below(553));
      ctrl.array().flip(l, a);
      ctrl.array().flip(l, b);
    }
    const std::uint64_t lines[] = {l1, l2};
    state.ResumeTiming();
    benchmark::DoNotOptimize(ctrl.scrub_lines(lines));
  }
}
BENCHMARK(BM_SdrTwoLineRepair);

void BM_SkewedHashRepair(benchmark::State& state) {
  Rng rng(4);
  auto ctrl = make_controller(SudokuLevel::kZ, rng);
  for (auto _ : state) {
    state.PauseTiming();
    // Both 3-fault lines in the same 128-line Hash-1 group, forcing the
    // Hash-2 fallback path.
    std::uint64_t l1 = rng.next_below(128), l2 = l1;
    while (l2 == l1) l2 = rng.next_below(128);
    for (const auto l : {l1, l2}) {
      for (int i = 0; i < 3; ++i) {
        ctrl.array().flip(l, static_cast<std::uint32_t>(rng.next_below(553)));
      }
    }
    const std::uint64_t lines[] = {l1, l2};
    state.ResumeTiming();
    benchmark::DoNotOptimize(ctrl.scrub_lines(lines));
  }
}
BENCHMARK(BM_SkewedHashRepair);

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::analytical_options();
  opts.extra_flags = {"--gbench"};
  const auto args = bench::BenchArgs::parse(argc, argv, opts);

  const auto t0 = std::chrono::steady_clock::now();
  std::printf("=== §VII-B hardware latency model ===\n");
  const double read_ns = 9.0;
  const double raid4_us = 512 * read_ns / 1000.0;
  const double bandwidth_pct = 100.0 * 4 * 512 * read_ns / 20e6;
  std::printf("  RAID-4 repair: 512 line reads x %.0f ns = %.1f us (paper: <=16 us)\n",
              read_ns, raid4_us);
  std::printf("  expected rate: ~4 multi-bit lines / 20 ms -> %.2f%% bandwidth\n",
              bandwidth_pct);
  std::printf("  SuDoku-Y repair (group scan + SDR trials): ~20 us, every ~3.7 s\n");
  std::printf("  SuDoku-Z repair (up to 2 groups x 2 hashes): ~80 us, every ~3.9 h\n");
  std::printf("  worst-case demand-read impact: <0.08%% (paper §III-D)\n");

  exp::JsonArray comparison;
  comparison.push(bench::paper_row("RAID-4 repair latency (us)", 16.0, raid4_us));
  comparison.push(bench::paper_row("worst-case demand-read impact (%)", 0.08,
                                   bandwidth_pct));

  exp::JsonObject config;
  config.set("read_latency_ns", read_ns)
      .set("group_size", 512)
      .set("scrub_interval_ms", 20);
  exp::JsonObject result;
  result.set("raid4_repair_us", raid4_us)
      .set("sudoku_y_repair_us", 20.0)
      .set("sudoku_z_repair_us", 80.0)
      .set("scrub_bandwidth_pct", bandwidth_pct)
      .set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = 1;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "correction_latency", config, result, stats);

  if (args.has_extra("--gbench")) {
    std::printf("\n=== functional implementation timings (host CPU) ===\n");
    int bench_argc = 1;
    benchmark::Initialize(&bench_argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  } else {
    std::printf("\n  (pass --gbench for host-CPU microbenchmarks of the functional\n"
                "   repair paths; timings are machine-dependent and never recorded\n"
                "   in the artifact)\n");
  }
  return 0;
}
