// google-benchmark microbenchmarks of the coding substrate: CRC-31 check,
// Hamming ECC-1 encode/decode, BCH ECC-k decode for k = 1..6. Contextual
// for §II-D's point that multi-bit ECC decoders are far more expensive
// than ECC-1 + CRC: the BCH decode cost grows with k while the SuDoku
// fast path stays flat.
#include <benchmark/benchmark.h>

#include "codes/bch.h"
#include "codes/crc31.h"
#include "codes/hamming.h"
#include "common/rng.h"

using namespace sudoku;

namespace {

BitVec random_bits(std::size_t n, Rng& rng) {
  BitVec v(n);
  auto w = v.words();
  for (auto& word : w) word = rng.next_u64();
  // Mask tail.
  if (n % 64) w[w.size() - 1] &= (std::uint64_t{1} << (n % 64)) - 1;
  return v;
}

void BM_Crc31Compute(benchmark::State& state) {
  Rng rng(1);
  Crc31 crc;
  const BitVec data = random_bits(512, rng);
  for (auto _ : state) benchmark::DoNotOptimize(crc.compute(data));
}
BENCHMARK(BM_Crc31Compute);

void BM_HammingEncode(benchmark::State& state) {
  Rng rng(2);
  Hamming h(543);
  BitVec cw = random_bits(553, rng);
  for (auto _ : state) {
    h.encode(cw);
    benchmark::DoNotOptimize(cw);
  }
}
BENCHMARK(BM_HammingEncode);

void BM_HammingDecodeClean(benchmark::State& state) {
  Rng rng(3);
  Hamming h(543);
  BitVec cw = random_bits(553, rng);
  h.encode(cw);
  for (auto _ : state) {
    BitVec copy = cw;
    benchmark::DoNotOptimize(h.decode(copy));
  }
}
BENCHMARK(BM_HammingDecodeClean);

void BM_HammingDecodeOneError(benchmark::State& state) {
  Rng rng(4);
  Hamming h(543);
  BitVec cw = random_bits(553, rng);
  h.encode(cw);
  for (auto _ : state) {
    BitVec copy = cw;
    copy.flip(rng.next_below(553));
    benchmark::DoNotOptimize(h.decode(copy));
  }
}
BENCHMARK(BM_HammingDecodeOneError);

void BM_BchDecode(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  Rng rng(5);
  Bch bch(10, t, 512);
  BitVec cw = random_bits(bch.codeword_bits(), rng);
  // Re-encode so the word is valid, then corrupt t bits.
  for (std::size_t i = 512; i < cw.size(); ++i) cw.reset(i);
  bch.encode(cw);
  for (auto _ : state) {
    BitVec copy = cw;
    for (int e = 0; e < t; ++e) copy.flip(rng.next_below(copy.size()));
    benchmark::DoNotOptimize(bch.decode(copy));
  }
}
BENCHMARK(BM_BchDecode)->DenseRange(1, 6);

void BM_BchEncode(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  Rng rng(6);
  Bch bch(10, t, 512);
  BitVec cw = random_bits(bch.codeword_bits(), rng);
  for (auto _ : state) {
    bch.encode(cw);
    benchmark::DoNotOptimize(cw);
  }
}
BENCHMARK(BM_BchEncode)->DenseRange(1, 6);

}  // namespace

BENCHMARK_MAIN();
