// Microbenchmarks of the coding substrate, tracking the word-at-a-time
// and batch kernel speedups (docs/perf.md) as an artifact: bit-serial vs
// byte-table vs slicing-by-8 vs PCLMUL CRC-31, reference vs parity-mask
// vs bit-sliced Hamming syndrome, and reference vs per-word Horner vs
// bit-sliced batch BCH syndromes for ECC-2..6 plus the Hi-ECC geometry.
// Contextual for §II-D's point that multi-bit ECC decoders are far more
// expensive than ECC-1 + CRC: the BCH decode cost grows with k while the
// SuDoku fast path stays flat.
//
// Batch rows stream kStreamLines codewords through BitPlanes batches of
// 64 — including a partial final batch, whose payload is charged at its
// *actual* width (bench::batched_items), not the nominal 64.
//
// Ported onto the shared BenchArgs command line and ResultSink artifact
// plumbing (bench/out/codec_throughput.json) so the kernel throughput is
// diffable across PRs like every other bench.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "codes/batch_codec.h"
#include "codes/bch.h"
#include "codes/crc31.h"
#include "codes/hamming.h"
#include "common/rng.h"
#include "exp/result_sink.h"

using namespace sudoku;

namespace {

BitVec random_bits(std::size_t n, Rng& rng) {
  BitVec v(n);
  auto w = v.words();
  for (auto& word : w) word = rng.next_u64();
  if (n % 64) w[w.size() - 1] &= (std::uint64_t{1} << (n % 64)) - 1;
  return v;
}

struct Measurement {
  std::uint64_t iters = 0;
  double seconds = 0.0;
  double mb_per_s = 0.0;  // payload megabytes decoded/checked per second
};

// Run `op` (which must consume one `payload_bits`-bit block per call) until
// the clock budget is spent; calibrates in batches so the timer overhead
// stays negligible.
Measurement time_kernel(std::size_t payload_bits, std::uint64_t min_iters,
                        const std::function<void()>& op) {
  using Clock = std::chrono::steady_clock;
  Measurement m;
  const auto start = Clock::now();
  std::uint64_t batch = 256;
  for (;;) {
    for (std::uint64_t i = 0; i < batch; ++i) op();
    m.iters += batch;
    m.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    if (m.iters >= min_iters && m.seconds >= 0.05) break;
    batch = batch < (1u << 16) ? batch * 2 : batch;
  }
  m.mb_per_s = (static_cast<double>(m.iters) * static_cast<double>(payload_bits) /
                8.0 / 1e6) /
               m.seconds;
  return m;
}

struct Row {
  std::string code, kernel;
  Measurement m;
  double speedup = 1.0;           // vs the row's bit-serial reference kernel
  double speedup_vs_per_line = 0;  // batch rows: vs the per-line fast kernel
};

void print_row(const Row& r) {
  std::printf("  %-28s %-22s %9.1f MB/s   %6.2fx", r.code.c_str(), r.kernel.c_str(),
              r.m.mb_per_s, r.speedup);
  if (r.speedup_vs_per_line > 0) {
    std::printf("   (%.2fx vs per-line)", r.speedup_vs_per_line);
  }
  std::printf("\n");
}

// Stream of `lines` random codewords of `nbits` for the batch rows.
std::vector<BitVec> random_stream(std::size_t lines, std::size_t nbits, Rng& rng) {
  std::vector<BitVec> stream(lines);
  for (auto& cw : stream) cw = random_bits(nbits, rng);
  return stream;
}

// Lines the batch rows stream per timed op: three full 64-line batches
// plus a partial 8-line tail, so the partial-batch payload accounting is
// exercised on every iteration.
constexpr std::uint64_t kStreamLines = 200;

}  // namespace

int main(int argc, char** argv) {
  const auto args = sudoku::bench::BenchArgs::parse(
      argc, argv, sudoku::bench::single_threaded_options());
  const std::uint64_t base_iters = 2000 * args.scale;
  Rng rng(args.seed_or(17));

  bench::print_header("Codec kernel throughput (payload MB/s, higher is better)");
  bench::print_subnote(
      "speedup is vs the bit-serial oracle of the same code; all kernels are"
      " bit-identical (tests/test_codec_kernels.cpp)");

  std::vector<Row> rows;
  exp::RunStats stats;
  const auto bench_start = std::chrono::steady_clock::now();

  // ---- CRC-31 over the 512-bit data field ----
  {
    const Crc31 crc;
    const BitVec data = random_bits(512, rng);
    volatile std::uint32_t sink = 0;
    const Measurement serial = time_kernel(
        512, base_iters / 4, [&] { sink = crc.compute_bitserial(data, 512); });
    const Measurement bytewise = time_kernel(
        512, base_iters, [&] { sink = crc.compute_bytewise(data, 512); });
    const Measurement slicing =
        time_kernel(512, base_iters, [&] { sink = crc.compute_slicing8(data, 512); });
    // The CLMUL row is emitted on every host (stable artifact structure);
    // without pclmulqdq it records zero throughput instead of timing a
    // different kernel under the clmul name.
    Measurement clmul;
    if (Crc31::clmul_supported()) {
      clmul = time_kernel(512, base_iters, [&] { sink = crc.compute_clmul(data, 512); });
    }
    (void)sink;
    rows.push_back({"crc31", "bit_serial", serial, 1.0});
    rows.push_back({"crc31", "byte_table", bytewise, bytewise.mb_per_s / serial.mb_per_s});
    rows.push_back({"crc31", "slicing_by_8", slicing, slicing.mb_per_s / serial.mb_per_s});
    rows.push_back({"crc31", "clmul", clmul, clmul.mb_per_s / serial.mb_per_s});
  }

  // ---- Hamming ECC-1 syndrome + decode over the 553-bit line ----
  {
    const Hamming h(543);
    BitVec cw = random_bits(553, rng);
    h.encode(cw);
    BitVec dirty = cw;
    dirty.flip(rng.next_below(553));
    volatile std::uint32_t sink = 0;
    const Measurement ref = time_kernel(
        553, base_iters / 4, [&] { sink = h.syndrome_reference(cw); });
    const Measurement fast =
        time_kernel(553, base_iters, [&] { sink = h.syndrome(cw); });
    (void)sink;
    rows.push_back({"hamming_543", "syndrome_reference", ref, 1.0});
    rows.push_back({"hamming_543", "syndrome_masks", fast, fast.mb_per_s / ref.mb_per_s});
    BitVec scratch(553);
    const Measurement dec_clean = time_kernel(553, base_iters, [&] {
      scratch = cw;
      h.decode(scratch);
    });
    const Measurement dec_err = time_kernel(553, base_iters, [&] {
      scratch = dirty;
      h.decode(scratch);
    });
    rows.push_back({"hamming_543", "decode_clean", dec_clean,
                    dec_clean.mb_per_s / ref.mb_per_s});
    rows.push_back({"hamming_543", "decode_one_error", dec_err,
                    dec_err.mb_per_s / ref.mb_per_s});

    // Bit-sliced batch syndrome over a 200-line stream (64-line batches +
    // partial tail), including the transpose.
    const auto stream = random_stream(kStreamLines, 553, rng);
    BitPlanes planes;
    volatile std::uint64_t zsink = 0;
    const std::uint64_t nb = bench::batch_count(kStreamLines, BitPlanes::kMaxLines);
    const std::uint64_t actual_lines =
        bench::batched_items(kStreamLines, BitPlanes::kMaxLines, nb);
    const Measurement batch = time_kernel(actual_lines * 553, base_iters / 64, [&] {
      std::uint64_t z = 0;
      for (std::uint64_t b = 0; b < nb; ++b) {
        const std::uint64_t w = bench::batch_width(kStreamLines, BitPlanes::kMaxLines, b);
        planes.reset(553, w);
        for (std::uint64_t i = 0; i < w; ++i) {
          planes.load_line(i, stream[b * BitPlanes::kMaxLines + i].words());
        }
        planes.finalize();
        z ^= h.batch_syndromes_zero(planes);
      }
      zsink = z;
    });
    (void)zsink;
    rows.push_back({"hamming_543", "batch_sliced", batch,
                    batch.mb_per_s / ref.mb_per_s, batch.mb_per_s / fast.mb_per_s});
  }

  // ---- BCH ECC-t syndromes (t = 2..6, the baseline strengths) ----
  for (const int t : {2, 3, 6}) {
    const Bch bch(10, t, 512);
    const std::size_t n = bch.codeword_bits();
    BitVec cw = random_bits(n, rng);
    for (std::size_t i = 512; i < n; ++i) cw.reset(i);
    bch.encode(cw);
    const std::string code = "bch_t" + std::to_string(t);
    volatile bool bsink = false;
    const Measurement ref = time_kernel(n, base_iters / 8, [&] {
      const auto s = bch.syndromes_reference(cw);
      bsink = s[0] == 0;
    });
    const Measurement fast =
        time_kernel(n, base_iters, [&] { bsink = bch.syndromes_zero(cw); });
    (void)bsink;
    rows.push_back({code, "syndromes_reference", ref, 1.0});
    rows.push_back({code, "syndromes_word_horner", fast, fast.mb_per_s / ref.mb_per_s});
    // The old clean-line check decoded a copy; the new one is the
    // allocation-free zero-syndrome fast exit (same `fast` kernel above).
    BitVec scratch(n);
    const Measurement old_clean = time_kernel(n, base_iters / 8, [&] {
      scratch = cw;
      bsink = bch.decode(scratch).status == Bch::DecodeStatus::kClean;
    });
    rows.push_back({code, "clean_check_via_decode", old_clean,
                    old_clean.mb_per_s / ref.mb_per_s});

    const auto stream = random_stream(kStreamLines, n, rng);
    BitPlanes planes;
    volatile std::uint64_t zsink = 0;
    const std::uint64_t nb = bench::batch_count(kStreamLines, BitPlanes::kMaxLines);
    const std::uint64_t actual_lines =
        bench::batched_items(kStreamLines, BitPlanes::kMaxLines, nb);
    const Measurement batch = time_kernel(actual_lines * n, base_iters / 64, [&] {
      std::uint64_t z = 0;
      for (std::uint64_t b = 0; b < nb; ++b) {
        const std::uint64_t w = bench::batch_width(kStreamLines, BitPlanes::kMaxLines, b);
        planes.reset(n, w);
        for (std::uint64_t i = 0; i < w; ++i) {
          planes.load_line(i, stream[b * BitPlanes::kMaxLines + i].words());
        }
        planes.finalize();
        z ^= bch.batch_syndromes_zero(planes);
      }
      zsink = z;
    });
    (void)zsink;
    rows.push_back({code, "batch_sliced", batch, batch.mb_per_s / ref.mb_per_s,
                    batch.mb_per_s / fast.mb_per_s});
  }

  // ---- Hi-ECC geometry: ECC-6 over 1 KB (m = 14) ----
  {
    const Bch bch(14, 6, 8192);
    const std::size_t n = bch.codeword_bits();
    BitVec cw = random_bits(n, rng);
    for (std::size_t i = 8192; i < n; ++i) cw.reset(i);
    bch.encode(cw);
    volatile bool bsink = false;
    const Measurement ref = time_kernel(n, base_iters / 32, [&] {
      const auto s = bch.syndromes_reference(cw);
      bsink = s[0] == 0;
    });
    const Measurement fast =
        time_kernel(n, base_iters / 4, [&] { bsink = bch.syndromes_zero(cw); });
    (void)bsink;
    rows.push_back({"bch_hiecc_m14_t6", "syndromes_reference", ref, 1.0});
    rows.push_back({"bch_hiecc_m14_t6", "syndromes_word_horner", fast,
                    fast.mb_per_s / ref.mb_per_s});

    const auto stream = random_stream(kStreamLines, n, rng);
    BitPlanes planes;
    volatile std::uint64_t zsink = 0;
    const std::uint64_t nb = bench::batch_count(kStreamLines, BitPlanes::kMaxLines);
    const std::uint64_t actual_lines =
        bench::batched_items(kStreamLines, BitPlanes::kMaxLines, nb);
    const Measurement batch =
        time_kernel(actual_lines * n, base_iters / 256, [&] {
          std::uint64_t z = 0;
          for (std::uint64_t b = 0; b < nb; ++b) {
            const std::uint64_t w =
                bench::batch_width(kStreamLines, BitPlanes::kMaxLines, b);
            planes.reset(n, w);
            for (std::uint64_t i = 0; i < w; ++i) {
              planes.load_line(i, stream[b * BitPlanes::kMaxLines + i].words());
            }
            planes.finalize();
            z ^= bch.batch_syndromes_zero(planes);
          }
          zsink = z;
        });
    (void)zsink;
    rows.push_back({"bch_hiecc_m14_t6", "batch_sliced", batch,
                    batch.mb_per_s / ref.mb_per_s, batch.mb_per_s / fast.mb_per_s});
  }

  exp::JsonArray json_rows;
  for (const auto& r : rows) {
    print_row(r);
    stats.trials += r.m.iters;
    exp::JsonObject row;
    row.set("code", r.code)
        .set("kernel", r.kernel)
        .set("iters", r.m.iters)
        .set("seconds", r.m.seconds)
        .set("mb_per_s", r.m.mb_per_s)
        .set("speedup_vs_reference", r.speedup)
        .set("speedup_vs_per_line", r.speedup_vs_per_line);
    json_rows.push(row);
  }
  stats.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - bench_start)
                           .count();
  stats.threads = 1;
  stats.shards = 1;

  exp::JsonObject config;
  config.set("seed", args.seed_or(17)).set("scale", args.scale);
  exp::JsonObject result;
  result.set("rows", json_rows);

  const exp::ResultSink sink(args.out_dir);
  const auto path = sink.write("codec_throughput", config, result, stats);
  std::printf("\n  %llu kernel invocations in %.2f s -> %s\n",
              static_cast<unsigned long long>(stats.trials), stats.wall_seconds,
              path.string().c_str());
  if (args.json) {
    const auto root =
        exp::ResultSink::make_root("codec_throughput", config, result, stats);
    std::printf("%s\n", root.str(/*pretty=*/true).c_str());
  }
  return 0;
}
