// Cross-validation of the analytical FIT models against the functional
// Monte-Carlo harness (which runs the real controllers) in an accelerated
// BER regime where failures are observable. This is the evidence that the
// analytical numbers used at the paper's operating point describe the
// implemented algorithms. (At BER 5.3e-6, SuDoku-Y fails about once per
// hundred simulated hours and SuDoku-Z effectively never — direct MC at
// the operating point is computationally meaningless, which is why the
// paper itself uses analytical models, §VII-A.)
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"
#include "reliability/montecarlo.h"

using namespace sudoku;
using namespace sudoku::reliability;

namespace {

void validate(SudokuLevel level, double ber, std::uint64_t intervals) {
  McConfig cfg;
  cfg.cache.num_lines = 1u << 12;
  cfg.cache.group_size = 64;
  cfg.cache.ber = ber;
  cfg.level = level;
  cfg.max_intervals = intervals;
  cfg.seed = 99;
  const auto mc = run_montecarlo(cfg);

  FitResult an{};
  switch (level) {
    case SudokuLevel::kX: an = sudoku_x_due(cfg.cache); break;
    case SudokuLevel::kY: an = sudoku_y_due(cfg.cache); break;
    case SudokuLevel::kZ: an = sudoku_z_due(cfg.cache); break;
  }
  std::printf("  %-9s ber=%-8s MC p/interval=%-10s analytical=%-10s events=%llu  sdc=%llu\n",
              to_string(level), bench::sci(ber).c_str(),
              bench::sci(mc.p_failure_per_interval()).c_str(),
              bench::sci(an.p_interval()).c_str(),
              static_cast<unsigned long long>(mc.failure_intervals),
              static_cast<unsigned long long>(mc.sdc_lines));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = argc > 1 ? std::stoull(argv[1]) : 1;

  bench::print_header("Monte-Carlo vs analytical (256 KB cache, 64-line groups)");
  std::printf("\n  SuDoku-X (failures ~ groups with two 2-fault lines):\n");
  validate(SudokuLevel::kX, 1e-4, 800 * scale);
  validate(SudokuLevel::kX, 2e-4, 400 * scale);

  std::printf("\n  SuDoku-Y (failures need 3+3-fault pairs / full overlaps):\n");
  validate(SudokuLevel::kY, 1.5e-4, 2500 * scale);
  validate(SudokuLevel::kY, 2.5e-4, 500 * scale);

  std::printf("\n  SuDoku-Z (failures need hard 4-cycles; at the Y-failure BER the\n");
  std::printf("  MC should show far fewer events than Y):\n");
  validate(SudokuLevel::kZ, 3.5e-4, 300 * scale);

  std::printf("\n  The analytical models capture the leading-order failure modes;\n");
  std::printf("  MC includes every higher-order interaction, so modest (<2x)\n");
  std::printf("  deviations are expected. SDC must be 0 in all runs.\n");
  return 0;
}
