// Cross-validation of the analytical FIT models against the functional
// Monte-Carlo harness (which runs the real controllers) in an accelerated
// BER regime where failures are observable. This is the evidence that the
// analytical numbers used at the paper's operating point describe the
// implemented algorithms. (At BER 5.3e-6, SuDoku-Y fails about once per
// hundred simulated hours and SuDoku-Z effectively never — direct MC at
// the operating point is computationally meaningless, which is why the
// paper itself uses analytical models, §VII-A.)
//
// Runs on the src/exp engine: trials shard across a work-stealing pool
// with per-trial seed streams, so DUE/SDC counts are bit-identical for any
// --threads value, and an artifact with the merged results + throughput is
// written under bench/out/. With --checkpoint=DIR the run is resumable
// after SIGINT/SIGTERM (exit 75); a --resume replays finished shards and
// produces the same artifact bytes outside the "throughput" section.
#include <cstdio>
#include <optional>

#include <cmath>

#include "bench_util.h"
#include "exp/checkpoint.h"
#include "exp/mc_experiments.h"
#include "exp/metrics_io.h"
#include "exp/rare_event.h"
#include "reliability/analytical.h"
#include "reliability/montecarlo.h"

using namespace sudoku;
using namespace sudoku::reliability;

namespace {

struct Case {
  SudokuLevel level;
  double ber;
  std::uint64_t intervals;
};

exp::JsonObject validate(const Case& c, const bench::BenchArgs& args,
                         const exp::ExpOptions& opts, exp::RunStats& total_stats,
                         obs::MetricsRegistry& total_metrics) {
  McConfig cfg;
  cfg.cache.num_lines = 1u << 12;
  cfg.cache.group_size = 64;
  cfg.cache.ber = c.ber;
  cfg.level = c.level;
  cfg.max_intervals = c.intervals;
  cfg.seed = args.seed_or(99);

  exp::RunStats stats;
  const auto mc = exp::run_montecarlo_parallel(cfg, opts, &stats);
  bench::exit_if_interrupted(args);
  total_stats += stats;
  total_metrics += mc.metrics;

  FitResult an{};
  switch (c.level) {
    case SudokuLevel::kX: an = sudoku_x_due(cfg.cache); break;
    case SudokuLevel::kY: an = sudoku_y_due(cfg.cache); break;
    case SudokuLevel::kZ: an = sudoku_z_due(cfg.cache); break;
  }
  std::printf(
      "  %-9s ber=%-8s MC p/interval=%-10s analytical=%-10s events=%llu  "
      "sdc=%llu  (%s trials/s)\n",
      to_string(c.level), bench::sci(c.ber).c_str(),
      bench::sci(mc.p_failure_per_interval()).c_str(),
      bench::sci(an.p_interval()).c_str(),
      static_cast<unsigned long long>(mc.failure_intervals),
      static_cast<unsigned long long>(mc.sdc_lines),
      bench::sci(stats.trials_per_second()).c_str());

  // Wall-clock rates stay on the console only: the artifact's result rows
  // must be byte-identical across reruns and checkpoint resumes.
  exp::JsonObject row;
  row.set("level", to_string(c.level))
      .set("ber", c.ber)
      .set("intervals", mc.intervals)
      .set("faults_injected", mc.faults_injected)
      .set("due_lines", mc.due_lines)
      .set("sdc_lines", mc.sdc_lines)
      .set("failure_intervals", mc.failure_intervals)
      .set("mc_p_interval", mc.p_failure_per_interval())
      .set("analytical_p_interval", an.p_interval());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  exp::install_signal_handlers();
  const Case cases[] = {
      {SudokuLevel::kX, 1e-4, 800 * args.scale},
      {SudokuLevel::kX, 2e-4, 400 * args.scale},
      {SudokuLevel::kY, 1.5e-4, 2500 * args.scale},
      {SudokuLevel::kY, 2.5e-4, 500 * args.scale},
      {SudokuLevel::kZ, 3.5e-4, 300 * args.scale},
  };

  bench::print_header("Monte-Carlo vs analytical (256 KB cache, 64-line groups)");
  std::optional<exp::CheckpointStore> store;
  if (args.checkpointing()) store.emplace(args.checkpoint_dir, args.resume);
  exp::ShardRunReport report;

  exp::ExpOptions opts;
  opts.threads = args.threads;
  opts.checkpoint = store ? &*store : nullptr;
  opts.checkpoint_scope = "mc_validation";
  opts.report = &report;
  opts.fleet = args.fleet;

  exp::RunStats total_stats;
  obs::MetricsRegistry total_metrics;
  exp::JsonArray rows;

  std::printf("\n  SuDoku-X (failures ~ groups with two 2-fault lines):\n");
  rows.push(validate(cases[0], args, opts, total_stats, total_metrics));
  rows.push(validate(cases[1], args, opts, total_stats, total_metrics));

  std::printf("\n  SuDoku-Y (failures need 3+3-fault pairs / full overlaps):\n");
  rows.push(validate(cases[2], args, opts, total_stats, total_metrics));
  rows.push(validate(cases[3], args, opts, total_stats, total_metrics));

  std::printf("\n  SuDoku-Z (failures need hard 4-cycles; at the Y-failure BER the\n");
  std::printf("  MC should show far fewer events than Y):\n");
  rows.push(validate(cases[4], args, opts, total_stats, total_metrics));

  std::printf("\n  The analytical models capture the leading-order failure modes;\n");
  std::printf("  MC includes every higher-order interaction, so modest (<2x)\n");
  std::printf("  deviations are expected. SDC must be 0 in all runs.\n");

  // ---- rare-event estimator vs unweighted MC ----------------------------
  // Same system both ways (SuDoku-X, one 64-line group, BER 1e-4, where
  // unweighted events are still observable), same trial budget: the
  // count-stratified estimate must agree with the unweighted rate within
  // joint 95% confidence, and its variance must be far smaller.
  std::printf("\n  Rare-event estimator vs unweighted MC (SuDoku-X group, BER 1e-4):\n");
  McConfig gcfg;
  gcfg.cache.num_lines = 64;
  gcfg.cache.group_size = 64;
  gcfg.cache.ber = 1e-4;
  gcfg.level = SudokuLevel::kX;
  gcfg.max_intervals = 20000 * args.scale;
  gcfg.seed = args.seed_or(99);
  exp::ExpOptions mc_opts = opts;
  mc_opts.checkpoint_scope = "mc_validation.rare_unweighted";
  exp::RunStats mc_stats;
  const auto unweighted = exp::run_montecarlo_parallel(gcfg, mc_opts, &mc_stats);
  bench::exit_if_interrupted(args);
  total_stats += mc_stats;
  total_metrics += unweighted.metrics;

  exp::RareEventConfig recfg;
  recfg.base = gcfg;
  recfg.trials = 20000 * args.scale;
  recfg.min_count = 4;  // X needs two 2-fault lines — k < 4 cannot fail
  exp::ExpOptions is_opts = opts;
  is_opts.checkpoint_scope = "mc_validation.rare_is";
  exp::RunStats is_stats;
  const auto est = exp::run_rare_event(recfg, is_opts, &is_stats);
  bench::exit_if_interrupted(args);
  total_stats += is_stats;

  const double p_mc = unweighted.p_failure_per_interval();
  const double var_mc =
      p_mc * (1.0 - p_mc) / static_cast<double>(unweighted.intervals);
  const double joint_ci95 = 1.96 * std::sqrt(est.var_unit + var_mc);
  const bool agrees = std::abs(est.p_unit - p_mc) <= joint_ci95;
  std::printf("    unweighted  p=%-10s (%llu events / %llu trials)\n",
              bench::sci(p_mc).c_str(),
              static_cast<unsigned long long>(unweighted.failure_intervals),
              static_cast<unsigned long long>(unweighted.intervals));
  std::printf("    stratified  p=%-10s +- %s  ess=%s from %llu trials  %s\n",
              bench::sci(est.p_unit).c_str(), bench::sci(est.ci95_unit()).c_str(),
              bench::sci(est.ess).c_str(),
              static_cast<unsigned long long>(est.trials),
              agrees ? "[within joint 95% CI]" : "[OUTSIDE joint 95% CI]");

  exp::JsonObject agreement;
  agreement.set("level", "X")
      .set("ber", gcfg.cache.ber)
      .set("group_lines", std::uint64_t{64})
      .set("p_unweighted", p_mc)
      .set("unweighted_trials", unweighted.intervals)
      .set("unweighted_failures", unweighted.failure_intervals)
      .set("p_stratified", est.p_unit)
      .set("stratified_ci95", est.ci95_unit())
      .set("stratified_trials", est.trials)
      .set("ess", est.ess)
      .set("joint_ci95", joint_ci95)
      .set("within_joint_ci95", agrees);

  exp::JsonObject config;
  config.set("num_lines", std::uint64_t{1u << 12})
      .set("group_size", 64)
      .set("seed", args.seed_or(99))
      .set("scale", args.scale);
  exp::JsonObject result;
  result.set("cases", rows).set("rare_event_agreement", agreement);

  const exp::ResultSink sink(args.out_dir);
  const auto path = sink.write("montecarlo_validation", config, result, total_stats,
                               &total_metrics, &report);
  std::printf("\n  %llu trials in %.2f s (%s trials/s, %u threads) -> %s\n",
              static_cast<unsigned long long>(total_stats.trials),
              total_stats.wall_seconds,
              bench::sci(total_stats.trials_per_second()).c_str(),
              total_stats.threads, path.string().c_str());
  if (store || report.degraded()) {
    std::printf("  fault tolerance: %llu/%llu shards resumed, %llu retries, "
                "%llu quarantined (%llu trials)\n",
                static_cast<unsigned long long>(report.shards_resumed),
                static_cast<unsigned long long>(report.shards_total),
                static_cast<unsigned long long>(report.shards_retried),
                static_cast<unsigned long long>(report.shards_quarantined),
                static_cast<unsigned long long>(report.trials_quarantined));
  }
  if (args.json) {
    const auto root = exp::ResultSink::make_root("montecarlo_validation", config,
                                                 result, total_stats, &total_metrics,
                                                 &report);
    std::printf("%s\n", root.str(/*pretty=*/true).c_str());
  }
  return 0;
}
