// Reproduces Figure 7: cache failure probability (DUE+SDC) over time for
// SuDoku-X, SuDoku-Y, SuDoku-Z and ECC-6. Prints each scheme's MTTF and
// the failure-probability series P(t) = 1 - exp(-t/MTTF) at the figure's
// decade points.
//
// On top of the analytical models, an importance-sampled Monte-Carlo
// section (exp/rare_event) measures SuDoku-X *at the paper's operating
// point* (BER 5.3e-6) with the functional controller — an event around
// 5e-8 per group-interval that unweighted MC cannot reach (~1e9 trials
// per observed failure). The estimator runs at group scale, where the
// conditional failure given the fault count is observable, and lifts to
// the cache through independent-group composition — exactly how the
// analytical models compose (log_cache_of_units).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "common/prob.h"
#include "exp/rare_event.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 7: Cache failure probability vs time (DUE+SDC)");

  const auto t0 = std::chrono::steady_clock::now();
  CacheParams c;
  struct Row {
    const char* name;
    double mttf_h;
    const char* paper;
  };
  const Row rows[] = {
      {"SuDoku-X", sudoku_total(c, 'X').mttf_hours(), "3.71 s"},
      {"SuDoku-Y (strict)", sudoku_y_due(c, SdrModel::kStrict).mttf_hours(),
       "3.49-3.9 h"},
      {"SuDoku-Y (mechanistic)", sudoku_total(c, 'Y').mttf_hours(), "3.49-3.9 h"},
      {"ECC-6", ecc_k(c, 6).mttf_seconds() / 3600.0, "~9.4e9 h (0.092 FIT)"},
      {"SuDoku-Z (strict)", sudoku_z_due(c, SdrModel::kStrict).mttf_hours(),
       "8.25e12 h"},
      {"SuDoku-Z (mechanistic)", sudoku_total(c, 'Z').mttf_hours(), "8.25e12 h"},
  };

  exp::JsonArray scheme_rows;
  std::printf("\n  %-24s %16s %22s\n", "Scheme", "MTTF (ours)", "paper");
  for (const auto& r : rows) {
    std::printf("  %-24s %13s h  %22s\n", r.name, bench::sci(r.mttf_h).c_str(), r.paper);
  }

  std::printf("\n  Failure probability series P(t) = 1 - exp(-t/MTTF):\n");
  std::printf("  %-24s", "t");
  const double times_h[] = {1.0 / 3600, 1.0, 24.0, 720.0, 8760.0, 8.76e7};
  const char* labels[] = {"1s", "1h", "1d", "1mo", "1yr", "1e4yr"};
  for (const auto* l : labels) std::printf(" %10s", l);
  std::printf("\n");
  for (const auto& r : rows) {
    std::printf("  %-24s", r.name);
    exp::JsonArray series;
    for (const double t : times_h) {
      const double p = -std::expm1(-t / r.mttf_h);
      std::printf(" %10s", bench::sci(p).c_str());
      exp::JsonObject point;
      point.set("t_hours", t).set("p_fail", p);
      series.push(point);
    }
    std::printf("\n");
    exp::JsonObject row;
    row.set("scheme", r.name)
        .set("mttf_hours", r.mttf_h)
        .set("paper", r.paper)
        .set("series", series);
    scheme_rows.push(row);
  }

  const double ratio =
      ecc_k(c, 6).fit() / sudoku_z_due(c, SdrModel::kStrict).fit();
  std::printf("\n  SuDoku-Z (strict) vs ECC-6 reliability ratio: %.0fx (paper: 874x)\n",
              ratio);
  const double ratio_mech = ecc_k(c, 6).fit() / sudoku_z_due(c).fit();
  std::printf("  SuDoku-Z (mechanistic, what our controller implements): %sx\n",
              bench::sci(ratio_mech).c_str());

  // ---- rare-event MC at the operating point (functional controller) ----
  // Unit: one 64-line RAID group (the smallest geometry the controller
  // supports at group_size 64). The analytical reference is the same
  // cache re-grouped to 64-line groups, so both sides describe the same
  // system and only the estimator itself is under test.
  const std::uint64_t group_lines = 64;
  const double lifted_groups =
      static_cast<double>(c.num_lines) / static_cast<double>(group_lines);

  exp::RareEventConfig recfg;
  recfg.base.cache.num_lines = group_lines;
  recfg.base.cache.group_size = static_cast<std::uint32_t>(group_lines);
  recfg.base.cache.ber = c.ber;  // the operating point — no acceleration
  recfg.base.level = SudokuLevel::kX;
  recfg.base.seed = args.seed_or(41);
  recfg.trials = 20000 * args.scale;
  // SuDoku-X cannot fail with fewer than 4 faults: a DUE needs >= 2 lines
  // carrying >= 2 faults each (RAID-4 repairs a single multi-fault line),
  // and an SDC miscorrection needs 7 faults in one line. Excluding the
  // provably failure-free k=2,3 strata exactly removes their (large-pmf,
  // zero-failure) variance contribution.
  recfg.min_count = 4;

  std::optional<exp::CheckpointStore> store;
  if (args.checkpointing()) store.emplace(args.checkpoint_dir, args.resume);
  exp::ShardRunReport report;
  exp::ExpOptions eopts;
  eopts.threads = args.threads;
  eopts.checkpoint = store ? &*store : nullptr;
  eopts.checkpoint_scope = "fig7_rare_event";
  eopts.report = &report;
  eopts.fleet = args.fleet;

  exp::RunStats stats;
  const auto est = exp::run_rare_event(recfg, eopts, &stats);
  bench::exit_if_interrupted(args);

  CacheParams cg = c;
  cg.num_lines = group_lines;
  cg.group_size = static_cast<std::uint32_t>(group_lines);
  const double p_group_analytic = sudoku_x_due(cg).p_interval();
  CacheParams c64 = c;
  c64.group_size = static_cast<std::uint32_t>(group_lines);
  const double mttf_h_analytic = sudoku_x_due(c64).mttf_hours();

  const double p_cache = exp::lift_units(est.p_unit, lifted_groups);
  const double var_cache =
      exp::lift_units_variance(est.p_unit, est.var_unit, lifted_groups);
  const double mttf_h_mc =
      mttf_seconds(p_cache, c.scrub_interval_s) / 3600.0;

  std::printf("\n  Rare-event MC, SuDoku-X DUE at BER %s (64-line groups):\n",
              bench::sci(c.ber).c_str());
  std::printf("    p(group fails/interval)  MC %s +- %s   analytical %s\n",
              bench::sci(est.p_unit).c_str(), bench::sci(est.ci95_unit()).c_str(),
              bench::sci(p_group_analytic).c_str());
  std::printf("    cache MTTF               MC %s h        analytical %s h\n",
              bench::sci(mttf_h_mc).c_str(), bench::sci(mttf_h_analytic).c_str());
  std::printf("    %llu conditional trials -> effective sample size %s "
              "(unweighted-MC-trial equivalent)\n",
              static_cast<unsigned long long>(est.trials),
              bench::sci(est.ess).c_str());

  exp::JsonArray strata;
  for (const auto& s : est.strata) {
    exp::JsonObject o;
    o.set("count", s.stratum.count)
        .set("trials", s.intervals)
        .set("failures", s.failures)
        .set("pmf_base", std::exp(s.stratum.log_pmf_base));
    strata.push(o);
  }
  exp::JsonObject rare;
  rare.set("level", "X")
      .set("ber", recfg.base.cache.ber)
      .set("group_lines", group_lines)
      .set("lifted_groups", lifted_groups)
      .set("p_group_mc", est.p_unit)
      .set("p_group_ci95", est.ci95_unit())
      .set("p_group_analytic", p_group_analytic)
      .set("p_cache_mc", p_cache)
      .set("p_cache_ci95", 1.96 * std::sqrt(var_cache))
      .set("mttf_hours_mc", mttf_h_mc)
      .set("mttf_hours_analytic", mttf_h_analytic)
      .set("ess", est.ess)
      .set("trials", est.trials)
      .set("excluded_mass", est.excluded_mass)
      .set("strata", strata);

  exp::JsonArray comparison;
  comparison.push(
      bench::paper_row("SuDoku-X MTTF (s)", 3.71, rows[0].mttf_h * 3600.0));
  comparison.push(
      bench::paper_row("SuDoku-Y MTTF (h)", "3.49-3.9", rows[2].mttf_h));
  comparison.push(
      bench::paper_row("SuDoku-Z MTTF (h)", 8.25e12, rows[4].mttf_h));
  comparison.push(bench::paper_row("Z (strict) vs ECC-6 ratio", 874.0, ratio));

  exp::JsonObject config;
  config.set("ber", c.ber)
      .set("num_lines", c.num_lines)
      .set("group_size", c.group_size)
      .set("rare_event_trials", recfg.trials)
      .set("rare_event_seed", recfg.base.seed);
  exp::JsonObject result;
  result.set("schemes", scheme_rows)
      .set("z_strict_vs_ecc6_ratio", ratio)
      .set("z_mechanistic_vs_ecc6_ratio", ratio_mech)
      .set("rare_event", rare)
      .set("paper_comparison", comparison);

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  bench::emit_artifact(args, "fig7_mttf", config, result, stats, nullptr, &report);
  return 0;
}
