// Reproduces Figure 7: cache failure probability (DUE+SDC) over time for
// SuDoku-X, SuDoku-Y, SuDoku-Z and ECC-6. Prints each scheme's MTTF and
// the failure-probability series P(t) = 1 - exp(-t/MTTF) at the figure's
// decade points.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, bench::analytical_options());
  bench::print_header("Figure 7: Cache failure probability vs time (DUE+SDC)");

  const auto t0 = std::chrono::steady_clock::now();
  CacheParams c;
  struct Row {
    const char* name;
    double mttf_h;
    const char* paper;
  };
  const Row rows[] = {
      {"SuDoku-X", sudoku_total(c, 'X').mttf_hours(), "3.71 s"},
      {"SuDoku-Y (strict)", sudoku_y_due(c, SdrModel::kStrict).mttf_hours(),
       "3.49-3.9 h"},
      {"SuDoku-Y (mechanistic)", sudoku_total(c, 'Y').mttf_hours(), "3.49-3.9 h"},
      {"ECC-6", ecc_k(c, 6).mttf_seconds() / 3600.0, "~9.4e9 h (0.092 FIT)"},
      {"SuDoku-Z (strict)", sudoku_z_due(c, SdrModel::kStrict).mttf_hours(),
       "8.25e12 h"},
      {"SuDoku-Z (mechanistic)", sudoku_total(c, 'Z').mttf_hours(), "8.25e12 h"},
  };

  exp::JsonArray scheme_rows;
  std::printf("\n  %-24s %16s %22s\n", "Scheme", "MTTF (ours)", "paper");
  for (const auto& r : rows) {
    std::printf("  %-24s %13s h  %22s\n", r.name, bench::sci(r.mttf_h).c_str(), r.paper);
  }

  std::printf("\n  Failure probability series P(t) = 1 - exp(-t/MTTF):\n");
  std::printf("  %-24s", "t");
  const double times_h[] = {1.0 / 3600, 1.0, 24.0, 720.0, 8760.0, 8.76e7};
  const char* labels[] = {"1s", "1h", "1d", "1mo", "1yr", "1e4yr"};
  for (const auto* l : labels) std::printf(" %10s", l);
  std::printf("\n");
  for (const auto& r : rows) {
    std::printf("  %-24s", r.name);
    exp::JsonArray series;
    for (const double t : times_h) {
      const double p = -std::expm1(-t / r.mttf_h);
      std::printf(" %10s", bench::sci(p).c_str());
      exp::JsonObject point;
      point.set("t_hours", t).set("p_fail", p);
      series.push(point);
    }
    std::printf("\n");
    exp::JsonObject row;
    row.set("scheme", r.name)
        .set("mttf_hours", r.mttf_h)
        .set("paper", r.paper)
        .set("series", series);
    scheme_rows.push(row);
  }

  const double ratio =
      ecc_k(c, 6).fit() / sudoku_z_due(c, SdrModel::kStrict).fit();
  std::printf("\n  SuDoku-Z (strict) vs ECC-6 reliability ratio: %.0fx (paper: 874x)\n",
              ratio);
  const double ratio_mech = ecc_k(c, 6).fit() / sudoku_z_due(c).fit();
  std::printf("  SuDoku-Z (mechanistic, what our controller implements): %sx\n",
              bench::sci(ratio_mech).c_str());

  exp::JsonArray comparison;
  comparison.push(
      bench::paper_row("SuDoku-X MTTF (s)", 3.71, rows[0].mttf_h * 3600.0));
  comparison.push(
      bench::paper_row("SuDoku-Y MTTF (h)", "3.49-3.9", rows[2].mttf_h));
  comparison.push(
      bench::paper_row("SuDoku-Z MTTF (h)", 8.25e12, rows[4].mttf_h));
  comparison.push(bench::paper_row("Z (strict) vs ECC-6 ratio", 874.0, ratio));

  exp::JsonObject config;
  config.set("ber", c.ber).set("num_lines", c.num_lines).set("group_size", c.group_size);
  exp::JsonObject result;
  result.set("schemes", scheme_rows)
      .set("z_strict_vs_ecc6_ratio", ratio)
      .set("z_mechanistic_vs_ecc6_ratio", ratio_mech)
      .set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = 6;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "fig7_mttf", config, result, stats);
  return 0;
}
