// Reproduces Table XI: CPPC / RAID-6 / 2DP vs SuDoku, all provisioned with
// CRC-31 per line (and ECC-1 where applicable). Prints the analytical FIT
// at the paper's operating point and a functional Monte-Carlo comparison
// at an accelerated BER where every scheme's failures are observable.
#include <cstdio>

#include "baselines/cppc_cache.h"
#include "baselines/mc_runner.h"
#include "baselines/raid6_cache.h"
#include "baselines/twodp_cache.h"
#include "bench_util.h"
#include "reliability/analytical.h"
#include "reliability/montecarlo.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main() {
  bench::print_header("Table XI: Comparing CPPC, RAID-6, 2DP with SuDoku");

  CacheParams c;
  struct Row {
    const char* name;
    double fit;
    const char* paper;
  };
  const Row rows[] = {
      {"CPPC + CRC-31", cppc(c).fit(), "1.69e14"},
      {"RAID-6 + CRC-31", raid6(c).fit(), "571e3"},
      {"2DP ECC-1+CRC-31", twodp(c).fit(), "2.8e8"},
      {"SuDoku-Z (strict)", sudoku_z_due(c, SdrModel::kStrict).fit(), "1.05e-4"},
      {"SuDoku-Z (mechanistic)", sudoku_z_due(c).fit(), "1.05e-4"},
  };
  std::printf("\n  %-24s %14s %12s\n", "Scheme", "FIT (ours)", "paper");
  for (const auto& r : rows) {
    std::printf("  %-24s %14s %12s\n", r.name, bench::sci(r.fit).c_str(), r.paper);
  }
  std::printf("\n  note: our RAID-6 model (P+Q erasure pair, fails at 3 multi-bit\n"
              "  lines/group) yields a higher FIT than the paper's 571e3; the paper\n"
              "  describes diagonal+row parities whose exact model it does not give.\n"
              "  The headline ordering — SuDoku >= 1e6x stronger than all three —\n"
              "  holds in both accountings.\n");

  bench::print_header(
      "Functional Monte-Carlo at accelerated BER (1 MB cache, 128-line groups, BER 1e-4)");
  baselines::BaselineMcConfig mcfg;
  mcfg.ber = 1e-4;
  mcfg.max_intervals = 300;
  mcfg.seed = 7;

  // 128-line groups: SuDoku-Z's skewed hash needs num_lines >= group^2.
  const std::uint64_t lines = 1u << 14;
  const std::uint32_t group = 128;
  {
    baselines::CppcCache s(lines);
    const auto r = run_baseline_mc(s, mcfg);
    std::printf("  %-24s failure intervals: %llu/%llu\n", s.name().c_str(),
                static_cast<unsigned long long>(r.failure_intervals),
                static_cast<unsigned long long>(r.intervals));
  }
  {
    baselines::Raid6Cache s(lines, group);
    const auto r = run_baseline_mc(s, mcfg);
    std::printf("  %-24s failure intervals: %llu/%llu\n", s.name().c_str(),
                static_cast<unsigned long long>(r.failure_intervals),
                static_cast<unsigned long long>(r.intervals));
  }
  {
    // The paper's wording ("diagonal parity and row-wise parity") matches
    // RDP; both constructions correct two erasures, so the counts agree.
    baselines::Raid6Cache s(lines, group, baselines::Raid6Flavor::kRdp);
    const auto r = run_baseline_mc(s, mcfg);
    std::printf("  %-24s failure intervals: %llu/%llu\n", s.name().c_str(),
                static_cast<unsigned long long>(r.failure_intervals),
                static_cast<unsigned long long>(r.intervals));
  }
  {
    baselines::TwoDpCache s(lines, group);
    const auto r = run_baseline_mc(s, mcfg);
    std::printf("  %-24s failure intervals: %llu/%llu\n", s.name().c_str(),
                static_cast<unsigned long long>(r.failure_intervals),
                static_cast<unsigned long long>(r.intervals));
  }
  {
    McConfig zc;
    zc.cache.num_lines = lines;
    zc.cache.group_size = group;
    zc.cache.ber = mcfg.ber;
    zc.level = SudokuLevel::kZ;
    zc.max_intervals = mcfg.max_intervals;
    zc.seed = mcfg.seed;
    const auto r = run_montecarlo(zc);
    std::printf("  %-24s failure intervals: %llu/%llu\n", "SuDoku-Z",
                static_cast<unsigned long long>(r.failure_intervals),
                static_cast<unsigned long long>(r.intervals));
  }
  return 0;
}
