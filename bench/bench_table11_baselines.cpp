// Reproduces Table XI: CPPC / RAID-6 / 2DP vs SuDoku, all provisioned with
// CRC-31 per line (and ECC-1 where applicable). Prints the analytical FIT
// at the paper's operating point and a functional Monte-Carlo comparison
// at an accelerated BER where every scheme's failures are observable.
//
// The MC section runs on the src/exp engine: each scheme's intervals shard
// across the pool (one scheme instance per shard via a factory) with
// per-trial seed streams, so counts are thread-count-invariant; the whole
// comparison is written as a bench/out JSON artifact. With --checkpoint /
// --resume each scheme's shards checkpoint under their own scope (the
// baseline configs are otherwise identical across schemes, so the scope is
// what keeps their checkpoint trees apart — see docs/robustness.md).
#include <cstdio>
#include <memory>
#include <optional>

#include "baselines/cppc_cache.h"
#include "baselines/mc_runner.h"
#include "baselines/raid6_cache.h"
#include "baselines/twodp_cache.h"
#include "bench_util.h"
#include "exp/checkpoint.h"
#include "exp/mc_experiments.h"
#include "exp/metrics_io.h"
#include "reliability/analytical.h"
#include "reliability/montecarlo.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  exp::install_signal_handlers();
  bench::print_header("Table XI: Comparing CPPC, RAID-6, 2DP with SuDoku");

  CacheParams c;
  struct Row {
    const char* name;
    double fit;
    const char* paper;
  };
  const Row rows[] = {
      {"CPPC + CRC-31", cppc(c).fit(), "1.69e14"},
      {"RAID-6 + CRC-31", raid6(c).fit(), "571e3"},
      {"2DP ECC-1+CRC-31", twodp(c).fit(), "2.8e8"},
      {"SuDoku-Z (strict)", sudoku_z_due(c, SdrModel::kStrict).fit(), "1.05e-4"},
      {"SuDoku-Z (mechanistic)", sudoku_z_due(c).fit(), "1.05e-4"},
  };
  std::printf("\n  %-24s %14s %12s\n", "Scheme", "FIT (ours)", "paper");
  exp::JsonArray fit_rows;
  for (const auto& r : rows) {
    std::printf("  %-24s %14s %12s\n", r.name, bench::sci(r.fit).c_str(), r.paper);
    exp::JsonObject jr;
    jr.set("scheme", r.name).set("fit", r.fit).set("paper", r.paper);
    fit_rows.push(jr);
  }
  std::printf("\n  note: our RAID-6 model (P+Q erasure pair, fails at 3 multi-bit\n"
              "  lines/group) yields a higher FIT than the paper's 571e3; the paper\n"
              "  describes diagonal+row parities whose exact model it does not give.\n"
              "  The headline ordering — SuDoku >= 1e6x stronger than all three —\n"
              "  holds in both accountings.\n");

  bench::print_header(
      "Functional Monte-Carlo at accelerated BER (1 MB cache, 128-line groups, BER 1e-4)");
  baselines::BaselineMcConfig mcfg;
  mcfg.ber = 1e-4;
  mcfg.max_intervals = 300 * args.scale;
  mcfg.seed = args.seed_or(7);

  std::optional<exp::CheckpointStore> store;
  if (args.checkpointing()) store.emplace(args.checkpoint_dir, args.resume);
  exp::ShardRunReport report;

  exp::ExpOptions opts;
  opts.threads = args.threads;
  opts.checkpoint = store ? &*store : nullptr;
  opts.report = &report;
  opts.fleet = args.fleet;
  exp::RunStats total_stats;
  obs::MetricsRegistry total_metrics;
  exp::JsonArray mc_rows;

  // 128-line groups: SuDoku-Z's skewed hash needs num_lines >= group^2.
  const std::uint64_t lines = 1u << 14;
  const std::uint32_t group = 128;

  const auto run_scheme = [&](const std::string& name,
                              const exp::SchemeFactory& factory) {
    // The BaselineMcConfig is identical for every scheme; the per-scheme
    // checkpoint scope is what keeps their shard payloads apart.
    exp::ExpOptions scheme_opts = opts;
    scheme_opts.checkpoint_scope = "table11." + name;
    exp::RunStats stats;
    const auto r = exp::run_baseline_mc_parallel(factory, mcfg, scheme_opts, &stats);
    bench::exit_if_interrupted(args);
    total_stats += stats;
    total_metrics += r.metrics;
    std::printf("  %-24s failure intervals: %llu/%llu\n", name.c_str(),
                static_cast<unsigned long long>(r.failure_intervals),
                static_cast<unsigned long long>(r.intervals));
    exp::JsonObject jr;
    jr.set("scheme", name)
        .set("failure_intervals", r.failure_intervals)
        .set("intervals", r.intervals)
        .set("sdc_units", r.sdc_units);
    mc_rows.push(jr);
  };

  run_scheme("CPPC+CRC-31",
             [&] { return std::make_unique<baselines::CppcCache>(lines); });
  run_scheme("RAID-6+CRC-31", [&] {
    return std::make_unique<baselines::Raid6Cache>(lines, group);
  });
  // The paper's wording ("diagonal parity and row-wise parity") matches
  // RDP; both constructions correct two erasures, so the counts agree.
  run_scheme("RDP+CRC-31", [&] {
    return std::make_unique<baselines::Raid6Cache>(lines, group,
                                                   baselines::Raid6Flavor::kRdp);
  });
  run_scheme("2DP ECC-1+CRC-31", [&] {
    return std::make_unique<baselines::TwoDpCache>(lines, group);
  });
  {
    McConfig zc;
    zc.cache.num_lines = lines;
    zc.cache.group_size = group;
    zc.cache.ber = mcfg.ber;
    zc.level = SudokuLevel::kZ;
    zc.max_intervals = mcfg.max_intervals;
    zc.seed = mcfg.seed;
    exp::ExpOptions z_opts = opts;
    z_opts.checkpoint_scope = "table11.SuDoku-Z";
    exp::RunStats stats;
    const auto r = exp::run_montecarlo_parallel(zc, z_opts, &stats);
    bench::exit_if_interrupted(args);
    total_stats += stats;
    total_metrics += r.metrics;
    std::printf("  %-24s failure intervals: %llu/%llu\n", "SuDoku-Z",
                static_cast<unsigned long long>(r.failure_intervals),
                static_cast<unsigned long long>(r.intervals));
    exp::JsonObject jr;
    jr.set("scheme", "SuDoku-Z")
        .set("failure_intervals", r.failure_intervals)
        .set("intervals", r.intervals)
        .set("sdc_units", r.sdc_lines);
    mc_rows.push(jr);
  }

  exp::JsonObject config;
  config.set("ber", mcfg.ber)
      .set("max_intervals", mcfg.max_intervals)
      .set("seed", mcfg.seed)
      .set("num_lines", lines)
      .set("group_size", group);
  exp::JsonObject result;
  result.set("analytical_fit", fit_rows).set("montecarlo", mc_rows);

  const exp::ResultSink sink(args.out_dir);
  const auto path = sink.write("table11_baselines", config, result, total_stats,
                               &total_metrics, &report);
  std::printf("\n  %llu trials in %.2f s (%s trials/s, %u threads) -> %s\n",
              static_cast<unsigned long long>(total_stats.trials),
              total_stats.wall_seconds,
              bench::sci(total_stats.trials_per_second()).c_str(),
              total_stats.threads, path.string().c_str());
  if (store || report.degraded()) {
    std::printf("  fault tolerance: %llu/%llu shards resumed, %llu retries, "
                "%llu quarantined\n",
                static_cast<unsigned long long>(report.shards_resumed),
                static_cast<unsigned long long>(report.shards_total),
                static_cast<unsigned long long>(report.shards_retried),
                static_cast<unsigned long long>(report.shards_quarantined));
  }
  if (args.json) {
    const auto root = exp::ResultSink::make_root("table11_baselines", config, result,
                                                 total_stats, &total_metrics, &report);
    std::printf("%s\n", root.str(/*pretty=*/true).c_str());
  }
  return 0;
}
