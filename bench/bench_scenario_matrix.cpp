// Scenario x scheme robustness matrix (ROADMAP item 4, docs/faults.md):
// every builtin fault scenario — i.i.d., stuck-at, intermittent,
// spatially-clustered, thermal ramp, Weibull wear-out, and the mixed
// composite — driven against SuDoku-X/Y/Z, Hi-ECC (t=6) and ECC-4 on the
// same array footprint. The paper's §VII evaluation covers only the i.i.d.
// column; the matrix shows how the schemes separate once faults stop being
// independent (§VI's permanent-fault claim, field-study fault mixes).
//
// Every cell runs on the src/exp engine with per-trial seed streams and the
// scenario's own per-(source, interval) streams, so the artifact is
// byte-identical for any --threads and across checkpoint/resume/fleet runs.
// Each cell checkpoints under its own scope.
//
// A final deterministic section exercises the service's graceful
// degradation: a permanent-fault scenario against a two-bank MemoryService
// with repeat-offender retirement enabled, reporting the converged
// retired-line set and the degraded-capacity figures.
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/ecck_cache.h"
#include "baselines/hiecc_cache.h"
#include "baselines/mc_runner.h"
#include "bench_util.h"
#include "exp/checkpoint.h"
#include "exp/mc_experiments.h"
#include "exp/metrics_io.h"
#include "faults/scenario.h"
#include "reliability/montecarlo.h"
#include "service/service.h"

using namespace sudoku;

namespace {

struct Cell {
  std::string scenario;
  std::string scheme;
  std::uint64_t intervals = 0;
  std::uint64_t failure_intervals = 0;
  std::uint64_t due = 0;
  std::uint64_t sdc = 0;
  std::uint64_t corrected = 0;
  std::uint64_t faults = 0;
};

BitVec service_payload(std::uint64_t addr) {
  BitVec data(512);
  std::uint64_t state = addr * 0x9e3779b97f4a7c15ull + 1;
  for (std::uint32_t i = 0; i < 512; i += 64) {
    data.set_bits(i, 64, splitmix64_next(state));
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs::Options opts;
  opts.extra_flags = {"--quick"};
  const auto args = bench::BenchArgs::parse(argc, argv, opts);
  exp::install_signal_handlers();
  const bool quick = args.has_extra("--quick");
  const std::string bench_name =
      quick ? "scenario_matrix_quick" : "scenario_matrix";

  bench::print_header("Mixed-fault scenario matrix: scenario x scheme");

  const std::uint64_t lines = 4096;   // kZ skewed hash needs lines >= group^2
  const std::uint32_t group = 64;
  const std::uint64_t max_intervals = (quick ? 40 : 200) * args.scale;
  const std::uint64_t seed = args.seed_or(11);

  const std::vector<std::string> scenario_names =
      quick ? std::vector<std::string>{"iid", "stuck", "clustered", "mixed"}
            : faults::ScenarioSpec::builtin_names();

  std::optional<exp::CheckpointStore> store;
  if (args.checkpointing()) store.emplace(args.checkpoint_dir, args.resume);
  exp::ShardRunReport report;
  exp::ExpOptions base_opts;
  base_opts.threads = args.threads;
  base_opts.checkpoint = store ? &*store : nullptr;
  base_opts.report = &report;
  base_opts.fleet = args.fleet;

  exp::RunStats total_stats;
  obs::MetricsRegistry total_metrics;
  std::vector<Cell> cells;
  // Scenarios must outlive the parallel runs that share them; a deque keeps
  // references stable while cells append.
  std::deque<faults::FaultScenario> live_scenarios;

  // Geometry probes: fault units differ per scheme family.
  SudokuConfig probe_cfg;
  probe_cfg.geo.num_lines = lines;
  probe_cfg.geo.group_size = group;
  const std::uint32_t sudoku_bits =
      SudokuController(probe_cfg).codec().total_bits();
  const baselines::HiEccCache hiecc_probe(lines, 6);
  const baselines::EccKCache ecck_probe(lines, 4);

  std::printf("\n  %zu scenarios x 5 schemes, %llu intervals/cell, seed %llu\n",
              scenario_names.size(),
              static_cast<unsigned long long>(max_intervals),
              static_cast<unsigned long long>(seed));
  std::printf("\n  %-12s %-10s %10s %8s %6s %10s\n", "scenario", "scheme",
              "fail_ivals", "due", "sdc", "faults");

  const auto print_cell = [](const Cell& c) {
    std::printf("  %-12s %-10s %7llu/%llu %8llu %6llu %10llu\n",
                c.scenario.c_str(), c.scheme.c_str(),
                static_cast<unsigned long long>(c.failure_intervals),
                static_cast<unsigned long long>(c.intervals),
                static_cast<unsigned long long>(c.due),
                static_cast<unsigned long long>(c.sdc),
                static_cast<unsigned long long>(c.faults));
  };

  for (const auto& scenario_name : scenario_names) {
    const faults::ScenarioSpec spec =
        faults::ScenarioSpec::builtin(scenario_name);

    // SuDoku levels share one scenario instance (same geometry).
    const faults::FaultScenario& sudoku_scn = live_scenarios.emplace_back(
        spec, faults::Geometry{lines, sudoku_bits}, seed);
    for (const auto level :
         {SudokuLevel::kX, SudokuLevel::kY, SudokuLevel::kZ}) {
      reliability::McConfig mc;
      mc.cache.num_lines = lines;
      mc.cache.group_size = group;
      mc.level = level;
      mc.max_intervals = max_intervals;
      mc.seed = seed;
      mc.scenario = &sudoku_scn;
      exp::ExpOptions cell_opts = base_opts;
      cell_opts.checkpoint_scope =
          bench_name + "." + scenario_name + "." + to_string(level);
      exp::RunStats stats;
      const auto r = exp::run_montecarlo_parallel(mc, cell_opts, &stats);
      bench::exit_if_interrupted(args);
      total_stats += stats;
      total_metrics += r.metrics;
      Cell cell{scenario_name,   to_string(level),  r.intervals,
                r.failure_intervals, r.due_lines,   r.sdc_lines,
                r.ecc1_corrections,  r.faults_injected};
      print_cell(cell);
      cells.push_back(std::move(cell));
    }

    const auto run_baseline = [&](const std::string& scheme_name,
                                  const faults::Geometry& geo,
                                  const exp::SchemeFactory& factory) {
      const faults::FaultScenario& scn =
          live_scenarios.emplace_back(spec, geo, seed);
      baselines::BaselineMcConfig bc;
      bc.max_intervals = max_intervals;
      bc.seed = seed;
      bc.scenario = &scn;
      exp::ExpOptions cell_opts = base_opts;
      cell_opts.checkpoint_scope =
          bench_name + "." + scenario_name + "." + scheme_name;
      exp::RunStats stats;
      const auto r =
          exp::run_baseline_mc_parallel(factory, bc, cell_opts, &stats);
      bench::exit_if_interrupted(args);
      total_stats += stats;
      total_metrics += r.metrics;
      Cell cell{scenario_name,   scheme_name,  r.intervals,
                r.failure_intervals, r.due_units, r.sdc_units,
                r.corrected,         r.faults_injected};
      print_cell(cell);
      cells.push_back(std::move(cell));
    };

    run_baseline(
        "Hi-ECC",
        {hiecc_probe.num_units(), hiecc_probe.bits_per_unit()},
        [&] { return std::make_unique<baselines::HiEccCache>(lines, 6); });
    run_baseline(
        "ECC-4", {ecck_probe.num_units(), ecck_probe.bits_per_unit()},
        [&] { return std::make_unique<baselines::EccKCache>(lines, 4); });
  }

  exp::JsonArray rows;
  std::map<std::pair<std::string, std::string>, const Cell*> by_key;
  for (const auto& c : cells) {
    exp::JsonObject jr;
    jr.set("scenario", c.scenario)
        .set("scheme", c.scheme)
        .set("intervals", c.intervals)
        .set("failure_intervals", c.failure_intervals)
        .set("due", c.due)
        .set("sdc", c.sdc)
        .set("corrected", c.corrected)
        .set("faults_injected", c.faults);
    rows.push(jr);
    by_key[{c.scenario, c.scheme}] = &c;
  }

  // Paper-style comparison rows: §VI claims SuDoku's scrub-and-repair
  // pipeline tolerates permanent faults as a by-product of its transient
  // machinery; the per-scenario ordering against the per-line baselines is
  // the checkable form of that claim.
  exp::JsonArray comparison;
  bench::print_header("Paper comparison (§VI / §VII)");
  for (const auto& scenario_name : scenario_names) {
    const Cell* z = by_key.count({scenario_name, "SuDoku-Z"})
                        ? by_key[{scenario_name, "SuDoku-Z"}]
                        : nullptr;
    const Cell* ecck = by_key.count({scenario_name, "ECC-4"})
                           ? by_key[{scenario_name, "ECC-4"}]
                           : nullptr;
    const Cell* hiecc = by_key.count({scenario_name, "Hi-ECC"})
                            ? by_key[{scenario_name, "Hi-ECC"}]
                            : nullptr;
    if (z == nullptr || ecck == nullptr || hiecc == nullptr) continue;
    const bool holds = z->failure_intervals <= ecck->failure_intervals &&
                       z->sdc == 0;
    exp::JsonObject jr;
    jr.set("scenario", scenario_name)
        .set("claim",
             scenario_name == "stuck"
                 ? "§VI: SuDoku tolerates permanent faults via scrub+repair"
                 : "SuDoku-Z fails no more often than per-line ECC-4")
        .set("sudoku_z_failures", z->failure_intervals)
        .set("ecc4_failures", ecck->failure_intervals)
        .set("hiecc_failures", hiecc->failure_intervals)
        .set("sudoku_z_sdc", z->sdc)
        .set("holds", holds);
    comparison.push(jr);
    std::printf("  %-12s sudoku-z %llu vs ECC-4 %llu vs Hi-ECC %llu "
                "failure intervals -> %s\n",
                scenario_name.c_str(),
                static_cast<unsigned long long>(z->failure_intervals),
                static_cast<unsigned long long>(ecck->failure_intervals),
                static_cast<unsigned long long>(hiecc->failure_intervals),
                holds ? "holds" : "VIOLATED");
  }

  // ---- graceful degradation under a permanent-fault scenario ----------
  // Deterministic and single-threaded by construction (every service call
  // below is synchronous), so these rows golden like the matrix.
  bench::print_header("Service degradation: repeat-offender retirement");
  const std::uint64_t svc_lines = 1024;
  const std::uint32_t svc_banks = 2;
  SudokuConfig svc_cfg;
  svc_cfg.geo.num_lines = svc_lines;
  svc_cfg.geo.group_size = 32;
  svc_cfg.level = SudokuLevel::kZ;
  service::ServiceConfig scfg;
  scfg.banks = svc_banks;
  scfg.repair_workers = 1;
  scfg.retire_strikes = 3;
  scfg.spare_lines_per_bank = 32;
  service::MemoryService svc(
      scfg, [&](std::uint32_t) { return service::make_sudoku_backend(svc_cfg); });
  svc.format([&](std::uint32_t bank, std::uint64_t line) {
    return service_payload(line * svc_banks + bank);
  });

  std::deque<faults::FaultScenario> svc_scenarios;
  for (std::uint32_t bank = 0; bank < svc_banks; ++bank) {
    svc_scenarios.emplace_back(faults::ScenarioSpec::builtin("stuck"),
                               faults::Geometry{svc_lines, sudoku_bits},
                               seed + 100 + bank);
  }
  const std::uint64_t drive_intervals = quick ? 20 : 60;
  std::vector<std::uint64_t> touched;
  for (std::uint64_t t = 0; t < drive_intervals; ++t) {
    for (std::uint32_t bank = 0; bank < svc_banks; ++bank) {
      const faults::ActiveStuck stuck = svc_scenarios[bank].stuck(t);
      svc.assert_stuck(bank, stuck.cells(), /*scrub_async=*/false);
      const FaultBatch batch = svc_scenarios[bank].transient(t);
      svc.inject_faults(bank, batch, /*scrub_async=*/false);
      touched.clear();
      for (const auto& [unit, bits] : batch) touched.push_back(unit);
      touched.insert(touched.end(), stuck.units().begin(), stuck.units().end());
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
      svc.scrub_units_now(bank, touched);
    }
  }
  // Convergence sweeps: the permanent population is constant, so a few
  // full scrubs retire every repeat offender and nothing else.
  for (int round = 0; round < 4; ++round) {
    for (std::uint32_t bank = 0; bank < svc_banks; ++bank) {
      svc.assert_stuck(bank, svc_scenarios[bank].stuck(0).cells(),
                       /*scrub_async=*/false);
      svc.scrub_bank_now(bank);
    }
  }
  const service::DegradationReport deg = svc.degradation_report();

  // Post-degradation audit: every line either serves its formatted payload
  // (spare-backed or repaired in place) or is an honest DUE — never SDC.
  service::ClientStats audit;
  BitVec buf;
  std::uint64_t audit_due = 0, audit_sdc = 0;
  for (std::uint64_t addr = 0; addr < svc.num_lines(); ++addr) {
    const service::ReadStatus st = svc.read(addr, audit, buf);
    if (st == service::ReadStatus::kDue) {
      ++audit_due;
    } else if (!(buf == service_payload(addr))) {
      ++audit_sdc;
    }
  }

  exp::JsonArray deg_rows;
  for (const auto& bank : deg.banks) {
    std::printf("  bank %u: %llu retired (%llu spare-backed, %llu unmapped) "
                "of %llu lines\n",
                bank.bank,
                static_cast<unsigned long long>(bank.retired_lines.size()),
                static_cast<unsigned long long>(bank.retired_mapped),
                static_cast<unsigned long long>(bank.retired_unmapped),
                static_cast<unsigned long long>(svc_lines));
    exp::JsonObject jr;
    jr.set("bank", bank.bank)
        .set("retired_mapped", bank.retired_mapped)
        .set("retired_unmapped", bank.retired_unmapped)
        .set("spare_capacity", bank.spare_capacity);
    exp::JsonArray ids;
    for (const auto line : bank.retired_lines) ids.push(line);
    jr.set("retired_lines", ids);
    deg_rows.push(jr);
  }
  obs::MetricsRegistry svc_metrics;
  svc.merge_metrics_into(svc_metrics);
  svc_metrics += audit.registry();
  exp::JsonObject degradation;
  degradation.set("banks", deg_rows)
      .set("healthy_fraction", deg.healthy_fraction())
      .set("retired_total", deg.retired_mapped + deg.retired_unmapped)
      .set("audit_due", audit_due)
      .set("audit_sdc", audit_sdc)
      .set("spare_reads",
           audit.registry().find_counter("service.read.retired")->value());
  std::printf("  healthy capacity: %.4f, audit: %llu due, %llu sdc\n",
              deg.healthy_fraction(),
              static_cast<unsigned long long>(audit_due),
              static_cast<unsigned long long>(audit_sdc));

  exp::JsonObject config;
  config.set("num_lines", lines)
      .set("group_size", group)
      .set("max_intervals", max_intervals)
      .set("seed", seed)
      .set("quick", quick);
  exp::JsonArray scn_specs;
  for (const auto& name : scenario_names) {
    scn_specs.push(faults::ScenarioSpec::builtin(name).to_json());
  }
  config.set("scenarios", scn_specs);

  exp::JsonObject result;
  result.set("rows", rows)
      .set("paper_comparison", comparison)
      .set("degradation", degradation);

  const exp::ResultSink sink(args.out_dir);
  const auto path = sink.write(bench_name, config, result, total_stats,
                               &total_metrics, &report);
  std::printf("\n  %llu trials in %.2f s (%s trials/s, %u threads) -> %s\n",
              static_cast<unsigned long long>(total_stats.trials),
              total_stats.wall_seconds,
              bench::sci(total_stats.trials_per_second()).c_str(),
              total_stats.threads, path.string().c_str());
  if (args.json) {
    const auto root = exp::ResultSink::make_root(
        bench_name, config, result, total_stats, &total_metrics, &report);
    std::printf("%s\n", root.str(/*pretty=*/true).c_str());
  }
  return 0;
}
