// Reproduces Figure 8: execution time of SuDoku-Z normalized to an
// idealized error-free cache, per benchmark (SPEC2006 / PARSEC / BIO /
// COMM + four MIX workloads), 8 cores sharing the 64 MB STTRAM LLC of
// Table VI. The paper reports an average slowdown of ~0.1-0.15%. The
// SuDoku-configured runs' sim.* / cache.* series accumulate into the
// bench/out artifact's metrics section (the Ideal runs stay unmetered so
// the counters describe the protected configuration only).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/metrics_io.h"
#include "exp/result_sink.h"
#include "sim/timing_sim.h"

using namespace sudoku;
using namespace sudoku::sim;

namespace {

double run_pair(const std::vector<std::string>& benchmarks, std::uint64_t instr,
                std::uint64_t seed, obs::MetricsRegistry& total_metrics) {
  SimConfig with;
  with.instructions_per_core = instr;
  with.seed = seed;
  SimConfig ideal = with;
  ideal.sudoku.enabled = false;
  auto r_with = TimingSimulator(with).run(benchmarks);
  const auto r_ideal = TimingSimulator(ideal).run(benchmarks);
  total_metrics += r_with.metrics;
  return r_with.total_time_ns / r_ideal.total_time_ns;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args =
      bench::BenchArgs::parse(argc, argv, bench::single_threaded_options());
  const std::uint64_t instr = 400'000 * args.scale;
  const std::uint64_t seed = args.seed_or(1);

  bench::print_header("Figure 8: Execution time of SuDoku-Z normalized to Ideal");
  bench::print_subnote("Table VI system: 8 cores @3.2GHz, ROB 160, width 4, 64MB LLC,");
  bench::print_subnote("read 9ns / write 18ns, DDR3-800 x2 channels.");
  std::printf("  (%llu instructions/core; synthetic traces, see DESIGN.md)\n\n",
              static_cast<unsigned long long>(instr));

  obs::MetricsRegistry total_metrics;
  exp::JsonArray rows;
  double sum = 0.0;
  int count = 0;
  std::uint64_t total_instr = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::printf("  %-16s %-8s %12s\n", "benchmark", "suite", "norm. time");
  for (const auto& b : benchmark_roster()) {
    const double ratio = run_pair({b.name}, instr, seed, total_metrics);
    std::printf("  %-16s %-8s %12.5f\n", b.name.c_str(), b.suite.c_str(), ratio);
    exp::JsonObject row;
    row.set("workload", b.name).set("suite", b.suite).set("normalized_time", ratio);
    rows.push(row);
    sum += ratio;
    ++count;
    total_instr += instr * 8;  // 8 cores, with + ideal counted once
  }
  // Four MIX workloads, as in the paper.
  const std::vector<std::vector<std::string>> mixes = {
      {"mcf", "gcc", "lbm", "swaptions", "comm1", "mummer", "x264", "soplex"},
      {"libquantum", "omnetpp", "canneal", "hmmer", "comm2", "tigr", "vips", "astar"},
      {"bwaves", "xalancbmk", "streamcluster", "gobmk", "comm3", "fasta-dna",
       "bodytrack", "milc"},
      {"GemsFDTD", "sjeng", "dedup", "perlbench", "comm4", "sphinx3", "ferret",
       "leslie3d"},
  };
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const double ratio = run_pair(mixes[m], instr, seed, total_metrics);
    std::printf("  MIX%-13zu %-8s %12.5f\n", m + 1, "MIX", ratio);
    exp::JsonObject row;
    row.set("workload", "MIX" + std::to_string(m + 1))
        .set("suite", "MIX")
        .set("normalized_time", ratio);
    rows.push(row);
    sum += ratio;
    ++count;
    total_instr += instr * 8;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const double avg = sum / count;
  std::printf("\n  GEOMEAN-ish average normalized time: %.5f  (paper: ~1.0010-1.0015)\n",
              avg);
  std::printf("  average slowdown: %.3f%%  (paper: 0.10-0.15%%)\n",
              (avg - 1.0) * 100.0);

  exp::JsonObject config;
  config.set("instructions_per_core", instr)
      .set("num_cores", std::uint64_t{8})
      .set("seed", seed)
      .set("scale", args.scale);
  exp::JsonObject result;
  result.set("workloads", rows)
      .set("average_normalized_time", avg)
      .set("average_slowdown_percent", (avg - 1.0) * 100.0);

  exp::RunStats stats;
  stats.trials = total_instr;
  stats.wall_seconds = wall;
  stats.threads = 1;
  stats.shards = 1;
  const exp::ResultSink sink(args.out_dir);
  const auto path = sink.write("fig8_performance", config, result, stats,
                               &total_metrics);
  std::printf("  artifact: %s\n", path.string().c_str());
  if (args.json) {
    const auto root = exp::ResultSink::make_root("fig8_performance", config, result,
                                                 stats, &total_metrics);
    std::printf("%s\n", root.str(/*pretty=*/true).c_str());
  }
  return 0;
}
