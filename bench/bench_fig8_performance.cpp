// Reproduces Figure 8: execution time of SuDoku-Z normalized to an
// idealized error-free cache, per benchmark (SPEC2006 / PARSEC / BIO /
// COMM + four MIX workloads), 8 cores sharing the 64 MB STTRAM LLC of
// Table VI. The paper reports an average slowdown of ~0.1-0.15%.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/timing_sim.h"

using namespace sudoku;
using namespace sudoku::sim;

namespace {

double run_pair(const std::vector<std::string>& benchmarks, std::uint64_t instr) {
  SimConfig with;
  with.instructions_per_core = instr;
  SimConfig ideal = with;
  ideal.sudoku.enabled = false;
  const auto r_with = TimingSimulator(with).run(benchmarks);
  const auto r_ideal = TimingSimulator(ideal).run(benchmarks);
  return r_with.total_time_ns / r_ideal.total_time_ns;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t instr = argc > 1 ? std::stoull(argv[1]) : 400'000;

  bench::print_header("Figure 8: Execution time of SuDoku-Z normalized to Ideal");
  bench::print_subnote("Table VI system: 8 cores @3.2GHz, ROB 160, width 4, 64MB LLC,");
  bench::print_subnote("read 9ns / write 18ns, DDR3-800 x2 channels.");
  std::printf("  (%llu instructions/core; synthetic traces, see DESIGN.md)\n\n",
              static_cast<unsigned long long>(instr));

  double sum = 0.0;
  int count = 0;
  std::printf("  %-16s %-8s %12s\n", "benchmark", "suite", "norm. time");
  for (const auto& b : benchmark_roster()) {
    const double ratio = run_pair({b.name}, instr);
    std::printf("  %-16s %-8s %12.5f\n", b.name.c_str(), b.suite.c_str(), ratio);
    sum += ratio;
    ++count;
  }
  // Four MIX workloads, as in the paper.
  const std::vector<std::vector<std::string>> mixes = {
      {"mcf", "gcc", "lbm", "swaptions", "comm1", "mummer", "x264", "soplex"},
      {"libquantum", "omnetpp", "canneal", "hmmer", "comm2", "tigr", "vips", "astar"},
      {"bwaves", "xalancbmk", "streamcluster", "gobmk", "comm3", "fasta-dna",
       "bodytrack", "milc"},
      {"GemsFDTD", "sjeng", "dedup", "perlbench", "comm4", "sphinx3", "ferret",
       "leslie3d"},
  };
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const double ratio = run_pair(mixes[m], instr);
    std::printf("  MIX%-13zu %-8s %12.5f\n", m + 1, "MIX", ratio);
    sum += ratio;
    ++count;
  }

  std::printf("\n  GEOMEAN-ish average normalized time: %.5f  (paper: ~1.0010-1.0015)\n",
              sum / count);
  std::printf("  average slowdown: %.3f%%  (paper: 0.10-0.15%%)\n",
              (sum / count - 1.0) * 100.0);
  return 0;
}
