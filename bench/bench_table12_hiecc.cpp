// Reproduces Table XII: SuDoku vs Hi-ECC (ECC-6 over 1 KB regions). Also
// prints the storage-overhead comparison of §VII-H and §VIII-C.
#include <chrono>
#include <cstdio>

#include "baselines/hiecc_cache.h"
#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, bench::analytical_options());
  bench::print_header("Table XII: SuDoku vs Hi-ECC");

  const auto t0 = std::chrono::steady_clock::now();
  CacheParams c;
  const double fit_sudoku = sudoku_z_due(c, SdrModel::kStrict).fit();
  const double fit_hiecc = hi_ecc(c).fit();
  std::printf("\n  %-24s %14s %12s\n", "Scheme", "FIT (ours)", "paper");
  std::printf("  %-24s %14s %12s\n", "SuDoku-Z (strict)",
              bench::sci(fit_sudoku).c_str(), "1.05e-4");
  std::printf("  %-24s %14s %12s\n", "Hi-ECC (ECC-6/1KB)",
              bench::sci(fit_hiecc).c_str(), "1.47");
  std::printf("\n  note: our Hi-ECC binomial over 8276 bits yields a higher FIT than\n"
              "  the paper's 1.47; both agree Hi-ECC misses the 1-FIT target while\n"
              "  SuDoku beats it by orders of magnitude (the Table XII claim).\n");

  bench::print_header("Storage overhead per 64B line (§VII-H)");
  baselines::HiEccCache hi(1u << 14);
  const double hiecc_bits = hi.overhead_bits_per_line();
  std::printf("  %-24s %10s\n", "Scheme", "bits/line");
  std::printf("  %-24s %10.2f\n", "ECC-6 per line", 60.0);
  std::printf("  %-24s %10.2f   (10 ECC-1 + 31 CRC + 2 PLT amortized)\n",
              "SuDoku-Z", 43.0);
  std::printf("  %-24s %10.2f   (84 bits per 16-line region)\n",
              hi.name().c_str(), hiecc_bits);
  const double storage_saving = (1.0 - 43.0 / 60.0) * 100.0;
  std::printf("\n  SuDoku saves %.0f%% storage vs ECC-6 (paper: ~30%%).\n",
              storage_saving);

  exp::JsonArray comparison;
  comparison.push(bench::paper_row("SuDoku-Z FIT (strict)", 1.05e-4, fit_sudoku));
  comparison.push(bench::paper_row("Hi-ECC FIT", 1.47, fit_hiecc));
  comparison.push(
      bench::paper_row("storage saving vs ECC-6 (%)", 30.0, storage_saving));

  exp::JsonObject config;
  config.set("ber", c.ber).set("num_lines", c.num_lines).set("group_size", c.group_size);
  exp::JsonObject result;
  result.set("fit_sudoku_z_strict", fit_sudoku)
      .set("fit_hi_ecc", fit_hiecc)
      .set("sudoku_bits_per_line", 43.0)
      .set("ecc6_bits_per_line", 60.0)
      .set("hi_ecc_bits_per_line", hiecc_bits)
      .set("storage_saving_pct", storage_saving)
      .set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = 2;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "table12_hiecc", config, result, stats);
  return 0;
}
