// Reproduces Table XII: SuDoku vs Hi-ECC (ECC-6 over 1 KB regions). Also
// prints the storage-overhead comparison of §VII-H and §VIII-C.
#include <cstdio>

#include "baselines/hiecc_cache.h"
#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main() {
  bench::print_header("Table XII: SuDoku vs Hi-ECC");

  CacheParams c;
  std::printf("\n  %-24s %14s %12s\n", "Scheme", "FIT (ours)", "paper");
  std::printf("  %-24s %14s %12s\n", "SuDoku-Z (strict)",
              bench::sci(sudoku_z_due(c, SdrModel::kStrict).fit()).c_str(), "1.05e-4");
  std::printf("  %-24s %14s %12s\n", "Hi-ECC (ECC-6/1KB)",
              bench::sci(hi_ecc(c).fit()).c_str(), "1.47");
  std::printf("\n  note: our Hi-ECC binomial over 8276 bits yields a higher FIT than\n"
              "  the paper's 1.47; both agree Hi-ECC misses the 1-FIT target while\n"
              "  SuDoku beats it by orders of magnitude (the Table XII claim).\n");

  bench::print_header("Storage overhead per 64B line (§VII-H)");
  baselines::HiEccCache hi(1u << 14);
  std::printf("  %-24s %10s\n", "Scheme", "bits/line");
  std::printf("  %-24s %10.2f\n", "ECC-6 per line", 60.0);
  std::printf("  %-24s %10.2f   (10 ECC-1 + 31 CRC + 2 PLT amortized)\n",
              "SuDoku-Z", 43.0);
  std::printf("  %-24s %10.2f   (84 bits per 16-line region)\n",
              hi.name().c_str(), hi.overhead_bits_per_line());
  std::printf("\n  SuDoku saves %.0f%% storage vs ECC-6 (paper: ~30%%).\n",
              (1.0 - 43.0 / 60.0) * 100.0);
  return 0;
}
