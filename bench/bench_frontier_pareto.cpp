// Reliability-bandwidth-capacity Pareto frontier for large-codeword ECC
// (ROADMAP item 5, docs/frontier.md). The paper fixes two points on this
// curve — per-line ECC-t (64 B) and Hi-ECC's ECC-6 over 1 KB; the
// Ramulator2_ECC study asks what happens as codewords keep growing. This
// bench sweeps codeword size x strength (codes/ecc_design.h) and, per
// design point, reports the three frontier axes:
//
//   * FIT — analytical (n, k, t) region-code model at the paper's cache
//     geometry and BER (reliability/analytical.h), cross-checked by a
//     Monte-Carlo fault-injection campaign on the generalized region cache
//     at an accelerated BER (engine-backed: the MC section is what
//     --threads/--checkpoint/--fleet shard);
//   * bandwidth / performance — the timing model with the region-ECC data
//     path enabled (redundant codeword fetches, decode latency, per-core
//     streaming decode-hiding, RMW parity write-back) against synthetic
//     SPEC-profile workloads and the checked-in Ramulator2-style traces;
//   * capacity overhead — parity bits per data bit, closed form.
//
// Per workload, design points that no other point beats on all three axes
// are flagged pareto=true. Every section is deterministic: analytical rows
// are pure functions, MC runs on the per-trial-seed-stream engine, timing
// sims are sequential and seeded — so the artifact is byte-identical for
// any --threads and across checkpoint/resume/fleet runs
// (scripts/ci_frontier_smoke.sh enforces this against bench/golden).
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "baselines/region_cache.h"
#include "bench_util.h"
#include "codes/ecc_design.h"
#include "exp/checkpoint.h"
#include "exp/mc_experiments.h"
#include "reliability/analytical.h"
#include "sim/timing_sim.h"

using namespace sudoku;

namespace {

// Decode latency model for the timing sim: syndrome evaluation scales with
// the codeword, the Chien search with n*t — anchored so per-line ECC-1
// costs ~1 ns and Hi-ECC's 1 KB ECC-6 lands near 11 ns.
double decode_ns_for(const EccDesign& d) {
  return 1.0 + 0.1 * d.t * d.read_amplification();
}

struct DesignPoint {
  EccDesign design;
  double fit = 0.0;
  double mttf_hours = 0.0;
};

struct PerfPoint {
  double time_ns = 0.0;
  double relative_performance = 0.0;  // ideal_time / time, <= 1
  double bandwidth_amplification = 1.0;
  double buffer_hit_rate = 0.0;
  std::uint64_t region_opens = 0;
  bool pareto = false;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs::Options opts;
  opts.extra_flags = {"--quick"};
  const auto args = bench::BenchArgs::parse(argc, argv, opts);
  exp::install_signal_handlers();
  const bool quick = args.has_extra("--quick");
  const std::string bench_name =
      quick ? "frontier_pareto_quick" : "frontier_pareto";

  bench::print_header(
      "Large-codeword ECC frontier: FIT x bandwidth x capacity");

  const std::uint64_t seed = args.seed_or(23);
  const std::string traces = SUDOKU_TRACES_DIR;

  // ---- design axes ------------------------------------------------------
  std::vector<DesignPoint> points;
  reliability::CacheParams cache;  // paper geometry: 64 MB, BER 5.3e-6/20 ms
  for (const auto bytes : frontier_codeword_bytes()) {
    for (const int t : frontier_strengths()) {
      DesignPoint p;
      p.design = make_ecc_design(bytes, t);
      const auto fit = reliability::region_code_fit(
          cache, p.design.data_bits, p.design.parity_bits, p.design.t);
      p.fit = fit.fit();
      p.mttf_hours = fit.mttf_hours();
      points.push_back(std::move(p));
    }
  }

  std::printf("\n  %zu design points (%zu codeword sizes x %zu strengths), "
              "seed %llu\n",
              points.size(), frontier_codeword_bytes().size(),
              frontier_strengths().size(),
              static_cast<unsigned long long>(seed));
  std::printf("\n  %-9s %3s %3s %7s %9s %9s %11s %12s\n", "design", "t", "m",
              "parity", "cap_ovh", "read_amp", "FIT", "MTTF_h");
  for (const auto& p : points) {
    std::printf("  %-9s %3d %3d %7u %9.5f %9.2f %11s %12s\n",
                p.design.name.c_str(), p.design.t, p.design.m,
                p.design.parity_bits, p.design.capacity_overhead(),
                p.design.read_amplification(), bench::sci(p.fit).c_str(),
                bench::sci(p.mttf_hours).c_str());
  }

  // ---- Monte-Carlo cross-check (the engine-backed section) --------------
  // Accelerated BER tuned per design so each codeword averages t faults per
  // interval: failures are common enough to measure, and the expected DUE
  // count per interval (regions x P[Binom(n, ber) > t]) is linear — no
  // saturation at the cache level to hide a wrong tail.
  bench::print_header("MC cross-check: measured vs predicted DUE regions");
  const std::vector<std::string> mc_names =
      quick ? std::vector<std::string>{"512B-t2", "1KB-t6"}
            : std::vector<std::string>{"64B-t1", "512B-t2", "1KB-t6",
                                       "4KB-t4"};
  const std::uint64_t mc_lines = 256;  // multiple of every lines_per_codeword
  const std::uint64_t mc_intervals = (quick ? 40 : 160) * args.scale;

  std::optional<exp::CheckpointStore> store;
  if (args.checkpointing()) store.emplace(args.checkpoint_dir, args.resume);
  exp::ShardRunReport report;
  exp::ExpOptions base_opts;
  base_opts.threads = args.threads;
  base_opts.checkpoint = store ? &*store : nullptr;
  base_opts.report = &report;
  base_opts.fleet = args.fleet;

  exp::RunStats total_stats;
  obs::MetricsRegistry total_metrics;
  exp::JsonArray mc_rows;
  std::printf("\n  %-9s %9s %9s %12s %12s %7s\n", "design", "ber",
              "intervals", "measured/iv", "predicted/iv", "ratio");
  for (const auto& name : mc_names) {
    const DesignPoint* pt = nullptr;
    for (const auto& p : points) {
      if (p.design.name == name) pt = &p;
    }
    if (pt == nullptr) continue;
    const EccDesign& d = pt->design;
    const double ber = static_cast<double>(d.t) / d.codeword_bits;
    baselines::BaselineMcConfig mc;
    mc.ber = ber;
    mc.max_intervals = mc_intervals;
    mc.seed = seed;
    exp::ExpOptions cell_opts = base_opts;
    cell_opts.checkpoint_scope = bench_name + ".mc." + name;
    exp::RunStats stats;
    const auto r = exp::run_baseline_mc_parallel(
        [&] { return std::make_unique<baselines::RegionEccCache>(mc_lines, d); },
        mc, cell_opts, &stats);
    bench::exit_if_interrupted(args);
    total_stats += stats;
    total_metrics += r.metrics;

    const double regions =
        static_cast<double>(mc_lines) / d.lines_per_codeword();
    const double p_region = std::exp(reliability::log_p_line_ge(
        d.codeword_bits, static_cast<std::uint32_t>(d.t) + 1, ber));
    const double predicted = regions * p_region;
    // A >t-fault codeword either fails to decode (DUE) or miscorrects
    // (SDC); the analytical P[>t] covers both outcomes.
    const double measured = static_cast<double>(r.due_units + r.sdc_units) /
                            static_cast<double>(r.intervals);
    const double ratio = predicted > 0.0 ? measured / predicted : 0.0;
    std::printf("  %-9s %9s %9llu %12.3f %12.3f %7.3f\n", name.c_str(),
                bench::sci(ber).c_str(),
                static_cast<unsigned long long>(r.intervals), measured,
                predicted, ratio);
    exp::JsonObject jr;
    jr.set("design", name)
        .set("ber", ber)
        .set("intervals", r.intervals)
        .set("due_units", r.due_units)
        .set("sdc_units", r.sdc_units)
        .set("corrected", r.corrected)
        .set("measured_due_per_interval", measured)
        .set("predicted_due_per_interval", predicted)
        .set("ratio", ratio);
    mc_rows.push(jr);
  }

  // ---- timing: region-ECC data path per (workload x design) -------------
  // Each workload first runs with the region path disabled (the error-free
  // ideal); relative performance is ideal_time / design_time. Streaming
  // workloads hold their open regions and hide repeat decodes; irregular
  // ones pay the full fetch+decode per touch — that split is the frontier's
  // bandwidth axis made visible.
  bench::print_header("Timing: decode hiding and redundant-read bandwidth");
  struct Workload {
    std::string label;  // artifact name (path-free, goldens are portable)
    std::string spec;   // make_source spec
  };
  const std::vector<Workload> workloads = {
      {"lbm", "lbm"},                                // synthetic, streaming
      {"mcf", "mcf"},                                // synthetic, irregular
      {"ai_stream", "ram:" + traces + "/ai_stream.trace"},
      {"hpc_mix", "ram:" + traces + "/hpc_mix.trace"},
  };

  sim::SimConfig sim_cfg;
  sim_cfg.num_cores = 4;
  sim_cfg.instructions_per_core = (quick ? 40'000 : 200'000) * args.scale;
  sim_cfg.warmup_accesses_per_core = 4'000;
  sim_cfg.llc.size_bytes = 4ull << 20;
  sim_cfg.seed = seed;
  sim_cfg.sudoku.enabled = false;  // isolate the region-ECC overheads

  exp::JsonArray workload_rows;
  for (const auto& w : workloads) {
    sim::SimConfig ideal = sim_cfg;
    ideal.region.enabled = false;
    const auto base = sim::TimingSimulator(ideal).run({w.spec});
    bench::exit_if_interrupted(args);

    std::vector<PerfPoint> perf(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      const EccDesign& d = points[i].design;
      sim::SimConfig cfg = sim_cfg;
      cfg.region.enabled = true;
      cfg.region.region_bytes = d.data_bytes;
      cfg.region.parity_bits = d.parity_bits;
      cfg.region.decode_ns = decode_ns_for(d);
      const auto r = sim::TimingSimulator(cfg).run({w.spec});
      bench::exit_if_interrupted(args);
      PerfPoint& pp = perf[i];
      pp.time_ns = r.total_time_ns;
      pp.relative_performance =
          r.total_time_ns > 0.0 ? base.total_time_ns / r.total_time_ns : 0.0;
      pp.bandwidth_amplification = r.region_bandwidth_amplification();
      const std::uint64_t touches = r.region_opens + r.region_buffer_hits;
      pp.buffer_hit_rate =
          touches ? static_cast<double>(r.region_buffer_hits) / touches : 0.0;
      pp.region_opens = r.region_opens;
    }

    // Pareto filter on (FIT down, capacity overhead down, performance up).
    for (std::size_t i = 0; i < perf.size(); ++i) {
      bool dominated = false;
      for (std::size_t j = 0; j < perf.size() && !dominated; ++j) {
        if (j == i) continue;
        const bool no_worse =
            points[j].fit <= points[i].fit &&
            points[j].design.capacity_overhead() <=
                points[i].design.capacity_overhead() &&
            perf[j].relative_performance >= perf[i].relative_performance;
        const bool better =
            points[j].fit < points[i].fit ||
            points[j].design.capacity_overhead() <
                points[i].design.capacity_overhead() ||
            perf[j].relative_performance > perf[i].relative_performance;
        dominated = no_worse && better;
      }
      perf[i].pareto = !dominated;
    }

    std::printf("\n  workload %-10s (ideal %.0f us)\n", w.label.c_str(),
                base.total_time_ns / 1000.0);
    std::printf("  %-9s %9s %9s %9s %9s %7s\n", "design", "rel_perf",
                "bw_amp", "buf_hit", "opens", "pareto");
    exp::JsonArray point_rows;
    for (std::size_t i = 0; i < perf.size(); ++i) {
      const auto& pp = perf[i];
      std::printf("  %-9s %9.4f %9.3f %9.3f %9llu %7s\n",
                  points[i].design.name.c_str(), pp.relative_performance,
                  pp.bandwidth_amplification, pp.buffer_hit_rate,
                  static_cast<unsigned long long>(pp.region_opens),
                  pp.pareto ? "*" : "");
      exp::JsonObject jp;
      jp.set("design", points[i].design.name)
          .set("fit", points[i].fit)
          .set("capacity_overhead", points[i].design.capacity_overhead())
          .set("time_ns", pp.time_ns)
          .set("relative_performance", pp.relative_performance)
          .set("bandwidth_amplification", pp.bandwidth_amplification)
          .set("buffer_hit_rate", pp.buffer_hit_rate)
          .set("region_opens", pp.region_opens)
          .set("pareto", pp.pareto);
      point_rows.push(jp);
    }
    exp::JsonObject jw;
    jw.set("workload", w.label)
        .set("ideal_time_ns", base.total_time_ns)
        .set("points", point_rows);
    workload_rows.push(jw);
  }

  // ---- artifact ---------------------------------------------------------
  exp::JsonObject config;
  exp::JsonArray sizes_json, ts_json, mc_json;
  for (const auto b : frontier_codeword_bytes()) {
    sizes_json.push(static_cast<std::uint64_t>(b));
  }
  for (const int t : frontier_strengths()) {
    ts_json.push(static_cast<std::uint64_t>(t));
  }
  for (const auto& n : mc_names) mc_json.push(n);
  config.set("codeword_bytes", sizes_json)
      .set("strengths", ts_json)
      .set("cache_num_lines", cache.num_lines)
      .set("cache_ber", cache.ber)
      .set("mc_designs", mc_json)
      .set("mc_lines", mc_lines)
      .set("mc_intervals", mc_intervals)
      .set("sim_instructions_per_core", sim_cfg.instructions_per_core)
      .set("sim_cores", sim_cfg.num_cores)
      .set("seed", seed)
      .set("quick", quick);

  exp::JsonArray design_rows;
  for (const auto& p : points) {
    exp::JsonObject jd;
    jd.set("name", p.design.name)
        .set("data_bytes", p.design.data_bytes)
        .set("t", p.design.t)
        .set("m", p.design.m)
        .set("parity_bits", p.design.parity_bits)
        .set("codeword_bits", p.design.codeword_bits)
        .set("capacity_overhead", p.design.capacity_overhead())
        .set("read_amplification", p.design.read_amplification())
        .set("write_amplification", p.design.write_amplification())
        .set("fit", p.fit)
        .set("mttf_hours", p.mttf_hours);
    design_rows.push(jd);
  }

  exp::JsonObject result;
  result.set("designs", design_rows)
      .set("mc_validation", mc_rows)
      .set("workloads", workload_rows);

  bench::emit_artifact(args, bench_name, config, result, total_stats,
                       &total_metrics, &report);
  std::printf("  %llu MC trials in %.2f s (%u threads)\n",
              static_cast<unsigned long long>(total_stats.trials),
              total_stats.wall_seconds, total_stats.threads);
  return 0;
}
