// Reproduces Figure 9: System Energy-Delay Product of SuDoku-Z normalized
// to the error-free ideal baseline (Table VII energy parameters). The
// paper reports an increase of at most ~0.4% on average, driven by the PLT
// updates on every cache write.
//
// Each benchmark (and each 8-core mix) is an independent with/ideal
// simulation pair, so the pairs fan out across the worker pool; results
// land in an index-addressed slot table and are reduced in roster order,
// which keeps the artifact bit-identical for any --threads value.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "energy/energy_model.h"
#include "exp/thread_pool.h"
#include "sim/timing_sim.h"

using namespace sudoku;
using namespace sudoku::sim;

namespace {

struct EdpPair {
  double ratio = 0.0;
  double plt_j = 0.0;
};

EdpPair run_pair(const std::vector<std::string>& benchmarks, std::uint64_t instr) {
  SimConfig with;
  with.instructions_per_core = instr;
  SimConfig ideal = with;
  ideal.sudoku.enabled = false;

  const auto r_with = TimingSimulator(with).run(benchmarks);
  const auto r_ideal = TimingSimulator(ideal).run(benchmarks);

  energy::EnergyParams params;
  const std::uint64_t sttram_cells = with.llc.num_lines() * 553;
  // SuDoku-Z: two PLTs of 2048 parity lines × 553 bits in SRAM (§VII-H).
  const std::uint64_t plt_cells = 2ull * 2048 * 553;
  const auto e_with = energy::compute_energy(r_with, params, sttram_cells, plt_cells);
  const auto e_ideal = energy::compute_energy(r_ideal, params, sttram_cells, 0);
  return {energy::edp(e_with, r_with.total_time_ns) /
              energy::edp(e_ideal, r_ideal.total_time_ns),
          e_with.plt_dynamic_j};
}

struct Workload {
  std::string label;
  std::string suite;
  std::vector<std::string> benchmarks;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs::Options opts;
  opts.checkpoint = false;  // every pair reruns in seconds; nothing to persist
  const auto args = bench::BenchArgs::parse(argc, argv, opts);
  const std::uint64_t instr = 400'000 * args.scale;

  bench::print_header("Figure 9: System-EDP of SuDoku-Z normalized to error-free baseline");
  bench::print_subnote("Table VII: STTRAM 0.35/0.13 nJ per write/read, 0.07 nW/cell static;");
  bench::print_subnote("SRAM 0.11/0.05 nJ, 4.02 nW/cell; codec 40 pJ/line.");

  std::vector<Workload> workloads;
  for (const auto& b : benchmark_roster()) {
    workloads.push_back({b.name, b.suite, {b.name}});
  }
  const std::vector<std::vector<std::string>> mixes = {
      {"mcf", "gcc", "lbm", "swaptions", "comm1", "mummer", "x264", "soplex"},
      {"libquantum", "omnetpp", "canneal", "hmmer", "comm2", "tigr", "vips", "astar"},
      {"bwaves", "xalancbmk", "streamcluster", "gobmk", "comm3", "fasta-dna",
       "bodytrack", "milc"},
      {"GemsFDTD", "sjeng", "dedup", "perlbench", "comm4", "sphinx3", "ferret",
       "leslie3d"},
  };
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    workloads.push_back({"MIX" + std::to_string(m + 1), "MIX", mixes[m]});
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<EdpPair> slots(workloads.size());
  exp::ThreadPool pool(args.threads);
  pool.parallel_for(workloads.size(), [&](std::uint64_t i) {
    slots[i] = run_pair(workloads[i].benchmarks, instr);
  });

  std::printf("\n  %-16s %-8s %12s\n", "benchmark", "suite", "norm. EDP");
  exp::JsonArray rows;
  double sum = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    std::printf("  %-16s %-8s %12.5f\n", workloads[i].label.c_str(),
                workloads[i].suite.c_str(), slots[i].ratio);
    sum += slots[i].ratio;
    worst = std::max(worst, slots[i].ratio);
    exp::JsonObject row;
    row.set("workload", workloads[i].label)
        .set("suite", workloads[i].suite)
        .set("norm_edp", slots[i].ratio)
        .set("plt_dynamic_j", slots[i].plt_j);
    rows.push(row);
  }
  const double average = sum / static_cast<double>(workloads.size());
  std::printf("\n  average normalized EDP: %.5f (paper: <= ~1.004 on average)\n",
              average);
  std::printf("  worst case:             %.5f\n", worst);

  // §VII-I: PLT write traffic. One representative heavy-write run shows
  // the SRAM PLT ports loafing far below the STTRAM banks they shadow.
  SimConfig cfg;
  cfg.instructions_per_core = instr;
  const auto r = TimingSimulator(cfg).run({"lbm", "comm1", "comm2", "dedup"});
  const double llc_util = r.llc_bank_utilization(cfg.llc.banks);
  const double plt_util = r.plt_bank_utilization(cfg.llc.banks);
  std::printf("\n  §VII-I PLT bandwidth check (write-heavy mix):\n");
  std::printf("  LLC bank utilization: %.2f%%   PLT port utilization: %.2f%%\n",
              100 * llc_util, 100 * plt_util);
  std::printf("  (PLT writes are 1ns SRAM ops vs 18ns STTRAM writes: no bottleneck,\n");
  std::printf("   as the paper argues.)\n");
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  exp::JsonArray comparison;
  comparison.push(bench::paper_row("average normalized EDP", 1.004, average));
  comparison.push(bench::paper_row("worst-case normalized EDP", "~1.01", worst));

  exp::JsonObject config;
  config.set("instructions_per_core", instr)
      .set("workloads", static_cast<std::uint64_t>(workloads.size()))
      .set("scale", args.scale);
  exp::JsonObject result;
  result.set("rows", rows)
      .set("average_norm_edp", average)
      .set("worst_norm_edp", worst)
      .set("llc_bank_utilization", llc_util)
      .set("plt_port_utilization", plt_util)
      .set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = static_cast<std::uint64_t>(workloads.size());
  stats.wall_seconds = wall;
  stats.threads = pool.size();
  stats.shards = static_cast<std::uint64_t>(workloads.size());
  bench::emit_artifact(args, "fig9_edp", config, result, stats);
  return 0;
}
