// Reproduces Figure 9: System Energy-Delay Product of SuDoku-Z normalized
// to the error-free ideal baseline (Table VII energy parameters). The
// paper reports an increase of at most ~0.4% on average, driven by the PLT
// updates on every cache write.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "energy/energy_model.h"
#include "sim/timing_sim.h"

using namespace sudoku;
using namespace sudoku::sim;

namespace {

struct EdpPair {
  double ratio;
  double plt_j;
};

EdpPair run_pair(const std::vector<std::string>& benchmarks, std::uint64_t instr) {
  SimConfig with;
  with.instructions_per_core = instr;
  SimConfig ideal = with;
  ideal.sudoku.enabled = false;

  const auto r_with = TimingSimulator(with).run(benchmarks);
  const auto r_ideal = TimingSimulator(ideal).run(benchmarks);

  energy::EnergyParams params;
  const std::uint64_t sttram_cells = with.llc.num_lines() * 553;
  // SuDoku-Z: two PLTs of 2048 parity lines × 553 bits in SRAM (§VII-H).
  const std::uint64_t plt_cells = 2ull * 2048 * 553;
  const auto e_with = energy::compute_energy(r_with, params, sttram_cells, plt_cells);
  const auto e_ideal = energy::compute_energy(r_ideal, params, sttram_cells, 0);
  return {energy::edp(e_with, r_with.total_time_ns) /
              energy::edp(e_ideal, r_ideal.total_time_ns),
          e_with.plt_dynamic_j};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t instr = argc > 1 ? std::stoull(argv[1]) : 400'000;

  bench::print_header("Figure 9: System-EDP of SuDoku-Z normalized to error-free baseline");
  bench::print_subnote("Table VII: STTRAM 0.35/0.13 nJ per write/read, 0.07 nW/cell static;");
  bench::print_subnote("SRAM 0.11/0.05 nJ, 4.02 nW/cell; codec 40 pJ/line.");
  std::printf("\n  %-16s %-8s %12s\n", "benchmark", "suite", "norm. EDP");

  double sum = 0.0;
  int count = 0;
  double worst = 0.0;
  for (const auto& b : benchmark_roster()) {
    const auto r = run_pair({b.name}, instr);
    std::printf("  %-16s %-8s %12.5f\n", b.name.c_str(), b.suite.c_str(), r.ratio);
    sum += r.ratio;
    worst = std::max(worst, r.ratio);
    ++count;
  }
  const std::vector<std::vector<std::string>> mixes = {
      {"mcf", "gcc", "lbm", "swaptions", "comm1", "mummer", "x264", "soplex"},
      {"libquantum", "omnetpp", "canneal", "hmmer", "comm2", "tigr", "vips", "astar"},
      {"bwaves", "xalancbmk", "streamcluster", "gobmk", "comm3", "fasta-dna",
       "bodytrack", "milc"},
      {"GemsFDTD", "sjeng", "dedup", "perlbench", "comm4", "sphinx3", "ferret",
       "leslie3d"},
  };
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const auto r = run_pair(mixes[m], instr);
    std::printf("  MIX%-13zu %-8s %12.5f\n", m + 1, "MIX", r.ratio);
    sum += r.ratio;
    worst = std::max(worst, r.ratio);
    ++count;
  }

  std::printf("\n  average normalized EDP: %.5f (paper: <= ~1.004 on average)\n",
              sum / count);
  std::printf("  worst case:             %.5f\n", worst);

  // §VII-I: PLT write traffic. One representative heavy-write run shows
  // the SRAM PLT ports loafing far below the STTRAM banks they shadow.
  SimConfig cfg;
  cfg.instructions_per_core = instr;
  const auto r = TimingSimulator(cfg).run({"lbm", "comm1", "comm2", "dedup"});
  std::printf("\n  §VII-I PLT bandwidth check (write-heavy mix):\n");
  std::printf("  LLC bank utilization: %.2f%%   PLT port utilization: %.2f%%\n",
              100 * r.llc_bank_utilization(cfg.llc.banks),
              100 * r.plt_bank_utilization(cfg.llc.banks));
  std::printf("  (PLT writes are 1ns SRAM ops vs 18ns STTRAM writes: no bottleneck,\n");
  std::printf("   as the paper argues.)\n");
  return 0;
}
