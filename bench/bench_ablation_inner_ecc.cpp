// §VII-G ablation: "SuDoku can be enhanced even further by replacing ECC-1
// with ECC-2." Sweeps the inner-code strength and prints the reliability /
// storage tradeoff for the whole SuDoku ladder, at the paper's BER and at
// the degraded Delta=33 operating point where the enhancement matters.
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"
#include "sttram/device_model.h"

using namespace sudoku;
using namespace sudoku::reliability;

namespace {

void sweep(double ber, const char* label) {
  bench::print_header(std::string("Inner-ECC sweep at ") + label);
  std::printf("\n  %-8s %10s | %12s %12s %14s | %12s\n", "inner", "bits/line",
              "X FIT", "Y FIT", "Z FIT (strict)", "Z (mech)");
  for (int t = 1; t <= 3; ++t) {
    CacheParams c;
    c.ber = ber;
    c.inner_ecc_t = t;
    std::printf("  ECC-%-4d %10u | %12s %12s %14s | %12s\n", t,
                c.sudoku_line_bits() - 512,
                bench::sci(sudoku_x_due(c).fit()).c_str(),
                bench::sci(sudoku_y_due(c).fit()).c_str(),
                bench::sci(sudoku_z_due(c, SdrModel::kStrict).fit()).c_str(),
                bench::sci(sudoku_z_due(c).fit()).c_str());
  }
}

}  // namespace

int main() {
  CacheParams base;
  sweep(base.ber, "the paper's operating point (Delta=35, BER 5.3e-6)");

  ThermalParams d33;
  d33.delta_mean = 33.0;
  sweep(effective_ber(d33, 0.02), "Delta=33 (scaled-down node)");

  std::printf("\n  takeaway (paper §VII-G): at degraded Delta, swapping the inner\n");
  std::printf("  code from ECC-1 to ECC-2 (+10 bits/line) restores orders of\n");
  std::printf("  magnitude of reliability without touching the RAID machinery.\n");
  return 0;
}
