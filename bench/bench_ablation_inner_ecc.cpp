// §VII-G ablation: "SuDoku can be enhanced even further by replacing ECC-1
// with ECC-2." Sweeps the inner-code strength and prints the reliability /
// storage tradeoff for the whole SuDoku ladder, at the paper's BER and at
// the degraded Delta=33 operating point where the enhancement matters.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"
#include "sttram/device_model.h"

using namespace sudoku;
using namespace sudoku::reliability;

namespace {

exp::JsonArray sweep(double ber, const char* label) {
  bench::print_header(std::string("Inner-ECC sweep at ") + label);
  exp::JsonArray rows;
  std::printf("\n  %-8s %10s | %12s %12s %14s | %12s\n", "inner", "bits/line",
              "X FIT", "Y FIT", "Z FIT (strict)", "Z (mech)");
  for (int t = 1; t <= 3; ++t) {
    CacheParams c;
    c.ber = ber;
    c.inner_ecc_t = t;
    const double x = sudoku_x_due(c).fit();
    const double y = sudoku_y_due(c).fit();
    const double z_strict = sudoku_z_due(c, SdrModel::kStrict).fit();
    const double z_mech = sudoku_z_due(c).fit();
    std::printf("  ECC-%-4d %10u | %12s %12s %14s | %12s\n", t,
                c.sudoku_line_bits() - 512, bench::sci(x).c_str(),
                bench::sci(y).c_str(), bench::sci(z_strict).c_str(),
                bench::sci(z_mech).c_str());
    exp::JsonObject row;
    row.set("inner_ecc_t", t)
        .set("overhead_bits", c.sudoku_line_bits() - 512)
        .set("x_fit", x)
        .set("y_fit", y)
        .set("z_fit_strict", z_strict)
        .set("z_fit_mechanistic", z_mech);
    rows.push(row);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, bench::analytical_options());
  const auto t0 = std::chrono::steady_clock::now();

  CacheParams base;
  const auto rows_paper =
      sweep(base.ber, "the paper's operating point (Delta=35, BER 5.3e-6)");

  ThermalParams d33;
  d33.delta_mean = 33.0;
  const double ber33 = effective_ber(d33, 0.02);
  const auto rows_d33 = sweep(ber33, "Delta=33 (scaled-down node)");

  std::printf("\n  takeaway (paper §VII-G): at degraded Delta, swapping the inner\n");
  std::printf("  code from ECC-1 to ECC-2 (+10 bits/line) restores orders of\n");
  std::printf("  magnitude of reliability without touching the RAID machinery.\n");

  exp::JsonObject config;
  config.set("ber_paper", base.ber).set("ber_delta33", ber33);
  exp::JsonObject result;
  result.set("sweep_paper_operating_point", rows_paper)
      .set("sweep_delta33", rows_d33);

  exp::RunStats stats;
  stats.trials = 6;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "ablation_inner_ecc", config, result, stats);
  return 0;
}
