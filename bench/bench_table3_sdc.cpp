// Reproduces Table III: SDC rates of a cache with SuDoku-X. Prints the
// paper-style accounting (its "191 events" equals the >=6-fault rate, i.e.
// the ECC-5 row of Table II) alongside the mechanistic exactly-7 / 8+
// split, both scaled by CRC-31's 2^-31 misdetection probability.
//
// The analytical rows are backed by a functional check on the src/exp
// engine: an accelerated-BER Monte-Carlo run of the real SuDoku-X
// controller whose golden-comparison SDC count must be zero — CRC-31
// catches every miscorrection the trial ever produces. Results and
// throughput land in a bench/out JSON artifact. Supports --checkpoint /
// --resume like every engine-backed bench (see docs/robustness.md).
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "exp/checkpoint.h"
#include "exp/mc_experiments.h"
#include "exp/metrics_io.h"
#include "reliability/analytical.h"
#include "reliability/montecarlo.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  exp::install_signal_handlers();
  bench::print_header("Table III: SDC Rates of Cache with SuDoku-X");

  CacheParams c;
  const auto sdc = sudoku_sdc(c);

  std::printf("\n  %-42s %14s %14s\n", "Vulnerability", "7 Faults/Line", "8+ Faults/Line");
  std::printf("  %-42s %14s %14s\n", "Event rate, mechanistic (per 1e9 h)",
              bench::sci(sdc.fit_seven_fault_events).c_str(),
              bench::sci(sdc.fit_eight_plus_events).c_str());
  std::printf("  %-42s %14s %14s\n", "Event rate, paper-style >=6 (per 1e9 h)",
              bench::sci(sdc.fit_six_plus_events).c_str(), "-");
  std::printf("  %-42s %14s %14s\n", "CRC-31 misdetection probability", "2^-31", "2^-31");
  std::printf("\n  SDC FIT, mechanistic : %s\n", bench::sci(sdc.sdc_fit).c_str());
  std::printf("  SDC FIT, paper-style : %s   (paper prints 8.9e-9; its own rows\n",
              bench::sci(sdc.sdc_fit_paper_style).c_str());
  std::printf("                                multiply to 8.9e-8 -- either value is\n");
  std::printf("                                orders of magnitude below the 1-FIT target)\n");

  const auto x = sudoku_x_due(c);
  std::printf("\n  SuDoku-X DUE: one uncorrectable line every %.2f s (paper: 3.71 s)\n",
              x.mttf_seconds());

  // Functional SDC check at accelerated BER: thousands of multi-fault
  // lines flow through the real correction machinery; golden comparison
  // must find zero silent corruptions.
  McConfig mcfg;
  mcfg.cache.num_lines = 1u << 12;
  mcfg.cache.group_size = 64;
  mcfg.cache.ber = 2e-4;
  mcfg.level = SudokuLevel::kX;
  mcfg.max_intervals = 600 * args.scale;
  mcfg.seed = args.seed_or(17);

  std::optional<exp::CheckpointStore> store;
  if (args.checkpointing()) store.emplace(args.checkpoint_dir, args.resume);
  exp::ShardRunReport report;

  exp::ExpOptions opts;
  opts.threads = args.threads;
  opts.checkpoint = store ? &*store : nullptr;
  opts.checkpoint_scope = "table3_sdc";
  opts.report = &report;
  opts.fleet = args.fleet;
  exp::RunStats stats;
  const auto mc = exp::run_montecarlo_parallel(mcfg, opts, &stats);
  bench::exit_if_interrupted(args);
  std::printf(
      "\n  Functional check (BER %s, %llu intervals): due_lines=%llu sdc_lines=%llu"
      "  %s\n",
      bench::sci(mcfg.cache.ber).c_str(),
      static_cast<unsigned long long>(mc.intervals),
      static_cast<unsigned long long>(mc.due_lines),
      static_cast<unsigned long long>(mc.sdc_lines),
      mc.sdc_lines == 0 ? "[no silent corruption]" : "[SDC OBSERVED]");
  if (store || report.degraded()) {
    std::printf("  fault tolerance: %llu/%llu shards resumed, %llu retries, "
                "%llu quarantined\n",
                static_cast<unsigned long long>(report.shards_resumed),
                static_cast<unsigned long long>(report.shards_total),
                static_cast<unsigned long long>(report.shards_retried),
                static_cast<unsigned long long>(report.shards_quarantined));
  }

  exp::JsonObject config;
  config.set("ber", mcfg.cache.ber)
      .set("num_lines", mcfg.cache.num_lines)
      .set("group_size", 64)
      .set("max_intervals", mcfg.max_intervals)
      .set("seed", mcfg.seed);
  exp::JsonObject result;
  result.set("sdc_fit_mechanistic", sdc.sdc_fit)
      .set("sdc_fit_paper_style", sdc.sdc_fit_paper_style)
      .set("due_mttf_seconds", x.mttf_seconds())
      .set("mc_intervals", mc.intervals)
      .set("mc_due_lines", mc.due_lines)
      .set("mc_sdc_lines", mc.sdc_lines);

  const exp::ResultSink sink(args.out_dir);
  const auto path =
      sink.write("table3_sdc", config, result, stats, &mc.metrics, &report);
  std::printf("  artifact: %s\n", path.string().c_str());
  if (args.json) {
    const auto root = exp::ResultSink::make_root("table3_sdc", config, result, stats,
                                                 &mc.metrics, &report);
    std::printf("%s\n", root.str(/*pretty=*/true).c_str());
  }
  return mc.sdc_lines == 0 ? 0 : 1;
}
