// Reproduces Table III: SDC rates of a cache with SuDoku-X. Prints the
// paper-style accounting (its "191 events" equals the >=6-fault rate, i.e.
// the ECC-5 row of Table II) alongside the mechanistic exactly-7 / 8+
// split, both scaled by CRC-31's 2^-31 misdetection probability.
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main() {
  bench::print_header("Table III: SDC Rates of Cache with SuDoku-X");

  CacheParams c;
  const auto sdc = sudoku_sdc(c);

  std::printf("\n  %-42s %14s %14s\n", "Vulnerability", "7 Faults/Line", "8+ Faults/Line");
  std::printf("  %-42s %14s %14s\n", "Event rate, mechanistic (per 1e9 h)",
              bench::sci(sdc.fit_seven_fault_events).c_str(),
              bench::sci(sdc.fit_eight_plus_events).c_str());
  std::printf("  %-42s %14s %14s\n", "Event rate, paper-style >=6 (per 1e9 h)",
              bench::sci(sdc.fit_six_plus_events).c_str(), "-");
  std::printf("  %-42s %14s %14s\n", "CRC-31 misdetection probability", "2^-31", "2^-31");
  std::printf("\n  SDC FIT, mechanistic : %s\n", bench::sci(sdc.sdc_fit).c_str());
  std::printf("  SDC FIT, paper-style : %s   (paper prints 8.9e-9; its own rows\n",
              bench::sci(sdc.sdc_fit_paper_style).c_str());
  std::printf("                                multiply to 8.9e-8 -- either value is\n");
  std::printf("                                orders of magnitude below the 1-FIT target)\n");

  const auto x = sudoku_x_due(c);
  std::printf("\n  SuDoku-X DUE: one uncorrectable line every %.2f s (paper: 3.71 s)\n",
              x.mttf_seconds());
  return 0;
}
