// Ablation for §III-D: the RAID-Group size trades off parity storage,
// repair latency, and reliability. Sweeps the group size and prints FIT,
// PLT storage, and the 9 ns-per-read repair latency for each point.
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main() {
  bench::print_header("Ablation (§III-D): RAID-Group size tradeoff");
  std::printf("\n  %-8s %12s %12s %14s %14s %12s\n", "Group", "X-FIT", "Z-FIT(strict)",
              "PLT KB/table", "PLT bits/line", "repair us");
  for (const std::uint32_t g : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    CacheParams c;
    c.group_size = g;
    const double plt_kb = static_cast<double>(c.num_groups()) * 553 / 8.0 / 1024.0;
    const double bits_per_line = 553.0 / g;
    const double repair_us = g * 9.0 / 1000.0;
    std::printf("  %-8u %12s %12s %14.0f %14.2f %12.2f\n", g,
                bench::sci(sudoku_x_due(c).fit()).c_str(),
                bench::sci(sudoku_z_due(c, SdrModel::kStrict).fit()).c_str(), plt_kb,
                bits_per_line, repair_us);
  }
  std::printf("\n  the paper picks 512: ~128 KB PLT payload per table, <=16 us repair,\n");
  std::printf("  FIT comfortably below target — this sweep shows both directions of\n");
  std::printf("  the tradeoff (small groups: storage balloons; large: FIT and repair\n");
  std::printf("  latency grow).\n");
  return 0;
}
