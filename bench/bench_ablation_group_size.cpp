// Ablation for §III-D: the RAID-Group size trades off parity storage,
// repair latency, and reliability. Sweeps the group size and prints FIT,
// PLT storage, and the 9 ns-per-read repair latency for each point.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "reliability/analytical.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, bench::analytical_options());
  bench::print_header("Ablation (§III-D): RAID-Group size tradeoff");

  const auto t0 = std::chrono::steady_clock::now();
  exp::JsonArray rows;
  std::printf("\n  %-8s %12s %12s %14s %14s %12s\n", "Group", "X-FIT", "Z-FIT(strict)",
              "PLT KB/table", "PLT bits/line", "repair us");
  for (const std::uint32_t g : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    CacheParams c;
    c.group_size = g;
    const double plt_kb = static_cast<double>(c.num_groups()) * 553 / 8.0 / 1024.0;
    const double bits_per_line = 553.0 / g;
    const double repair_us = g * 9.0 / 1000.0;
    const double x_fit = sudoku_x_due(c).fit();
    const double z_fit = sudoku_z_due(c, SdrModel::kStrict).fit();
    std::printf("  %-8u %12s %12s %14.0f %14.2f %12.2f\n", g,
                bench::sci(x_fit).c_str(), bench::sci(z_fit).c_str(), plt_kb,
                bits_per_line, repair_us);
    exp::JsonObject row;
    row.set("group_size", g)
        .set("x_fit", x_fit)
        .set("z_fit_strict", z_fit)
        .set("plt_kb_per_table", plt_kb)
        .set("plt_bits_per_line", bits_per_line)
        .set("repair_us", repair_us);
    rows.push(row);
  }
  std::printf("\n  the paper picks 512: ~128 KB PLT payload per table, <=16 us repair,\n");
  std::printf("  FIT comfortably below target — this sweep shows both directions of\n");
  std::printf("  the tradeoff (small groups: storage balloons; large: FIT and repair\n");
  std::printf("  latency grow).\n");

  // The paper doesn't tabulate the sweep; its chosen point is the anchor.
  exp::JsonArray comparison;
  comparison.push(bench::paper_row("group=512 PLT KB/table", 128.0,
                                   static_cast<double>(CacheParams().num_groups()) *
                                       553 / 8.0 / 1024.0));
  comparison.push(bench::paper_row("group=512 repair latency (us)", 16.0,
                                   512 * 9.0 / 1000.0));

  exp::JsonObject config;
  CacheParams base;
  config.set("ber", base.ber)
      .set("num_lines", base.num_lines)
      .set("read_latency_ns", 9.0);
  exp::JsonObject result;
  result.set("rows", rows).set("paper_comparison", comparison);

  exp::RunStats stats;
  stats.trials = 6;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  stats.threads = 1;
  stats.shards = 1;
  bench::emit_artifact(args, "ablation_group_size", config, result, stats);
  return 0;
}
