// Small shared helpers for the table/figure reproduction binaries: aligned
// row printing, scientific formatting that matches the paper's tables, and
// the shared command line handled by every engine-backed bench (JSON
// emission itself lives in exp/json.h; fault tolerance in exp/checkpoint.h
// and exp/shutdown.h, documented in docs/robustness.md).
#pragma once

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "exp/json.h"
#include "exp/result_sink.h"
#include "exp/shutdown.h"

namespace sudoku::bench {

inline void print_header(const std::string& title) {
  std::printf("\n==========================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================================\n");
}

inline void print_subnote(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

inline std::string sci(double v) {
  if (v == 0.0) return "0";
  char buf[32];
  if (v >= 0.01 && v < 1e5) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  }
  return buf;
}

inline std::string fixed(double v, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

// Batch-sweep accounting helpers. A stream of `items` units consumed
// `batch` at a time ends with a partial batch of items % batch units
// (when that is nonzero); throughput numbers must charge each batch its
// *actual* width — crediting the nominal `batch` to a partial tail
// overstates the processed payload. Regression-tested in
// tests/test_bench_util.cpp.
inline std::uint64_t batch_count(std::uint64_t items, std::uint64_t batch) {
  return batch == 0 ? 0 : (items + batch - 1) / batch;
}

// Width of batch `index` (0-based): `batch` for all but a partial final
// batch, 0 past the end.
inline std::uint64_t batch_width(std::uint64_t items, std::uint64_t batch,
                                 std::uint64_t index) {
  if (batch == 0) return 0;
  const std::uint64_t start = index * batch;
  if (start >= items) return 0;
  return items - start < batch ? items - start : batch;
}

// Total units actually processed by batches [0, nbatches): min(items,
// nbatches*batch). This is the payload a batched kernel timed over
// `nbatches` batches really touched.
inline std::uint64_t batched_items(std::uint64_t items, std::uint64_t batch,
                                   std::uint64_t nbatches) {
  std::uint64_t total = 0;
  for (std::uint64_t b = 0; b < nbatches; ++b) total += batch_width(items, batch, b);
  return total;
}

// Shared command line for the artifact-emitting benches:
//   --threads=N       pool width (0 = one per hardware thread)
//   --seed=S          base seed (0 = keep the bench's built-in default)
//   --json            also dump the artifact JSON to stdout
//   --out=DIR         artifact directory (default bench/out)
//   --scale=K         multiply trial budgets by K (bare "K" also accepted,
//                     matching the benches' legacy positional argument)
//   --checkpoint=DIR  persist each finished shard under DIR (atomic
//                     writes); a SIGINT/SIGTERM'd run exits with code 75
//                     and can be continued with --resume
//   --resume          replay finished shards from --checkpoint=DIR and
//                     recompute only the rest (byte-identical artifacts)
//   --fleet           claim shards through the checkpoint store so N
//                     processes sharing --checkpoint=DIR split the run
//                     (docs/fleet.md); requires --checkpoint
//   --help            print usage and exit 0
//
// Malformed values ("--seed=abc", overflow) and unknown flags print the
// usage message and exit 2 instead of escaping as uncaught exceptions.
//
// Not every bench is engine-backed: a pure analytical bench has no worker
// pool, no trial budget and nothing to checkpoint, so silently accepting
// --threads there would let a typo'd invocation pretend it ran wider.
// Each bench declares what it supports via Options; unsupported flags take
// the same usage+exit-2 path as malformed ones, and the usage text lists
// only the flags the bench actually honours.
struct BenchArgs {
  // What the bench's command line supports. Defaults describe the fully
  // engine-backed benches; analytical ones turn the knobs off.
  struct Options {
    bool threads = true;     // accepts --threads (has a worker pool)
    bool checkpoint = true;  // accepts --checkpoint/--resume (engine-backed)
    bool scale = true;       // accepts --scale / positional K (trial budget)
    bool load = false;       // accepts --clients/--banks/--duration-ms
                             // (drives a concurrent service load sweep)
    // Bench-specific boolean flags, spelled with the leading "--"
    // (e.g. "--gbench"). Parsed occurrences land in BenchArgs::extras.
    std::vector<std::string> extra_flags;
  };

  std::uint64_t scale = 1;
  unsigned threads = 0;
  // Load-sweep overrides (Options::load benches). 0 = "not given, use the
  // bench's sweep defaults"; an explicit 0 on the command line is rejected
  // — a service with zero clients or banks measures nothing.
  std::uint32_t clients = 0;
  std::uint32_t banks = 0;
  std::uint32_t duration_ms = 0;
  std::uint64_t seed = 0;
  bool json = false;
  std::string out_dir = "bench/out";
  std::string checkpoint_dir;  // empty = checkpointing off
  bool resume = false;
  bool fleet = false;  // multi-process shard claims over checkpoint_dir
  std::vector<std::string> extras;  // matched Options::extra_flags

  bool has_extra(const std::string& flag) const {
    for (const auto& e : extras) {
      if (e == flag) return true;
    }
    return false;
  }

  // Returns config.seed unless --seed overrode it.
  std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed ? seed : fallback;
  }

  bool checkpointing() const { return !checkpoint_dir.empty(); }

  static void print_usage(const char* prog, std::FILE* to) {
    print_usage(prog, to, Options());
  }

  static void print_usage(const char* prog, std::FILE* to, const Options& opts) {
    std::string synopsis = std::string("usage: ") + prog + " [--seed=S] [--json] [--out=DIR]";
    if (opts.threads) synopsis += " [--threads=N]";
    if (opts.scale) synopsis += " [--scale=K | K]";
    if (opts.checkpoint) synopsis += " [--checkpoint=DIR [--resume] [--fleet]]";
    if (opts.load) synopsis += " [--clients=N] [--banks=N] [--duration-ms=N]";
    for (const auto& f : opts.extra_flags) synopsis += " [" + f + "]";
    synopsis += " [--help]";
    std::fprintf(to, "%s\n\n", synopsis.c_str());
    if (opts.threads) {
      std::fprintf(to, "  --threads=N       worker pool width (0 = one per hardware thread)\n");
    }
    std::fprintf(to,
                 "  --seed=S          base seed override (0 keeps the bench default)\n"
                 "  --json            dump the artifact JSON to stdout too\n"
                 "  --out=DIR         artifact directory (default bench/out)\n");
    if (opts.scale) {
      std::fprintf(to, "  --scale=K         multiply trial budgets by K\n");
    }
    if (opts.checkpoint) {
      std::fprintf(to,
                   "  --checkpoint=DIR  persist finished shards; interrupt exits 75 (resumable)\n"
                   "  --resume          replay finished shards from --checkpoint=DIR\n"
                   "  --fleet           claim shards via DIR so N processes split the run\n");
    }
    if (opts.load) {
      std::fprintf(to,
                   "  --clients=N       pin the client-thread count (default: sweep)\n"
                   "  --banks=N         pin the bank count (default: sweep)\n"
                   "  --duration-ms=N   per-point run length in milliseconds\n");
    }
    std::fprintf(to, "  --help            this message\n");
  }

  static BenchArgs parse(int argc, char** argv) {
    return parse(argc, argv, Options());
  }

  static BenchArgs parse(int argc, char** argv, const Options& opts) {
    BenchArgs args;
    const char* prog = argc > 0 ? argv[0] : "bench";
    const auto usage_error = [&prog, &opts](const std::string& msg) {
      std::fprintf(stderr, "%s: %s\n", prog, msg.c_str());
      print_usage(prog, stderr, opts);
      std::exit(2);
    };
    // Full-string unsigned parse: rejects empty, signs, junk, overflow —
    // std::stoull would throw (or worse, accept "12abc") instead.
    const auto parse_u64 = [&usage_error](const std::string& flag,
                                          const std::string& text) {
      if (text.empty() ||
          text.find_first_not_of("0123456789") != std::string::npos) {
        usage_error("invalid value for " + flag + ": '" + text + "'");
      }
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
      if (errno == ERANGE || end != text.c_str() + text.size()) {
        usage_error("value out of range for " + flag + ": '" + text + "'");
      }
      return static_cast<std::uint64_t>(v);
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value_of = [&arg](const std::string& prefix) {
        return arg.substr(prefix.size());
      };
      const auto reject_unsupported = [&usage_error](const std::string& flag,
                                                     const char* why) {
        usage_error(flag + " is not supported by this bench (" + why + ")");
      };
      if (arg.rfind("--threads=", 0) == 0) {
        if (!opts.threads) {
          reject_unsupported("--threads", "analytical, no worker pool");
        }
        const std::uint64_t v = parse_u64("--threads", value_of("--threads="));
        if (v > std::numeric_limits<unsigned>::max()) {
          usage_error("value out of range for --threads: '" + arg + "'");
        }
        args.threads = static_cast<unsigned>(v);
      } else if (arg.rfind("--seed=", 0) == 0) {
        args.seed = parse_u64("--seed", value_of("--seed="));
      } else if (arg.rfind("--scale=", 0) == 0) {
        if (!opts.scale) {
          reject_unsupported("--scale", "no trial budget to multiply");
        }
        args.scale = parse_u64("--scale", value_of("--scale="));
      } else if (arg.rfind("--out=", 0) == 0) {
        args.out_dir = value_of("--out=");
      } else if (arg.rfind("--checkpoint=", 0) == 0) {
        if (!opts.checkpoint) {
          reject_unsupported("--checkpoint", "nothing to checkpoint");
        }
        args.checkpoint_dir = value_of("--checkpoint=");
        if (args.checkpoint_dir.empty()) {
          usage_error("--checkpoint needs a directory");
        }
      } else if (arg.rfind("--clients=", 0) == 0 ||
                 arg.rfind("--banks=", 0) == 0 ||
                 arg.rfind("--duration-ms=", 0) == 0) {
        const std::string flag = arg.substr(0, arg.find('='));
        if (!opts.load) {
          reject_unsupported(flag, "not a load-sweep bench");
        }
        const std::uint64_t v = parse_u64(flag, value_of(flag + "="));
        if (v == 0 || v > std::numeric_limits<std::uint32_t>::max()) {
          usage_error("value out of range for " + flag + ": '" + arg + "'");
        }
        if (flag == "--clients") {
          args.clients = static_cast<std::uint32_t>(v);
        } else if (flag == "--banks") {
          args.banks = static_cast<std::uint32_t>(v);
        } else {
          args.duration_ms = static_cast<std::uint32_t>(v);
        }
      } else if (arg == "--resume") {
        if (!opts.checkpoint) {
          reject_unsupported("--resume", "nothing to checkpoint");
        }
        args.resume = true;
      } else if (arg == "--fleet") {
        if (!opts.checkpoint) {
          reject_unsupported("--fleet", "nothing to checkpoint");
        }
        args.fleet = true;
      } else if (arg == "--json") {
        args.json = true;
      } else if (arg == "--help" || arg == "-h") {
        print_usage(prog, stdout, opts);
        std::exit(0);
      } else if (std::find(opts.extra_flags.begin(), opts.extra_flags.end(), arg) !=
                 opts.extra_flags.end()) {
        args.extras.push_back(arg);
      } else if (opts.scale && !arg.empty() &&
                 arg.find_first_not_of("0123456789") == std::string::npos) {
        args.scale = parse_u64("scale", arg);  // legacy positional scale
      } else {
        usage_error("unknown argument '" + arg + "'");
      }
    }
    if (args.resume && !args.checkpointing()) {
      usage_error("--resume requires --checkpoint=DIR");
    }
    if (args.fleet && !args.checkpointing()) {
      usage_error("--fleet requires --checkpoint=DIR (the shared store is "
                  "how workers coordinate)");
    }
    return args;
  }
};

// The command line of a pure analytical bench: no pool, no budget, no
// checkpointable shards — only --seed/--json/--out (and --help) apply.
inline BenchArgs::Options analytical_options() {
  BenchArgs::Options opts;
  opts.threads = false;
  opts.checkpoint = false;
  opts.scale = false;
  return opts;
}

// A bench that drives the functional machinery on one thread with a
// scalable trial budget, but has no pool and no engine-backed shards.
inline BenchArgs::Options single_threaded_options() {
  BenchArgs::Options opts;
  opts.threads = false;
  opts.checkpoint = false;
  return opts;
}

// One paper-vs-measured row for the artifact's "paper_comparison" section.
// scripts/repro.sh collects these across all artifacts and prints the
// EXPERIMENTS.md-style delta table from the artifacts themselves; paper
// values that the paper prints as text (">1e14", "3.49-3.9 h") stay
// strings, numeric ones get a mechanical measured/paper ratio downstream.
inline exp::JsonObject paper_row(const std::string& quantity, double paper,
                                 double measured) {
  exp::JsonObject row;
  row.set("quantity", quantity).set("paper", paper).set("measured", measured);
  return row;
}

inline exp::JsonObject paper_row(const std::string& quantity,
                                 const std::string& paper, double measured) {
  exp::JsonObject row;
  row.set("quantity", quantity).set("paper", paper).set("measured", measured);
  return row;
}

// Standard artifact epilogue shared by every bench: write the ResultSink
// artifact (atomic, throws on failure), announce the path, honour --json.
inline void emit_artifact(const BenchArgs& args, const std::string& name,
                          const exp::JsonObject& config,
                          const exp::JsonObject& result, const exp::RunStats& stats,
                          const obs::MetricsRegistry* metrics = nullptr,
                          const exp::ShardRunReport* report = nullptr) {
  const exp::ResultSink sink(args.out_dir);
  const auto path = sink.write(name, config, result, stats, metrics, report);
  std::printf("\n  artifact: %s\n", path.string().c_str());
  if (args.json) {
    const auto root =
        exp::ResultSink::make_root(name, config, result, stats, metrics, report);
    std::printf("%s\n", root.str(/*pretty=*/true).c_str());
  }
}

// Call after every engine invocation: when a SIGINT/SIGTERM arrived, the
// run's remaining shards were skipped, so the final artifact must not be
// written — announce how to continue and exit with the "interrupted,
// resumable" code instead (75; see docs/robustness.md).
inline void exit_if_interrupted(const BenchArgs& args) {
  if (!sudoku::exp::shutdown_requested()) return;
  if (args.checkpointing()) {
    std::fprintf(stderr,
                 "\ninterrupted: finished shards are checkpointed under '%s'; "
                 "rerun with --checkpoint=%s --resume to continue\n",
                 args.checkpoint_dir.c_str(), args.checkpoint_dir.c_str());
  } else {
    std::fprintf(stderr,
                 "\ninterrupted: no artifact written (rerun with "
                 "--checkpoint=DIR to make runs resumable)\n");
  }
  std::exit(sudoku::exp::kExitInterrupted);
}

}  // namespace sudoku::bench
