// Small shared helpers for the table/figure reproduction binaries: aligned
// row printing, scientific formatting that matches the paper's tables, and
// the shared command line handled by every engine-backed bench (JSON
// emission itself lives in exp/json.h; fault tolerance in exp/checkpoint.h
// and exp/shutdown.h, documented in docs/robustness.md).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "exp/json.h"
#include "exp/shutdown.h"

namespace sudoku::bench {

inline void print_header(const std::string& title) {
  std::printf("\n==========================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================================\n");
}

inline void print_subnote(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

inline std::string sci(double v) {
  if (v == 0.0) return "0";
  char buf[32];
  if (v >= 0.01 && v < 1e5) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  }
  return buf;
}

inline std::string fixed(double v, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

// Shared command line for the engine-backed benches:
//   --threads=N       pool width (0 = one per hardware thread)
//   --seed=S          base seed (0 = keep the bench's built-in default)
//   --json            also dump the artifact JSON to stdout
//   --out=DIR         artifact directory (default bench/out)
//   --scale=K         multiply trial budgets by K (bare "K" also accepted,
//                     matching the benches' legacy positional argument)
//   --checkpoint=DIR  persist each finished shard under DIR (atomic
//                     writes); a SIGINT/SIGTERM'd run exits with code 75
//                     and can be continued with --resume
//   --resume          replay finished shards from --checkpoint=DIR and
//                     recompute only the rest (byte-identical artifacts)
//   --help            print usage and exit 0
//
// Malformed values ("--seed=abc", overflow) and unknown flags print the
// usage message and exit 2 instead of escaping as uncaught exceptions.
struct BenchArgs {
  std::uint64_t scale = 1;
  unsigned threads = 0;
  std::uint64_t seed = 0;
  bool json = false;
  std::string out_dir = "bench/out";
  std::string checkpoint_dir;  // empty = checkpointing off
  bool resume = false;

  // Returns config.seed unless --seed overrode it.
  std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed ? seed : fallback;
  }

  bool checkpointing() const { return !checkpoint_dir.empty(); }

  static void print_usage(const char* prog, std::FILE* to) {
    std::fprintf(to,
                 "usage: %s [--threads=N] [--seed=S] [--json] [--out=DIR]\n"
                 "       [--scale=K | K] [--checkpoint=DIR [--resume]] [--help]\n"
                 "\n"
                 "  --threads=N       worker pool width (0 = one per hardware thread)\n"
                 "  --seed=S          base seed override (0 keeps the bench default)\n"
                 "  --json            dump the artifact JSON to stdout too\n"
                 "  --out=DIR         artifact directory (default bench/out)\n"
                 "  --scale=K         multiply trial budgets by K\n"
                 "  --checkpoint=DIR  persist finished shards; interrupt exits 75 (resumable)\n"
                 "  --resume          replay finished shards from --checkpoint=DIR\n"
                 "  --help            this message\n",
                 prog);
  }

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    const char* prog = argc > 0 ? argv[0] : "bench";
    const auto usage_error = [&prog](const std::string& msg) {
      std::fprintf(stderr, "%s: %s\n", prog, msg.c_str());
      print_usage(prog, stderr);
      std::exit(2);
    };
    // Full-string unsigned parse: rejects empty, signs, junk, overflow —
    // std::stoull would throw (or worse, accept "12abc") instead.
    const auto parse_u64 = [&usage_error](const std::string& flag,
                                          const std::string& text) {
      if (text.empty() ||
          text.find_first_not_of("0123456789") != std::string::npos) {
        usage_error("invalid value for " + flag + ": '" + text + "'");
      }
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
      if (errno == ERANGE || end != text.c_str() + text.size()) {
        usage_error("value out of range for " + flag + ": '" + text + "'");
      }
      return static_cast<std::uint64_t>(v);
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value_of = [&arg](const std::string& prefix) {
        return arg.substr(prefix.size());
      };
      if (arg.rfind("--threads=", 0) == 0) {
        const std::uint64_t v = parse_u64("--threads", value_of("--threads="));
        if (v > std::numeric_limits<unsigned>::max()) {
          usage_error("value out of range for --threads: '" + arg + "'");
        }
        args.threads = static_cast<unsigned>(v);
      } else if (arg.rfind("--seed=", 0) == 0) {
        args.seed = parse_u64("--seed", value_of("--seed="));
      } else if (arg.rfind("--scale=", 0) == 0) {
        args.scale = parse_u64("--scale", value_of("--scale="));
      } else if (arg.rfind("--out=", 0) == 0) {
        args.out_dir = value_of("--out=");
      } else if (arg.rfind("--checkpoint=", 0) == 0) {
        args.checkpoint_dir = value_of("--checkpoint=");
        if (args.checkpoint_dir.empty()) {
          usage_error("--checkpoint needs a directory");
        }
      } else if (arg == "--resume") {
        args.resume = true;
      } else if (arg == "--json") {
        args.json = true;
      } else if (arg == "--help" || arg == "-h") {
        print_usage(prog, stdout);
        std::exit(0);
      } else if (!arg.empty() && arg.find_first_not_of("0123456789") == std::string::npos) {
        args.scale = parse_u64("scale", arg);  // legacy positional scale
      } else {
        usage_error("unknown argument '" + arg + "'");
      }
    }
    if (args.resume && !args.checkpointing()) {
      usage_error("--resume requires --checkpoint=DIR");
    }
    return args;
  }
};

// Call after every engine invocation: when a SIGINT/SIGTERM arrived, the
// run's remaining shards were skipped, so the final artifact must not be
// written — announce how to continue and exit with the "interrupted,
// resumable" code instead (75; see docs/robustness.md).
inline void exit_if_interrupted(const BenchArgs& args) {
  if (!sudoku::exp::shutdown_requested()) return;
  if (args.checkpointing()) {
    std::fprintf(stderr,
                 "\ninterrupted: finished shards are checkpointed under '%s'; "
                 "rerun with --checkpoint=%s --resume to continue\n",
                 args.checkpoint_dir.c_str(), args.checkpoint_dir.c_str());
  } else {
    std::fprintf(stderr,
                 "\ninterrupted: no artifact written (rerun with "
                 "--checkpoint=DIR to make runs resumable)\n");
  }
  std::exit(sudoku::exp::kExitInterrupted);
}

}  // namespace sudoku::bench
