// Small shared helpers for the table/figure reproduction binaries: aligned
// row printing and scientific formatting that matches the paper's tables.
#pragma once

#include <cstdio>
#include <string>

namespace sudoku::bench {

inline void print_header(const std::string& title) {
  std::printf("\n==========================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================================\n");
}

inline void print_subnote(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

inline std::string sci(double v) {
  if (v == 0.0) return "0";
  char buf[32];
  if (v >= 0.01 && v < 1e5) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  }
  return buf;
}

inline std::string fixed(double v, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace sudoku::bench
