// Small shared helpers for the table/figure reproduction binaries: aligned
// row printing, scientific formatting that matches the paper's tables, and
// the shared --threads/--seed/--json command line handled by every
// engine-backed bench (JSON emission itself lives in exp/json.h).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/json.h"

namespace sudoku::bench {

inline void print_header(const std::string& title) {
  std::printf("\n==========================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================================\n");
}

inline void print_subnote(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

inline std::string sci(double v) {
  if (v == 0.0) return "0";
  char buf[32];
  if (v >= 0.01 && v < 1e5) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  }
  return buf;
}

inline std::string fixed(double v, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

// Shared command line for the engine-backed benches:
//   --threads=N   pool width (0 = one per hardware thread)
//   --seed=S      base seed (0 = keep the bench's built-in default)
//   --json        also dump the artifact JSON to stdout
//   --out=DIR     artifact directory (default bench/out)
//   --scale=K     multiply trial budgets by K (bare "K" also accepted,
//                 matching the benches' legacy positional argument)
struct BenchArgs {
  std::uint64_t scale = 1;
  unsigned threads = 0;
  std::uint64_t seed = 0;
  bool json = false;
  std::string out_dir = "bench/out";

  // Returns config.seed unless --seed overrode it.
  std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed ? seed : fallback;
  }

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value_of = [&arg](const std::string& prefix) {
        return arg.substr(prefix.size());
      };
      if (arg.rfind("--threads=", 0) == 0) {
        args.threads = static_cast<unsigned>(std::stoul(value_of("--threads=")));
      } else if (arg.rfind("--seed=", 0) == 0) {
        args.seed = std::stoull(value_of("--seed="));
      } else if (arg.rfind("--scale=", 0) == 0) {
        args.scale = std::stoull(value_of("--scale="));
      } else if (arg.rfind("--out=", 0) == 0) {
        args.out_dir = value_of("--out=");
      } else if (arg == "--json") {
        args.json = true;
      } else if (!arg.empty() && arg.find_first_not_of("0123456789") == std::string::npos) {
        args.scale = std::stoull(arg);  // legacy positional scale
      } else {
        std::fprintf(stderr,
                     "unknown argument '%s'\n"
                     "usage: %s [--threads=N] [--seed=S] [--json] [--out=DIR] "
                     "[--scale=K | K]\n",
                     arg.c_str(), argv[0]);
        std::exit(2);
      }
    }
    return args;
  }
};

}  // namespace sudoku::bench
