// Reproduces Figure 3's scenario split for Sequential Data Resurrection:
// two lines in a RAID-Group, two faults each —
//   (a) no overlapping fault   (paper: 99.22%)  -> SDR repairs
//   (b) one overlapping fault  (paper: 0.78%)   -> SDR repairs
//   (c) both faults overlap    (paper: 0.0004%) -> SDR cannot repair
// Printed analytically and validated by driving the *functional* SDR
// machinery over sampled fault patterns of each class. The controller's
// sudoku.sdr.case{1,2,3} instruments cross-check the classification: every
// sampled pattern must land in SDR case 2 (two bad lines in the group),
// and the repair counters in the artifact show which patterns resolved.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "exp/metrics_io.h"
#include "exp/result_sink.h"
#include "sudoku/controller.h"

using namespace sudoku;

namespace {

struct CaseResult {
  int trials = 0;
  int repaired = 0;
};

CaseResult run_case(int overlap, int trials, std::uint64_t base_seed,
                    obs::MetricsRegistry* metrics) {
  SudokuConfig cfg;
  cfg.geo.num_lines = 1024;
  cfg.geo.group_size = 32;
  cfg.level = SudokuLevel::kY;
  CaseResult out;
  Rng rng(base_seed + static_cast<std::uint64_t>(overlap));
  for (int t = 0; t < trials; ++t) {
    SudokuController ctrl(cfg);
    ctrl.attach_metrics(metrics);
    Rng fmt(t);
    ctrl.format_random(fmt);
    const std::uint32_t width = ctrl.codec().total_bits();
    // Choose fault positions for line 3 and line 17 (same Hash-1 group)
    // with the requested overlap count.
    std::uint32_t p1 = static_cast<std::uint32_t>(rng.next_below(width));
    std::uint32_t p2 = p1;
    while (p2 == p1) p2 = static_cast<std::uint32_t>(rng.next_below(width));
    std::uint32_t q1, q2;
    if (overlap == 0) {
      do { q1 = static_cast<std::uint32_t>(rng.next_below(width)); } while (q1 == p1 || q1 == p2);
      do { q2 = static_cast<std::uint32_t>(rng.next_below(width)); } while (q2 == p1 || q2 == p2 || q2 == q1);
    } else if (overlap == 1) {
      q1 = p1;
      do { q2 = static_cast<std::uint32_t>(rng.next_below(width)); } while (q2 == p1 || q2 == p2);
    } else {
      q1 = p1;
      q2 = p2;
    }
    ctrl.array().flip(3, p1);
    ctrl.array().flip(3, p2);
    ctrl.array().flip(17, q1);
    ctrl.array().flip(17, q2);
    const std::uint64_t lines[] = {3, 17};
    const auto stats = ctrl.scrub_lines(lines);
    ++out.trials;
    if (stats.due_lines == 0) ++out.repaired;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args =
      bench::BenchArgs::parse(argc, argv, bench::single_threaded_options());
  bench::print_header("Figure 3: SDR scenarios for two 2-fault lines in one RAID-Group");

  const double B = 553.0;
  // Overlap distribution for two independent 2-subsets of B positions.
  const double p_both = 2.0 / (B * (B - 1.0));
  const double p_one = 4.0 * (B - 2.0) / (B * (B - 1.0));
  const double p_none = 1.0 - p_one - p_both;

  std::printf("\n  %-28s %12s %12s %14s\n", "Scenario", "ours", "paper",
              "SDR repairs?");
  std::printf("  %-28s %11.3f%% %12s %14s\n", "(a) no overlapping fault",
              100 * p_none, "99.22%", "yes");
  std::printf("  %-28s %11.3f%% %12s %14s\n", "(b) one overlapping fault",
              100 * p_one, "0.78%", "yes");
  std::printf("  %-28s %11.5f%% %12s %14s\n", "(c) both faults overlap",
              100 * p_both, "0.0004%", "no");

  bench::print_header("Functional validation (real SDR machinery, sampled patterns)");
  const int trials = static_cast<int>(60 * args.scale);
  const std::uint64_t base_seed = args.seed_or(1000);

  obs::MetricsRegistry metrics;
  exp::JsonArray rows;
  std::uint64_t total_trials = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int overlap = 0; overlap <= 2; ++overlap) {
    const auto r = run_case(overlap, trials, base_seed, &metrics);
    std::printf("  overlap=%d: repaired %d / %d   (expected: %s)\n", overlap,
                r.repaired, r.trials, overlap == 2 ? "0" : "all");
    exp::JsonObject row;
    row.set("overlap", overlap)
        .set("trials", r.trials)
        .set("repaired", r.repaired)
        .set("expected_repaired", overlap == 2 ? 0 : r.trials);
    rows.push(row);
    total_trials += static_cast<std::uint64_t>(r.trials);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  exp::JsonObject config;
  config.set("num_lines", std::uint64_t{1024})
      .set("group_size", 32)
      .set("trials_per_case", trials)
      .set("seed", base_seed);
  exp::JsonObject result;
  result.set("p_no_overlap", p_none)
      .set("p_one_overlap", p_one)
      .set("p_both_overlap", p_both)
      .set("cases", rows);

  exp::RunStats stats;
  stats.trials = total_trials;
  stats.wall_seconds = wall;
  stats.threads = 1;
  stats.shards = 1;
  const exp::ResultSink sink(args.out_dir);
  const auto path = sink.write("fig3_sdr_cases", config, result, stats, &metrics);
  std::printf("\n  artifact: %s\n", path.string().c_str());
  if (args.json) {
    const auto root =
        exp::ResultSink::make_root("fig3_sdr_cases", config, result, stats, &metrics);
    std::printf("%s\n", root.str(/*pretty=*/true).c_str());
  }
  return 0;
}
