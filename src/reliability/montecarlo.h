// Monte-Carlo reliability harness (FaultSim-style, paper §VII-A). Unlike
// the analytical models, this drives the *functional* SuDoku controller:
// real CRC-31/ECC-1 codecs, real PLTs, real SDR trial flips. Per scrub
// interval it injects Binomial(total_bits, BER) faults, scrubs the touched
// lines, and classifies the outcome against golden data:
//   * DUE  — controller declared a line uncorrectable (data loss, detected)
//   * SDC  — controller believed a line fine/corrected but it mismatches
//            golden (silent corruption)
// Lost lines are refilled from golden so the simulation continues (models
// a refill from the next memory level).
//
// At the paper's operating point SuDoku-Z events are unobservably rare;
// validation runs at accelerated BER where analytical and MC regimes
// overlap (see bench_montecarlo_validation).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "faults/scenario.h"
#include "obs/metrics.h"
#include "reliability/analytical.h"
#include "sudoku/controller.h"

namespace sudoku::reliability {

struct McConfig {
  reliability::CacheParams cache;
  SudokuLevel level = SudokuLevel::kZ;
  std::uint64_t seed = 1;
  std::uint64_t max_intervals = 10000;
  // Stop early once this many DUE/SDC intervals were observed (0 = never).
  std::uint64_t target_failures = 0;
  bool verify_against_golden = true;

  // Rare-event hook (exp/rare_event): when >= 0, every interval injects
  // exactly this many faults at uniform distinct positions instead of a
  // Binomial(total_bits, BER) count — i.e. the conditional fault law given
  // the count. The stratified estimator runs one such conditional MC per
  // fault count and reweights with the exact Binomial pmf. -1 = off.
  std::int64_t fixed_fault_count = -1;

  // §VIII-B write-error mode: host writes per interval, each of which
  // flips every written bit with probability `wer` (write error rate).
  // SuDoku does not distinguish write errors from retention errors; with
  // wer ≈ retention BER the reliability should be similar — exercised by
  // tests and bench_ablation_features.
  std::uint64_t host_writes_per_interval = 0;
  double wer = 0.0;

  // Mixed-fault mode (src/faults, ROADMAP item 4): when set, interval t's
  // faults come from the scenario instead of the i.i.d. injector —
  // transient flips (XOR-merged across sources) plus stuck cells that are
  // re-asserted after every repair. Each interval starts and ends in
  // canonical state (array == golden outside stuck cells, parities
  // consistent), so shard splits stay bit-reproducible. The scenario's
  // geometry must match the cache geometry; fixed_fault_count and
  // host_writes_per_interval are ignored in scenario mode. The pointed-to
  // scenario is immutable and shared by all shards of a parallel run.
  const faults::FaultScenario* scenario = nullptr;

  // ---- experiment-engine hooks (src/exp) ----
  // When set, interval t draws all of its randomness from a fresh Rng
  // seeded with Rng::derive_stream_seed(seed, first_trial + t), and the
  // golden formatting uses the reserved kFormatStream. A shard covering
  // trials [first_trial, first_trial + max_intervals) then depends only on
  // (seed, trial indices) — not on thread count or on how earlier shards
  // went — which is the engine's bit-reproducibility contract.
  bool per_trial_seed_streams = false;
  std::uint64_t first_trial = 0;
  // Checked before each interval; return true to abandon the run. The
  // engine only fires this for shards whose results its deterministic
  // merge will discard, so cancellation can never change a merged result.
  std::function<bool()> stop_hook;
};

struct McResult {
  std::uint64_t intervals = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t ecc1_corrections = 0;
  std::uint64_t raid4_repairs = 0;
  std::uint64_t sdr_repairs = 0;
  std::uint64_t hash2_invocations = 0;
  std::uint64_t groups_repaired = 0;
  std::uint64_t due_lines = 0;
  std::uint64_t sdc_lines = 0;
  std::uint64_t failure_intervals = 0;  // intervals with >= 1 DUE or SDC

  // Full event mix recorded by the run: the controller's sudoku.* series
  // plus the harness's mc.* series (see docs/observability.md). Only
  // deterministic event counts are recorded here, so the registry obeys
  // the same bit-identical shard-merge contract as the plain counters.
  obs::MetricsRegistry metrics;

  double p_failure_per_interval() const {
    return intervals ? static_cast<double>(failure_intervals) / intervals : 0.0;
  }
  double fit(double interval_s) const;
  double mttf_seconds(double interval_s) const;

  std::string summary() const;

  // Shard-merge reduction for the experiment engine: plain sums.
  McResult& operator+=(const McResult& other);
};

McResult run_montecarlo(const McConfig& config);

}  // namespace sudoku::reliability
