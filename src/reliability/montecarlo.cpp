#include "reliability/montecarlo.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/prob.h"
#include "obs/macros.h"
#include "sttram/fault_injector.h"

namespace sudoku::reliability {

double McResult::fit(double interval_s) const {
  return p_failure_per_interval() * (kSecondsPerBillionHours / interval_s);
}

double McResult::mttf_seconds(double interval_s) const {
  const double p = p_failure_per_interval();
  return p > 0 ? interval_s / p : 1e300;
}

McResult& McResult::operator+=(const McResult& other) {
  metrics += other.metrics;
  intervals += other.intervals;
  faults_injected += other.faults_injected;
  ecc1_corrections += other.ecc1_corrections;
  raid4_repairs += other.raid4_repairs;
  sdr_repairs += other.sdr_repairs;
  hash2_invocations += other.hash2_invocations;
  groups_repaired += other.groups_repaired;
  due_lines += other.due_lines;
  sdc_lines += other.sdc_lines;
  failure_intervals += other.failure_intervals;
  return *this;
}

std::string McResult::summary() const {
  std::ostringstream os;
  os << "intervals=" << intervals << " faults=" << faults_injected
     << " ecc1=" << ecc1_corrections << " raid4=" << raid4_repairs
     << " sdr=" << sdr_repairs << " hash2=" << hash2_invocations
     << " due_lines=" << due_lines << " sdc_lines=" << sdc_lines
     << " failure_intervals=" << failure_intervals;
  return os.str();
}

McResult run_montecarlo(const McConfig& config) {
  SudokuConfig ctrl_cfg;
  ctrl_cfg.geo.num_lines = config.cache.num_lines;
  ctrl_cfg.geo.group_size = config.cache.group_size;
  ctrl_cfg.level = config.level;
  SudokuController ctrl(ctrl_cfg);

  // In per-trial-stream mode formatting uses the reserved stream so every
  // shard of an experiment holds identical golden contents; the same Rng
  // object is then reseeded per interval from that trial's stream.
  Rng rng(config.per_trial_seed_streams
              ? Rng::derive_stream_seed(config.seed, kFormatStream)
              : config.seed);
  // Golden copy of every stored codeword for SDC detection and refill.
  SttramArray golden(config.cache.num_lines, ctrl.codec().total_bits());
  ctrl.format([&](std::uint64_t line) {
    BitVec data(LineCodec::kDataBits);
    auto w = data.words();
    for (auto& word : w) word = rng.next_u64();
    golden.write_line(line, ctrl.codec().encode(data));
    return data;
  });

  FaultInjector injector(config.cache.num_lines, ctrl.codec().total_bits(),
                         config.cache.ber);

  if (config.scenario) {
    const faults::Geometry& g = config.scenario->geometry();
    if (g.num_units != config.cache.num_lines ||
        g.bits_per_unit != ctrl.codec().total_bits()) {
      std::fprintf(stderr,
                   "run_montecarlo: scenario geometry (%llu x %u) does not "
                   "match the cache (%llu x %u)\n",
                   static_cast<unsigned long long>(g.num_units), g.bits_per_unit,
                   static_cast<unsigned long long>(config.cache.num_lines),
                   ctrl.codec().total_bits());
      std::abort();
    }
  }

  McResult result;
  obs::Counter* m_intervals = nullptr;
  obs::Counter* m_sdc = nullptr;
  obs::Counter* m_failure_intervals = nullptr;
  obs::Histogram* m_faults_per_interval = nullptr;
  obs::Counter* m_scn_transient = nullptr;
  obs::Counter* m_scn_stuck = nullptr;
  obs::Counter* m_scn_cluster = nullptr;
#if SUDOKU_OBS_ENABLED
  // The controller writes its sudoku.* series straight into the result's
  // registry; everything recorded is a deterministic event count, so the
  // engine's shard merge stays bit-identical for any thread count.
  ctrl.attach_metrics(&result.metrics);
  m_intervals = result.metrics.counter("mc.intervals");
  m_sdc = result.metrics.counter("mc.sdc_lines");
  m_failure_intervals = result.metrics.counter("mc.failure_intervals");
  m_faults_per_interval = result.metrics.histogram(
      "mc.faults_per_interval", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  if (config.scenario) {
    // Scenario-only series (faults.*): created lazily so legacy runs keep
    // their exact artifact schema.
    m_scn_transient = result.metrics.counter("faults.transient_bits");
    m_scn_stuck = result.metrics.counter("faults.stuck_cells");
    m_scn_cluster = result.metrics.counter("faults.cluster_events");
  }
#endif
  std::vector<std::uint64_t> touched;
  std::vector<std::uint64_t> dirty;
  for (std::uint64_t interval = 0; interval < config.max_intervals; ++interval) {
    if (config.stop_hook && config.stop_hook()) break;
    if (config.per_trial_seed_streams) {
      rng.reseed(
          Rng::derive_stream_seed(config.seed, config.first_trial + interval));
    }

    if (config.scenario) {
      // Mixed-fault interval. All randomness comes from the scenario's own
      // per-(source, interval) streams keyed by the global trial index, so
      // the outcome is independent of sharding.
      const std::uint64_t t = config.first_trial + interval;
      faults::ScenarioTick tick;
      const auto batch = config.scenario->transient(t, &tick);
      const faults::ActiveStuck stuck = config.scenario->stuck(t);
      result.faults_injected += tick.transient_bits;
      OBS_OBSERVE(m_faults_per_interval, tick.transient_bits);
      OBS_ADD(m_scn_transient, tick.transient_bits);
      OBS_ADD(m_scn_stuck, stuck.cells().size());
      OBS_ADD(m_scn_cluster, tick.cluster_events);
      FaultInjector::apply(batch, ctrl.array());
      stuck.assert_on(ctrl.array());

      touched.clear();
      touched.reserve(batch.size() + stuck.units().size());
      for (const auto& [line, bits] : batch) touched.push_back(line);
      touched.insert(touched.end(), stuck.units().begin(), stuck.units().end());
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

      const auto stats = ctrl.scrub_lines(touched);
      result.ecc1_corrections += stats.ecc1_corrections;
      result.raid4_repairs += stats.raid4_repairs;
      result.sdr_repairs += stats.sdr_repairs;
      result.hash2_invocations += stats.hash2_invocations;
      result.groups_repaired += stats.groups_repaired;
      result.due_lines += stats.due_lines;
      // The scrub wrote good values over stuck cells, but those cells do
      // not hold them: re-assert before classifying, so a stuck bit is
      // never mistaken for repaired state — nor for silent corruption
      // (equal_outside_stuck masks the stuck positions).
      stuck.assert_on(ctrl.array());

      bool interval_failed = stats.due_lines > 0;
      const auto& due_ids = stats.due_line_ids;
      const auto is_due = [&due_ids](std::uint64_t line) {
        return std::find(due_ids.begin(), due_ids.end(), line) != due_ids.end();
      };
      if (config.verify_against_golden) {
        for (const auto line : touched) {
          if (is_due(line)) continue;
          if (ctrl.array().line_equals(line, golden.read_line(line))) continue;
          if (!stuck.equal_outside_stuck(line, ctrl.array().read_line(line),
                                         golden.read_line(line))) {
            ++result.sdc_lines;
            OBS_INC(m_sdc);
            interval_failed = true;
          }
        }
      }
      // Canonical-state restore: every interval starts from array == golden
      // with consistent parities, so interval t depends only on its own
      // seed streams — the shard-split reproducibility contract. (The
      // restore also models the refill of DUE lines from the next level.)
      dirty.clear();
      for (const auto line : touched) {
        if (!ctrl.array().line_equals(line, golden.read_line(line))) {
          ctrl.array().write_line(line, golden.read_line(line));
          dirty.push_back(line);
        }
      }
      ctrl.rebuild_parities_for(dirty);

      if (interval_failed) {
        ++result.failure_intervals;
        OBS_INC(m_failure_intervals);
      }
      ++result.intervals;
      OBS_INC(m_intervals);
      if (config.target_failures != 0 &&
          result.failure_intervals >= config.target_failures) {
        break;
      }
      continue;
    }

    const auto batch =
        config.fixed_fault_count >= 0
            ? injector.sample_exact(
                  rng, static_cast<std::uint64_t>(config.fixed_fault_count))
            : injector.sample_interval(rng);
    const std::uint64_t batch_faults = FaultInjector::count(batch);
    result.faults_injected += batch_faults;
    OBS_OBSERVE(m_faults_per_interval, batch_faults);
    FaultInjector::apply(batch, ctrl.array());

    touched.clear();
    touched.reserve(batch.size());
    for (const auto& [line, bits] : batch) touched.push_back(line);

    // §VIII-B: host write traffic with write errors. Each write stores a
    // fresh payload (mirrored into golden) and then flips written bits
    // with probability `wer` — indistinguishable from retention faults to
    // the controller, which is the paper's point.
    for (std::uint64_t w = 0; w < config.host_writes_per_interval; ++w) {
      const std::uint64_t line = rng.next_below(config.cache.num_lines);
      BitVec data(LineCodec::kDataBits);
      auto words = data.words();
      for (auto& word : words) word = rng.next_u64();
      ctrl.write_data(line, data);
      golden.write_line(line, ctrl.codec().encode(data));
      const std::uint64_t nflips =
          rng.next_binomial(ctrl.codec().total_bits(), config.wer);
      for (std::uint64_t f = 0; f < nflips; ++f) {
        ctrl.array().flip(line, static_cast<std::uint32_t>(
                                    rng.next_below(ctrl.codec().total_bits())));
      }
      result.faults_injected += nflips;
      if (nflips > 0) touched.push_back(line);
    }

    const auto stats = ctrl.scrub_lines(touched);
    result.ecc1_corrections += stats.ecc1_corrections;
    result.raid4_repairs += stats.raid4_repairs;
    result.sdr_repairs += stats.sdr_repairs;
    result.hash2_invocations += stats.hash2_invocations;
    result.groups_repaired += stats.groups_repaired;
    result.due_lines += stats.due_lines;

    bool interval_failed = stats.due_lines > 0;
    // DUE lines are rare and few per interval; a linear scan of the small
    // id vector beats rebuilding a hash set every interval.
    const auto& due_ids = stats.due_line_ids;
    const auto is_due = [&due_ids](std::uint64_t line) {
      return std::find(due_ids.begin(), due_ids.end(), line) != due_ids.end();
    };
    if (config.verify_against_golden) {
      for (const auto line : touched) {
        if (is_due(line)) continue;  // already accounted as DUE
        if (!ctrl.array().line_equals(line, golden.read_line(line))) {
          ++result.sdc_lines;
          OBS_INC(m_sdc);
          interval_failed = true;
          // Heal silently-corrupted state so later intervals stay valid.
          ctrl.array().write_line(line, golden.read_line(line));
        }
      }
    }
    // Refill DUE lines from golden (models a refill/invalna-refetch) and
    // resynchronise parity via the write path.
    for (const auto line : stats.due_line_ids) {
      ctrl.write_data(line, ctrl.codec().extract_data(golden.read_line(line)));
    }

    if (interval_failed) {
      ++result.failure_intervals;
      OBS_INC(m_failure_intervals);
    }
    ++result.intervals;
    OBS_INC(m_intervals);
    if (config.target_failures != 0 && result.failure_intervals >= config.target_failures) {
      break;
    }
  }
  return result;
}

}  // namespace sudoku::reliability
