// Analytical FIT/MTTF models for every scheme the paper evaluates
// (§II Table II, §III-F Table III, §IV-E, §V-C, §VI Table IV, §VII Tables
// VIII–X, §VIII Tables XI–XII, Figure 7).
//
// All models follow the paper's framework (§VII-A "Reliability and Energy
// Evaluations"): derive the per-interval BER from Eq. 1, form line/group
// failure probabilities with binomial distributions, convert to FIT =
// failures per 1e9 device-hours. Probabilities are computed in log domain
// (see common/prob.h) because the interesting quantities sit far below
// double underflow when composed naively.
//
// Two SDR accounting variants are provided:
//  * kMechanistic — models exactly what src/sudoku implements (and what the
//    paper's §IV text describes): SDR resurrects any 2-fault line whose
//    faults aren't fully masked, pairs of (2-fault, 3+-fault) lines repair
//    via SDR + RAID-4, three 2-fault lines repair through six mismatches.
//    This is validated against the Monte-Carlo harness, which runs the real
//    controller.
//  * kStrict — a pessimistic bound in which SDR only succeeds when *every*
//    faulty line of the group has exactly two faults; any 3+-fault line in
//    a multi-line group defeats it. The paper's headline MTTF for SuDoku-Y
//    (3.49–3.9 h) sits between the two variants, much closer to kStrict;
//    see EXPERIMENTS.md for the comparison.
#pragma once

#include <cstdint>

namespace sudoku::reliability {

struct CacheParams {
  std::uint64_t num_lines = 1ull << 20;  // 64 MB of 64 B lines
  std::uint32_t group_size = 512;        // RAID-Group size
  double ber = 5.3e-6;                   // bit error rate per scrub interval
  double scrub_interval_s = 0.02;
  int inner_ecc_t = 1;                   // §VII-G: per-line inner-code strength

  std::uint64_t num_groups() const { return num_lines / group_size; }
  // SuDoku's stored line: 512 data + 31 CRC + 10·t ECC bits.
  std::uint32_t sudoku_line_bits() const {
    return 543 + 10u * static_cast<std::uint32_t>(inner_ecc_t);
  }
};

// SuDoku's default (ECC-1) stored line width.
inline constexpr std::uint32_t kSudokuLineBits = 553;

struct FitResult {
  double log_p_interval;     // ln P[>=1 failure per scrub interval]
  double interval_s;

  double p_interval() const;
  double fit() const;        // failures per billion hours
  double mttf_seconds() const;
  double mttf_hours() const { return mttf_seconds() / 3600.0; }
};

enum class SdrModel { kMechanistic, kStrict };

// ---- building blocks -------------------------------------------------

// ln P[Binomial(bits, ber) >= k] / == k.
double log_p_line_ge(std::uint32_t bits, std::uint32_t k, double ber);
double log_p_line_eq(std::uint32_t bits, std::uint32_t k, double ber);

// Lift a per-unit failure probability (log) to the cache level:
// ln P[>=1 of n units fails].
double log_cache_of_units(double log_p_unit, double n_units);

// ---- per-line ECC baselines (Table II, Table IV) ----------------------

// ECC-k per line: line fails with > k faults. `line_bits` defaults to
// data + 10·k check bits, matching the BCH codec geometry.
FitResult ecc_k(const CacheParams& c, int k, std::uint32_t line_bits = 0);

// ---- SuDoku variants ---------------------------------------------------

// SuDoku-X DUE: a RAID-Group fails with >= 2 lines of >= 2 faults (§III).
FitResult sudoku_x_due(const CacheParams& c, std::uint32_t line_bits = 0);

// SuDoku-Y DUE (§IV-E): SDR failure modes; see SdrModel above.
FitResult sudoku_y_due(const CacheParams& c, SdrModel model = SdrModel::kMechanistic,
                       std::uint32_t line_bits = 0);

// SuDoku-Z DUE (§V-C): lines must be unrepairable under both hashes.
FitResult sudoku_z_due(const CacheParams& c, SdrModel model = SdrModel::kMechanistic,
                       std::uint32_t line_bits = 0);

// Footnote 4: SuDoku-Z built directly on SuDoku-X (no SDR). The paper
// quotes ~4 Million FIT.
FitResult sudoku_z_no_sdr(const CacheParams& c, std::uint32_t line_bits = 0);

// SDC of any SuDoku variant (Table III): dominated by 7-fault lines that
// ECC-1 miscorrects into an 8-fault pattern evading CRC-31 (2^-31).
struct SdcBreakdown {
  double fit_seven_fault_events;   // exactly-7-fault line events, per 1e9 h
  double fit_eight_plus_events;    // 8+-fault line events
  double fit_six_plus_events;      // >=6-fault events — the paper's Table III
                                   // quotes this (its "191" equals the
                                   // ECC-5 row of Table II)
  double sdc_fit;                  // mechanistic: (7 + 8+) × 2^-31
  double sdc_fit_paper_style;      // (>=6 events) × 2^-31, Table III style
};
SdcBreakdown sudoku_sdc(const CacheParams& c, std::uint32_t line_bits = 0);

// Total FIT (DUE + SDC) for the three variants — Figure 7's series.
FitResult sudoku_total(const CacheParams& c, char variant /* 'X','Y','Z' */,
                       SdrModel model = SdrModel::kMechanistic);

// ---- related-work baselines (Table XI, Table XII) ----------------------

// CPPC + CRC-31: per-line ECC-1 + one global parity line over the whole
// cache. Fails with >= 2 multi-bit-faulty lines anywhere.
FitResult cppc(const CacheParams& c, std::uint32_t line_bits = 0);

// RAID-6 (P+Q) + CRC-31 + ECC-1 per line: corrects any two multi-bit lines
// per group, fails at three.
FitResult raid6(const CacheParams& c, std::uint32_t line_bits = 0);

// 2D error coding with ECC-1 + CRC-31: equivalent in failure modes to
// SuDoku-Y on the same group size (§VIII-A discussion); exposed separately
// for the Table XI bench.
FitResult twodp(const CacheParams& c, SdrModel model = SdrModel::kStrict,
                std::uint32_t line_bits = 0);

// Hi-ECC: ECC-6 over a 1 KB region (Table XII).
FitResult hi_ecc(const CacheParams& c, std::uint32_t region_data_bits = 8192, int t = 6);

// ---- large-codeword ECC frontier (ROADMAP item 5, docs/frontier.md) ----

// General (n, k, t) region code: a codeword of `data_bits` payload plus
// `parity_bits` check bits fails when more than t of its n = k + r bits
// flip within one scrub interval. P(codeword) is lifted to the cache's
// data capacity: num_lines × 512 data bits split into codewords of
// `data_bits` each. hi_ecc() is the (8192, 14·t, t) instantiation; the
// frontier bench sweeps (codes/ecc_design.h) through this.
FitResult region_code_fit(const CacheParams& c, std::uint64_t data_bits,
                          std::uint32_t parity_bits, int t);

// ---- SRAM Vmin (Table IV) ----------------------------------------------

// Probability that a 64 MB SRAM cache fails at Vmin with per-cell failure
// probability `ber`, protected by ECC-k per 512-bit line (the paper's
// Table IV rows use the bare 512-bit dataword).
double sram_vmin_cache_failure_ecc(const CacheParams& c, int k,
                                   std::uint32_t line_bits = 512);

}  // namespace sudoku::reliability
