#include "reliability/analytical.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/prob.h"

namespace sudoku::reliability {

namespace {

// ln P[>=1 failure per interval] -> FitResult.
FitResult make_result(double log_p_interval, double interval_s) {
  return FitResult{log_p_interval, interval_s};
}

}  // namespace

double FitResult::p_interval() const { return std::exp(log_p_interval); }

double FitResult::fit() const {
  // failures per 1e9 hours = p_interval × intervals in 1e9 hours.
  return std::exp(log_p_interval + std::log(kSecondsPerBillionHours / interval_s));
}

double FitResult::mttf_seconds() const {
  return interval_s / p_interval();
}

double log_p_line_ge(std::uint32_t bits, std::uint32_t k, double ber) {
  return log_binom_tail_ge(bits, k, ber);
}

double log_p_line_eq(std::uint32_t bits, std::uint32_t k, double ber) {
  return log_binom_pmf(bits, k, ber);
}

double log_cache_of_units(double log_p_unit, double n_units) {
  return log_any_of_n(log_p_unit, n_units);
}

FitResult ecc_k(const CacheParams& c, int k, std::uint32_t line_bits) {
  if (line_bits == 0) line_bits = 512 + 10u * static_cast<std::uint32_t>(k);
  const double lp_line = log_p_line_ge(line_bits, static_cast<std::uint32_t>(k) + 1, c.ber);
  const double lp_cache = log_cache_of_units(lp_line, static_cast<double>(c.num_lines));
  return make_result(lp_cache, c.scrub_interval_s);
}

FitResult sudoku_x_due(const CacheParams& c, std::uint32_t line_bits) {
  // Group fails when >= 2 of its G lines carry more faults than the inner
  // code corrects (§III-C: one such line per group is repaired by RAID-4).
  if (line_bits == 0) line_bits = c.sudoku_line_bits();
  const auto t = static_cast<std::uint32_t>(c.inner_ecc_t);
  const double q_multi = std::exp(log_p_line_ge(line_bits, t + 1, c.ber));
  const double lp_group = log_binom_tail_ge(c.group_size, 2, q_multi);
  const double lp_cache = log_cache_of_units(lp_group, static_cast<double>(c.num_groups()));
  return make_result(lp_cache, c.scrub_interval_s);
}

FitResult sudoku_y_due(const CacheParams& c, SdrModel model, std::uint32_t line_bits) {
  if (line_bits == 0) line_bits = c.sudoku_line_bits();
  const double B = line_bits;
  const double G = c.group_size;
  const auto t = static_cast<std::uint32_t>(c.inner_ecc_t);
  // "soft" = exactly t+1 faults (resurrectable: one trial flip brings the
  // line within the inner code's reach); "hard" = t+2 or more.
  const double q_soft = std::exp(log_p_line_eq(line_bits, t + 1, c.ber));
  const double q_multi = std::exp(log_p_line_ge(line_bits, t + 1, c.ber));
  const double q_hard = std::exp(log_p_line_ge(line_bits, t + 2, c.ber));
  const double q_hard_e = std::exp(log_p_line_eq(line_bits, t + 2, c.ber));

  const double pairs = std::exp(log_binom_coeff(G, 2));
  const double triples = std::exp(log_binom_coeff(G, 3));
  const double quads = std::exp(log_binom_coeff(G, 4));

  // Combinatorics of fault-set masking: a soft line resurrects unless all
  // of its t+1 fault positions are masked by the partner's fault set.
  const double subsets = std::exp(log_binom_coeff(B, t + 1.0));
  const double identical_sets = 1.0 / subsets;                       // (t+1) vs (t+1)
  const double masked_by_hard =
      std::exp(log_binom_coeff(t + 2.0, t + 1.0)) / subsets;         // (t+1) in (t+2)
  // P[two random (t+1)-subsets of B intersect] ≈ (t+1)^2 / B.
  const double pairwise_touch = (t + 1.0) * (t + 1.0) / B;

  double p_group = 0.0;
  if (model == SdrModel::kMechanistic) {
    // Failure modes of the implemented algorithm (§IV, Figure 3/4),
    // generalised from ECC-1 to ECC-t:
    // (a) two soft lines with *identical* fault sets — the parity mismatch
    //     vanishes and SDR has nothing to flip (Fig. 3c).
    const double t_overlap = pairs * q_soft * q_soft * identical_sets;
    // (b) two hard lines — one trial flip still leaves > t faults, and
    //     RAID-4 needs a lone victim.
    const double t_hh = pairs * q_hard * q_hard;
    // (c) a soft line fully masked by a hard partner (Fig. 4's ">1 bit of
    //     overlap" case).
    const double t_mask = pairs * 2.0 * q_soft * q_hard_e * masked_by_hard;
    // (d) three multi-bit lines where any is hard: more than 3(t+1) parity
    //     mismatches, and SDR is skipped beyond the mismatch cap (§IV-C).
    const double t_3line = triples * 3.0 * q_hard * q_multi * q_multi;
    // (e) three soft lines with any pairwise overlap (otherwise the
    //     3(t+1) mismatches resurrect all three, §IV-C).
    const double t_3line_overlap =
        triples * q_soft * q_soft * q_soft * 3.0 * pairwise_touch;
    // (f) four or more multi-bit lines: mismatch count beyond the cap.
    const double t_4line = quads * q_multi * q_multi * q_multi * q_multi;
    p_group = t_overlap + t_hh + t_mask + t_3line + t_3line_overlap + t_4line;
  } else {
    // kStrict: SDR succeeds only when every faulty line is soft and no
    // fault sets touch; any hard line in a multi-line group is fatal.
    // This brackets the paper's quoted Y numbers from below.
    const double t_any_hard_pair = pairs * (q_multi * q_multi - q_soft * q_soft);
    const double t_overlap = pairs * q_soft * q_soft * pairwise_touch;
    const double t_3line =
        triples * q_multi * q_multi * q_multi * 3.0 * (pairwise_touch + q_hard / q_multi);
    const double t_4line = quads * q_multi * q_multi * q_multi * q_multi;
    p_group = t_any_hard_pair + t_overlap + t_3line + t_4line;
  }

  const double lp_cache =
      log_cache_of_units(std::log(std::min(p_group, 1.0)), static_cast<double>(c.num_groups()));
  return make_result(lp_cache, c.scrub_interval_s);
}

namespace {

// P[a given uncorrectable line is also blocked in its Hash-2 group].
// The Hash-2 group blocks repair when it contains (i) another "hard" line
// — the pair is then exactly the Y-fatal (b) pattern — or (ii) two or more
// other multi-bit lines (mismatch count exceeds the SDR cap, and RAID-4
// has multiple victims).
double p_blocked_hash2(const CacheParams& c, double q_multi, double q_hard) {
  const double G = c.group_size;
  const double partner_hard = 1.0 - std::exp((G - 1.0) * std::log1p(-q_hard));
  const double two_soft = std::exp(log_binom_coeff(G - 1.0, 2)) * q_multi * q_multi;
  return partner_hard + two_soft;
}

}  // namespace

FitResult sudoku_z_due(const CacheParams& c, SdrModel model, std::uint32_t line_bits) {
  if (line_bits == 0) line_bits = c.sudoku_line_bits();
  const auto t = static_cast<std::uint32_t>(c.inner_ecc_t);
  const double q_multi = std::exp(log_p_line_ge(line_bits, t + 1, c.ber));
  const double q_hard = std::exp(log_p_line_ge(line_bits, t + 2, c.ber));
  const double G = c.group_size;
  const double pairs = std::exp(log_binom_coeff(G, 2));

  double p_group = 0.0;
  if (model == SdrModel::kMechanistic) {
    // The implemented controller iterates Hash-1/Hash-2 repairs to a
    // *global* fixed point, so a line with soft (2-fault) partners in its
    // Hash-2 group is not blocked for long: those partners are rebuilt as
    // lone victims of their own Hash-1 groups and the retry succeeds. The
    // minimal genuinely-fatal pattern is a 4-cycle of hard (3+-fault)
    // lines: A,B share a Hash-1 group; C in A's Hash-2 group and D in B's
    // Hash-2 group themselves share a Hash-1 group (the field structure
    // makes D unique given C). Probability per base group, halved because
    // the cycle is counted from both of its Hash-1 groups:
    p_group = 0.5 * pairs * q_hard * q_hard * (G - 1.0) * q_hard * q_hard;
  } else {
    // kStrict: static blocking, no global fixed point (the accounting the
    // paper's §V-C numbers imply): a hard line fails if its Hash-2 group
    // contains another hard line or two multi-bit lines at scrub time.
    const double blocked = p_blocked_hash2(c, q_multi, q_hard);
    p_group = pairs * q_hard * q_hard * blocked * blocked;
  }

  const double lp_cache =
      log_cache_of_units(std::log(std::min(p_group, 1.0)), static_cast<double>(c.num_groups()));
  return make_result(lp_cache, c.scrub_interval_s);
}

FitResult sudoku_z_no_sdr(const CacheParams& c, std::uint32_t line_bits) {
  // Footnote 4: skewed hashing over SuDoku-X. Any multi-bit line is "hard".
  if (line_bits == 0) line_bits = c.sudoku_line_bits();
  const auto t = static_cast<std::uint32_t>(c.inner_ecc_t);
  const double q_multi = std::exp(log_p_line_ge(line_bits, t + 1, c.ber));
  const double G = c.group_size;
  const double pairs = std::exp(log_binom_coeff(G, 2));
  const double blocked = 1.0 - std::exp((G - 1.0) * std::log1p(-q_multi));
  const double p_group = pairs * q_multi * q_multi * blocked * blocked;
  const double lp_cache =
      log_cache_of_units(std::log(std::min(p_group, 1.0)), static_cast<double>(c.num_groups()));
  return make_result(lp_cache, c.scrub_interval_s);
}

SdcBreakdown sudoku_sdc(const CacheParams& c, std::uint32_t line_bits) {
  if (line_bits == 0) line_bits = c.sudoku_line_bits();
  const double intervals_per_1e9h = kSecondsPerBillionHours / c.scrub_interval_s;
  const double lp6 = log_p_line_ge(line_bits, 6, c.ber);
  const double lp7 = log_p_line_eq(line_bits, 7, c.ber);
  const double lp8 = log_p_line_ge(line_bits, 8, c.ber);
  const double n = static_cast<double>(c.num_lines);
  SdcBreakdown out;
  out.fit_six_plus_events = std::exp(log_any_of_n(lp6, n)) * intervals_per_1e9h;
  out.fit_seven_fault_events = std::exp(log_any_of_n(lp7, n)) * intervals_per_1e9h;
  out.fit_eight_plus_events = std::exp(log_any_of_n(lp8, n)) * intervals_per_1e9h;
  // A 7-fault line is miscorrected by ECC-1 into an 8-fault (even-weight)
  // pattern which CRC-31 misses with 2^-31; 8+-fault lines can evade the
  // CRC directly with the same probability (§III-F).
  const double miss = std::pow(2.0, -31.0);
  out.sdc_fit = (out.fit_seven_fault_events + out.fit_eight_plus_events) * miss;
  out.sdc_fit_paper_style = out.fit_six_plus_events * miss;
  return out;
}

FitResult sudoku_total(const CacheParams& c, char variant, SdrModel model) {
  FitResult due{};
  switch (variant) {
    case 'X': due = sudoku_x_due(c); break;
    case 'Y': due = sudoku_y_due(c, model); break;
    case 'Z': due = sudoku_z_due(c, model); break;
    default: assert(false);
  }
  const double sdc_fit = sudoku_sdc(c).sdc_fit;
  const double intervals_per_1e9h = kSecondsPerBillionHours / c.scrub_interval_s;
  const double lp_sdc = std::log(sdc_fit / intervals_per_1e9h);
  return make_result(log_sum(due.log_p_interval, lp_sdc), c.scrub_interval_s);
}

FitResult cppc(const CacheParams& c, std::uint32_t line_bits) {
  // One global parity line: equivalent to SuDoku-X with a single
  // cache-sized RAID-Group.
  if (line_bits == 0) line_bits = c.sudoku_line_bits();
  const auto t = static_cast<std::uint32_t>(c.inner_ecc_t);
  const double q2 = std::exp(log_p_line_ge(line_bits, t + 1, c.ber));
  const double lp = log_binom_tail_ge(static_cast<double>(c.num_lines), 2, q2);
  return make_result(lp, c.scrub_interval_s);
}

FitResult raid6(const CacheParams& c, std::uint32_t line_bits) {
  // Two parities per group correct two known-position (CRC-flagged)
  // multi-bit lines; three defeat it.
  if (line_bits == 0) line_bits = c.sudoku_line_bits();
  const auto t = static_cast<std::uint32_t>(c.inner_ecc_t);
  const double q2 = std::exp(log_p_line_ge(line_bits, t + 1, c.ber));
  const double lp_group = log_binom_tail_ge(c.group_size, 3, q2);
  const double lp_cache = log_cache_of_units(lp_group, static_cast<double>(c.num_groups()));
  return make_result(lp_cache, c.scrub_interval_s);
}

FitResult twodp(const CacheParams& c, SdrModel model, std::uint32_t line_bits) {
  // Horizontal + vertical parity over one fixed set of lines: the same
  // mismatch-position machinery as SuDoku-Y but with no second hash. The
  // paper's Table XI value (2.8e8) equals its SuDoku-Y DUE FIT.
  return sudoku_y_due(c, model, line_bits);
}

FitResult hi_ecc(const CacheParams& c, std::uint32_t region_data_bits, int t) {
  return region_code_fit(c, region_data_bits, 14u * static_cast<std::uint32_t>(t), t);
}

FitResult region_code_fit(const CacheParams& c, std::uint64_t data_bits,
                          std::uint32_t parity_bits, int t) {
  const std::uint32_t region_bits =
      static_cast<std::uint32_t>(data_bits) + parity_bits;
  const double n_regions =
      static_cast<double>(c.num_lines) * 512.0 / static_cast<double>(data_bits);
  const double lp_region =
      log_p_line_ge(region_bits, static_cast<std::uint32_t>(t) + 1, c.ber);
  const double lp_cache = log_cache_of_units(lp_region, n_regions);
  return make_result(lp_cache, c.scrub_interval_s);
}

double sram_vmin_cache_failure_ecc(const CacheParams& c, int k, std::uint32_t line_bits) {
  const double lp_line = log_p_line_ge(line_bits, static_cast<std::uint32_t>(k) + 1, c.ber);
  return std::exp(log_cache_of_units(lp_line, static_cast<double>(c.num_lines)));
}

}  // namespace sudoku::reliability
