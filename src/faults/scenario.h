// Composable fault-scenario engine (ROADMAP item 4). The Monte-Carlo
// harnesses and the concurrent service have so far assumed purely i.i.d.
// transient flips — the paper's §VII model. Field studies (DDR4 fleet
// data, arXiv 2408.15302) show deployed memories are instead dominated by
// permanent and intermittent faults and by spatially-correlated multi-bit
// patterns, and error-mitigation behaviour changes qualitatively once
// faults stop being i.i.d. (Patel, arXiv 2204.10387).
//
// A `FaultScenario` layers independent fault *sources* over one array
// geometry:
//
//   iid           Binomial(total_bits, ber) flips/interval — the classic model
//   stuck_at      fixed cells pinned to a value; repair never sticks
//   intermittent  stuck cells with an active/dormant duty cycle
//   cluster       Poisson-arriving row/column/rect multi-bit events
//   thermal       iid flips whose BER follows a temperature→Δ trajectory
//                 through device_model's Gauss–Hermite integration
//   weibull       a cell population whose members become permanently stuck
//                 at Weibull-distributed lifetimes (wear-out segment)
//
// Determinism is the load-bearing property: every source draws from its own
// seed stream (derive_stream_seed(scenario_seed, source_index)), placement
// is drawn once at construction from that stream's format sub-stream, and
// interval t's faults come from sub-stream t alone. Two scenarios built
// from the same (spec, geometry, seed) therefore agree bit-for-bit at every
// t, independent of which shard, thread, or process asks — the same
// contract the experiment engine's per-trial reseeding relies on.
//
// Transient flips from different sources merge by XOR (two sources flipping
// the same bit cancel, as physical flips do); stuck cells merge last-wins
// in source order. See docs/faults.md for the full model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "sttram/array.h"
#include "sttram/fault_injector.h"

namespace sudoku::faults {

// Array geometry a scenario is instantiated against. `unit` is the fault
// unit of the scheme under test: a 553-bit codeword line for SuDoku, a
// 1 KB region for Hi-ECC.
struct Geometry {
  std::uint64_t num_units = 0;
  std::uint32_t bits_per_unit = 0;
  std::uint64_t total_bits() const {
    return num_units * static_cast<std::uint64_t>(bits_per_unit);
  }
  bool operator==(const Geometry&) const = default;
};

// One cell pinned to a value (the shape tests/test_permanent_faults.cpp
// used to hand-roll).
struct StuckCell {
  std::uint64_t unit = 0;
  std::uint32_t bit = 0;
  bool value = false;
  bool operator==(const StuckCell&) const = default;
};

// Force every listed cell to its stuck value (flip the stored bit iff it
// currently disagrees). Models "the repair wrote the right value but the
// cell won't hold it".
void assert_cells(SttramArray& array, std::span<const StuckCell> cells);

// The set of cells stuck *now* (at one interval), with the query the MC
// harness needs: "is this unit golden outside its stuck positions?" —
// a re-asserted stuck bit must not be misclassified as silent corruption.
class ActiveStuck {
 public:
  ActiveStuck() = default;
  // Duplicate (unit,bit) entries resolve last-wins, in input order.
  explicit ActiveStuck(const std::vector<StuckCell>& cells);

  const std::vector<StuckCell>& cells() const { return cells_; }
  const std::vector<std::uint64_t>& units() const { return units_; }  // sorted, unique
  bool empty() const { return cells_.empty(); }

  void assert_on(SttramArray& array) const { assert_cells(array, cells_); }

  // True iff `stored` equals `golden` on every bit that is not stuck in
  // this unit. Both vectors must be bits_per_unit wide.
  bool equal_outside_stuck(std::uint64_t unit, const BitVec& stored,
                           const BitVec& golden) const;

 private:
  std::vector<StuckCell> cells_;        // sorted by (unit, bit)
  std::vector<std::uint64_t> units_;    // sorted, unique
};

enum class SourceKind { kIid, kStuckAt, kIntermittent, kCluster, kThermal, kWeibull };
enum class ClusterShape { kRow, kCol, kRect };

const char* to_string(SourceKind kind);
const char* to_string(ClusterShape shape);

// One fault source. Only the fields of the active kind are meaningful;
// to_json() emits exactly those, so specs round-trip canonically.
struct SourceSpec {
  SourceKind kind = SourceKind::kIid;

  double ber = 0.0;                    // kIid: per-interval bit error rate

  std::uint32_t cells = 0;             // kStuckAt/kIntermittent/kWeibull
  int stuck_value = -1;                // -1 = random per cell, else 0/1

  std::uint32_t period = 8;            // kIntermittent: duty cycle length
  std::uint32_t active = 4;            // ...intervals stuck per period

  double events_per_interval = 0.0;    // kCluster: Poisson arrival rate
  ClusterShape shape = ClusterShape::kRect;
  std::uint32_t span_units = 1;        // cluster footprint (clipped at edges)
  std::uint32_t span_bits = 1;

  double delta_start = 35.0;           // kThermal: Δ trajectory endpoints
  double delta_end = 35.0;
  std::uint64_t ramp_intervals = 1;    // intervals to ramp start→end
  double sigma_frac = 0.10;            // process-variation σ/μ of Δ
  double interval_s = 0.020;           // exposure window per interval

  double weibull_k = 2.0;              // kWeibull: shape (k>1 = wear-out)
  double weibull_scale = 100.0;        // characteristic life, in intervals

  bool operator==(const SourceSpec&) const = default;
};

struct ScenarioSpec {
  std::string name;
  std::vector<SourceSpec> sources;

  bool operator==(const ScenarioSpec&) const = default;

  // Canonical JSON: {"name": ..., "sources": [...]}. parse(to_json())
  // round-trips to an equal spec.
  std::string to_json() const;
  static std::optional<ScenarioSpec> parse(std::string_view json,
                                           std::string* error = nullptr);

  // Named presets shared by benches and tests (each is a JSON literal run
  // through parse(), so the parser is exercised on every construction).
  static ScenarioSpec builtin(std::string_view name);  // aborts on unknown name
  static std::vector<std::string> builtin_names();
};

// Per-interval telemetry filled by transient().
struct ScenarioTick {
  std::uint64_t transient_bits = 0;   // flips after cross-source XOR merge
  std::uint64_t cluster_events = 0;   // cluster arrivals this interval
};

// A spec instantiated against a geometry and a seed. Immutable after
// construction; every query is const and thread-safe, so one instance can
// be shared by all shards of a parallel run.
class FaultScenario {
 public:
  // Validates the spec against the geometry (e.g. more stuck cells than
  // bits) and aborts loudly on nonsense — a misconfigured scenario must
  // not silently skew a campaign.
  FaultScenario(ScenarioSpec spec, const Geometry& geometry, std::uint64_t seed);

  const ScenarioSpec& spec() const { return spec_; }
  const Geometry& geometry() const { return geom_; }
  std::uint64_t seed() const { return seed_; }

  // Stable hash over (canonical spec JSON, geometry, seed); feeds the
  // experiment engine's config fingerprint so checkpoints from a different
  // scenario can never be adopted.
  std::uint64_t fingerprint() const { return fingerprint_; }

  // Transient flips for interval t, XOR-merged across sources and grouped
  // by unit (bit lists sorted ascending; map built in sorted unit order).
  FaultBatch transient(std::uint64_t t, ScenarioTick* tick = nullptr) const;

  // Cells stuck during interval t: all stuck_at cells, intermittent cells
  // in the active phase of their duty cycle, and weibull cells whose
  // lifetime has expired. Cross-source conflicts resolve last-wins.
  ActiveStuck stuck(std::uint64_t t) const;

  // True if any source can ever pin cells (lets harnesses skip the stuck
  // bookkeeping for purely transient scenarios).
  bool has_stuck_sources() const { return has_stuck_; }

 private:
  struct PlacedCell {
    std::uint64_t unit = 0;
    std::uint32_t bit = 0;
    bool value = false;
    std::uint32_t phase = 0;   // kIntermittent: duty-cycle offset
    double birth = 0.0;        // kWeibull: lifetime in intervals
  };
  struct Source {
    SourceSpec spec;
    std::uint64_t seed = 0;          // derive_stream_seed(scenario seed, index)
    std::vector<PlacedCell> cells;   // fixed placement (stuck-type kinds)
  };

  double thermal_ber(const SourceSpec& s, std::uint64_t t) const;

  ScenarioSpec spec_;
  Geometry geom_;
  std::uint64_t seed_ = 0;
  std::uint64_t fingerprint_ = 0;
  bool has_stuck_ = false;
  std::vector<Source> sources_;
};

}  // namespace sudoku::faults
