#include "faults/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <unordered_set>
#include <utility>

#include "common/json_parse.h"
#include "sttram/device_model.h"

namespace sudoku::faults {

namespace {

// Local FNV-1a (the exp layer has its own for checkpoint fingerprints, but
// faults sits below exp and must not link it).
std::uint64_t fnv1a64(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a64_u64(std::uint64_t v, std::uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "faults::FaultScenario: %s\n", what);
  std::abort();
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_double(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\": %.17g", key, v);
  out += buf;
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\": %llu", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

// ---------------------------------------------------------------- stuck sets

void assert_cells(SttramArray& array, std::span<const StuckCell> cells) {
  for (const StuckCell& s : cells)
    if (array.test(s.unit, s.bit) != s.value) array.flip(s.unit, s.bit);
}

ActiveStuck::ActiveStuck(const std::vector<StuckCell>& cells) {
  // Last writer wins per (unit, bit); std::map gives the sorted order the
  // MC harness relies on for deterministic iteration.
  std::map<std::pair<std::uint64_t, std::uint32_t>, bool> resolved;
  for (const StuckCell& s : cells) resolved[{s.unit, s.bit}] = s.value;
  cells_.reserve(resolved.size());
  for (const auto& [key, value] : resolved) {
    cells_.push_back({key.first, key.second, value});
    if (units_.empty() || units_.back() != key.first) units_.push_back(key.first);
  }
}

bool ActiveStuck::equal_outside_stuck(std::uint64_t unit, const BitVec& stored,
                                      const BitVec& golden) const {
  BitVec diff = stored;
  diff ^= golden;
  if (diff.none()) return true;
  const StuckCell probe{unit, 0, false};
  auto it = std::lower_bound(cells_.begin(), cells_.end(), probe,
                             [](const StuckCell& a, const StuckCell& b) {
                               return a.unit < b.unit;
                             });
  for (; it != cells_.end() && it->unit == unit; ++it)
    if (diff.test(it->bit)) diff.flip(it->bit);
  return diff.none();
}

// ----------------------------------------------------------------- spec JSON

const char* to_string(SourceKind kind) {
  switch (kind) {
    case SourceKind::kIid: return "iid";
    case SourceKind::kStuckAt: return "stuck_at";
    case SourceKind::kIntermittent: return "intermittent";
    case SourceKind::kCluster: return "cluster";
    case SourceKind::kThermal: return "thermal";
    case SourceKind::kWeibull: return "weibull";
  }
  return "?";
}

const char* to_string(ClusterShape shape) {
  switch (shape) {
    case ClusterShape::kRow: return "row";
    case ClusterShape::kCol: return "col";
    case ClusterShape::kRect: return "rect";
  }
  return "?";
}

std::string ScenarioSpec::to_json() const {
  std::string out = "{\"name\": ";
  append_escaped(out, name);
  out += ", \"sources\": [";
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const SourceSpec& s = sources[i];
    if (i) out += ", ";
    out += "{\"kind\": ";
    append_escaped(out, to_string(s.kind));
    switch (s.kind) {
      case SourceKind::kIid:
        out += ", ";
        append_double(out, "ber", s.ber);
        break;
      case SourceKind::kStuckAt:
        out += ", ";
        append_u64(out, "cells", s.cells);
        out += ", ";
        out += "\"value\": ";
        append_escaped(out, s.stuck_value < 0 ? "random" : (s.stuck_value ? "1" : "0"));
        break;
      case SourceKind::kIntermittent:
        out += ", ";
        append_u64(out, "cells", s.cells);
        out += ", ";
        append_u64(out, "period", s.period);
        out += ", ";
        append_u64(out, "active", s.active);
        out += ", \"value\": ";
        append_escaped(out, s.stuck_value < 0 ? "random" : (s.stuck_value ? "1" : "0"));
        break;
      case SourceKind::kCluster:
        out += ", ";
        append_double(out, "events_per_interval", s.events_per_interval);
        out += ", \"shape\": ";
        append_escaped(out, to_string(s.shape));
        out += ", ";
        append_u64(out, "span_units", s.span_units);
        out += ", ";
        append_u64(out, "span_bits", s.span_bits);
        break;
      case SourceKind::kThermal:
        out += ", ";
        append_double(out, "delta_start", s.delta_start);
        out += ", ";
        append_double(out, "delta_end", s.delta_end);
        out += ", ";
        append_u64(out, "ramp_intervals", s.ramp_intervals);
        out += ", ";
        append_double(out, "sigma_frac", s.sigma_frac);
        out += ", ";
        append_double(out, "interval_s", s.interval_s);
        break;
      case SourceKind::kWeibull:
        out += ", ";
        append_u64(out, "cells", s.cells);
        out += ", ";
        append_double(out, "weibull_k", s.weibull_k);
        out += ", ";
        append_double(out, "weibull_scale", s.weibull_scale);
        out += ", \"value\": ";
        append_escaped(out, s.stuck_value < 0 ? "random" : (s.stuck_value ? "1" : "0"));
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

bool parse_kind(const std::string& s, SourceKind& out) {
  for (const SourceKind k :
       {SourceKind::kIid, SourceKind::kStuckAt, SourceKind::kIntermittent,
        SourceKind::kCluster, SourceKind::kThermal, SourceKind::kWeibull}) {
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool parse_shape(const std::string& s, ClusterShape& out) {
  for (const ClusterShape c :
       {ClusterShape::kRow, ClusterShape::kCol, ClusterShape::kRect}) {
    if (s == to_string(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

// Optional-field readers: absent keys keep the SourceSpec default; present
// keys must have the right shape.
bool read_double(const JsonValue& obj, const char* key, double& out,
                 std::string* error) {
  const JsonValue* v = obj.find(key);
  if (!v) return true;
  const auto d = v->as_double();
  if (!d) {
    if (error) *error = std::string(key) + ": expected a number";
    return false;
  }
  out = *d;
  return true;
}

template <typename Int>
bool read_uint(const JsonValue& obj, const char* key, Int& out, std::string* error) {
  const JsonValue* v = obj.find(key);
  if (!v) return true;
  const auto u = v->as_u64();
  if (!u) {
    if (error) *error = std::string(key) + ": expected a non-negative integer";
    return false;
  }
  out = static_cast<Int>(*u);
  return true;
}

bool read_value_field(const JsonValue& obj, int& out, std::string* error) {
  const JsonValue* v = obj.find("value");
  if (!v) return true;
  if (v->is_string()) {
    if (v->scalar == "random") out = -1;
    else if (v->scalar == "0") out = 0;
    else if (v->scalar == "1") out = 1;
    else {
      if (error) *error = "value: expected \"random\", \"0\" or \"1\"";
      return false;
    }
    return true;
  }
  if (error) *error = "value: expected a string";
  return false;
}

}  // namespace

std::optional<ScenarioSpec> ScenarioSpec::parse(std::string_view json,
                                                std::string* error) {
  const auto doc = json_parse(json, error);
  if (!doc) return std::nullopt;
  if (!doc->is_object()) {
    if (error) *error = "scenario: expected a JSON object";
    return std::nullopt;
  }
  ScenarioSpec spec;
  if (const JsonValue* name = doc->find("name")) {
    if (!name->is_string()) {
      if (error) *error = "name: expected a string";
      return std::nullopt;
    }
    spec.name = name->scalar;
  }
  const JsonValue* sources = doc->find("sources");
  if (!sources || !sources->is_array()) {
    if (error) *error = "sources: expected an array";
    return std::nullopt;
  }
  for (const JsonValue& item : sources->items) {
    if (!item.is_object()) {
      if (error) *error = "sources[]: expected an object";
      return std::nullopt;
    }
    SourceSpec s;
    const JsonValue* kind = item.find("kind");
    if (!kind || !kind->is_string() || !parse_kind(kind->scalar, s.kind)) {
      if (error) *error = "sources[].kind: expected one of iid/stuck_at/intermittent/cluster/thermal/weibull";
      return std::nullopt;
    }
    if (const JsonValue* shape = item.find("shape")) {
      if (!shape->is_string() || !parse_shape(shape->scalar, s.shape)) {
        if (error) *error = "sources[].shape: expected row/col/rect";
        return std::nullopt;
      }
    }
    if (!read_double(item, "ber", s.ber, error) ||
        !read_uint(item, "cells", s.cells, error) ||
        !read_uint(item, "period", s.period, error) ||
        !read_uint(item, "active", s.active, error) ||
        !read_double(item, "events_per_interval", s.events_per_interval, error) ||
        !read_uint(item, "span_units", s.span_units, error) ||
        !read_uint(item, "span_bits", s.span_bits, error) ||
        !read_double(item, "delta_start", s.delta_start, error) ||
        !read_double(item, "delta_end", s.delta_end, error) ||
        !read_uint(item, "ramp_intervals", s.ramp_intervals, error) ||
        !read_double(item, "sigma_frac", s.sigma_frac, error) ||
        !read_double(item, "interval_s", s.interval_s, error) ||
        !read_double(item, "weibull_k", s.weibull_k, error) ||
        !read_double(item, "weibull_scale", s.weibull_scale, error) ||
        !read_value_field(item, s.stuck_value, error))
      return std::nullopt;
    spec.sources.push_back(s);
  }
  return spec;
}

// ------------------------------------------------------------------ builtins

namespace {

struct Builtin {
  const char* name;
  const char* json;
};

// Presets shared by bench_scenario_matrix, the tests, and docs/faults.md.
// Rates are tuned for the bench's 4096-line / ~550-bit-unit arrays: high
// enough that a few hundred intervals see real multi-fault events, low
// enough that SuDoku-X still separates from the stronger inner codes.
constexpr Builtin kBuiltins[] = {
    {"iid",
     R"({"name": "iid", "sources": [{"kind": "iid", "ber": 1e-4}]})"},
    {"stuck",
     R"({"name": "stuck", "sources": [
          {"kind": "stuck_at", "cells": 24, "value": "random"},
          {"kind": "iid", "ber": 2e-5}]})"},
    {"intermittent",
     R"({"name": "intermittent", "sources": [
          {"kind": "intermittent", "cells": 16, "period": 6, "active": 2, "value": "random"},
          {"kind": "iid", "ber": 2e-5}]})"},
    {"clustered",
     R"({"name": "clustered", "sources": [
          {"kind": "cluster", "events_per_interval": 1.0, "shape": "row", "span_units": 1, "span_bits": 8},
          {"kind": "cluster", "events_per_interval": 0.25, "shape": "col", "span_units": 4, "span_bits": 1},
          {"kind": "iid", "ber": 2e-5}]})"},
    {"thermal_ramp",
     R"({"name": "thermal_ramp", "sources": [
          {"kind": "thermal", "delta_start": 35, "delta_end": 31, "ramp_intervals": 200,
           "sigma_frac": 0.1, "interval_s": 0.02}]})"},
    {"weibull",
     R"({"name": "weibull", "sources": [
          {"kind": "weibull", "cells": 48, "weibull_k": 2.0, "weibull_scale": 250, "value": "random"},
          {"kind": "iid", "ber": 2e-5}]})"},
    {"mixed",
     R"({"name": "mixed", "sources": [
          {"kind": "stuck_at", "cells": 12, "value": "random"},
          {"kind": "intermittent", "cells": 8, "period": 8, "active": 3, "value": "random"},
          {"kind": "cluster", "events_per_interval": 0.5, "shape": "row", "span_units": 1, "span_bits": 8},
          {"kind": "iid", "ber": 5e-5}]})"},
};

}  // namespace

ScenarioSpec ScenarioSpec::builtin(std::string_view name) {
  for (const Builtin& b : kBuiltins) {
    if (name == b.name) {
      std::string error;
      auto spec = parse(b.json, &error);
      if (!spec) {
        std::fprintf(stderr, "faults: builtin scenario '%s' failed to parse: %s\n",
                     b.name, error.c_str());
        std::abort();
      }
      return *spec;
    }
  }
  std::fprintf(stderr, "faults: unknown builtin scenario '%.*s'\n",
               static_cast<int>(name.size()), name.data());
  std::abort();
}

std::vector<std::string> ScenarioSpec::builtin_names() {
  std::vector<std::string> names;
  for (const Builtin& b : kBuiltins) names.emplace_back(b.name);
  return names;
}

// ------------------------------------------------------------ FaultScenario

FaultScenario::FaultScenario(ScenarioSpec spec, const Geometry& geometry,
                             std::uint64_t seed)
    : spec_(std::move(spec)), geom_(geometry), seed_(seed) {
  if (geom_.num_units == 0 || geom_.bits_per_unit == 0)
    die("geometry must be non-empty");

  fingerprint_ = fnv1a64(spec_.to_json());
  fingerprint_ = fnv1a64_u64(geom_.num_units, fingerprint_);
  fingerprint_ = fnv1a64_u64(geom_.bits_per_unit, fingerprint_);
  fingerprint_ = fnv1a64_u64(seed_, fingerprint_);

  sources_.reserve(spec_.sources.size());
  for (std::size_t i = 0; i < spec_.sources.size(); ++i) {
    const SourceSpec& s = spec_.sources[i];
    Source src;
    src.spec = s;
    src.seed = Rng::derive_stream_seed(seed_, i);

    switch (s.kind) {
      case SourceKind::kIid:
        if (s.ber < 0.0 || s.ber >= 1.0) die("iid: ber must be in [0, 1)");
        break;
      case SourceKind::kCluster:
        if (s.events_per_interval < 0.0) die("cluster: negative arrival rate");
        if (s.span_units == 0 || s.span_bits == 0) die("cluster: zero-sized footprint");
        break;
      case SourceKind::kThermal:
        if (s.interval_s <= 0.0) die("thermal: interval_s must be positive");
        if (s.sigma_frac < 0.0) die("thermal: negative sigma_frac");
        break;
      case SourceKind::kIntermittent:
        if (s.period == 0) die("intermittent: period must be positive");
        if (s.active > s.period) die("intermittent: active phase longer than period");
        [[fallthrough]];
      case SourceKind::kStuckAt:
      case SourceKind::kWeibull: {
        if (s.kind == SourceKind::kWeibull &&
            (s.weibull_k <= 0.0 || s.weibull_scale <= 0.0))
          die("weibull: shape and scale must be positive");
        if (s.cells > geom_.total_bits())
          die("stuck-type source asks for more cells than the array has bits");
        // Placement is a format-time decision: drawn once from the source's
        // format sub-stream, distinct within the source (rejection over flat
        // positions, same scheme FaultInjector::sample_exact uses).
        Rng rng(Rng::derive_stream_seed(src.seed, kFormatStream));
        std::unordered_set<std::uint64_t> seen;
        src.cells.reserve(s.cells);
        while (src.cells.size() < s.cells) {
          const std::uint64_t pos = rng.next_below(geom_.total_bits());
          if (!seen.insert(pos).second) continue;
          PlacedCell cell;
          cell.unit = pos / geom_.bits_per_unit;
          cell.bit = static_cast<std::uint32_t>(pos % geom_.bits_per_unit);
          cell.value = s.stuck_value < 0 ? rng.next_bool(0.5) : (s.stuck_value != 0);
          if (s.kind == SourceKind::kIntermittent)
            cell.phase = static_cast<std::uint32_t>(rng.next_below(s.period));
          if (s.kind == SourceKind::kWeibull) {
            double u = rng.next_double();
            while (u >= 1.0) u = rng.next_double();
            cell.birth = s.weibull_scale *
                         std::pow(-std::log1p(-u), 1.0 / s.weibull_k);
          }
          src.cells.push_back(cell);
        }
        has_stuck_ = true;
        break;
      }
    }
    sources_.push_back(std::move(src));
  }
}

double FaultScenario::thermal_ber(const SourceSpec& s, std::uint64_t t) const {
  double frac = 1.0;
  if (s.ramp_intervals > 0 && t < s.ramp_intervals)
    frac = static_cast<double>(t) / static_cast<double>(s.ramp_intervals);
  ThermalParams p;
  p.delta_mean = s.delta_start + (s.delta_end - s.delta_start) * frac;
  p.sigma_frac = s.sigma_frac;
  return effective_ber(p, s.interval_s);
}

FaultBatch FaultScenario::transient(std::uint64_t t, ScenarioTick* tick) const {
  // XOR-merge across sources: a bit flipped by an even number of sources is
  // back in its original state, exactly as physical flips compose.
  std::unordered_set<std::uint64_t> flips;
  const auto toggle = [&](std::uint64_t unit, std::uint64_t bit) {
    const std::uint64_t pos = unit * geom_.bits_per_unit + bit;
    const auto [it, inserted] = flips.insert(pos);
    if (!inserted) flips.erase(it);
  };

  std::uint64_t cluster_events = 0;
  for (const Source& src : sources_) {
    const SourceSpec& s = src.spec;
    switch (s.kind) {
      case SourceKind::kIid:
      case SourceKind::kThermal: {
        const double ber = s.kind == SourceKind::kIid ? s.ber : thermal_ber(s, t);
        Rng rng(Rng::derive_stream_seed(src.seed, t));
        const FaultInjector inj(geom_.num_units, geom_.bits_per_unit, ber);
        for (const auto& [unit, bits] : inj.sample_interval(rng))
          for (const std::uint32_t bit : bits) toggle(unit, bit);
        break;
      }
      case SourceKind::kCluster: {
        Rng rng(Rng::derive_stream_seed(src.seed, t));
        const std::uint64_t events = rng.next_poisson(s.events_per_interval);
        cluster_events += events;
        for (std::uint64_t e = 0; e < events; ++e) {
          const std::uint64_t unit0 = rng.next_below(geom_.num_units);
          const std::uint64_t bit0 = rng.next_below(geom_.bits_per_unit);
          // Footprint grows toward higher indices and clips at the edges —
          // a row event near the last bit is genuinely shorter, like a
          // wordline defect reaching the array boundary.
          for (std::uint32_t du = 0; du < s.span_units; ++du) {
            const std::uint64_t unit = unit0 + du;
            if (unit >= geom_.num_units) break;
            for (std::uint32_t db = 0; db < s.span_bits; ++db) {
              const std::uint64_t bit = bit0 + db;
              if (bit >= geom_.bits_per_unit) break;
              toggle(unit, bit);
            }
          }
        }
        break;
      }
      case SourceKind::kStuckAt:
      case SourceKind::kIntermittent:
      case SourceKind::kWeibull:
        break;  // no transient component
    }
  }

  std::vector<std::uint64_t> sorted(flips.begin(), flips.end());
  std::sort(sorted.begin(), sorted.end());
  FaultBatch batch;
  for (const std::uint64_t pos : sorted)
    batch[pos / geom_.bits_per_unit].push_back(
        static_cast<std::uint32_t>(pos % geom_.bits_per_unit));

  if (tick) {
    tick->transient_bits = sorted.size();
    tick->cluster_events = cluster_events;
  }
  return batch;
}

ActiveStuck FaultScenario::stuck(std::uint64_t t) const {
  std::vector<StuckCell> cells;
  for (const Source& src : sources_) {
    const SourceSpec& s = src.spec;
    switch (s.kind) {
      case SourceKind::kStuckAt:
        for (const PlacedCell& c : src.cells)
          cells.push_back({c.unit, c.bit, c.value});
        break;
      case SourceKind::kIntermittent:
        for (const PlacedCell& c : src.cells)
          if ((t + c.phase) % s.period < s.active)
            cells.push_back({c.unit, c.bit, c.value});
        break;
      case SourceKind::kWeibull:
        for (const PlacedCell& c : src.cells)
          if (c.birth <= static_cast<double>(t))
            cells.push_back({c.unit, c.bit, c.value});
        break;
      default:
        break;
    }
  }
  return ActiveStuck(cells);
}

}  // namespace sudoku::faults
