// System energy / EDP model (paper §VII-A Table VII, §VII-D Figure 9).
// Energy = dynamic (per-access LLC/PLT/DRAM + codec) + static (STTRAM array
// + SRAM PLT leakage + a fixed core/system power) over the simulated time;
// EDP = energy × delay. Figure 9 reports SuDoku-Z's EDP normalized to the
// error-free ideal, so the constants cancel to first order and the result
// is driven by the PLT write energy, the scrub reads, and the (tiny) delay
// difference — exactly the effects the paper attributes the ≤0.4% to.
#pragma once

#include <cstdint>

#include "sim/timing_sim.h"

namespace sudoku::energy {

struct EnergyParams {
  // Table VII.
  double sttram_write_nj = 0.35;
  double sttram_read_nj = 0.13;
  double sttram_static_nw_per_cell = 0.07;
  double sram_write_nj = 0.11;
  double sram_read_nj = 0.05;
  double sram_static_nw_per_cell = 4.02;
  // §VII-A: ~40 pJ per line ECC encode/decode; the paper conservatively
  // charges CRC-31+ECC-1 the same.
  double codec_pj = 40.0;
  // DRAM and core contributions (system-level context for "System-EDP").
  double dram_access_nj = 20.0;
  double core_power_w_per_core = 5.0;
  std::uint32_t num_cores = 8;
};

struct EnergyBreakdown {
  double llc_dynamic_j = 0.0;
  double plt_dynamic_j = 0.0;
  double codec_j = 0.0;
  double scrub_j = 0.0;
  double dram_j = 0.0;
  double static_j = 0.0;
  double core_j = 0.0;

  double total_j() const {
    return llc_dynamic_j + plt_dynamic_j + codec_j + scrub_j + dram_j + static_j + core_j;
  }
};

// Compute the energy of a finished simulation. `sttram_cells` /
// `plt_sram_cells` size the leakage terms (553 bits per line; 2×128 KB-ish
// PLT for SuDoku-Z, 0 for the ideal baseline).
EnergyBreakdown compute_energy(const sim::SimResult& result, const EnergyParams& params,
                               std::uint64_t sttram_cells, std::uint64_t plt_sram_cells);

// Energy–delay product in joule-seconds.
inline double edp(const EnergyBreakdown& e, double time_ns) {
  return e.total_j() * (time_ns * 1e-9);
}

}  // namespace sudoku::energy
