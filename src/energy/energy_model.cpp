#include "energy/energy_model.h"

namespace sudoku::energy {

EnergyBreakdown compute_energy(const sim::SimResult& result, const EnergyParams& params,
                               std::uint64_t sttram_cells, std::uint64_t plt_sram_cells) {
  EnergyBreakdown e;
  const double seconds = result.total_time_ns * 1e-9;

  e.llc_dynamic_j = (static_cast<double>(result.llc_reads) * params.sttram_read_nj +
                     static_cast<double>(result.llc_writes) * params.sttram_write_nj) *
                    1e-9;
  // PLT is SRAM: a parity update is a read-modify-write (charge both).
  e.plt_dynamic_j = static_cast<double>(result.plt_writes) *
                    (params.sram_read_nj + params.sram_write_nj) * 1e-9;
  e.codec_j = static_cast<double>(result.codec_events) * params.codec_pj * 1e-12;
  // Scrub reads every line per interval (reads already counted separately
  // from demand traffic in SimResult::scrub_reads).
  e.scrub_j = static_cast<double>(result.scrub_reads) * params.sttram_read_nj * 1e-9;
  e.dram_j = static_cast<double>(result.dram_accesses) * params.dram_access_nj * 1e-9;
  e.static_j = (static_cast<double>(sttram_cells) * params.sttram_static_nw_per_cell +
                static_cast<double>(plt_sram_cells) * params.sram_static_nw_per_cell) *
               1e-9 * seconds;
  e.core_j = params.core_power_w_per_core * params.num_cores * seconds;
  return e;
}

}  // namespace sudoku::energy
