#include "sim/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

namespace sudoku::sim {

namespace {

// Characterisation-level parameters per benchmark. Values are synthetic but
// calibrated to the qualitative behaviour reported in SPEC2006/PARSEC
// characterisation studies: mcf/lbm/milc are memory-bound with large
// footprints; perlbench/povray/gamess barely touch the LLC; commercial
// traces have high write fractions, etc.
std::vector<BenchmarkProfile> build_roster() {
  const std::uint64_t MB = (1ull << 20) / 64;  // lines per MB
  return {
      // ---- SPEC2006 ----
      {"perlbench", "SPEC", 1.2, 0.30, 24 * MB, 0.85, 0.05, AccessPattern::kMixed},
      {"bzip2", "SPEC", 4.1, 0.35, 48 * MB, 0.70, 0.10, AccessPattern::kMixed},
      {"gcc", "SPEC", 7.5, 0.40, 64 * MB, 0.65, 0.08, AccessPattern::kMixed},
      {"mcf", "SPEC", 32.0, 0.25, 420 * MB, 0.45, 0.02, AccessPattern::kIrregular},
      {"milc", "SPEC", 18.5, 0.35, 340 * MB, 0.20, 0.05, AccessPattern::kStreaming},
      {"gobmk", "SPEC", 2.1, 0.32, 28 * MB, 0.80, 0.06, AccessPattern::kMixed},
      {"soplex", "SPEC", 14.2, 0.28, 230 * MB, 0.50, 0.04, AccessPattern::kMixed},
      {"hmmer", "SPEC", 1.5, 0.45, 18 * MB, 0.90, 0.10, AccessPattern::kMixed},
      {"sjeng", "SPEC", 1.8, 0.30, 170 * MB, 0.75, 0.03, AccessPattern::kIrregular},
      {"libquantum", "SPEC", 25.0, 0.33, 32 * MB, 0.05, 0.50, AccessPattern::kStreaming},
      {"h264ref", "SPEC", 2.4, 0.38, 26 * MB, 0.85, 0.12, AccessPattern::kMixed},
      {"lbm", "SPEC", 28.0, 0.48, 400 * MB, 0.05, 0.50, AccessPattern::kStreaming},
      {"omnetpp", "SPEC", 21.0, 0.35, 160 * MB, 0.55, 0.03, AccessPattern::kIrregular},
      {"astar", "SPEC", 9.2, 0.30, 180 * MB, 0.60, 0.04, AccessPattern::kIrregular},
      {"sphinx3", "SPEC", 12.5, 0.15, 180 * MB, 0.40, 0.06, AccessPattern::kStreaming},
      {"xalancbmk", "SPEC", 10.8, 0.32, 190 * MB, 0.60, 0.03, AccessPattern::kIrregular},
      {"GemsFDTD", "SPEC", 15.8, 0.40, 380 * MB, 0.15, 0.08, AccessPattern::kStreaming},
      {"leslie3d", "SPEC", 13.1, 0.38, 120 * MB, 0.25, 0.08, AccessPattern::kStreaming},
      {"zeusmp", "SPEC", 9.8, 0.37, 250 * MB, 0.30, 0.06, AccessPattern::kStreaming},
      {"cactusADM", "SPEC", 8.4, 0.42, 190 * MB, 0.35, 0.05, AccessPattern::kStreaming},
      {"bwaves", "SPEC", 17.5, 0.30, 430 * MB, 0.15, 0.05, AccessPattern::kStreaming},
      // ---- PARSEC ----
      {"blackscholes", "PARSEC", 1.1, 0.25, 12 * MB, 0.90, 0.15, AccessPattern::kMixed},
      {"bodytrack", "PARSEC", 2.6, 0.28, 22 * MB, 0.80, 0.10, AccessPattern::kMixed},
      {"canneal", "PARSEC", 19.5, 0.22, 450 * MB, 0.35, 0.01, AccessPattern::kIrregular},
      {"dedup", "PARSEC", 8.1, 0.45, 280 * MB, 0.50, 0.04, AccessPattern::kMixed},
      {"facesim", "PARSEC", 6.5, 0.40, 150 * MB, 0.55, 0.06, AccessPattern::kMixed},
      {"ferret", "PARSEC", 5.2, 0.30, 90 * MB, 0.65, 0.05, AccessPattern::kMixed},
      {"fluidanimate", "PARSEC", 4.8, 0.42, 130 * MB, 0.55, 0.07, AccessPattern::kMixed},
      {"freqmine", "PARSEC", 3.9, 0.33, 110 * MB, 0.70, 0.05, AccessPattern::kMixed},
      {"streamcluster", "PARSEC", 16.8, 0.12, 110 * MB, 0.10, 0.30, AccessPattern::kStreaming},
      {"swaptions", "PARSEC", 0.9, 0.28, 6 * MB, 0.92, 0.20, AccessPattern::kMixed},
      {"vips", "PARSEC", 3.4, 0.40, 70 * MB, 0.60, 0.08, AccessPattern::kStreaming},
      {"x264", "PARSEC", 4.6, 0.36, 60 * MB, 0.70, 0.09, AccessPattern::kMixed},
      // ---- BioBench ----
      {"mummer", "BIO", 22.4, 0.18, 360 * MB, 0.30, 0.03, AccessPattern::kIrregular},
      {"tigr", "BIO", 18.9, 0.20, 300 * MB, 0.35, 0.03, AccessPattern::kIrregular},
      {"fasta-dna", "BIO", 11.2, 0.15, 200 * MB, 0.45, 0.05, AccessPattern::kStreaming},
      // ---- MSC commercial ----
      {"comm1", "COMM", 14.6, 0.45, 260 * MB, 0.55, 0.03, AccessPattern::kIrregular},
      {"comm2", "COMM", 12.3, 0.48, 230 * MB, 0.58, 0.03, AccessPattern::kIrregular},
      {"comm3", "COMM", 9.7, 0.50, 180 * MB, 0.62, 0.04, AccessPattern::kIrregular},
      {"comm4", "COMM", 16.1, 0.44, 310 * MB, 0.50, 0.02, AccessPattern::kIrregular},
      {"comm5", "COMM", 11.0, 0.47, 210 * MB, 0.60, 0.03, AccessPattern::kIrregular},
  };
}

}  // namespace

const std::vector<BenchmarkProfile>& benchmark_roster() {
  static const std::vector<BenchmarkProfile> roster = build_roster();
  return roster;
}

const BenchmarkProfile& find_benchmark(const std::string& name) {
  for (const auto& b : benchmark_roster()) {
    if (b.name == name) return b;
  }
  std::abort();  // unknown benchmark name is a programming error
}

TraceGenerator::TraceGenerator(const BenchmarkProfile& profile, std::uint32_t core_id,
                               std::uint64_t seed)
    : profile_(profile),
      base_addr_(static_cast<std::uint64_t>(core_id) << 40),
      rng_(seed * 0x9E3779B97F4A7C15ull + core_id + 1),
      mean_gap_(1000.0 / profile.llc_apki) {
  // The hot set models the LLC-resident reuse region. Cap it at 2 MB per
  // core (32 K lines) so eight cores' hot sets fit a 64 MB LLC — larger
  // "hot" regions behave like the streaming/scatter background anyway.
  hot_lines_ = static_cast<std::uint64_t>(static_cast<double>(profile_.footprint_lines) *
                                          profile_.hot_lines_frac);
  hot_lines_ = std::min<std::uint64_t>(std::max<std::uint64_t>(hot_lines_, 1), 32768);
}

LlcAccess TraceGenerator::next() {
  LlcAccess out;
  // Geometric gap with the profile's mean (at least 0).
  const double u = rng_.next_double();
  out.gap_instructions =
      static_cast<std::uint32_t>(-mean_gap_ * std::log(1.0 - u));
  out.is_write = rng_.next_bool(profile_.write_frac);

  const std::uint64_t footprint = profile_.footprint_lines;
  std::uint64_t line = 0;
  switch (profile_.pattern) {
    case AccessPattern::kStreaming: {
      // Mostly-sequential sweep with occasional hot-set references.
      if (rng_.next_bool(profile_.hot_frac)) {
        line = rng_.next_below(hot_lines_);
      } else {
        line = stream_pos_++ % footprint;
      }
      break;
    }
    case AccessPattern::kIrregular: {
      // Hot set plus uniform scatter (pointer chasing has little spatial
      // locality at LLC granularity).
      if (rng_.next_bool(profile_.hot_frac)) {
        line = rng_.next_below(hot_lines_);
      } else {
        line = rng_.next_below(footprint);
      }
      break;
    }
    case AccessPattern::kMixed: {
      if (rng_.next_bool(profile_.hot_frac)) {
        line = rng_.next_below(hot_lines_);
      } else if (rng_.next_bool(0.5)) {
        line = stream_pos_++ % footprint;
      } else {
        line = rng_.next_below(footprint);
      }
      break;
    }
  }
  out.addr = base_addr_ + line * 64;
  return out;
}

}  // namespace sudoku::sim
