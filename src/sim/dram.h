// DDR3 main-memory timing model (Table VI: 2 channels of DDR3-800,
// 8 GB each), in the spirit of USIMM's memory system. Models:
//   * channel/rank/bank address interleaving,
//   * open-page row buffers: row hits pay tCAS, misses pay tRCD+tCAS,
//     conflicts add tRP (precharge) and respect tRAS,
//   * tFAW: at most four ACTIVATEs per rank in any rolling window,
//   * tRRD between ACTIVATEs to the same rank,
//   * data-bus occupancy per channel (burst of 64 B),
//   * periodic refresh: the bank is unavailable for tRFC every tREFI.
// Requests are serviced per-bank in arrival order (FCFS); the cores above
// provide the out-of-order overlap.
#pragma once

#include <cstdint>
#include <vector>

namespace sudoku::sim {

struct DramTiming {
  // DDR3-800: 400 MHz clock -> 2.5 ns cycle; values in nanoseconds.
  double tCK = 2.5;
  double tCAS = 27.5;   // CL 11
  double tRCD = 27.5;
  double tRP = 27.5;
  double tRAS = 87.5;
  double tRRD = 15.0;
  double tFAW = 75.0;
  double tBurst = 10.0;  // 8-beat burst on a 64-bit bus (BL8)
  double tWR = 15.0;     // write recovery
  double tREFI = 7800.0;
  double tRFC = 160.0;
};

struct DramConfig {
  std::uint32_t channels = 2;
  std::uint32_t ranks_per_channel = 2;
  std::uint32_t banks_per_rank = 8;
  std::uint32_t row_bytes = 8192;  // row-buffer size
  DramTiming timing;
};

struct DramStats {
  std::uint64_t accesses = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;    // bank idle/precharged
  std::uint64_t row_conflicts = 0; // different row open
  std::uint64_t refreshes_applied = 0;

  double row_hit_rate() const {
    return accesses ? static_cast<double>(row_hits) / accesses : 0.0;
  }
};

class DramModel {
 public:
  explicit DramModel(const DramConfig& config);

  const DramConfig& config() const { return config_; }
  const DramStats& stats() const { return stats_; }

  // Service a 64 B read/write issued at time `now` (ns). Returns the time
  // the data transfer completes on the channel bus.
  double access(std::uint64_t addr, double now, bool is_write);

  // Address decomposition (exposed for tests).
  struct Decoded {
    std::uint32_t channel;
    std::uint32_t rank;
    std::uint32_t bank;
    std::uint64_t row;
  };
  Decoded decode(std::uint64_t addr) const;

 private:
  struct BankState {
    bool row_open = false;
    std::uint64_t open_row = 0;
    double ready_at = 0.0;        // earliest next command
    double activated_at = 0.0;    // for tRAS
    double refreshed_until = 0.0; // refresh window bookkeeping
    double next_refresh = 0.0;
  };
  struct RankState {
    std::vector<double> recent_activates;  // rolling tFAW window (size 4)
    double last_activate = -1e18;          // for tRRD
  };

  DramConfig config_;
  DramStats stats_;
  std::vector<BankState> banks_;    // channel-major
  std::vector<RankState> ranks_;
  std::vector<double> bus_free_;    // per channel

  std::uint32_t bank_index(const Decoded& d) const {
    return (d.channel * config_.ranks_per_channel + d.rank) * config_.banks_per_rank +
           d.bank;
  }
  std::uint32_t rank_index(const Decoded& d) const {
    return d.channel * config_.ranks_per_channel + d.rank;
  }

  // Apply any refreshes due before `now` on this bank.
  void apply_refresh(BankState& bank, double now);
  // Earliest time an ACTIVATE may issue on this rank at/after `t`.
  double activate_allowed_at(RankState& rank, double t) const;
  void record_activate(RankState& rank, double t);
};

}  // namespace sudoku::sim
