#include "sim/trace_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sudoku::sim {

TraceFileReader::TraceFileReader(const std::string& path) : path_(path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::uint32_t gap;
    std::string op;
    std::string addr_hex;
    if (!(ss >> gap)) continue;  // blank/comment-only line
    if (!(ss >> op >> addr_hex) || (op != "R" && op != "W")) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": expected '<gap> R|W <hexaddr>'");
    }
    LlcAccess acc;
    acc.gap_instructions = gap;
    acc.is_write = (op == "W");
    acc.addr = std::stoull(addr_hex, nullptr, 16);
    records_.push_back(acc);
  }
  if (records_.empty()) {
    throw std::runtime_error("trace file has no records: " + path);
  }
}

LlcAccess TraceFileReader::next() {
  const LlcAccess acc = records_[pos_];
  pos_ = (pos_ + 1) % records_.size();
  return acc;
}

bool write_trace(const std::string& path, AccessSource& source, std::uint64_t count) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# LLC access trace: <gap_instructions> <R|W> <hex_address>\n";
  out << "# source: " << source.name() << "\n";
  for (std::uint64_t i = 0; i < count; ++i) {
    const LlcAccess acc = source.next();
    out << acc.gap_instructions << ' ' << (acc.is_write ? 'W' : 'R') << ' ' << std::hex
        << acc.addr << std::dec << '\n';
  }
  return static_cast<bool>(out);
}

std::unique_ptr<AccessSource> make_source(const std::string& spec, std::uint32_t core_id,
                                          std::uint64_t seed) {
  constexpr const char kFilePrefix[] = "file:";
  if (spec.rfind(kFilePrefix, 0) == 0) {
    return std::make_unique<TraceFileReader>(spec.substr(sizeof(kFilePrefix) - 1));
  }
  return std::make_unique<GeneratorSource>(find_benchmark(spec), core_id, seed);
}

}  // namespace sudoku::sim
