#include "sim/trace_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sudoku::sim {

TraceFileReader::TraceFileReader(const std::string& path) : path_(path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::uint32_t gap;
    std::string op;
    std::string addr_hex;
    if (!(ss >> gap)) continue;  // blank/comment-only line
    if (!(ss >> op >> addr_hex) || (op != "R" && op != "W")) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": expected '<gap> R|W <hexaddr>'");
    }
    LlcAccess acc;
    acc.gap_instructions = gap;
    acc.is_write = (op == "W");
    acc.addr = std::stoull(addr_hex, nullptr, 16);
    records_.push_back(acc);
  }
  if (records_.empty()) {
    throw std::runtime_error("trace file has no records: " + path);
  }
}

LlcAccess TraceFileReader::next() {
  const LlcAccess acc = records_[pos_];
  pos_ = (pos_ + 1) % records_.size();
  return acc;
}

namespace {

// Full-string parse helpers for the strict Ramulator2 grammar: partial
// consumption ("0x12junk", "12abc") is an error, not a prefix match.
bool parse_hex_addr(const std::string& tok, std::uint64_t& out) {
  if (tok.size() < 3 || tok[0] != '0' || (tok[1] != 'x' && tok[1] != 'X')) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < tok.size(); ++i) {
    const char c = tok[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    if (v >> 60) return false;  // would overflow the shift
    v = (v << 4) | digit;
  }
  out = v;
  return true;
}

bool parse_dec_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

// R/W opcode table shared by Ramulator2 and DRAMsim trace dialects.
bool parse_opcode(const std::string& tok, bool& is_write) {
  if (tok == "R" || tok == "READ" || tok == "LD") {
    is_write = false;
    return true;
  }
  if (tok == "W" || tok == "WRITE" || tok == "ST") {
    is_write = true;
    return true;
  }
  return false;
}

}  // namespace

Ramulator2TraceReader::Ramulator2TraceReader(const std::string& path)
    : path_(path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  const auto fail = [&path](std::size_t lineno, const std::string& what) {
    throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " + what);
  };
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t prev_cycle = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ss >> tok) tokens.push_back(tok);
    if (tokens.empty()) continue;  // blank or comment-only line
    if (tokens.size() == 1) {
      fail(lineno, "truncated record '" + tokens[0] +
                       "' (expected '<0xADDR> <R|W|READ|WRITE|LD|ST> "
                       "[<cycle>]')");
    }
    if (tokens.size() > 3) {
      fail(lineno, "trailing junk after '" + tokens[2] + "'");
    }
    LlcAccess acc;
    if (!parse_hex_addr(tokens[0], acc.addr)) {
      fail(lineno, "bad address '" + tokens[0] +
                       "' (need 0x-prefixed hex fitting 64 bits)");
    }
    if (!parse_opcode(tokens[1], acc.is_write)) {
      fail(lineno, "bad opcode '" + tokens[1] +
                       "' (expected R, W, READ, WRITE, LD or ST)");
    }
    const bool row_has_cycle = tokens.size() == 3;
    if (records_.empty()) {
      has_cycles_ = row_has_cycle;
    } else if (row_has_cycle != has_cycles_) {
      fail(lineno, has_cycles_ ? "missing cycle column (earlier records have one)"
                               : "unexpected cycle column (earlier records have none)");
    }
    if (row_has_cycle) {
      std::uint64_t cycle = 0;
      if (!parse_dec_u64(tokens[2], cycle)) {
        fail(lineno, "bad cycle '" + tokens[2] + "' (need a decimal uint64)");
      }
      if (cycle < prev_cycle) {
        fail(lineno, "decreasing cycle " + tokens[2] + " (previous was " +
                         std::to_string(prev_cycle) + ")");
      }
      const std::uint64_t gap = cycle - (records_.empty() ? cycle : prev_cycle);
      acc.gap_instructions = gap > UINT32_MAX
                                 ? UINT32_MAX
                                 : static_cast<std::uint32_t>(gap);
      prev_cycle = cycle;
    } else {
      acc.gap_instructions = 0;  // back-to-back, memory-bound stream
    }
    records_.push_back(acc);
  }
  if (records_.empty()) {
    throw std::runtime_error("trace file has no records: " + path);
  }
}

LlcAccess Ramulator2TraceReader::next() {
  const LlcAccess acc = records_[pos_];
  pos_ = (pos_ + 1) % records_.size();
  return acc;
}

bool write_trace(const std::string& path, AccessSource& source, std::uint64_t count) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# LLC access trace: <gap_instructions> <R|W> <hex_address>\n";
  out << "# source: " << source.name() << "\n";
  for (std::uint64_t i = 0; i < count; ++i) {
    const LlcAccess acc = source.next();
    out << acc.gap_instructions << ' ' << (acc.is_write ? 'W' : 'R') << ' ' << std::hex
        << acc.addr << std::dec << '\n';
  }
  return static_cast<bool>(out);
}

std::unique_ptr<AccessSource> make_source(const std::string& spec, std::uint32_t core_id,
                                          std::uint64_t seed) {
  constexpr const char kFilePrefix[] = "file:";
  constexpr const char kRamPrefix[] = "ram:";
  if (spec.rfind(kFilePrefix, 0) == 0) {
    return std::make_unique<TraceFileReader>(spec.substr(sizeof(kFilePrefix) - 1));
  }
  if (spec.rfind(kRamPrefix, 0) == 0) {
    return std::make_unique<Ramulator2TraceReader>(spec.substr(sizeof(kRamPrefix) - 1));
  }
  return std::make_unique<GeneratorSource>(find_benchmark(spec), core_id, seed);
}

}  // namespace sudoku::sim
