// Synthetic workload generators standing in for the paper's Pin/SimPoint
// traces (§VII-A: SPEC2006, PARSEC, BioBench, MSC commercial traces, plus
// four MIX combinations). We do not have the proprietary trace files; each
// named benchmark is replaced by a generator parameterised with published
// characterisation-level behaviour (LLC accesses per kilo-instruction,
// write fraction, footprint, hot-set locality, streaming vs. irregular
// access). Figures 8 and 9 report *normalized* execution time/EDP, which is
// driven by exactly these aggregate properties — see DESIGN.md §4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace sudoku::sim {

enum class AccessPattern {
  kStreaming,      // sequential sweeps (lbm, libquantum, streamcluster)
  kIrregular,      // pointer-chasing / graph (mcf, omnetpp, canneal)
  kMixed,          // hot set + background sweep (most integer codes)
};

struct BenchmarkProfile {
  std::string name;
  std::string suite;             // SPEC / PARSEC / BIO / COMM / MIX
  double llc_apki;               // LLC accesses per 1000 instructions
  double write_frac;             // fraction of LLC accesses that are writes
  std::uint64_t footprint_lines; // working set in 64 B lines
  double hot_frac;               // fraction of accesses hitting the hot set
  double hot_lines_frac;         // hot set size as fraction of footprint
  AccessPattern pattern;
};

// The full roster used by the Figure 8 / Figure 9 benches.
const std::vector<BenchmarkProfile>& benchmark_roster();

// Look up by name (aborts on unknown names).
const BenchmarkProfile& find_benchmark(const std::string& name);

// One LLC-level access emitted by a trace generator.
struct LlcAccess {
  std::uint32_t gap_instructions;  // non-memory instructions preceding it
  std::uint64_t addr;              // byte address
  bool is_write;
};

// Deterministic per-core generator for a benchmark profile. Each core gets
// a disjoint address-space slice so an 8-core MIX behaves like USIMM's
// multi-programmed setup.
class TraceGenerator {
 public:
  TraceGenerator(const BenchmarkProfile& profile, std::uint32_t core_id,
                 std::uint64_t seed);

  const BenchmarkProfile& profile() const { return profile_; }

  LlcAccess next();

 private:
  BenchmarkProfile profile_;
  std::uint64_t base_addr_;
  Rng rng_;
  std::uint64_t stream_pos_ = 0;
  double mean_gap_;
  std::uint64_t hot_lines_ = 1;  // LLC-resident reuse region (capped)
};

}  // namespace sudoku::sim
