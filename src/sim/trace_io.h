// Trace file I/O, so captured LLC traces can replace the synthetic
// generators. Two on-disk formats are supported behind one AccessSource
// interface:
//
//  * USIMM-like (TraceFileReader, spec "file:<path>"):
//        <gap_instructions> <R|W> <hex_address>
//    one access per line, '#' comments allowed.
//
//  * Ramulator2/DRAMsim-style memory request traces
//    (Ramulator2TraceReader, spec "ram:<path>"):
//        <0xHEXADDR> <R|W|READ|WRITE|LD|ST> [<cycle>]
//    one request per line, '#' comments and blank lines allowed. The
//    address must carry a 0x prefix; the optional third column is the
//    issue cycle and must be non-decreasing — its per-record delta becomes
//    LlcAccess::gap_instructions (capped at 2^32-1). A trace either has a
//    cycle column on every record or on none (mixed rows are rejected);
//    without one, requests are back-to-back (gap 0), the memory-bound
//    streaming shape of the Ramulator2_ECC AI workloads. Parsing is
//    strict: truncated lines, non-hex or unprefixed addresses, unknown
//    opcodes, trailing junk, overflow, decreasing cycles, and traces with
//    no records all raise std::runtime_error with a path:line diagnostic.
//
// Both readers loop the file on exhaustion so short traces can drive long
// simulations (as USIMM does): after the last record the reader wraps to
// the first and replays the same gaps/addresses cyclically. The writer
// serialises any AccessSource in the USIMM-like format, which also lets
// the synthetic generators be materialised into files for inspection or
// reuse.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/workload.h"

namespace sudoku::sim {

// Polymorphic access stream: implemented by TraceGenerator (synthetic) and
// TraceFileReader (recorded).
class AccessSource {
 public:
  virtual ~AccessSource() = default;
  virtual LlcAccess next() = 0;
  virtual std::string name() const = 0;
};

class GeneratorSource final : public AccessSource {
 public:
  GeneratorSource(const BenchmarkProfile& profile, std::uint32_t core_id,
                  std::uint64_t seed)
      : gen_(profile, core_id, seed) {}
  LlcAccess next() override { return gen_.next(); }
  std::string name() const override { return gen_.profile().name; }

 private:
  TraceGenerator gen_;
};

class TraceFileReader final : public AccessSource {
 public:
  // Loads the whole trace into memory (traces at LLC granularity are small)
  // and replays it cyclically. Throws std::runtime_error on parse errors.
  explicit TraceFileReader(const std::string& path);

  LlcAccess next() override;
  std::string name() const override { return path_; }
  std::size_t size() const { return records_.size(); }

 private:
  std::string path_;
  std::vector<LlcAccess> records_;
  std::size_t pos_ = 0;
};

// Ramulator2/DRAMsim-style request-trace reader (format documented at the
// top of this header). Loads the whole trace into memory and replays it
// cyclically; throws std::runtime_error on any malformed input.
class Ramulator2TraceReader final : public AccessSource {
 public:
  explicit Ramulator2TraceReader(const std::string& path);

  LlcAccess next() override;
  std::string name() const override { return path_; }
  std::size_t size() const { return records_.size(); }
  bool has_cycles() const { return has_cycles_; }

 private:
  std::string path_;
  std::vector<LlcAccess> records_;
  std::size_t pos_ = 0;
  bool has_cycles_ = false;
};

// Write `count` accesses from a source to `path`. Returns false on I/O
// failure.
bool write_trace(const std::string& path, AccessSource& source, std::uint64_t count);

// Resolve a benchmark spec to a source: "file:<path>" loads a USIMM-like
// trace file, "ram:<path>" a Ramulator2/DRAMsim-style request trace,
// anything else looks up the synthetic roster by name.
std::unique_ptr<AccessSource> make_source(const std::string& spec, std::uint32_t core_id,
                                          std::uint64_t seed);

}  // namespace sudoku::sim
