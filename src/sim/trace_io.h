// Trace file I/O in a USIMM-like text format, so captured LLC traces can
// replace the synthetic generators:
//
//   <gap_instructions> <R|W> <hex_address>
//
// one access per line, '#' comments allowed. The reader loops the file so
// short traces can drive long simulations (as USIMM does on trace
// exhaustion); the writer serialises any AccessSource, which also lets the
// synthetic generators be materialised into files for inspection or reuse.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/workload.h"

namespace sudoku::sim {

// Polymorphic access stream: implemented by TraceGenerator (synthetic) and
// TraceFileReader (recorded).
class AccessSource {
 public:
  virtual ~AccessSource() = default;
  virtual LlcAccess next() = 0;
  virtual std::string name() const = 0;
};

class GeneratorSource final : public AccessSource {
 public:
  GeneratorSource(const BenchmarkProfile& profile, std::uint32_t core_id,
                  std::uint64_t seed)
      : gen_(profile, core_id, seed) {}
  LlcAccess next() override { return gen_.next(); }
  std::string name() const override { return gen_.profile().name; }

 private:
  TraceGenerator gen_;
};

class TraceFileReader final : public AccessSource {
 public:
  // Loads the whole trace into memory (traces at LLC granularity are small)
  // and replays it cyclically. Throws std::runtime_error on parse errors.
  explicit TraceFileReader(const std::string& path);

  LlcAccess next() override;
  std::string name() const override { return path_; }
  std::size_t size() const { return records_.size(); }

 private:
  std::string path_;
  std::vector<LlcAccess> records_;
  std::size_t pos_ = 0;
};

// Write `count` accesses from a source to `path`. Returns false on I/O
// failure.
bool write_trace(const std::string& path, AccessSource& source, std::uint64_t count);

// Resolve a benchmark spec to a source: "file:<path>" loads a trace file,
// anything else looks up the synthetic roster by name.
std::unique_ptr<AccessSource> make_source(const std::string& spec, std::uint32_t core_id,
                                          std::uint64_t seed);

}  // namespace sudoku::sim
