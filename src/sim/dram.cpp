#include "sim/dram.h"

#include <algorithm>

namespace sudoku::sim {

DramModel::DramModel(const DramConfig& config)
    : config_(config),
      banks_(config.channels * config.ranks_per_channel * config.banks_per_rank),
      ranks_(config.channels * config.ranks_per_channel),
      bus_free_(config.channels, 0.0) {
  // Stagger the first refresh across banks so they don't align.
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    banks_[i].next_refresh =
        config_.timing.tREFI * (static_cast<double>(i % 8) + 1.0) / 8.0;
  }
}

DramModel::Decoded DramModel::decode(std::uint64_t addr) const {
  // Block-interleaved: consecutive 64 B blocks round-robin across channels,
  // then banks — maximises parallelism for streams (the common layout).
  const std::uint64_t block = addr / 64;
  Decoded d;
  d.channel = static_cast<std::uint32_t>(block % config_.channels);
  std::uint64_t rest = block / config_.channels;
  d.bank = static_cast<std::uint32_t>(rest % config_.banks_per_rank);
  rest /= config_.banks_per_rank;
  d.rank = static_cast<std::uint32_t>(rest % config_.ranks_per_channel);
  rest /= config_.ranks_per_channel;
  d.row = rest / (config_.row_bytes / 64);
  return d;
}

void DramModel::apply_refresh(BankState& bank, double now) {
  while (bank.next_refresh <= now) {
    // The bank is blocked for tRFC starting at the scheduled refresh (or
    // when it becomes free, whichever is later), and loses its open row.
    const double start = std::max(bank.next_refresh, bank.ready_at);
    bank.ready_at = start + config_.timing.tRFC;
    bank.row_open = false;
    bank.next_refresh += config_.timing.tREFI;
    ++stats_.refreshes_applied;
  }
}

double DramModel::activate_allowed_at(RankState& rank, double t) const {
  double allowed = std::max(t, rank.last_activate + config_.timing.tRRD);
  if (rank.recent_activates.size() >= 4) {
    // tFAW: the fifth ACTIVATE waits for the window opened by the
    // fourth-most-recent one to close.
    const double window_open =
        rank.recent_activates[rank.recent_activates.size() - 4];
    allowed = std::max(allowed, window_open + config_.timing.tFAW);
  }
  return allowed;
}

void DramModel::record_activate(RankState& rank, double t) {
  rank.last_activate = t;
  rank.recent_activates.push_back(t);
  if (rank.recent_activates.size() > 8) {
    rank.recent_activates.erase(rank.recent_activates.begin(),
                                rank.recent_activates.end() - 4);
  }
}

double DramModel::access(std::uint64_t addr, double now, bool is_write) {
  const Decoded d = decode(addr);
  BankState& bank = banks_[bank_index(d)];
  RankState& rank = ranks_[rank_index(d)];
  const DramTiming& T = config_.timing;
  ++stats_.accesses;

  apply_refresh(bank, now);

  double t = std::max(now, bank.ready_at);
  double data_start;
  if (bank.row_open && bank.open_row == d.row) {
    // Row hit: column access only.
    ++stats_.row_hits;
    data_start = t + T.tCAS;
  } else {
    if (bank.row_open) {
      // Conflict: precharge first, honoring tRAS since the activate.
      ++stats_.row_conflicts;
      const double pre_at = std::max(t, bank.activated_at + T.tRAS);
      t = pre_at + T.tRP;
    } else {
      ++stats_.row_misses;
    }
    const double act_at = activate_allowed_at(rank, t);
    record_activate(rank, act_at);
    bank.activated_at = act_at;
    bank.row_open = true;
    bank.open_row = d.row;
    data_start = act_at + T.tRCD + T.tCAS;
  }

  // Channel data bus: the burst must find a free slot at/after data_start.
  double& bus = bus_free_[d.channel];
  const double burst_start = std::max(data_start, bus);
  bus = burst_start + T.tBurst;
  const double done = burst_start + T.tBurst;

  // Bank becomes command-ready after the access (writes add recovery).
  bank.ready_at = done + (is_write ? T.tWR : 0.0);
  return done;
}

}  // namespace sudoku::sim
