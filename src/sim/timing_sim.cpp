#include "sim/timing_sim.h"

#include <algorithm>
#include <queue>

#include "obs/macros.h"
#include "sim/trace_io.h"

namespace sudoku::sim {

namespace {

// Shared-resource availability tracking: per-bank next-free times.
struct BankedResource {
  std::vector<double> free_at;
  explicit BankedResource(std::uint32_t banks) : free_at(banks, 0.0) {}

  // Occupy bank `b` for `service_ns` starting no earlier than `t`;
  // returns the service start time.
  double occupy(std::uint32_t b, double t, double service_ns) {
    const double start = std::max(t, free_at[b]);
    free_at[b] = start + service_ns;
    return start;
  }
};

struct OutstandingMiss {
  double completes_at;
  std::uint64_t instr_at_issue;  // retired-instruction count when issued
  bool operator>(const OutstandingMiss& o) const { return completes_at > o.completes_at; }
};

// Per-core simulation state. Cores advance one LLC access at a time,
// globally interleaved in time order so that shared-resource contention
// (LLC banks, DRAM banks/buses, PLT ports) is modelled faithfully.
struct CoreState {
  std::unique_ptr<AccessSource> source;
  std::string name;
  double now = 0.0;            // core-local time (ns)
  std::uint64_t retired = 0;   // instructions
  std::uint64_t accesses = 0;
  bool done = false;
  // Region-ECC streaming buffer: codewords this core holds fetched and
  // decoded, most-recent first (LRU on overflow). Accesses inside an open
  // region are free — the decode-hiding that makes streaming workloads
  // tolerate large codewords.
  std::vector<std::uint64_t> open_regions;
  std::priority_queue<OutstandingMiss, std::vector<OutstandingMiss>,
                      std::greater<OutstandingMiss>>
      outstanding;
};

}  // namespace

TimingSimulator::TimingSimulator(const SimConfig& config) : config_(config) {}

SimResult TimingSimulator::run(const std::vector<std::string>& benchmarks) {
  const SimConfig& cfg = config_;
  const double cycle_ns = 1.0 / cfg.core_ghz;

  cache::CacheModel llc(cfg.llc);
  DramModel dram(cfg.dram);
  BankedResource llc_banks(cfg.llc.banks);
  BankedResource plt_banks(cfg.llc.banks);  // §VII-I: same bank count

  // SuDoku background traffic (scrub sweep + rare repairs) runs at low
  // priority and defers to demand accesses; a demand request at worst
  // waits out the residual of one in-flight scrub read. Expected extra
  // delay per access = duty × service/2 (preemptive-resume residual).
  double scrub_residual_ns = 0.0;
  if (cfg.sudoku.enabled && cfg.sudoku.scrub_interferes) {
    const double interval_ns = cfg.sudoku.scrub_interval_ms * 1e6;
    const double lines_per_bank =
        static_cast<double>(cfg.llc.num_lines()) / cfg.llc.banks;
    const double scrub_ns = lines_per_bank * cfg.llc_read_ns;
    const double repair_ns = cfg.sudoku.raid_events_per_interval *
                             cfg.sudoku.raid_repair_us * 1e3 / cfg.llc.banks;
    const double duty = (scrub_ns + repair_ns) / interval_ns;
    scrub_residual_ns = duty * cfg.llc_read_ns / 2.0;
  }

  SimResult result;
  result.cores.resize(cfg.num_cores);

  // Warmup: populate the LLC untimed so measurement starts from a steady
  // state (fresh sources with the same seed replay identically below).
  // Metrics stay detached so the warmup traffic is invisible to both the
  // CacheStats counters and the cache.* series.
  llc.attach_metrics(nullptr);
  for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
    const auto source = make_source(benchmarks[core % benchmarks.size()], core, cfg.seed);
    for (std::uint64_t i = 0; i < cfg.warmup_accesses_per_core; ++i) {
      const LlcAccess acc = source->next();
      llc.access(acc.addr, acc.is_write);
    }
  }
  llc.reset_stats();
#if SUDOKU_OBS_ENABLED
  llc.attach_metrics(&result.metrics);  // live cache.* counters, post-warmup
#endif

  auto dram_access = [&](std::uint64_t addr, double t, bool is_write) {
    ++result.dram_accesses;
    return dram.access(addr, t, is_write);
  };

  std::vector<CoreState> cores(cfg.num_cores);
  for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
    cores[c].name = benchmarks[c % benchmarks.size()];
    cores[c].source = make_source(cores[c].name, c, cfg.seed);
  }

  // Large-codeword region-ECC demand-path charge (RegionEccOverheads).
  // Returns the extra critical-path nanoseconds for a load (the decode on
  // a region open); bandwidth costs are charged as bank occupancy so
  // contention emerges through the shared BankedResource, and the parity
  // RMW rides on writes. The demand access's own line service is charged
  // by the caller as usual.
  const double region_cw_bits =
      cfg.region.region_bytes * 8.0 + cfg.region.parity_bits;
  auto region_charge = [&](CoreState& core, std::uint64_t addr,
                           std::uint32_t bank, bool is_write) {
    if (!cfg.region.enabled) return 0.0;
    const std::uint64_t region_id = addr / cfg.region.region_bytes;
    result.region_demand_bits += 512;
    double critical_ns = 0.0;
    auto& open = core.open_regions;
    const auto it = std::find(open.begin(), open.end(), region_id);
    if (cfg.region.streaming_buffer && it != open.end()) {
      ++result.region_buffer_hits;
      std::rotate(open.begin(), it, it + 1);  // move to MRU position
    } else {
      // Region open: fetch the rest of the codeword (data + parity) and
      // decode it. The extra fetch occupies the bank — that is the
      // redundant-read bandwidth — while the decode sits on the critical
      // path of the triggering access.
      ++result.region_opens;
      const double extra_lines = cfg.region.codeword_lines() - 1.0;
      const double fetch_ns = extra_lines * cfg.llc_read_ns;
      llc_banks.occupy(bank, core.now, fetch_ns);
      result.llc_busy_ns += fetch_ns;
      result.region_redundant_bits +=
          static_cast<std::uint64_t>(region_cw_bits) - 512;
      critical_ns = cfg.region.decode_ns;
      ++result.codec_events;  // the region decode
      if (cfg.region.streaming_buffer && cfg.region.buffer_entries > 0) {
        open.insert(open.begin(), region_id);
        if (open.size() > cfg.region.buffer_entries) open.pop_back();
      }
    }
    if (is_write) {
      // RMW: re-encode the codeword and write the parity back alongside
      // the demand line write.
      const double parity_ns =
          cfg.region.parity_bits / 512.0 * cfg.llc_write_ns;
      llc_banks.occupy(bank, core.now, parity_ns);
      result.llc_busy_ns += parity_ns;
      result.region_rmw_bits += cfg.region.parity_bits;
      ++result.codec_events;  // the re-encode
    }
    return critical_ns;
  };

  // Process one LLC access on the given core; advances its local clock.
  auto step = [&](CoreState& core) {
    const LlcAccess acc = core.source->next();
    ++core.accesses;

    // Compute phase: gap instructions retire at `width` per cycle,
    // overlapping with outstanding misses.
    core.now += static_cast<double>(acc.gap_instructions) / cfg.width * cycle_ns;
    core.retired += acc.gap_instructions + 1;

    // Retire completed misses.
    auto& outstanding = core.outstanding;
    while (!outstanding.empty() && outstanding.top().completes_at <= core.now) {
      outstanding.pop();
    }
    // MLP cap: stall until a slot frees.
    while (outstanding.size() >= cfg.max_outstanding_misses) {
      core.now = std::max(core.now, outstanding.top().completes_at);
      outstanding.pop();
    }
    // ROB run-ahead limit: the core cannot retire more than rob_size
    // instructions past the oldest outstanding miss.
    while (!outstanding.empty() &&
           core.retired - outstanding.top().instr_at_issue > cfg.rob_size) {
      core.now = std::max(core.now, outstanding.top().completes_at);
      outstanding.pop();
    }

    const auto res = llc.access(acc.addr, acc.is_write);
    const double service =
        (acc.is_write ? cfg.llc_write_ns : cfg.llc_read_ns) + scrub_residual_ns;
    // Miss fills write the fetched line into its codeword, so they pay the
    // RMW parity charge like a store; the DRAM latency hides the decode.
    const double region_ns =
        region_charge(core, acc.addr, res.bank, acc.is_write || !res.hit);

    if (res.hit) {
      result.llc_busy_ns += service;
      if (acc.is_write) {
        // Stores complete through the store buffer: occupy the bank, no
        // core stall (the region RMW charge above is occupancy-only too).
        llc_banks.occupy(res.bank, core.now, service);
        ++result.llc_writes;
      } else {
        const double start = llc_banks.occupy(res.bank, core.now, service);
        double done = start + service + region_ns;  // region decode, if any
        if (cfg.sudoku.enabled) {
          done += cfg.sudoku.crc_check_cycles * cycle_ns;  // syndrome check
          ++result.codec_events;
        }
        // A fraction of loads feed an immediately-dependent instruction
        // and stall the core; the rest drain through the run-ahead window
        // like short misses.
        if (cfg.blocking_load_fraction > 0.0 &&
            static_cast<double>(core.accesses % 100) <
                cfg.blocking_load_fraction * 100.0) {
          core.now = std::max(core.now, done);
        } else {
          outstanding.push({done, core.retired});
        }
        ++result.llc_reads;
      }
    } else {
      // Miss: DRAM fetch, then fill (LLC write).
      const double mem_done = dram_access(acc.addr, core.now, false);
      llc_banks.occupy(res.bank, mem_done, cfg.llc_write_ns + scrub_residual_ns);
      result.llc_busy_ns += cfg.llc_write_ns + scrub_residual_ns;
      ++result.llc_writes;  // the fill
      if (cfg.sudoku.enabled) ++result.codec_events;  // encode on fill
      if (res.writeback) {
        // Dirty victim: read it out and send to DRAM (fire-and-forget).
        llc_banks.occupy(res.bank, core.now, cfg.llc_read_ns + scrub_residual_ns);
        result.llc_busy_ns += cfg.llc_read_ns + scrub_residual_ns;
        ++result.llc_reads;
        dram_access(res.victim_addr, core.now, true);
      }
      outstanding.push({mem_done, core.retired});
    }

    // PLT mirror write on every write to the cache (store or fill).
    if (cfg.sudoku.enabled && cfg.sudoku.plt_writes && (acc.is_write || !res.hit)) {
      for (std::uint32_t p = 0; p < cfg.sudoku.num_plts; ++p) {
        plt_banks.occupy(res.bank, core.now, cfg.sudoku.plt_write_ns);
        result.plt_busy_ns += cfg.sudoku.plt_write_ns;
      }
      result.plt_writes += cfg.sudoku.num_plts;
    }

    if (core.retired >= cfg.instructions_per_core) {
      while (!outstanding.empty()) {
        core.now = std::max(core.now, outstanding.top().completes_at);
        outstanding.pop();
      }
      core.done = true;
    }
  };

  // Global loop: always advance the core that is furthest behind in time,
  // so shared-state updates happen in (approximate) chronological order.
  for (;;) {
    CoreState* next = nullptr;
    for (auto& core : cores) {
      if (core.done) continue;
      if (next == nullptr || core.now < next->now) next = &core;
    }
    if (next == nullptr) break;
    step(*next);
  }

  for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
    auto& cr = result.cores[c];
    cr.benchmark = cores[c].name;
    cr.instructions = cores[c].retired;
    cr.llc_accesses = cores[c].accesses;
    cr.finish_time_ns = cores[c].now;
    cr.ipc = static_cast<double>(cores[c].retired) / (cores[c].now / cycle_ns);
    result.total_time_ns = std::max(result.total_time_ns, cores[c].now);
  }

  // Scrub traffic volume for the energy model: every line read once per
  // interval over the run.
  if (cfg.sudoku.enabled) {
    const double intervals = result.total_time_ns / (cfg.sudoku.scrub_interval_ms * 1e6);
    result.scrub_reads =
        static_cast<std::uint64_t>(intervals * static_cast<double>(cfg.llc.num_lines()));
    result.codec_events += result.scrub_reads;
  }

  result.llc = llc.stats();
  result.dram = dram.stats();

#if SUDOKU_OBS_ENABLED
  // End-of-run sim.* series: totals the energy model consumes, the §VII-I
  // utilization gauges, and the per-core IPC spread.
  auto& m = result.metrics;
  m.counter("sim.llc.reads")->inc(result.llc_reads);
  m.counter("sim.llc.writes")->inc(result.llc_writes);
  m.counter("sim.plt.writes")->inc(result.plt_writes);
  m.counter("sim.dram.accesses")->inc(result.dram_accesses);
  m.counter("sim.scrub.reads")->inc(result.scrub_reads);
  m.counter("sim.codec.events")->inc(result.codec_events);
  m.gauge("sim.total_time_ns")->set(result.total_time_ns);
  m.gauge("sim.llc.bank_utilization")->set(result.llc_bank_utilization(cfg.llc.banks));
  m.gauge("sim.plt.bank_utilization")->set(result.plt_bank_utilization(cfg.llc.banks));
  if (cfg.region.enabled) {
    // Region-ECC series appear only when the path is active, so the
    // paper-reproduction artifacts keep their exact metric sets.
    m.counter("sim.region.opens")->inc(result.region_opens);
    m.counter("sim.region.buffer_hits")->inc(result.region_buffer_hits);
    m.counter("sim.region.demand_bits")->inc(result.region_demand_bits);
    m.counter("sim.region.redundant_bits")->inc(result.region_redundant_bits);
    m.counter("sim.region.rmw_bits")->inc(result.region_rmw_bits);
    m.gauge("sim.region.bandwidth_amplification")
        ->set(result.region_bandwidth_amplification());
  }
  obs::Histogram* ipc_hist =
      m.histogram("sim.core.ipc", {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0});
  for (const auto& cr : result.cores) ipc_hist->observe(cr.ipc);
#endif
  return result;
}

}  // namespace sudoku::sim
