// USIMM-style multi-core timing model (paper §VII-A, Table VI): 8 OoO
// cores (ROB 160, width 4, 3.2 GHz), a shared banked STTRAM LLC (read 9 ns,
// write 18 ns), and a 2-channel DDR3-800 main memory. Cores issue LLC-level
// accesses from trace generators; out-of-order overlap is modelled with a
// bounded number of outstanding misses plus a ROB-occupancy run-ahead
// limit (interval-simulation style, cf. USIMM's simplified core model).
//
// SuDoku's overheads enter as (paper §VII-B/C/D/I):
//   * +1 core cycle on every LLC read hit (CRC-31 syndrome check),
//   * a PLT write per LLC write (banked SRAM beside the cache; consumes
//     PLT bandwidth but is faster than the STTRAM it shadows),
//   * scrub traffic: every line read (and rewritten on correction) each
//     scrub interval, modelled as fractional LLC-bank occupancy,
//   * rare correction events (RAID-4 group reads), modelled as scheduled
//     bank reservations: ~4 events of ~16 µs per 20 ms interval.
// The "Ideal" configuration disables all four — the paper's error-free
// baseline for Figures 8 and 9.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_model.h"
#include "obs/metrics.h"
#include "sim/dram.h"
#include "sim/workload.h"

namespace sudoku::sim {

struct SudokuOverheads {
  bool enabled = true;
  double crc_check_cycles = 1.0;       // added to every LLC read hit
  bool plt_writes = true;              // mirror every write into the PLT(s)
  std::uint32_t num_plts = 2;          // SuDoku-Z: two parity tables
  double plt_write_ns = 1.0;           // SRAM write service time
  double scrub_interval_ms = 20.0;
  double raid_events_per_interval = 4.0;  // multi-bit lines per 20 ms
  double raid_repair_us = 16.0;           // 512-line group read (§VII-B)
  // When true, scrub/repair reads contend with demand accesses (residual
  // delay of a low-priority read in progress). Default false: the sweep is
  // scheduled into idle bank slack (§VII-E keeps scrub to a few percent of
  // bandwidth, far below the idle headroom at LLC utilisations seen here);
  // energy is charged either way.
  bool scrub_interferes = false;
};

// Large-codeword region-ECC data path (ROADMAP item 5, docs/frontier.md):
// the LLC's contents are protected by one systematic BCH codeword per
// `region_bytes` of data (codes/ecc_design.h picks the field/parity). The
// timing cost model charges what the Ramulator2_ECC study measures:
//
//  * redundant reads — serving a 64 B demand read requires fetching the
//    whole codeword (data + parity) from the arrays before it can be
//    decoded, so (codeword_lines - 1) extra line-reads occupy the bank;
//  * decode latency — `decode_ns` on the critical path of every region
//    open;
//  * decode-latency hiding under streaming access — each core holds one
//    open (already fetched + decoded) region; accesses that stay inside
//    it are free, which is exactly why coarse-grained sequential AI/HPC
//    streams tolerate large codewords while irregular access patterns pay
//    the full amplification per touch;
//  * RMW write amplification — a write must re-encode the codeword:
//    region fetch (unless open) plus a parity write-back on top of the
//    demand line write.
//
// Only demand traffic (hits and miss fills) is charged — the scrub/repair
// machinery keeps its own model in SudokuOverheads. Disabled by default,
// so the paper-reproduction benches are unaffected.
struct RegionEccOverheads {
  bool enabled = false;
  std::uint32_t region_bytes = 1024;   // codeword data payload
  std::uint32_t parity_bits = 84;      // generator degree of the code
  double decode_ns = 2.0;              // region decode on the open path
  bool streaming_buffer = true;        // per-core open-region reuse
  // Decoded codewords each core can hold open at once (LRU). A few entries
  // let the buffer track the handful of concurrent streams a real stream
  // buffer covers (e.g. two input tensors + an output tile).
  std::uint32_t buffer_entries = 4;

  std::uint32_t data_lines() const { return region_bytes / 64; }
  // Stored bits behind one codeword, in 512-bit line-read equivalents.
  double codeword_lines() const {
    return (static_cast<double>(region_bytes) * 8.0 + parity_bits) / 512.0;
  }
};

struct SimConfig {
  std::uint32_t num_cores = 8;
  double core_ghz = 3.2;
  std::uint32_t rob_size = 160;
  std::uint32_t width = 4;
  std::uint32_t max_outstanding_misses = 8;  // per-core MLP cap
  // Fraction of loads whose value is consumed immediately (load-to-use
  // dependence): these stall the core for the full access latency, which
  // is what makes SuDoku's +1-cycle CRC check visible (§VII-C). Calibrated
  // so the syndrome-check overhead lands in the paper's reported ~0.1%
  // band — OoO cores hide most LLC-hit latency behind the ROB.
  double blocking_load_fraction = 0.10;

  cache::CacheConfig llc;           // 64 MB, 8-way, 64 B (defaults)
  double llc_read_ns = 9.0;         // Table VI
  double llc_write_ns = 18.0;

  DramConfig dram;                  // DDR3-800 x2 channels (Table VI)

  SudokuOverheads sudoku;
  RegionEccOverheads region;

  std::uint64_t instructions_per_core = 2'000'000;
  // Untimed accesses per core that populate the LLC before measurement
  // (the paper's SimPoint slices start from warmed caches).
  std::uint64_t warmup_accesses_per_core = 60'000;
  std::uint64_t seed = 1;
};

struct CoreResult {
  std::string benchmark;
  std::uint64_t instructions = 0;
  std::uint64_t llc_accesses = 0;
  double finish_time_ns = 0.0;
  double ipc = 0.0;
};

struct SimResult {
  std::vector<CoreResult> cores;
  cache::CacheStats llc;
  DramStats dram;
  double total_time_ns = 0.0;       // slowest core
  // Event counts for the energy model.
  std::uint64_t llc_reads = 0;      // demand + fill + writeback reads
  std::uint64_t llc_writes = 0;
  std::uint64_t plt_writes = 0;
  std::uint64_t dram_accesses = 0;
  std::uint64_t scrub_reads = 0;    // modelled scrub traffic volume
  std::uint64_t codec_events = 0;   // CRC/ECC decode or encode operations

  // Region-ECC data path accounting (RegionEccOverheads; all zero when it
  // is disabled). Demand traffic is what the cores asked for; redundant
  // and RMW bits are what the large codewords forced on top.
  std::uint64_t region_demand_bits = 0;     // 512 per demand access
  std::uint64_t region_redundant_bits = 0;  // codeword fetch minus the line
  std::uint64_t region_rmw_bits = 0;        // parity write-back on writes
  std::uint64_t region_opens = 0;           // codeword fetch + decode events
  std::uint64_t region_buffer_hits = 0;     // open-region reuse (hidden cost)

  // Total stored bits moved per demand bit — the frontier's bandwidth axis.
  double region_bandwidth_amplification() const {
    return region_demand_bits
               ? static_cast<double>(region_demand_bits + region_redundant_bits +
                                     region_rmw_bits) /
                     static_cast<double>(region_demand_bits)
               : 1.0;
  }

  // Busy time accumulated across banks/ports, for the §VII-I bandwidth
  // analysis (PLT must not bottleneck behind the STTRAM it shadows).
  double llc_busy_ns = 0.0;
  double plt_busy_ns = 0.0;

  // Observability snapshot of the run: live cache.* counters from the LLC
  // model plus sim.* series (event totals, bank-utilization gauges, and a
  // per-core IPC histogram). Populated by TimingSimulator::run.
  obs::MetricsRegistry metrics;

  double llc_bank_utilization(std::uint32_t banks) const {
    return total_time_ns > 0 ? llc_busy_ns / (total_time_ns * banks) : 0.0;
  }
  double plt_bank_utilization(std::uint32_t banks) const {
    return total_time_ns > 0 ? plt_busy_ns / (total_time_ns * banks) : 0.0;
  }
};

class TimingSimulator {
 public:
  explicit TimingSimulator(const SimConfig& config);

  // Run one multi-programmed workload: `benchmarks` lists one spec per core
  // (wrapping if shorter than num_cores). A spec is either a synthetic
  // benchmark name from the roster or "file:<path>" for a recorded trace
  // (see sim/trace_io.h).
  SimResult run(const std::vector<std::string>& benchmarks);

 private:
  SimConfig config_;
};

}  // namespace sudoku::sim
