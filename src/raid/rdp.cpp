#include "raid/rdp.h"

#include <cassert>

namespace sudoku {

namespace {

bool is_prime(std::uint32_t n) {
  if (n < 2) return false;
  for (std::uint32_t f = 2; f * f <= n; ++f) {
    if (n % f == 0) return false;
  }
  return true;
}

std::uint32_t next_prime_at_least(std::uint32_t n) {
  while (!is_prime(n)) ++n;
  return n;
}

}  // namespace

RowDiagonalParity::RowDiagonalParity(std::uint32_t group_size,
                                     std::uint32_t bits_per_line)
    : group_size_(group_size), bits_per_line_(bits_per_line) {
  // Need a prime p with data disks (group_size) + row-parity disk <= p.
  p_ = next_prime_at_least(group_size + 1);
  rows_ = p_ - 1;
  stripes_ = (bits_per_line_ + rows_ - 1) / rows_;
}

void RowDiagonalParity::compute(const std::vector<BitVec>& lines, BitVec& row_parity,
                                BitVec& diag_parity) const {
  assert(lines.size() == group_size_);
  row_parity.resize(bits_per_line_);
  row_parity.clear();
  for (const auto& line : lines) row_parity ^= line;

  diag_parity.resize(diag_bits());
  diag_parity.clear();
  for (std::uint32_t s = 0; s < stripes_; ++s) {
    for (std::uint32_t d = 0; d + 1 < p_; ++d) {  // diagonals 0..p-2
      bool acc = false;
      // Data disks 0..group_size-1: cell at row (d - i) mod p, real if
      // that row is < p-1.
      for (std::uint32_t i = 0; i < group_size_; ++i) {
        const std::uint32_t r = (d + p_ - i) % p_;
        if (r < rows_) acc ^= bit_at(lines[i], s, r);
      }
      // Row-parity disk at index p-1: cell at row (d + 1) mod p.
      const std::uint32_t rp_row = (d + 1) % p_;
      if (rp_row < rows_) {
        const std::uint32_t idx = s * rows_ + rp_row;
        if (idx < bits_per_line_) acc ^= row_parity.test(idx);
      }
      if (acc) diag_parity.set(s * rows_ + d);
    }
  }
}

BitVec RowDiagonalParity::reconstruct_one(const std::vector<BitVec>& lines,
                                          std::uint32_t a,
                                          const BitVec& row_parity) const {
  BitVec out = row_parity;
  for (std::uint32_t i = 0; i < group_size_; ++i) {
    if (i != a) out ^= lines[i];
  }
  return out;
}

std::pair<BitVec, BitVec> RowDiagonalParity::reconstruct_two(
    const std::vector<BitVec>& lines, std::uint32_t a, std::uint32_t b,
    const BitVec& row_parity, const BitVec& diag_parity) const {
  assert(a != b && a < group_size_ && b < group_size_);
  BitVec da(bits_per_line_), db(bits_per_line_);

  for (std::uint32_t s = 0; s < stripes_; ++s) {
    // Row syndromes: s_row[r] = a[r] ^ b[r].
    std::vector<std::uint8_t> s_row(rows_, 0);
    for (std::uint32_t r = 0; r < rows_; ++r) {
      const std::uint32_t idx = s * rows_ + r;
      bool acc = idx < bits_per_line_ && row_parity.test(idx);
      for (std::uint32_t i = 0; i < group_size_; ++i) {
        if (i == a || i == b) continue;
        acc ^= bit_at(lines[i], s, r);
      }
      s_row[r] = acc ? 1 : 0;
    }
    // Diagonal syndromes for d in 0..p-2: s_diag[d] = a[ra] ^ b[rb] with
    // phantom rows (>= p-1) contributing zero.
    std::vector<std::uint8_t> s_diag(p_, 0);
    for (std::uint32_t d = 0; d + 1 < p_; ++d) {
      const std::uint32_t idx = s * rows_ + d;
      bool acc = diag_parity.test(idx);
      for (std::uint32_t i = 0; i < group_size_; ++i) {
        if (i == a || i == b) continue;
        const std::uint32_t r = (d + p_ - i) % p_;
        if (r < rows_) acc ^= bit_at(lines[i], s, r);
      }
      const std::uint32_t rp_row = (d + 1) % p_;
      if (rp_row < rows_) {
        const std::uint32_t ridx = s * rows_ + rp_row;
        if (ridx < bits_per_line_) acc ^= row_parity.test(ridx);
      }
      s_diag[d] = acc ? 1 : 0;
    }

    // Fixed-point propagation over rows 0..p-1 (row p-1 is the known-zero
    // phantom). Row equation: a[r]^b[r] = s_row[r]. Diagonal equation for
    // d <= p-2: a[(d-a) mod p] ^ b[(d-b) mod p] = s_diag[d].
    std::vector<std::int8_t> va(p_, -1), vb(p_, -1);  // -1 unknown
    va[p_ - 1] = 0;
    vb[p_ - 1] = 0;
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::uint32_t d = 0; d + 1 < p_; ++d) {
        const std::uint32_t ra = (d + p_ - a) % p_;
        const std::uint32_t rb = (d + p_ - b) % p_;
        if (va[ra] >= 0 && vb[rb] < 0) {
          vb[rb] = s_diag[d] ^ va[ra];
          progress = true;
        } else if (vb[rb] >= 0 && va[ra] < 0) {
          va[ra] = s_diag[d] ^ vb[rb];
          progress = true;
        }
      }
      for (std::uint32_t r = 0; r < rows_; ++r) {
        if (va[r] >= 0 && vb[r] < 0) {
          vb[r] = s_row[r] ^ va[r];
          progress = true;
        } else if (vb[r] >= 0 && va[r] < 0) {
          va[r] = s_row[r] ^ vb[r];
          progress = true;
        }
      }
    }
    for (std::uint32_t r = 0; r < rows_; ++r) {
      const std::uint32_t idx = s * rows_ + r;
      if (idx >= bits_per_line_) break;
      assert(va[r] >= 0 && vb[r] >= 0);  // p prime guarantees full coverage
      if (va[r] > 0) da.set(idx);
      if (vb[r] > 0) db.set(idx);
    }
  }
  return {da, db};
}

}  // namespace sudoku
