// Parity Line Table (PLT, paper §III-A). One parity line per RAID-Group,
// covering the full stored codeword (data + CRC + ECC bits) of every member
// line, so that parity mismatches locate faulty bits anywhere in a stored
// line. The PLT is held in SRAM beside the STTRAM array (128 KB per table
// for a 64 MB cache) and is modelled as fault-free; writes update it with
// the XOR delta of the modified line.
#pragma once

#include <cstdint>

#include "common/bitvec.h"
#include "sttram/array.h"

namespace sudoku {

class ParityTable {
 public:
  ParityTable(std::uint64_t num_groups, std::uint32_t bits_per_line)
      : table_(num_groups, bits_per_line) {}

  std::uint64_t num_groups() const { return table_.num_lines(); }
  std::uint32_t bits_per_line() const { return table_.bits_per_line(); }

  BitVec read(std::uint64_t group) const { return table_.read_line(group); }
  void read(std::uint64_t group, BitVec& out) const { table_.read_line(group, out); }
  void write(std::uint64_t group, const BitVec& parity) { table_.write_line(group, parity); }

  // parity ^= delta (read-modify-write on a host write: delta = old ^ new).
  void apply_delta(std::uint64_t group, const BitVec& delta) {
    BitVec p = table_.read_line(group);
    p ^= delta;
    table_.write_line(group, p);
  }

  // XOR the stored parity into an accumulator (mismatch computation).
  void xor_into(std::uint64_t group, BitVec& acc) const { table_.xor_line_into(group, acc); }

  // Storage cost in bits (paper §VII-H: 128 KB per PLT at 64 MB / G=512).
  std::uint64_t storage_bits() const { return num_groups() * bits_per_line(); }

 private:
  SttramArray table_;  // reused as a flat line store; contents live in SRAM
};

}  // namespace sudoku
