#include "raid/raid6.h"

#include <cassert>

namespace sudoku {

Raid6::Raid6(std::uint32_t group_size, std::uint32_t bits_per_line)
    : group_size_(group_size),
      bits_per_line_(bits_per_line),
      field_(group_size <= 255 ? 8 : 16) {
  const std::uint32_t m = static_cast<std::uint32_t>(field_.m());
  symbols_per_line_ = (bits_per_line_ + m - 1) / m;
  assert(group_size_ <= field_.order());  // distinct nonzero weights per slot
}

std::uint32_t Raid6::symbol(const BitVec& v, std::uint32_t s) const {
  const std::uint32_t m = static_cast<std::uint32_t>(field_.m());
  std::uint32_t val = 0;
  const std::uint32_t base = s * m;
  for (std::uint32_t b = 0; b < m; ++b) {
    const std::uint32_t idx = base + b;
    if (idx < v.size() && v.test(idx)) val |= 1u << b;
  }
  return val;
}

void Raid6::set_symbol(BitVec& v, std::uint32_t s, std::uint32_t val) const {
  const std::uint32_t m = static_cast<std::uint32_t>(field_.m());
  const std::uint32_t base = s * m;
  for (std::uint32_t b = 0; b < m; ++b) {
    const std::uint32_t idx = base + b;
    if (idx < v.size()) v.assign(idx, (val >> b) & 1u);
  }
}

void Raid6::scaled_xor(const BitVec& line, std::uint32_t coef, BitVec& acc) const {
  for (std::uint32_t s = 0; s < symbols_per_line_; ++s) {
    const std::uint32_t prod = field_.mul(symbol(line, s), coef);
    if (prod != 0) set_symbol(acc, s, symbol(acc, s) ^ prod);
  }
}

void Raid6::compute(const std::vector<BitVec>& lines, BitVec& p, BitVec& q) const {
  assert(lines.size() == group_size_);
  p.resize(bits_per_line_);
  // Q holds weighted field symbols, so it is padded to whole symbols: a
  // scaled partial tail symbol occupies all m bits even when the data
  // line's tail does not.
  q.resize(symbols_per_line_ * static_cast<std::uint32_t>(field_.m()));
  p.clear();
  q.clear();
  for (std::uint32_t i = 0; i < group_size_; ++i) {
    p ^= lines[i];
    scaled_xor(lines[i], weight(i), q);
  }
}

BitVec Raid6::reconstruct_one(const std::vector<BitVec>& lines, std::uint32_t a,
                              const BitVec& p) const {
  BitVec d = p;
  for (std::uint32_t i = 0; i < group_size_; ++i) {
    if (i != a) d ^= lines[i];
  }
  return d;
}

std::pair<BitVec, BitVec> Raid6::reconstruct_two(const std::vector<BitVec>& lines,
                                                 std::uint32_t a, std::uint32_t b,
                                                 const BitVec& p, const BitVec& q) const {
  assert(a != b);
  // P' = P xor (all surviving lines)      = D_a xor D_b
  // Q' = Q xor (weighted surviving lines) = g^a·D_a xor g^b·D_b
  BitVec pp = p;
  BitVec qq = q;
  for (std::uint32_t i = 0; i < group_size_; ++i) {
    if (i == a || i == b) continue;
    pp ^= lines[i];
    scaled_xor(lines[i], weight(i), qq);
  }
  // Solve per symbol: Da = (Q' + g^b·P') / (g^a + g^b);  Db = P' + Da.
  const std::uint32_t ga = weight(a);
  const std::uint32_t gb = weight(b);
  const std::uint32_t denom_inv = field_.inv(ga ^ gb);
  // Build D_a at padded width, then trim: data lines are zero in the pad.
  BitVec da(symbols_per_line_ * static_cast<std::uint32_t>(field_.m()));
  for (std::uint32_t s = 0; s < symbols_per_line_; ++s) {
    const std::uint32_t num = symbol(qq, s) ^ field_.mul(gb, symbol(pp, s));
    set_symbol(da, s, field_.mul(num, denom_inv));
  }
  da.resize(bits_per_line_);
  BitVec db = pp;
  db ^= da;
  return {da, db};
}

}  // namespace sudoku
