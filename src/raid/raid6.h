// RAID-6 parity pair (P + Q) over a group of stored lines — the baseline of
// paper §VIII-A / Table XI. P is the XOR parity; Q is a Reed-Solomon-style
// weighted parity over GF(2^8) applied byte-wise:
//   Q = XOR_i ( g^i · D_i )      (g = 0x02, i = slot index, up to 255... )
// With CRC-31 flagging which lines are faulty, the pair recovers any two
// known-position erasures in the group. Note group sizes above 255 exceed
// GF(2^8)'s distinct-coefficient range; we use GF(2^16) coefficients when
// the group is larger so every slot keeps a unique weight.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "codes/gf2m.h"

namespace sudoku {

class Raid6 {
 public:
  explicit Raid6(std::uint32_t group_size, std::uint32_t bits_per_line);

  std::uint32_t group_size() const { return group_size_; }
  std::uint32_t bits_per_line() const { return bits_per_line_; }

  // Compute P and Q over the full group.
  void compute(const std::vector<BitVec>& lines, BitVec& p, BitVec& q) const;

  // Reconstruct one erased line (slot a) from the others + P.
  BitVec reconstruct_one(const std::vector<BitVec>& lines, std::uint32_t a,
                         const BitVec& p) const;

  // Reconstruct two erased lines (slots a != b) from the others + P + Q.
  // Returns {D_a, D_b}.
  std::pair<BitVec, BitVec> reconstruct_two(const std::vector<BitVec>& lines,
                                            std::uint32_t a, std::uint32_t b,
                                            const BitVec& p, const BitVec& q) const;

 private:
  std::uint32_t group_size_;
  std::uint32_t bits_per_line_;
  std::uint32_t symbols_per_line_;  // bits padded to field symbols
  GF2m field_;

  // Multiply a line (interpreted as a vector of field symbols) by a scalar
  // and XOR into acc.
  void scaled_xor(const BitVec& line, std::uint32_t coef, BitVec& acc) const;

  std::uint32_t weight(std::uint32_t slot) const { return field_.alpha_pow(slot); }

  std::uint32_t symbol(const BitVec& v, std::uint32_t s) const;
  void set_symbol(BitVec& v, std::uint32_t s, std::uint32_t val) const;
};

}  // namespace sudoku
