// Row-Diagonal Parity (RDP, Corbett et al., FAST'04) — the "diagonal
// parity and row-wise parity" construction the paper's §VIII-A attributes
// to its RAID-6 baseline. Pure-XOR double-erasure code:
//
//   * choose a prime p with group_size <= p - 1;
//   * a stripe holds p-1 rows; data unit (line i, row j) belongs to row
//     parity j and to diagonal (i + j) mod p;
//   * the row-parity "line" holds per-row XORs (it occupies diagonal slot
//     i = G in the numbering below); the diagonal-parity line holds
//     diagonals 0..p-2 (diagonal p-1 is the intentionally "missing" one);
//   * any two lost lines are recovered by the classic RDP chain: the
//     missing diagonal gives a starting point, and row/diagonal parities
//     alternate until both lines are rebuilt.
//
// Lines longer than one stripe (our 553-bit codewords vs p-1 rows) are
// covered by consecutive independent stripes with zero padding.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"

namespace sudoku {

class RowDiagonalParity {
 public:
  RowDiagonalParity(std::uint32_t group_size, std::uint32_t bits_per_line);

  std::uint32_t group_size() const { return group_size_; }
  std::uint32_t bits_per_line() const { return bits_per_line_; }
  std::uint32_t prime() const { return p_; }
  std::uint32_t stripes() const { return stripes_; }

  // Compute the row-parity and diagonal-parity lines over the full group.
  void compute(const std::vector<BitVec>& lines, BitVec& row_parity,
               BitVec& diag_parity) const;

  // Rebuild one erased line from the others + row parity (plain RAID-4).
  BitVec reconstruct_one(const std::vector<BitVec>& lines, std::uint32_t a,
                         const BitVec& row_parity) const;

  // Rebuild two erased lines (slots a != b) via the RDP recovery chain.
  std::pair<BitVec, BitVec> reconstruct_two(const std::vector<BitVec>& lines,
                                            std::uint32_t a, std::uint32_t b,
                                            const BitVec& row_parity,
                                            const BitVec& diag_parity) const;

  // Diagonal parity needs p-1 slots per stripe; its line width may exceed
  // the data width (padded at the tail of each stripe).
  std::uint32_t diag_bits() const { return stripes_ * (p_ - 1); }

 private:
  std::uint32_t group_size_;
  std::uint32_t bits_per_line_;
  std::uint32_t p_;        // prime >= group_size + 1
  std::uint32_t rows_;     // p - 1 rows per stripe
  std::uint32_t stripes_;  // ceil(bits_per_line / rows)

  // Diagonal id of (line i, row j) within a stripe.
  std::uint32_t diag_of(std::uint32_t line, std::uint32_t row) const {
    return (line + row) % p_;
  }
  bool bit_at(const BitVec& line, std::uint32_t stripe, std::uint32_t row) const {
    const std::uint32_t idx = stripe * rows_ + row;
    return idx < bits_per_line_ && line.test(idx);
  }
};

}  // namespace sudoku
