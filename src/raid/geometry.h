// RAID-Group geometry and the skewed hash pair of SuDoku-Z (paper §V-A).
//
// Hash-1 groups consecutive lines: group = addr >> log2(G) — i.e. masking
// out addr[g-1:0]. Hash-2 masks out the *next* g bits instead: its group id
// is formed from addr[g-1:0] plus the address bits above 2g. Two lines that
// share a Hash-1 group (same high bits, different low field) therefore land
// in different Hash-2 groups — the disjointness guarantee SuDoku-Z needs.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace sudoku {

struct RaidGeometry {
  std::uint64_t num_lines = 1ull << 20;  // 64 MB / 64 B
  std::uint32_t group_size = 512;        // lines per RAID-Group

  std::uint64_t num_groups() const { return num_lines / group_size; }
  std::uint32_t group_bits() const {
    return static_cast<std::uint32_t>(std::countr_zero(std::uint64_t{group_size}));
  }
  std::uint32_t line_bits() const {
    return static_cast<std::uint32_t>(std::countr_zero(num_lines));
  }

  bool valid() const {
    return std::has_single_bit(num_lines) && std::has_single_bit(std::uint64_t{group_size}) &&
           num_lines >= group_size;
  }
  // Hash-2 needs at least 2·g address bits so the two fields don't overlap.
  bool supports_skewed_hash() const { return valid() && line_bits() >= 2 * group_bits(); }
};

class SkewedHash {
 public:
  explicit SkewedHash(const RaidGeometry& geo) : geo_(geo) {
    assert(geo.valid());
    g_ = geo.group_bits();
    low_mask_ = (std::uint64_t{1} << g_) - 1;
  }

  const RaidGeometry& geometry() const { return geo_; }

  // ---- Hash-1: consecutive lines ----
  std::uint64_t group1(std::uint64_t line) const { return line >> g_; }

  std::uint64_t member1(std::uint64_t group, std::uint32_t slot) const {
    return (group << g_) | slot;
  }

  // ---- Hash-2: swap the addr[g-1:0] and addr[2g-1:g] fields' roles ----
  // group id = addr[g-1:0] | addr[top:2g] << g ; members vary addr[2g-1:g].
  std::uint64_t group2(std::uint64_t line) const {
    assert(geo_.supports_skewed_hash());
    const std::uint64_t low = line & low_mask_;
    const std::uint64_t high = line >> (2 * g_);
    return low | (high << g_);
  }

  std::uint64_t member2(std::uint64_t group, std::uint32_t slot) const {
    const std::uint64_t low = group & low_mask_;
    const std::uint64_t high = group >> g_;
    return low | (static_cast<std::uint64_t>(slot) << g_) | (high << (2 * g_));
  }

  // Slot of a line within its group (either hash).
  std::uint32_t slot1(std::uint64_t line) const {
    return static_cast<std::uint32_t>(line & low_mask_);
  }
  std::uint32_t slot2(std::uint64_t line) const {
    return static_cast<std::uint32_t>((line >> g_) & low_mask_);
  }

  std::vector<std::uint64_t> members1(std::uint64_t group) const {
    std::vector<std::uint64_t> v(geo_.group_size);
    for (std::uint32_t s = 0; s < geo_.group_size; ++s) v[s] = member1(group, s);
    return v;
  }
  std::vector<std::uint64_t> members2(std::uint64_t group) const {
    std::vector<std::uint64_t> v(geo_.group_size);
    for (std::uint32_t s = 0; s < geo_.group_size; ++s) v[s] = member2(group, s);
    return v;
  }

 private:
  RaidGeometry geo_;
  std::uint32_t g_;
  std::uint64_t low_mask_;
};

}  // namespace sudoku
