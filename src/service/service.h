// Concurrent resilient-memory service (docs/service.md): a thread-safe,
// bank-sharded front end over the SuDoku controllers and the Hi-ECC
// baseline. Many client threads issue reads and writes against a global
// line-interleaved address space while background workers execute scrub
// sweeps and queued repairs — the regime where scrub/repair contention
// decides whether a resilience scheme is viable at scale.
//
// Concurrency architecture:
//  * BankShard — each bank owns its backend (storage + codec state), a
//    mutex serialising every mutator, and a seqlock epoch (even = stable,
//    odd = mutator active). Mutators bracket their work with begin/end
//    epoch bumps while holding the mutex.
//  * Lock-free clean-read fast path — a reader snapshots the epoch, copies
//    the line and checks full codec consistency without any lock, then
//    re-validates the epoch: unchanged-and-even proves no mutator
//    overlapped, so the copy is untorn and current. Any other outcome
//    falls back to the locked path. Clean reads (the overwhelming majority
//    at real BERs) therefore never contend with each other or with reads
//    on other banks.
//  * RepairQueue — scrub sweeps and injected-fault repair run on
//    background workers that park on a condition variable when idle.
//    Tasks execute under the target bank's mutex + epoch bracket, so a
//    repair's write-back can never race a client write (write-back
//    fencing), and drain() is a fence: when it returns, every queued
//    repair has retired. Demand repair (a read hitting an uncorrectable
//    line) still runs inline — the data does not exist until the group
//    machinery produces it — but only on the affected bank.
//  * Graceful degradation (docs/faults.md) — lines that keep needing
//    repair (suspected permanent faults) accumulate strikes; at the
//    configured threshold the service retires the line, snapshotting its
//    data into a bounded per-bank spare pool and serving it from there.
//    When the pool is exhausted, retired lines stay in place degraded:
//    every read demand-corrects through the backend. All retirement state
//    mutates under the bank's mutator bracket; the lock-free fast path
//    only ever sees a relaxed per-line retirement word and falls back to
//    the locked path for anything retired.
//
// Determinism: with a single client and no background work, every
// observable (data, statuses, stored bits) is bit-identical to driving the
// underlying controller directly — tests/test_service.cpp pins this.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "faults/scenario.h"
#include "obs/metrics.h"
#include "service/backend.h"

namespace sudoku::service {

struct ServiceConfig {
  std::uint32_t banks = 4;
  std::uint32_t repair_workers = 1;     // background scrub/repair threads
  std::uint32_t fast_read_attempts = 2;  // seqlock tries before locking

  // Graceful-degradation policy. retire_strikes = 0 disables retirement
  // entirely (the default: under purely transient BER every scrub
  // correction would count as a strike, and retiring healthy lines would
  // change the deterministic goldens). With N > 0, a line is retired after
  // N consecutive dirty observations (scrub found its unit DUE/repaired,
  // or a locked read came back corrected/repaired/due) without an
  // intervening clean scan.
  std::uint32_t retire_strikes = 0;
  std::uint32_t spare_lines_per_bank = 32;  // bounded remap pool per bank
};

// Per-client instrumentation context. Each client thread owns one: the
// service records its fast-path/outcome counters here without any
// synchronisation, and scratch buffers live here so the steady-state read
// path performs no allocation. Merge order (client index) is fixed by the
// load generator, keeping registry reduction deterministic.
class ClientStats {
 public:
  ClientStats();

  obs::MetricsRegistry& registry() { return registry_; }
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  friend class MemoryService;
  obs::MetricsRegistry registry_;
  obs::Counter* read_fast_;        // service.read.fast
  obs::Counter* read_clean_;       // service.read.clean  (locked, clean)
  obs::Counter* read_corrected_;   // service.read.corrected
  obs::Counter* read_repaired_;    // service.read.repaired
  obs::Counter* read_due_;         // service.read.due
  obs::Counter* read_retired_;     // service.read.retired  (served from spare)
  obs::Counter* read_degraded_;    // service.read.degraded (retired, no spare)
  obs::Counter* writes_;           // service.write.count
  BitVec stored_scratch_;
  BitVec data_scratch_;
};

// Degraded-capacity accounting (see degradation_report()). A mapped
// retired line still serves full-fidelity data from its spare; an
// unmapped one survives only as well as the backend's demand correction.
struct BankDegradation {
  std::uint32_t bank = 0;
  std::uint64_t retired_mapped = 0;    // remapped into the spare pool
  std::uint64_t retired_unmapped = 0;  // pool exhausted; degraded in place
  std::uint64_t spare_capacity = 0;
  std::vector<std::uint64_t> retired_lines;  // sorted line ids, both kinds
};

struct DegradationReport {
  std::vector<BankDegradation> banks;
  std::uint64_t total_lines = 0;
  std::uint64_t retired_mapped = 0;
  std::uint64_t retired_unmapped = 0;
  // Fraction of the address space still served at full fidelity (spares
  // count as full fidelity; unmapped retired lines do not).
  double healthy_fraction() const {
    return total_lines == 0
               ? 1.0
               : 1.0 - static_cast<double>(retired_unmapped) / total_lines;
  }
};

class MemoryService {
 public:
  using BackendFactory =
      std::function<std::unique_ptr<Backend>(std::uint32_t bank)>;

  MemoryService(const ServiceConfig& config, const BackendFactory& factory);
  ~MemoryService();  // drains the repair queue, then stops the workers

  MemoryService(const MemoryService&) = delete;
  MemoryService& operator=(const MemoryService&) = delete;

  std::uint32_t banks() const { return static_cast<std::uint32_t>(shards_.size()); }
  std::uint64_t lines_per_bank() const { return lines_per_bank_; }
  // Global line-interleaved address space: bank = addr % banks,
  // line-in-bank = addr / banks (consecutive addresses hit distinct banks).
  std::uint64_t num_lines() const { return lines_per_bank_ * banks(); }

  // Fill every line with make_data(bank, line) and rebuild parity state.
  // Not concurrency-safe; call before serving traffic.
  void format(const std::function<BitVec(std::uint32_t, std::uint64_t)>& make_data);
  void format_zero();

  // ---- data path (thread-safe) ----
  // Read 512 data bits at `addr` into data_out (resized/reused; no
  // allocation in the fast path once warm).
  ReadStatus read(std::uint64_t addr, ClientStats& stats, BitVec& data_out);
  void write(std::uint64_t addr, const BitVec& data512, ClientStats& stats);

  // ---- fault injection + repair (thread-safe) ----
  // Flip stored bits in `bank` (batch keyed by fault unit). When
  // scrub_async, the touched units are queued for background repair.
  void inject_faults(std::uint32_t bank, const FaultBatch& batch, bool scrub_async);

  // Assert stuck-at cells onto the bank's raw storage under the mutator
  // bracket (permanent-fault harness; see faults::FaultScenario::stuck).
  // When scrub_async, the touched units are queued for background repair —
  // which is exactly how repeat-offender strikes accumulate.
  void assert_stuck(std::uint32_t bank, std::span<const faults::StuckCell> cells,
                    bool scrub_async);

  void scrub_bank_async(std::uint32_t bank);       // queue a full sweep
  std::uint64_t scrub_bank_now(std::uint32_t bank);  // synchronous; returns DUE units
  // Synchronous sparse scrub (the determinism tests mirror the MC harness
  // with this); returns DUE units.
  std::uint64_t scrub_units_now(std::uint32_t bank,
                                std::span<const std::uint64_t> units);

  // Fence: returns once every repair queued so far has executed.
  void drain();

  std::uint64_t queue_depth() const { return queue_depth_.load(std::memory_order_relaxed); }
  std::uint64_t queue_depth_max() const { return queue_depth_max_.load(std::memory_order_relaxed); }

  // ---- observability ----
  // Merge the service-owned registries into `out` in deterministic order:
  // bank shards (controller sudoku.* + shard service.scrub.*) in bank
  // order, then repair workers in worker order. Caller must be quiesced
  // (no in-flight clients; drain() first).
  void merge_metrics_into(obs::MetricsRegistry& out) const;

  // Degraded-capacity snapshot across all banks. Takes each bank's
  // mutator bracket in turn; safe to call concurrently with traffic.
  DegradationReport degradation_report();

  // Test hook: the bank's backend. Caller must be quiesced.
  Backend& backend(std::uint32_t bank) { return *shards_[bank]->backend; }

 private:
  // Per-line retirement word: kLiveLine = normal service, kUnmappedLine =
  // retired with the spare pool exhausted, >= 0 = index into `spares`.
  static constexpr std::int32_t kLiveLine = -1;
  static constexpr std::int32_t kUnmappedLine = -2;

  struct BankShard {
    std::unique_ptr<Backend> backend;
    std::mutex mutex;
    // Seqlock epoch: even = stable, odd = mutator active. Mutators bump it
    // twice while holding `mutex`; fast-path readers validate against it.
    std::atomic<std::uint64_t> epoch{0};
    obs::MetricsRegistry registry;  // guarded by `mutex`
    obs::Counter* scrub_units;      // service.scrub.units
    obs::Counter* scrub_due;        // service.scrub.due_units
    obs::Counter* retired_count;    // service.retired_lines
    obs::Counter* pool_exhausted;   // service.retire.pool_exhausted

    // Retirement state. `retired` is read by the lock-free fast path with
    // relaxed ordering — safe because writes to retired lines still write
    // through to the backend, so a stale kLiveLine observation only means
    // the probe reads backend storage, which holds the latest data (and a
    // stuck cell there fails the consistency check anyway, forcing the
    // locked path). Everything else is guarded by `mutex`.
    std::unique_ptr<std::atomic<std::int32_t>[]> retired;  // one per line
    std::vector<BitVec> spares;  // retired-line payloads, slot-indexed
    // False when the retirement snapshot was already uncorrectable: the
    // spare holds zeros and reads report kDue (never silent corruption)
    // until a fresh write revalidates the slot.
    std::vector<char> spare_valid;
    std::unordered_map<std::uint64_t, std::uint32_t> strikes;
  };

  struct RepairTask {
    std::uint32_t bank = 0;
    bool full_sweep = false;
    std::vector<std::uint64_t> units;  // when !full_sweep
  };

  // A mutator bracket: lock the shard and mark the epoch odd for its
  // duration. Readers started before/during the bracket can never validate.
  class MutatorGuard {
   public:
    explicit MutatorGuard(BankShard& shard) : shard_(shard), lock_(shard.mutex) {
      shard_.epoch.fetch_add(1, std::memory_order_seq_cst);
    }
    ~MutatorGuard() { shard_.epoch.fetch_add(1, std::memory_order_seq_cst); }

   private:
    BankShard& shard_;
    std::lock_guard<std::mutex> lock_;
  };

  void enqueue(RepairTask task);
  void worker_loop(std::uint32_t worker_index);
  std::uint64_t execute_scrub(BankShard& shard, const RepairTask& task);

  // Retirement plumbing; all require the shard's mutator bracket held.
  void note_strike_locked(BankShard& shard, std::uint64_t line);
  void retire_line_locked(BankShard& shard, std::uint64_t line);
  void apply_scrub_report_locked(BankShard& shard, const RepairTask& task,
                                 const ScrubReport& report);

  std::vector<std::unique_ptr<BankShard>> shards_;
  std::uint64_t lines_per_bank_ = 0;
  std::uint32_t fast_read_attempts_ = 2;
  std::uint32_t retire_strikes_ = 0;
  std::uint32_t spare_lines_per_bank_ = 0;

  // Repair queue: mutex/cv-parked workers (an idle service burns no CPU).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;   // workers park here
  std::condition_variable drain_cv_;   // drain()/~MemoryService wait here
  std::deque<RepairTask> queue_;
  std::uint32_t active_tasks_ = 0;     // dequeued, still executing
  bool stop_ = false;
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> queue_depth_max_{0};

  struct WorkerState {
    std::thread thread;
    obs::MetricsRegistry registry;  // touched only by the worker itself
  };
  std::vector<std::unique_ptr<WorkerState>> workers_;
};

}  // namespace sudoku::service
