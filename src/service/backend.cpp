#include "service/backend.h"

#include "baselines/hiecc_cache.h"
#include "sudoku/line_codec.h"

namespace sudoku::service {

const char* to_string(ReadStatus status) {
  switch (status) {
    case ReadStatus::kClean: return "clean";
    case ReadStatus::kCorrected: return "corrected";
    case ReadStatus::kRepaired: return "repaired";
    case ReadStatus::kDue: return "due";
  }
  return "?";
}

namespace {

ScrubReport to_report(ScrubStats stats) {
  ScrubReport report;
  report.due = stats.due_lines;
  report.due_units = std::move(stats.due_line_ids);
  report.repaired_units = std::move(stats.repaired_line_ids);
  return report;
}

class SudokuBackend final : public Backend {
 public:
  explicit SudokuBackend(const SudokuConfig& config) : ctrl_(config) {}

  std::string name() const override {
    return to_string(ctrl_.config().level);
  }

  std::uint64_t num_lines() const override { return ctrl_.config().geo.num_lines; }
  std::uint64_t num_units() const override { return num_lines(); }
  std::uint32_t bits_per_unit() const override { return ctrl_.array().bits_per_line(); }
  std::uint64_t unit_of_line(std::uint64_t line) const override { return line; }

  void format(const std::function<BitVec(std::uint64_t)>& make_data) override {
    ctrl_.format(make_data);
  }

  ReadReply read(std::uint64_t line) override {
    auto res = ctrl_.read_data(line);
    ReadReply reply;
    reply.data = std::move(res.data);
    switch (res.outcome) {
      case SudokuController::ReadOutcome::kClean:
        reply.status = ReadStatus::kClean;
        break;
      case SudokuController::ReadOutcome::kCorrected:
        reply.status = ReadStatus::kCorrected;
        break;
      case SudokuController::ReadOutcome::kRepaired:
        reply.status = ReadStatus::kRepaired;
        break;
      case SudokuController::ReadOutcome::kDue:
        reply.status = ReadStatus::kDue;
        break;
    }
    return reply;
  }

  void write(std::uint64_t line, const BitVec& data512) override {
    ctrl_.write_data(line, data512);
  }

  ScrubReport scrub_units_report(std::span<const std::uint64_t> units) override {
    return to_report(ctrl_.scrub_lines(units));
  }

  ScrubReport scrub_all_report() override { return to_report(ctrl_.scrub_all()); }

  void inject(const FaultBatch& batch) override {
    FaultInjector::apply(batch, ctrl_.array());
  }

  SttramArray& raw_array() override { return ctrl_.array(); }

  bool try_clean_read(std::uint64_t line, BitVec& stored_scratch,
                      BitVec& data_out) const override {
    ctrl_.array().read_line(line, stored_scratch);
    // fully_clean (CRC + inner syndrome) — the exact predicate under which
    // the controller's own read path would return kClean without touching
    // storage, so the fast path never diverges from the legacy result.
    if (!ctrl_.codec().fully_clean(stored_scratch)) return false;
    data_out = ctrl_.codec().extract_data(stored_scratch);
    return true;
  }

  void attach_metrics(obs::MetricsRegistry* registry) override {
    ctrl_.attach_metrics(registry);
  }

  bool consistent() const override { return ctrl_.parities_consistent(); }

 private:
  SudokuController ctrl_;
};

class HiEccBackend final : public Backend {
 public:
  HiEccBackend(std::uint64_t num_lines, int t) : cache_(num_lines, t) {}

  std::string name() const override { return cache_.name(); }

  std::uint64_t num_lines() const override { return cache_.num_data_lines(); }
  std::uint64_t num_units() const override { return cache_.num_units(); }
  std::uint32_t bits_per_unit() const override { return cache_.bits_per_unit(); }
  std::uint64_t unit_of_line(std::uint64_t line) const override {
    return line / baselines::HiEccCache::kLinesPerRegion;
  }

  void format(const std::function<BitVec(std::uint64_t)>& make_data) override {
    cache_.format_lines(make_data);
  }

  ReadReply read(std::uint64_t line) override {
    auto res = cache_.read_line_data(line);
    ReadReply reply;
    reply.data = std::move(res.data);
    switch (res.status) {
      case baselines::HiEccCache::LineReadStatus::kClean:
        reply.status = ReadStatus::kClean;
        break;
      case baselines::HiEccCache::LineReadStatus::kCorrected:
        reply.status = ReadStatus::kCorrected;
        break;
      case baselines::HiEccCache::LineReadStatus::kDue:
        reply.status = ReadStatus::kDue;
        break;
    }
    return reply;
  }

  void write(std::uint64_t line, const BitVec& data512) override {
    cache_.write_line_data(line, data512);
  }

  ScrubReport scrub_units_report(std::span<const std::uint64_t> units) override {
    auto stats = cache_.scrub_units(units);
    ScrubReport report;
    report.due = stats.due_units;
    report.due_units = std::move(stats.due_unit_ids);
    // BaselineStats does not track which units were corrected in place, so
    // Hi-ECC retirement strikes come only from DUE units and read outcomes.
    return report;
  }

  ScrubReport scrub_all_report() override {
    std::vector<std::uint64_t> all(cache_.num_units());
    for (std::uint64_t i = 0; i < all.size(); ++i) all[i] = i;
    return scrub_units_report(all);
  }

  void inject(const FaultBatch& batch) override {
    FaultInjector::apply(batch, cache_.array());
  }

  SttramArray& raw_array() override { return cache_.array(); }

  bool try_clean_read(std::uint64_t line, BitVec& stored_scratch,
                      BitVec& data_out) const override {
    return cache_.probe_clean_line(line, stored_scratch, data_out);
  }

  void attach_metrics(obs::MetricsRegistry* registry) override {
    // Hi-ECC has no controller-level instruments; the service's shard and
    // worker counters cover it.
    (void)registry;
  }

  bool consistent() const override {
    // No parity tables; consistency is per-region syndrome cleanliness,
    // which scrubbing verifies. Nothing cheap to assert here.
    return true;
  }

 private:
  baselines::HiEccCache cache_;
};

}  // namespace

std::unique_ptr<Backend> make_sudoku_backend(const SudokuConfig& config) {
  return std::make_unique<SudokuBackend>(config);
}

std::unique_ptr<Backend> make_hiecc_backend(std::uint64_t num_lines, int t) {
  return std::make_unique<HiEccBackend>(num_lines, t);
}

}  // namespace sudoku::service
