// Per-bank resilient-memory backends for the concurrent service
// (src/service, docs/service.md). A Backend is one bank's storage + codec
// + repair machinery behind a uniform data-path interface; the service
// fronts an array of them with per-bank locking and a lock-free clean-read
// fast path.
//
// Thread contract: a Backend is NOT thread-safe. The owning BankShard
// serialises every mutating entry point behind its mutex and brackets them
// with the shard's seqlock epoch. The one concurrent entry point is
// try_clean_read(), which may run while a mutator is active: it must be
// side-effect free and must tolerate torn line images (the caller
// validates the shard epoch afterwards and discards anything observed
// during a write).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "obs/metrics.h"
#include "sttram/fault_injector.h"
#include "sudoku/controller.h"

namespace sudoku::service {

enum class ReadStatus {
  kClean,      // consistent on arrival (fast path or locked read)
  kCorrected,  // inner code fixed it inline
  kRepaired,   // needed the group repair machinery
  kDue,        // detectable uncorrectable: data lost
};

const char* to_string(ReadStatus status);

struct ReadReply {
  BitVec data;  // 512 bits; zeroed when kDue
  ReadStatus status = ReadStatus::kClean;
};

// What a scrub pass found, at fault-unit granularity. The service's
// retirement policy consumes the ids: a unit that keeps appearing in
// `repaired_units` is a repair that did not stick — a suspected permanent
// fault (see docs/faults.md).
struct ScrubReport {
  std::uint64_t due = 0;                      // units declared uncorrectable
  std::vector<std::uint64_t> due_units;       // their ids
  // Units some repair wrote back (inner-code corrections, RAID/SDR
  // victims); may contain duplicates, in repair order.
  std::vector<std::uint64_t> repaired_units;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  // Data geometry: 512-bit lines a client addresses.
  virtual std::uint64_t num_lines() const = 0;

  // Fault/scrub geometry: the protection granule faults are injected into
  // and scrubs operate on (SuDoku: the stored line; Hi-ECC: the 1 KB
  // region). unit_of_line maps a data line to its granule.
  virtual std::uint64_t num_units() const = 0;
  virtual std::uint32_t bits_per_unit() const = 0;
  virtual std::uint64_t unit_of_line(std::uint64_t line) const = 0;

  // Fill every line with make_data(line) and rebuild parity state.
  virtual void format(const std::function<BitVec(std::uint64_t)>& make_data) = 0;

  // Full data path, including demand repair (may mutate storage).
  virtual ReadReply read(std::uint64_t line) = 0;
  virtual void write(std::uint64_t line, const BitVec& data512) = 0;

  // Scrub the given fault units (sparse) or everything, reporting which
  // units were uncorrectable and which needed a repair written back.
  virtual ScrubReport scrub_units_report(std::span<const std::uint64_t> units) = 0;
  virtual ScrubReport scrub_all_report() = 0;

  // Count-only conveniences (the common callers only need the DUE count).
  std::uint64_t scrub_units(std::span<const std::uint64_t> units) {
    return scrub_units_report(units).due;
  }
  std::uint64_t scrub_all() { return scrub_all_report().due; }

  // Flip stored bits; batch keys are fault-unit ids within this bank.
  virtual void inject(const FaultBatch& batch) = 0;

  // The raw stored-bit array (fault-unit granularity), for harnesses that
  // assert stuck cells directly (faults::assert_cells). Caller must hold
  // the owning shard's mutator bracket.
  virtual SttramArray& raw_array() = 0;

  // Lock-free probe for the service's fast path: copy the stored line into
  // `stored_scratch`, and iff it is fully consistent extract the data
  // field into `data_out` and return true. Never mutates storage. May
  // observe a torn image while a mutator runs — any result is only used
  // after the caller re-validates the shard epoch.
  virtual bool try_clean_read(std::uint64_t line, BitVec& stored_scratch,
                              BitVec& data_out) const = 0;

  // Controller/backend-level instruments (sudoku.* for the controller
  // backends). Only called while quiesced; recorded under the bank lock.
  virtual void attach_metrics(obs::MetricsRegistry* registry) = 0;

  // Test hook: parity/codec invariants hold for the current contents.
  virtual bool consistent() const = 0;
};

// SuDoku-X/Y/Z bank: wraps a SudokuController with the paper's geometry.
std::unique_ptr<Backend> make_sudoku_backend(const SudokuConfig& config);

// Hi-ECC baseline bank (ECC-t over 1 KB regions); num_lines % 16 == 0.
std::unique_ptr<Backend> make_hiecc_backend(std::uint64_t num_lines, int t = 6);

}  // namespace sudoku::service
