// Load-generator frontend for the concurrent memory service: N client
// threads issuing a synthetic read/write mix against a MemoryService,
// optionally with a background fault injector, measuring throughput and
// read-latency quantiles. Two arrival disciplines:
//
//  * closed loop — each client issues its next op as soon as the previous
//    one completes (throughput-bound; measures service capacity);
//  * open loop — arrivals are a pre-scheduled Poisson process (exponential
//    gaps at rate/clients per thread) and latency is measured from the
//    *scheduled* arrival, so queueing delay behind a slow repair shows up
//    in the tail instead of being absorbed by coordinated omission.
//
// Address mix reuses the hot-set model of src/sim's workload profiles
// (hot_frac of accesses hit the first hot_lines_frac of the footprint);
// `profile` names a roster benchmark to borrow its published mix. Client
// RNGs come from exp::SeedSequence streams (client k = stream k, injector =
// stream clients), so a run is reproducible from its seed — though wall-
// clock interleaving, and thus the measured numbers, naturally are not.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "service/service.h"

namespace sudoku::service {

struct LoadConfig {
  std::uint32_t clients = 1;
  bool open_loop = false;
  double open_loop_rate = 100000.0;  // total ops/sec across all clients
  std::uint32_t duration_ms = 200;   // wall-clock run length
  std::uint64_t ops_per_client = 0;  // when nonzero, stop after N ops instead
  double write_frac = 0.3;
  double hot_frac = 0.8;
  double hot_lines_frac = 0.1;
  std::string profile;  // sim roster name; overrides the three fields above
  std::uint64_t seed = 1;
  // Background fault injection: every inject_interval_ms, each bank takes a
  // Binomial(bank_bits, ber_per_interval) batch, then an async scrub of the
  // touched units is queued. 0 disables.
  double ber_per_interval = 0.0;
  std::uint32_t inject_interval_ms = 0;
};

struct LoadReport {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t due_reads = 0;  // reads that returned kDue (data lost)
  double wall_seconds = 0.0;
  double qps = 0.0;
  obs::HistogramSummary read_latency_ns;
  std::uint64_t queue_depth_max = 0;
  // Client registries (client order) + service shard/worker registries,
  // merged deterministically.
  obs::MetricsRegistry metrics;
};

LoadReport run_load(MemoryService& service, const LoadConfig& config);

}  // namespace sudoku::service
