#include "service/service.h"

#include <algorithm>
#include <cassert>

namespace sudoku::service {

ClientStats::ClientStats() {
  read_fast_ = registry_.counter("service.read.fast");
  read_clean_ = registry_.counter("service.read.clean");
  read_corrected_ = registry_.counter("service.read.corrected");
  read_repaired_ = registry_.counter("service.read.repaired");
  read_due_ = registry_.counter("service.read.due");
  read_retired_ = registry_.counter("service.read.retired");
  read_degraded_ = registry_.counter("service.read.degraded");
  writes_ = registry_.counter("service.write.count");
}

MemoryService::MemoryService(const ServiceConfig& config,
                             const BackendFactory& factory)
    : fast_read_attempts_(config.fast_read_attempts),
      retire_strikes_(config.retire_strikes),
      spare_lines_per_bank_(config.spare_lines_per_bank) {
  assert(config.banks > 0);
  shards_.reserve(config.banks);
  for (std::uint32_t bank = 0; bank < config.banks; ++bank) {
    auto shard = std::make_unique<BankShard>();
    shard->backend = factory(bank);
    shard->scrub_units = shard->registry.counter("service.scrub.units");
    shard->scrub_due = shard->registry.counter("service.scrub.due_units");
    shard->retired_count = shard->registry.counter("service.retired_lines");
    shard->pool_exhausted =
        shard->registry.counter("service.retire.pool_exhausted");
    const std::uint64_t nlines = shard->backend->num_lines();
    shard->retired =
        std::make_unique<std::atomic<std::int32_t>[]>(nlines);
    for (std::uint64_t i = 0; i < nlines; ++i) {
      shard->retired[i].store(kLiveLine, std::memory_order_relaxed);
    }
    shard->backend->attach_metrics(&shard->registry);
    shards_.push_back(std::move(shard));
  }
  lines_per_bank_ = shards_.front()->backend->num_lines();
  for (const auto& shard : shards_) {
    assert(shard->backend->num_lines() == lines_per_bank_);
    (void)shard;
  }

  const std::uint32_t workers = std::max(1u, config.repair_workers);
  workers_.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  // Threads start only after the vector is fully built (no reallocation
  // while a worker may already be touching its state).
  for (std::uint32_t w = 0; w < workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
  }
}

MemoryService::~MemoryService() {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && active_tasks_ == 0; });
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) worker->thread.join();
}

void MemoryService::format(
    const std::function<BitVec(std::uint32_t, std::uint64_t)>& make_data) {
  for (std::uint32_t bank = 0; bank < banks(); ++bank) {
    shards_[bank]->backend->format(
        [&](std::uint64_t line) { return make_data(bank, line); });
  }
}

void MemoryService::format_zero() {
  format([](std::uint32_t, std::uint64_t) { return BitVec(512); });
}

ReadStatus MemoryService::read(std::uint64_t addr, ClientStats& stats,
                               BitVec& data_out) {
  BankShard& shard = *shards_[addr % banks()];
  const std::uint64_t line = addr / banks();

  // Retired lines are served under the lock (the spare payloads mutate
  // under the bank mutex, so the lock-free probe must not touch them). A
  // stale kLiveLine here is harmless — see the BankShard::retired comment.
  if (shard.retired[line].load(std::memory_order_relaxed) == kLiveLine) {
    // Seqlock fast path. The epoch pair brackets the backend's storage
    // copy: e1 even and e2 == e1 proves no mutator ran anywhere inside the
    // probe, so the copy is untorn and the clean verdict is current.
    // Acquire on e1 orders it before the storage loads; the fence orders
    // the storage loads before e2. A torn/raced copy simply fails
    // validation and we retry or take the lock — never a wrong answer,
    // only a slower one.
    for (std::uint32_t attempt = 0; attempt < fast_read_attempts_; ++attempt) {
      const std::uint64_t e1 = shard.epoch.load(std::memory_order_acquire);
      if (e1 & 1) break;  // mutator active; don't burn retries
      const bool clean = shard.backend->try_clean_read(
          line, stats.stored_scratch_, stats.data_scratch_);
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t e2 = shard.epoch.load(std::memory_order_relaxed);
      if (e1 != e2) continue;  // raced a mutator; the probe result is void
      if (!clean) break;       // genuinely not clean: need the repair path
      data_out = stats.data_scratch_;
      stats.read_fast_->inc();
      return ReadStatus::kClean;
    }
  }

  // Slow path: full controller read (may correct/repair, i.e. mutate).
  MutatorGuard guard(shard);
  const std::int32_t r = shard.retired[line].load(std::memory_order_relaxed);
  if (r >= 0) {
    // Remapped: the spare slot holds the authoritative payload. A slot
    // whose retirement snapshot was already lost stays kDue (zeros) until
    // a write revalidates it — degradation must never turn into SDC.
    const auto slot = static_cast<std::uint32_t>(r);
    data_out = shard.spares[slot];
    stats.read_retired_->inc();
    return shard.spare_valid[slot] ? ReadStatus::kClean : ReadStatus::kDue;
  }
  ReadReply reply = shard.backend->read(line);
  data_out = std::move(reply.data);
  if (r == kUnmappedLine) {
    // Retired without a spare: degraded in place, every read is a demand
    // correction through the backend. One counter per read — the outcome
    // is still returned to the caller, just not double-counted.
    stats.read_degraded_->inc();
    return reply.status;
  }
  switch (reply.status) {
    case ReadStatus::kClean: stats.read_clean_->inc(); break;
    case ReadStatus::kCorrected: stats.read_corrected_->inc(); break;
    case ReadStatus::kRepaired: stats.read_repaired_->inc(); break;
    case ReadStatus::kDue: stats.read_due_->inc(); break;
  }
  if (retire_strikes_ > 0 && reply.status != ReadStatus::kClean) {
    note_strike_locked(shard, line);
  }
  return reply.status;
}

void MemoryService::write(std::uint64_t addr, const BitVec& data512,
                          ClientStats& stats) {
  BankShard& shard = *shards_[addr % banks()];
  const std::uint64_t line = addr / banks();
  MutatorGuard guard(shard);
  // Write-through: backend storage always holds the latest payload even
  // for retired lines (keeps the unmapped demand-correct path and the
  // relaxed fast-path race analysis honest); a mapped retired line's spare
  // is the authoritative copy and is updated in the same bracket.
  shard.backend->write(line, data512);
  const std::int32_t r = shard.retired[line].load(std::memory_order_relaxed);
  if (r >= 0) {
    const auto slot = static_cast<std::uint32_t>(r);
    shard.spares[slot] = data512;
    shard.spare_valid[slot] = 1;
  }
  stats.writes_->inc();
}

void MemoryService::assert_stuck(std::uint32_t bank,
                                 std::span<const faults::StuckCell> cells,
                                 bool scrub_async) {
  BankShard& shard = *shards_[bank];
  {
    MutatorGuard guard(shard);
    faults::assert_cells(shard.backend->raw_array(), cells);
  }
  if (!scrub_async || cells.empty()) return;
  RepairTask task;
  task.bank = bank;
  task.units.reserve(cells.size());
  for (const auto& cell : cells) task.units.push_back(cell.unit);
  std::sort(task.units.begin(), task.units.end());
  task.units.erase(std::unique(task.units.begin(), task.units.end()),
                   task.units.end());
  enqueue(std::move(task));
}

void MemoryService::inject_faults(std::uint32_t bank, const FaultBatch& batch,
                                  bool scrub_async) {
  BankShard& shard = *shards_[bank];
  {
    MutatorGuard guard(shard);
    shard.backend->inject(batch);
  }
  if (!scrub_async || batch.empty()) return;
  RepairTask task;
  task.bank = bank;
  task.units.reserve(batch.size());
  for (const auto& [unit, bits] : batch) task.units.push_back(unit);
  // FaultBatch is an unordered_map; sort so repair order is deterministic.
  std::sort(task.units.begin(), task.units.end());
  enqueue(std::move(task));
}

void MemoryService::scrub_bank_async(std::uint32_t bank) {
  RepairTask task;
  task.bank = bank;
  task.full_sweep = true;
  enqueue(std::move(task));
}

std::uint64_t MemoryService::scrub_bank_now(std::uint32_t bank) {
  BankShard& shard = *shards_[bank];
  RepairTask task;
  task.bank = bank;
  task.full_sweep = true;
  return execute_scrub(shard, task);
}

std::uint64_t MemoryService::scrub_units_now(
    std::uint32_t bank, std::span<const std::uint64_t> units) {
  BankShard& shard = *shards_[bank];
  RepairTask task;
  task.bank = bank;
  task.units.assign(units.begin(), units.end());
  return execute_scrub(shard, task);
}

std::uint64_t MemoryService::execute_scrub(BankShard& shard,
                                           const RepairTask& task) {
  MutatorGuard guard(shard);
  const std::uint64_t scanned =
      task.full_sweep ? shard.backend->num_units() : task.units.size();
  const ScrubReport report = task.full_sweep
                                 ? shard.backend->scrub_all_report()
                                 : shard.backend->scrub_units_report(task.units);
  shard.scrub_units->inc(scanned);
  shard.scrub_due->inc(report.due);
  if (retire_strikes_ > 0) apply_scrub_report_locked(shard, task, report);
  return report.due;
}

void MemoryService::note_strike_locked(BankShard& shard, std::uint64_t line) {
  if (shard.retired[line].load(std::memory_order_relaxed) != kLiveLine) return;
  if (++shard.strikes[line] >= retire_strikes_) retire_line_locked(shard, line);
}

void MemoryService::retire_line_locked(BankShard& shard, std::uint64_t line) {
  shard.strikes.erase(line);
  shard.retired_count->inc();
  if (shard.spares.size() < spare_lines_per_bank_) {
    // Snapshot through the full read path: a correctable line yields its
    // repaired payload; an uncorrectable one yields zeros (the data was
    // already lost and reported as DUE before we got here).
    ReadReply snapshot = shard.backend->read(line);
    const auto slot = static_cast<std::int32_t>(shard.spares.size());
    shard.spares.push_back(std::move(snapshot.data));
    shard.spare_valid.push_back(snapshot.status != ReadStatus::kDue ? 1 : 0);
    shard.retired[line].store(slot, std::memory_order_relaxed);
  } else {
    shard.pool_exhausted->inc();
    shard.retired[line].store(kUnmappedLine, std::memory_order_relaxed);
  }
}

void MemoryService::apply_scrub_report_locked(BankShard& shard,
                                              const RepairTask& task,
                                              const ScrubReport& report) {
  // Dirty units strike every line they protect; units scanned clean reset
  // their lines' strike counts (a repeat offender must be *consecutively*
  // dirty). lpu maps fault units to data lines (1 for SuDoku, 16 for
  // Hi-ECC regions).
  const std::uint64_t lpu =
      shard.backend->num_lines() / shard.backend->num_units();
  std::vector<std::uint64_t> dirty(report.due_units);
  dirty.insert(dirty.end(), report.repaired_units.begin(),
               report.repaired_units.end());
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  const auto is_dirty = [&dirty](std::uint64_t unit) {
    return std::binary_search(dirty.begin(), dirty.end(), unit);
  };
  const auto reset_clean_unit = [&](std::uint64_t unit) {
    if (is_dirty(unit)) return;
    for (std::uint64_t l = unit * lpu; l < (unit + 1) * lpu; ++l) {
      shard.strikes.erase(l);
    }
  };
  if (task.full_sweep) {
    // Full sweeps scan everything; rather than walking every unit, drop
    // strike entries whose unit came back clean.
    for (auto it = shard.strikes.begin(); it != shard.strikes.end();) {
      if (!is_dirty(shard.backend->unit_of_line(it->first))) {
        it = shard.strikes.erase(it);
      } else {
        ++it;
      }
    }
  } else {
    for (const auto unit : task.units) reset_clean_unit(unit);
  }
  for (const auto unit : dirty) {
    for (std::uint64_t l = unit * lpu; l < (unit + 1) * lpu; ++l) {
      note_strike_locked(shard, l);
    }
  }
}

DegradationReport MemoryService::degradation_report() {
  DegradationReport out;
  out.total_lines = num_lines();
  out.banks.reserve(shards_.size());
  for (std::uint32_t bank = 0; bank < banks(); ++bank) {
    BankShard& shard = *shards_[bank];
    MutatorGuard guard(shard);
    BankDegradation deg;
    deg.bank = bank;
    deg.spare_capacity = spare_lines_per_bank_;
    for (std::uint64_t line = 0; line < lines_per_bank_; ++line) {
      const std::int32_t r = shard.retired[line].load(std::memory_order_relaxed);
      if (r == kLiveLine) continue;
      deg.retired_lines.push_back(line);
      if (r == kUnmappedLine) {
        ++deg.retired_unmapped;
      } else {
        ++deg.retired_mapped;
      }
    }
    out.retired_mapped += deg.retired_mapped;
    out.retired_unmapped += deg.retired_unmapped;
    out.banks.push_back(std::move(deg));
  }
  return out;
}

void MemoryService::enqueue(RepairTask task) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
    const auto depth = queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
    auto prev_max = queue_depth_max_.load(std::memory_order_relaxed);
    while (depth > prev_max && !queue_depth_max_.compare_exchange_weak(
                                   prev_max, depth, std::memory_order_relaxed)) {
    }
  }
  queue_cv_.notify_one();
}

void MemoryService::worker_loop(std::uint32_t worker_index) {
  WorkerState& me = *workers_[worker_index];
  obs::Counter* tasks = me.registry.counter("service.repair.tasks");
  obs::Counter* units_scrubbed = me.registry.counter("service.repair.units_scrubbed");
  obs::Counter* due_units = me.registry.counter("service.repair.due_units");
  // Power-of-two depth buckets: the depth distribution spans orders of
  // magnitude under bursty injection.
  obs::Histogram* depth_hist = me.registry.histogram(
      "service.repair.queue_depth", {1, 2, 4, 8, 16, 32, 64, 128, 256});

  for (;;) {
    RepairTask task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      depth_hist->observe(static_cast<double>(queue_.size()));
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      ++active_tasks_;
    }

    BankShard& shard = *shards_[task.bank];
    const std::uint64_t scanned =
        task.full_sweep ? shard.backend->num_units() : task.units.size();
    const std::uint64_t due = execute_scrub(shard, task);
    tasks->inc();
    units_scrubbed->inc(scanned);
    due_units->inc(due);

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) drain_cv_.notify_all();
    }
  }
}

void MemoryService::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && active_tasks_ == 0; });
}

void MemoryService::merge_metrics_into(obs::MetricsRegistry& out) const {
  for (const auto& shard : shards_) out += shard->registry;
  for (const auto& worker : workers_) out += worker->registry;
}

}  // namespace sudoku::service
