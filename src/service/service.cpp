#include "service/service.h"

#include <algorithm>
#include <cassert>

namespace sudoku::service {

ClientStats::ClientStats() {
  read_fast_ = registry_.counter("service.read.fast");
  read_clean_ = registry_.counter("service.read.clean");
  read_corrected_ = registry_.counter("service.read.corrected");
  read_repaired_ = registry_.counter("service.read.repaired");
  read_due_ = registry_.counter("service.read.due");
  writes_ = registry_.counter("service.write.count");
}

MemoryService::MemoryService(const ServiceConfig& config,
                             const BackendFactory& factory)
    : fast_read_attempts_(config.fast_read_attempts) {
  assert(config.banks > 0);
  shards_.reserve(config.banks);
  for (std::uint32_t bank = 0; bank < config.banks; ++bank) {
    auto shard = std::make_unique<BankShard>();
    shard->backend = factory(bank);
    shard->scrub_units = shard->registry.counter("service.scrub.units");
    shard->scrub_due = shard->registry.counter("service.scrub.due_units");
    shard->backend->attach_metrics(&shard->registry);
    shards_.push_back(std::move(shard));
  }
  lines_per_bank_ = shards_.front()->backend->num_lines();
  for (const auto& shard : shards_) {
    assert(shard->backend->num_lines() == lines_per_bank_);
    (void)shard;
  }

  const std::uint32_t workers = std::max(1u, config.repair_workers);
  workers_.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  // Threads start only after the vector is fully built (no reallocation
  // while a worker may already be touching its state).
  for (std::uint32_t w = 0; w < workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
  }
}

MemoryService::~MemoryService() {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && active_tasks_ == 0; });
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) worker->thread.join();
}

void MemoryService::format(
    const std::function<BitVec(std::uint32_t, std::uint64_t)>& make_data) {
  for (std::uint32_t bank = 0; bank < banks(); ++bank) {
    shards_[bank]->backend->format(
        [&](std::uint64_t line) { return make_data(bank, line); });
  }
}

void MemoryService::format_zero() {
  format([](std::uint32_t, std::uint64_t) { return BitVec(512); });
}

ReadStatus MemoryService::read(std::uint64_t addr, ClientStats& stats,
                               BitVec& data_out) {
  BankShard& shard = *shards_[addr % banks()];
  const std::uint64_t line = addr / banks();

  // Seqlock fast path. The epoch pair brackets the backend's storage copy:
  // e1 even and e2 == e1 proves no mutator ran anywhere inside the probe,
  // so the copy is untorn and the clean verdict is current. Acquire on e1
  // orders it before the storage loads; the fence orders the storage loads
  // before e2. A torn/raced copy simply fails validation and we retry or
  // take the lock — never a wrong answer, only a slower one.
  for (std::uint32_t attempt = 0; attempt < fast_read_attempts_; ++attempt) {
    const std::uint64_t e1 = shard.epoch.load(std::memory_order_acquire);
    if (e1 & 1) break;  // mutator active; don't burn retries
    const bool clean = shard.backend->try_clean_read(line, stats.stored_scratch_,
                                                     stats.data_scratch_);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t e2 = shard.epoch.load(std::memory_order_relaxed);
    if (e1 != e2) continue;  // raced a mutator; the probe result is void
    if (!clean) break;       // genuinely not clean: need the repair path
    data_out = stats.data_scratch_;
    stats.read_fast_->inc();
    return ReadStatus::kClean;
  }

  // Slow path: full controller read (may correct/repair, i.e. mutate).
  MutatorGuard guard(shard);
  ReadReply reply = shard.backend->read(line);
  data_out = std::move(reply.data);
  switch (reply.status) {
    case ReadStatus::kClean: stats.read_clean_->inc(); break;
    case ReadStatus::kCorrected: stats.read_corrected_->inc(); break;
    case ReadStatus::kRepaired: stats.read_repaired_->inc(); break;
    case ReadStatus::kDue: stats.read_due_->inc(); break;
  }
  return reply.status;
}

void MemoryService::write(std::uint64_t addr, const BitVec& data512,
                          ClientStats& stats) {
  BankShard& shard = *shards_[addr % banks()];
  const std::uint64_t line = addr / banks();
  MutatorGuard guard(shard);
  shard.backend->write(line, data512);
  stats.writes_->inc();
}

void MemoryService::inject_faults(std::uint32_t bank, const FaultBatch& batch,
                                  bool scrub_async) {
  BankShard& shard = *shards_[bank];
  {
    MutatorGuard guard(shard);
    shard.backend->inject(batch);
  }
  if (!scrub_async || batch.empty()) return;
  RepairTask task;
  task.bank = bank;
  task.units.reserve(batch.size());
  for (const auto& [unit, bits] : batch) task.units.push_back(unit);
  // FaultBatch is an unordered_map; sort so repair order is deterministic.
  std::sort(task.units.begin(), task.units.end());
  enqueue(std::move(task));
}

void MemoryService::scrub_bank_async(std::uint32_t bank) {
  RepairTask task;
  task.bank = bank;
  task.full_sweep = true;
  enqueue(std::move(task));
}

std::uint64_t MemoryService::scrub_bank_now(std::uint32_t bank) {
  BankShard& shard = *shards_[bank];
  RepairTask task;
  task.bank = bank;
  task.full_sweep = true;
  return execute_scrub(shard, task);
}

std::uint64_t MemoryService::scrub_units_now(
    std::uint32_t bank, std::span<const std::uint64_t> units) {
  BankShard& shard = *shards_[bank];
  RepairTask task;
  task.bank = bank;
  task.units.assign(units.begin(), units.end());
  return execute_scrub(shard, task);
}

std::uint64_t MemoryService::execute_scrub(BankShard& shard,
                                           const RepairTask& task) {
  MutatorGuard guard(shard);
  const std::uint64_t scanned =
      task.full_sweep ? shard.backend->num_units() : task.units.size();
  const std::uint64_t due = task.full_sweep
                                ? shard.backend->scrub_all()
                                : shard.backend->scrub_units(task.units);
  shard.scrub_units->inc(scanned);
  shard.scrub_due->inc(due);
  return due;
}

void MemoryService::enqueue(RepairTask task) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
    const auto depth = queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
    auto prev_max = queue_depth_max_.load(std::memory_order_relaxed);
    while (depth > prev_max && !queue_depth_max_.compare_exchange_weak(
                                   prev_max, depth, std::memory_order_relaxed)) {
    }
  }
  queue_cv_.notify_one();
}

void MemoryService::worker_loop(std::uint32_t worker_index) {
  WorkerState& me = *workers_[worker_index];
  obs::Counter* tasks = me.registry.counter("service.repair.tasks");
  obs::Counter* units_scrubbed = me.registry.counter("service.repair.units_scrubbed");
  obs::Counter* due_units = me.registry.counter("service.repair.due_units");
  // Power-of-two depth buckets: the depth distribution spans orders of
  // magnitude under bursty injection.
  obs::Histogram* depth_hist = me.registry.histogram(
      "service.repair.queue_depth", {1, 2, 4, 8, 16, 32, 64, 128, 256});

  for (;;) {
    RepairTask task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      depth_hist->observe(static_cast<double>(queue_.size()));
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      ++active_tasks_;
    }

    BankShard& shard = *shards_[task.bank];
    const std::uint64_t scanned =
        task.full_sweep ? shard.backend->num_units() : task.units.size();
    const std::uint64_t due = execute_scrub(shard, task);
    tasks->inc();
    units_scrubbed->inc(scanned);
    due_units->inc(due);

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) drain_cv_.notify_all();
    }
  }
}

void MemoryService::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && active_tasks_ == 0; });
}

void MemoryService::merge_metrics_into(obs::MetricsRegistry& out) const {
  for (const auto& shard : shards_) out += shard->registry;
  for (const auto& worker : workers_) out += worker->registry;
}

}  // namespace sudoku::service
