#include "service/load_gen.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exp/seed_stream.h"
#include "sim/workload.h"
#include "sttram/fault_injector.h"

namespace sudoku::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Log-2 latency buckets, 64 ns .. 64 ms. Reads land in the low decades;
// the wide top catches repair-stalled outliers without losing them to a
// single overflow bucket.
std::vector<double> latency_edges_ns() {
  std::vector<double> edges;
  for (double e = 64.0; e <= 67108864.0; e *= 2.0) edges.push_back(e);
  return edges;
}

struct ClientResult {
  ClientStats stats;
  obs::Histogram* latency = nullptr;  // lives in stats.registry()
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t due_reads = 0;
};

struct Mix {
  double write_frac;
  double hot_frac;
  std::uint64_t hot_lines;  // leading hot region, in global lines
};

void client_loop(MemoryService& service, const LoadConfig& config,
                 const Mix& mix, std::uint32_t index, std::uint64_t rng_seed,
                 Clock::time_point start, Clock::time_point deadline,
                 ClientResult& out) {
  Rng rng(rng_seed);
  const std::uint64_t num_lines = service.num_lines();
  BitVec data(512);
  BitVec read_buf;

  // Open-loop arrival schedule: exponential gaps at the per-client rate.
  const double client_rate =
      config.open_loop_rate / static_cast<double>(config.clients);
  double next_arrival_s = 0.0;

  for (std::uint64_t op = 0;; ++op) {
    if (config.ops_per_client != 0 && op >= config.ops_per_client) break;

    Clock::time_point issue = Clock::now();
    if (config.open_loop) {
      next_arrival_s += rng.next_exponential(client_rate);
      const auto arrival =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(next_arrival_s));
      if (arrival > deadline) break;
      while (Clock::now() < arrival) {
        std::this_thread::yield();
      }
      issue = arrival;  // latency counts queueing behind schedule
    } else if (config.ops_per_client == 0 && Clock::now() >= deadline) {
      break;
    }

    std::uint64_t addr;
    if (mix.hot_lines > 0 && rng.next_bool(mix.hot_frac)) {
      addr = rng.next_below(mix.hot_lines);
    } else {
      addr = rng.next_below(num_lines);
    }

    if (rng.next_bool(mix.write_frac)) {
      // Cheap distinct payload; correctness of payloads is the stress
      // test's job, the load gen only needs realistic write cost.
      data.set_bits(0, 64, (static_cast<std::uint64_t>(index) << 48) ^ op);
      service.write(addr, data, out.stats);
      ++out.writes;
    } else {
      const ReadStatus status = service.read(addr, out.stats, read_buf);
      const auto done = Clock::now();
      out.latency->observe(seconds_between(issue, done) * 1e9);
      if (status == ReadStatus::kDue) ++out.due_reads;
      ++out.reads;
    }
    ++out.ops;
  }
}

void injector_loop(MemoryService& service, const LoadConfig& config,
                   std::uint64_t rng_seed, Clock::time_point deadline,
                   const std::atomic<bool>& stop) {
  Rng rng(rng_seed);
  std::vector<FaultInjector> injectors;
  injectors.reserve(service.banks());
  for (std::uint32_t bank = 0; bank < service.banks(); ++bank) {
    Backend& backend = service.backend(bank);
    injectors.emplace_back(backend.num_units(), backend.bits_per_unit(),
                           config.ber_per_interval);
  }
  const auto interval = std::chrono::milliseconds(config.inject_interval_ms);
  auto next = Clock::now() + interval;
  while (!stop.load(std::memory_order_relaxed) && Clock::now() < deadline) {
    if (Clock::now() < next) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    next += interval;
    for (std::uint32_t bank = 0; bank < service.banks(); ++bank) {
      const FaultBatch batch = injectors[bank].sample_interval(rng);
      service.inject_faults(bank, batch, /*scrub_async=*/true);
    }
  }
}

}  // namespace

LoadReport run_load(MemoryService& service, const LoadConfig& config) {
  Mix mix{config.write_frac, config.hot_frac,
          static_cast<std::uint64_t>(config.hot_lines_frac *
                                     static_cast<double>(service.num_lines()))};
  if (!config.profile.empty()) {
    const sim::BenchmarkProfile& p = sim::find_benchmark(config.profile);
    mix.write_frac = p.write_frac;
    mix.hot_frac = p.hot_frac;
    mix.hot_lines = static_cast<std::uint64_t>(
        p.hot_lines_frac * static_cast<double>(service.num_lines()));
  }

  const exp::SeedSequence seeds(config.seed);
  const auto edges = latency_edges_ns();
  std::vector<ClientResult> results(config.clients);
  for (auto& r : results) {
    r.latency = r.stats.registry().histogram("service.read.latency_ns", edges);
  }

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(config.duration_ms);

  std::atomic<bool> stop_injector{false};
  std::thread injector;
  if (config.ber_per_interval > 0.0 && config.inject_interval_ms > 0) {
    injector = std::thread([&] {
      injector_loop(service, config, seeds.stream(config.clients), deadline,
                    stop_injector);
    });
  }

  std::vector<std::thread> clients;
  clients.reserve(config.clients);
  for (std::uint32_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      client_loop(service, config, mix, c, seeds.stream(c), start, deadline,
                  results[c]);
    });
  }
  for (auto& t : clients) t.join();
  const auto end = Clock::now();

  stop_injector.store(true, std::memory_order_relaxed);
  if (injector.joinable()) injector.join();
  service.drain();

  LoadReport report;
  report.wall_seconds = seconds_between(start, end);
  obs::Histogram merged_latency(edges);
  for (auto& r : results) {
    report.ops += r.ops;
    report.reads += r.reads;
    report.writes += r.writes;
    report.due_reads += r.due_reads;
    merged_latency += *r.latency;
    report.metrics += r.stats.registry();
  }
  service.merge_metrics_into(report.metrics);
  report.qps = report.wall_seconds > 0.0
                   ? static_cast<double>(report.ops) / report.wall_seconds
                   : 0.0;
  report.read_latency_ns = merged_latency.summary();
  report.queue_depth_max = service.queue_depth_max();
  return report;
}

}  // namespace sudoku::service
