// Time-sliced scrub engine (paper §II-D, §VII-E). A real controller cannot
// scrub 1M lines instantaneously: the sweep is spread across the scrub
// interval in per-slice chunks so that each line is visited exactly once
// per interval while consuming a bounded fraction of cache bandwidth.
//
// This module provides:
//  * the bandwidth/overhead accounting the paper quotes ("scrubbed while
//    incurring an overhead of not more than a few percent"),
//  * a continuous-time Monte-Carlo mode: faults accumulate as a Poisson
//    process and each line's exposure window is the time since *its* last
//    scrub visit (not a global barrier) — strictly more faithful than the
//    interval-batched harness, and used to validate that the batched
//    approximation does not distort the failure rates.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "obs/metrics.h"
#include "sudoku/controller.h"

namespace sudoku {

struct ScrubSchedule {
  double interval_s = 0.02;       // full-sweep period
  double line_read_ns = 9.0;      // STTRAM read (Table VI)
  double line_write_ns = 18.0;    // rewrite on correction
  std::uint32_t banks = 16;

  // Fraction of total cache-bank time consumed by the sweep (reads only;
  // corrected lines add a write each, accounted separately).
  double bandwidth_fraction(std::uint64_t num_lines) const {
    const double per_bank_lines = static_cast<double>(num_lines) / banks;
    return per_bank_lines * line_read_ns / (interval_s * 1e9);
  }
};

struct ContinuousScrubStats {
  std::uint64_t sweeps = 0;
  std::uint64_t lines_scrubbed = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t ecc1_corrections = 0;
  std::uint64_t raid4_repairs = 0;
  std::uint64_t sdr_repairs = 0;
  std::uint64_t due_lines = 0;
  double simulated_seconds = 0.0;

  double due_rate_per_second() const {
    return simulated_seconds > 0 ? static_cast<double>(due_lines) / simulated_seconds : 0.0;
  }
};

// Continuous-time scrub simulation: the sweep advances in `slices_per_
// interval` chunks; before each chunk, faults that arrived during the
// elapsed wall time (Poisson with the given per-second per-bit rate) are
// injected. Lines therefore carry anywhere between 0 and a full interval
// of exposure when visited — exactly the paper's operating regime.
//
// When `metrics` is non-null the sweep records its own observability
// series there (scrub.sweeps, scrub.lines_scrubbed, scrub.faults_injected,
// scrub.corrections, the scrub.bandwidth_fraction gauge, the
// scrub.slice_faults burst histogram and scrub.sweep_wall_ns timings); the
// controller's sudoku.* instruments are attached separately via
// SudokuController::attach_metrics.
ContinuousScrubStats run_continuous_scrub(SudokuController& ctrl,
                                          const ScrubSchedule& schedule,
                                          double fault_rate_per_bit_s,
                                          std::uint32_t slices_per_interval,
                                          std::uint32_t num_intervals, Rng& rng,
                                          obs::MetricsRegistry* metrics = nullptr);

}  // namespace sudoku
