// Storage-overhead accounting (paper §VII-H, Table XII, §II-D). Breaks
// down the per-line cost of each scheme into detection, correction and
// amortised parity bits, and computes SRAM-vs-STTRAM placement totals —
// the numbers behind the paper's "43 vs 60 bits per line, 30% less than
// ECC-6, PLTs fit in 256 KB of SRAM" claims.
#pragma once

#include <cstdint>

namespace sudoku {

struct StorageBreakdown {
  double crc_bits = 0;              // per line, detection
  double ecc_bits = 0;              // per line, local correction
  double parity_bits_amortized = 0; // per line, RAID parity share
  double sram_bytes_total = 0;      // dedicated SRAM beside the cache

  double overhead_bits_per_line() const {
    return crc_bits + ecc_bits + parity_bits_amortized;
  }
  double overhead_fraction() const { return overhead_bits_per_line() / 512.0; }
};

// SuDoku with `num_plts` parity tables (X/Y: 1, Z: 2) over `group_size`
// lines, inner code strength t.
StorageBreakdown sudoku_storage(std::uint64_t num_lines, std::uint32_t group_size,
                                std::uint32_t num_plts, int inner_t = 1);

// Uniform per-line ECC-k (10·k check bits).
StorageBreakdown ecc_k_storage(int k);

// Hi-ECC: ECC-t over 1 KB regions (14·t bits per 16 lines).
StorageBreakdown hi_ecc_storage(int t = 6);

// CPPC with SuDoku-grade per-line resources + one global parity line.
StorageBreakdown cppc_storage(std::uint64_t num_lines);

// RAID-6: per-line resources + two parity lines per group.
StorageBreakdown raid6_storage(std::uint32_t group_size);

}  // namespace sudoku
