// The SuDoku cache-resilience controller (paper §III–§V). Owns the stored
// STTRAM line array and the SRAM Parity Line Table(s), and implements the
// three protection levels:
//
//   SuDoku-X : per-line ECC-1 + CRC-31 fast path; RAID-4 reconstruction of
//              a single multi-bit-faulty line per RAID-Group.
//   SuDoku-Y : + Sequential Data Resurrection (SDR) — use parity-mismatch
//              positions to flip-and-try, turning 2-fault lines back into
//              ECC-1-correctable ones; finish the last faulty line with
//              RAID-4.
//   SuDoku-Z : + skewed hashing — every line belongs to a second, disjoint
//              RAID-Group; lines unrepairable under Hash-1 are retried
//              under Hash-2, iterating to a fixed point.
//
// The controller exposes host read/write (with PLT delta maintenance) and
// a scrub entry point used by the Monte-Carlo reliability harness and the
// timing simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "raid/geometry.h"
#include "raid/parity_table.h"
#include "sttram/array.h"
#include "sudoku/line_codec.h"

namespace sudoku {

enum class SudokuLevel { kX, kY, kZ };

const char* to_string(SudokuLevel level);

struct SudokuConfig {
  RaidGeometry geo;
  SudokuLevel level = SudokuLevel::kZ;
  // Paper §IV-C: SDR is not attempted beyond this many parity mismatches.
  // 0 = auto: 3·(inner_ecc_t + 1), i.e. the paper's six for ECC-1.
  std::uint32_t max_sdr_mismatches = 0;
  // §VII-G enhancement: strength of the per-line inner code (1 = the
  // paper's ECC-1 default; 2 lets SDR resurrect 3-fault lines, etc.).
  int inner_ecc_t = 1;

  std::uint32_t sdr_mismatch_cap() const {
    return max_sdr_mismatches != 0
               ? max_sdr_mismatches
               : 3u * (static_cast<std::uint32_t>(inner_ecc_t) + 1);
  }
};

struct ScrubStats {
  std::uint64_t lines_scanned = 0;
  std::uint64_t lines_clean = 0;
  std::uint64_t ecc1_corrections = 0;    // single-bit repairs
  std::uint64_t raid4_repairs = 0;       // whole-line reconstructions
  std::uint64_t sdr_repairs = 0;         // flip-and-try resurrections
  std::uint64_t hash2_invocations = 0;   // times a Hash-2 group was tried
  std::uint64_t groups_repaired = 0;     // groups needing RAID machinery
  std::uint64_t due_lines = 0;           // declared uncorrectable
  std::vector<std::uint64_t> due_line_ids;
  // Every line a repair wrote back (ECC-1 corrections, RAID-4 victims, SDR
  // resurrections), in repair order, possibly with duplicates. The service
  // layer's retirement policy consumes this: a line that keeps showing up
  // here is a repair that did not stick, i.e. a suspected permanent fault.
  std::vector<std::uint64_t> repaired_line_ids;

  ScrubStats& operator+=(const ScrubStats& o);
};

class SudokuController {
 public:
  explicit SudokuController(const SudokuConfig& config);

  const SudokuConfig& config() const { return config_; }
  const LineCodec& codec() const { return codec_; }
  SttramArray& array() { return array_; }
  const SttramArray& array() const { return array_; }
  const SkewedHash& hash() const { return hash_; }

  // ---- initialisation ----
  // Fill every line with encoded data produced by `make_data(line)` and
  // rebuild all parity tables.
  void format(const std::function<BitVec(std::uint64_t)>& make_data);
  void format_zero();
  void format_random(Rng& rng);

  // ---- host operations ----
  // Write 512 data bits; performs the two read-modify-writes of §III-B
  // (line + PLT delta; SuDoku-Z also updates the second PLT).
  void write_data(std::uint64_t line, const BitVec& data);

  enum class ReadOutcome {
    kClean,       // CRC/ECC consistent on arrival
    kCorrected,   // ECC-1 fixed it inline
    kRepaired,    // needed RAID-4 / SDR / Hash-2 machinery
    kDue,         // detectable uncorrectable error: data lost
  };
  struct ReadResult {
    BitVec data;
    ReadOutcome outcome = ReadOutcome::kClean;
  };
  ReadResult read_data(std::uint64_t line);

  // ---- scrubbing ----
  // Scrub only the given lines (sparse mode for fault-injection: untouched
  // lines cannot have become inconsistent). Lines are de-duplicated by
  // RAID-Group internally.
  ScrubStats scrub_lines(std::span<const std::uint64_t> lines);
  ScrubStats scrub_all();

  // ---- observability ----
  // Attach a metrics registry (nullptr detaches). The controller caches
  // instrument handles once, so instrumented hot paths cost a single
  // well-predicted branch each — and nothing at all when the build
  // disables observability (see obs/macros.h). Counters recorded:
  //   sudoku.read.{clean,corrected,repaired,due}     per read_data outcome
  //   sudoku.scrub.{lines_scanned,lines_clean}       scrub sweep volume
  //   sudoku.repair.{ecc1,raid4,sdr,hash2,groups,due_lines,sdr_attempts}
  //   sudoku.sdr.case{1,2,3}      Fig. 3 breakdown: #faulty lines in group
  //   sudoku.sdr.mismatch_bits    histogram of parity-mismatch popcounts
  void attach_metrics(obs::MetricsRegistry* registry);

  // Parity storage cost in bits across all PLTs (§VII-H).
  std::uint64_t plt_storage_bits() const;

  // Recompute the parity lines covering the given data lines from stored
  // state (both hashes). For harnesses that bypass write_data and mutate
  // the array directly — the scenario MC loop restores lines to golden
  // this way — so parity is consistent again before the next interval.
  void rebuild_parities_for(std::span<const std::uint64_t> lines);

  // Verify PLT consistency against the stored array (test hook; O(cache)).
  bool parities_consistent() const;

 private:
  SudokuConfig config_;
  LineCodec codec_;
  SttramArray array_;
  SkewedHash hash_;
  ParityTable plt1_;
  std::optional<ParityTable> plt2_;  // only for SuDoku-Z

  // Cached instrument handles; all null when no registry is attached.
  struct Instruments {
    obs::Counter* read_clean = nullptr;
    obs::Counter* read_corrected = nullptr;
    obs::Counter* read_repaired = nullptr;
    obs::Counter* read_due = nullptr;
    obs::Counter* scrub_lines_scanned = nullptr;
    obs::Counter* scrub_lines_clean = nullptr;
    obs::Counter* repair_ecc1 = nullptr;
    obs::Counter* repair_raid4 = nullptr;
    obs::Counter* repair_sdr = nullptr;
    obs::Counter* repair_sdr_attempts = nullptr;
    obs::Counter* repair_hash2 = nullptr;
    obs::Counter* repair_groups = nullptr;
    obs::Counter* repair_due_lines = nullptr;
    obs::Counter* sdr_case1 = nullptr;
    obs::Counter* sdr_case2 = nullptr;
    obs::Counter* sdr_case3 = nullptr;
    obs::Histogram* sdr_mismatch_bits = nullptr;
  };
  Instruments obs_;

  std::vector<std::uint64_t> group_members(std::uint64_t group, int which_hash) const;
  ParityTable& plt(int which_hash);
  const ParityTable& plt(int which_hash) const;

  // Run the X/Y repair pipeline on one RAID-Group under the given hash.
  // Single-bit lines are fixed and written back; then RAID-4 (one faulty
  // line) or SDR (several) is attempted. Returns lines still uncorrectable.
  std::vector<std::uint64_t> repair_group(std::uint64_t group, int which_hash,
                                          ScrubStats& stats);

  // Reconstruct `victim` from the other members + parity; returns true and
  // writes the line back when the reconstruction validates.
  bool raid4_reconstruct(std::uint64_t group, int which_hash, std::uint64_t victim,
                         ScrubStats& stats);

  // SuDoku-Z: fixed-point iteration between Hash-1 and Hash-2 groups.
  std::vector<std::uint64_t> repair_group_skewed(std::uint64_t group1, ScrubStats& stats);

  void rebuild_parities();
};

}  // namespace sudoku
