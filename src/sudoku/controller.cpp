#include "sudoku/controller.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "obs/macros.h"

namespace sudoku {

const char* to_string(SudokuLevel level) {
  switch (level) {
    case SudokuLevel::kX: return "SuDoku-X";
    case SudokuLevel::kY: return "SuDoku-Y";
    case SudokuLevel::kZ: return "SuDoku-Z";
  }
  return "?";
}

ScrubStats& ScrubStats::operator+=(const ScrubStats& o) {
  lines_scanned += o.lines_scanned;
  lines_clean += o.lines_clean;
  ecc1_corrections += o.ecc1_corrections;
  raid4_repairs += o.raid4_repairs;
  sdr_repairs += o.sdr_repairs;
  hash2_invocations += o.hash2_invocations;
  groups_repaired += o.groups_repaired;
  due_lines += o.due_lines;
  due_line_ids.insert(due_line_ids.end(), o.due_line_ids.begin(), o.due_line_ids.end());
  repaired_line_ids.insert(repaired_line_ids.end(), o.repaired_line_ids.begin(),
                           o.repaired_line_ids.end());
  return *this;
}

SudokuController::SudokuController(const SudokuConfig& config)
    : config_(config),
      codec_(config.inner_ecc_t),
      array_(config.geo.num_lines, LineCodec::kDataBits + LineCodec::kCrcBits + 10),
      hash_(config.geo),
      plt1_(config.geo.num_groups(), 0) {
  // Geometry violations are programming errors but must fail loudly even
  // in release builds — an invalid skewed hash silently corrupts memory.
  if (!config_.geo.valid()) {
    std::fprintf(stderr,
                 "SudokuController: invalid geometry (lines=%llu group=%u); "
                 "both must be powers of two with lines >= group\n",
                 static_cast<unsigned long long>(config_.geo.num_lines),
                 config_.geo.group_size);
    std::abort();
  }
  if (config_.level == SudokuLevel::kZ && !config_.geo.supports_skewed_hash()) {
    std::fprintf(stderr,
                 "SudokuController: SuDoku-Z needs num_lines >= group_size^2 "
                 "(lines=%llu group=%u) for disjoint Hash-2 groups\n",
                 static_cast<unsigned long long>(config_.geo.num_lines),
                 config_.geo.group_size);
    std::abort();
  }
  // Re-create structures with the codec's real total width (the 10 above is
  // a placeholder; the inner-code width depends on its strength).
  const std::uint32_t width = codec_.total_bits();
  array_ = SttramArray(config_.geo.num_lines, width);
  plt1_ = ParityTable(config_.geo.num_groups(), width);
  if (config_.level == SudokuLevel::kZ) {
    plt2_.emplace(config_.geo.num_groups(), width);
  }
}

void SudokuController::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_ = Instruments{};
    return;
  }
  obs_.read_clean = registry->counter("sudoku.read.clean");
  obs_.read_corrected = registry->counter("sudoku.read.corrected");
  obs_.read_repaired = registry->counter("sudoku.read.repaired");
  obs_.read_due = registry->counter("sudoku.read.due");
  obs_.scrub_lines_scanned = registry->counter("sudoku.scrub.lines_scanned");
  obs_.scrub_lines_clean = registry->counter("sudoku.scrub.lines_clean");
  obs_.repair_ecc1 = registry->counter("sudoku.repair.ecc1");
  obs_.repair_raid4 = registry->counter("sudoku.repair.raid4");
  obs_.repair_sdr = registry->counter("sudoku.repair.sdr");
  obs_.repair_sdr_attempts = registry->counter("sudoku.repair.sdr_attempts");
  obs_.repair_hash2 = registry->counter("sudoku.repair.hash2");
  obs_.repair_groups = registry->counter("sudoku.repair.groups");
  obs_.repair_due_lines = registry->counter("sudoku.repair.due_lines");
  obs_.sdr_case1 = registry->counter("sudoku.sdr.case1");
  obs_.sdr_case2 = registry->counter("sudoku.sdr.case2");
  obs_.sdr_case3 = registry->counter("sudoku.sdr.case3");
  obs_.sdr_mismatch_bits = registry->histogram(
      "sudoku.sdr.mismatch_bits", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
}

ParityTable& SudokuController::plt(int which_hash) {
  return which_hash == 1 ? plt1_ : *plt2_;
}
const ParityTable& SudokuController::plt(int which_hash) const {
  return which_hash == 1 ? plt1_ : *plt2_;
}

std::vector<std::uint64_t> SudokuController::group_members(std::uint64_t group,
                                                           int which_hash) const {
  return which_hash == 1 ? hash_.members1(group) : hash_.members2(group);
}

void SudokuController::format(const std::function<BitVec(std::uint64_t)>& make_data) {
  for (std::uint64_t line = 0; line < config_.geo.num_lines; ++line) {
    array_.write_line(line, codec_.encode(make_data(line)));
  }
  rebuild_parities();
}

void SudokuController::format_zero() {
  format([](std::uint64_t) { return BitVec(LineCodec::kDataBits); });
}

void SudokuController::format_random(Rng& rng) {
  format([&rng](std::uint64_t) {
    BitVec data(LineCodec::kDataBits);
    auto words = data.words();
    for (auto& w : words) w = rng.next_u64();
    return data;
  });
}

void SudokuController::rebuild_parities() {
  const std::uint32_t width = codec_.total_bits();
  BitVec acc(width);
  for (std::uint64_t g = 0; g < config_.geo.num_groups(); ++g) {
    acc.clear();
    for (const auto line : hash_.members1(g)) array_.xor_line_into(line, acc);
    plt1_.write(g, acc);
  }
  if (plt2_) {
    for (std::uint64_t g = 0; g < config_.geo.num_groups(); ++g) {
      acc.clear();
      for (const auto line : hash_.members2(g)) array_.xor_line_into(line, acc);
      plt2_->write(g, acc);
    }
  }
}

void SudokuController::write_data(std::uint64_t line, const BitVec& data) {
  // First read-modify-write: the data line. The old value participates in
  // the parity delta, so it must be a consistent codeword — correct it
  // first; if it is beyond ECC-1, run the group repair machinery.
  BitVec old = array_.read_line(line);
  if (codec_.check_and_correct(old) == LineCodec::LineState::kUncorrectable) {
    ScrubStats scratch;
    if (config_.level == SudokuLevel::kZ) {
      repair_group_skewed(hash_.group1(line), scratch);
    } else {
      repair_group(hash_.group1(line), 1, scratch);
    }
    old = array_.read_line(line);
    // If the old line is still broken its data is already lost; the write
    // overwrites it, and we must resynchronise parity the hard way below.
  }
  const BitVec fresh = codec_.encode(data);
  const bool old_consistent = codec_.fully_clean(old);
  array_.write_line(line, fresh);
  if (old_consistent) {
    // Second read-modify-write: PLT delta update (paper §III-B).
    BitVec delta = old;
    delta ^= fresh;
    plt1_.apply_delta(hash_.group1(line), delta);
    if (plt2_) plt2_->apply_delta(hash_.group2(line), delta);
  } else {
    // Rare fallback: rebuild the parities of the affected groups from the
    // stored lines.
    const std::uint32_t width = codec_.total_bits();
    BitVec acc(width);
    for (const auto l : hash_.members1(hash_.group1(line))) array_.xor_line_into(l, acc);
    plt1_.write(hash_.group1(line), acc);
    if (plt2_) {
      acc.clear();
      for (const auto l : hash_.members2(hash_.group2(line))) array_.xor_line_into(l, acc);
      plt2_->write(hash_.group2(line), acc);
    }
  }
}

SudokuController::ReadResult SudokuController::read_data(std::uint64_t line) {
  BitVec stored = array_.read_line(line);
  switch (codec_.check_and_correct(stored)) {
    case LineCodec::LineState::kClean:
      OBS_INC(obs_.read_clean);
      return {codec_.extract_data(stored), ReadOutcome::kClean};
    case LineCodec::LineState::kCorrected:
      array_.write_line(line, stored);  // scrub-on-read of the fixed bit
      OBS_INC(obs_.read_corrected);
      return {codec_.extract_data(stored), ReadOutcome::kCorrected};
    case LineCodec::LineState::kUncorrectable:
      break;
  }
  ScrubStats scratch;
  std::vector<std::uint64_t> losers;
  if (config_.level == SudokuLevel::kZ) {
    losers = repair_group_skewed(hash_.group1(line), scratch);
  } else {
    losers = repair_group(hash_.group1(line), 1, scratch);
  }
  if (std::find(losers.begin(), losers.end(), line) != losers.end()) {
    OBS_INC(obs_.read_due);
    return {BitVec(LineCodec::kDataBits), ReadOutcome::kDue};
  }
  stored = array_.read_line(line);
  OBS_INC(obs_.read_repaired);
  return {codec_.extract_data(stored), ReadOutcome::kRepaired};
}

bool SudokuController::raid4_reconstruct(std::uint64_t group, int which_hash,
                                         std::uint64_t victim, ScrubStats& stats) {
  // Effective parity over everything except the victim equals the victim's
  // fault-free codeword — provided all other members are consistent.
  BitVec acc = plt(which_hash).read(group);
  for (const auto line : group_members(group, which_hash)) {
    if (line != victim) array_.xor_line_into(line, acc);
  }
  if (!codec_.fully_clean(acc)) return false;
  array_.write_line(victim, acc);
  ++stats.raid4_repairs;
  stats.repaired_line_ids.push_back(victim);
  OBS_INC(obs_.repair_raid4);
  return true;
}

std::vector<std::uint64_t> SudokuController::repair_group(std::uint64_t group,
                                                          int which_hash,
                                                          ScrubStats& stats) {
  const auto members = group_members(group, which_hash);

  // Pass 1 (paper §III-C): fix every single-bit line with ECC-1.
  std::vector<std::uint64_t> bad;
  BitVec stored(codec_.total_bits());
  for (const auto line : members) {
    array_.read_line(line, stored);
    switch (codec_.check_and_correct(stored)) {
      case LineCodec::LineState::kClean:
        break;
      case LineCodec::LineState::kCorrected:
        array_.write_line(line, stored);
        ++stats.ecc1_corrections;
        stats.repaired_line_ids.push_back(line);
        OBS_INC(obs_.repair_ecc1);
        break;
      case LineCodec::LineState::kUncorrectable:
        bad.push_back(line);
        break;
    }
  }
  if (bad.empty()) return bad;
  ++stats.groups_repaired;
  OBS_INC(obs_.repair_groups);
  // Fig. 3 case breakdown by the number of multi-bit-faulty lines left in
  // the group: 1 = plain RAID-4 erasure (case 1), 2 = the SDR pair
  // scenario (case 2), 3+ = the hard multi-line pile-up (case 3).
  OBS_INC(bad.size() == 1   ? obs_.sdr_case1
          : bad.size() == 2 ? obs_.sdr_case2
                            : obs_.sdr_case3);

  if (bad.size() == 1) {
    if (raid4_reconstruct(group, which_hash, bad[0], stats)) bad.clear();
    return bad;
  }

  // Several multi-bit lines. SuDoku-X stops here.
  if (config_.level == SudokuLevel::kX) return bad;

  // SuDoku-Y: Sequential Data Resurrection (paper §IV). The parity
  // mismatch positions are candidate faulty-bit locations; flipping one of
  // a 2-fault line's bits makes the remainder ECC-1-correctable.
  bool progress = true;
  while (progress && bad.size() >= 2) {
    progress = false;

    BitVec mismatch = plt(which_hash).read(group);
    for (const auto line : members) array_.xor_line_into(line, mismatch);
    const std::uint32_t cap = config_.sdr_mismatch_cap();
    const auto positions = mismatch.set_positions(cap + 1);
    if (positions.empty() || positions.size() > cap) break;
    OBS_OBSERVE(obs_.sdr_mismatch_bits, positions.size());

    for (auto it = bad.begin(); it != bad.end() && !progress; ++it) {
      BitVec trial(codec_.total_bits());
      for (const auto pos : positions) {
        array_.read_line(*it, trial);
        trial.flip(pos);
        OBS_INC(obs_.repair_sdr_attempts);
        if (codec_.check_and_correct(trial) != LineCodec::LineState::kUncorrectable &&
            codec_.fully_clean(trial)) {
          array_.write_line(*it, trial);
          ++stats.sdr_repairs;
          stats.repaired_line_ids.push_back(*it);
          OBS_INC(obs_.repair_sdr);
          bad.erase(it);
          progress = true;  // mismatch positions changed; recompute
          break;
        }
      }
    }
  }
  if (bad.size() == 1) {
    if (raid4_reconstruct(group, which_hash, bad[0], stats)) bad.clear();
  }
  return bad;
}

std::vector<std::uint64_t> SudokuController::repair_group_skewed(std::uint64_t group1,
                                                                 ScrubStats& stats) {
  auto bad = repair_group(group1, 1, stats);
  while (!bad.empty()) {
    // Try every surviving line under its Hash-2 group (paper §V-B). Any
    // line repaired there shrinks the Hash-1 problem; iterate to a fixed
    // point, since even one success can unlock RAID-4 for the remainder.
    bool progress = false;
    for (const auto line : bad) {
      ++stats.hash2_invocations;
      OBS_INC(obs_.repair_hash2);
      const auto left = repair_group(hash_.group2(line), 2, stats);
      if (std::find(left.begin(), left.end(), line) == left.end()) progress = true;
    }
    if (!progress) break;
    bad = repair_group(group1, 1, stats);
  }
  return bad;
}

ScrubStats SudokuController::scrub_lines(std::span<const std::uint64_t> lines) {
  ScrubStats stats;
  stats.lines_scanned = lines.size();
  OBS_ADD(obs_.scrub_lines_scanned, lines.size());

  // Fast path, batched (the BatchCodec engine, docs/perf.md): transpose
  // up to 64 lines at a time and clean-check them bit-sliced; only
  // inconsistent lines — rare at realistic BERs — take the per-line
  // correction path, in input order, so outcomes are bit-identical to the
  // old per-line sweep. Sub-break-even tails (and short dirty-line slices
  // from the continuous scrubber) skip the transpose entirely. Groups
  // that still contain an uncorrectable line go through the RAID
  // machinery once each.
  std::unordered_set<std::uint64_t> pending_groups;
  const auto correct_line = [&](std::uint64_t line, BitVec& stored) {
    switch (codec_.correct_inconsistent(stored)) {
      case LineCodec::LineState::kClean:  // unreachable: line is dirty
      case LineCodec::LineState::kCorrected:
        array_.write_line(line, stored);
        ++stats.ecc1_corrections;
        stats.repaired_line_ids.push_back(line);
        OBS_INC(obs_.repair_ecc1);
        break;
      case LineCodec::LineState::kUncorrectable:
        pending_groups.insert(hash_.group1(line));
        break;
    }
  };
  BitVec stored(codec_.total_bits());
  std::vector<BitVec> batch;
  BitPlanes planes;
  for (std::size_t base = 0; base < lines.size(); base += BitPlanes::kMaxLines) {
    const std::size_t count =
        std::min<std::size_t>(BitPlanes::kMaxLines, lines.size() - base);
    if (count < LineCodec::kMinBatchLines) {
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t line = lines[base + i];
        array_.read_line(line, stored);
        if (codec_.fully_clean(stored)) {
          ++stats.lines_clean;
          OBS_INC(obs_.scrub_lines_clean);
        } else {
          correct_line(line, stored);
        }
      }
      continue;
    }
    if (batch.size() < count) batch.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      array_.read_line(lines[base + i], batch[i]);
    }
    const std::uint64_t clean =
        codec_.fully_clean_batch({batch.data(), count}, planes);
    for (std::size_t i = 0; i < count; ++i) {
      if ((clean >> i) & 1u) {
        ++stats.lines_clean;
        OBS_INC(obs_.scrub_lines_clean);
      } else {
        correct_line(lines[base + i], batch[i]);
      }
    }
  }

  // Repair pending groups to a *global* fixed point: a line fixed through
  // its Hash-2 group may unblock another pending Hash-1 group (and vice
  // versa), so keep retrying failing groups while any pass makes progress.
  std::unordered_map<std::uint64_t, std::size_t> failing;  // group -> #losers
  for (const auto g : pending_groups) failing.emplace(g, SIZE_MAX);
  bool progress = true;
  while (progress && !failing.empty()) {
    progress = false;
    for (auto it = failing.begin(); it != failing.end();) {
      std::vector<std::uint64_t> losers;
      if (config_.level == SudokuLevel::kZ) {
        losers = repair_group_skewed(it->first, stats);
      } else {
        losers = repair_group(it->first, 1, stats);
      }
      if (losers.empty()) {
        it = failing.erase(it);
        progress = true;
      } else {
        if (losers.size() < it->second) progress = true;
        it->second = losers.size();
        ++it;
      }
    }
  }
  // Whatever still fails is a detectable uncorrectable error.
  for (const auto& [g, count] : failing) {
    std::vector<std::uint64_t> losers;
    if (config_.level == SudokuLevel::kZ) {
      losers = repair_group_skewed(g, stats);
    } else {
      losers = repair_group(g, 1, stats);
    }
    for (const auto l : losers) {
      ++stats.due_lines;
      OBS_INC(obs_.repair_due_lines);
      stats.due_line_ids.push_back(l);
    }
  }
  return stats;
}

ScrubStats SudokuController::scrub_all() {
  std::vector<std::uint64_t> all(config_.geo.num_lines);
  for (std::uint64_t i = 0; i < all.size(); ++i) all[i] = i;
  return scrub_lines(all);
}

std::uint64_t SudokuController::plt_storage_bits() const {
  return plt1_.storage_bits() + (plt2_ ? plt2_->storage_bits() : 0);
}

void SudokuController::rebuild_parities_for(std::span<const std::uint64_t> lines) {
  std::vector<std::uint64_t> g1, g2;
  g1.reserve(lines.size());
  for (const auto line : lines) {
    g1.push_back(hash_.group1(line));
    if (plt2_) g2.push_back(hash_.group2(line));
  }
  const auto dedup = [](std::vector<std::uint64_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(g1);
  dedup(g2);
  BitVec acc(codec_.total_bits());
  for (const auto g : g1) {
    acc.clear();
    for (const auto line : hash_.members1(g)) array_.xor_line_into(line, acc);
    plt1_.write(g, acc);
  }
  for (const auto g : g2) {
    acc.clear();
    for (const auto line : hash_.members2(g)) array_.xor_line_into(line, acc);
    plt2_->write(g, acc);
  }
}

bool SudokuController::parities_consistent() const {
  BitVec acc(codec_.total_bits());
  for (std::uint64_t g = 0; g < config_.geo.num_groups(); ++g) {
    acc.clear();
    for (const auto line : hash_.members1(g)) array_.xor_line_into(line, acc);
    plt1_.xor_into(g, acc);
    if (acc.any()) return false;
  }
  if (plt2_) {
    for (std::uint64_t g = 0; g < config_.geo.num_groups(); ++g) {
      acc.clear();
      for (const auto line : hash_.members2(g)) array_.xor_line_into(line, acc);
      plt2_->xor_into(g, acc);
      if (acc.any()) return false;
    }
  }
  return true;
}

}  // namespace sudoku
