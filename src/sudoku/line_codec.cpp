#include "sudoku/line_codec.h"

#include <cassert>

namespace sudoku {

LineCodec::LineCodec(int inner_ecc_t) : inner_t_(inner_ecc_t), crc_() {
  assert(inner_ecc_t >= 1 && inner_ecc_t <= 6);
  if (inner_ecc_t == 1) {
    hamming_.emplace(kMessageBits);
  } else {
    bch_.emplace(10, inner_ecc_t, kMessageBits);
  }
}

std::uint32_t LineCodec::ecc_bits() const {
  return hamming_ ? static_cast<std::uint32_t>(hamming_->check_bits())
                  : static_cast<std::uint32_t>(bch_->parity_bits());
}

BitVec LineCodec::encode(const BitVec& data) const {
  assert(data.size() == kDataBits);
  BitVec stored(total_bits());
  for (std::uint32_t i = 0; i < kDataBits; ++i) {
    if (data.test(i)) stored.set(i);
  }
  const std::uint32_t crc = crc_.compute(data, kDataBits);
  for (std::uint32_t b = 0; b < kCrcBits; ++b) {
    stored.assign(kDataBits + b, (crc >> b) & 1u);
  }
  if (hamming_) {
    hamming_->encode(stored);
  } else {
    bch_->encode(stored);
  }
  return stored;
}

BitVec LineCodec::extract_data(const BitVec& stored) const {
  BitVec data(kDataBits);
  for (std::uint32_t i = 0; i < kDataBits; ++i) {
    if (stored.test(i)) data.set(i);
  }
  return data;
}

bool LineCodec::crc_ok(const BitVec& stored) const {
  const std::uint32_t computed = crc_.compute(stored, kDataBits);
  std::uint32_t held = 0;
  for (std::uint32_t b = 0; b < kCrcBits; ++b) {
    if (stored.test(kDataBits + b)) held |= 1u << b;
  }
  return computed == held;
}

bool LineCodec::inner_syndrome_clean(const BitVec& stored) const {
  if (hamming_) return hamming_->syndrome(stored) == 0;
  // For BCH, "clean" means a decode reports no errors; checking syndromes
  // without mutating is what decode does on a copy.
  BitVec copy = stored;
  return bch_->decode(copy).status == Bch::DecodeStatus::kClean;
}

bool LineCodec::fully_clean(const BitVec& stored) const {
  return inner_syndrome_clean(stored) && crc_ok(stored);
}

LineCodec::LineState LineCodec::check_and_correct(BitVec& stored) const {
  if (fully_clean(stored)) return LineState::kClean;
  // One shot of the inner code, then re-validate everything. Work on a
  // copy so an unsuccessful (mis)correction does not dirty the stored line.
  BitVec trial = stored;
  bool corrected = false;
  if (hamming_) {
    corrected = hamming_->decode(trial) == Hamming::DecodeStatus::kCorrected;
  } else {
    corrected = bch_->decode(trial).status == Bch::DecodeStatus::kCorrected;
  }
  if (corrected && fully_clean(trial)) {
    stored = trial;
    return LineState::kCorrected;
  }
  // Note: a clean inner syndrome with a failing CRC (faults aliasing to
  // syndrome 0) also lands here.
  return LineState::kUncorrectable;
}

}  // namespace sudoku
