#include "sudoku/line_codec.h"

#include <bit>
#include <cassert>

namespace sudoku {

LineCodec::LineCodec(int inner_ecc_t) : inner_t_(inner_ecc_t), crc_() {
  assert(inner_ecc_t >= 1 && inner_ecc_t <= 6);
  if (inner_ecc_t == 1) {
    hamming_.emplace(kMessageBits);
  } else {
    bch_.emplace(10, inner_ecc_t, kMessageBits);
  }
}

std::uint32_t LineCodec::ecc_bits() const {
  return hamming_ ? static_cast<std::uint32_t>(hamming_->check_bits())
                  : static_cast<std::uint32_t>(bch_->parity_bits());
}

// The data field is word-aligned (512 = 8 whole words), so encode/extract
// move it as words rather than bit by bit.
static_assert(LineCodec::kDataBits % 64 == 0);

BitVec LineCodec::encode(const BitVec& data) const {
  assert(data.size() == kDataBits);
  BitVec stored(total_bits());
  const auto src = data.words();
  auto dst = stored.words();
  for (std::size_t wi = 0; wi < kDataBits / 64; ++wi) dst[wi] = src[wi];
  stored.set_bits(kDataBits, kCrcBits, crc_.compute(data, kDataBits));
  if (hamming_) {
    hamming_->encode(stored);
  } else {
    bch_->encode(stored);
  }
  return stored;
}

BitVec LineCodec::extract_data(const BitVec& stored) const {
  BitVec data(kDataBits);
  const auto src = stored.words();
  auto dst = data.words();
  for (std::size_t wi = 0; wi < kDataBits / 64; ++wi) dst[wi] = src[wi];
  return data;
}

bool LineCodec::crc_ok(const BitVec& stored) const {
  const std::uint32_t computed = crc_.compute(stored, kDataBits);
  const std::uint32_t held =
      static_cast<std::uint32_t>(stored.get_bits(kDataBits, kCrcBits));
  return computed == held;
}

bool LineCodec::inner_syndrome_clean(const BitVec& stored) const {
  if (hamming_) return hamming_->syndrome(stored) == 0;
  // Zero-syndrome fast path: checking the power sums directly skips the
  // codeword copy and Berlekamp-Massey setup a trial decode would do —
  // clean lines (the overwhelmingly common case at realistic BERs) now
  // cost no allocation at all.
  return bch_->syndromes_zero(stored);
}

bool LineCodec::fully_clean(const BitVec& stored) const {
  return inner_syndrome_clean(stored) && crc_ok(stored);
}

std::uint64_t LineCodec::fully_clean_batch(std::span<const BitVec> stored,
                                           BitPlanes& planes) const {
  assert(!stored.empty() && stored.size() <= BitPlanes::kMaxLines);
  planes.reset(total_bits(), stored.size());
  for (std::size_t i = 0; i < stored.size(); ++i) {
    assert(stored[i].size() == total_bits());
    planes.load_line(i, stored[i].words());
  }
  planes.finalize();
  std::uint64_t mask = hamming_ ? hamming_->batch_syndromes_zero(planes)
                                : bch_->batch_syndromes_zero(planes);
  // CRC only for inner-clean lines — the same short-circuit fully_clean
  // takes, so the two paths agree bit for bit.
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    const auto i = static_cast<std::size_t>(std::countr_zero(m));
    if (!crc_ok(stored[i])) mask &= ~(std::uint64_t{1} << i);
  }
  return mask;
}

LineCodec::LineState LineCodec::check_and_correct(BitVec& stored) const {
  if (fully_clean(stored)) return LineState::kClean;
  return correct_inconsistent(stored);
}

LineCodec::LineState LineCodec::correct_inconsistent(BitVec& stored) const {
  // One shot of the inner code, then re-validate everything. Work on a
  // copy so an unsuccessful (mis)correction does not dirty the stored line.
  BitVec trial = stored;
  bool corrected = false;
  if (hamming_) {
    corrected = hamming_->decode(trial) == Hamming::DecodeStatus::kCorrected;
  } else {
    corrected = bch_->decode(trial).status == Bch::DecodeStatus::kCorrected;
  }
  if (corrected && fully_clean(trial)) {
    stored = trial;
    return LineState::kCorrected;
  }
  // Note: a clean inner syndrome with a failing CRC (faults aliasing to
  // syndrome 0) also lands here.
  return LineState::kUncorrectable;
}

}  // namespace sudoku
