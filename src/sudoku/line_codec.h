// Per-line code layout (paper §III-E):
//
//   stored line = [ data 512 | CRC-31(data) | inner ECC over (data+CRC) ]
//
// CRC over the data, ECC over data+CRC: a single-bit fault anywhere in
// data or CRC is correctable by the inner code, and re-checking the CRC
// after an ECC correction exposes ECC miscorrections on multi-fault lines.
//
// The inner code is ECC-1 (Hamming, 10 check bits — the paper's default)
// or, per the §VII-G enhancement, a BCH ECC-t with 10·t check bits. With
// ECC-t, Sequential Data Resurrection can resurrect lines with t+1 faults
// (flip one known-bad position, let the inner code fix the remaining t).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/bitvec.h"
#include "codes/batch_codec.h"
#include "codes/bch.h"
#include "codes/crc31.h"
#include "codes/hamming.h"

namespace sudoku {

class LineCodec {
 public:
  static constexpr std::uint32_t kDataBits = 512;
  static constexpr std::uint32_t kCrcBits = Crc31::kBits;          // 31
  static constexpr std::uint32_t kMessageBits = kDataBits + kCrcBits;  // 543

  // `inner_ecc_t` = correction strength of the per-line inner code.
  explicit LineCodec(int inner_ecc_t = 1);

  int inner_ecc_t() const { return inner_t_; }
  std::uint32_t ecc_bits() const;
  std::uint32_t total_bits() const { return kMessageBits + ecc_bits(); }

  // Encode 512 data bits into a full stored line.
  BitVec encode(const BitVec& data) const;

  // Extract the data field.
  BitVec extract_data(const BitVec& stored) const;

  // True if the stored CRC matches the CRC recomputed over the data field
  // (paper: the 1-cycle syndrome check on every read).
  bool crc_ok(const BitVec& stored) const;

  // True if CRC matches AND the inner-code syndrome is clean (full
  // consistency, used by the scrubber so faults in ECC bits don't linger).
  bool fully_clean(const BitVec& stored) const;

  // Batched fully_clean over up to BitPlanes::kMaxLines stored lines: bit
  // k of the result is set iff fully_clean(stored[k]). The inner-code
  // syndromes run bit-sliced across the whole batch (the BatchCodec
  // engine); the CRC — already word-at-a-time or CLMUL — runs per line,
  // and only for lines whose inner syndromes are clean, mirroring
  // fully_clean's evaluation order. `planes` is caller-owned scratch so a
  // sweep reuses the transpose buffers across batches.
  std::uint64_t fully_clean_batch(std::span<const BitVec> stored,
                                  BitPlanes& planes) const;

  // Break-even batch width (docs/perf.md): below this, the fixed cost of
  // running the bit-slice program over all n codeword positions outweighs
  // the per-line word kernels, so callers fall back to the per-line path.
  static constexpr std::size_t kMinBatchLines = 12;

  enum class LineState {
    kClean,           // no inconsistency observed
    kCorrected,       // inner code fixed <= t bits, CRC+ECC re-verified
    kUncorrectable,   // beyond the inner code: needs RAID/SDR repair
  };

  // The per-line fast path: if inconsistent, attempt inner-code correction
  // and re-validate with CRC + ECC. Leaves the line unmodified when it
  // cannot be repaired.
  LineState check_and_correct(BitVec& stored) const;

  // check_and_correct for a line already known inconsistent (e.g. by
  // fully_clean_batch): skips the redundant clean re-check, otherwise
  // identical. Never returns kClean.
  LineState correct_inconsistent(BitVec& stored) const;

  const Crc31& crc() const { return crc_; }

 private:
  int inner_t_;
  Crc31 crc_;
  std::optional<Hamming> hamming_;  // inner_t == 1
  std::optional<Bch> bch_;          // inner_t >= 2

  bool inner_syndrome_clean(const BitVec& stored) const;
};

}  // namespace sudoku
