#include "sudoku/storage.h"

namespace sudoku {

namespace {
constexpr double kCrcBits = 31.0;
// Stored line width for a SuDoku-style line with inner ECC-t.
double line_bits(int inner_t) { return 512.0 + kCrcBits + 10.0 * inner_t; }
}  // namespace

StorageBreakdown sudoku_storage(std::uint64_t num_lines, std::uint32_t group_size,
                                std::uint32_t num_plts, int inner_t) {
  StorageBreakdown s;
  s.crc_bits = kCrcBits;
  s.ecc_bits = 10.0 * inner_t;
  s.parity_bits_amortized = num_plts * line_bits(inner_t) / group_size;
  const double parity_lines = static_cast<double>(num_lines) / group_size * num_plts;
  s.sram_bytes_total = parity_lines * line_bits(inner_t) / 8.0;
  return s;
}

StorageBreakdown ecc_k_storage(int k) {
  StorageBreakdown s;
  s.ecc_bits = 10.0 * k;
  return s;
}

StorageBreakdown hi_ecc_storage(int t) {
  StorageBreakdown s;
  s.ecc_bits = 14.0 * t / 16.0;  // 84 bits per 16-line region at t=6
  return s;
}

StorageBreakdown cppc_storage(std::uint64_t num_lines) {
  StorageBreakdown s;
  s.crc_bits = kCrcBits;
  s.ecc_bits = 10.0;
  s.parity_bits_amortized = line_bits(1) / static_cast<double>(num_lines);
  s.sram_bytes_total = line_bits(1) / 8.0;
  return s;
}

StorageBreakdown raid6_storage(std::uint32_t group_size) {
  StorageBreakdown s;
  s.crc_bits = kCrcBits;
  s.ecc_bits = 10.0;
  s.parity_bits_amortized = 2.0 * line_bits(1) / group_size;
  return s;
}

}  // namespace sudoku
