#include "sudoku/scrubber.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace sudoku {

ContinuousScrubStats run_continuous_scrub(SudokuController& ctrl,
                                          const ScrubSchedule& schedule,
                                          double fault_rate_per_bit_s,
                                          std::uint32_t slices_per_interval,
                                          std::uint32_t num_intervals, Rng& rng) {
  ContinuousScrubStats stats;
  const std::uint64_t num_lines = ctrl.array().num_lines();
  const std::uint32_t bits = ctrl.codec().total_bits();
  const std::uint64_t lines_per_slice =
      (num_lines + slices_per_interval - 1) / slices_per_interval;
  const double slice_s = schedule.interval_s / slices_per_interval;
  const double bits_total = static_cast<double>(num_lines) * bits;

  // Lines with faults injected but not yet visited by the sweep. The
  // sweep must still visit *every* line (that is what the hardware does),
  // but only dirty lines can need work; we pass the slice's full range so
  // the controller sees the same access pattern, in sparse form.
  std::unordered_set<std::uint64_t> dirty;

  std::uint64_t cursor = 0;
  std::vector<std::uint64_t> slice_lines;
  for (std::uint64_t step = 0;
       step < static_cast<std::uint64_t>(num_intervals) * slices_per_interval; ++step) {
    // Faults arriving during this slice: Poisson over all bits.
    const double mean = bits_total * fault_rate_per_bit_s * slice_s;
    const std::uint64_t nfaults = rng.next_poisson(mean);
    for (std::uint64_t f = 0; f < nfaults; ++f) {
      const std::uint64_t line = rng.next_below(num_lines);
      const auto bit = static_cast<std::uint32_t>(rng.next_below(bits));
      ctrl.array().flip(line, bit);
      dirty.insert(line);
    }
    stats.faults_injected += nfaults;

    // Sweep the next chunk of lines.
    slice_lines.clear();
    for (std::uint64_t i = 0; i < lines_per_slice && cursor + i < num_lines; ++i) {
      const std::uint64_t line = cursor + i;
      if (dirty.count(line)) slice_lines.push_back(line);
    }
    if (!slice_lines.empty()) {
      const auto s = ctrl.scrub_lines(slice_lines);
      stats.ecc1_corrections += s.ecc1_corrections;
      stats.raid4_repairs += s.raid4_repairs;
      stats.sdr_repairs += s.sdr_repairs;
      stats.due_lines += s.due_lines;
      // A DUE line is invalidated and refetched from the next memory
      // level; without this, dead lines poison their groups forever and
      // the failure rate diverges. The payload value is immaterial to the
      // fault statistics.
      for (const auto line : s.due_line_ids) {
        ctrl.write_data(line, BitVec(LineCodec::kDataBits));
      }
      for (const auto line : slice_lines) dirty.erase(line);
      // Group repairs may have cleaned other dirty lines as a side effect;
      // they will be found clean when their slice arrives — harmless.
    }
    stats.lines_scrubbed += std::min<std::uint64_t>(lines_per_slice, num_lines - cursor);

    cursor += lines_per_slice;
    if (cursor >= num_lines) {
      cursor = 0;
      ++stats.sweeps;
    }
    stats.simulated_seconds += slice_s;
  }
  return stats;
}

}  // namespace sudoku
