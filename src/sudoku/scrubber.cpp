#include "sudoku/scrubber.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <vector>

#include "obs/macros.h"

namespace sudoku {

ContinuousScrubStats run_continuous_scrub(SudokuController& ctrl,
                                          const ScrubSchedule& schedule,
                                          double fault_rate_per_bit_s,
                                          std::uint32_t slices_per_interval,
                                          std::uint32_t num_intervals, Rng& rng,
                                          obs::MetricsRegistry* metrics) {
  ContinuousScrubStats stats;
  const std::uint64_t num_lines = ctrl.array().num_lines();

#if !SUDOKU_OBS_ENABLED
  metrics = nullptr;  // disabled builds record nothing at all
#endif
  obs::Counter* m_sweeps = nullptr;
  obs::Counter* m_lines = nullptr;
  obs::Counter* m_faults = nullptr;
  obs::Counter* m_corrections = nullptr;
  obs::Histogram* m_slice_faults = nullptr;
  obs::Histogram* m_sweep_wall = nullptr;
  if (metrics != nullptr) {
    m_sweeps = metrics->counter("scrub.sweeps");
    m_lines = metrics->counter("scrub.lines_scrubbed");
    m_faults = metrics->counter("scrub.faults_injected");
    m_corrections = metrics->counter("scrub.corrections");
    m_slice_faults = metrics->histogram("scrub.slice_faults",
                                        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    // Wall-clock per full sweep; nondeterministic by nature, so this series
    // must stay out of bit-identical merge contracts (see obs/timer.h).
    m_sweep_wall = metrics->histogram(
        "scrub.sweep_wall_ns", {1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10});
    metrics->gauge("scrub.bandwidth_fraction")
        ->set(schedule.bandwidth_fraction(num_lines));
  }
  const std::uint32_t bits = ctrl.codec().total_bits();
  const std::uint64_t lines_per_slice =
      (num_lines + slices_per_interval - 1) / slices_per_interval;
  const double slice_s = schedule.interval_s / slices_per_interval;
  const double bits_total = static_cast<double>(num_lines) * bits;

  // Lines with faults injected but not yet visited by the sweep. The
  // sweep must still visit *every* line (that is what the hardware does),
  // but only dirty lines can need work; we pass the slice's full range so
  // the controller sees the same access pattern, in sparse form.
  std::unordered_set<std::uint64_t> dirty;

  std::uint64_t cursor = 0;
  std::vector<std::uint64_t> slice_lines;
  auto sweep_start = std::chrono::steady_clock::now();
  for (std::uint64_t step = 0;
       step < static_cast<std::uint64_t>(num_intervals) * slices_per_interval; ++step) {
    // Faults arriving during this slice: Poisson over all bits.
    const double mean = bits_total * fault_rate_per_bit_s * slice_s;
    const std::uint64_t nfaults = rng.next_poisson(mean);
    for (std::uint64_t f = 0; f < nfaults; ++f) {
      const std::uint64_t line = rng.next_below(num_lines);
      const auto bit = static_cast<std::uint32_t>(rng.next_below(bits));
      ctrl.array().flip(line, bit);
      dirty.insert(line);
    }
    stats.faults_injected += nfaults;
    OBS_ADD(m_faults, nfaults);
    if (nfaults > 0) OBS_OBSERVE(m_slice_faults, nfaults);

    // Sweep the next chunk of lines.
    slice_lines.clear();
    for (std::uint64_t i = 0; i < lines_per_slice && cursor + i < num_lines; ++i) {
      const std::uint64_t line = cursor + i;
      if (dirty.count(line)) slice_lines.push_back(line);
    }
    if (!slice_lines.empty()) {
      const auto s = ctrl.scrub_lines(slice_lines);
      stats.ecc1_corrections += s.ecc1_corrections;
      stats.raid4_repairs += s.raid4_repairs;
      stats.sdr_repairs += s.sdr_repairs;
      stats.due_lines += s.due_lines;
      OBS_ADD(m_corrections, s.ecc1_corrections + s.raid4_repairs + s.sdr_repairs);
      // A DUE line is invalidated and refetched from the next memory
      // level; without this, dead lines poison their groups forever and
      // the failure rate diverges. The payload value is immaterial to the
      // fault statistics.
      for (const auto line : s.due_line_ids) {
        ctrl.write_data(line, BitVec(LineCodec::kDataBits));
      }
      for (const auto line : slice_lines) dirty.erase(line);
      // Group repairs may have cleaned other dirty lines as a side effect;
      // they will be found clean when their slice arrives — harmless.
    }
    const std::uint64_t visited =
        std::min<std::uint64_t>(lines_per_slice, num_lines - cursor);
    stats.lines_scrubbed += visited;
    OBS_ADD(m_lines, visited);

    cursor += lines_per_slice;
    if (cursor >= num_lines) {
      cursor = 0;
      ++stats.sweeps;
      OBS_INC(m_sweeps);
      if (m_sweep_wall != nullptr) {
        const auto now = std::chrono::steady_clock::now();
        m_sweep_wall->observe(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - sweep_start)
                .count()));
        sweep_start = now;
      }
    }
    stats.simulated_seconds += slice_s;
  }
  return stats;
}

}  // namespace sudoku
