// Hi-ECC baseline (paper §VIII-C, Wilkerson et al. [71]): ECC-6 at 1 KB
// granularity. The 84 check bits (BCH over GF(2^14)) amortise to ~0.9%
// storage, but every region now exposes 8192+ bits to the same 6-error
// budget, which is why its FIT is orders of magnitude worse than SuDoku's
// (Table XII). The protection unit here is a whole 1 KB region — a DUE
// loses 16 cache lines at once.
//
// Hi-ECC is the (1 KB, t) point of the generalized large-codeword region
// cache (baselines/region_cache.h, ROADMAP item 5); this class pins that
// design point and its paper-facing name. The line-granular data path
// (read_line_data / write_line_data / probe_clean_line / format_lines)
// and the batched scrub hook are inherited unchanged.
#pragma once

#include "baselines/region_cache.h"

namespace sudoku::baselines {

class HiEccCache final : public RegionEccCache {
 public:
  // `num_lines` is in 64 B cache lines; internally grouped 16-to-a-region.
  explicit HiEccCache(std::uint64_t num_lines, int t = 6)
      : RegionEccCache(num_lines, kRegionDataBits / 8, t), t_(t) {}

  std::string name() const override {
    return "Hi-ECC(ECC-" + std::to_string(t_) + "/1KB)";
  }

  static constexpr std::uint32_t kLinesPerRegion = 16;
  static constexpr std::uint32_t kRegionDataBits = 8192;

 private:
  int t_;
};

}  // namespace sudoku::baselines
