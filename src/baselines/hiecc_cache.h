// Hi-ECC baseline (paper §VIII-C, Wilkerson et al. [71]): ECC-6 at 1 KB
// granularity. The 84 check bits (BCH over GF(2^14)) amortise to ~0.9%
// storage, but every region now exposes 8192+ bits to the same 6-error
// budget, which is why its FIT is orders of magnitude worse than SuDoku's
// (Table XII). The protection unit here is a whole 1 KB region — a DUE
// loses 16 cache lines at once.
#pragma once

#include <functional>

#include "baselines/scheme.h"
#include "codes/bch.h"

namespace sudoku::baselines {

class HiEccCache final : public CacheScheme {
 public:
  // `num_lines` is in 64 B cache lines; internally grouped 16-to-a-region.
  HiEccCache(std::uint64_t num_lines, int t = 6);

  std::string name() const override;
  std::uint64_t num_units() const override { return array_.num_lines(); }
  std::uint32_t bits_per_unit() const override { return array_.bits_per_line(); }
  SttramArray& array() override { return array_; }
  const SttramArray& array() const override { return array_; }

  void format_random(Rng& rng) override;
  BaselineStats scrub_units(std::span<const std::uint64_t> units) override;
  void restore_unit(std::uint64_t unit, const BitVec& golden_stored) override;
  double overhead_bits_per_line() const override {
    return static_cast<double>(bch_.parity_bits()) / 16.0;  // per 64 B line
  }

  // ---- line-granular data path (used by the concurrent service) ----
  // The stored region is a systematic BCH codeword ([data | parity]); line
  // k of a region occupies data bits [(k % 16)·512, +512). A line read
  // decodes the whole region (that is Hi-ECC's cost model: one ECC-6 unit
  // per 1 KB); a line write is a region read-modify-write that re-encodes
  // the parity.
  enum class LineReadStatus { kClean, kCorrected, kDue };
  struct LineRead {
    BitVec data;  // 512 bits; zero when kDue
    LineReadStatus status = LineReadStatus::kClean;
  };
  std::uint64_t num_data_lines() const { return array_.num_lines() * kLinesPerRegion; }
  LineRead read_line_data(std::uint64_t line);
  void write_line_data(std::uint64_t line, const BitVec& data512);
  // Side-effect-free clean probe for the service's lock-free fast path:
  // copy line's region into `cw_scratch`; iff its syndromes are clean,
  // extract the line's data into `data_out` and return true. Tolerates
  // torn images (caller validates against its seqlock epoch).
  bool probe_clean_line(std::uint64_t line, BitVec& cw_scratch,
                        BitVec& data_out) const;
  // Fill every line from `make_data(line)` (the service's deterministic
  // format hook; format_random remains the MC harness entry point).
  void format_lines(const std::function<BitVec(std::uint64_t)>& make_data);

  static constexpr std::uint32_t kLinesPerRegion = 16;
  static constexpr std::uint32_t kRegionDataBits = 8192;
  static constexpr std::uint32_t kLineDataBits = 512;

 private:
  int t_;
  Bch bch_;
  SttramArray array_;  // one "line" per 1 KB region
};

}  // namespace sudoku::baselines
