#include "baselines/region_cache.h"

#include <cassert>
#include <stdexcept>

#include "baselines/batch_scrub.h"

namespace sudoku::baselines {

RegionEccCache::RegionEccCache(std::uint64_t num_lines, const EccDesign& design)
    : design_(design),
      bch_(make_bch(design)),
      lines_per_region_(design.lines_per_codeword()),
      array_(num_lines / design.lines_per_codeword(),
             static_cast<std::uint32_t>(bch_.codeword_bits())) {
  if (num_lines == 0 || num_lines % lines_per_region_ != 0) {
    throw std::invalid_argument(
        "RegionEccCache: num_lines must be a positive multiple of " +
        std::to_string(lines_per_region_) + " (got " +
        std::to_string(num_lines) + ")");
  }
}

RegionEccCache::RegionEccCache(std::uint64_t num_lines,
                               std::uint32_t region_data_bytes, int t)
    : RegionEccCache(num_lines, make_ecc_design(region_data_bytes, t)) {}

std::string RegionEccCache::name() const {
  return "Region(ECC-" + std::to_string(design_.t) + "/" + design_.name + ")";
}

void RegionEccCache::format_random(Rng& rng) {
  BitVec cw(bch_.codeword_bits());
  for (std::uint64_t region = 0; region < array_.num_lines(); ++region) {
    cw.clear();
    for (std::uint32_t i = 0; i < design_.data_bits; ++i) {
      if (rng.next_bool(0.5)) cw.set(i);
    }
    bch_.encode(cw);
    array_.write_line(region, cw);
  }
}

BaselineStats RegionEccCache::scrub_units(std::span<const std::uint64_t> units) {
  // Region decode hook, batched: syndromes for up to 64 regions run
  // bit-sliced, then each dirty region goes through
  // decode_with_syndromes — identical outcomes to per-region decode().
  return batch_scrub_bch(bch_, array_, units, /*min_batch=*/12);
}

void RegionEccCache::restore_unit(std::uint64_t unit, const BitVec& golden_stored) {
  array_.write_line(unit, golden_stored);
}

RegionEccCache::LineRead RegionEccCache::read_line_data(std::uint64_t line) {
  const std::uint64_t region = line / lines_per_region_;
  const std::uint32_t base = (line % lines_per_region_) * kLineDataBits;
  BitVec cw = array_.read_line(region);
  ++io_.line_reads;
  ++io_.region_decodes;
  io_.stored_bits_read += bch_.codeword_bits();
  LineRead out;
  out.data = BitVec(kLineDataBits);
  switch (bch_.decode(cw).status) {
    case Bch::DecodeStatus::kClean:
      out.status = LineReadStatus::kClean;
      break;
    case Bch::DecodeStatus::kCorrected:
      array_.write_line(region, cw);  // scrub-on-read, like the controller
      io_.stored_bits_written += bch_.codeword_bits();
      out.status = LineReadStatus::kCorrected;
      break;
    case Bch::DecodeStatus::kUncorrectable:
      out.status = LineReadStatus::kDue;  // the whole region is lost
      return out;
  }
  for (std::uint32_t i = 0; i < kLineDataBits; i += 64) {
    out.data.set_bits(i, 64, cw.get_bits(base + i, 64));
  }
  return out;
}

void RegionEccCache::write_line_data(std::uint64_t line, const BitVec& data512) {
  const std::uint64_t region = line / lines_per_region_;
  const std::uint32_t base = (line % lines_per_region_) * kLineDataBits;
  // Region read-modify-write. Correct the old content first so the other
  // lines survive; an uncorrectable region has already lost them, and
  // re-encoding over whatever is stored resynchronises the parity (same
  // semantics as SudokuController::write_data over a lost line).
  BitVec cw = array_.read_line(region);
  bch_.decode(cw);
  for (std::uint32_t i = 0; i < kLineDataBits; i += 64) {
    cw.set_bits(base + i, 64, data512.get_bits(i, 64));
  }
  bch_.encode(cw);
  array_.write_line(region, cw);
  ++io_.line_writes;
  ++io_.region_decodes;
  ++io_.rmw_encodes;
  io_.stored_bits_read += bch_.codeword_bits();
  io_.stored_bits_written += bch_.codeword_bits();
}

bool RegionEccCache::probe_clean_line(std::uint64_t line, BitVec& cw_scratch,
                                      BitVec& data_out) const {
  const std::uint64_t region = line / lines_per_region_;
  const std::uint32_t base = (line % lines_per_region_) * kLineDataBits;
  array_.read_line(region, cw_scratch);
  if (!bch_.syndromes_zero(cw_scratch)) return false;
  if (data_out.size() != kLineDataBits) data_out.resize(kLineDataBits);
  for (std::uint32_t i = 0; i < kLineDataBits; i += 64) {
    data_out.set_bits(i, 64, cw_scratch.get_bits(base + i, 64));
  }
  return true;
}

void RegionEccCache::format_lines(
    const std::function<BitVec(std::uint64_t)>& make_data) {
  BitVec cw(bch_.codeword_bits());
  for (std::uint64_t region = 0; region < array_.num_lines(); ++region) {
    cw.clear();
    for (std::uint32_t k = 0; k < lines_per_region_; ++k) {
      const BitVec data = make_data(region * lines_per_region_ + k);
      for (std::uint32_t i = 0; i < kLineDataBits; i += 64) {
        cw.set_bits(k * kLineDataBits + i, 64, data.get_bits(i, 64));
      }
    }
    bch_.encode(cw);
    array_.write_line(region, cw);
  }
}

}  // namespace sudoku::baselines
