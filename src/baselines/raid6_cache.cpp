#include "baselines/raid6_cache.h"

#include <cassert>
#include <unordered_set>

namespace sudoku::baselines {

Raid6Cache::Raid6Cache(std::uint64_t num_lines, std::uint32_t group_size,
                       Raid6Flavor flavor)
    : codec_(),
      geo_{num_lines, group_size},
      flavor_(flavor),
      raid_(group_size, codec_.total_bits()),
      array_(num_lines, codec_.total_bits()),
      p_(geo_.num_groups()),
      q_(geo_.num_groups()) {
  assert(geo_.valid());
  if (flavor_ == Raid6Flavor::kRdp) {
    rdp_.emplace(group_size, codec_.total_bits());
  }
}

std::vector<BitVec> Raid6Cache::read_group(std::uint64_t group) const {
  std::vector<BitVec> lines(geo_.group_size);
  for (std::uint32_t s = 0; s < geo_.group_size; ++s) {
    lines[s] = array_.read_line(group * geo_.group_size + s);
  }
  return lines;
}

void Raid6Cache::rebuild_group(std::uint64_t group) {
  const auto lines = read_group(group);
  if (rdp_) {
    rdp_->compute(lines, p_[group], q_[group]);
  } else {
    raid_.compute(lines, p_[group], q_[group]);
  }
}

void Raid6Cache::format_random(Rng& rng) {
  BitVec data(LineCodec::kDataBits);
  for (std::uint64_t line = 0; line < array_.num_lines(); ++line) {
    auto w = data.words();
    for (auto& word : w) word = rng.next_u64();
    array_.write_line(line, codec_.encode(data));
  }
  for (std::uint64_t g = 0; g < geo_.num_groups(); ++g) rebuild_group(g);
}

BaselineStats Raid6Cache::scrub_units(std::span<const std::uint64_t> units) {
  BaselineStats stats;
  std::unordered_set<std::uint64_t> pending_groups;
  BitVec stored(codec_.total_bits());
  for (const auto line : units) {
    array_.read_line(line, stored);
    switch (codec_.check_and_correct(stored)) {
      case LineCodec::LineState::kClean:
        break;
      case LineCodec::LineState::kCorrected:
        array_.write_line(line, stored);
        ++stats.corrected;
        break;
      case LineCodec::LineState::kUncorrectable:
        pending_groups.insert(line / geo_.group_size);
        break;
    }
  }

  for (const auto g : pending_groups) {
    // Re-scan the group, fixing single-bit lines, and collect survivors.
    std::vector<std::uint32_t> bad;
    for (std::uint32_t s = 0; s < geo_.group_size; ++s) {
      const std::uint64_t line = g * geo_.group_size + s;
      array_.read_line(line, stored);
      switch (codec_.check_and_correct(stored)) {
        case LineCodec::LineState::kClean:
          break;
        case LineCodec::LineState::kCorrected:
          array_.write_line(line, stored);
          ++stats.corrected;
          break;
        case LineCodec::LineState::kUncorrectable:
          bad.push_back(s);
          break;
      }
    }
    bool repaired = false;
    if (bad.size() == 1) {
      const auto lines = read_group(g);
      BitVec rebuilt = rdp_ ? rdp_->reconstruct_one(lines, bad[0], p_[g])
                            : raid_.reconstruct_one(lines, bad[0], p_[g]);
      if (codec_.fully_clean(rebuilt)) {
        array_.write_line(g * geo_.group_size + bad[0], rebuilt);
        ++stats.corrected;
        repaired = true;
      }
    } else if (bad.size() == 2) {
      const auto lines = read_group(g);
      const auto [da, db] =
          rdp_ ? rdp_->reconstruct_two(lines, bad[0], bad[1], p_[g], q_[g])
               : raid_.reconstruct_two(lines, bad[0], bad[1], p_[g], q_[g]);
      if (codec_.fully_clean(da) && codec_.fully_clean(db)) {
        array_.write_line(g * geo_.group_size + bad[0], da);
        array_.write_line(g * geo_.group_size + bad[1], db);
        stats.corrected += 2;
        repaired = true;
      }
    }
    if (!repaired && !bad.empty()) {
      for (const auto s : bad) {
        ++stats.due_units;
        stats.due_unit_ids.push_back(g * geo_.group_size + s);
      }
    }
  }
  return stats;
}

void Raid6Cache::restore_unit(std::uint64_t unit, const BitVec& golden_stored) {
  // Parities reflect the clean codewords already; just restore the data.
  array_.write_line(unit, golden_stored);
}

}  // namespace sudoku::baselines
