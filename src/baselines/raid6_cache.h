// RAID-6 baseline (paper §VIII-A / Table XI): per-line ECC-1 + CRC-31 plus
// two parity lines (P and Q) per 512-line group. CRC flags faulty lines, so
// the P/Q pair recovers up to two known-position multi-bit lines per group;
// three defeat it. No SDR — the comparison point the paper uses to show
// that skewed hashing + resurrection matter.
#pragma once

#include <optional>
#include <vector>

#include "baselines/scheme.h"
#include "raid/geometry.h"
#include "raid/raid6.h"
#include "raid/rdp.h"
#include "sudoku/line_codec.h"

namespace sudoku::baselines {

// Which double-erasure construction backs the two parity lines: the
// Reed-Solomon-style P+Q pair, or Row-Diagonal Parity — the "diagonal
// parity and row-wise parity" wording of the paper's §VIII-A. Both correct
// any two known-position line erasures per group, so their failure modes
// (and FIT) are identical; RDP is pure XOR, P+Q needs GF multipliers.
enum class Raid6Flavor { kPQ, kRdp };

class Raid6Cache final : public CacheScheme {
 public:
  Raid6Cache(std::uint64_t num_lines, std::uint32_t group_size,
             Raid6Flavor flavor = Raid6Flavor::kPQ);

  std::string name() const override {
    return flavor_ == Raid6Flavor::kPQ ? "RAID-6(P+Q)+CRC-31" : "RAID-6(RDP)+CRC-31";
  }
  std::uint64_t num_units() const override { return array_.num_lines(); }
  std::uint32_t bits_per_unit() const override { return array_.bits_per_line(); }
  SttramArray& array() override { return array_; }
  const SttramArray& array() const override { return array_; }

  void format_random(Rng& rng) override;
  BaselineStats scrub_units(std::span<const std::uint64_t> units) override;
  void restore_unit(std::uint64_t unit, const BitVec& golden_stored) override;
  double overhead_bits_per_line() const override {
    // 41 check bits + two parity lines amortised over the group.
    return 41.0 + 2.0 * codec_.total_bits() / geo_.group_size;
  }

  const LineCodec& codec() const { return codec_; }

 private:
  LineCodec codec_;
  RaidGeometry geo_;
  Raid6Flavor flavor_;
  Raid6 raid_;
  std::optional<RowDiagonalParity> rdp_;
  SttramArray array_;
  std::vector<BitVec> p_;  // per-group row/P parity
  std::vector<BitVec> q_;  // per-group diagonal/Q parity

  void rebuild_group(std::uint64_t group);
  std::vector<BitVec> read_group(std::uint64_t group) const;
};

}  // namespace sudoku::baselines
