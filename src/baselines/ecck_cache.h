// Per-line ECC-k baseline (paper §II-D): every 512-bit line carries a BCH
// code correcting up to k faults (10·k check bits). This is the scheme the
// paper argues against — ECC-6 meets the FIT target but costs 60 bits per
// line and multi-cycle decoders.
#pragma once

#include <memory>

#include "baselines/scheme.h"
#include "codes/bch.h"

namespace sudoku::baselines {

class EccKCache final : public CacheScheme {
 public:
  EccKCache(std::uint64_t num_lines, int k);

  std::string name() const override;
  std::uint64_t num_units() const override { return array_.num_lines(); }
  std::uint32_t bits_per_unit() const override { return array_.bits_per_line(); }
  SttramArray& array() override { return array_; }
  const SttramArray& array() const override { return array_; }

  void format_random(Rng& rng) override;
  BaselineStats scrub_units(std::span<const std::uint64_t> units) override;
  void restore_unit(std::uint64_t unit, const BitVec& golden_stored) override;
  double overhead_bits_per_line() const override { return 10.0 * k_; }

  int k() const { return k_; }
  const Bch& codec() const { return bch_; }

 private:
  int k_;
  Bch bch_;
  SttramArray array_;
};

}  // namespace sudoku::baselines
