#include "baselines/hiecc_cache.h"

#include <cassert>

#include "baselines/batch_scrub.h"

namespace sudoku::baselines {

HiEccCache::HiEccCache(std::uint64_t num_lines, int t)
    : t_(t),
      bch_(14, t, kRegionDataBits),
      array_(num_lines / kLinesPerRegion, static_cast<std::uint32_t>(bch_.codeword_bits())) {
  assert(num_lines % kLinesPerRegion == 0);
}

std::string HiEccCache::name() const {
  return "Hi-ECC(ECC-" + std::to_string(t_) + "/1KB)";
}

void HiEccCache::format_random(Rng& rng) {
  BitVec cw(bch_.codeword_bits());
  for (std::uint64_t region = 0; region < array_.num_lines(); ++region) {
    cw.clear();
    for (std::uint32_t i = 0; i < kRegionDataBits; ++i) {
      if (rng.next_bool(0.5)) cw.set(i);
    }
    bch_.encode(cw);
    array_.write_line(region, cw);
  }
}

BaselineStats HiEccCache::scrub_units(std::span<const std::uint64_t> units) {
  // Region decode hook, batched: syndromes for up to 64 regions run
  // bit-sliced, then each dirty region goes through
  // decode_with_syndromes — identical outcomes to per-region decode().
  return batch_scrub_bch(bch_, array_, units, /*min_batch=*/12);
}

void HiEccCache::restore_unit(std::uint64_t unit, const BitVec& golden_stored) {
  array_.write_line(unit, golden_stored);
}

HiEccCache::LineRead HiEccCache::read_line_data(std::uint64_t line) {
  const std::uint64_t region = line / kLinesPerRegion;
  const std::uint32_t base = (line % kLinesPerRegion) * kLineDataBits;
  BitVec cw = array_.read_line(region);
  LineRead out;
  out.data = BitVec(kLineDataBits);
  switch (bch_.decode(cw).status) {
    case Bch::DecodeStatus::kClean:
      out.status = LineReadStatus::kClean;
      break;
    case Bch::DecodeStatus::kCorrected:
      array_.write_line(region, cw);  // scrub-on-read, like the controller
      out.status = LineReadStatus::kCorrected;
      break;
    case Bch::DecodeStatus::kUncorrectable:
      out.status = LineReadStatus::kDue;  // the whole 1 KB region is lost
      return out;
  }
  for (std::uint32_t i = 0; i < kLineDataBits; i += 64) {
    out.data.set_bits(i, 64, cw.get_bits(base + i, 64));
  }
  return out;
}

void HiEccCache::write_line_data(std::uint64_t line, const BitVec& data512) {
  const std::uint64_t region = line / kLinesPerRegion;
  const std::uint32_t base = (line % kLinesPerRegion) * kLineDataBits;
  // Region read-modify-write. Correct the old content first so the other
  // 15 lines survive; an uncorrectable region has already lost them, and
  // re-encoding over whatever is stored resynchronises the parity (same
  // semantics as SudokuController::write_data over a lost line).
  BitVec cw = array_.read_line(region);
  bch_.decode(cw);
  for (std::uint32_t i = 0; i < kLineDataBits; i += 64) {
    cw.set_bits(base + i, 64, data512.get_bits(i, 64));
  }
  bch_.encode(cw);
  array_.write_line(region, cw);
}

bool HiEccCache::probe_clean_line(std::uint64_t line, BitVec& cw_scratch,
                                  BitVec& data_out) const {
  const std::uint64_t region = line / kLinesPerRegion;
  const std::uint32_t base = (line % kLinesPerRegion) * kLineDataBits;
  array_.read_line(region, cw_scratch);
  if (!bch_.syndromes_zero(cw_scratch)) return false;
  if (data_out.size() != kLineDataBits) data_out.resize(kLineDataBits);
  for (std::uint32_t i = 0; i < kLineDataBits; i += 64) {
    data_out.set_bits(i, 64, cw_scratch.get_bits(base + i, 64));
  }
  return true;
}

void HiEccCache::format_lines(const std::function<BitVec(std::uint64_t)>& make_data) {
  BitVec cw(bch_.codeword_bits());
  for (std::uint64_t region = 0; region < array_.num_lines(); ++region) {
    cw.clear();
    for (std::uint32_t k = 0; k < kLinesPerRegion; ++k) {
      const BitVec data = make_data(region * kLinesPerRegion + k);
      for (std::uint32_t i = 0; i < kLineDataBits; i += 64) {
        cw.set_bits(k * kLineDataBits + i, 64, data.get_bits(i, 64));
      }
    }
    bch_.encode(cw);
    array_.write_line(region, cw);
  }
}

}  // namespace sudoku::baselines
