#include "baselines/hiecc_cache.h"

#include <cassert>

namespace sudoku::baselines {

HiEccCache::HiEccCache(std::uint64_t num_lines, int t)
    : t_(t),
      bch_(14, t, kRegionDataBits),
      array_(num_lines / kLinesPerRegion, static_cast<std::uint32_t>(bch_.codeword_bits())) {
  assert(num_lines % kLinesPerRegion == 0);
}

std::string HiEccCache::name() const {
  return "Hi-ECC(ECC-" + std::to_string(t_) + "/1KB)";
}

void HiEccCache::format_random(Rng& rng) {
  BitVec cw(bch_.codeword_bits());
  for (std::uint64_t region = 0; region < array_.num_lines(); ++region) {
    cw.clear();
    for (std::uint32_t i = 0; i < kRegionDataBits; ++i) {
      if (rng.next_bool(0.5)) cw.set(i);
    }
    bch_.encode(cw);
    array_.write_line(region, cw);
  }
}

BaselineStats HiEccCache::scrub_units(std::span<const std::uint64_t> units) {
  BaselineStats stats;
  BitVec cw(bch_.codeword_bits());
  for (const auto region : units) {
    array_.read_line(region, cw);
    const auto res = bch_.decode(cw);
    switch (res.status) {
      case Bch::DecodeStatus::kClean:
        break;
      case Bch::DecodeStatus::kCorrected:
        array_.write_line(region, cw);
        ++stats.corrected;
        break;
      case Bch::DecodeStatus::kUncorrectable:
        ++stats.due_units;
        stats.due_unit_ids.push_back(region);
        break;
    }
  }
  return stats;
}

void HiEccCache::restore_unit(std::uint64_t unit, const BitVec& golden_stored) {
  array_.write_line(unit, golden_stored);
}

}  // namespace sudoku::baselines
