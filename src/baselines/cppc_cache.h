// CPPC baseline (paper §VIII-A, Manoochehri et al. [17]) provisioned with
// SuDoku's per-line resources as the paper's Table XI prescribes: ECC-1 +
// CRC-31 per line, plus a single *global* parity line over the entire
// cache. One multi-bit-faulty line is recoverable from the global parity;
// two or more anywhere in the cache defeat it — which at the paper's error
// rate happens almost every scrub interval (FIT ~1.7e14).
#pragma once

#include "baselines/scheme.h"
#include "sudoku/line_codec.h"

namespace sudoku::baselines {

class CppcCache final : public CacheScheme {
 public:
  explicit CppcCache(std::uint64_t num_lines);

  std::string name() const override { return "CPPC+CRC-31"; }
  std::uint64_t num_units() const override { return array_.num_lines(); }
  std::uint32_t bits_per_unit() const override { return array_.bits_per_line(); }
  SttramArray& array() override { return array_; }
  const SttramArray& array() const override { return array_; }

  void format_random(Rng& rng) override;
  BaselineStats scrub_units(std::span<const std::uint64_t> units) override;
  void restore_unit(std::uint64_t unit, const BitVec& golden_stored) override;
  double overhead_bits_per_line() const override {
    // 41 check bits per line; one global parity amortises to ~0.
    return 41.0 + static_cast<double>(codec_.total_bits()) / num_units();
  }

  const LineCodec& codec() const { return codec_; }
  bool parity_consistent() const;

 private:
  LineCodec codec_;
  SttramArray array_;
  BitVec global_parity_;

  void rebuild_parity();
};

}  // namespace sudoku::baselines
