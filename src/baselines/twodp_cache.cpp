#include "baselines/twodp_cache.h"

namespace sudoku::baselines {

namespace {
SudokuConfig make_config(std::uint64_t num_lines, std::uint32_t group_size) {
  SudokuConfig cfg;
  cfg.geo.num_lines = num_lines;
  cfg.geo.group_size = group_size;
  cfg.level = SudokuLevel::kY;  // vertical parity + resurrection, one hash
  return cfg;
}
}  // namespace

TwoDpCache::TwoDpCache(std::uint64_t num_lines, std::uint32_t group_size)
    : ctrl_(make_config(num_lines, group_size)) {}

BaselineStats TwoDpCache::scrub_units(std::span<const std::uint64_t> units) {
  const auto s = ctrl_.scrub_lines(units);
  BaselineStats stats;
  stats.corrected = s.ecc1_corrections + s.raid4_repairs + s.sdr_repairs;
  stats.due_units = s.due_lines;
  stats.due_unit_ids = s.due_line_ids;
  return stats;
}

void TwoDpCache::restore_unit(std::uint64_t unit, const BitVec& golden_stored) {
  // Parity already reflects the clean codeword (faults never touch it).
  ctrl_.array().write_line(unit, golden_stored);
}

}  // namespace sudoku::baselines
