// Common interface for the functional baseline caches the paper compares
// against (§II ECC-k, §VIII CPPC / RAID-6 / 2DP / Hi-ECC). Each scheme owns
// its stored bit array and exposes a scrub entry point; the generic
// Monte-Carlo runner injects faults, scrubs, and classifies DUE/SDC against
// a golden snapshot.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sttram/array.h"

namespace sudoku::baselines {

struct BaselineStats {
  std::uint64_t corrected = 0;      // units repaired in place
  std::uint64_t due_units = 0;      // declared uncorrectable
  std::vector<std::uint64_t> due_unit_ids;
};

// A "unit" is the scheme's protection granule: a 64 B line for most
// schemes, a 1 KB region for Hi-ECC.
class CacheScheme {
 public:
  virtual ~CacheScheme() = default;

  virtual std::string name() const = 0;
  virtual std::uint64_t num_units() const = 0;
  virtual std::uint32_t bits_per_unit() const = 0;

  virtual SttramArray& array() = 0;
  virtual const SttramArray& array() const = 0;

  // Fill every unit with random encoded content; rebuild any parity state.
  virtual void format_random(Rng& rng) = 0;

  // Scrub the given units (sparse: only units with injected faults).
  virtual BaselineStats scrub_units(std::span<const std::uint64_t> units) = 0;

  // Restore a unit's stored bits (refill after data loss); implementations
  // must also resynchronise any parity covering it.
  virtual void restore_unit(std::uint64_t unit, const BitVec& golden_stored) = 0;

  // Storage overhead in check/parity bits per 512 data bits (for the
  // storage-comparison bench).
  virtual double overhead_bits_per_line() const = 0;
};

}  // namespace sudoku::baselines
