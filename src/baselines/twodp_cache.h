// 2D error coding baseline (paper §VIII-A, Kim et al. [18]), in the
// "optimized" form the paper compares against: per-line ECC-1 + CRC-31 plus
// one vertical parity line per group, with mismatch-position resurrection.
// Functionally this is SuDoku-Y restricted to a single (non-skewed) hash —
// the paper's Table XI value for 2DP equals its SuDoku-Y DUE FIT — so the
// implementation adapts the SuDoku controller at level Y to the baseline
// interface.
#pragma once

#include "baselines/scheme.h"
#include "sudoku/controller.h"

namespace sudoku::baselines {

class TwoDpCache final : public CacheScheme {
 public:
  TwoDpCache(std::uint64_t num_lines, std::uint32_t group_size);

  std::string name() const override { return "2DP+ECC-1+CRC-31"; }
  std::uint64_t num_units() const override { return ctrl_.array().num_lines(); }
  std::uint32_t bits_per_unit() const override { return ctrl_.array().bits_per_line(); }
  SttramArray& array() override { return ctrl_.array(); }
  const SttramArray& array() const override { return ctrl_.array(); }

  void format_random(Rng& rng) override { ctrl_.format_random(rng); }
  BaselineStats scrub_units(std::span<const std::uint64_t> units) override;
  void restore_unit(std::uint64_t unit, const BitVec& golden_stored) override;
  double overhead_bits_per_line() const override {
    return 41.0 + static_cast<double>(ctrl_.codec().total_bits()) /
                      ctrl_.config().geo.group_size;
  }

 private:
  SudokuController ctrl_;
};

}  // namespace sudoku::baselines
