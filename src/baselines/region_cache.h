// Generalized large-codeword region cache (ROADMAP item 5): one systematic
// BCH codeword over a region of N consecutive 64 B cache lines, with the
// codeword size and correction strength as free axes (codes/ecc_design.h)
// instead of Hi-ECC's hard-coded ECC-6 over 1 KB. Hi-ECC itself is now the
// (1 KB, t) instantiation of this scheme (baselines/hiecc_cache.h).
//
// The scheme's costs are what the frontier bench measures: every line read
// decodes the whole region (read amplification = codeword_bits/512), and
// every line write is a region read-modify-write that re-encodes the
// parity (write amplification). RegionIoStats tracks the stored bits the
// line-granular data path actually moved against the 512-bit demand
// payloads, so measured amplification can be checked against the design's
// closed form.
#pragma once

#include <functional>

#include "baselines/scheme.h"
#include "codes/bch.h"
#include "codes/ecc_design.h"

namespace sudoku::baselines {

// Stored-bit traffic of the line-granular data path, versus the 512-bit
// demand payloads that triggered it.
struct RegionIoStats {
  std::uint64_t line_reads = 0;
  std::uint64_t line_writes = 0;
  std::uint64_t region_decodes = 0;   // full-codeword decodes
  std::uint64_t rmw_encodes = 0;      // full-codeword re-encodes on write
  std::uint64_t stored_bits_read = 0;
  std::uint64_t stored_bits_written = 0;

  std::uint64_t demand_bits() const { return (line_reads + line_writes) * 512; }
  double bandwidth_amplification() const {
    const std::uint64_t demand = demand_bits();
    return demand ? static_cast<double>(stored_bits_read + stored_bits_written) /
                        static_cast<double>(demand)
                  : 0.0;
  }
};

class RegionEccCache : public CacheScheme {
 public:
  // `num_lines` is in 64 B cache lines and must be a multiple of the
  // design's lines-per-codeword.
  RegionEccCache(std::uint64_t num_lines, const EccDesign& design);
  RegionEccCache(std::uint64_t num_lines, std::uint32_t region_data_bytes,
                 int t);

  std::string name() const override;
  std::uint64_t num_units() const override { return array_.num_lines(); }
  std::uint32_t bits_per_unit() const override { return array_.bits_per_line(); }
  SttramArray& array() override { return array_; }
  const SttramArray& array() const override { return array_; }

  void format_random(Rng& rng) override;
  BaselineStats scrub_units(std::span<const std::uint64_t> units) override;
  void restore_unit(std::uint64_t unit, const BitVec& golden_stored) override;
  double overhead_bits_per_line() const override {
    return static_cast<double>(bch_.parity_bits()) / lines_per_region_;
  }

  const EccDesign& design() const { return design_; }
  const Bch& codec() const { return bch_; }
  std::uint32_t lines_per_region() const { return lines_per_region_; }
  const RegionIoStats& io_stats() const { return io_; }
  void reset_io_stats() { io_ = RegionIoStats{}; }

  // ---- line-granular data path (used by the concurrent service and the
  // frontier bench) ----
  // The stored region is a systematic BCH codeword ([data | parity]); line
  // k of a region occupies data bits [(k % lines_per_region)·512, +512). A
  // line read decodes the whole region (that is the scheme's cost model:
  // one ECC unit per codeword); a line write is a region read-modify-write
  // that re-encodes the parity.
  enum class LineReadStatus { kClean, kCorrected, kDue };
  struct LineRead {
    BitVec data;  // 512 bits; zero when kDue
    LineReadStatus status = LineReadStatus::kClean;
  };
  std::uint64_t num_data_lines() const {
    return array_.num_lines() * lines_per_region_;
  }
  LineRead read_line_data(std::uint64_t line);
  void write_line_data(std::uint64_t line, const BitVec& data512);
  // Side-effect-free clean probe for the service's lock-free fast path:
  // copy line's region into `cw_scratch`; iff its syndromes are clean,
  // extract the line's data into `data_out` and return true. Tolerates
  // torn images (caller validates against its seqlock epoch).
  bool probe_clean_line(std::uint64_t line, BitVec& cw_scratch,
                        BitVec& data_out) const;
  // Fill every line from `make_data(line)` (the service's deterministic
  // format hook; format_random remains the MC harness entry point).
  void format_lines(const std::function<BitVec(std::uint64_t)>& make_data);

  static constexpr std::uint32_t kLineDataBits = 512;

 private:
  EccDesign design_;
  Bch bch_;
  std::uint32_t lines_per_region_;
  SttramArray array_;  // one "line" per codeword region
  RegionIoStats io_;
};

}  // namespace sudoku::baselines
