#include "baselines/ecck_cache.h"

namespace sudoku::baselines {

EccKCache::EccKCache(std::uint64_t num_lines, int k)
    : k_(k),
      bch_(10, k, 512),
      array_(num_lines, static_cast<std::uint32_t>(bch_.codeword_bits())) {}

std::string EccKCache::name() const { return "ECC-" + std::to_string(k_); }

void EccKCache::format_random(Rng& rng) {
  BitVec cw(bch_.codeword_bits());
  for (std::uint64_t line = 0; line < array_.num_lines(); ++line) {
    cw.clear();
    for (std::uint32_t i = 0; i < 512; ++i) {
      if (rng.next_bool(0.5)) cw.set(i);
    }
    bch_.encode(cw);
    array_.write_line(line, cw);
  }
}

BaselineStats EccKCache::scrub_units(std::span<const std::uint64_t> units) {
  BaselineStats stats;
  BitVec cw(bch_.codeword_bits());
  for (const auto line : units) {
    array_.read_line(line, cw);
    const auto res = bch_.decode(cw);
    switch (res.status) {
      case Bch::DecodeStatus::kClean:
        break;
      case Bch::DecodeStatus::kCorrected:
        array_.write_line(line, cw);  // note: may be a miscorrection (SDC)
        ++stats.corrected;
        break;
      case Bch::DecodeStatus::kUncorrectable:
        ++stats.due_units;
        stats.due_unit_ids.push_back(line);
        break;
    }
  }
  return stats;
}

void EccKCache::restore_unit(std::uint64_t unit, const BitVec& golden_stored) {
  array_.write_line(unit, golden_stored);  // no parity state to resync
}

}  // namespace sudoku::baselines
