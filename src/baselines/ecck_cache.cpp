#include "baselines/ecck_cache.h"

#include "baselines/batch_scrub.h"

namespace sudoku::baselines {

EccKCache::EccKCache(std::uint64_t num_lines, int k)
    : k_(k),
      bch_(10, k, 512),
      array_(num_lines, static_cast<std::uint32_t>(bch_.codeword_bits())) {}

std::string EccKCache::name() const { return "ECC-" + std::to_string(k_); }

void EccKCache::format_random(Rng& rng) {
  BitVec cw(bch_.codeword_bits());
  for (std::uint64_t line = 0; line < array_.num_lines(); ++line) {
    cw.clear();
    for (std::uint32_t i = 0; i < 512; ++i) {
      if (rng.next_bool(0.5)) cw.set(i);
    }
    bch_.encode(cw);
    array_.write_line(line, cw);
  }
}

BaselineStats EccKCache::scrub_units(std::span<const std::uint64_t> units) {
  // Batched syndromes + decode_with_syndromes (bit-identical to per-line
  // decode); break-even width from docs/perf.md.
  return batch_scrub_bch(bch_, array_, units, /*min_batch=*/12);
}

void EccKCache::restore_unit(std::uint64_t unit, const BitVec& golden_stored) {
  array_.write_line(unit, golden_stored);  // no parity state to resync
}

}  // namespace sudoku::baselines
