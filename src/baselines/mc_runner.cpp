#include "baselines/mc_runner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>
#include <vector>

#include "common/prob.h"
#include "obs/macros.h"
#include "sttram/fault_injector.h"

namespace sudoku::baselines {

double BaselineMcResult::fit(double interval_s) const {
  return p_failure_per_interval() * (kSecondsPerBillionHours / interval_s);
}

BaselineMcResult& BaselineMcResult::operator+=(const BaselineMcResult& other) {
  metrics += other.metrics;
  intervals += other.intervals;
  faults_injected += other.faults_injected;
  corrected += other.corrected;
  due_units += other.due_units;
  sdc_units += other.sdc_units;
  failure_intervals += other.failure_intervals;
  return *this;
}

BaselineMcResult run_baseline_mc(CacheScheme& scheme, const BaselineMcConfig& config) {
  Rng rng(config.per_trial_seed_streams
              ? Rng::derive_stream_seed(config.seed, kFormatStream)
              : config.seed);
  scheme.format_random(rng);

  // Golden snapshot for SDC detection and refills.
  SttramArray golden(scheme.num_units(), scheme.bits_per_unit());
  for (std::uint64_t u = 0; u < scheme.num_units(); ++u) {
    golden.write_line(u, scheme.array().read_line(u));
  }

  FaultInjector injector(scheme.num_units(), scheme.bits_per_unit(), config.ber);
  BaselineMcResult result;
  obs::Counter* m_intervals = nullptr;
  obs::Counter* m_corrected = nullptr;
  obs::Counter* m_due = nullptr;
  obs::Counter* m_sdc = nullptr;
  obs::Counter* m_failure_intervals = nullptr;
  obs::Histogram* m_faults_per_interval = nullptr;
  obs::Counter* m_scn_transient = nullptr;
  obs::Counter* m_scn_stuck = nullptr;
  obs::Counter* m_scn_cluster = nullptr;
#if SUDOKU_OBS_ENABLED
  m_intervals = result.metrics.counter("baseline.intervals");
  m_corrected = result.metrics.counter("baseline.corrected");
  m_due = result.metrics.counter("baseline.due_units");
  m_sdc = result.metrics.counter("baseline.sdc_units");
  m_failure_intervals = result.metrics.counter("baseline.failure_intervals");
  m_faults_per_interval = result.metrics.histogram(
      "baseline.faults_per_interval",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  if (config.scenario) {
    m_scn_transient = result.metrics.counter("faults.transient_bits");
    m_scn_stuck = result.metrics.counter("faults.stuck_cells");
    m_scn_cluster = result.metrics.counter("faults.cluster_events");
  }
#endif
  if (config.scenario) {
    const faults::Geometry& g = config.scenario->geometry();
    if (g.num_units != scheme.num_units() ||
        g.bits_per_unit != scheme.bits_per_unit()) {
      std::fprintf(stderr,
                   "run_baseline_mc: scenario geometry (%llu x %u) does not "
                   "match scheme %s (%llu x %u)\n",
                   static_cast<unsigned long long>(g.num_units), g.bits_per_unit,
                   scheme.name().c_str(),
                   static_cast<unsigned long long>(scheme.num_units()),
                   scheme.bits_per_unit());
      std::abort();
    }
  }
  std::vector<std::uint64_t> touched;

  for (std::uint64_t interval = 0; interval < config.max_intervals; ++interval) {
    if (config.stop_hook && config.stop_hook()) break;
    if (config.per_trial_seed_streams) {
      rng.reseed(
          Rng::derive_stream_seed(config.seed, config.first_trial + interval));
    }

    if (config.scenario) {
      // Mixed-fault interval; mirrors the scenario branch of
      // reliability::run_montecarlo (see that file for the invariants).
      const std::uint64_t t = config.first_trial + interval;
      faults::ScenarioTick tick;
      const auto batch = config.scenario->transient(t, &tick);
      const faults::ActiveStuck stuck = config.scenario->stuck(t);
      result.faults_injected += tick.transient_bits;
      OBS_OBSERVE(m_faults_per_interval, tick.transient_bits);
      OBS_ADD(m_scn_transient, tick.transient_bits);
      OBS_ADD(m_scn_stuck, stuck.cells().size());
      OBS_ADD(m_scn_cluster, tick.cluster_events);
      FaultInjector::apply(batch, scheme.array());
      stuck.assert_on(scheme.array());

      touched.clear();
      touched.reserve(batch.size() + stuck.units().size());
      for (const auto& [unit, bits] : batch) touched.push_back(unit);
      touched.insert(touched.end(), stuck.units().begin(), stuck.units().end());
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

      const auto stats = scheme.scrub_units(touched);
      result.corrected += stats.corrected;
      result.due_units += stats.due_units;
      OBS_ADD(m_corrected, stats.corrected);
      OBS_ADD(m_due, stats.due_units);
      stuck.assert_on(scheme.array());  // repairs don't stick on stuck cells

      bool failed = stats.due_units > 0;
      const std::unordered_set<std::uint64_t> due(stats.due_unit_ids.begin(),
                                                  stats.due_unit_ids.end());
      for (const auto unit : touched) {
        if (due.count(unit)) continue;
        if (scheme.array().line_equals(unit, golden.read_line(unit))) continue;
        if (!stuck.equal_outside_stuck(unit, scheme.array().read_line(unit),
                                       golden.read_line(unit))) {
          ++result.sdc_units;
          OBS_INC(m_sdc);
          failed = true;
        }
      }
      // Canonical-state restore (stuck bits included — they will be
      // re-asserted from the scenario at the next interval).
      for (const auto unit : touched) {
        if (!scheme.array().line_equals(unit, golden.read_line(unit))) {
          scheme.restore_unit(unit, golden.read_line(unit));
        }
      }

      if (failed) {
        ++result.failure_intervals;
        OBS_INC(m_failure_intervals);
      }
      ++result.intervals;
      OBS_INC(m_intervals);
      if (config.target_failures != 0 &&
          result.failure_intervals >= config.target_failures) {
        break;
      }
      continue;
    }

    const auto batch = injector.sample_interval(rng);
    const std::uint64_t batch_faults = FaultInjector::count(batch);
    result.faults_injected += batch_faults;
    OBS_OBSERVE(m_faults_per_interval, batch_faults);
    FaultInjector::apply(batch, scheme.array());

    touched.clear();
    touched.reserve(batch.size());
    for (const auto& [unit, bits] : batch) touched.push_back(unit);

    const auto stats = scheme.scrub_units(touched);
    result.corrected += stats.corrected;
    result.due_units += stats.due_units;
    OBS_ADD(m_corrected, stats.corrected);
    OBS_ADD(m_due, stats.due_units);

    bool failed = stats.due_units > 0;
    const std::unordered_set<std::uint64_t> due(stats.due_unit_ids.begin(),
                                                stats.due_unit_ids.end());
    for (const auto unit : touched) {
      if (due.count(unit)) continue;
      if (!scheme.array().line_equals(unit, golden.read_line(unit))) {
        ++result.sdc_units;
        OBS_INC(m_sdc);
        failed = true;
        scheme.restore_unit(unit, golden.read_line(unit));
      }
    }
    for (const auto unit : stats.due_unit_ids) {
      scheme.restore_unit(unit, golden.read_line(unit));
    }

    if (failed) {
      ++result.failure_intervals;
      OBS_INC(m_failure_intervals);
    }
    ++result.intervals;
    OBS_INC(m_intervals);
    if (config.target_failures != 0 && result.failure_intervals >= config.target_failures) {
      break;
    }
  }
  return result;
}

}  // namespace sudoku::baselines
