#include "baselines/cppc_cache.h"

namespace sudoku::baselines {

CppcCache::CppcCache(std::uint64_t num_lines)
    : codec_(), array_(num_lines, codec_.total_bits()), global_parity_(codec_.total_bits()) {}

void CppcCache::format_random(Rng& rng) {
  BitVec data(LineCodec::kDataBits);
  for (std::uint64_t line = 0; line < array_.num_lines(); ++line) {
    auto w = data.words();
    for (auto& word : w) word = rng.next_u64();
    array_.write_line(line, codec_.encode(data));
  }
  rebuild_parity();
}

void CppcCache::rebuild_parity() {
  global_parity_.clear();
  for (std::uint64_t line = 0; line < array_.num_lines(); ++line) {
    array_.xor_line_into(line, global_parity_);
  }
}

bool CppcCache::parity_consistent() const {
  BitVec acc = global_parity_;
  for (std::uint64_t line = 0; line < array_.num_lines(); ++line) {
    array_.xor_line_into(line, acc);
  }
  return acc.none();
}

BaselineStats CppcCache::scrub_units(std::span<const std::uint64_t> units) {
  BaselineStats stats;
  std::vector<std::uint64_t> bad;
  BitVec stored(codec_.total_bits());
  for (const auto line : units) {
    array_.read_line(line, stored);
    switch (codec_.check_and_correct(stored)) {
      case LineCodec::LineState::kClean:
        break;
      case LineCodec::LineState::kCorrected:
        array_.write_line(line, stored);
        ++stats.corrected;
        break;
      case LineCodec::LineState::kUncorrectable:
        bad.push_back(line);
        break;
    }
  }
  if (bad.size() == 1) {
    // Reconstruct the lone victim: global parity XOR every other line.
    BitVec acc = global_parity_;
    for (std::uint64_t line = 0; line < array_.num_lines(); ++line) {
      if (line != bad[0]) array_.xor_line_into(line, acc);
    }
    if (codec_.fully_clean(acc)) {
      array_.write_line(bad[0], acc);
      ++stats.corrected;
      return stats;
    }
  }
  for (const auto line : bad) {
    ++stats.due_units;
    stats.due_unit_ids.push_back(line);
  }
  return stats;
}

void CppcCache::restore_unit(std::uint64_t unit, const BitVec& golden_stored) {
  // Thermal faults flip stored bits without touching the parity, so the
  // global parity still reflects the line's clean codeword: restoring the
  // golden value re-establishes consistency by itself.
  array_.write_line(unit, golden_stored);
}

}  // namespace sudoku::baselines
