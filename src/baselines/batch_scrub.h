// Shared batched BCH scrub loop for the per-unit baseline schemes (ECC-k
// lines, Hi-ECC regions). In the Monte-Carlo runner every scrubbed unit
// carries at least one injected fault, so there is no clean fast path to
// exploit — the win is computing all the power-sum syndromes bit-sliced
// across the batch (the BatchCodec engine, docs/perf.md) and feeding each
// unit's row into Bch::decode_with_syndromes, which is decode() minus the
// redundant per-unit syndrome pass. Units are processed in input order
// and every decode sees exactly the syndromes decode() would compute, so
// the MC artifacts stay byte-identical to the per-unit code's.
#pragma once

#include <span>

#include "baselines/scheme.h"
#include "codes/bch.h"
#include "sttram/array.h"

namespace sudoku::baselines {

// Scrub `units` of `array` (one codeword per unit) with `bch`:
// kCorrected units are written back, kUncorrectable ones recorded as DUE.
// Batches of up to BitPlanes::kMaxLines; below `min_batch` units the
// per-unit word-Horner path is cheaper and is used instead.
BaselineStats batch_scrub_bch(const Bch& bch, SttramArray& array,
                              std::span<const std::uint64_t> units,
                              std::size_t min_batch);

}  // namespace sudoku::baselines
