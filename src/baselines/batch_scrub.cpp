#include "baselines/batch_scrub.h"

#include <algorithm>
#include <vector>

#include "codes/batch_codec.h"

namespace sudoku::baselines {

BaselineStats batch_scrub_bch(const Bch& bch, SttramArray& array,
                              std::span<const std::uint64_t> units,
                              std::size_t min_batch) {
  BaselineStats stats;
  const std::size_t nsyn = 2 * static_cast<std::size_t>(bch.t());
  const auto apply = [&](std::uint64_t unit, BitVec& cw,
                         Bch::DecodeResult res) {
    switch (res.status) {
      case Bch::DecodeStatus::kClean:
        break;
      case Bch::DecodeStatus::kCorrected:
        array.write_line(unit, cw);  // note: may be a miscorrection (SDC)
        ++stats.corrected;
        break;
      case Bch::DecodeStatus::kUncorrectable:
        ++stats.due_units;
        stats.due_unit_ids.push_back(unit);
        break;
    }
  };

  BitVec cw(bch.codeword_bits());
  std::vector<BitVec> batch;
  std::vector<std::uint32_t> syn;
  BitPlanes planes;
  for (std::size_t base = 0; base < units.size(); base += BitPlanes::kMaxLines) {
    const std::size_t count =
        std::min<std::size_t>(BitPlanes::kMaxLines, units.size() - base);
    if (count < min_batch) {
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t unit = units[base + i];
        array.read_line(unit, cw);
        apply(unit, cw, bch.decode(cw));
      }
      continue;
    }
    if (batch.size() < count) batch.resize(count);
    syn.resize(count * nsyn);
    planes.reset(bch.codeword_bits(), count);
    for (std::size_t i = 0; i < count; ++i) {
      array.read_line(units[base + i], batch[i]);
      planes.load_line(i, batch[i].words());
    }
    planes.finalize();
    bch.batch_syndromes(planes, syn.data());
    for (std::size_t i = 0; i < count; ++i) {
      apply(units[base + i], batch[i],
            bch.decode_with_syndromes(batch[i],
                                      {syn.data() + i * nsyn, nsyn}));
    }
  }
  return stats;
}

}  // namespace sudoku::baselines
