// Generic Monte-Carlo fault-injection runner for baseline schemes
// (paper §VII-A). Mirrors reliability::run_montecarlo but drives any
// CacheScheme: inject Binomial faults, scrub touched units, classify
// DUE/SDC against a golden snapshot, refill lost units.
#pragma once

#include <cstdint>
#include <functional>

#include "baselines/scheme.h"
#include "faults/scenario.h"
#include "obs/metrics.h"

namespace sudoku::baselines {

struct BaselineMcConfig {
  double ber = 1e-4;  // per scrub interval
  std::uint64_t max_intervals = 1000;
  std::uint64_t target_failures = 0;  // stop early after N failing intervals
  std::uint64_t seed = 1;

  // Experiment-engine hooks — same contract as reliability::McConfig: in
  // per-trial-stream mode interval t is driven by an Rng seeded from
  // Rng::derive_stream_seed(seed, first_trial + t) and formatting uses the
  // reserved stream, so shard results are independent of thread count.
  bool per_trial_seed_streams = false;
  std::uint64_t first_trial = 0;
  std::function<bool()> stop_hook;  // checked per interval; true = abandon

  // Mixed-fault mode — same contract as reliability::McConfig::scenario:
  // interval t's faults come from the scenario (keyed by the global trial
  // index), stuck cells are re-asserted after every scrub, and each
  // interval ends restored to canonical state. The scenario's geometry
  // must match the scheme's (num_units x bits_per_unit); `ber` is ignored
  // when set. Immutable and shareable across shards.
  const faults::FaultScenario* scenario = nullptr;
};

struct BaselineMcResult {
  std::uint64_t intervals = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t corrected = 0;
  std::uint64_t due_units = 0;
  std::uint64_t sdc_units = 0;
  std::uint64_t failure_intervals = 0;

  // baseline.* event series (deterministic counts only; bit-identical
  // under the engine's ordered shard merge, like the fields above).
  obs::MetricsRegistry metrics;

  double p_failure_per_interval() const {
    return intervals ? static_cast<double>(failure_intervals) / intervals : 0.0;
  }
  double fit(double interval_s) const;

  // Shard-merge reduction for the experiment engine: plain sums.
  BaselineMcResult& operator+=(const BaselineMcResult& other);
};

BaselineMcResult run_baseline_mc(CacheScheme& scheme, const BaselineMcConfig& config);

}  // namespace sudoku::baselines
