// Per-trial seed streams for the experiment engine. A SeedSequence maps a
// base seed to an unbounded family of independent stream seeds via
// SplitMix64 (Rng::derive_stream_seed); trial t of an experiment always
// draws from stream t no matter which shard or thread executes it, which
// is what makes engine results bit-identical regardless of thread count.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace sudoku::exp {

class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t base) : base_(base) {}

  std::uint64_t base() const { return base_; }

  // Seed of stream `index` (one stream per trial index).
  std::uint64_t stream(std::uint64_t index) const {
    return Rng::derive_stream_seed(base_, index);
  }

  // Convenience: a generator positioned at the start of stream `index`.
  Rng rng(std::uint64_t index) const { return Rng(stream(index)); }

 private:
  std::uint64_t base_;
};

}  // namespace sudoku::exp
