// Importance-sampled rare-event Monte Carlo (ISSUE 8 tentpole b).
//
// The paper's headline numbers are tail probabilities: at the operating
// point (BER 5.3e-6, 20 ms scrub) a SuDoku-X RAID group fails with
// probability ~5e-8 per interval, so unweighted MC needs ~1e9 trials per
// observed event. The fix is count stratification. An interval's fault
// field is i.i.d. Bernoulli per bit, which factorises exactly as
//
//   P[fail] = sum_k P[K = k] * P[fail | K = k]
//
// with K ~ Binomial(total_bits, ber) and, *given* K = k, the k faulty
// positions uniform over distinct sites (FaultInjector::sample_exact).
// P[K = k] is closed-form (log_binom_pmf); only the conditional failure
// probabilities pi_k need simulation, and those are large (1e-4..1e-1 at
// group scale) where the unconditional probability is ~1e-8. The
// estimator therefore runs one conditional MC per fault count k — a
// normal engine campaign with McConfig::fixed_fault_count = k, so each
// stratum gets sharding, checkpoint/resume and the fleet queue for free —
// and recombines with exact Binomial weights. This is importance sampling
// with a *stratified* proposal: the likelihood ratio pmf_base(k)/q(k) is
// applied in closed form per stratum, so no weight variance is left
// except the Monte-Carlo noise of each pi_k.
//
// Trial allocation follows sqrt(pmf_base(k) * pmf_tilted(k)), where the
// tilted pmf raises the BER so its mean sits past the failure threshold —
// the classic exponential tilt, used here only to decide where trials go
// (the weights stay exact, so a bad tilt costs variance, never bias). The
// geometric mean approximates Neyman allocation when pi_k grows with k:
// most trials land on the low counts that dominate pmf_base * pi_k, with
// a decaying share along the tilted support. Counts that provably cannot
// fail (k < 2 for ECC-1: no line can see two faults; k < 4 for SuDoku-X:
// a DUE needs two lines with two faults each) are excluded exactly via
// min_count; truncated support mass is reported as excluded_mass so
// callers can bound the bias (a one-sided underestimate bounded by that
// mass).
//
// Scale note: clustering rarity, unlike count rarity, cannot be tilted
// away — at full-cache scale even a boosted count spreads over 2^20
// lines and pi_k stays unobservable. Run the estimator at *group* scale
// (num_lines = group_size) where pi_k is 1e-4..1e-1, then lift to the
// cache with lift_units (groups fail independently — the same
// log_cache_of_units composition the analytical models use).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "exp/mc_experiments.h"
#include "exp/result_sink.h"
#include "reliability/montecarlo.h"

namespace sudoku::exp {

// Model-agnostic description of one count-stratified campaign: the fault
// count is Binomial(total_bits, ber) and the caller supplies whatever
// conditional failure model applies. Used directly for closed-form toy
// models (tests, table2's ECC cross-check) and derived from a McConfig by
// RareEventConfig::stratify() for the full-controller estimator.
struct StratifyParams {
  double total_bits = 0;  // N of the Binomial fault count
  double ber = 0;         // per-bit fault probability per interval

  // Total conditional trials to spread across the strata.
  std::uint64_t trials = 20000;

  // Proposal tilt: BER whose Binomial mean sits in the failure region.
  // 0 = auto, mean = lambda + max(6, 2*sqrt(lambda)) — past the smallest
  // failure-capable counts even when lambda << 1.
  double tilted_ber = 0.0;

  // Counts below this cannot fail and are excluded exactly. 2 is right for
  // ECC-1 (any single fault in a unit is corrected line-locally).
  std::uint64_t min_count = 2;

  // Support cut: strata whose base *and* tilted pmf both fall below this
  // are truncated (mass reported in RareEventEstimate::excluded_mass).
  double support_epsilon = 1e-12;

  // Floor per kept stratum, so every pi_k gets a usable estimate.
  std::uint64_t min_stratum_trials = 64;
};

struct RareEventConfig {
  // Conditional-MC template: geometry, level, seed, verify flag. Run it at
  // group scale (cache.num_lines == cache.group_size) and lift — see the
  // scale note above. max_intervals / target_failures / fixed_fault_count
  // are managed per stratum and ignored on input; write-error mode is
  // rejected (the count tilt only covers retention faults).
  reliability::McConfig base;

  std::uint64_t trials = 20000;        // see StratifyParams
  double tilted_ber = 0.0;
  std::uint64_t min_count = 2;
  double support_epsilon = 1e-12;
  std::uint64_t min_stratum_trials = 64;

  // The Binomial count law implied by the controller geometry (num_lines
  // stored SuDoku codewords of sudoku_line_bits() each).
  StratifyParams stratify() const;
};

struct RareStratum {
  std::uint64_t count = 0;      // fault count k this stratum conditions on
  std::uint64_t trials = 0;     // allocated conditional trials
  double log_pmf_base = 0.0;    // ln P[K = k] under Binomial(N, base ber)
  double log_pmf_tilted = 0.0;  // ln P[K = k] under the tilted proposal
};

struct RareEventPlan {
  std::vector<RareStratum> strata;  // ascending count order
  double tilted_ber = 0.0;          // resolved (auto or explicit)
  std::uint64_t total_bits = 0;
  double excluded_mass = 0.0;       // base-pmf mass of truncated counts >= min_count
};

// Deterministic: a pure function of the params (no RNG draws).
RareEventPlan plan_strata(const StratifyParams& params);

struct RareStratumResult {
  RareStratum stratum;
  std::uint64_t intervals = 0;  // conditional trials actually run
  std::uint64_t failures = 0;   // failure intervals among them
};

struct RareEventEstimate {
  double p_unit = 0.0;        // per-unit per-interval failure probability
  double var_unit = 0.0;      // estimator variance (Agresti-Coull per stratum)
  double ess = 0.0;           // p(1-p)/var — unweighted trials this equals
  double excluded_mass = 0.0; // one-sided truncation bias bound
  std::uint64_t trials = 0;   // conditional trials consumed
  std::vector<RareStratumResult> strata;

  double ci95_unit() const;   // 1.96 * sqrt(var_unit)
};

// Pure recombination: p = sum_k pmf_base(k) * failures_k / trials_k, with
// per-stratum Agresti-Coull variance (the +1/+2 smoothing feeds only the
// variance; the point estimate stays the unbiased ratio).
RareEventEstimate combine_strata(const RareEventPlan& plan,
                                 const std::vector<RareStratumResult>& results);

// Serial driver for custom conditional models: `trial(count, rng)` returns
// whether one interval with exactly `count` faults failed. Deterministic
// for a given (plan, seed) — each stratum draws from its own derived
// stream. This is the path the likelihood-ratio tests and table2's ECC
// cross-check use; the full-controller estimator below goes through the
// experiment engine instead.
RareEventEstimate run_stratified(
    const RareEventPlan& plan, std::uint64_t seed,
    const std::function<bool(std::uint64_t count, Rng& rng)>& trial);

// Full estimator: plan, run each stratum as an engine campaign (inherits
// threads/checkpoint/fleet from `options`; stratum checkpoints separate
// automatically because fixed_fault_count feeds the config hash), combine.
// `stats` accumulates trials and wall clock across strata.
RareEventEstimate run_rare_event(const RareEventConfig& config,
                                 const ExpOptions& options = {},
                                 RunStats* stats = nullptr);

// Lift a per-unit probability to n independent units (1 - (1-p)^n) and
// propagate its variance (delta method: slope n*(1-p)^(n-1)).
double lift_units(double p_unit, double n_units);
double lift_units_variance(double p_unit, double var_unit, double n_units);

}  // namespace sudoku::exp
