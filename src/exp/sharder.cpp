#include "exp/sharder.h"

#include <algorithm>

namespace sudoku::exp {

std::vector<Shard> make_shards(std::uint64_t total, std::uint64_t chunk) {
  chunk = std::max<std::uint64_t>(chunk, 1);
  std::vector<Shard> shards;
  shards.reserve(static_cast<std::size_t>((total + chunk - 1) / chunk));
  for (std::uint64_t first = 0; first < total; first += chunk) {
    shards.push_back({shards.size(), first, std::min(chunk, total - first)});
  }
  return shards;
}

std::uint64_t default_chunk(std::uint64_t total) {
  return std::clamp<std::uint64_t>(total / 16, 64, 65536);
}

EarlyStop::EarlyStop(std::uint64_t num_shards, std::uint64_t target)
    : target_(target),
      failures_(num_shards, 0),
      completed_(num_shards, false) {}

void EarlyStop::record(std::uint64_t shard_index, std::uint64_t failures) {
  std::lock_guard<std::mutex> lock(mutex_);
  failures_[shard_index] = failures;
  completed_[shard_index] = true;
  while (prefix_len_ < completed_.size() && completed_[prefix_len_]) {
    prefix_failures_ += failures_[prefix_len_];
    ++prefix_len_;
  }
}

bool EarlyStop::triggered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return target_ != 0 && prefix_failures_ >= target_;
}

std::uint64_t EarlyStop::prefix_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return prefix_failures_;
}

}  // namespace sudoku::exp
