// Minimal JSON emitter for experiment artifacts: ordered objects and
// arrays of strings, booleans, integers and doubles. Doubles are printed
// with the fewest significant digits that still parse back to exactly the
// same value (round-trip safe), so artifacts can be diffed and re-read
// without losing precision. No parser — artifacts are write-only here.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sudoku::exp {

// Escape for inclusion inside a JSON string literal (quotes not added).
std::string json_escape(const std::string& s);

// Shortest representation of v that strtod round-trips exactly. Non-finite
// values (not representable in JSON) render as null.
std::string json_number(double v);
std::string json_number(std::uint64_t v);
std::string json_number(std::int64_t v);

class JsonArray;

// Insertion-ordered JSON object builder. Values are rendered eagerly, so
// the builder holds only strings.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::uint64_t value);
  JsonObject& set(const std::string& key, std::int64_t value);
  JsonObject& set(const std::string& key, int value);
  JsonObject& set(const std::string& key, unsigned value);
  JsonObject& set(const std::string& key, bool value);
  JsonObject& set(const std::string& key, const JsonObject& value);
  JsonObject& set(const std::string& key, const JsonArray& value);

  // Render compactly ({"k":v,...}) or pretty-printed with 2-space indent.
  std::string str(bool pretty = false, int indent = 0) const;

 private:
  JsonObject& set_raw(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> members_;
};

class JsonArray {
 public:
  JsonArray& push(const std::string& value);
  JsonArray& push(const char* value);
  JsonArray& push(double value);
  JsonArray& push(std::uint64_t value);
  JsonArray& push(bool value);
  JsonArray& push(const JsonObject& value);

  std::size_t size() const { return items_.size(); }
  std::string str(bool pretty = false, int indent = 0) const;

 private:
  std::vector<std::string> items_;
};

}  // namespace sudoku::exp
