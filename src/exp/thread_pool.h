// Work-stealing thread pool for the experiment engine. Each worker owns a
// deque — LIFO for the owner (cache-warm), FIFO for thieves — fed by a
// global injector queue for tasks submitted from outside the pool. Workers
// that find nothing locally scan the injector, then steal round-robin from
// the other workers, then park on a condition variable until new work is
// announced — an idle pool consumes no CPU, which matters when it backs a
// long-lived service (src/service keeps its scrub pool alive between
// bursts). submit() elides the wake syscall when no worker is parked: the
// parked-worker count and the pending-task count are both seq_cst, so the
// submitter's "pending then sleepers" store-load and the parker's
// "sleepers then pending" store-load cannot both miss (at least one side
// observes the other; no lost wakeup).
//
// Determinism note: the pool schedules shards in whatever order the OS
// lets it; reproducibility is the *engine's* job (per-trial seed streams +
// order-independent merges, see engine.h) — nothing here is ordered.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sudoku::exp {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // 0 = one worker per hardware thread.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. From a worker thread it lands on that worker's own
  // deque (LIFO end); from any other thread it goes to the injector.
  //
  // Exceptions are caught at the task boundary (a throwing task can never
  // std::terminate the pool): the first one is stashed and rethrown from
  // the next wait_idle() call.
  void submit(Task task);

  // Block until every task submitted so far has finished executing. Must
  // not be called from inside a pool task. Rethrows the first exception
  // any submit()ed task threw since the last wait_idle().
  void wait_idle();

  // Run fn(0..n-1), each index as one pool task, and block until all have
  // finished. Must not be called from inside a pool task.
  //
  // A throwing fn(i) does not tear anything down: every other index still
  // runs to completion, and the first exception (in completion order) is
  // rethrown to the caller after the join. Callers wanting finer-grained
  // policy (retry, quarantine) catch inside fn — see exp/engine.h.
  void parallel_for(std::uint64_t n, const std::function<void(std::uint64_t)>& fn);

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  static unsigned hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
  }

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> deque;  // owner pops back, thieves pop front
  };

  void worker_loop(unsigned index);
  bool try_pop_local(unsigned index, Task& out);
  bool try_pop_injector(Task& out);
  bool try_steal(unsigned index, Task& out);
  void finish_task();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex injector_mutex_;  // also guards sleep/wake handshakes
  std::condition_variable work_cv_;
  std::deque<Task> injector_;
  std::atomic<std::uint64_t> pending_{0};    // queued, not yet started
  std::atomic<std::uint64_t> in_flight_{0};  // queued or executing
  std::atomic<unsigned> sleepers_{0};        // workers parked on work_cv_
  bool stop_ = false;

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  std::mutex error_mutex_;           // guards first_error_
  std::exception_ptr first_error_;   // from submit()ed tasks; see wait_idle()
};

}  // namespace sudoku::exp
