#include "exp/rare_event.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/prob.h"

namespace sudoku::exp {

namespace {

// Distinct stream index for each stratum's base seed, far from the trial
// indices (which start at 0) and from kFormatStream (~0ull).
constexpr std::uint64_t kRareStreamBase = 0x7261726556ull;  // "rareV"

double resolve_tilted_ber(const StratifyParams& params) {
  if (params.tilted_ber > 0.0) return params.tilted_ber;
  const double lambda = params.total_bits * params.ber;
  const double tilted_mean = lambda + std::max(6.0, 2.0 * std::sqrt(lambda));
  return std::min(1.0, tilted_mean / params.total_bits);
}

}  // namespace

StratifyParams RareEventConfig::stratify() const {
  if (base.host_writes_per_interval != 0 || base.wer != 0.0) {
    throw std::runtime_error(
        "rare_event: write-error mode is not supported (the count tilt only "
        "covers retention faults)");
  }
  StratifyParams p;
  // Mirrors run_montecarlo's controller construction: the stored line is
  // the SuDoku codeword (data + CRC + ECC bits).
  p.total_bits = static_cast<double>(base.cache.num_lines) *
                 static_cast<double>(base.cache.sudoku_line_bits());
  p.ber = base.cache.ber;
  p.trials = trials;
  p.tilted_ber = tilted_ber;
  p.min_count = min_count;
  p.support_epsilon = support_epsilon;
  p.min_stratum_trials = min_stratum_trials;
  return p;
}

RareEventPlan plan_strata(const StratifyParams& params) {
  if (params.total_bits <= 0 || params.ber <= 0.0 || params.ber >= 1.0) {
    throw std::runtime_error("rare_event: need total_bits > 0 and ber in (0,1)");
  }
  RareEventPlan plan;
  plan.total_bits = static_cast<std::uint64_t>(params.total_bits);
  plan.tilted_ber = resolve_tilted_ber(params);

  // Support: every count >= min_count where either distribution still has
  // mass. Both pmfs are unimodal, so stop once past both means with both
  // below the cut.
  const double base_mean = params.total_bits * params.ber;
  const double tilted_mean = params.total_bits * plan.tilted_ber;
  const double past_means = std::max(base_mean, tilted_mean);
  double weight_sum = 0.0;
  std::vector<double> weights;
  for (std::uint64_t k = params.min_count;
       k <= static_cast<std::uint64_t>(params.total_bits); ++k) {
    const double kd = static_cast<double>(k);
    const double lp_base = log_binom_pmf(params.total_bits, kd, params.ber);
    const double lp_tilted = log_binom_pmf(params.total_bits, kd, plan.tilted_ber);
    const double w = std::exp(std::max(lp_base, lp_tilted));
    if (w < params.support_epsilon) {
      if (kd > past_means) break;  // tail truncation — accounted below
      continue;                    // gap below the modes (possible when min_count
                                   // sits under a high tilt); keep scanning
    }
    RareStratum s;
    s.count = k;
    s.log_pmf_base = lp_base;
    s.log_pmf_tilted = lp_tilted;
    plan.strata.push_back(s);
    // Allocation weight: geometric mean of the two pmfs. Neyman-optimal
    // allocation is pmf_base(k)*sqrt(pi_k(1-pi_k)) with pi_k unknown a
    // priori; since pi_k grows with k while pmf_base decays factorially,
    // the geometric mean splits the difference — most trials go to the
    // low counts that dominate the estimate, a decaying share follows the
    // tilted support so a surprise heavy tail would still be seen. A bad
    // split costs variance only, never bias (the per-stratum weights stay
    // the exact base pmf).
    const double wa = std::exp(0.5 * (lp_base + lp_tilted));
    weights.push_back(wa);
    weight_sum += wa;
  }
  if (plan.strata.empty()) {
    throw std::runtime_error(
        "rare_event: empty stratum support — support_epsilon too high or "
        "min_count past both distributions");
  }

  // Largest-remainder allocation proportional to the union weight, then a
  // floor so every kept stratum's pi_k is actually estimable. The floor
  // may push the total slightly over `trials`; determinism matters more
  // than hitting the budget exactly.
  std::uint64_t assigned = 0;
  std::vector<std::pair<double, std::size_t>> fractional;
  for (std::size_t i = 0; i < plan.strata.size(); ++i) {
    const double raw =
        static_cast<double>(params.trials) * (weights[i] / weight_sum);
    const auto whole = static_cast<std::uint64_t>(raw);
    plan.strata[i].trials = whole;
    assigned += whole;
    fractional.emplace_back(raw - static_cast<double>(whole), i);
  }
  std::sort(fractional.begin(), fractional.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;  // deterministic tie-break: low count
            });
  for (std::size_t j = 0; assigned < params.trials; ++j) {
    ++plan.strata[fractional[j % fractional.size()].second].trials;
    ++assigned;
  }
  for (auto& s : plan.strata) {
    s.trials = std::max(s.trials, params.min_stratum_trials);
  }

  // Truncation accounting: base mass at or above min_count not covered by
  // a stratum. Linear domain is safe — every term here is >= the pmf cut
  // or a tail already small enough that underflow means "zero bias".
  double covered = 0.0;
  for (const auto& s : plan.strata) covered += std::exp(s.log_pmf_base);
  const double tail_ge_min = std::exp(log_binom_tail_ge(
      params.total_bits, static_cast<double>(params.min_count), params.ber));
  plan.excluded_mass = std::max(0.0, tail_ge_min - covered);
  return plan;
}

double RareEventEstimate::ci95_unit() const { return 1.96 * std::sqrt(var_unit); }

RareEventEstimate combine_strata(const RareEventPlan& plan,
                                 const std::vector<RareStratumResult>& results) {
  RareEventEstimate est;
  est.excluded_mass = plan.excluded_mass;
  est.strata = results;
  for (const auto& r : results) {
    if (r.intervals == 0) continue;
    const double n = static_cast<double>(r.intervals);
    const double pmf = std::exp(r.stratum.log_pmf_base);
    const double pi_hat = static_cast<double>(r.failures) / n;
    est.p_unit += pmf * pi_hat;
    // Agresti-Coull smoothing for the variance only: an all-success or
    // all-failure stratum still reports nonzero uncertainty instead of a
    // spuriously exact pi_k.
    const double pi_tilde = (static_cast<double>(r.failures) + 1.0) / (n + 2.0);
    est.var_unit += pmf * pmf * pi_tilde * (1.0 - pi_tilde) / n;
    est.trials += r.intervals;
  }
  if (est.var_unit > 0.0) {
    est.ess = est.p_unit * (1.0 - est.p_unit) / est.var_unit;
  }
  return est;
}

RareEventEstimate run_stratified(
    const RareEventPlan& plan, std::uint64_t seed,
    const std::function<bool(std::uint64_t count, Rng& rng)>& trial) {
  std::vector<RareStratumResult> results;
  results.reserve(plan.strata.size());
  for (const auto& stratum : plan.strata) {
    Rng rng(Rng::derive_stream_seed(seed, kRareStreamBase + stratum.count));
    RareStratumResult out;
    out.stratum = stratum;
    for (std::uint64_t t = 0; t < stratum.trials; ++t) {
      ++out.intervals;
      if (trial(stratum.count, rng)) ++out.failures;
    }
    results.push_back(out);
  }
  return combine_strata(plan, results);
}

RareEventEstimate run_rare_event(const RareEventConfig& config,
                                 const ExpOptions& options, RunStats* stats) {
  const RareEventPlan plan = plan_strata(config.stratify());
  std::vector<RareStratumResult> results;
  results.reserve(plan.strata.size());
  for (const auto& stratum : plan.strata) {
    reliability::McConfig mc = config.base;
    mc.fixed_fault_count = static_cast<std::int64_t>(stratum.count);
    mc.max_intervals = stratum.trials;
    mc.target_failures = 0;  // every stratum runs its full allocation
    // Independent randomness per stratum; trial streams then derive from
    // this per-stratum base inside the engine.
    mc.seed = Rng::derive_stream_seed(config.base.seed,
                                      kRareStreamBase + stratum.count);
    RunStats stratum_stats;
    const reliability::McResult r =
        run_montecarlo_parallel(mc, options, &stratum_stats);
    if (stats) {
      stats->trials += stratum_stats.trials;
      stats->wall_seconds += stratum_stats.wall_seconds;
      stats->threads = stratum_stats.threads;
      stats->shards += stratum_stats.shards;
    }
    RareStratumResult out;
    out.stratum = stratum;
    out.intervals = r.intervals;
    out.failures = r.failure_intervals;
    results.push_back(out);
  }
  return combine_strata(plan, results);
}

double lift_units(double p_unit, double n_units) {
  if (p_unit <= 0.0) return 0.0;
  if (p_unit >= 1.0) return 1.0;
  return -std::expm1(n_units * std::log1p(-p_unit));
}

double lift_units_variance(double p_unit, double var_unit, double n_units) {
  if (p_unit <= 0.0 || p_unit >= 1.0) return 0.0;
  const double slope = n_units * std::pow(1.0 - p_unit, n_units - 1.0);
  return slope * slope * var_unit;
}

}  // namespace sudoku::exp
