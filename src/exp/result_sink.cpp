#include "exp/result_sink.h"

#include <stdexcept>
#include <system_error>

#include "exp/atomic_file.h"
#include "exp/metrics_io.h"

namespace sudoku::exp {

JsonObject RunStats::to_json() const {
  JsonObject o;
  o.set("trials", trials)
      .set("wall_seconds", wall_seconds)
      .set("trials_per_second", trials_per_second())
      .set("threads", threads)
      .set("shards", shards);
  return o;
}

JsonObject ResultSink::make_root(const std::string& name, const JsonObject& config,
                                 const JsonObject& result, const RunStats& stats,
                                 const obs::MetricsRegistry* metrics,
                                 const ShardRunReport* report) {
  JsonObject root;
  root.set("experiment", name)
      .set("config", config)
      .set("result", result)
      .set("throughput", stats.to_json());
  if (metrics != nullptr) {
    root.set("metrics", metrics_to_json(*metrics));
  }
  // Only a degraded run changes the artifact shape — complete runs stay
  // byte-identical whether or not fault tolerance was active.
  if (report != nullptr && report->degraded()) {
    root.set("degraded", true).set("shard_errors", report->errors_json());
  }
  return root;
}

std::filesystem::path ResultSink::write(const std::string& name,
                                        const JsonObject& config,
                                        const JsonObject& result,
                                        const RunStats& stats,
                                        const obs::MetricsRegistry* metrics,
                                        const ShardRunReport* report) const {
  return write_raw(name, make_root(name, config, result, stats, metrics, report));
}

std::filesystem::path ResultSink::write_raw(const std::string& name,
                                            const JsonObject& root) const {
  std::error_code ec;
  std::filesystem::create_directories(out_dir_, ec);
  if (ec) {
    throw std::runtime_error("ResultSink: cannot create output directory '" +
                             out_dir_.string() + "': " + ec.message());
  }
  const std::filesystem::path path = out_dir_ / (name + ".json");
  try {
    atomic_write_file(path, root.str(/*pretty=*/true) + '\n');
  } catch (const std::exception& e) {
    throw std::runtime_error("ResultSink: failed to write artifact '" +
                             path.string() + "': " + e.what());
  }
  return path;
}

}  // namespace sudoku::exp
