#include "exp/result_sink.h"

#include <fstream>

namespace sudoku::exp {

JsonObject RunStats::to_json() const {
  JsonObject o;
  o.set("trials", trials)
      .set("wall_seconds", wall_seconds)
      .set("trials_per_second", trials_per_second())
      .set("threads", threads)
      .set("shards", shards);
  return o;
}

std::filesystem::path ResultSink::write(const std::string& name,
                                        const JsonObject& config,
                                        const JsonObject& result,
                                        const RunStats& stats) const {
  JsonObject root;
  root.set("experiment", name)
      .set("config", config)
      .set("result", result)
      .set("throughput", stats.to_json());
  return write_raw(name, root);
}

std::filesystem::path ResultSink::write_raw(const std::string& name,
                                            const JsonObject& root) const {
  std::filesystem::create_directories(out_dir_);
  const std::filesystem::path path = out_dir_ / (name + ".json");
  std::ofstream out(path);
  out << root.str(/*pretty=*/true) << '\n';
  return path;
}

}  // namespace sudoku::exp
