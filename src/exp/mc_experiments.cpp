#include "exp/mc_experiments.h"

#include <chrono>
#include <optional>

#include "exp/engine.h"
#include "exp/sharder.h"
#include "exp/thread_pool.h"

namespace sudoku::exp {

namespace {

std::uint64_t resolve_chunk(const ExpOptions& options, std::uint64_t total) {
  return options.chunk ? options.chunk : default_chunk(total);
}

// Runs `launch` (which receives the shard plan) under wall-clock timing
// and fills `stats` from the merged result's interval count.
template <typename Result, typename LaunchFn>
Result timed_run(const ExpOptions& options, std::uint64_t total,
                 RunStats* stats, LaunchFn&& launch) {
  const std::uint64_t chunk = resolve_chunk(options, total);
  const auto shards = make_shards(total, chunk);
  ThreadPool pool(options.threads);
  const auto t0 = std::chrono::steady_clock::now();
  Result merged = launch(pool, shards);
  const auto t1 = std::chrono::steady_clock::now();
  if (stats) {
    stats->trials = merged.intervals;
    stats->wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    stats->threads = pool.size();
    stats->shards = shards.size();
  }
  return merged;
}

// Wraps one shard execution: installs the per-trial stream window, gives
// the shard the global intra-shard target (bounds overshoot), and reports
// std::nullopt when the shard was abandoned via the early-stop hook — the
// caller must not record such partial results.
template <typename Config, typename RunFn>
auto run_shard(Config config, const Shard& shard, const EarlyStop& early,
               RunFn&& run) -> std::optional<decltype(run(config))> {
  config.per_trial_seed_streams = true;
  config.first_trial = shard.first;
  config.max_intervals = shard.count;
  bool aborted = false;
  config.stop_hook = [&early, &aborted] {
    if (early.triggered()) aborted = true;
    return aborted;
  };
  auto result = run(config);
  if (aborted) return std::nullopt;
  return result;
}

}  // namespace

reliability::McResult run_montecarlo_parallel(const reliability::McConfig& config,
                                              const ExpOptions& options,
                                              RunStats* stats) {
  return timed_run<reliability::McResult>(
      options, config.max_intervals, stats, [&](ThreadPool& pool, const auto& shards) {
        return run_sharded<reliability::McResult>(
            pool, shards, config.target_failures,
            [&](const Shard& shard, const EarlyStop& early) {
              return run_shard(config, shard, early,
                               [](const reliability::McConfig& c) {
                                 return reliability::run_montecarlo(c);
                               });
            });
      });
}

baselines::BaselineMcResult run_baseline_mc_parallel(
    const SchemeFactory& factory, const baselines::BaselineMcConfig& config,
    const ExpOptions& options, RunStats* stats) {
  return timed_run<baselines::BaselineMcResult>(
      options, config.max_intervals, stats, [&](ThreadPool& pool, const auto& shards) {
        return run_sharded<baselines::BaselineMcResult>(
            pool, shards, config.target_failures,
            [&](const Shard& shard, const EarlyStop& early) {
              return run_shard(config, shard, early,
                               [&factory](const baselines::BaselineMcConfig& c) {
                                 auto scheme = factory();
                                 return baselines::run_baseline_mc(*scheme, c);
                               });
            });
      });
}

}  // namespace sudoku::exp
