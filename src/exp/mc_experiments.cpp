#include "exp/mc_experiments.h"

#include <chrono>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "exp/engine.h"
#include "exp/json_parse.h"
#include "exp/metrics_io.h"
#include "exp/sharder.h"
#include "exp/shutdown.h"
#include "exp/thread_pool.h"
#include "exp/work_queue.h"

namespace sudoku::exp {

namespace {

constexpr std::uint64_t kPayloadVersion = 1;

std::uint64_t resolve_chunk(const ExpOptions& options, std::uint64_t total) {
  return options.chunk ? options.chunk : default_chunk(total);
}

// Canonical config fingerprinting for checkpoint keys. Doubles are hashed
// by bit pattern — any representable change invalidates, equal bits match.
void feed(std::ostringstream& os, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  os << bits << '|';
}
void feed(std::ostringstream& os, std::uint64_t v) { os << v << '|'; }

std::uint64_t hash_mc_config(const reliability::McConfig& c, std::uint64_t chunk,
                             const std::string& scope) {
  std::ostringstream os;
  os << "mc|" << scope << '|';
  feed(os, static_cast<std::uint64_t>(c.cache.num_lines));
  feed(os, static_cast<std::uint64_t>(c.cache.group_size));
  feed(os, c.cache.ber);
  feed(os, c.cache.scrub_interval_s);
  feed(os, static_cast<std::uint64_t>(c.cache.inner_ecc_t));
  feed(os, static_cast<std::uint64_t>(c.level));
  feed(os, c.seed);
  feed(os, c.max_intervals);
  feed(os, c.target_failures);
  feed(os, static_cast<std::uint64_t>(c.verify_against_golden));
  feed(os, static_cast<std::uint64_t>(c.fixed_fault_count + 1));
  feed(os, c.host_writes_per_interval);
  feed(os, c.wer);
  // Scenario identity (spec + geometry + seed): checkpoints recorded under
  // one fault scenario must never be adopted by a run under another.
  feed(os, c.scenario ? c.scenario->fingerprint() : std::uint64_t{0});
  feed(os, chunk);  // the shard plan is part of the key
  return fnv1a64(os.str());
}

std::uint64_t hash_baseline_config(const baselines::BaselineMcConfig& c,
                                   std::uint64_t chunk, const std::string& scope) {
  std::ostringstream os;
  os << "baseline|" << scope << '|';
  feed(os, c.ber);
  feed(os, c.max_intervals);
  feed(os, c.target_failures);
  feed(os, c.seed);
  feed(os, c.scenario ? c.scenario->fingerprint() : std::uint64_t{0});
  feed(os, chunk);
  return fnv1a64(os.str());
}

// Runs `launch` (which receives the shard plan) under wall-clock timing
// and fills `stats` from the merged result's interval count.
template <typename Result, typename LaunchFn>
Result timed_run(const ExpOptions& options, std::uint64_t total,
                 RunStats* stats, LaunchFn&& launch) {
  const std::uint64_t chunk = resolve_chunk(options, total);
  const auto shards = make_shards(total, chunk);
  ThreadPool pool(options.threads);
  const auto t0 = std::chrono::steady_clock::now();
  Result merged = launch(pool, shards);
  const auto t1 = std::chrono::steady_clock::now();
  if (stats) {
    stats->trials = merged.intervals;
    stats->wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    stats->threads = pool.size();
    stats->shards = shards.size();
  }
  return merged;
}

// Wraps one shard execution: installs the per-trial stream window, gives
// the shard the global intra-shard target (bounds overshoot), and reports
// std::nullopt when the shard was abandoned via the early-stop hook or a
// requested shutdown — the caller must not record such partial results.
template <typename Config, typename RunFn>
auto run_shard(Config config, const Shard& shard, const EarlyStop& early,
               RunFn&& run) -> std::optional<decltype(run(config))> {
  config.per_trial_seed_streams = true;
  config.first_trial = shard.first;
  config.max_intervals = shard.count;
  bool aborted = false;
  config.stop_hook = [&early, &aborted] {
    if (early.triggered() || shutdown_requested()) aborted = true;
    return aborted;
  };
  auto result = run(config);
  if (aborted) return std::nullopt;
  return result;
}

// Shared fault-tolerance wiring for both adapters.
template <typename Result>
RunShardedOptions<Result> make_engine_options(
    const ExpOptions& options, std::uint64_t target_failures,
    std::uint64_t config_hash, std::uint64_t base_seed,
    const std::string& default_scope,
    std::string (*encode)(const Result&),
    std::optional<Result> (*decode)(const std::string&)) {
  RunShardedOptions<Result> opt;
  opt.target_failures = target_failures;
  opt.quarantine = true;
  opt.max_attempts = options.max_attempts;
  opt.report = options.report;
  opt.after_shard = options.after_shard;
  if (options.checkpoint) {
    opt.checkpoint = options.checkpoint;
    opt.key.experiment =
        options.checkpoint_scope.empty() ? default_scope : options.checkpoint_scope;
    opt.key.config_hash = config_hash;
    opt.key.base_seed = base_seed;
    opt.encode = encode;
    opt.decode = decode;
  }
  return opt;
}

// Fleet mode lives outside make_engine_options because the queue must
// outlive the engine call: the caller provides the storage, this attaches.
template <typename Result>
void attach_fleet(const ExpOptions& options, RunShardedOptions<Result>& opt,
                  std::optional<ShardWorkQueue>& queue) {
  if (!options.fleet) return;
  if (!opt.checkpoint) {
    throw std::runtime_error(
        "ExpOptions: fleet mode requires a checkpoint store (the shared "
        "store is how workers coordinate)");
  }
  WorkQueueOptions qopt;
  qopt.lease = std::chrono::milliseconds(options.lease_ms);
  qopt.poll = std::chrono::milliseconds(options.poll_ms);
  queue.emplace(opt.checkpoint, opt.key, qopt);
  opt.queue = &*queue;
}

// ---- payload helpers ---------------------------------------------------

bool read_u64(const JsonValue& root, const char* key, std::uint64_t* out) {
  const JsonValue* v = root.find(key);
  if (!v) return false;
  const auto n = v->as_u64();
  if (!n) return false;
  *out = *n;
  return true;
}

bool read_metrics(const JsonValue& root, obs::MetricsRegistry* out) {
  const JsonValue* m = root.find("metrics");
  if (!m) return false;
  auto reg = metrics_from_json(*m);
  if (!reg) return false;
  *out = std::move(*reg);
  return true;
}

bool payload_version_ok(const JsonValue& root) {
  std::uint64_t v = 0;
  return read_u64(root, "v", &v) && v == kPayloadVersion;
}

}  // namespace

reliability::McResult run_montecarlo_parallel(const reliability::McConfig& config,
                                              const ExpOptions& options,
                                              RunStats* stats) {
  const std::uint64_t chunk = resolve_chunk(options, config.max_intervals);
  auto ropt = make_engine_options<reliability::McResult>(
      options, config.target_failures,
      hash_mc_config(config, chunk, options.checkpoint_scope), config.seed,
      "montecarlo", &encode_mc_result, &decode_mc_result);
  std::optional<ShardWorkQueue> queue;
  attach_fleet(options, ropt, queue);
  return timed_run<reliability::McResult>(
      options, config.max_intervals, stats, [&](ThreadPool& pool, const auto& shards) {
        return run_sharded<reliability::McResult>(
            pool, shards, ropt,
            [&](const Shard& shard, const EarlyStop& early) {
              return run_shard(config, shard, early,
                               [](const reliability::McConfig& c) {
                                 return reliability::run_montecarlo(c);
                               });
            });
      });
}

baselines::BaselineMcResult run_baseline_mc_parallel(
    const SchemeFactory& factory, const baselines::BaselineMcConfig& config,
    const ExpOptions& options, RunStats* stats) {
  const std::uint64_t chunk = resolve_chunk(options, config.max_intervals);
  auto ropt = make_engine_options<baselines::BaselineMcResult>(
      options, config.target_failures,
      hash_baseline_config(config, chunk, options.checkpoint_scope), config.seed,
      "baseline_mc", &encode_baseline_mc_result, &decode_baseline_mc_result);
  std::optional<ShardWorkQueue> queue;
  attach_fleet(options, ropt, queue);
  return timed_run<baselines::BaselineMcResult>(
      options, config.max_intervals, stats, [&](ThreadPool& pool, const auto& shards) {
        return run_sharded<baselines::BaselineMcResult>(
            pool, shards, ropt,
            [&](const Shard& shard, const EarlyStop& early) {
              return run_shard(config, shard, early,
                               [&factory](const baselines::BaselineMcConfig& c) {
                                 auto scheme = factory();
                                 return baselines::run_baseline_mc(*scheme, c);
                               });
            });
      });
}

std::string encode_mc_result(const reliability::McResult& r) {
  JsonObject o;
  o.set("v", kPayloadVersion)
      .set("intervals", r.intervals)
      .set("faults_injected", r.faults_injected)
      .set("ecc1_corrections", r.ecc1_corrections)
      .set("raid4_repairs", r.raid4_repairs)
      .set("sdr_repairs", r.sdr_repairs)
      .set("hash2_invocations", r.hash2_invocations)
      .set("groups_repaired", r.groups_repaired)
      .set("due_lines", r.due_lines)
      .set("sdc_lines", r.sdc_lines)
      .set("failure_intervals", r.failure_intervals)
      .set("metrics", metrics_to_json(r.metrics));
  return o.str();
}

std::optional<reliability::McResult> decode_mc_result(const std::string& payload) {
  const auto root = json_parse(payload);
  if (!root || !payload_version_ok(*root)) return std::nullopt;
  reliability::McResult r;
  if (!read_u64(*root, "intervals", &r.intervals) ||
      !read_u64(*root, "faults_injected", &r.faults_injected) ||
      !read_u64(*root, "ecc1_corrections", &r.ecc1_corrections) ||
      !read_u64(*root, "raid4_repairs", &r.raid4_repairs) ||
      !read_u64(*root, "sdr_repairs", &r.sdr_repairs) ||
      !read_u64(*root, "hash2_invocations", &r.hash2_invocations) ||
      !read_u64(*root, "groups_repaired", &r.groups_repaired) ||
      !read_u64(*root, "due_lines", &r.due_lines) ||
      !read_u64(*root, "sdc_lines", &r.sdc_lines) ||
      !read_u64(*root, "failure_intervals", &r.failure_intervals) ||
      !read_metrics(*root, &r.metrics)) {
    return std::nullopt;
  }
  return r;
}

std::string encode_baseline_mc_result(const baselines::BaselineMcResult& r) {
  JsonObject o;
  o.set("v", kPayloadVersion)
      .set("intervals", r.intervals)
      .set("faults_injected", r.faults_injected)
      .set("corrected", r.corrected)
      .set("due_units", r.due_units)
      .set("sdc_units", r.sdc_units)
      .set("failure_intervals", r.failure_intervals)
      .set("metrics", metrics_to_json(r.metrics));
  return o.str();
}

std::optional<baselines::BaselineMcResult> decode_baseline_mc_result(
    const std::string& payload) {
  const auto root = json_parse(payload);
  if (!root || !payload_version_ok(*root)) return std::nullopt;
  baselines::BaselineMcResult r;
  if (!read_u64(*root, "intervals", &r.intervals) ||
      !read_u64(*root, "faults_injected", &r.faults_injected) ||
      !read_u64(*root, "corrected", &r.corrected) ||
      !read_u64(*root, "due_units", &r.due_units) ||
      !read_u64(*root, "sdc_units", &r.sdc_units) ||
      !read_u64(*root, "failure_intervals", &r.failure_intervals) ||
      !read_metrics(*root, &r.metrics)) {
    return std::nullopt;
  }
  return r;
}

}  // namespace sudoku::exp
