// Multi-process shard work queue over the checkpoint store (docs/fleet.md).
//
// The crash-safe checkpoint layer already publishes every finished shard
// as an atomic file under a config-hash-keyed directory; this adds the one
// missing atom — an exclusive *claim* — so N independent processes (or
// hosts sharing a filesystem) can pull shards of one experiment without
// coordination and each produce the same bit-identical merged artifact:
//
//   shard-<k>.json   — the result, published by CheckpointStore::save
//                      (temp + rename; idempotent, last writer wins)
//   shard-<k>.claim  — ownership marker, created with O_CREAT|O_EXCL;
//                      exactly one of N racing workers wins the create
//
// Protocol per shard: done-file exists -> load it; else try_claim; on
// success compute, save the done file, release the claim. A worker that
// dies mid-shard leaves a claim whose mtime stops advancing; any peer may
// take it over once the lease expires (steal_stale: atomically rename the
// stale claim to a tombstone — only one stealer wins the rename — then
// re-claim). Because shard results are pure functions of (config, seed,
// trial range), duplicated execution after a takeover race is harmless:
// both workers publish identical bytes.
//
// Nothing here blocks: the engine's wait pass (engine.h) polls
// load_done/try_claim/steal_stale until the plan is complete, so every
// worker ends up holding all shard results and the final deterministic
// merge can run anywhere.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "exp/checkpoint.h"

namespace sudoku::exp {

struct WorkQueueOptions {
  // A claim older than this (by file mtime) with no done-file is treated
  // as abandoned and may be stolen. Must comfortably exceed the longest
  // shard's runtime; the default suits the repo's second-scale shards.
  std::chrono::milliseconds lease{10000};
  // Wait-pass sleep between polls of a foreign-owned shard.
  std::chrono::milliseconds poll{20};
};

class ShardWorkQueue {
 public:
  ShardWorkQueue(const CheckpointStore* store, CheckpointKey key,
                 WorkQueueOptions options = {});

  const WorkQueueOptions& options() const { return options_; }

  // Payload of a finished shard, regardless of the store's resume flag —
  // done-files written by sibling workers of this same run must be visible
  // even in a cold-start (--checkpoint without --resume) invocation.
  std::optional<std::string> load_done(std::uint64_t shard_index) const;

  // Exclusive-create the claim marker. True = this process owns the shard
  // and must eventually publish its done-file and release(). False = a
  // peer owns it (or finished it). Creates the key directory on demand.
  bool try_claim(std::uint64_t shard_index) const;

  // Drop this worker's claim marker after the done-file is published (or
  // after the shard was quarantined, so peers can attempt it themselves).
  // Missing file is fine — a stealer may have renamed it already.
  void release(std::uint64_t shard_index) const;

  // Take over an expired claim: if the claim file exists, has outlived the
  // lease, and still has no done-file, rename it aside (one winner among
  // racing stealers) and re-claim. Returns true when the caller now owns
  // the shard.
  bool steal_stale(std::uint64_t shard_index) const;

  std::filesystem::path claim_path(std::uint64_t shard_index) const;

 private:
  const CheckpointStore* store_;
  CheckpointKey key_;
  WorkQueueOptions options_;
  std::string worker_tag_;  // host:pid, stored in claim files for debugging
};

}  // namespace sudoku::exp
