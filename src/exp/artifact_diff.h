// Tolerance-aware comparator for experiment artifacts (the JSON files
// ResultSink writes and bench/golden/ pins). Built on exp/json_parse's
// raw-number-text values so the comparison can be *stricter* than any
// double-based diff:
//
//  * integer-shaped numbers (no '.', no exponent) compare by raw text —
//    u64 counters beyond 2^53 never collapse to the nearest double,
//  * float-shaped numbers compare with a configurable relative tolerance
//    (0 = exact text match), absorbing last-ulp drift across toolchains
//    while still catching real analytic regressions,
//  * strings, booleans and nulls compare exactly (the emitter renders
//    NaN/Inf as null, so a formerly-finite analytic value going non-finite
//    is reported as a kind change, not silently equal),
//  * an ignore-list of glob patterns ("throughput", "result.rows[*].mb_per_s")
//    prunes wall-clock sections whole subtrees at a time.
//
// Every mismatch is reported with the dotted path of the offending node
// ("result.cases[2].due_lines: ...") so a failing golden diff points
// straight at the drifted quantity. Used by tools/artifact_diff and
// scripts/repro.sh; see docs/repro.md for the tolerance policy.
#pragma once

#include <string>
#include <vector>

#include "exp/json_parse.h"

namespace sudoku::exp {

struct ArtifactDiffOptions {
  // Relative tolerance for float-shaped numbers: values a, b pass when
  // |a - b| <= rel_tol * max(|a|, |b|). 0 means exact text equality.
  double rel_tol = 0.0;
  // Glob patterns over dotted paths; a matching node's entire subtree is
  // skipped. '*' matches any run of characters within the path, '?' one
  // character. "throughput" ignores the top-level wall-clock section;
  // "result.rows[*].seconds" ignores one field across an array.
  std::vector<std::string> ignore;
};

struct ArtifactDiffEntry {
  std::string path;     // dotted path, "" for the document root
  std::string message;  // what differs, golden vs actual
};

struct ArtifactDiffResult {
  std::vector<ArtifactDiffEntry> entries;
  bool identical() const { return entries.empty(); }
};

// True when `raw` (a JSON number's source text) has integer shape: an
// optional sign and digits only — no fraction, no exponent.
bool number_text_is_integer(const std::string& raw);

// Glob match over dotted paths ('*' any run, '?' one char, rest literal).
bool path_glob_match(const std::string& pattern, const std::string& path);

// Structural diff of two parsed artifacts. `golden` is the reference; the
// messages name it as such.
ArtifactDiffResult diff_artifacts(const JsonValue& golden, const JsonValue& actual,
                                  const ArtifactDiffOptions& options = {});

// One line per mismatch ("path: message"), for console output.
std::string render_artifact_diff(const ArtifactDiffResult& result);

// The tools/artifact_diff CLI body:
//   artifact_diff [--rtol=X] [--ignore=PATTERN]... <golden.json> <actual.json>
// Exit 0 when identical outside the ignored sections, 1 when the artifacts
// differ (mismatches on stderr), 2 on usage / unreadable / unparsable
// input. Lives in the library so tests can drive it in-process.
int artifact_diff_main(int argc, char** argv);

}  // namespace sudoku::exp
