// Shard-granular checkpoint/resume for the experiment engine.
//
// Every completed shard's serialized result is published atomically
// (temp-file + fsync + rename, see atomic_file.h) under
//
//   <root>/<experiment>/<config-hash hex>-s<base-seed>/shard-<index>.json
//
// The key directory embeds everything that determines a shard's bytes: the
// experiment tag, a 64-bit FNV-1a hash over the full run configuration
// (including the resolved shard plan), and the base seed. A restarted run
// with the same key replays finished shards from disk and recomputes only
// the rest; any config change hashes to a different directory, so stale
// checkpoints are simply never seen — invalidation is structural, not
// bookkeeping. Because the engine's merge is shard-index-deterministic,
// replayed and recomputed shards merge to byte-identical final artifacts.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

namespace sudoku::exp {

// 64-bit FNV-1a; stable across hosts, used for config hashing.
std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed = 0xcbf29ce484222325ull);

struct CheckpointKey {
  std::string experiment;        // bench/case tag; sanitized into a path
  std::uint64_t config_hash = 0; // over config + shard plan (see above)
  std::uint64_t base_seed = 0;

  // "<sanitized experiment>/<16-hex hash>-s<seed>"
  std::string subdir() const;
};

class CheckpointStore {
 public:
  // `resume` controls loads only: a store opened without it still persists
  // shards (so a later --resume can pick them up) but never replays —
  // the cold-start behaviour --checkpoint alone promises.
  explicit CheckpointStore(std::filesystem::path root, bool resume = false);

  const std::filesystem::path& root() const { return root_; }
  bool resume() const { return resume_; }

  std::filesystem::path shard_path(const CheckpointKey& key,
                                   std::uint64_t shard_index) const;

  // Returns the payload of a previously saved shard, or std::nullopt when
  // resume is off, the file is absent, or it cannot be read. Never throws:
  // an unreadable checkpoint means "recompute", not "fail".
  std::optional<std::string> load(const CheckpointKey& key,
                                  std::uint64_t shard_index) const;

  // Atomically persist one shard's payload. Throws std::runtime_error when
  // the directory cannot be created or the write fails (callers downgrade
  // this to a ShardErrorKind::kCheckpointIo record — losing resumability
  // must not lose the run).
  void save(const CheckpointKey& key, std::uint64_t shard_index,
            const std::string& payload) const;

 private:
  std::filesystem::path root_;
  bool resume_ = false;
};

}  // namespace sudoku::exp
