#include "exp/metrics_io.h"

namespace sudoku::exp {

namespace {

JsonObject gauge_json(const obs::Gauge& g) {
  JsonObject o;
  o.set("gauge", g.value()).set("samples", g.samples());
  return o;
}

JsonObject histogram_json(const obs::Histogram& h) {
  JsonArray edges;
  for (const double e : h.edges()) edges.push(e);
  JsonArray buckets;
  for (const std::uint64_t b : h.buckets()) buckets.push(b);
  JsonObject o;
  o.set("edges", edges)
      .set("buckets", buckets)
      .set("count", h.count())
      .set("sum", h.sum());
  if (h.count() > 0) {
    o.set("min", h.min()).set("max", h.max());
  }
  return o;
}

}  // namespace

JsonObject metrics_to_json(const obs::MetricsRegistry& registry) {
  JsonObject out;
  for (const auto& sample : registry.snapshot()) {
    switch (sample.kind) {
      case obs::MetricSample::Kind::kCounter:
        out.set(sample.name, sample.counter->value());
        break;
      case obs::MetricSample::Kind::kGauge:
        out.set(sample.name, gauge_json(*sample.gauge));
        break;
      case obs::MetricSample::Kind::kHistogram:
        out.set(sample.name, histogram_json(*sample.histogram));
        break;
    }
  }
  return out;
}

}  // namespace sudoku::exp
