#include "exp/metrics_io.h"

namespace sudoku::exp {

namespace {

JsonObject gauge_json(const obs::Gauge& g) {
  JsonObject o;
  o.set("gauge", g.value()).set("samples", g.samples());
  return o;
}

JsonObject histogram_json(const obs::Histogram& h) {
  JsonArray edges;
  for (const double e : h.edges()) edges.push(e);
  JsonArray buckets;
  for (const std::uint64_t b : h.buckets()) buckets.push(b);
  JsonObject o;
  o.set("edges", edges)
      .set("buckets", buckets)
      .set("count", h.count())
      .set("sum", h.sum());
  if (h.count() > 0) {
    o.set("min", h.min()).set("max", h.max());
  }
  return o;
}

}  // namespace

JsonObject metrics_to_json(const obs::MetricsRegistry& registry) {
  JsonObject out;
  for (const auto& sample : registry.snapshot()) {
    switch (sample.kind) {
      case obs::MetricSample::Kind::kCounter:
        out.set(sample.name, sample.counter->value());
        break;
      case obs::MetricSample::Kind::kGauge:
        out.set(sample.name, gauge_json(*sample.gauge));
        break;
      case obs::MetricSample::Kind::kHistogram:
        out.set(sample.name, histogram_json(*sample.histogram));
        break;
    }
  }
  return out;
}

std::optional<obs::MetricsRegistry> metrics_from_json(const JsonValue& value) {
  if (!value.is_object()) return std::nullopt;
  obs::MetricsRegistry reg;
  for (const auto& [name, v] : value.members) {
    if (v.is_number()) {  // counter
      const auto n = v.as_u64();
      if (!n) return std::nullopt;
      reg.counter(name)->inc(*n);
      continue;
    }
    if (!v.is_object()) return std::nullopt;
    if (const JsonValue* g = v.find("gauge")) {
      const auto val = g->as_double();
      const JsonValue* s = v.find("samples");
      const auto samples = s ? s->as_u64() : std::optional<std::uint64_t>{};
      if (!val || !samples) return std::nullopt;
      reg.gauge(name)->restore(*val, *samples);
      continue;
    }
    const JsonValue* edges_v = v.find("edges");
    const JsonValue* buckets_v = v.find("buckets");
    const JsonValue* count_v = v.find("count");
    const JsonValue* sum_v = v.find("sum");
    if (!edges_v || !buckets_v || !count_v || !sum_v ||
        !edges_v->is_array() || !buckets_v->is_array()) {
      return std::nullopt;
    }
    std::vector<double> edges;
    for (const auto& e : edges_v->items) {
      const auto d = e.as_double();
      if (!d) return std::nullopt;
      edges.push_back(*d);
    }
    std::vector<std::uint64_t> buckets;
    for (const auto& b : buckets_v->items) {
      const auto n = b.as_u64();
      if (!n) return std::nullopt;
      buckets.push_back(*n);
    }
    const auto count = count_v->as_u64();
    const auto sum = sum_v->as_double();
    if (!count || !sum) return std::nullopt;
    double min = 0.0, max = 0.0;
    if (*count > 0) {  // min/max are present exactly when count > 0
      const JsonValue* min_v = v.find("min");
      const JsonValue* max_v = v.find("max");
      const auto mn = min_v ? min_v->as_double() : std::optional<double>{};
      const auto mx = max_v ? max_v->as_double() : std::optional<double>{};
      if (!mn || !mx) return std::nullopt;
      min = *mn;
      max = *mx;
    }
    auto restored = obs::Histogram::restore(std::move(edges), std::move(buckets),
                                            *count, *sum, min, max);
    if (!restored) return std::nullopt;
    *reg.histogram(name, restored->edges()) = *restored;
  }
  return reg;
}

}  // namespace sudoku::exp
