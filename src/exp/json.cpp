#include "exp/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sudoku::exp {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);  // UTF-8 passes through untouched
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Integral values inside the exactly-representable range print as plain
  // integers ("50", not "5e+01").
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }
std::string json_number(std::int64_t v) { return std::to_string(v); }

namespace {

std::string quoted(const std::string& s) { return '"' + json_escape(s) + '"'; }

}  // namespace

JsonObject& JsonObject::set_raw(const std::string& key, std::string rendered) {
  members_.emplace_back(key, std::move(rendered));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  return set_raw(key, quoted(value));
}
JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set_raw(key, quoted(value));
}
JsonObject& JsonObject::set(const std::string& key, double value) {
  return set_raw(key, json_number(value));
}
JsonObject& JsonObject::set(const std::string& key, std::uint64_t value) {
  return set_raw(key, json_number(value));
}
JsonObject& JsonObject::set(const std::string& key, std::int64_t value) {
  return set_raw(key, json_number(value));
}
JsonObject& JsonObject::set(const std::string& key, int value) {
  return set_raw(key, json_number(static_cast<std::int64_t>(value)));
}
JsonObject& JsonObject::set(const std::string& key, unsigned value) {
  return set_raw(key, json_number(static_cast<std::uint64_t>(value)));
}
JsonObject& JsonObject::set(const std::string& key, bool value) {
  return set_raw(key, value ? "true" : "false");
}
JsonObject& JsonObject::set(const std::string& key, const JsonObject& value) {
  return set_raw(key, value.str());
}
JsonObject& JsonObject::set(const std::string& key, const JsonArray& value) {
  return set_raw(key, value.str());
}

std::string JsonObject::str(bool pretty, int indent) const {
  if (members_.empty()) return "{}";
  const std::string pad(pretty ? 2 * (indent + 1) : 0, ' ');
  const std::string close_pad(pretty ? 2 * indent : 0, ' ');
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : members_) {
    if (!first) out += ',';
    if (pretty) out += '\n' + pad;
    out += quoted(key) + (pretty ? ": " : ":") + value;
    first = false;
  }
  if (pretty) out += '\n' + close_pad;
  out += '}';
  return out;
}

JsonArray& JsonArray::push(const std::string& value) {
  items_.push_back(quoted(value));
  return *this;
}
JsonArray& JsonArray::push(const char* value) {
  items_.push_back(quoted(value));
  return *this;
}
JsonArray& JsonArray::push(double value) {
  items_.push_back(json_number(value));
  return *this;
}
JsonArray& JsonArray::push(std::uint64_t value) {
  items_.push_back(json_number(value));
  return *this;
}
JsonArray& JsonArray::push(bool value) {
  items_.push_back(value ? "true" : "false");
  return *this;
}
JsonArray& JsonArray::push(const JsonObject& value) {
  items_.push_back(value.str());
  return *this;
}

std::string JsonArray::str(bool pretty, int indent) const {
  if (items_.empty()) return "[]";
  const std::string pad(pretty ? 2 * (indent + 1) : 0, ' ');
  const std::string close_pad(pretty ? 2 * indent : 0, ' ');
  std::string out = "[";
  bool first = true;
  for (const auto& item : items_) {
    if (!first) out += ',';
    if (pretty) out += '\n' + pad;
    out += item;
    first = false;
  }
  if (pretty) out += '\n' + close_pad;
  out += ']';
  return out;
}

}  // namespace sudoku::exp
