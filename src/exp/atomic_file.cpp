#include "exp/atomic_file.h"

#include <cstdio>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define SUDOKU_ATOMIC_FILE_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace sudoku::exp {

namespace {

[[noreturn]] void raise(const std::filesystem::path& path, const std::string& what) {
  throw std::runtime_error("atomic_write_file: " + what + " '" + path.string() + "'");
}

}  // namespace

void atomic_write_file(const std::filesystem::path& path,
                       const std::string& contents, FileDurability durability) {
  const std::filesystem::path tmp = path.string() + ".tmp";

#if SUDOKU_ATOMIC_FILE_POSIX
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) raise(tmp, "cannot create temporary");
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      raise(tmp, "write failed for");
    }
    written += static_cast<std::size_t>(n);
  }
  const bool flushed = durability == FileDurability::kFull ? ::fsync(fd) == 0 : true;
  if (!flushed || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    raise(tmp, "flush failed for");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    raise(path, "rename failed for");
  }
  // Persist the rename itself; a failure here (e.g. network fs) leaves the
  // file published but possibly not durable — not worth failing the run.
  if (durability == FileDurability::kFull) {
    const int dirfd = ::open(path.parent_path().empty()
                                 ? "."
                                 : path.parent_path().c_str(),
                             O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
      ::fsync(dirfd);
      ::close(dirfd);
    }
  }
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << contents;
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      raise(tmp, "write failed for");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    raise(path, "rename failed for");
  }
#endif
}

}  // namespace sudoku::exp
