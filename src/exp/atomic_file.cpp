#include "exp/atomic_file.h"

#include <atomic>
#include <cstdio>
#include <cstdint>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define SUDOKU_ATOMIC_FILE_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace sudoku::exp {

namespace {

[[noreturn]] void raise(const std::filesystem::path& path, const std::string& what) {
  throw std::runtime_error("atomic_write_file: " + what + " '" + path.string() + "'");
}

// Writer-unique temporary suffix. Concurrent publishers of the same path
// (fleet siblings emitting one artifact, or two pool threads saving at
// once) must not share a staging name: with a fixed ".tmp" one writer
// renames the other's half-written temp into place, or renames it away and
// fails the loser with ENOENT. pid + a process-local counter keeps every
// staging file private, so concurrent writes degrade to
// last-rename-wins over complete files.
std::string tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
#if SUDOKU_ATOMIC_FILE_POSIX
  return ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(n);
#else
  return ".tmp." + std::to_string(n);
#endif
}

}  // namespace

void atomic_write_file(const std::filesystem::path& path,
                       const std::string& contents, FileDurability durability) {
  const std::filesystem::path tmp = path.string() + tmp_suffix();

#if SUDOKU_ATOMIC_FILE_POSIX
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) raise(tmp, "cannot create temporary");
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      raise(tmp, "write failed for");
    }
    written += static_cast<std::size_t>(n);
  }
  const bool flushed = durability == FileDurability::kFull ? ::fsync(fd) == 0 : true;
  if (!flushed || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    raise(tmp, "flush failed for");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    raise(path, "rename failed for");
  }
  // Persist the rename itself; a failure here (e.g. network fs) leaves the
  // file published but possibly not durable — not worth failing the run.
  if (durability == FileDurability::kFull) {
    const int dirfd = ::open(path.parent_path().empty()
                                 ? "."
                                 : path.parent_path().c_str(),
                             O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
      ::fsync(dirfd);
      ::close(dirfd);
    }
  }
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << contents;
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      raise(tmp, "write failed for");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    raise(path, "rename failed for");
  }
#endif
}

bool atomic_create_file(const std::filesystem::path& path,
                        const std::string& contents) {
#if SUDOKU_ATOMIC_FILE_POSIX
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    raise(path, "exclusive create failed for");
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // the claim exists; truncated diagnostics are acceptable
    }
    written += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
#else
  // Portable approximation: std::ofstream with noreplace is C++23; emulate
  // with an existence check + create. Not atomic against other processes,
  // which is why the fleet queue is documented POSIX-only.
  if (std::filesystem::exists(path)) return false;
  std::ofstream out(path, std::ios::binary);
  if (!out) raise(path, "exclusive create failed for");
  out << contents;
  return true;
#endif
}

}  // namespace sudoku::exp
