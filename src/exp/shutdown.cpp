#include "exp/shutdown.h"

#include <atomic>
#include <csignal>

namespace sudoku::exp {

namespace {

// Lock-free atomic<bool> is async-signal-safe to store to.
std::atomic<bool> g_shutdown{false};

}  // namespace

extern "C" {
static void sudoku_exp_signal_handler(int) {
  sudoku::exp::g_shutdown.store(true);
}
}

void install_signal_handlers() {
  std::signal(SIGINT, sudoku_exp_signal_handler);
  std::signal(SIGTERM, sudoku_exp_signal_handler);
}

bool shutdown_requested() { return g_shutdown.load(std::memory_order_relaxed); }

void request_shutdown() { g_shutdown.store(true); }

void reset_shutdown() { g_shutdown.store(false); }

}  // namespace sudoku::exp
