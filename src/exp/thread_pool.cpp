#include "exp/thread_pool.h"

namespace sudoku::exp {

namespace {

// Identifies the current thread as a pool worker for deque-local submits.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  unsigned index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = num_threads ? num_threads : hardware_threads();
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (tls_worker.pool == this) {
    Worker& w = *workers_[tls_worker.index];
    std::lock_guard<std::mutex> lock(w.mutex);
    w.deque.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    injector_.push_back(std::move(task));
  }
  // seq_cst pairing with the parking path in worker_loop: the pending_
  // store must be globally ordered before the sleepers_ load, or a worker
  // parking concurrently could miss the task while we miss the sleeper.
  pending_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) != 0) work_cv_.notify_one();
}

bool ThreadPool::try_pop_local(unsigned index, Task& out) {
  Worker& w = *workers_[index];
  std::lock_guard<std::mutex> lock(w.mutex);
  if (w.deque.empty()) return false;
  out = std::move(w.deque.back());
  w.deque.pop_back();
  return true;
}

bool ThreadPool::try_pop_injector(Task& out) {
  std::lock_guard<std::mutex> lock(injector_mutex_);
  if (injector_.empty()) return false;
  out = std::move(injector_.front());
  injector_.pop_front();
  return true;
}

bool ThreadPool::try_steal(unsigned index, Task& out) {
  const unsigned n = size();
  for (unsigned k = 1; k < n; ++k) {
    Worker& victim = *workers_[(index + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.deque.empty()) continue;
    out = std::move(victim.deque.front());
    victim.deque.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::finish_task() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(unsigned index) {
  tls_worker = {this, index};
  Task task;
  for (;;) {
    if (try_pop_local(index, task) || try_pop_injector(task) ||
        try_steal(index, task)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      // Task boundary: a throwing task must never escape into the worker
      // loop (that would std::terminate the process). parallel_for bodies
      // install their own handler; this is the backstop for bare submit().
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      task = nullptr;
      finish_task();
      continue;
    }
    std::unique_lock<std::mutex> lock(injector_mutex_);
    // Park. sleepers_ goes up before the predicate's pending_ load (both
    // seq_cst, see submit()): either we observe the task enqueued between
    // our failed scans and this point and skip the wait, or the submitter
    // observes our sleepers_ increment and notifies — a wakeup cannot be
    // lost, and submit() pays no notify syscall while nobody is parked.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    work_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_seq_cst) != 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> err_lock(error_mutex_);
    std::swap(err, first_error_);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(std::uint64_t n,
                              const std::function<void(std::uint64_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::uint64_t> remaining{n};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  for (std::uint64_t i = 0; i < n; ++i) {
    submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(done_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] {
    return remaining.load(std::memory_order_acquire) == 0;
  });
  // Every index has run; surface the first failure (completion order) to
  // the caller now that joining is done.
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sudoku::exp
