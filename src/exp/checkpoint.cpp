#include "exp/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "exp/atomic_file.h"

namespace sudoku::exp {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

std::string sanitize(const std::string& tag) {
  std::string out = tag.empty() ? std::string("experiment") : tag;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string CheckpointKey::subdir() const {
  return sanitize(experiment) + "/" + hex16(config_hash) + "-s" +
         std::to_string(base_seed);
}

CheckpointStore::CheckpointStore(std::filesystem::path root, bool resume)
    : root_(std::move(root)), resume_(resume) {}

std::filesystem::path CheckpointStore::shard_path(const CheckpointKey& key,
                                                  std::uint64_t shard_index) const {
  return root_ / key.subdir() /
         ("shard-" + std::to_string(shard_index) + ".json");
}

std::optional<std::string> CheckpointStore::load(const CheckpointKey& key,
                                                 std::uint64_t shard_index) const {
  if (!resume_) return std::nullopt;
  std::ifstream in(shard_path(key, shard_index), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(ss).str();
}

void CheckpointStore::save(const CheckpointKey& key, std::uint64_t shard_index,
                           const std::string& payload) const {
  const std::filesystem::path path = shard_path(key, shard_index);
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  if (ec) {
    throw std::runtime_error("CheckpointStore: cannot create '" +
                             path.parent_path().string() + "': " + ec.message());
  }
  // Process-crash durability is enough here: a power-loss-torn payload
  // fails decode and is recomputed, while two fsyncs per shard would
  // dominate short shards' runtime.
  atomic_write_file(path, payload, FileDurability::kProcessCrashOnly);
}

}  // namespace sudoku::exp
