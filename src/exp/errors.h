// Structured error taxonomy for the fault-tolerant experiment engine.
//
// A shard that throws no longer takes the whole campaign down: the engine
// records a ShardError, retries the shard with the same seeds (per-trial
// seed streams make the retry bit-identical when the failure was
// environmental), and finally quarantines it — excludes it from the
// deterministic merge and flags the run "degraded" so the artifact says
// exactly what is missing. The ShardRunReport aggregates everything a
// caller needs to decide between "complete", "degraded" and "interrupted,
// resumable" (see docs/robustness.md for the exit-code contract).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/json.h"
#include "obs/metrics.h"

namespace sudoku::exp {

enum class ShardErrorKind {
  kTrialException,    // shard body threw a std::exception
  kUnknownException,  // shard body threw something else
  kCheckpointCorrupt, // checkpoint payload unreadable/undecodable (recomputed)
  kCheckpointIo,      // completed shard could not be persisted (run continues)
};

const char* to_string(ShardErrorKind kind);

struct ShardError {
  std::uint64_t shard_index = 0;
  ShardErrorKind kind = ShardErrorKind::kTrialException;
  unsigned attempt = 0;  // 1-based attempt that produced this error
  std::string detail;    // e.what(), decode diagnostic, or path

  JsonObject to_json() const;
};

// Aggregated fault-tolerance accounting for one engine invocation (or a
// bench's whole sequence of invocations — callers may reuse one report).
struct ShardRunReport {
  std::uint64_t shards_total = 0;        // shards in the executed plans
  std::uint64_t shards_resumed = 0;      // replayed from checkpoint
  std::uint64_t shards_foreign = 0;      // loaded from a fleet sibling's save
  std::uint64_t shards_retried = 0;      // retry attempts after a throw
  std::uint64_t shards_quarantined = 0;  // excluded from the merge
  std::uint64_t trials_quarantined = 0;  // trials those shards covered
  bool interrupted = false;              // shutdown cut the run short
  std::vector<ShardError> errors;

  bool degraded() const { return shards_quarantined > 0; }

  // exp.* counter surface for obs consumers. Kept out of artifact-embedded
  // registries on purpose: a resumed run must produce a byte-identical
  // artifact, and "how we got there" telemetry would break that.
  obs::MetricsRegistry to_metrics() const;

  JsonArray errors_json() const;
};

}  // namespace sudoku::exp
