// ResultSink: every experiment writes one JSON artifact — config, merged
// result, throughput — under bench/out/ (or a caller-chosen directory) so
// later PRs can diff reliability numbers and track the perf trajectory.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "exp/errors.h"
#include "exp/json.h"
#include "obs/metrics.h"

namespace sudoku::exp {

// Wall-clock accounting of one engine invocation.
struct RunStats {
  std::uint64_t trials = 0;     // intervals actually executed
  double wall_seconds = 0.0;
  unsigned threads = 0;
  std::uint64_t shards = 0;

  double trials_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds : 0.0;
  }

  RunStats& operator+=(const RunStats& other) {
    trials += other.trials;
    wall_seconds += other.wall_seconds;
    threads = other.threads;  // last run's pool width
    shards += other.shards;
    return *this;
  }

  JsonObject to_json() const;
};

class ResultSink {
 public:
  explicit ResultSink(std::filesystem::path out_dir = "bench/out")
      : out_dir_(std::move(out_dir)) {}

  const std::filesystem::path& out_dir() const { return out_dir_; }

  // Writes <out_dir>/<name>.json with {"experiment", "config", "result",
  // "throughput"[, "metrics"]} and returns the path. Creates the directory
  // as needed. When `metrics` is non-null its snapshot is embedded as the
  // artifact's "metrics" section (present even when empty, so consumers
  // can rely on the key). When `report` is non-null and degraded (shards
  // quarantined), the artifact additionally carries "degraded": true and
  // the structured "shard_errors" records — clean runs stay byte-for-byte
  // unchanged. The file is published atomically (temp + fsync + rename,
  // exp/atomic_file.h), so a crash mid-write never leaves a half-written
  // JSON. Throws std::runtime_error when the directory cannot be created
  // or the file cannot be written — artifacts are the experiment's whole
  // point, so losing one silently is not an option.
  std::filesystem::path write(const std::string& name, const JsonObject& config,
                              const JsonObject& result, const RunStats& stats,
                              const obs::MetricsRegistry* metrics = nullptr,
                              const ShardRunReport* report = nullptr) const;

  // Escape hatch for artifacts that don't fit the config/result shape.
  // Same error and atomicity contract as write().
  std::filesystem::path write_raw(const std::string& name,
                                  const JsonObject& root) const;

  // Assembles the standard artifact root without writing it (what write()
  // persists; benches reuse it for --json stdout dumps).
  static JsonObject make_root(const std::string& name, const JsonObject& config,
                              const JsonObject& result, const RunStats& stats,
                              const obs::MetricsRegistry* metrics = nullptr,
                              const ShardRunReport* report = nullptr);

 private:
  std::filesystem::path out_dir_;
};

}  // namespace sudoku::exp
