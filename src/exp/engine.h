// The sharded experiment runner: fans a shard plan out over the thread
// pool and merges results deterministically.
//
// Contract. `run(shard, early)` must return the shard's result computed
// purely from the shard's trial range and the experiment's base seed (per-
// trial seed streams), or std::nullopt if it abandoned the shard because
// `early.triggered()` fired. Results must support `operator+=` and expose
// a `failure_intervals` member. The merge walks shards in index order and
// stops once `target_failures` is met, so the merged result depends only
// on (plan, base seed, target) — not on thread count, scheduling, or which
// shards were speculatively cancelled.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "exp/sharder.h"
#include "exp/thread_pool.h"

namespace sudoku::exp {

template <typename Result, typename RunFn>
Result run_sharded(ThreadPool& pool, const std::vector<Shard>& shards,
                   std::uint64_t target_failures, RunFn&& run) {
  EarlyStop early(shards.size(), target_failures);
  std::vector<std::optional<Result>> outcomes(shards.size());

  pool.parallel_for(shards.size(), [&](std::uint64_t k) {
    // Once the completed prefix meets the target this shard is beyond the
    // merge cutoff — skip it entirely.
    if (early.triggered()) return;
    std::optional<Result> r = run(shards[k], early);
    if (r.has_value()) {
      early.record(k, r->failure_intervals);
      outcomes[k] = std::move(r);
    }
  });

  Result merged{};
  std::uint64_t failures = 0;
  for (const auto& outcome : outcomes) {
    if (!outcome.has_value()) break;  // cutoff always precedes skipped shards
    merged += *outcome;
    failures += outcome->failure_intervals;
    if (target_failures != 0 && failures >= target_failures) break;
  }
  return merged;
}

}  // namespace sudoku::exp
