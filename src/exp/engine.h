// The sharded experiment runner: fans a shard plan out over the thread
// pool and merges results deterministically — now with shard-granular
// checkpoint/resume, trial quarantine, and cooperative shutdown.
//
// Contract. `run(shard, early)` must return the shard's result computed
// purely from the shard's trial range and the experiment's base seed (per-
// trial seed streams), or std::nullopt if it abandoned the shard because
// `early.triggered()` fired (or a shutdown was requested). Results must
// support `operator+=` and expose a `failure_intervals` member. The merge
// walks shards in index order and stops once `target_failures` is met, so
// the merged result depends only on (plan, base seed, target) — not on
// thread count, scheduling, which shards were speculatively cancelled, or
// whether some shards were replayed from a checkpoint.
//
// Fault-tolerance semantics (run_sharded with RunShardedOptions):
//   * checkpoint  — completed shards are persisted via atomic writes; with
//     a resume-enabled store, previously finished shards are replayed from
//     disk before anything is scheduled. Replayed bytes equal recomputed
//     bytes (round-trip-exact codec), so resumed artifacts are
//     byte-identical by construction.
//   * quarantine  — a shard body that throws is retried (same seeds) up to
//     max_attempts total tries, then excluded from the merge; the run
//     degrades instead of dying and the report says exactly what is gone.
//   * shutdown    — once exp::shutdown_requested() turns true, unstarted
//     shards are skipped, in-flight shards finish or abandon through their
//     stop hooks, and the report is marked interrupted so callers can exit
//     with kExitInterrupted ("resumable") instead of failing.
//   * fleet queue — with a ShardWorkQueue (docs/fleet.md), each shard is
//     claimed (O_EXCL) before it runs, shards finished by sibling
//     *processes* are adopted from their published done-files, and a final
//     wait pass collects (or steals and recomputes) whatever foreign
//     workers still owe — so every worker ends the run holding the full
//     result set and performs the same deterministic merge.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exp/checkpoint.h"
#include "exp/errors.h"
#include "exp/sharder.h"
#include "exp/shutdown.h"
#include "exp/thread_pool.h"
#include "exp/work_queue.h"

namespace sudoku::exp {

template <typename Result>
struct RunShardedOptions {
  std::uint64_t target_failures = 0;

  // Checkpointing (all three required together; null store disables it).
  CheckpointStore* checkpoint = nullptr;
  CheckpointKey key{};
  std::function<std::string(const Result&)> encode;
  std::function<std::optional<Result>(const std::string&)> decode;

  // Quarantine policy. When off, a throwing shard propagates out of
  // run_sharded (via the pool's first-exception rethrow) — the documented
  // fallback. When on, each shard gets max_attempts tries before being
  // excluded from the merge.
  bool quarantine = false;
  unsigned max_attempts = 3;

  ShardRunReport* report = nullptr;

  // Fired after each *live* (not replayed) shard completes and is
  // recorded; used for progress and by tests to kill runs at exact points.
  std::function<void(const Shard&)> after_shard;

  // Multi-process fleet mode (docs/fleet.md). Requires checkpoint + encode
  // + decode: the done-files the checkpoint publishes are the medium
  // through which sibling workers exchange shard results. Each worker
  // claims shards exclusively before computing them, adopts siblings'
  // finished shards, and after its local pass waits for (or steals from)
  // whatever peers still owe, so any worker can complete the merge.
  const ShardWorkQueue* queue = nullptr;
};

namespace detail {

enum class ShardState : unsigned char { kPending, kDone, kQuarantined };

}  // namespace detail

template <typename Result, typename RunFn>
Result run_sharded(ThreadPool& pool, const std::vector<Shard>& shards,
                   const RunShardedOptions<Result>& opt, RunFn&& run) {
  using detail::ShardState;
  EarlyStop early(shards.size(), opt.target_failures);
  std::vector<std::optional<Result>> outcomes(shards.size());
  std::vector<ShardState> states(shards.size(), ShardState::kPending);
  std::mutex report_mutex;  // guards opt.report's members during the run

  const auto note_error = [&](std::uint64_t index, ShardErrorKind kind,
                              unsigned attempt, std::string detail_msg) {
    if (!opt.report) return;
    std::lock_guard<std::mutex> lock(report_mutex);
    opt.report->errors.push_back({index, kind, attempt, std::move(detail_msg)});
  };

  // Resume pass: replay finished shards from the checkpoint before any
  // scheduling. Serial and in index order, so EarlyStop's prefix logic
  // sees them exactly as a live run would have.
  std::vector<char> replayed(shards.size(), 0);
  if (opt.checkpoint && opt.decode) {
    for (const Shard& s : shards) {
      auto payload = opt.checkpoint->load(opt.key, s.index);
      if (!payload) continue;
      std::optional<Result> r = opt.decode(*payload);
      if (!r.has_value()) {
        note_error(s.index, ShardErrorKind::kCheckpointCorrupt, 0,
                   opt.checkpoint->shard_path(opt.key, s.index).string());
        continue;  // recompute below
      }
      early.record(s.index, r->failure_intervals);
      outcomes[s.index] = std::move(r);
      states[s.index] = ShardState::kDone;
      replayed[s.index] = 1;
      if (opt.report) {
        std::lock_guard<std::mutex> lock(report_mutex);
        ++opt.report->shards_resumed;
      }
    }
  }

  // Adopt a shard a sibling process finished: decode its published
  // done-file and record it exactly as a locally computed result.
  const auto adopt_foreign = [&](std::uint64_t k) -> bool {
    std::optional<std::string> payload = opt.queue->load_done(shards[k].index);
    if (!payload) return false;
    std::optional<Result> r = opt.decode(*payload);
    if (!r.has_value()) return false;  // torn/corrupt — caller recomputes
    early.record(k, r->failure_intervals);
    outcomes[k] = std::move(r);
    states[k] = ShardState::kDone;
    if (opt.report) {
      std::lock_guard<std::mutex> lock(report_mutex);
      ++opt.report->shards_foreign;
    }
    return true;
  };

  // Run one owned shard to completion: retry/quarantine loop, checkpoint
  // publication, and (in fleet mode) claim release on every exit path —
  // including quarantine, so sibling workers can attempt the shard
  // themselves instead of waiting on our claim forever.
  const auto execute_shard = [&](std::uint64_t k) {
    const unsigned max_attempts = opt.quarantine ? std::max(opt.max_attempts, 1u) : 1;
    for (unsigned attempt = 1;; ++attempt) {
      try {
        std::optional<Result> r = run(shards[k], early);
        if (r.has_value()) {
          if (opt.checkpoint && opt.encode) {
            try {
              opt.checkpoint->save(opt.key, shards[k].index, opt.encode(*r));
            } catch (const std::exception& e) {
              // Losing resumability must not lose the run.
              note_error(shards[k].index, ShardErrorKind::kCheckpointIo, attempt,
                         e.what());
            }
          }
          early.record(k, r->failure_intervals);
          outcomes[k] = std::move(r);
          states[k] = ShardState::kDone;
          if (opt.after_shard) opt.after_shard(shards[k]);
        }
        if (opt.queue) opt.queue->release(shards[k].index);
        return;
      } catch (...) {
        if (!opt.quarantine) {
          if (opt.queue) opt.queue->release(shards[k].index);
          throw;  // fallback: pool rethrows to the caller
        }
        std::string what = "unknown exception";
        ShardErrorKind kind = ShardErrorKind::kUnknownException;
        try {
          throw;
        } catch (const std::exception& e) {
          what = e.what();
          kind = ShardErrorKind::kTrialException;
        } catch (...) {
        }
        note_error(shards[k].index, kind, attempt, std::move(what));
        if (attempt >= max_attempts) {
          states[k] = ShardState::kQuarantined;
          if (opt.report) {
            std::lock_guard<std::mutex> lock(report_mutex);
            ++opt.report->shards_quarantined;
            opt.report->trials_quarantined += shards[k].count;
          }
          if (opt.queue) opt.queue->release(shards[k].index);
          return;
        }
        // Retry with the same seeds on whatever worker picks it up next —
        // per-trial seed streams make a clean retry bit-identical.
        if (opt.report) {
          std::lock_guard<std::mutex> lock(report_mutex);
          ++opt.report->shards_retried;
        }
      }
    }
  };

  pool.parallel_for(shards.size(), [&](std::uint64_t k) {
    if (replayed[k]) return;
    // Once the completed prefix meets the target this shard is beyond the
    // merge cutoff — skip it entirely. A requested shutdown likewise stops
    // new shards from starting (in-flight ones abandon via stop hooks).
    if (early.triggered() || shutdown_requested()) return;
    if (opt.queue) {
      // Fleet: a sibling may already have published or claimed this shard.
      if (adopt_foreign(k)) return;
      if (!opt.queue->try_claim(shards[k].index)) return;  // wait pass collects
      if (adopt_foreign(k)) {  // done-file landed while we were claiming
        opt.queue->release(shards[k].index);
        return;
      }
    }
    execute_shard(k);
  });

  // Fleet wait pass: everything this worker skipped above is owned by a
  // sibling. Walk in index order — mirroring the merge — and stop as soon
  // as the contiguous prefix meets the early-stop target, because no shard
  // past that cutoff will ever be computed by anyone. For each owed shard:
  // adopt the sibling's done-file when it lands, or take over (fresh claim
  // after a release, or steal after lease expiry) and recompute locally.
  if (opt.queue) {
    std::uint64_t prefix_failures = 0;
    for (std::uint64_t k = 0; k < shards.size() && !shutdown_requested(); ++k) {
      if (opt.target_failures != 0 && prefix_failures >= opt.target_failures) break;
      bool noted_corrupt = false;
      while (states[k] == ShardState::kPending && !shutdown_requested()) {
        if (adopt_foreign(k)) break;
        if (opt.queue->load_done(shards[k].index) && !noted_corrupt) {
          // Exists but failed to decode: note once, then recompute below.
          note_error(shards[k].index, ShardErrorKind::kCheckpointCorrupt, 0,
                     opt.checkpoint->shard_path(opt.key, shards[k].index).string());
          noted_corrupt = true;
        }
        if (opt.queue->try_claim(shards[k].index) ||
            opt.queue->steal_stale(shards[k].index)) {
          if (adopt_foreign(k)) {
            opt.queue->release(shards[k].index);
          } else {
            execute_shard(k);
          }
          break;
        }
        std::this_thread::sleep_for(opt.queue->options().poll);
      }
      if (states[k] == ShardState::kDone) {
        prefix_failures += outcomes[k]->failure_intervals;
      }
    }
  }

  Result merged{};
  std::uint64_t failures = 0;
  bool target_met = false;
  bool hit_missing = false;
  for (std::uint64_t k = 0; k < shards.size(); ++k) {
    // Quarantined shards are excluded from the merge (degraded result);
    // the walk continues so everything that did complete still counts.
    if (states[k] == ShardState::kQuarantined) continue;
    if (!outcomes[k].has_value()) {
      hit_missing = true;  // cutoff or interrupted — never a completed shard
      break;
    }
    merged += *outcomes[k];
    failures += outcomes[k]->failure_intervals;
    if (opt.target_failures != 0 && failures >= opt.target_failures) {
      target_met = true;
      break;
    }
  }

  if (opt.report) {
    std::lock_guard<std::mutex> lock(report_mutex);
    opt.report->shards_total += shards.size();
    // Interrupted = the merge stopped at a hole the shutdown left behind.
    // (When early-stop caused the hole, the target was met first, because
    // triggered() requires the contiguous completed prefix to meet it.)
    if (hit_missing && !target_met && shutdown_requested()) {
      opt.report->interrupted = true;
    }
  }
  return merged;
}

// Plain entry point: deterministic shard merge with early stop, no
// checkpointing, no quarantine (a throwing shard propagates).
template <typename Result, typename RunFn>
Result run_sharded(ThreadPool& pool, const std::vector<Shard>& shards,
                   std::uint64_t target_failures, RunFn&& run) {
  RunShardedOptions<Result> opt;
  opt.target_failures = target_failures;
  return run_sharded<Result>(pool, shards, opt, std::forward<RunFn>(run));
}

}  // namespace sudoku::exp
