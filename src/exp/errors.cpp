#include "exp/errors.h"

namespace sudoku::exp {

const char* to_string(ShardErrorKind kind) {
  switch (kind) {
    case ShardErrorKind::kTrialException: return "trial_exception";
    case ShardErrorKind::kUnknownException: return "unknown_exception";
    case ShardErrorKind::kCheckpointCorrupt: return "checkpoint_corrupt";
    case ShardErrorKind::kCheckpointIo: return "checkpoint_io";
  }
  return "unknown";
}

JsonObject ShardError::to_json() const {
  JsonObject o;
  o.set("shard", shard_index)
      .set("kind", to_string(kind))
      .set("attempt", attempt)
      .set("detail", detail);
  return o;
}

obs::MetricsRegistry ShardRunReport::to_metrics() const {
  obs::MetricsRegistry reg;
  reg.counter("exp.shards_resumed")->inc(shards_resumed);
  reg.counter("exp.shards_foreign")->inc(shards_foreign);
  reg.counter("exp.shards_retried")->inc(shards_retried);
  reg.counter("exp.shards_quarantined")->inc(shards_quarantined);
  reg.counter("exp.trials_quarantined")->inc(trials_quarantined);
  return reg;
}

JsonArray ShardRunReport::errors_json() const {
  JsonArray arr;
  for (const auto& e : errors) arr.push(e.to_json());
  return arr;
}

}  // namespace sudoku::exp
