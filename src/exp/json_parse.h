// Compatibility forwarder: the JSON reader moved to common/json_parse.h so
// layers below exp (the fault-scenario specs above all) can parse the same
// dialect the emitter writes. Existing exp-side includers keep their
// sudoku::exp:: spellings through these aliases.
#pragma once

#include "common/json_parse.h"

namespace sudoku::exp {

using sudoku::JsonValue;
using sudoku::json_parse;

}  // namespace sudoku::exp
