// Cooperative clean shutdown for long experiment campaigns. SIGINT and
// SIGTERM flip a process-wide flag; the engine polls it between shards
// (and in-flight shards poll it per interval through their stop hooks), so
// a signal means: finish or abandon the current shards, flush checkpoints,
// and exit with kExitInterrupted — distinct from success (0) and from a
// real failure (non-zero, non-75) so wrappers and CI can tell
// "interrupted, resumable" apart from "broken".
#pragma once

namespace sudoku::exp {

// sysexits.h EX_TEMPFAIL: "temporary failure, retrying is reasonable" —
// exactly the semantics of an interrupted, checkpointed campaign.
inline constexpr int kExitInterrupted = 75;

// Install SIGINT/SIGTERM handlers that call request_shutdown(). Idempotent;
// safe to call from every bench main().
void install_signal_handlers();

// True once a shutdown was requested (by signal or programmatically).
bool shutdown_requested();

// What the signal handler does; exposed so tests and embedders can trigger
// a clean shutdown without raising a real signal.
void request_shutdown();

// Clear the flag (tests that simulate multiple kill/resume cycles in one
// process).
void reset_shutdown();

}  // namespace sudoku::exp
