// Engine adapters for the two Monte-Carlo harnesses: shard the interval
// budget, run each shard with per-trial seed streams on the work-stealing
// pool, and merge deterministically. Merged counts are bit-identical for
// any thread count (see docs/exp_engine.md for the exact contract).
//
// Fault tolerance (docs/robustness.md): pass a CheckpointStore to persist
// every finished shard and replay them on resume; pass a ShardRunReport to
// get quarantine/retry/interrupt accounting. Both harnesses always run
// with quarantine on — a throwing trial degrades the campaign instead of
// terminating it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "baselines/mc_runner.h"
#include "baselines/scheme.h"
#include "exp/checkpoint.h"
#include "exp/errors.h"
#include "exp/result_sink.h"
#include "exp/sharder.h"
#include "reliability/montecarlo.h"

namespace sudoku::exp {

struct ExpOptions {
  unsigned threads = 0;     // pool width; 0 = one per hardware thread
  std::uint64_t chunk = 0;  // trials per shard; 0 = default_chunk(total)

  // ---- fault tolerance ----
  // Checkpoint store (nullable). The checkpoint key is derived inside the
  // adapter from (checkpoint_scope, full config, resolved shard plan,
  // seed), so any config change cold-starts automatically.
  CheckpointStore* checkpoint = nullptr;
  // Disambiguates runs whose configs would hash identically (e.g. the same
  // BaselineMcConfig driven through different schemes). Also names the
  // checkpoint subdirectory.
  std::string checkpoint_scope;
  // Tries per shard before quarantine (minimum 1).
  unsigned max_attempts = 3;
  // Accumulates resume/retry/quarantine/interrupt accounting across calls.
  ShardRunReport* report = nullptr;
  // Progress/test hook: fired after each live shard completes.
  std::function<void(const Shard&)> after_shard;

  // ---- fleet (multi-process shard queue, docs/fleet.md) ----
  // When set, shards are claimed exclusively through the checkpoint store
  // before they run, so N independent processes pointed at the same store
  // split one experiment and each merge the same bit-identical result.
  // Requires `checkpoint` (the store is the coordination medium); the
  // adapters throw std::runtime_error if fleet is requested without it.
  bool fleet = false;
  // Claim lease: a claim this old with no published result is stealable.
  unsigned lease_ms = 10000;
  // Sleep between polls of a sibling-owned shard in the wait pass.
  unsigned poll_ms = 20;
};

// Parallel reliability::run_montecarlo. config.seed / max_intervals /
// target_failures keep their sequential meanings; the per-trial-stream and
// shard fields of `config` are managed by the engine and ignored on input.
reliability::McResult run_montecarlo_parallel(const reliability::McConfig& config,
                                              const ExpOptions& options = {},
                                              RunStats* stats = nullptr);

// Parallel baselines::run_baseline_mc. Each shard drives its own scheme
// instance, so the caller provides a factory instead of a live scheme.
using SchemeFactory = std::function<std::unique_ptr<baselines::CacheScheme>()>;
baselines::BaselineMcResult run_baseline_mc_parallel(
    const SchemeFactory& factory, const baselines::BaselineMcConfig& config,
    const ExpOptions& options = {}, RunStats* stats = nullptr);

// ---- checkpoint payload codecs ----------------------------------------
// Round-trip-exact JSON (de)serialization of shard results, including the
// embedded metrics registry: decode(encode(r)) reproduces r bit for bit,
// which is what makes resumed merges byte-identical to uninterrupted ones.
// decode returns std::nullopt on any malformed payload (torn file, schema
// drift) — the engine then recomputes the shard.
std::string encode_mc_result(const reliability::McResult& r);
std::optional<reliability::McResult> decode_mc_result(const std::string& payload);
std::string encode_baseline_mc_result(const baselines::BaselineMcResult& r);
std::optional<baselines::BaselineMcResult> decode_baseline_mc_result(
    const std::string& payload);

}  // namespace sudoku::exp
