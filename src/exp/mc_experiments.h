// Engine adapters for the two Monte-Carlo harnesses: shard the interval
// budget, run each shard with per-trial seed streams on the work-stealing
// pool, and merge deterministically. Merged counts are bit-identical for
// any thread count (see docs/exp_engine.md for the exact contract).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "baselines/mc_runner.h"
#include "baselines/scheme.h"
#include "exp/result_sink.h"
#include "reliability/montecarlo.h"

namespace sudoku::exp {

struct ExpOptions {
  unsigned threads = 0;     // pool width; 0 = one per hardware thread
  std::uint64_t chunk = 0;  // trials per shard; 0 = default_chunk(total)
};

// Parallel reliability::run_montecarlo. config.seed / max_intervals /
// target_failures keep their sequential meanings; the per-trial-stream and
// shard fields of `config` are managed by the engine and ignored on input.
reliability::McResult run_montecarlo_parallel(const reliability::McConfig& config,
                                              const ExpOptions& options = {},
                                              RunStats* stats = nullptr);

// Parallel baselines::run_baseline_mc. Each shard drives its own scheme
// instance, so the caller provides a factory instead of a live scheme.
using SchemeFactory = std::function<std::unique_ptr<baselines::CacheScheme>()>;
baselines::BaselineMcResult run_baseline_mc_parallel(
    const SchemeFactory& factory, const baselines::BaselineMcConfig& config,
    const ExpOptions& options = {}, RunStats* stats = nullptr);

}  // namespace sudoku::exp
