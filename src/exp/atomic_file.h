// Crash-safe file publication: write to "<path>.tmp" in the same
// directory, then rename over the target. A reader (including a resumed
// run after a crash or SIGKILL) therefore sees either the previous
// complete file or the new complete file — never a truncated one. Used by
// ResultSink artifacts and checkpoint shards.
#pragma once

#include <filesystem>
#include <string>

namespace sudoku::exp {

enum class FileDurability {
  // fsync the data before the rename and the directory after: the
  // publication survives power loss. Two fsyncs per file — right for
  // final artifacts, too slow for per-shard checkpoints.
  kFull,
  // Atomic against process crashes (rename only, no fsync). After power
  // loss the file may be empty or torn; callers must treat unreadable
  // content as "absent" (checkpoint decode already does — a torn shard
  // is recomputed, so the weaker mode costs correctness nothing).
  kProcessCrashOnly,
};

// Throws std::runtime_error (with the path in the message) when the
// temporary cannot be created/written or the rename fails. The POSIX path
// honours `durability`; the portable fallback is always process-crash-only.
void atomic_write_file(const std::filesystem::path& path,
                       const std::string& contents,
                       FileDurability durability = FileDurability::kFull);

}  // namespace sudoku::exp
