// Crash-safe file publication: write to "<path>.tmp.<pid>.<n>" in the
// same directory, then rename over the target. A reader (including a
// resumed run after a crash or SIGKILL) therefore sees either the previous
// complete file or the new complete file — never a truncated one. The
// writer-unique staging name keeps concurrent publishers (fleet siblings
// emitting the same artifact, pool threads saving at once) from clobbering
// each other's temp files. Used by ResultSink artifacts and checkpoint
// shards.
//
// Cross-process semantics (docs/fleet.md). Both primitives here are the
// POSIX atoms the multi-process shard queue is built from, so their
// contracts are load-bearing across *processes*, not just threads:
//  * atomic_write_file renames OVER an existing target. rename(2) replaces
//    the destination atomically, so when two processes publish the same
//    path concurrently, readers see one complete payload or the other,
//    never a mix — last writer wins. Idempotent re-publication (two fleet
//    workers computing the same shard from the same seeds) is therefore
//    harmless by construction. Pinned by tests/test_checkpoint.cpp.
//  * atomic_create_file is the opposite discipline: O_CREAT|O_EXCL fails
//    if the path already exists, and exactly one of N racing creators
//    wins. That exclusive-create is what makes a shard *claim* atomic.
#pragma once

#include <filesystem>
#include <string>

namespace sudoku::exp {

enum class FileDurability {
  // fsync the data before the rename and the directory after: the
  // publication survives power loss. Two fsyncs per file — right for
  // final artifacts, too slow for per-shard checkpoints.
  kFull,
  // Atomic against process crashes (rename only, no fsync). After power
  // loss the file may be empty or torn; callers must treat unreadable
  // content as "absent" (checkpoint decode already does — a torn shard
  // is recomputed, so the weaker mode costs correctness nothing).
  kProcessCrashOnly,
};

// Throws std::runtime_error (with the path in the message) when the
// temporary cannot be created/written or the rename fails. The POSIX path
// honours `durability`; the portable fallback is always process-crash-only.
void atomic_write_file(const std::filesystem::path& path,
                       const std::string& contents,
                       FileDurability durability = FileDurability::kFull);

// Exclusive create: atomically create `path` with `contents` if and only
// if no file exists there yet. Returns true when this call created the
// file, false when the path already existed (someone else holds it).
// Unlike atomic_write_file there is no temp+rename — O_EXCL itself is the
// atom — so the contents are advisory (a reader racing the create may see
// them partially written); the claim protocol stores only diagnostics
// there. Throws std::runtime_error on any error other than "exists"
// (missing directory, permissions). The portable fallback approximates
// O_EXCL with create-if-absent semantics that are atomic on POSIX only.
bool atomic_create_file(const std::filesystem::path& path,
                        const std::string& contents);

}  // namespace sudoku::exp
