// Deterministic decomposition of a trial budget into shards, plus the
// early-stop tracker that lets shards be cancelled without ever changing a
// merged result.
//
// A shard is a contiguous trial range [first, first + count). The plan is
// a pure function of (total, chunk) — never of thread count — and the
// merge (engine.h) walks shards in index order, so every engine run with
// the same plan and base seed produces bit-identical merged results.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace sudoku::exp {

struct Shard {
  std::uint64_t index = 0;  // position in the plan (and merge order)
  std::uint64_t first = 0;  // first trial index covered
  std::uint64_t count = 0;  // number of trials
};

// Split `total` trials into chunks of `chunk` (last one may be short).
// total == 0 yields an empty plan; chunk == 0 is clamped to 1.
std::vector<Shard> make_shards(std::uint64_t total, std::uint64_t chunk);

// Default chunk size: a pure function of `total` (so plans are stable
// across hosts), sized to amortise per-shard setup — each shard rebuilds
// and formats its own controller, which costs on the order of tens of
// trials — while still yielding ~16 shards for load balancing.
std::uint64_t default_chunk(std::uint64_t total);

// Early-stop accounting across shards. Shards report their failure counts
// as they complete; `triggered()` turns true only once the *contiguous
// completed prefix* of shards already meets the target. At that point the
// deterministic merge cutoff provably falls inside that prefix, so every
// shard still running (all have higher indices) will be discarded by the
// merge — cancelling them can only save work, never change the result.
class EarlyStop {
 public:
  // target == 0 disables early stop entirely.
  EarlyStop(std::uint64_t num_shards, std::uint64_t target);

  // Record a *deterministically completed* shard (ran its full range or
  // stopped on its own intra-shard target) — never a cancelled one.
  void record(std::uint64_t shard_index, std::uint64_t failures);

  bool triggered() const;

  // Failures accumulated over the contiguous completed prefix (for tests).
  std::uint64_t prefix_failures() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t target_;
  std::vector<std::uint64_t> failures_;   // by shard index
  std::vector<bool> completed_;           // by shard index
  std::uint64_t prefix_len_ = 0;          // shards [0, prefix_len_) complete
  std::uint64_t prefix_failures_ = 0;
};

}  // namespace sudoku::exp
