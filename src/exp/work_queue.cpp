#include "exp/work_queue.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "exp/atomic_file.h"

namespace sudoku::exp {

namespace {

std::string this_worker_tag() {
  char host[256] = "unknown-host";
#if defined(__unix__) || defined(__APPLE__)
  if (::gethostname(host, sizeof(host)) != 0) {
    std::snprintf(host, sizeof(host), "unknown-host");
  }
  host[sizeof(host) - 1] = '\0';
  return std::string(host) + ":" + std::to_string(::getpid());
#else
  return std::string(host);
#endif
}

}  // namespace

ShardWorkQueue::ShardWorkQueue(const CheckpointStore* store, CheckpointKey key,
                               WorkQueueOptions options)
    : store_(store),
      key_(std::move(key)),
      options_(options),
      worker_tag_(this_worker_tag()) {}

std::filesystem::path ShardWorkQueue::claim_path(
    std::uint64_t shard_index) const {
  return store_->shard_path(key_, shard_index).string() + ".claim";
}

std::optional<std::string> ShardWorkQueue::load_done(
    std::uint64_t shard_index) const {
  // Deliberately not CheckpointStore::load: that honours the store's
  // resume flag, while fleet siblings' results are part of the *current*
  // run and must always be visible.
  std::ifstream in(store_->shard_path(key_, shard_index), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(ss).str();
}

bool ShardWorkQueue::try_claim(std::uint64_t shard_index) const {
  const std::filesystem::path path = claim_path(shard_index);
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  if (ec) {
    throw std::runtime_error("ShardWorkQueue: cannot create '" +
                             path.parent_path().string() + "': " + ec.message());
  }
  return atomic_create_file(path, worker_tag_ + "\n");
}

void ShardWorkQueue::release(std::uint64_t shard_index) const {
  std::error_code ignored;
  std::filesystem::remove(claim_path(shard_index), ignored);
}

bool ShardWorkQueue::steal_stale(std::uint64_t shard_index) const {
  const std::filesystem::path claim = claim_path(shard_index);
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(claim, ec);
  if (ec) return false;  // claim vanished — owner released or a peer stole it
  const auto age = std::filesystem::file_time_type::clock::now() - mtime;
  if (age < options_.lease) return false;
  if (load_done(shard_index)) return false;  // finished; nothing to steal
  // Rename-to-tombstone is the steal atom: of N peers that all see the
  // claim expired, exactly one rename succeeds (the rest find the source
  // gone). The winner removes the tombstone and takes a fresh claim; a
  // revenant owner publishing its done-file afterwards is harmless because
  // the payload bytes are identical.
  const std::filesystem::path tombstone =
      claim.string() + ".stale." + worker_tag_;
  std::filesystem::rename(claim, tombstone, ec);
  if (ec) return false;
  std::error_code ignored;
  std::filesystem::remove(tombstone, ignored);
  return try_claim(shard_index);
}

}  // namespace sudoku::exp
