// JSON rendering for obs::MetricsRegistry snapshots. Lives in exp (not
// obs) so the obs library stays a dependency-free leaf that every layer
// can link, while artifact emission reuses exp's round-trip-safe JSON.
//
// Layout (names sorted, so artifacts diff cleanly):
//   "metrics": {
//     "sudoku.read.clean": 1234,                       // counter
//     "scrub.bandwidth_fraction": {"gauge": 0.011, "samples": 3},
//     "mc.faults_per_interval": {                      // histogram
//       "edges": [1, 2, 4, 8], "buckets": [0, 5, 9, 2, 1],
//       "count": 17, "sum": 61, "min": 1, "max": 11
//     }
//   }
#pragma once

#include "exp/json.h"
#include "obs/metrics.h"

namespace sudoku::exp {

// Render every metric in `registry`, sorted by name. An empty registry
// renders as {}.
JsonObject metrics_to_json(const obs::MetricsRegistry& registry);

}  // namespace sudoku::exp
