// JSON rendering for obs::MetricsRegistry snapshots. Lives in exp (not
// obs) so the obs library stays a dependency-free leaf that every layer
// can link, while artifact emission reuses exp's round-trip-safe JSON.
//
// Layout (names sorted, so artifacts diff cleanly):
//   "metrics": {
//     "sudoku.read.clean": 1234,                       // counter
//     "scrub.bandwidth_fraction": {"gauge": 0.011, "samples": 3},
//     "mc.faults_per_interval": {                      // histogram
//       "edges": [1, 2, 4, 8], "buckets": [0, 5, 9, 2, 1],
//       "count": 17, "sum": 61, "min": 1, "max": 11
//     }
//   }
#pragma once

#include <optional>

#include "exp/json.h"
#include "exp/json_parse.h"
#include "obs/metrics.h"

namespace sudoku::exp {

// Render every metric in `registry`, sorted by name. An empty registry
// renders as {}.
JsonObject metrics_to_json(const obs::MetricsRegistry& registry);

// Inverse of metrics_to_json over a parsed "metrics" object: a plain
// number is a counter, {"gauge","samples"} a gauge, {"edges","buckets",..}
// a histogram. Exact — the emitter's round-trip-safe numbers reparse to
// identical bits, so a restored registry merges byte-identically with live
// ones (the checkpoint/resume contract). Returns std::nullopt on any
// malformed member instead of throwing: an undecodable snapshot means the
// shard is recomputed.
std::optional<obs::MetricsRegistry> metrics_from_json(const JsonValue& value);

}  // namespace sudoku::exp
