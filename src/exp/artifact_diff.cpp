#include "exp/artifact_diff.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sudoku::exp {

namespace {

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

struct DiffContext {
  const ArtifactDiffOptions& options;
  ArtifactDiffResult& result;

  bool ignored(const std::string& path) const {
    for (const auto& pattern : options.ignore) {
      if (path_glob_match(pattern, path)) return true;
    }
    return false;
  }

  void mismatch(const std::string& path, std::string message) {
    result.entries.push_back({path, std::move(message)});
  }
};

std::string child_path(const std::string& base, const std::string& key) {
  return base.empty() ? key : base + "." + key;
}

std::string index_path(const std::string& base, std::size_t i) {
  return base + "[" + std::to_string(i) + "]";
}

void diff_value(DiffContext& ctx, const std::string& path, const JsonValue& golden,
                const JsonValue& actual);

void diff_number(DiffContext& ctx, const std::string& path, const JsonValue& golden,
                 const JsonValue& actual) {
  const bool g_int = number_text_is_integer(golden.scalar);
  const bool a_int = number_text_is_integer(actual.scalar);
  if (golden.scalar == actual.scalar) return;
  if (g_int && a_int) {
    // Integer counters compare by raw text: exact, even beyond 2^53. The
    // emitter is canonical (no leading zeros, no "+"), so unequal text
    // means unequal value.
    ctx.mismatch(path, "integer golden " + golden.scalar + " != actual " +
                           actual.scalar);
    return;
  }
  const auto g = golden.as_double();
  const auto a = actual.as_double();
  if (!g || !a) {
    ctx.mismatch(path, "unparsable number golden '" + golden.scalar +
                           "' vs actual '" + actual.scalar + "'");
    return;
  }
  const double tol = ctx.options.rel_tol * std::max(std::fabs(*g), std::fabs(*a));
  if (std::fabs(*g - *a) <= tol) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "golden %s != actual %s (rel delta %.3g, rtol %.3g)",
                golden.scalar.c_str(), actual.scalar.c_str(),
                *g == 0.0 && *a == 0.0
                    ? 0.0
                    : std::fabs(*g - *a) / std::max(std::fabs(*g), std::fabs(*a)),
                ctx.options.rel_tol);
  ctx.mismatch(path, buf);
}

void diff_object(DiffContext& ctx, const std::string& path, const JsonValue& golden,
                 const JsonValue& actual) {
  for (const auto& [key, gv] : golden.members) {
    const std::string p = child_path(path, key);
    const JsonValue* av = actual.find(key);
    if (av == nullptr) {
      if (!ctx.ignored(p)) ctx.mismatch(p, "present in golden, missing in actual");
      continue;
    }
    diff_value(ctx, p, gv, *av);
  }
  for (const auto& [key, av] : actual.members) {
    (void)av;
    if (golden.find(key) != nullptr) continue;
    const std::string p = child_path(path, key);
    if (!ctx.ignored(p)) ctx.mismatch(p, "missing in golden, present in actual");
  }
}

void diff_array(DiffContext& ctx, const std::string& path, const JsonValue& golden,
                const JsonValue& actual) {
  if (golden.items.size() != actual.items.size()) {
    ctx.mismatch(path, "array length golden " + std::to_string(golden.items.size()) +
                           " != actual " + std::to_string(actual.items.size()));
  }
  const std::size_t n = std::min(golden.items.size(), actual.items.size());
  for (std::size_t i = 0; i < n; ++i) {
    diff_value(ctx, index_path(path, i), golden.items[i], actual.items[i]);
  }
}

void diff_value(DiffContext& ctx, const std::string& path, const JsonValue& golden,
                const JsonValue& actual) {
  if (ctx.ignored(path)) return;
  if (golden.kind != actual.kind) {
    ctx.mismatch(path, std::string("kind golden ") + kind_name(golden.kind) +
                           " != actual " + kind_name(actual.kind) +
                           " (the emitter renders NaN/Inf as null)");
    return;
  }
  switch (golden.kind) {
    case JsonValue::Kind::kNull:
      return;  // null == null (both non-finite or both absent-by-design)
    case JsonValue::Kind::kBool:
      if (golden.boolean != actual.boolean) {
        ctx.mismatch(path, std::string("golden ") + (golden.boolean ? "true" : "false") +
                               " != actual " + (actual.boolean ? "true" : "false"));
      }
      return;
    case JsonValue::Kind::kString:
      if (golden.scalar != actual.scalar) {
        ctx.mismatch(path, "golden \"" + golden.scalar + "\" != actual \"" +
                               actual.scalar + "\"");
      }
      return;
    case JsonValue::Kind::kNumber:
      diff_number(ctx, path, golden, actual);
      return;
    case JsonValue::Kind::kArray:
      diff_array(ctx, path, golden, actual);
      return;
    case JsonValue::Kind::kObject:
      diff_object(ctx, path, golden, actual);
      return;
  }
}

}  // namespace

bool number_text_is_integer(const std::string& raw) {
  if (raw.empty()) return false;
  std::size_t i = raw[0] == '-' ? 1 : 0;
  if (i == raw.size()) return false;
  for (; i < raw.size(); ++i) {
    if (raw[i] < '0' || raw[i] > '9') return false;
  }
  return true;
}

bool path_glob_match(const std::string& pattern, const std::string& path) {
  // Iterative glob with single backtrack point — linear in practice.
  std::size_t p = 0, s = 0;
  std::size_t star = std::string::npos, star_s = 0;
  while (s < path.size()) {
    if (p < pattern.size() && (pattern[p] == path[s] || pattern[p] == '?')) {
      ++p, ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_s = s;
    } else if (star != std::string::npos) {
      p = star + 1;
      s = ++star_s;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

ArtifactDiffResult diff_artifacts(const JsonValue& golden, const JsonValue& actual,
                                  const ArtifactDiffOptions& options) {
  ArtifactDiffResult result;
  DiffContext ctx{options, result};
  diff_value(ctx, "", golden, actual);
  return result;
}

std::string render_artifact_diff(const ArtifactDiffResult& result) {
  std::string out;
  for (const auto& e : result.entries) {
    out += (e.path.empty() ? std::string("<root>") : e.path) + ": " + e.message + "\n";
  }
  return out;
}

namespace {

// nullopt on unreadable/unparsable input, with the reason on stderr.
std::optional<JsonValue> load_artifact(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "artifact_diff: cannot open '%s': %s\n", path,
                 std::strerror(errno));
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string error;
  auto parsed = json_parse(ss.str(), &error);
  if (!parsed) {
    std::fprintf(stderr, "artifact_diff: '%s' is not valid JSON: %s\n", path,
                 error.c_str());
  }
  return parsed;
}

void print_cli_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: artifact_diff [--rtol=X] [--ignore=PATTERN]... "
               "<golden.json> <actual.json>\n"
               "\n"
               "  --rtol=X           relative tolerance for float-shaped numbers\n"
               "                     (integer counters always compare exactly; default 0)\n"
               "  --ignore=PATTERN   skip subtrees whose dotted path glob-matches\n"
               "                     PATTERN (e.g. throughput, result.rows[*].seconds);\n"
               "                     repeatable\n"
               "\n"
               "exit: 0 identical outside ignored sections, 1 differing, 2 error\n");
}

}  // namespace

int artifact_diff_main(int argc, char** argv) {
  ArtifactDiffOptions options;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rtol=", 0) == 0) {
      const std::string text = arg.substr(7);
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (text.empty() || errno == ERANGE || end != text.c_str() + text.size() ||
          !(v >= 0.0)) {
        std::fprintf(stderr, "artifact_diff: invalid --rtol value '%s'\n",
                     text.c_str());
        print_cli_usage(stderr);
        return 2;
      }
      options.rel_tol = v;
    } else if (arg.rfind("--ignore=", 0) == 0) {
      if (arg.size() == 9) {
        std::fprintf(stderr, "artifact_diff: --ignore needs a pattern\n");
        print_cli_usage(stderr);
        return 2;
      }
      options.ignore.push_back(arg.substr(9));
    } else if (arg == "--help" || arg == "-h") {
      print_cli_usage(stdout);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "artifact_diff: unknown flag '%s'\n", arg.c_str());
      print_cli_usage(stderr);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr, "artifact_diff: expected exactly two files, got %zu\n",
                 files.size());
    print_cli_usage(stderr);
    return 2;
  }
  const auto golden = load_artifact(files[0]);
  if (!golden) return 2;
  const auto actual = load_artifact(files[1]);
  if (!actual) return 2;
  const auto diff = diff_artifacts(*golden, *actual, options);
  if (diff.identical()) return 0;
  std::fprintf(stderr, "artifact_diff: %s differs from golden %s in %zu place(s):\n%s",
               files[1], files[0], diff.entries.size(),
               render_artifact_diff(diff).c_str());
  return 1;
}

}  // namespace sudoku::exp
