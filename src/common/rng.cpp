#include "common/rng.h"

#include <algorithm>

namespace sudoku {

std::uint64_t Rng::next_binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double mean = static_cast<double>(n) * p;
  if (mean <= 64.0) {
    // For the small-mean regime a Binomial with tiny p is indistinguishable
    // from Poisson(mean); use Poisson inversion and clamp to n.
    if (p < 1e-4) return std::min<std::uint64_t>(n, next_poisson(mean));
    // Exact inversion on the binomial CDF.
    double u = next_double();
    const double q = 1.0 - p;
    double prob = std::pow(q, static_cast<double>(n));  // P[X=0]
    std::uint64_t k = 0;
    double cdf = prob;
    while (u > cdf && k < n) {
      ++k;
      prob *= (static_cast<double>(n - k + 1) / static_cast<double>(k)) * (p / q);
      cdf += prob;
    }
    return k;
  }
  // Normal approximation with continuity correction.
  const double sd = std::sqrt(mean * (1.0 - p));
  const double x = mean + sd * next_gaussian() + 0.5;
  if (x < 0.0) return 0;
  if (x > static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(x);
}

std::uint64_t Rng::next_poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    double prod = next_double();
    std::uint64_t k = 0;
    while (prod > limit) {
      ++k;
      prod *= next_double();
    }
    return k;
  }
  const double x = mean + std::sqrt(mean) * next_gaussian() + 0.5;
  return x < 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

}  // namespace sudoku
