#include "common/prob.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace sudoku {

double log_factorial(double n) { return std::lgamma(n + 1.0); }

double log_binom_coeff(double n, double k) {
  assert(k >= 0.0 && k <= n);
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_binom_pmf(double n, double k, double p) {
  if (p <= 0.0) return k == 0.0 ? 0.0 : -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return k == n ? 0.0 : -std::numeric_limits<double>::infinity();
  return log_binom_coeff(n, k) + k * std::log(p) + (n - k) * std::log1p(-p);
}

double log_sum(double la, double lb) {
  if (la == -std::numeric_limits<double>::infinity()) return lb;
  if (lb == -std::numeric_limits<double>::infinity()) return la;
  if (la < lb) std::swap(la, lb);
  return la + std::log1p(std::exp(lb - la));
}

double log_one_minus_exp(double la) {
  assert(la <= 0.0);
  if (la == 0.0) return -std::numeric_limits<double>::infinity();
  if (la < -1.0) return std::log1p(-std::exp(la));
  return std::log(-std::expm1(la));
}

double log_binom_tail_ge(double n, double k, double p) {
  if (k <= 0.0) return 0.0;  // P >= 0 events is 1
  if (k > n) return -std::numeric_limits<double>::infinity();
  // In our regime n·p is far below k, so the pmf decays geometrically with
  // ratio roughly (n-k)p/((k+1)(1-p)); sum terms until they stop mattering.
  double total = -std::numeric_limits<double>::infinity();
  double prev = -std::numeric_limits<double>::infinity();
  for (double j = k; j <= n; j += 1.0) {
    const double term = log_binom_pmf(n, j, p);
    total = log_sum(total, term);
    if (term < total - 40.0 && term < prev) break;  // converged
    prev = term;
  }
  return total;
}

double log_any_of_n(double lp, double n) {
  // log(1 - (1-p)^n) where log p = lp.
  if (lp == -std::numeric_limits<double>::infinity()) return lp;
  const double p = std::exp(lp);
  double log_one_minus_p;
  if (p < 1e-8) {
    // log(1-p) ≈ -p - p^2/2; -p dominates.
    log_one_minus_p = -p - 0.5 * p * p;
  } else {
    log_one_minus_p = std::log1p(-p);
  }
  const double la = n * log_one_minus_p;  // log (1-p)^n, <= 0
  if (la == 0.0) {
    // Entirely below double resolution: 1-(1-p)^n ≈ n·p.
    return std::log(n) + lp;
  }
  return log_one_minus_exp(la);
}

GaussHermite::GaussHermite(int order) {
  // Newton iteration on physicists' Hermite polynomials (Numerical Recipes
  // "gauher"), then rescale so that E[f(Z)] for Z ~ N(0,1) is
  // Σ weights[i] * f(nodes[i]).
  const int n = order;
  nodes.resize(n);
  weights.resize(n);
  const double pim4 = 0.7511255444649425;  // pi^{-1/4}
  double z = 0.0;
  for (int i = 0; i < (n + 1) / 2; ++i) {
    if (i == 0) {
      z = std::sqrt(2.0 * n + 1.0) - 1.85575 * std::pow(2.0 * n + 1.0, -0.16667);
    } else if (i == 1) {
      z -= 1.14 * std::pow(n, 0.426) / z;
    } else if (i == 2) {
      z = 1.86 * z - 0.86 * nodes[0];
    } else if (i == 3) {
      z = 1.91 * z - 0.91 * nodes[1];
    } else {
      z = 2.0 * z - nodes[i - 2];
    }
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      double p1 = pim4;
      double p2 = 0.0;
      for (int j = 0; j < n; ++j) {
        const double p3 = p2;
        p2 = p1;
        p1 = z * std::sqrt(2.0 / (j + 1)) * p2 - std::sqrt(static_cast<double>(j) / (j + 1)) * p3;
      }
      pp = std::sqrt(2.0 * n) * p2;
      const double z1 = z;
      z = z1 - p1 / pp;
      if (std::abs(z - z1) <= 3e-14) break;
    }
    nodes[i] = z;
    nodes[n - 1 - i] = -z;
    weights[i] = 2.0 / (pp * pp);
    weights[n - 1 - i] = weights[i];
  }
  // Physicists' -> probabilists': x_prob = sqrt(2)·x, w_prob = w / sqrt(pi).
  const double inv_sqrt_pi = 0.5641895835477563;
  double wsum = 0.0;
  for (int i = 0; i < n; ++i) {
    nodes[i] *= 1.4142135623730951;
    weights[i] *= inv_sqrt_pi;
    wsum += weights[i];
  }
  // Normalize residual numerical drift so the weights sum to exactly 1.
  for (auto& w : weights) w /= wsum;
}

}  // namespace sudoku
