// Log-domain probability arithmetic for the analytical reliability models.
// The quantities involved (e.g. P[7 faults in a 543-bit line] at
// BER 5.3e-6) underflow double precision when computed naively, so every
// model works with natural-log probabilities and converts at the edges.
#pragma once

#include <cstdint>
#include <vector>

namespace sudoku {

// log(n!) via lgamma.
double log_factorial(double n);

// log C(n, k); requires 0 <= k <= n.
double log_binom_coeff(double n, double k);

// log( C(n,k) p^k (1-p)^(n-k) ) — binomial pmf in log domain.
// Handles p == 0 / p == 1 edge cases.
double log_binom_pmf(double n, double k, double p);

// log P[Binomial(n, p) == k].
inline double log_prob_exactly_k(double n, double k, double p) {
  return log_binom_pmf(n, k, p);
}

// log P[Binomial(n, p) >= k]. Sums the (rapidly decaying, since n·p << k in
// our regime) upper tail until terms are negligible.
double log_binom_tail_ge(double n, double k, double p);

// log(a + b) given log a, log b.
double log_sum(double la, double lb);

// log(1 - exp(la)) for la <= 0.
double log_one_minus_exp(double la);

// P[at least one of n independent events, each with log-prob lp] in log
// domain: log(1 - (1 - p)^n). Stable for tiny p and huge n.
double log_any_of_n(double lp, double n);

// Gauss-Hermite quadrature nodes/weights for integrating f against a
// standard normal: E[f(Z)] ≈ Σ w_i f(x_i). `order` up to 64.
struct GaussHermite {
  std::vector<double> nodes;    // already scaled: integrate f(node) * weight
  std::vector<double> weights;  // weights sum to 1
  explicit GaussHermite(int order);
};

constexpr double kSecondsPerBillionHours = 1e9 * 3600.0;

// FIT rate (failures per 1e9 device-hours) given the per-interval failure
// probability and the interval length in seconds.
inline double fit_from_interval_prob(double p_interval, double interval_s) {
  return p_interval * (kSecondsPerBillionHours / interval_s);
}

// MTTF in seconds given per-interval failure probability.
inline double mttf_seconds(double p_interval, double interval_s) {
  return p_interval > 0 ? interval_s / p_interval : 1e300;
}

}  // namespace sudoku
