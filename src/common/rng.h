// Deterministic, fast PRNG (xoshiro256**) with the distribution helpers the
// fault injector and workload generators need. Seeded explicitly everywhere
// so that every experiment is reproducible from its command line.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace sudoku {

// One SplitMix64 step: advances `state` by the golden-ratio gamma and
// returns a scrambled output. Used to expand seeds into xoshiro state and,
// by the experiment engine, to derive independent per-trial seed streams.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Reserved stream index (see Rng::derive_stream_seed): the experiment
// engine formats golden array contents from this stream so that every
// shard of an experiment holds identical data. Trial indices never reach
// it.
inline constexpr std::uint64_t kFormatStream = ~0ull;

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to expand the seed into the four state words.
    for (auto& w : s_) w = splitmix64_next(seed);
  }

  // Seed of independent stream `index` under `base`. Stream seeds are
  // SplitMix64 outputs at gamma-multiple offsets, scrambled once more so
  // that adjacent trial indices share no state structure. `Rng(derive_
  // stream_seed(base, i))` sequences are what make sharded Monte-Carlo
  // runs bit-identical regardless of thread count (see src/exp).
  static std::uint64_t derive_stream_seed(std::uint64_t base, std::uint64_t index) {
    std::uint64_t state = base + index * 0x9E3779B97F4A7C15ull;
    const std::uint64_t a = splitmix64_next(state);
    return a ^ splitmix64_next(state);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  bool next_bool(double p) { return next_double() < p; }

  // Standard normal via Box-Muller (cached second value).
  double next_gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = next_double();
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  // Binomial(n, p) sample. Exact inversion for small means, normal
  // approximation with continuity correction for large ones (n·p > 64) —
  // the fault injector draws counts over ~5e8 bits where exact sampling
  // would be far too slow and the approximation error is negligible.
  std::uint64_t next_binomial(std::uint64_t n, double p);

  // Poisson(mean) via inversion (small mean) or normal approximation.
  std::uint64_t next_poisson(double mean);

  // Exponential with the given rate (events per unit time).
  double next_exponential(double rate) {
    double u = next_double();
    while (u <= 0.0) u = next_double();
    return -std::log(u) / rate;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace sudoku
