// Minimal JSON parser for reading back artifacts the exp emitter wrote —
// checkpoint payloads above all. The emitter (exp/json.h) stays the only
// writer; this is the matching reader, and the pair round-trips exactly:
// numbers keep their raw source text so u64 counters survive values beyond
// 2^53 and doubles reparse (strtod) to the identical bit pattern the
// round-trip-safe emitter printed.
//
// Deliberately small: UTF-8 pass-through strings, \uXXXX escapes for the
// BMP, no surrogate pairs (the emitter never produces them), bounded
// nesting depth. Malformed input yields std::nullopt with a diagnostic —
// never an exception or abort — because the main consumer is crash
// recovery, where a torn file must mean "recompute", not "die again".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sudoku {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  // For kNumber: the raw source text (parse with as_u64/as_double).
  // For kString: the decoded string contents.
  std::string scalar;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_bool() const { return kind == Kind::kBool; }

  // Object member lookup (nullptr when absent or not an object).
  const JsonValue* find(const std::string& key) const;

  // Numeric accessors. Return std::nullopt when the value is not a number
  // of the requested shape (e.g. as_u64 on "-3" or "1.5").
  std::optional<std::uint64_t> as_u64() const;
  std::optional<double> as_double() const;
};

// Parse a complete JSON document (leading/trailing whitespace allowed; any
// trailing garbage is an error). On failure returns std::nullopt and, when
// `error` is non-null, stores a short human-readable diagnostic.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace sudoku
