#include "common/bitvec.h"

#include <bit>
#include <cassert>

namespace sudoku {

void BitVec::clear() {
  for (auto& w : words_) w = 0;
}

void BitVec::resize(std::size_t nbits) {
  nbits_ = nbits;
  words_.resize((nbits + 63) / 64, 0);
  mask_tail();
}

void BitVec::mask_tail() {
  const std::size_t rem = nbits_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

BitVec& BitVec::operator^=(const BitVec& o) {
  assert(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

bool BitVec::any() const {
  for (auto w : words_)
    if (w != 0) return true;
  return false;
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::vector<std::size_t> BitVec::set_positions(std::size_t limit) const {
  std::vector<std::size_t> out;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      out.push_back(wi * 64 + static_cast<std::size_t>(b));
      if (limit != 0 && out.size() >= limit) return out;
      w &= w - 1;
    }
  }
  return out;
}

std::uint64_t BitVec::get_bits(std::size_t pos, unsigned nbits) const {
  assert(nbits >= 1 && nbits <= 64 && pos + nbits <= nbits_);
  const std::size_t wi = pos >> 6;
  const unsigned off = static_cast<unsigned>(pos & 63);
  std::uint64_t v = words_[wi] >> off;
  if (off != 0 && off + nbits > 64) v |= words_[wi + 1] << (64 - off);
  if (nbits < 64) v &= (std::uint64_t{1} << nbits) - 1;
  return v;
}

void BitVec::set_bits(std::size_t pos, unsigned nbits, std::uint64_t value) {
  assert(nbits >= 1 && nbits <= 64 && pos + nbits <= nbits_);
  const std::uint64_t mask =
      nbits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << nbits) - 1;
  value &= mask;
  const std::size_t wi = pos >> 6;
  const unsigned off = static_cast<unsigned>(pos & 63);
  words_[wi] = (words_[wi] & ~(mask << off)) | (value << off);
  if (off != 0 && off + nbits > 64) {
    const unsigned spill = off + nbits - 64;
    const std::uint64_t hi_mask = (std::uint64_t{1} << spill) - 1;
    words_[wi + 1] = (words_[wi + 1] & ~hi_mask) | (value >> (64 - off));
  }
}

std::size_t BitVec::distance(const BitVec& o) const {
  assert(nbits_ == o.nbits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    n += static_cast<std::size_t>(std::popcount(words_[i] ^ o.words_[i]));
  return n;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) s.push_back(test(i) ? '1' : '0');
  return s;
}

}  // namespace sudoku
