#include "common/json_parse.h"

#include <cerrno>
#include <cstdlib>

namespace sudoku {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      if (error) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) *error = at("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_.empty()) error_ = at(msg);
    return false;
  }

  std::string at(const std::string& msg) const {
    return msg + " (offset " + std::to_string(pos_) + ")";
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.scalar);
      }
      case 't':
        if (!literal("true")) return fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out.kind = JsonValue::Kind::kNull;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected member name");
      }
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          pos_ += 4;
          // Surrogates never appear in emitter output; reject them rather
          // than silently producing invalid UTF-8.
          if (cp >= 0xD800 && cp <= 0xDFFF) return fail("surrogate in \\u escape");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() || !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("invalid fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("invalid exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.scalar.assign(text_.substr(start, pos_ - start));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::optional<std::uint64_t> JsonValue::as_u64() const {
  if (kind != Kind::kNumber) return std::nullopt;
  if (scalar.empty() || scalar[0] == '-') return std::nullopt;
  if (scalar.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;  // fractions/exponents are not exact u64 counters
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(scalar.c_str(), &end, 10);
  if (errno == ERANGE || end != scalar.c_str() + scalar.size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<double> JsonValue::as_double() const {
  if (kind != Kind::kNumber) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(scalar.c_str(), &end);
  if (end != scalar.c_str() + scalar.size()) return std::nullopt;
  return v;
}

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace sudoku
