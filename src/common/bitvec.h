// Dynamic bit vector used to represent stored cache-line codewords and
// parity lines. Sized in bits; storage is 64-bit words. Supports the word
// level operations the RAID/SDR machinery needs: XOR accumulation,
// popcount, and enumeration of set-bit positions (parity mismatches).
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>
#include <span>
#include <string>

namespace sudoku {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool test(std::size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1u; }
  void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  void flip(std::size_t i) { words_[i >> 6] ^= (std::uint64_t{1} << (i & 63)); }
  void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

  void clear();                       // zero all bits, keep size
  void resize(std::size_t nbits);     // resize; new bits are zero

  // In-place XOR with another vector of identical size.
  BitVec& operator^=(const BitVec& o);
  friend BitVec operator^(BitVec a, const BitVec& b) { a ^= b; return a; }

  bool operator==(const BitVec& o) const = default;

  bool any() const;
  bool none() const { return !any(); }
  std::size_t popcount() const;

  // Positions of set bits, ascending. `limit` caps the scan (0 = no cap);
  // used by SDR, which gives up beyond 6 mismatches anyway.
  std::vector<std::size_t> set_positions(std::size_t limit = 0) const;

  // Read/write a field of up to 64 bits starting at `pos`, word-parallel
  // (at most two word accesses). Bit `pos` lands in bit 0 of the result.
  // Used by the codec hot path to move the CRC field without per-bit calls.
  std::uint64_t get_bits(std::size_t pos, unsigned nbits) const;
  void set_bits(std::size_t pos, unsigned nbits, std::uint64_t value);

  // Hamming distance to another vector of identical size.
  std::size_t distance(const BitVec& o) const;

  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> words() { return words_; }

  // Debug helper: "0101..." MSB-last (index order).
  std::string to_string() const;

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;

  void mask_tail();  // clear bits beyond nbits_ in the last word
};

}  // namespace sudoku
