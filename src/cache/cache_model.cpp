#include "cache/cache_model.h"

#include <bit>
#include <cassert>

#include "obs/macros.h"

namespace sudoku::cache {

CacheModel::CacheModel(const CacheConfig& config)
    : config_(config), ways_(config.num_sets() * config.ways) {
  assert(std::has_single_bit(config.num_sets()));
  assert(std::has_single_bit(std::uint64_t{config.line_bytes}));
  set_mask_ = config.num_sets() - 1;
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(std::uint64_t{config.line_bytes}));
}

void CacheModel::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_ = Instruments{};
    return;
  }
  obs_.accesses = registry->counter("cache.accesses");
  obs_.reads = registry->counter("cache.reads");
  obs_.writes = registry->counter("cache.writes");
  obs_.hits = registry->counter("cache.hits");
  obs_.misses = registry->counter("cache.misses");
  obs_.evictions = registry->counter("cache.evictions");
  obs_.writebacks = registry->counter("cache.writebacks");
}

CacheModel::AccessResult CacheModel::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  OBS_INC(obs_.accesses);
  if (is_write) {
    ++stats_.writes;
    OBS_INC(obs_.writes);
  } else {
    ++stats_.reads;
    OBS_INC(obs_.reads);
  }

  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* base = &ways_[set * config_.ways];

  AccessResult result;
  result.bank = bank_of(addr);

  // Hit path.
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = ++stamp_;
      base[w].dirty = base[w].dirty || is_write;
      ++stats_.hits;
      OBS_INC(obs_.hits);
      result.hit = true;
      result.line_index = set * config_.ways + w;
      return result;
    }
  }

  // Miss: pick invalid way or LRU victim.
  ++stats_.misses;
  OBS_INC(obs_.misses);
  std::uint32_t victim = 0;
  bool found_invalid = false;
  std::uint64_t oldest = UINT64_MAX;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      victim = w;
      found_invalid = true;
      break;
    }
    if (base[w].lru < oldest) {
      oldest = base[w].lru;
      victim = w;
    }
  }
  if (!found_invalid && base[victim].valid) {
    ++stats_.evictions;
    OBS_INC(obs_.evictions);
    if (base[victim].dirty) {
      ++stats_.writebacks;
      OBS_INC(obs_.writebacks);
      result.writeback = true;
      result.victim_addr = base[victim].tag << line_shift_;
    }
  }
  base[victim].tag = tag;
  base[victim].valid = true;
  base[victim].dirty = is_write;
  base[victim].lru = ++stamp_;
  result.line_index = set * config_.ways + victim;
  return result;
}

bool CacheModel::contains(std::uint64_t addr) const {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  const Way* base = &ways_[set * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

}  // namespace sudoku::cache
