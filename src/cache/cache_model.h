// Set-associative last-level-cache model (the paper's "STTRAM cache module
// (a clone of CMP$im)", §VII-A). Tracks tags, LRU state, dirtiness, and the
// statistics the timing and energy models consume. The data payload itself
// lives in the resilience layer (SttramArray) when fault injection is
// active; this model supplies the geometry mapping from addresses to
// physical line indices (set × ways + way), which is what ties cache
// residency to RAID-Group membership.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace sudoku::cache {

struct CacheConfig {
  std::uint64_t size_bytes = 64ull << 20;  // 64 MB shared LLC (Table VI)
  std::uint32_t ways = 8;
  std::uint32_t line_bytes = 64;
  std::uint32_t banks = 16;

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / ways; }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;  // dirty evictions

  double hit_rate() const {
    return accesses ? static_cast<double>(hits) / accesses : 0.0;
  }
};

class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  // Attach a metrics registry (nullptr detaches): mirrors the CacheStats
  // counters as cache.{accesses,reads,writes,hits,misses,evictions,
  // writebacks}, updated live on every access.
  void attach_metrics(obs::MetricsRegistry* registry);

  struct AccessResult {
    bool hit = false;
    bool writeback = false;         // a dirty victim was evicted
    std::uint64_t line_index = 0;   // physical line (set*ways + way) used
    std::uint64_t victim_addr = 0;  // address of the evicted block (if any)
    std::uint32_t bank = 0;
  };

  // Write-back, write-allocate access. `addr` is a byte address.
  AccessResult access(std::uint64_t addr, bool is_write);

  // Probe without side effects.
  bool contains(std::uint64_t addr) const;

  std::uint32_t bank_of(std::uint64_t addr) const {
    return static_cast<std::uint32_t>((addr / config_.line_bytes) % config_.banks);
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // global stamp; larger = more recent
    bool valid = false;
    bool dirty = false;
  };

  struct Instruments {
    obs::Counter* accesses = nullptr;
    obs::Counter* reads = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* writebacks = nullptr;
  };

  CacheConfig config_;
  CacheStats stats_;
  Instruments obs_;
  std::vector<Way> ways_;  // sets * ways, row-major by set
  std::uint64_t stamp_ = 0;
  std::uint64_t set_mask_;
  std::uint32_t line_shift_;

  std::uint64_t set_of(std::uint64_t addr) const {
    return (addr >> line_shift_) & set_mask_;
  }
  std::uint64_t tag_of(std::uint64_t addr) const {
    return addr >> line_shift_;  // full block address as tag (simple, exact)
  }
};

}  // namespace sudoku::cache
