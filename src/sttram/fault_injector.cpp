#include "sttram/fault_injector.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

namespace sudoku {

FaultBatch FaultInjector::sample_interval(Rng& rng) const {
  const std::uint64_t total_bits = num_lines_ * bits_per_line_;
  return sample_exact(rng, rng.next_binomial(total_bits, ber_));
}

FaultBatch FaultInjector::sample_exact(Rng& rng, std::uint64_t nfaults) const {
  const std::uint64_t total_bits = num_lines_ * bits_per_line_;

  // More faults than bits means there is no set of distinct positions to
  // sample — the rejection loop below would spin forever. Reachable from a
  // mis-tuned rare-event stratum or a scenario whose rates were written for
  // a larger array, so fail loudly instead of hanging the campaign.
  if (nfaults > total_bits) {
    std::fprintf(stderr,
                 "FaultInjector::sample_exact: %" PRIu64
                 " faults requested but the array has only %" PRIu64
                 " bits (%" PRIu64 " lines x %u bits/line)\n",
                 nfaults, total_bits, num_lines_, bits_per_line_);
    std::abort();
  }

  // Draw distinct flat positions, re-drawing on collision. Rejection
  // sampling conditions the joint distribution on "all positions
  // distinct", under which every set of distinct positions is equally
  // likely — i.e. the dedup introduces no bias (each accepted draw is
  // uniform over the not-yet-drawn positions; see the uniformity test in
  // tests/test_fault_injector.cpp). The hash-set membership check makes
  // acceptance O(1) instead of the per-line linear scan it replaces, while
  // consuming exactly the same RNG draws in the same order.
  std::vector<std::uint64_t> drawn;
  drawn.reserve(nfaults);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(nfaults * 2);
  for (std::uint64_t f = 0; f < nfaults; ++f) {
    for (;;) {
      const std::uint64_t pos = rng.next_below(total_bits);
      if (!seen.insert(pos).second) continue;  // re-draw
      drawn.push_back(pos);
      break;
    }
  }

  // Group by line in draw order (position <-> (line, bit) is a bijection,
  // so global distinctness equals per-line bit distinctness).
  FaultBatch batch;
  batch.reserve(nfaults);
  for (const auto pos : drawn) {
    batch[pos / bits_per_line_].push_back(
        static_cast<std::uint32_t>(pos % bits_per_line_));
  }
  return batch;
}

void FaultInjector::apply(const FaultBatch& batch, SttramArray& array) {
  for (const auto& [line, bits] : batch) {
    for (const auto b : bits) array.flip(line, b);
  }
}

std::uint64_t FaultInjector::count(const FaultBatch& batch) {
  std::uint64_t n = 0;
  for (const auto& [line, bits] : batch) n += bits.size();
  return n;
}

}  // namespace sudoku
