#include "sttram/fault_injector.h"

#include <algorithm>

namespace sudoku {

FaultBatch FaultInjector::sample_interval(Rng& rng) const {
  FaultBatch batch;
  const std::uint64_t total_bits = num_lines_ * bits_per_line_;
  const std::uint64_t nfaults = rng.next_binomial(total_bits, ber_);
  batch.reserve(nfaults);
  for (std::uint64_t f = 0; f < nfaults; ++f) {
    for (;;) {
      const std::uint64_t pos = rng.next_below(total_bits);
      const std::uint64_t line = pos / bits_per_line_;
      const auto bit = static_cast<std::uint32_t>(pos % bits_per_line_);
      auto& v = batch[line];
      if (std::find(v.begin(), v.end(), bit) != v.end()) continue;  // re-draw
      v.push_back(bit);
      break;
    }
  }
  return batch;
}

void FaultInjector::apply(const FaultBatch& batch, SttramArray& array) {
  for (const auto& [line, bits] : batch) {
    for (const auto b : bits) array.flip(line, b);
  }
}

std::uint64_t FaultInjector::count(const FaultBatch& batch) {
  std::uint64_t n = 0;
  for (const auto& [line, bits] : batch) n += bits.size();
  return n;
}

}  // namespace sudoku
