// Flat bit-array holding the stored codewords of an STTRAM cache: N lines
// of `bits_per_line` each (553 bits for SuDoku's data+CRC+ECC layout).
// Storage is a single contiguous word vector (one million 553-bit lines
// would otherwise mean one million small heap allocations).
//
// Word accesses go through relaxed atomics: the concurrent service
// (src/service) reads lines on a seqlock fast path while a writer or the
// scrubber may be mutating the same bank, and the epoch re-check discards
// any torn copy — but the racing loads themselves must still be atomic for
// the program to be data-race-free (and for TSan to stay quiet). Relaxed
// 64-bit loads/stores compile to the same plain movs as before on every
// target we build for, so the single-threaded simulator paths keep their
// exact behaviour and cost.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"

namespace sudoku {

class SttramArray {
 public:
  SttramArray(std::uint64_t num_lines, std::uint32_t bits_per_line)
      : num_lines_(num_lines),
        bits_per_line_(bits_per_line),
        words_per_line_((bits_per_line + 63) / 64),
        words_(num_lines * words_per_line_, 0) {}

  std::uint64_t num_lines() const { return num_lines_; }
  std::uint32_t bits_per_line() const { return bits_per_line_; }

  bool test(std::uint64_t line, std::uint32_t bit) const {
    return (load_word(line * words_per_line_ + (bit >> 6)) >> (bit & 63)) & 1u;
  }
  void flip(std::uint64_t line, std::uint32_t bit) {
    const std::uint64_t i = line * words_per_line_ + (bit >> 6);
    store_word(i, load_word(i) ^ (std::uint64_t{1} << (bit & 63)));
  }

  // Copy a stored line out into a BitVec sized bits_per_line().
  void read_line(std::uint64_t line, BitVec& out) const {
    if (out.size() != bits_per_line_) out.resize(bits_per_line_);
    auto w = out.words();
    const std::uint64_t base = line * words_per_line_;
    for (std::uint32_t i = 0; i < words_per_line_; ++i) w[i] = load_word(base + i);
    mask_tail(out);
  }

  BitVec read_line(std::uint64_t line) const {
    BitVec v(bits_per_line_);
    read_line(line, v);
    return v;
  }

  void write_line(std::uint64_t line, const BitVec& in) {
    auto w = in.words();
    const std::uint64_t base = line * words_per_line_;
    for (std::uint32_t i = 0; i < words_per_line_; ++i) store_word(base + i, w[i]);
  }

  // XOR a stored line into an accumulator (used for parity computation).
  void xor_line_into(std::uint64_t line, BitVec& acc) const {
    auto w = acc.words();
    const std::uint64_t base = line * words_per_line_;
    for (std::uint32_t i = 0; i < words_per_line_; ++i) w[i] ^= load_word(base + i);
  }

  bool line_equals(std::uint64_t line, const BitVec& v) const {
    auto w = v.words();
    const std::uint64_t base = line * words_per_line_;
    for (std::uint32_t i = 0; i < words_per_line_; ++i)
      if (load_word(base + i) != w[i]) return false;
    return true;
  }

  std::uint64_t total_bits() const { return num_lines_ * bits_per_line_; }

 private:
  std::uint64_t num_lines_;
  std::uint32_t bits_per_line_;
  std::uint32_t words_per_line_;
  std::vector<std::uint64_t> words_;

  std::uint64_t load_word(std::uint64_t i) const {
    return __atomic_load_n(&words_[i], __ATOMIC_RELAXED);
  }
  void store_word(std::uint64_t i, std::uint64_t v) {
    __atomic_store_n(&words_[i], v, __ATOMIC_RELAXED);
  }
  void mask_tail(BitVec& v) const {
    const std::uint32_t rem = bits_per_line_ & 63;
    if (rem != 0) {
      auto w = v.words();
      w[words_per_line_ - 1] &= (std::uint64_t{1} << rem) - 1;
    }
  }
};

}  // namespace sudoku
