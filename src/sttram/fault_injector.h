// Monte-Carlo fault injection (paper §VII-A "Reliability Evaluations",
// FaultSim-style [50][52]). Per scrub interval, the number of flipped bits
// across the whole array is Binomial(total_bits, BER); positions are
// uniform. The injector returns the faults grouped by line so that the
// scrub engine can process only touched lines — the key optimisation that
// makes simulating a 64 MB cache (≈5.7e8 bits, ~3000 faults/20 ms at
// BER 5.3e-6) fast.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sttram/array.h"

namespace sudoku {

// Faulty bit positions per line for one interval. Positions within a line
// are de-duplicated (two thermal flips of the same bit cancel; the sampler
// re-draws instead, an event with negligible probability at our rates).
// Dedup-by-redraw is unbiased: conditioning i.i.d. uniform draws on "all
// distinct" makes every distinct position set equally likely, so the k-th
// accepted draw is uniform over the remaining positions. Both properties
// (uniformity, and the exact per-seed output incl. RNG consumption) are
// pinned by regression tests in tests/test_fault_injector.cpp.
using FaultBatch = std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>;

class FaultInjector {
 public:
  FaultInjector(std::uint64_t num_lines, std::uint32_t bits_per_line, double ber_per_interval)
      : num_lines_(num_lines), bits_per_line_(bits_per_line), ber_(ber_per_interval) {}

  double ber() const { return ber_; }
  void set_ber(double ber) { ber_ = ber; }

  // Sample one scrub interval's worth of faults.
  FaultBatch sample_interval(Rng& rng) const;

  // Sample exactly `nfaults` distinct uniform positions — the conditional
  // distribution of an interval's faults given its Binomial count. Used by
  // the rare-event estimator (exp/rare_event), which draws counts from a
  // tilted distribution and reweights: conditioned placement is what makes
  // the count-stratified estimator exactly unbiased. Consumes the same RNG
  // draws as the placement phase of sample_interval. Aborts (loudly) when
  // `nfaults` exceeds the array's bit capacity — there is no valid sample
  // and the rejection loop would never terminate.
  FaultBatch sample_exact(Rng& rng, std::uint64_t nfaults) const;

  // Apply a batch to a stored array (flip the bits).
  static void apply(const FaultBatch& batch, SttramArray& array);

  // Total faults in a batch.
  static std::uint64_t count(const FaultBatch& batch);

 private:
  std::uint64_t num_lines_;
  std::uint32_t bits_per_line_;
  double ber_;
};

}  // namespace sudoku
