// STTRAM thermal-stability device model (paper §II-B, Eq. 1).
//
// A cell with thermal stability factor Delta flips due to thermal noise as
// a Poisson process with rate lambda = f0 · e^(-Delta) (f0 = 1 GHz), so the
// probability it flips within a window t is p = 1 − e^(−lambda·t).
// Process variation makes Delta ~ Normal(mu, sigma_frac·mu); the effective
// bit-error rate is the expectation of p over that distribution, which we
// evaluate with Gauss–Hermite quadrature (the integrand is dominated by the
// low-Delta tail, e.g. z ≈ −3.5 sigma at mu = 35).
#pragma once

#include <cstdint>

namespace sudoku {

struct ThermalParams {
  double delta_mean = 35.0;   // 22 nm node default (paper)
  double sigma_frac = 0.10;   // normalized std-dev of Delta
  double f0_hz = 1e9;         // thermal attempt frequency
};

// Flip probability of a single cell with a *fixed* Delta over t seconds.
double cell_flip_prob_fixed(double delta, double t_seconds, double f0_hz = 1e9);

// Effective BER over t seconds with Delta ~ N(mean, sigma_frac·mean),
// integrated by Gauss–Hermite quadrature (`quad_order` nodes).
double effective_ber(const ThermalParams& p, double t_seconds, int quad_order = 64);

// Mean flip rate E[lambda] across the Delta distribution (events/s/cell).
// 1 / this is the population-average time for a cell to fail — the "about
// one hour" figure of §I at Delta = 35, sigma = 10%.
double mean_flip_rate(const ThermalParams& p, int quad_order = 64);

// MTTF of a cell at exactly the mean Delta (the "18 days" figure of §I).
double mttf_cell_at_mean_delta(const ThermalParams& p);

}  // namespace sudoku
