#include "sttram/device_model.h"

#include <cmath>

#include "common/prob.h"

namespace sudoku {

double cell_flip_prob_fixed(double delta, double t_seconds, double f0_hz) {
  const double lambda = f0_hz * std::exp(-delta);
  return -std::expm1(-lambda * t_seconds);
}

double effective_ber(const ThermalParams& p, double t_seconds, int quad_order) {
  const GaussHermite gh(quad_order);
  const double sigma = p.sigma_frac * p.delta_mean;
  double acc = 0.0;
  for (std::size_t i = 0; i < gh.nodes.size(); ++i) {
    const double delta = p.delta_mean + sigma * gh.nodes[i];
    acc += gh.weights[i] * cell_flip_prob_fixed(delta, t_seconds, p.f0_hz);
  }
  return acc;
}

double mean_flip_rate(const ThermalParams& p, int quad_order) {
  const GaussHermite gh(quad_order);
  const double sigma = p.sigma_frac * p.delta_mean;
  double acc = 0.0;
  for (std::size_t i = 0; i < gh.nodes.size(); ++i) {
    const double delta = p.delta_mean + sigma * gh.nodes[i];
    acc += gh.weights[i] * p.f0_hz * std::exp(-delta);
  }
  return acc;
}

double mttf_cell_at_mean_delta(const ThermalParams& p) {
  return 1.0 / (p.f0_hz * std::exp(-p.delta_mean));
}

}  // namespace sudoku
