// Scoped wall-clock timer recording elapsed nanoseconds into a histogram
// on destruction. Wall times are inherently nondeterministic, so timer
// observations must never feed a registry that is part of a bit-identical
// merge contract (the Monte-Carlo paths record event counts only); use
// them for single-run instruments like sweep latency or artifact I/O.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace sudoku::obs {

class ScopedTimer {
 public:
  // Null histogram = disabled (records nothing) so call sites can pass an
  // unconditionally-constructed timer with a maybe-null instrument.
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist),
        start_(hist ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sudoku::obs
