// Zero-cost-when-disabled instrumentation macros. The default build
// defines SUDOKU_OBS_ENABLED=1; configuring with -DSUDOKU_OBS=OFF defines
// it to 0 and every macro below compiles to nothing — no branch, no null
// check, no dead registry writes — which is how the perf-sensitive builds
// prove the instrumentation costs nothing when absent.
//
// All macros take a *pointer* instrument (Counter*/Gauge*/Histogram*) that
// may be null, so components can be instrumented unconditionally and only
// pay when a registry is actually attached.
#pragma once

#include "obs/metrics.h"
#include "obs/timer.h"

#ifndef SUDOKU_OBS_ENABLED
#define SUDOKU_OBS_ENABLED 1
#endif

#if SUDOKU_OBS_ENABLED

#define OBS_INC(counter_ptr)                        \
  do {                                              \
    if ((counter_ptr) != nullptr) (counter_ptr)->inc(); \
  } while (0)

#define OBS_ADD(counter_ptr, n)                                  \
  do {                                                           \
    if ((counter_ptr) != nullptr) (counter_ptr)->inc(static_cast<std::uint64_t>(n)); \
  } while (0)

#define OBS_SET(gauge_ptr, v)                                   \
  do {                                                          \
    if ((gauge_ptr) != nullptr) (gauge_ptr)->set(static_cast<double>(v)); \
  } while (0)

#define OBS_OBSERVE(hist_ptr, v)                                    \
  do {                                                              \
    if ((hist_ptr) != nullptr) (hist_ptr)->observe(static_cast<double>(v)); \
  } while (0)

#define OBS_DETAIL_CONCAT2(a, b) a##b
#define OBS_DETAIL_CONCAT(a, b) OBS_DETAIL_CONCAT2(a, b)

// Times the enclosing scope into `hist_ptr` (may be null).
#define OBS_SCOPED_TIMER(hist_ptr) \
  ::sudoku::obs::ScopedTimer OBS_DETAIL_CONCAT(obs_scoped_timer_, __LINE__)(hist_ptr)

#else  // !SUDOKU_OBS_ENABLED

#define OBS_INC(counter_ptr) ((void)0)
#define OBS_ADD(counter_ptr, n) ((void)0)
#define OBS_SET(gauge_ptr, v) ((void)0)
#define OBS_OBSERVE(hist_ptr, v) ((void)0)
#define OBS_SCOPED_TIMER(hist_ptr) ((void)0)

#endif  // SUDOKU_OBS_ENABLED
