#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace sudoku::obs {

namespace {

[[noreturn]] void die(const char* what, const std::string& name) {
  std::fprintf(stderr, "obs::MetricsRegistry: %s for metric '%s'\n", what,
               name.c_str());
  std::abort();
}

}  // namespace

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  const bool strictly_ascending =
      std::adjacent_find(edges_.begin(), edges_.end(),
                         [](double a, double b) { return a >= b; }) == edges_.end();
  if (edges_.empty() || !strictly_ascending) {
    std::fprintf(stderr,
                 "obs::Histogram: edges must be non-empty and strictly ascending\n");
    std::abort();
  }
  buckets_.assign(edges_.size() + 1, 0);
}

void Histogram::observe(double v) {
  // First edge >= ... : bucket i holds edges[i-1] <= v < edges[i], so the
  // index is the count of edges <= v.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - edges_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the target observation (1-based, fractional): the value below
  // which a q-fraction of the count lies.
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (in_bucket == 0.0 || cum + in_bucket < target) {
      cum += in_bucket;
      continue;
    }
    // The crossing bucket. Its boundaries: the open-ended buckets borrow
    // the observed extremes; interior buckets use their edges.
    const double lo = i == 0 ? min_ : edges_[i - 1];
    const double hi = i == buckets_.size() - 1 ? max_ : edges_[i];
    const double frac = (target - cum) / in_bucket;
    const double v = lo + (hi - lo) * frac;
    // Clamp: min/max can sit inside the crossing bucket's edge range.
    return std::max(min_, std::min(max_, v));
  }
  return max_;
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.p50 = percentile(0.5);
  s.p99 = percentile(0.99);
  s.p999 = percentile(0.999);
  s.max = max_;
  return s;
}

Histogram& Histogram::operator+=(const Histogram& o) {
  if (edges_ != o.edges_) {
    std::fprintf(stderr,
                 "obs::Histogram: merging histograms with different bucket "
                 "edges (%zu vs %zu edges)\n",
                 edges_.size(), o.edges_.size());
    std::abort();
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
  if (o.count_ > 0) {
    min_ = count_ ? std::min(min_, o.min_) : o.min_;
    max_ = count_ ? std::max(max_, o.max_) : o.max_;
  }
  sum_ += o.sum_;
  count_ += o.count_;
  return *this;
}

std::optional<Histogram> Histogram::restore(std::vector<double> edges,
                                            std::vector<std::uint64_t> buckets,
                                            std::uint64_t count, double sum,
                                            double min, double max) {
  const bool strictly_ascending =
      std::adjacent_find(edges.begin(), edges.end(),
                         [](double a, double b) { return a >= b; }) == edges.end();
  if (edges.empty() || !strictly_ascending) return std::nullopt;
  if (buckets.size() != edges.size() + 1) return std::nullopt;
  Histogram h(std::move(edges));
  h.buckets_ = std::move(buckets);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  if (gauges_.count(name) || histograms_.count(name)) die("kind collision", name);
  return &counters_[name];
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  if (counters_.count(name) || histograms_.count(name)) die("kind collision", name);
  return &gauges_[name];
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> edges) {
  if (counters_.count(name) || gauges_.count(name)) die("kind collision", name);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(edges))).first;
  } else if (it->second.edges() != edges) {
    die("re-registration with different bucket edges", name);
  }
  return &it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

MetricsRegistry& MetricsRegistry::operator+=(const MetricsRegistry& o) {
  for (const auto& [name, c] : o.counters_) {
    if (gauges_.count(name) || histograms_.count(name)) die("kind collision", name);
    counters_[name] += c;
  }
  for (const auto& [name, g] : o.gauges_) {
    if (counters_.count(name) || histograms_.count(name)) die("kind collision", name);
    gauges_[name] += g;
  }
  for (const auto& [name, h] : o.histograms_) {
    if (counters_.count(name) || gauges_.count(name)) die("kind collision", name);
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second += h;
    }
  }
  return *this;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, MetricSample::Kind::kCounter, &c, nullptr, nullptr});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, MetricSample::Kind::kGauge, nullptr, &g, nullptr});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back({name, MetricSample::Kind::kHistogram, nullptr, nullptr, &h});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

}  // namespace sudoku::obs
