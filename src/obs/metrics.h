// Unified observability layer: a process-local metrics registry with named
// counters, gauges and fixed-bucket histograms. Every experiment layer
// (controller, scrubber, cache model, Monte-Carlo runners, timing sim)
// records into a registry, and bench artifacts embed a snapshot, so each
// JSON result explains *why* its numbers came out the way they did (which
// SDR case fired, how many Hash-2 retries, the fault-burst distribution).
//
// Sharding contract (matches src/exp): a registry is single-threaded by
// design. Parallel work gives each shard its own registry (usually carried
// inside the shard's result struct) and reduces them with `operator+=` in
// shard-index order. All merge operations are associative over that fixed
// order and use only integer arithmetic or order-fixed double sums, so the
// merged registry is bit-identical for any thread count — the same
// reproducibility contract the experiment engine gives its results.
//
// Instrumentation sites use the macros in obs/macros.h, which compile to
// nothing when the build disables observability (-DSUDOKU_OBS=OFF).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sudoku::obs {

// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

  Counter& operator+=(const Counter& o) {
    value_ += o.value_;
    return *this;
  }

 private:
  std::uint64_t value_ = 0;
};

// Last-written value plus a sample count. Merging keeps the right-hand
// side's value when it has been set — with the engine's shard-index-order
// merge this means "the last shard that set it wins", deterministically.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    ++samples_;
  }
  double value() const { return value_; }
  std::uint64_t samples() const { return samples_; }

  // Rebuild a gauge from a persisted snapshot (checkpoint resume). Exact:
  // the merge semantics above depend only on (value, samples).
  void restore(double value, std::uint64_t samples) {
    value_ = value;
    samples_ = samples;
  }

  Gauge& operator+=(const Gauge& o) {
    if (o.samples_ > 0) value_ = o.value_;
    samples_ += o.samples_;
    return *this;
  }

 private:
  double value_ = 0.0;
  std::uint64_t samples_ = 0;
};

// Fixed-bucket histogram. `edges` are the ascending bucket boundaries;
// bucket 0 counts v < edges[0] (underflow), bucket i counts
// edges[i-1] <= v < edges[i], and the final bucket counts v >= edges.back()
// (overflow) — so there are edges.size() + 1 buckets and every observation
// lands somewhere. Sum/min/max are tracked for the snapshot.
class Histogram;

// Rendered quantile digest of one histogram (see Histogram::summary()):
// what a latency metric needs to print p50/p99/p999 without any
// post-processing of the bucket vector.
struct HistogramSummary {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> edges);

  void observe(double v);

  const std::vector<double>& edges() const { return edges_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  std::uint64_t underflow() const { return buckets_.front(); }
  std::uint64_t overflow() const { return buckets_.back(); }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  // Undefined (0) when count() == 0; snapshots omit them in that case.
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  // Quantile estimate for q in [0, 1] by linear interpolation inside the
  // bucket where the cumulative count crosses q·count. Bucket interiors
  // are unknown, so the estimate is exact only at bucket edges; the
  // interior error is bounded by the bucket width. The open-ended buckets
  // use the tracked extremes as their missing boundary (underflow spans
  // [min, edges[0]), overflow [edges.back(), max]), and results are
  // clamped to [min, max] so a quantile can never leave the observed
  // range. count() == 0 returns 0.
  double percentile(double q) const;

  // count/p50/p99/p999/max in one call — the digest a latency metric
  // prints. Zeroes when empty.
  HistogramSummary summary() const;

  // Merge requires identical edges (same metric definition); mismatching
  // shapes are a programming error and abort loudly.
  Histogram& operator+=(const Histogram& o);

  // Rebuild a histogram from a persisted snapshot (checkpoint resume).
  // Unlike the constructor this *validates* instead of aborting — a
  // corrupt checkpoint must degrade to "recompute", not kill the process —
  // returning std::nullopt on bad edges or a bucket-count mismatch.
  // min/max are meaningful only when count > 0 (snapshots omit them
  // otherwise; pass 0).
  static std::optional<Histogram> restore(std::vector<double> edges,
                                          std::vector<std::uint64_t> buckets,
                                          std::uint64_t count, double sum,
                                          double min, double max);

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> buckets_;  // edges_.size() + 1
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// One rendered metric, for snapshot consumers (JSON emission lives in
// exp/metrics_io.h so obs stays a leaf library).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

// Name-keyed registry. Handles returned by counter()/gauge()/histogram()
// are stable for the registry's lifetime (node-based storage) and survive
// moves of the registry itself, so hot paths can cache them once. Names
// should be dotted lowercase paths ("sudoku.read.clean"); see
// docs/observability.md for the naming scheme.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = default;
  MetricsRegistry& operator=(const MetricsRegistry&) = default;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  // Find-or-create. Re-registering a histogram name with different edges
  // aborts (one definition per name); counters/gauges simply return the
  // existing instance.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, std::vector<double> edges);

  // Lookup without creation (nullptr when absent). Mostly for tests and
  // artifact assertions.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Deterministic shard reduction: union by name, `+=` on collisions.
  // A kind collision (counter vs gauge under one name) aborts.
  MetricsRegistry& operator+=(const MetricsRegistry& o);

  // All metrics sorted by name (std::map order), counters/gauges/
  // histograms interleaved. Pointers are into this registry.
  std::vector<MetricSample> snapshot() const;

 private:
  // std::map: stable node addresses + sorted deterministic iteration.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sudoku::obs
