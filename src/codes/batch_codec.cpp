#include "codes/batch_codec.h"

#include <cassert>
#include <cstring>

namespace sudoku {

void transpose64(std::uint64_t m[64]) {
  // Masked-shift block transpose (Hacker's Delight 7-3, adapted to the
  // LSB-first convention used by BitVec words): at step j, swap bit b of
  // word r with bit b+j of word r+j for every (r, b) whose j-bit is zero.
  // log2(64) = 6 passes of 32 swap groups each.
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

void BitPlanes::reset(std::size_t nbits, std::size_t count) {
  assert(nbits > 0);
  assert(count >= 1 && count <= kMaxLines);
  nbits_ = nbits;
  count_ = count;
  words_per_line_ = (nbits + 63) / 64;
  finalized_ = false;
  const std::size_t staged = kMaxLines * words_per_line_;
  if (staging_.size() < staged) staging_.resize(staged);
  std::memset(staging_.data(), 0, staged * sizeof(std::uint64_t));
  const std::size_t plane_words = words_per_line_ * 64;
  if (planes_.size() < plane_words) planes_.resize(plane_words);
}

void BitPlanes::load_line(std::size_t slot, std::span<const std::uint64_t> words) {
  assert(slot < count_);
  assert(!finalized_);
  const std::size_t n = std::min(words.size(), words_per_line_);
  std::memcpy(staging_.data() + slot * words_per_line_, words.data(),
              n * sizeof(std::uint64_t));
}

void BitPlanes::finalize() {
  assert(!finalized_);
  // Gather each 64-bit column block across the 64 staged lines and
  // transpose it in place: block w's output word b is the plane for
  // codeword bit 64*w + b.
  std::uint64_t block[64];
  for (std::size_t w = 0; w < words_per_line_; ++w) {
    const std::uint64_t* col = staging_.data() + w;
    for (std::size_t line = 0; line < kMaxLines; ++line) {
      block[line] = col[line * words_per_line_];
    }
    transpose64(block);
    std::memcpy(planes_.data() + w * 64, block, sizeof(block));
  }
  finalized_ = true;
}

}  // namespace sudoku
