// GF(2^m) arithmetic with log/antilog tables, m <= 16. Substrate for the
// BCH ECC-t codec (the paper's ECC-2..ECC-6 baselines and Hi-ECC) and for
// the RAID-6 Q parity (GF(2^8) Reed-Solomon style coefficients).
#pragma once

#include <cstdint>
#include <vector>

namespace sudoku {

class GF2m {
 public:
  // `prim_poly` is the full primitive polynomial including the x^m term;
  // pass 0 to use a built-in primitive polynomial for that m.
  explicit GF2m(int m, std::uint32_t prim_poly = 0);

  int m() const { return m_; }
  std::uint32_t size() const { return q_; }        // 2^m
  std::uint32_t order() const { return q_ - 1; }   // multiplicative order

  std::uint32_t add(std::uint32_t a, std::uint32_t b) const { return a ^ b; }

  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const {
    if (a == 0 || b == 0) return 0;
    return alog_[(log_[a] + log_[b]) % order()];
  }

  std::uint32_t div(std::uint32_t a, std::uint32_t b) const {
    // b must be nonzero.
    if (a == 0) return 0;
    return alog_[(log_[a] + order() - log_[b]) % order()];
  }

  std::uint32_t inv(std::uint32_t a) const {
    return alog_[(order() - log_[a]) % order()];
  }

  std::uint32_t pow(std::uint32_t a, std::uint64_t e) const {
    if (a == 0) return e == 0 ? 1 : 0;
    return alog_[(static_cast<std::uint64_t>(log_[a]) * (e % order())) % order()];
  }

  // alpha^e for the primitive element alpha.
  std::uint32_t alpha_pow(std::uint64_t e) const { return alog_[e % order()]; }

  std::uint32_t log(std::uint32_t a) const { return log_[a]; }  // a != 0

 private:
  int m_;
  std::uint32_t q_;
  std::vector<std::uint32_t> log_;
  std::vector<std::uint32_t> alog_;
};

}  // namespace sudoku
