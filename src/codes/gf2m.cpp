#include "codes/gf2m.h"

#include <cassert>

namespace sudoku {

namespace {
// Standard primitive polynomials (full form including x^m term).
std::uint32_t default_prim_poly(int m) {
  switch (m) {
    case 3:  return 0b1011;               // x^3 + x + 1
    case 4:  return 0b10011;              // x^4 + x + 1
    case 5:  return 0b100101;             // x^5 + x^2 + 1
    case 6:  return 0b1000011;            // x^6 + x + 1
    case 7:  return 0b10001001;           // x^7 + x^3 + 1
    case 8:  return 0b100011101;          // x^8 + x^4 + x^3 + x^2 + 1
    case 9:  return 0b1000010001;         // x^9 + x^4 + 1
    case 10: return 0b10000001001;        // x^10 + x^3 + 1
    case 11: return 0b100000000101;       // x^11 + x^2 + 1
    case 12: return 0b1000001010011;      // x^12 + x^6 + x^4 + x + 1
    case 13: return 0b10000000011011;     // x^13 + x^4 + x^3 + x + 1
    case 14: return 0b100010001000011;    // x^14 + x^10 + x^6 + x + 1
    case 15: return 0b1000000000000011;   // x^15 + x + 1
    case 16: return 0b10001000000001011;  // x^16 + x^12 + x^3 + x + 1
    default: return 0;
  }
}
}  // namespace

GF2m::GF2m(int m, std::uint32_t prim_poly) : m_(m), q_(1u << m) {
  assert(m >= 3 && m <= 16);
  if (prim_poly == 0) prim_poly = default_prim_poly(m);
  assert(prim_poly != 0);

  log_.assign(q_, 0);
  alog_.assign(q_, 0);
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < order(); ++i) {
    alog_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & q_) x ^= prim_poly;
  }
  // Sanity: alpha must have full order (prim_poly primitive).
  assert(x == 1);
  alog_[order()] = 1;  // convenience wraparound
}

}  // namespace sudoku
