// Binary BCH ECC-t encoder/decoder. Implements the multi-bit ECC the paper
// uses as its baseline: ECC-t over a 512-bit dataword costs ~10·t check
// bits (m = 10, n = 1023 shortened), e.g. the 60-bit ECC-6 of §II-D, and
// ECC-6 over 1 KB (m = 14) for the Hi-ECC comparison.
//
// Decoder: power-sum syndromes, Berlekamp–Massey error locator,
// Chien search. More than t faults either raise a detected decode failure
// or (rarely) miscorrect — both behaviours are faithfully exposed, since
// the reliability analysis depends on them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "codes/gf2m.h"

namespace sudoku {

class Bch {
 public:
  // Code over GF(2^m) correcting up to t errors, shortened to carry
  // `message_bits` of payload. Requires message_bits + parity <= 2^m - 1.
  Bch(int m, int t, std::size_t message_bits);

  int t() const { return t_; }
  std::size_t message_bits() const { return k_; }
  std::size_t parity_bits() const { return r_; }
  std::size_t codeword_bits() const { return n_; }

  // Codeword layout: [message | parity]. Fills parity in place.
  void encode(BitVec& codeword) const;

  enum class DecodeStatus {
    kClean,          // no errors detected
    kCorrected,      // <= t errors located and flipped
    kUncorrectable,  // decoder detected an inconsistent pattern
  };

  struct DecodeResult {
    DecodeStatus status = DecodeStatus::kClean;
    int corrected = 0;  // number of bits flipped
  };

  DecodeResult decode(BitVec& codeword) const;

 private:
  int m_;
  int t_;
  std::size_t k_;  // message bits
  std::size_t r_;  // parity bits (deg g)
  std::size_t n_;  // k + r
  GF2m field_;
  // Generator polynomial coefficients, index = degree (gen_[r_] == 1).
  // Byte-per-coefficient keeps the LFSR division simple; degree can exceed
  // 63 (e.g. 84 for Hi-ECC's ECC-6 over 1 KB).
  std::vector<std::uint8_t> gen_;

  std::vector<std::uint32_t> syndromes(const BitVec& codeword) const;
};

}  // namespace sudoku
