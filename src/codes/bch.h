// Binary BCH ECC-t encoder/decoder. Implements the multi-bit ECC the paper
// uses as its baseline: ECC-t over a 512-bit dataword costs ~10·t check
// bits (m = 10, n = 1023 shortened), e.g. the 60-bit ECC-6 of §II-D, and
// ECC-6 over 1 KB (m = 14) for the Hi-ECC comparison.
//
// Decoder: power-sum syndromes, Berlekamp–Massey error locator,
// Chien search. More than t faults either raise a detected decode failure
// or (rarely) miscorrect — both behaviours are faithfully exposed, since
// the reliability analysis depends on them.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "codes/batch_codec.h"
#include "common/bitvec.h"
#include "codes/gf2m.h"

namespace sudoku {

class Bch {
 public:
  // Code over GF(2^m) correcting up to t errors, shortened to carry
  // `message_bits` of payload. Requires message_bits + parity <= 2^m - 1.
  Bch(int m, int t, std::size_t message_bits);

  int t() const { return t_; }
  std::size_t message_bits() const { return k_; }
  std::size_t parity_bits() const { return r_; }
  std::size_t codeword_bits() const { return n_; }

  // Codeword layout: [message | parity]. Fills parity in place.
  void encode(BitVec& codeword) const;

  enum class DecodeStatus {
    kClean,          // no errors detected
    kCorrected,      // <= t errors located and flipped
    kUncorrectable,  // decoder detected an inconsistent pattern
  };

  struct DecodeResult {
    DecodeStatus status = DecodeStatus::kClean;
    int corrected = 0;  // number of bits flipped
  };

  DecodeResult decode(BitVec& codeword) const;

  // decode() with the power-sum syndromes already in hand (e.g. from
  // batch_syndromes). Given the same syndrome values, the correction and
  // status are identical to decode() — the batched scrub paths rely on
  // that to stay bit-identical to the per-line code.
  DecodeResult decode_with_syndromes(BitVec& codeword,
                                     std::span<const std::uint32_t> s) const;

  // Power-sum syndromes S_1..S_2t of a (possibly corrupted) codeword.
  // Word-at-a-time Horner: per backing word, one multiply by alpha^(64·j)
  // plus an XOR of a precomputed weight per set bit, instead of one field
  // multiply per codeword bit. Public so the differential kernel tests and
  // the throughput bench can compare it against the bit-serial oracle.
  std::vector<std::uint32_t> syndromes(const BitVec& codeword) const;

  // Bit-serial oracle (one field multiply per bit per syndrome); identical
  // values to syndromes().
  std::vector<std::uint32_t> syndromes_reference(const BitVec& codeword) const;

  // True iff every syndrome is zero. Allocation-free with per-syndrome
  // early exit — the scrub fast path for clean lines, which no longer
  // copies the codeword through a trial decode.
  bool syndromes_zero(const BitVec& codeword) const;

  // --- bit-sliced batch kernels (the BatchCodec engine, docs/perf.md) ---
  // All of a transposed batch's syndromes at once: `out` receives
  // planes.count() rows of 2t values, row L = the syndromes of the
  // codeword staged in slot L, identical to syndromes() on that codeword.
  // planes.nbits() must equal codeword_bits().
  void batch_syndromes(const BitPlanes& planes, std::uint32_t* out) const;

  // Bit L of the result is set iff slot L's syndromes are all zero — the
  // batched clean check (one word XOR per accumulator touch for all 64
  // lines together, no per-line extraction).
  std::uint64_t batch_syndromes_zero(const BitPlanes& planes) const;

 private:
  int m_;
  int t_;
  std::size_t k_;  // message bits
  std::size_t r_;  // parity bits (deg g)
  std::size_t n_;  // k + r
  GF2m field_;
  // Generator polynomial coefficients, index = degree (gen_[r_] == 1).
  // Byte-per-coefficient keeps the LFSR division simple; degree can exceed
  // 63 (e.g. 84 for Hi-ECC's ECC-6 over 1 KB).
  std::vector<std::uint8_t> gen_;

  // Word-level syndrome tables, built once per code. For syndrome j
  // (1-based), row j-1 of syn_weights_ holds alpha^(j·(63-k)) for word-bit
  // position k, syn_pow64_ holds alpha^(64·j) (the per-word Horner
  // multiplier), and syn_powtail_ holds alpha^(tail_bits·j) for the final
  // partial word. Tail weights reuse the same row at offset 64-tail_bits.
  std::size_t words_per_cw_ = 0;
  std::size_t tail_bits_ = 0;  // n_ mod 64 (0 = codeword ends word-aligned)
  std::vector<std::uint32_t> syn_weights_;  // 2t rows of 64
  std::vector<std::uint32_t> syn_pow64_;
  std::vector<std::uint32_t> syn_powtail_;

  // Horner step over one word chunk of `width` bits for syndrome row j0.
  std::uint32_t syndrome_word_step(std::uint32_t acc, std::uint64_t w, int j0,
                                   std::uint32_t pow, unsigned weight_offset) const {
    acc = field_.mul(acc, pow);
    const std::uint32_t* weights = &syn_weights_[static_cast<std::size_t>(j0) * 64];
    while (w != 0) {
      acc ^= weights[weight_offset + static_cast<unsigned>(std::countr_zero(w))];
      w &= w - 1;
    }
    return acc;
  }

  std::uint32_t syndrome_one(const BitVec& codeword, int j0) const;

  // BM + Chien shared by decode() and decode_with_syndromes().
  DecodeResult locate_and_correct(BitVec& codeword,
                                  std::span<const std::uint32_t> s) const;

  // Bit-slice program, built lazily on first batch call (the Hi-ECC
  // geometry's program is ~0.7 MB — per-line users never pay for it).
  // For codeword position i, entries [off[i], off[i+1]) name the
  // accumulator words (odd syndrome j = 2o+1, field bit b -> o*m + b)
  // that plane i is XORed into: exactly the set bits of alpha^(j*(n-1-i))
  // for each odd j. Even syndromes are exact field squarings (S_2j =
  // S_j^2 in a binary BCH code) applied per line at extraction — halving
  // the program the accumulation streams through. Weights are computed
  // directly from the field's antilog table so the batch path shares no
  // derived tables with the word-Horner kernel (independent
  // implementations for the differential tests). Heap-held so the
  // once_flag doesn't cost Bch its move constructor.
  struct SliceProgram {
    std::once_flag once;
    std::vector<std::uint32_t> off;  // n_ + 1 offsets
    std::vector<std::uint16_t> idx;
  };
  void build_slice_program() const;
  std::unique_ptr<SliceProgram> slice_ = std::make_unique<SliceProgram>();

  // Run the slice program over a finalized batch: acc[j0*m + b] bit L =
  // bit b of slot L's syndrome S_{j0+1}.
  void accumulate_planes(const BitPlanes& planes, std::uint64_t* acc) const;
};

}  // namespace sudoku
