// Single-error-correcting Hamming code (ECC-1, paper §I/§III). For SuDoku's
// line layout the message is 543 bits (512 data + 31 CRC) and the code adds
// 10 check bits — exactly the "10 bits per line" the paper budgets for
// ECC-1 — giving a 553-bit stored codeword.
//
// Classic positional construction: codeword positions 1..n, check bits at
// power-of-two positions, syndrome = XOR of the positions of all set bits.
// A zero syndrome means "consistent"; a syndrome that names a valid
// position is corrected by flipping that bit (which miscorrects when more
// than one bit is faulty — the behaviour SuDoku's CRC re-check is designed
// to catch); a syndrome beyond the codeword length is reported as
// uncorrectable.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/batch_codec.h"
#include "common/bitvec.h"

namespace sudoku {

class Hamming {
 public:
  // `message_bits` is the number of protected bits (data + CRC).
  explicit Hamming(std::size_t message_bits);

  std::size_t message_bits() const { return k_; }
  std::size_t check_bits() const { return r_; }
  std::size_t codeword_bits() const { return n_; }

  // Compute check bits for a message laid out in codeword[0..k). The
  // codeword layout is [message | check bits]; this fills the check bits
  // in place. `codeword` must be codeword_bits() long.
  void encode(BitVec& codeword) const;

  // Syndrome of a (possibly corrupted) codeword. 0 = consistent.
  // Word-parallel: one AND + popcount-parity per check bit per backing
  // word, using the per-word parity masks precomputed at construction.
  std::uint32_t syndrome(const BitVec& codeword) const;

  // Bit-serial oracle (XOR of the positions of all set bits, walking set
  // bits one at a time). Identical value to syndrome(); kept as the
  // reference for the differential kernel tests and the throughput bench.
  std::uint32_t syndrome_reference(const BitVec& codeword) const;

  enum class DecodeStatus {
    kClean,          // syndrome 0, nothing done
    kCorrected,      // one bit flipped (correct iff exactly one fault)
    kUncorrectable,  // syndrome names no valid position
  };

  // Attempt single-error correction in place.
  DecodeStatus decode(BitVec& codeword) const;

  // --- bit-sliced batch kernels (the BatchCodec engine, docs/perf.md) ---
  // Syndromes of a whole transposed batch at once: `out` receives
  // planes.count() entries, entry L identical to syndrome() of the
  // codeword staged in slot L. planes.nbits() must be codeword_bits().
  void batch_syndromes(const BitPlanes& planes, std::uint32_t* out) const;

  // Bit L of the result is set iff slot L's syndrome is zero — the
  // batched clean check.
  std::uint64_t batch_syndromes_zero(const BitPlanes& planes) const;

 private:
  std::size_t k_;  // message bits
  std::size_t r_;  // check bits
  std::size_t n_;  // k + r

  // index (0-based, message-first layout) -> Hamming position (1-based)
  std::vector<std::uint32_t> index_to_pos_;
  // Hamming position -> index + 1 (0 = invalid position)
  std::vector<std::uint32_t> pos_to_index_plus1_;
  // Per-check-bit parity masks over the codeword's backing words: row j
  // (words_per_cw_ words starting at j*words_per_cw_) selects the indices
  // whose Hamming position has bit j set. Syndrome bit j is the parity of
  // popcount(codeword & row_j).
  std::size_t words_per_cw_ = 0;
  std::vector<std::uint64_t> check_masks_;

  // Bit-slice program for the batch kernels: for codeword index i,
  // entries [slice_off_[i], slice_off_[i+1]) name the syndrome bits of
  // index_to_pos_[i] — XORing plane i into those accumulator words
  // computes syndrome bit j for all 64 staged lines at once. Built in the
  // constructor (a few KB).
  std::vector<std::uint32_t> slice_off_;
  std::vector<std::uint16_t> slice_idx_;

  // Run the program; acc must hold check_bits() words (acc[j] bit L =
  // syndrome bit j of slot L).
  void accumulate_planes(const BitPlanes& planes, std::uint64_t* acc) const;
};

}  // namespace sudoku
