// PCLMUL CRC-31 folding kernel. Compiled only on x86-64 builds with
// SUDOKU_ENABLE_PCLMUL (the function carries its own target attribute, so
// the rest of the library still builds for the baseline ISA and the
// kernel is gated at runtime by clmul_supported()).
//
// Math (docs/perf.md "CLMUL CRC-31"): BitVec stores the first-transmitted
// message bit at a word's LSB, i.e. each 64-bit word is the *reflected*
// image of a degree-63 polynomial chunk. For reflected operands the
// carry-less multiply obeys
//
//   clmul(refl(A), refl(B)) = refl128(A · B · x)
//
// (the product of two 64-bit reflections occupies bits 0..126 of the
// 128-bit result, i.e. it lands shifted up by one — the extra x). So
// multiplying a lane by x^e modulo g, up to congruence, uses the constant
// refl(x^(e-1) mod g): the fold state F = [hi-degree lane | lo-degree
// lane] advances over one 128-bit chunk as
//
//   F' = clmul(F.hi_deg, refl(x^191 mod g))
//      ^ clmul(F.lo_deg, refl(x^127 mod g)) ^ next_chunk
//
// keeping the invariant F ≡ message-prefix (mod g) with deg(F) ≤ 127.
// The final reduction reuses the verified slicing-by-8 word step twice:
// feeding F's two words through word_step from a zero register yields
// F·x^31 mod g — exactly the CRC register after the folded prefix — and
// the scalar tail path then continues from the next word boundary.
#include "codes/crc31.h"

#if SUDOKU_HAS_PCLMUL

#include <immintrin.h>

#include <cassert>

namespace sudoku {

bool Crc31::clmul_supported() { return __builtin_cpu_supports("pclmul") != 0; }

__attribute__((target("pclmul,sse2")))
std::uint32_t Crc31::compute_clmul(const BitVec& bits, std::size_t nbits) const {
  assert(nbits <= bits.size());
  assert(clmul_supported());
  const auto words = bits.words();
  const std::size_t nchunks = nbits / 128;
  std::uint32_t reg = 0;
  if (nchunks != 0) {
    // K.lo multiplies the earlier word (higher degrees -> x^192), K.hi the
    // later one (x^128); words[2c] holds message bits 128c..128c+63, whose
    // degrees are the chunk's high half.
    const __m128i K =
        _mm_set_epi64x(static_cast<long long>(clmul_fold_[1]),
                       static_cast<long long>(clmul_fold_[0]));
    __m128i F = _mm_set_epi64x(static_cast<long long>(words[1]),
                               static_cast<long long>(words[0]));
    for (std::size_t c = 1; c < nchunks; ++c) {
      const __m128i next =
          _mm_set_epi64x(static_cast<long long>(words[2 * c + 1]),
                         static_cast<long long>(words[2 * c]));
      const __m128i hi_deg = _mm_clmulepi64_si128(F, K, 0x00);
      const __m128i lo_deg = _mm_clmulepi64_si128(F, K, 0x11);
      F = _mm_xor_si128(_mm_xor_si128(hi_deg, lo_deg), next);
    }
    alignas(16) std::uint64_t f[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(f), F);
    reg = word_step(word_step(0, f[0]), f[1]);
  }
  return finish_scalar(reg, bits, nchunks * 128, nbits);
}

}  // namespace sudoku

#endif  // SUDOKU_HAS_PCLMUL
