// Detection-property analysis for CRC polynomials (cf. Koopman's CRC zoo,
// the paper's reference [29]). The reliability models assume CRC-31
// detects up to 7 errors per line and misdetects heavier patterns with
// probability 2^-31; this module *verifies* such claims for a concrete
// generator and message length instead of taking them on faith:
//
//   * exhaustive search for undetected error patterns of weight <= 3
//     (linearity reduces the check to "is the XOR of per-position
//     signatures zero"), feasible at line lengths in milliseconds;
//   * randomized sampling for higher weights with exact confidence
//     bookkeeping;
//   * guaranteed properties of the (x+1)·primitive construction (all odd
//     weights, bursts <= 31) checked structurally.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/crc31.h"
#include "common/rng.h"

namespace sudoku {

class CrcAnalysis {
 public:
  // Analyse `crc` over codewords of `message_bits` data + 31 stored CRC
  // bits (error patterns may hit the stored CRC field too).
  CrcAnalysis(const Crc31& crc, std::uint32_t message_bits);

  std::uint32_t total_bits() const { return total_bits_; }

  // Number of undetected error patterns of exactly `weight` (exhaustive;
  // weight <= 3 recommended — weight 4 at 543 bits is ~4e9 combinations).
  std::uint64_t count_undetected_exhaustive(int weight) const;

  // Sample `trials` random patterns of exactly `weight`; returns the
  // number that evade detection. For weight >= 8 the expectation is
  // trials × 2^-31.
  std::uint64_t count_undetected_sampled(int weight, std::uint64_t trials, Rng& rng) const;

  // Largest weight w such that *no* undetected pattern of weight <= w was
  // found exhaustively (checks 1..max_weight; stops at first failure).
  int verified_minimum_distance(int max_weight) const;

  // True if the generator contains the (x+1) factor — i.e. every codeword
  // has even weight and all odd-weight errors are detected.
  bool detects_all_odd_weights() const;

 private:
  std::uint32_t message_bits_;
  std::uint32_t total_bits_;
  std::uint64_t generator_;
  // Syndrome signature of a single-bit error at each position (data
  // positions shift through the CRC register; stored-CRC positions flip
  // the comparison directly).
  std::vector<std::uint32_t> signature_;
};

}  // namespace sudoku
