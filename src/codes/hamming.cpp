#include "codes/hamming.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace sudoku {

namespace {
constexpr bool is_pow2(std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

Hamming::Hamming(std::size_t message_bits) : k_(message_bits) {
  // Smallest r with 2^r >= k + r + 1.
  std::size_t r = 1;
  while ((std::size_t{1} << r) < k_ + r + 1) ++r;
  r_ = r;
  n_ = k_ + r_;

  index_to_pos_.assign(n_, 0);
  pos_to_index_plus1_.assign(n_ + 1, 0);

  // Message bits occupy non-power-of-two positions in ascending order;
  // check bits occupy positions 1, 2, 4, ... in ascending order, stored
  // after the message in index space.
  std::uint32_t pos = 1;
  for (std::size_t idx = 0; idx < k_; ++idx) {
    while (is_pow2(pos)) ++pos;
    index_to_pos_[idx] = pos;
    pos_to_index_plus1_[pos] = static_cast<std::uint32_t>(idx + 1);
    ++pos;
  }
  for (std::size_t j = 0; j < r_; ++j) {
    const std::uint32_t p = std::uint32_t{1} << j;
    assert(p <= n_);
    index_to_pos_[k_ + j] = p;
    pos_to_index_plus1_[p] = static_cast<std::uint32_t>(k_ + j + 1);
  }

  // Parity masks: syndrome bit j = XOR over set bits of (position bit j),
  // i.e. the parity of the codeword ANDed with the indices whose position
  // carries bit j. One AND + popcount per (check bit, word) replaces a
  // table lookup per set bit (~n/2 of them on random data).
  words_per_cw_ = (n_ + 63) / 64;
  check_masks_.assign(r_ * words_per_cw_, 0);
  for (std::size_t idx = 0; idx < n_; ++idx) {
    const std::uint32_t pos = index_to_pos_[idx];
    for (std::size_t j = 0; j < r_; ++j) {
      if ((pos >> j) & 1u) {
        check_masks_[j * words_per_cw_ + (idx >> 6)] |= std::uint64_t{1} << (idx & 63);
      }
    }
  }

  // Bit-slice program for the batch kernels: position i feeds the
  // syndrome bits set in its Hamming position (independent of the parity
  // masks above, so the differential tests exercise two distinct builds).
  slice_off_.assign(n_ + 1, 0);
  slice_idx_.reserve(n_ * r_ / 2);
  for (std::size_t idx = 0; idx < n_; ++idx) {
    const std::uint32_t pos = index_to_pos_[idx];
    for (std::size_t j = 0; j < r_; ++j) {
      if ((pos >> j) & 1u) slice_idx_.push_back(static_cast<std::uint16_t>(j));
    }
    slice_off_[idx + 1] = static_cast<std::uint32_t>(slice_idx_.size());
  }
}

void Hamming::accumulate_planes(const BitPlanes& planes, std::uint64_t* acc) const {
  assert(planes.nbits() == n_);
  std::fill(acc, acc + r_, 0);
  const std::uint64_t* plane = planes.planes().data();
  const std::uint16_t* prog = slice_idx_.data();
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t p = plane[i];
    const std::uint16_t* end = slice_idx_.data() + slice_off_[i + 1];
    if (p == 0) {
      prog = end;
      continue;
    }
    for (; prog != end; ++prog) acc[*prog] ^= p;
  }
}

void Hamming::batch_syndromes(const BitPlanes& planes, std::uint32_t* out) const {
  std::uint64_t acc[16];  // r_ <= 16 for any codeword a BitPlanes can hold
  assert(r_ <= 16);
  accumulate_planes(planes, acc);
  for (std::size_t line = 0; line < planes.count(); ++line) {
    std::uint32_t v = 0;
    for (std::size_t j = 0; j < r_; ++j) {
      v |= static_cast<std::uint32_t>((acc[j] >> line) & 1u) << j;
    }
    out[line] = v;
  }
}

std::uint64_t Hamming::batch_syndromes_zero(const BitPlanes& planes) const {
  std::uint64_t acc[16];
  assert(r_ <= 16);
  accumulate_planes(planes, acc);
  std::uint64_t dirty = 0;
  for (std::size_t j = 0; j < r_; ++j) dirty |= acc[j];
  return ~dirty & planes.lane_mask();
}

void Hamming::encode(BitVec& codeword) const {
  assert(codeword.size() == n_);
  // Zero check bits, then set each so that the syndrome becomes zero. With
  // the check bits cleared the word-parallel syndrome sees only message
  // bits, so it equals the check-bit values to store.
  for (std::size_t j = 0; j < r_; ++j) codeword.reset(k_ + j);
  const std::uint32_t syn = syndrome(codeword);
  for (std::size_t j = 0; j < r_; ++j) {
    if ((syn >> j) & 1u) codeword.set(k_ + j);
  }
}

std::uint32_t Hamming::syndrome(const BitVec& codeword) const {
  assert(codeword.size() == n_);
  const auto words = codeword.words();
  const std::uint64_t* mask = check_masks_.data();
  std::uint32_t syn = 0;
  for (std::size_t j = 0; j < r_; ++j, mask += words_per_cw_) {
    // parity(popcount(a) + popcount(b)) == parity(popcount(a ^ b)), so the
    // per-word ANDs can be XOR-reduced before a single popcount.
    std::uint64_t acc = 0;
    for (std::size_t wi = 0; wi < words_per_cw_; ++wi) acc ^= words[wi] & mask[wi];
    syn |= (static_cast<std::uint32_t>(std::popcount(acc)) & 1u) << j;
  }
  return syn;
}

std::uint32_t Hamming::syndrome_reference(const BitVec& codeword) const {
  assert(codeword.size() == n_);
  std::uint32_t syn = 0;
  // Walk words and accumulate positions of set bits.
  const auto words = codeword.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const std::size_t idx = wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      syn ^= index_to_pos_[idx];
      w &= w - 1;
    }
  }
  return syn;
}

Hamming::DecodeStatus Hamming::decode(BitVec& codeword) const {
  const std::uint32_t syn = syndrome(codeword);
  if (syn == 0) return DecodeStatus::kClean;
  if (syn <= n_ && pos_to_index_plus1_[syn] != 0) {
    codeword.flip(pos_to_index_plus1_[syn] - 1);
    return DecodeStatus::kCorrected;
  }
  return DecodeStatus::kUncorrectable;
}

}  // namespace sudoku
