// CRC-31 error-detection code (paper §III-A). Each 64-byte cache line
// carries a 31-bit CRC computed over its 512 data bits. The generator is
// g(x) = (x+1)·p(x) with p primitive of degree 30 (found and verified at
// startup), which guarantees:
//   * every odd-weight error pattern is detected (1, 3, 5, 7, ... faults);
//   * any burst of length <= 31 is detected;
//   * undetected patterns occur with probability ~2^-31, matching the
//     misdetection probability the paper assumes for 8+ bit errors.
// The paper cites Koopman's CRC-31 with HD=8 at 512 bits; our construction
// is the closest reproducible equivalent (the exact Koopman polynomial is
// behind a web table) and the analytical models use the paper's stated
// detection properties. See DESIGN.md §4.
//
// Three compute kernels, all returning the identical CRC value (enforced
// by the differential tests in tests/test_codec_kernels.cpp):
//   compute()           slicing-by-8: one 64-bit message word per step,
//                       12 table lookups, no per-bit access — the hot path;
//   compute_bytewise()  classic byte-at-a-time table CRC (assembles bytes
//                       from individual bits);
//   compute_bitserial() tableless shift-and-fold oracle, the reference the
//                       fast kernels are verified against.
// See docs/perf.md for the kernel layout.
#pragma once

#include <cstdint>

#include "common/bitvec.h"

namespace sudoku {

class Crc31 {
 public:
  static constexpr int kBits = 31;

  // Default-constructed instances share the canonical generator polynomial.
  Crc31();
  explicit Crc31(std::uint64_t generator);  // 32-bit poly, x^31 term set

  std::uint64_t generator() const { return poly_; }

  // CRC over the first `nbits` bits of `bits` (bit i is coefficient of
  // x^(nbits-1-i), i.e. index order = transmission order).
  std::uint32_t compute(const BitVec& bits, std::size_t nbits) const;

  // CRC over a full bit vector.
  std::uint32_t compute(const BitVec& bits) const { return compute(bits, bits.size()); }

  // Byte-at-a-time table kernel (the pre-slicing hot path, kept so the
  // throughput bench can track the win and as a second differential point).
  std::uint32_t compute_bytewise(const BitVec& bits, std::size_t nbits) const;

  // Tableless bit-serial oracle: the definitional shift-and-fold loop.
  std::uint32_t compute_bitserial(const BitVec& bits, std::size_t nbits) const;

  // The canonical generator used across the library (computed once).
  static std::uint64_t canonical_generator();

 private:
  std::uint64_t poly_;               // full generator incl. x^31 term
  std::uint32_t table_[256];         // byte-at-a-time table (poly w/o top bit)
  // Slicing-by-8 tables. A message word w contributes 8 bytes; byte lane j
  // (bits 8j..8j+7 of w, transmitted LSB-of-lane first) indexes
  // slice_[7-j] directly — the bit-reversal from BitVec bit order to CRC
  // transmission order is folded into the tables at construction.
  std::uint32_t slice_[8][256];
  // Register advance over 8 zero bytes, decomposed into the four register
  // byte lanes: A^8(reg) = fold_[0][reg&FF] ^ ... ^ fold_[3][reg>>24].
  std::uint32_t fold_[4][256];

  void build_table();
  void build_slices();

  // One byte-step of the CRC register with a zero message byte.
  std::uint32_t advance8(std::uint32_t reg) const {
    return ((reg << 8) & 0x7FFFFFFFu) ^ table_[(reg >> 23) & 0xFFu];
  }
};

}  // namespace sudoku
