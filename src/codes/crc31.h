// CRC-31 error-detection code (paper §III-A). Each 64-byte cache line
// carries a 31-bit CRC computed over its 512 data bits. The generator is
// g(x) = (x+1)·p(x) with p primitive of degree 30 (found and verified at
// startup), which guarantees:
//   * every odd-weight error pattern is detected (1, 3, 5, 7, ... faults);
//   * any burst of length <= 31 is detected;
//   * undetected patterns occur with probability ~2^-31, matching the
//     misdetection probability the paper assumes for 8+ bit errors.
// The paper cites Koopman's CRC-31 with HD=8 at 512 bits; our construction
// is the closest reproducible equivalent (the exact Koopman polynomial is
// behind a web table) and the analytical models use the paper's stated
// detection properties. See DESIGN.md §4.
//
// Four compute kernels, all returning the identical CRC value (enforced
// by the differential tests in tests/test_codec_kernels.cpp and
// tests/test_batch_codec.cpp):
//   compute()           dispatches to the fastest available kernel (see
//                       below);
//   compute_clmul()     PCLMUL carry-less-multiply folding over 128-bit
//                       chunks, reduced through the slicing word step —
//                       only on x86-64 CPUs with the pclmulqdq extension;
//   compute_slicing8()  slicing-by-8: one 64-bit message word per step,
//                       12 table lookups, no per-bit access;
//   compute_bytewise()  classic byte-at-a-time table CRC (assembles bytes
//                       from individual bits);
//   compute_bitserial() tableless shift-and-fold oracle, the reference the
//                       fast kernels are verified against.
//
// compute() picks CLMUL when the build and the host CPU support it and
// slicing-by-8 otherwise. The choice can be overridden for tests and
// benches with force_kernel() or the SUDOKU_CRC31_KERNEL environment
// variable (values: auto, bit_serial, byte_table, slicing8, clmul); an
// unknown name, or selecting clmul on a host without it, aborts loudly.
// See docs/perf.md for the kernel layout and docs/API.md for the override.
#pragma once

#include <cstdint>

#include "common/bitvec.h"

namespace sudoku {

// CRC compute-kernel selector for Crc31::force_kernel / the
// SUDOKU_CRC31_KERNEL environment override.
enum class CrcKernel : int {
  kAuto = 0,    // fastest available (clmul if supported, else slicing8)
  kBitSerial,   // definitional oracle
  kByteTable,   // byte-at-a-time table
  kSlicing8,    // slicing-by-8 word kernel
  kClmul,       // PCLMUL 128-bit folding
};

const char* to_string(CrcKernel k);

class Crc31 {
 public:
  static constexpr int kBits = 31;

  // Default-constructed instances share the canonical generator polynomial.
  Crc31();
  explicit Crc31(std::uint64_t generator);  // 32-bit poly, x^31 term set

  std::uint64_t generator() const { return poly_; }

  // CRC over the first `nbits` bits of `bits` (bit i is coefficient of
  // x^(nbits-1-i), i.e. index order = transmission order). Routes to the
  // active kernel — identical value whichever kernel runs.
  std::uint32_t compute(const BitVec& bits, std::size_t nbits) const;

  // CRC over a full bit vector.
  std::uint32_t compute(const BitVec& bits) const { return compute(bits, bits.size()); }

  // Slicing-by-8 word kernel (the portable fast path).
  std::uint32_t compute_slicing8(const BitVec& bits, std::size_t nbits) const;

  // PCLMUL folding kernel. Only callable when clmul_supported(); compiled
  // to an abort stub otherwise.
  std::uint32_t compute_clmul(const BitVec& bits, std::size_t nbits) const;

  // Byte-at-a-time table kernel (the pre-slicing hot path, kept so the
  // throughput bench can track the win and as a second differential point).
  std::uint32_t compute_bytewise(const BitVec& bits, std::size_t nbits) const;

  // Tableless bit-serial oracle: the definitional shift-and-fold loop.
  std::uint32_t compute_bitserial(const BitVec& bits, std::size_t nbits) const;

  // True iff the build carries the PCLMUL kernel and the host CPU has it.
  static bool clmul_supported();

  // Kernel override hook (process-wide). kAuto restores dispatch to the
  // fastest available kernel; selecting kClmul without clmul_supported()
  // aborts. Used by the dispatch-path tests and the throughput bench.
  static void force_kernel(CrcKernel k);

  // The kernel compute() currently routes to (never kAuto). Resolves the
  // SUDOKU_CRC31_KERNEL environment variable on first use.
  static CrcKernel active_kernel();

  // Parse a kernel name ("auto", "bit_serial", "byte_table", "slicing8",
  // "clmul"); aborts with a loud message on anything else (death-tested —
  // a typo in SUDOKU_CRC31_KERNEL must not silently change kernels).
  static CrcKernel kernel_from_name(const char* name);

  // The canonical generator used across the library (computed once).
  static std::uint64_t canonical_generator();

 private:
  std::uint64_t poly_;               // full generator incl. x^31 term
  std::uint32_t table_[256];         // byte-at-a-time table (poly w/o top bit)
  // Slicing-by-8 tables. A message word w contributes 8 bytes; byte lane j
  // (bits 8j..8j+7 of w, transmitted LSB-of-lane first) indexes
  // slice_[7-j] directly — the bit-reversal from BitVec bit order to CRC
  // transmission order is folded into the tables at construction.
  std::uint32_t slice_[8][256];
  // Register advance over 8 zero bytes, decomposed into the four register
  // byte lanes: A^8(reg) = fold_[0][reg&FF] ^ ... ^ fold_[3][reg>>24].
  std::uint32_t fold_[4][256];

  // CLMUL folding constants: bitrev64(x^191 mod g) and bitrev64(x^127
  // mod g). The bit reversal moves them into the reflected domain BitVec
  // words live in (first-transmitted bit at the LSB); see compute_clmul.
  std::uint64_t clmul_fold_[2];

  void build_table();
  void build_slices();

  // One byte-step of the CRC register with a zero message byte.
  std::uint32_t advance8(std::uint32_t reg) const {
    return ((reg << 8) & 0x7FFFFFFFu) ^ table_[(reg >> 23) & 0xFFu];
  }

  // One slicing-by-8 step: fold message word `w` (64 bits, BitVec order)
  // into the register. Shared by compute_slicing8 and the CLMUL kernel's
  // final reduction.
  std::uint32_t word_step(std::uint32_t reg, std::uint64_t w) const {
    return fold_[0][reg & 0xFFu] ^ fold_[1][(reg >> 8) & 0xFFu] ^
           fold_[2][(reg >> 16) & 0xFFu] ^ fold_[3][(reg >> 24) & 0xFFu] ^
           slice_[7][w & 0xFFu] ^ slice_[6][(w >> 8) & 0xFFu] ^
           slice_[5][(w >> 16) & 0xFFu] ^ slice_[4][(w >> 24) & 0xFFu] ^
           slice_[3][(w >> 32) & 0xFFu] ^ slice_[2][(w >> 40) & 0xFFu] ^
           slice_[1][(w >> 48) & 0xFFu] ^ slice_[0][(w >> 56) & 0xFFu];
  }

  // Finish a computation whose register already covers bits [0, from):
  // remaining whole words through word_step, then byte table, then
  // bit-serial. `from` must be word-aligned.
  std::uint32_t finish_scalar(std::uint32_t reg, const BitVec& bits,
                              std::size_t from, std::size_t nbits) const;
};

}  // namespace sudoku
