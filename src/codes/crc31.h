// CRC-31 error-detection code (paper §III-A). Each 64-byte cache line
// carries a 31-bit CRC computed over its 512 data bits. The generator is
// g(x) = (x+1)·p(x) with p primitive of degree 30 (found and verified at
// startup), which guarantees:
//   * every odd-weight error pattern is detected (1, 3, 5, 7, ... faults);
//   * any burst of length <= 31 is detected;
//   * undetected patterns occur with probability ~2^-31, matching the
//     misdetection probability the paper assumes for 8+ bit errors.
// The paper cites Koopman's CRC-31 with HD=8 at 512 bits; our construction
// is the closest reproducible equivalent (the exact Koopman polynomial is
// behind a web table) and the analytical models use the paper's stated
// detection properties. See DESIGN.md §4.
#pragma once

#include <cstdint>

#include "common/bitvec.h"

namespace sudoku {

class Crc31 {
 public:
  static constexpr int kBits = 31;

  // Default-constructed instances share the canonical generator polynomial.
  Crc31();
  explicit Crc31(std::uint64_t generator);  // 32-bit poly, x^31 term set

  std::uint64_t generator() const { return poly_; }

  // CRC over the first `nbits` bits of `bits` (bit i is coefficient of
  // x^(nbits-1-i), i.e. index order = transmission order).
  std::uint32_t compute(const BitVec& bits, std::size_t nbits) const;

  // CRC over a full bit vector.
  std::uint32_t compute(const BitVec& bits) const { return compute(bits, bits.size()); }

  // The canonical generator used across the library (computed once).
  static std::uint64_t canonical_generator();

 private:
  std::uint64_t poly_;               // full generator incl. x^31 term
  std::uint32_t table_[256];         // byte-at-a-time table (poly w/o top bit)

  void build_table();
};

}  // namespace sudoku
