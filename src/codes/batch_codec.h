// Batch codec engine, part 1 of 2: the bit-plane transpose container.
//
// The word-at-a-time kernels (docs/perf.md) walk one codeword per call;
// their cost is dominated by per-word field multiplies and table lookups.
// The batch engine amortises that work across up to 64 codewords at once
// by *transposing* the batch: plane p is a 64-bit word whose bit L is bit
// p of the L-th staged codeword. In that layout, "XOR bit p of every
// codeword that has weight w into its accumulator" is a single word XOR —
// GF(2) syndrome math for 64 lines costs the same instruction count as
// for one (bit-slicing). The consumers live on the codes themselves
// (Bch::batch_syndromes / Hamming::batch_syndrome / the clean-mask
// variants) and on LineCodec::fully_clean_batch; see docs/perf.md for the
// cost model and the break-even batch size.
//
// Usage:
//   planes.reset(nbits, count);                  // count <= 64
//   for (slot = 0; slot < count; ++slot)
//     planes.load_line(slot, cw[slot].words());  // stage (no transpose yet)
//   planes.finalize();                           // 64x64 block transpose
//   ... planes.plane(p) ...                      // bit L = line L's bit p
//
// All batch kernels are pinned bit-identical to the bit-serial oracles by
// tests/test_batch_codec.cpp (randomized batches with replay seeds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sudoku {

// In-place transpose of a 64x64 bit matrix stored as 64 words with the
// LSB-first convention: after the call, word r bit c holds what word c
// bit r held before. Exposed for the transpose round-trip test.
void transpose64(std::uint64_t m[64]);

class BitPlanes {
 public:
  static constexpr std::size_t kMaxLines = 64;

  // Prepare for a batch of `count` codewords (1..64) of `nbits` each.
  // Reuses the backing buffers across calls, so a long sweep allocates
  // only on its first (or widest) batch.
  void reset(std::size_t nbits, std::size_t count);

  // Stage codeword `slot`'s backing words (tail-masked, as BitVec::words()
  // guarantees). Missing high words are treated as zero so shorter spans
  // are accepted; extra words beyond the codeword width are ignored.
  void load_line(std::size_t slot, std::span<const std::uint64_t> words);

  // Transpose the staged batch into bit planes. Planes for unstaged slots
  // read as zero (reset() clears the staging area).
  void finalize();

  std::size_t nbits() const { return nbits_; }
  std::size_t count() const { return count_; }

  // Mask of valid lanes: bit L set iff slot L belongs to this batch.
  std::uint64_t lane_mask() const {
    return count_ >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << count_) - 1;
  }

  // Plane for codeword bit position `bit` (< nbits): bit L = line L's bit.
  std::uint64_t plane(std::size_t bit) const { return planes_[bit]; }
  std::span<const std::uint64_t> planes() const { return planes_; }

 private:
  std::size_t nbits_ = 0;
  std::size_t count_ = 0;
  std::size_t words_per_line_ = 0;
  bool finalized_ = false;
  // Staging area, line-major: slot L's words at [L*words_per_line_, ...).
  std::vector<std::uint64_t> staging_;
  // Transposed planes, one word per codeword bit (padded to whole blocks).
  std::vector<std::uint64_t> planes_;
};

}  // namespace sudoku
