#include "codes/crc_analysis.h"

#include <set>

#include "codes/gf2poly.h"
#include "common/bitvec.h"

namespace sudoku {

CrcAnalysis::CrcAnalysis(const Crc31& crc, std::uint32_t message_bits)
    : message_bits_(message_bits),
      total_bits_(message_bits + Crc31::kBits),
      generator_(crc.generator()) {
  // Signature of position i = change in (computed CRC xor stored CRC) when
  // bit i flips. By linearity, a pattern is undetected iff the XOR of its
  // positions' signatures is zero. Computed by running the real CRC on
  // single-bit messages (no reliance on internal register conventions).
  signature_.resize(total_bits_);
  BitVec probe(message_bits_);
  const std::uint32_t base = crc.compute(probe, message_bits_);
  for (std::uint32_t i = 0; i < message_bits_; ++i) {
    probe.set(i);
    signature_[i] = crc.compute(probe, message_bits_) ^ base;
    probe.reset(i);
  }
  // A flip in the stored CRC field toggles that bit of the comparison.
  for (std::uint32_t b = 0; b < Crc31::kBits; ++b) {
    signature_[message_bits_ + b] = 1u << b;
  }
}

std::uint64_t CrcAnalysis::count_undetected_exhaustive(int weight) const {
  const std::uint32_t n = total_bits_;
  std::uint64_t undetected = 0;
  switch (weight) {
    case 1:
      for (std::uint32_t i = 0; i < n; ++i) {
        if (signature_[i] == 0) ++undetected;
      }
      break;
    case 2:
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
          if ((signature_[i] ^ signature_[j]) == 0) ++undetected;
        }
      }
      break;
    case 3:
      // O(n^3) scan with the tail loop unrolled over raw words — ~2e8
      // signature XORs at n=574, well under a second.
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
          const std::uint32_t need = signature_[i] ^ signature_[j];
          for (std::uint32_t k = j + 1; k < n; ++k) {
            if (signature_[k] == need) ++undetected;
          }
        }
      }
      break;
    default:
      // Heavier weights are sampled, not enumerated.
      return UINT64_MAX;
  }
  return undetected;
}

std::uint64_t CrcAnalysis::count_undetected_sampled(int weight, std::uint64_t trials,
                                                    Rng& rng) const {
  std::uint64_t undetected = 0;
  std::vector<std::uint32_t> picks(weight);
  for (std::uint64_t t = 0; t < trials; ++t) {
    std::uint32_t acc = 0;
    // Rejection-free distinct sampling for small weights.
    for (int w = 0; w < weight; ++w) {
      for (;;) {
        const auto pos = static_cast<std::uint32_t>(rng.next_below(total_bits_));
        bool dup = false;
        for (int v = 0; v < w; ++v) {
          if (picks[v] == pos) {
            dup = true;
            break;
          }
        }
        if (!dup) {
          picks[w] = pos;
          acc ^= signature_[pos];
          break;
        }
      }
    }
    if (acc == 0) ++undetected;
  }
  return undetected;
}

int CrcAnalysis::verified_minimum_distance(int max_weight) const {
  for (int w = 1; w <= max_weight; ++w) {
    const auto bad = count_undetected_exhaustive(w);
    if (bad == UINT64_MAX) return w - 1;  // beyond exhaustive reach
    if (bad != 0) return w - 1;           // first weight with a miss
  }
  return max_weight;
}

bool CrcAnalysis::detects_all_odd_weights() const {
  // g(x) divisible by (x+1) <=> g(1) == 0 <=> even number of terms.
  return (__builtin_popcountll(generator_) % 2) == 0;
}

}  // namespace sudoku
