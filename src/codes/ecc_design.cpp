#include "codes/ecc_design.h"

#include <stdexcept>

namespace sudoku {

int min_bch_field_order(std::uint64_t data_bits, int t) {
  if (data_bits == 0 || t < 1) return 0;
  for (int m = 3; m <= 16; ++m) {
    const std::uint64_t natural = (std::uint64_t{1} << m) - 1;
    if (data_bits + static_cast<std::uint64_t>(m) * t <= natural) return m;
  }
  return 0;
}

EccDesign make_ecc_design(std::uint32_t data_bytes, int t) {
  if (data_bytes == 0 || data_bytes % 64 != 0) {
    throw std::invalid_argument("ECC design payload must be a positive "
                                "multiple of 64 B, got " +
                                std::to_string(data_bytes));
  }
  const std::uint64_t data_bits = std::uint64_t{data_bytes} * 8;
  const int m = min_bch_field_order(data_bits, t);
  if (m == 0) {
    throw std::invalid_argument("no BCH field m <= 16 fits " +
                                std::to_string(data_bytes) + " B at t=" +
                                std::to_string(t));
  }
  // Build the code once to read the exact generator degree (deg g can be
  // below m*t when cyclotomic cosets of alpha^1..alpha^2t overlap).
  const Bch probe(m, t, data_bits);
  EccDesign d;
  d.data_bytes = data_bytes;
  d.data_bits = static_cast<std::uint32_t>(data_bits);
  d.t = t;
  d.m = m;
  d.parity_bits = static_cast<std::uint32_t>(probe.parity_bits());
  d.codeword_bits = static_cast<std::uint32_t>(probe.codeword_bits());
  d.name = (data_bytes >= 1024 && data_bytes % 1024 == 0
                ? std::to_string(data_bytes / 1024) + "KB"
                : std::to_string(data_bytes) + "B") +
           "-t" + std::to_string(t);
  return d;
}

Bch make_bch(const EccDesign& design) {
  return Bch(design.m, design.t, design.data_bits);
}

const std::vector<std::uint32_t>& frontier_codeword_bytes() {
  static const std::vector<std::uint32_t> kSizes = {64, 512, 1024, 4096};
  return kSizes;
}

const std::vector<int>& frontier_strengths() {
  static const std::vector<int> kStrengths = {1, 2, 4, 6};
  return kStrengths;
}

}  // namespace sudoku
