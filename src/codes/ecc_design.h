// Parameterized BCH code designs for the large-codeword ECC frontier
// (ROADMAP item 5, docs/frontier.md). The paper evaluates two fixed points
// on the redundancy-vs-bandwidth curve — ECC-t over a 512-bit line
// (GF(2^10)) and Hi-ECC's ECC-6 over a 1 KB region (GF(2^14)). This module
// turns codeword size and code strength into sweep axes: given a data
// payload and a correction budget t, it picks the smallest field GF(2^m)
// whose natural length 2^m - 1 fits the shortened codeword, and exposes
// the resulting (n, k, r) geometry plus the derived capacity/bandwidth
// overheads the Pareto bench charges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codes/bch.h"

namespace sudoku {

// Smallest m with data_bits + m*t <= 2^m - 1, i.e. the smallest binary BCH
// field whose natural length can carry the shortened codeword (the
// generator degree of a t-error-correcting BCH code is at most m*t).
// Returns 0 if no m <= 16 fits (GF2m's table limit).
int min_bch_field_order(std::uint64_t data_bits, int t);

// One point of the codeword-size x strength sweep. `parity_bits` is the
// *actual* generator degree of the constructed code (usually exactly m*t
// for these shortened designs, but taken from the code, not assumed).
struct EccDesign {
  std::string name;            // e.g. "512B-t4"
  std::uint32_t data_bytes = 0;
  std::uint32_t data_bits = 0;
  int t = 0;
  int m = 0;
  std::uint32_t parity_bits = 0;
  std::uint32_t codeword_bits = 0;  // data_bits + parity_bits

  // Check bits per data bit — the storage cost axis.
  double capacity_overhead() const {
    return static_cast<double>(parity_bits) / data_bits;
  }
  // Stored bits touched to serve one 64 B (512-bit) line read: the whole
  // codeword must be fetched before it can be decoded.
  double read_amplification() const { return codeword_bits / 512.0; }
  // Stored bits moved by one 64 B line write under region RMW: fetch the
  // codeword, re-encode, write the line plus the parity back.
  double write_amplification() const {
    return (static_cast<double>(codeword_bits) + 512.0 +
            static_cast<double>(parity_bits)) /
           512.0;
  }
  std::uint32_t lines_per_codeword() const { return data_bits / 512; }
};

// Resolve (data_bytes, t) to a full design. Constructs the code once to
// read off the exact generator degree. Throws std::invalid_argument when
// data_bytes is not a positive multiple of 64 or no field m <= 16 fits.
EccDesign make_ecc_design(std::uint32_t data_bytes, int t);

// Instantiate the codec for a design (systematic [data | parity] layout,
// same as every Bch user in the tree).
Bch make_bch(const EccDesign& design);

// The frontier sweep axes (docs/frontier.md): the paper's 64 B per-line
// granularity, the Ramulator2_ECC study's 512 B / 1 KB / 4 KB large
// codewords, and strengths spanning ECC-1 to Hi-ECC's ECC-6.
const std::vector<std::uint32_t>& frontier_codeword_bytes();
const std::vector<int>& frontier_strengths();

}  // namespace sudoku
