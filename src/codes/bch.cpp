#include "codes/bch.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace sudoku {

namespace {

// Multiply polynomial (coeffs in GF(2^m), index = degree) by (x + root).
void mul_by_linear(std::vector<std::uint32_t>& poly, std::uint32_t root, const GF2m& f) {
  poly.push_back(0);
  for (std::size_t d = poly.size() - 1; d > 0; --d) {
    poly[d] = f.add(poly[d - 1], f.mul(poly[d], root));
  }
  poly[0] = f.mul(poly[0], root);
}

}  // namespace

Bch::Bch(int m, int t, std::size_t message_bits)
    : m_(m), t_(t), k_(message_bits), field_(m) {
  assert(t >= 1);
  // Generator = product of distinct minimal polynomials of alpha^1..alpha^2t.
  // Build via cyclotomic cosets mod 2^m - 1.
  const std::uint32_t order = field_.order();
  std::set<std::uint32_t> covered;
  std::vector<std::uint32_t> g = {1};  // polynomial "1" over GF(2^m)
  for (std::uint32_t i = 1; i <= static_cast<std::uint32_t>(2 * t); ++i) {
    if (covered.count(i % order)) continue;
    // Cyclotomic coset of i: {i, 2i, 4i, ...} mod order.
    std::uint32_t j = i % order;
    do {
      covered.insert(j);
      mul_by_linear(g, field_.alpha_pow(j), field_);
      j = static_cast<std::uint32_t>((2ull * j) % order);
    } while (j != i % order);
  }
  // Coefficients of g must be in GF(2).
  gen_.resize(g.size());
  for (std::size_t d = 0; d < g.size(); ++d) {
    assert(g[d] == 0 || g[d] == 1);
    gen_[d] = static_cast<std::uint8_t>(g[d]);
  }
  r_ = gen_.size() - 1;
  n_ = k_ + r_;
  assert(n_ <= order);  // shortened code must fit the natural length
}

void Bch::encode(BitVec& codeword) const {
  assert(codeword.size() == n_);
  // Systematic encoding: parity = message(x) · x^r mod g(x).
  // LFSR division, message processed MSB-first (index 0 = highest degree).
  std::vector<std::uint8_t> rem(r_, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint8_t fold = static_cast<std::uint8_t>(
        (codeword.test(i) ? 1u : 0u) ^ (r_ > 0 ? rem[r_ - 1] : 0u));
    // Shift remainder up by one degree.
    for (std::size_t d = r_ - 1; d > 0; --d) rem[d] = rem[d - 1];
    rem[0] = 0;
    if (fold) {
      for (std::size_t d = 0; d < r_; ++d) rem[d] ^= gen_[d];
    }
  }
  // Parity bits stored MSB-first after the message: index k_+j holds the
  // coefficient of x^(r-1-j).
  for (std::size_t j = 0; j < r_; ++j) {
    codeword.assign(k_ + j, rem[r_ - 1 - j] != 0);
  }
}

std::vector<std::uint32_t> Bch::syndromes(const BitVec& codeword) const {
  // S_j = r(alpha^j), j = 1..2t, with bit i the coefficient of x^(n-1-i).
  // Horner: S = S*alpha^j + bit, walking i ascending.
  std::vector<std::uint32_t> s(2 * t_, 0);
  for (int j = 1; j <= 2 * t_; ++j) {
    const std::uint32_t aj = field_.alpha_pow(static_cast<std::uint64_t>(j));
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      acc = field_.mul(acc, aj);
      if (codeword.test(i)) acc ^= 1u;
    }
    s[j - 1] = acc;
  }
  return s;
}

Bch::DecodeResult Bch::decode(BitVec& codeword) const {
  assert(codeword.size() == n_);
  const auto s = syndromes(codeword);
  if (std::all_of(s.begin(), s.end(), [](std::uint32_t v) { return v == 0; })) {
    return {DecodeStatus::kClean, 0};
  }

  // Berlekamp–Massey: find the shortest LFSR (error locator Lambda) that
  // generates the syndrome sequence.
  std::vector<std::uint32_t> lambda = {1};
  std::vector<std::uint32_t> b = {1};
  int L = 0;
  int m = 1;
  std::uint32_t bdisc = 1;
  for (int nIdx = 0; nIdx < 2 * t_; ++nIdx) {
    // Discrepancy d = S_n + sum lambda_i * S_{n-i}.
    std::uint32_t d = s[nIdx];
    for (int i = 1; i <= L && i < static_cast<int>(lambda.size()); ++i) {
      d ^= field_.mul(lambda[i], s[nIdx - i]);
    }
    if (d == 0) {
      ++m;
      continue;
    }
    if (2 * L <= nIdx) {
      auto tpoly = lambda;
      // lambda = lambda - (d / bdisc) x^m b
      const std::uint32_t coef = field_.div(d, bdisc);
      if (lambda.size() < b.size() + m) lambda.resize(b.size() + m, 0);
      for (std::size_t i = 0; i < b.size(); ++i) {
        lambda[i + m] ^= field_.mul(coef, b[i]);
      }
      L = nIdx + 1 - L;
      b = std::move(tpoly);
      bdisc = d;
      m = 1;
    } else {
      const std::uint32_t coef = field_.div(d, bdisc);
      if (lambda.size() < b.size() + m) lambda.resize(b.size() + m, 0);
      for (std::size_t i = 0; i < b.size(); ++i) {
        lambda[i + m] ^= field_.mul(coef, b[i]);
      }
      ++m;
    }
  }
  while (!lambda.empty() && lambda.back() == 0) lambda.pop_back();
  const int deg = static_cast<int>(lambda.size()) - 1;
  if (deg <= 0 || deg > t_) {
    return {DecodeStatus::kUncorrectable, 0};
  }

  // Chien search over the shortened positions. Bit index i corresponds to
  // polynomial degree n-1-i; a root Lambda(alpha^{-deg}) == 0 marks degree
  // `deg` as faulty.
  std::vector<std::size_t> error_idx;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t d_pos = n_ - 1 - i;
    // x = alpha^{-d_pos}
    const std::uint32_t x =
        field_.alpha_pow((field_.order() - d_pos % field_.order()) % field_.order());
    std::uint32_t acc = 0;
    std::uint32_t xp = 1;
    for (const auto c : lambda) {
      acc ^= field_.mul(c, xp);
      xp = field_.mul(xp, x);
    }
    if (acc == 0) {
      error_idx.push_back(i);
      if (static_cast<int>(error_idx.size()) > deg) break;
    }
  }
  if (static_cast<int>(error_idx.size()) != deg) {
    // Locator roots outside the shortened range, or wrong multiplicity:
    // the pattern exceeded the code's correction power and was detected.
    return {DecodeStatus::kUncorrectable, 0};
  }
  for (const auto i : error_idx) codeword.flip(i);
  return {DecodeStatus::kCorrected, deg};
}

}  // namespace sudoku
