#include "codes/bch.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace sudoku {

namespace {

// Multiply polynomial (coeffs in GF(2^m), index = degree) by (x + root).
void mul_by_linear(std::vector<std::uint32_t>& poly, std::uint32_t root, const GF2m& f) {
  poly.push_back(0);
  for (std::size_t d = poly.size() - 1; d > 0; --d) {
    poly[d] = f.add(poly[d - 1], f.mul(poly[d], root));
  }
  poly[0] = f.mul(poly[0], root);
}

}  // namespace

Bch::Bch(int m, int t, std::size_t message_bits)
    : m_(m), t_(t), k_(message_bits), field_(m) {
  assert(t >= 1);
  // Generator = product of distinct minimal polynomials of alpha^1..alpha^2t.
  // Build via cyclotomic cosets mod 2^m - 1.
  const std::uint32_t order = field_.order();
  std::set<std::uint32_t> covered;
  std::vector<std::uint32_t> g = {1};  // polynomial "1" over GF(2^m)
  for (std::uint32_t i = 1; i <= static_cast<std::uint32_t>(2 * t); ++i) {
    if (covered.count(i % order)) continue;
    // Cyclotomic coset of i: {i, 2i, 4i, ...} mod order.
    std::uint32_t j = i % order;
    do {
      covered.insert(j);
      mul_by_linear(g, field_.alpha_pow(j), field_);
      j = static_cast<std::uint32_t>((2ull * j) % order);
    } while (j != i % order);
  }
  // Coefficients of g must be in GF(2).
  gen_.resize(g.size());
  for (std::size_t d = 0; d < g.size(); ++d) {
    assert(g[d] == 0 || g[d] == 1);
    gen_[d] = static_cast<std::uint8_t>(g[d]);
  }
  r_ = gen_.size() - 1;
  n_ = k_ + r_;
  assert(n_ <= order);  // shortened code must fit the natural length

  // Word-level syndrome tables: alpha^(j·(63-k)) weights plus the per-word
  // (alpha^j)^64 and per-tail (alpha^j)^tail Horner multipliers.
  words_per_cw_ = (n_ + 63) / 64;
  tail_bits_ = n_ & 63;
  syn_weights_.resize(static_cast<std::size_t>(2 * t_) * 64);
  syn_pow64_.resize(2 * t_);
  syn_powtail_.resize(2 * t_);
  for (int j = 1; j <= 2 * t_; ++j) {
    const std::uint64_t uj = static_cast<std::uint64_t>(j);
    for (unsigned k = 0; k < 64; ++k) {
      syn_weights_[static_cast<std::size_t>(j - 1) * 64 + k] =
          field_.alpha_pow(uj * (63 - k));
    }
    syn_pow64_[j - 1] = field_.alpha_pow(uj * 64);
    syn_powtail_[j - 1] = field_.alpha_pow(uj * tail_bits_);
  }
}

void Bch::encode(BitVec& codeword) const {
  assert(codeword.size() == n_);
  // Systematic encoding: parity = message(x) · x^r mod g(x).
  // LFSR division, message processed MSB-first (index 0 = highest degree).
  std::vector<std::uint8_t> rem(r_, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint8_t fold = static_cast<std::uint8_t>(
        (codeword.test(i) ? 1u : 0u) ^ (r_ > 0 ? rem[r_ - 1] : 0u));
    // Shift remainder up by one degree.
    for (std::size_t d = r_ - 1; d > 0; --d) rem[d] = rem[d - 1];
    rem[0] = 0;
    if (fold) {
      for (std::size_t d = 0; d < r_; ++d) rem[d] ^= gen_[d];
    }
  }
  // Parity bits stored MSB-first after the message: index k_+j holds the
  // coefficient of x^(r-1-j).
  for (std::size_t j = 0; j < r_; ++j) {
    codeword.assign(k_ + j, rem[r_ - 1 - j] != 0);
  }
}

std::uint32_t Bch::syndrome_one(const BitVec& codeword, int j0) const {
  // S_j = r(alpha^j) with bit i the coefficient of x^(n-1-i), evaluated by
  // Horner word-at-a-time: a chunk of width L advances the accumulator by
  // (alpha^j)^L and folds in alpha^(j·(L-1-k)) per set bit k.
  const auto words = codeword.words();
  const std::size_t full_words = tail_bits_ == 0 ? words_per_cw_ : words_per_cw_ - 1;
  std::uint32_t acc = 0;
  for (std::size_t wi = 0; wi < full_words; ++wi) {
    acc = syndrome_word_step(acc, words[wi], j0, syn_pow64_[j0], 0);
  }
  if (tail_bits_ != 0) {
    // Tail weights alpha^(j·(tail-1-k)) live in the same row shifted by
    // 64-tail (bits past the tail are zero by BitVec's invariant).
    acc = syndrome_word_step(acc, words[words_per_cw_ - 1], j0, syn_powtail_[j0],
                             static_cast<unsigned>(64 - tail_bits_));
  }
  return acc;
}

std::vector<std::uint32_t> Bch::syndromes(const BitVec& codeword) const {
  assert(codeword.size() == n_);
  std::vector<std::uint32_t> s(2 * t_, 0);
  for (int j0 = 0; j0 < 2 * t_; ++j0) s[j0] = syndrome_one(codeword, j0);
  return s;
}

bool Bch::syndromes_zero(const BitVec& codeword) const {
  assert(codeword.size() == n_);
  for (int j0 = 0; j0 < 2 * t_; ++j0) {
    if (syndrome_one(codeword, j0) != 0) return false;
  }
  return true;
}

std::vector<std::uint32_t> Bch::syndromes_reference(const BitVec& codeword) const {
  // Bit-serial Horner oracle: S = S*alpha^j + bit, walking i ascending.
  std::vector<std::uint32_t> s(2 * t_, 0);
  for (int j = 1; j <= 2 * t_; ++j) {
    const std::uint32_t aj = field_.alpha_pow(static_cast<std::uint64_t>(j));
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      acc = field_.mul(acc, aj);
      if (codeword.test(i)) acc ^= 1u;
    }
    s[j - 1] = acc;
  }
  return s;
}

void Bch::build_slice_program() const {
  // Flattened per-position accumulator lists: plane i is XORed into the
  // accumulator word for (odd syndrome j = 2o+1, field bit b) iff bit b
  // of alpha^(j*(n-1-i)) is set. Only odd syndromes are accumulated: in a
  // binary BCH code S_2j = S_j^2 (squaring is linear over GF(2), and the
  // received word has 0/1 coefficients), so every even syndrome is an
  // exact field squaring of an earlier one — computed per line at
  // extraction time. That halves the program, which is what the
  // memory-bound Hi-ECC accumulation is limited by. Weights come straight
  // from the field's antilog table rather than the word-Horner weight
  // rows, so the two kernels fail independently under the differential
  // tests.
  slice_->off.assign(n_ + 1, 0);
  std::vector<std::uint16_t> idx;
  idx.reserve(n_ * static_cast<std::size_t>(t_) * static_cast<std::size_t>(m_) / 2);
  for (std::size_t i = 0; i < n_; ++i) {
    for (int o = 0; o < t_; ++o) {
      const int j = 2 * o + 1;
      const std::uint32_t w = field_.alpha_pow(
          static_cast<std::uint64_t>(j) * static_cast<std::uint64_t>(n_ - 1 - i));
      for (int b = 0; b < m_; ++b) {
        if ((w >> b) & 1u) {
          idx.push_back(static_cast<std::uint16_t>(o * m_ + b));
        }
      }
    }
    slice_->off[i + 1] = static_cast<std::uint32_t>(idx.size());
  }
  slice_->idx = std::move(idx);
}

void Bch::accumulate_planes(const BitPlanes& planes, std::uint64_t* acc) const {
  assert(planes.nbits() == n_);
  std::call_once(slice_->once, [this] { build_slice_program(); });
  const std::size_t nacc = static_cast<std::size_t>(t_) * m_;
  assert(nacc <= 6 * 14);  // accumulator arrays are sized for t<=6, m<=14
  std::fill(acc, acc + nacc, 0);
  const std::uint64_t* plane = planes.planes().data();
  const std::uint16_t* prog = slice_->idx.data();
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t p = plane[i];
    const std::uint16_t* end = slice_->idx.data() + slice_->off[i + 1];
    if (p == 0) {
      prog = end;  // all-zero planes (e.g. short batches) cost nothing
      continue;
    }
    for (; prog != end; ++prog) acc[*prog] ^= p;
  }
}

void Bch::batch_syndromes(const BitPlanes& planes, std::uint32_t* out) const {
  // acc[o*m + b] bit L = bit b of slot L's odd syndrome S_{2o+1};
  // gathering a line's odd syndromes is t*m single-bit reads and the even
  // ones are one field squaring each (S_2j = S_j^2, exact) — cheap next
  // to the n-long accumulation the batch just amortised 64 ways.
  std::uint64_t acc[6 * 14];  // max t = 6, max m = 14
  accumulate_planes(planes, acc);
  const std::size_t nsyn = static_cast<std::size_t>(2 * t_);
  for (std::size_t line = 0; line < planes.count(); ++line) {
    std::uint32_t* s = out + line * nsyn;
    for (std::size_t j = 1; j <= nsyn; ++j) {
      if (j % 2 == 1) {
        std::uint32_t v = 0;
        const std::uint64_t* a = acc + (j / 2) * m_;
        for (int b = 0; b < m_; ++b) {
          v |= static_cast<std::uint32_t>((a[b] >> line) & 1u) << b;
        }
        s[j - 1] = v;
      } else {
        s[j - 1] = field_.mul(s[j / 2 - 1], s[j / 2 - 1]);
      }
    }
  }
}

std::uint64_t Bch::batch_syndromes_zero(const BitPlanes& planes) const {
  // Every even syndrome is a power-of-two Frobenius image of an odd one
  // (S_2j = S_j^2), so all 2t syndromes are zero iff the t odd ones are.
  std::uint64_t acc[6 * 14];
  accumulate_planes(planes, acc);
  std::uint64_t dirty = 0;
  const std::size_t nacc = static_cast<std::size_t>(t_) * m_;
  for (std::size_t a = 0; a < nacc; ++a) dirty |= acc[a];
  return ~dirty & planes.lane_mask();
}

Bch::DecodeResult Bch::decode(BitVec& codeword) const {
  assert(codeword.size() == n_);
  const auto s = syndromes(codeword);
  return locate_and_correct(codeword, s);
}

Bch::DecodeResult Bch::decode_with_syndromes(BitVec& codeword,
                                             std::span<const std::uint32_t> s) const {
  assert(codeword.size() == n_);
  assert(s.size() == static_cast<std::size_t>(2 * t_));
  return locate_and_correct(codeword, s);
}

Bch::DecodeResult Bch::locate_and_correct(BitVec& codeword,
                                          std::span<const std::uint32_t> s) const {
  if (std::all_of(s.begin(), s.end(), [](std::uint32_t v) { return v == 0; })) {
    return {DecodeStatus::kClean, 0};
  }

  // Berlekamp–Massey: find the shortest LFSR (error locator Lambda) that
  // generates the syndrome sequence.
  std::vector<std::uint32_t> lambda = {1};
  std::vector<std::uint32_t> b = {1};
  int L = 0;
  int m = 1;
  std::uint32_t bdisc = 1;
  for (int nIdx = 0; nIdx < 2 * t_; ++nIdx) {
    // Discrepancy d = S_n + sum lambda_i * S_{n-i}.
    std::uint32_t d = s[nIdx];
    for (int i = 1; i <= L && i < static_cast<int>(lambda.size()); ++i) {
      d ^= field_.mul(lambda[i], s[nIdx - i]);
    }
    if (d == 0) {
      ++m;
      continue;
    }
    if (2 * L <= nIdx) {
      auto tpoly = lambda;
      // lambda = lambda - (d / bdisc) x^m b
      const std::uint32_t coef = field_.div(d, bdisc);
      if (lambda.size() < b.size() + m) lambda.resize(b.size() + m, 0);
      for (std::size_t i = 0; i < b.size(); ++i) {
        lambda[i + m] ^= field_.mul(coef, b[i]);
      }
      L = nIdx + 1 - L;
      b = std::move(tpoly);
      bdisc = d;
      m = 1;
    } else {
      const std::uint32_t coef = field_.div(d, bdisc);
      if (lambda.size() < b.size() + m) lambda.resize(b.size() + m, 0);
      for (std::size_t i = 0; i < b.size(); ++i) {
        lambda[i + m] ^= field_.mul(coef, b[i]);
      }
      ++m;
    }
  }
  while (!lambda.empty() && lambda.back() == 0) lambda.pop_back();
  const int deg = static_cast<int>(lambda.size()) - 1;
  if (deg <= 0 || deg > t_) {
    return {DecodeStatus::kUncorrectable, 0};
  }

  // Chien search over the shortened positions. Bit index i corresponds to
  // polynomial degree n-1-i; a root Lambda(alpha^{-d_pos}) == 0 marks that
  // degree as faulty. Incremental form: term c holds lambda_c·x_i^c, and
  // stepping i -> i+1 multiplies x by alpha, i.e. term c by alpha^c — one
  // field multiply per term per position, no exponentiations in the loop.
  std::vector<std::size_t> error_idx;
  std::vector<std::uint32_t> terms(lambda.size());
  std::vector<std::uint32_t> steps(lambda.size());
  const std::uint32_t x0 = field_.alpha_pow(
      (field_.order() - (n_ - 1) % field_.order()) % field_.order());
  for (std::size_t c = 0; c < lambda.size(); ++c) {
    terms[c] = field_.mul(lambda[c], field_.pow(x0, c));
    steps[c] = field_.alpha_pow(c);
  }
  for (std::size_t i = 0; i < n_; ++i) {
    std::uint32_t acc = 0;
    for (const auto term : terms) acc ^= term;
    if (acc == 0) {
      error_idx.push_back(i);
      if (static_cast<int>(error_idx.size()) > deg) break;
    }
    for (std::size_t c = 1; c < terms.size(); ++c) {
      terms[c] = field_.mul(terms[c], steps[c]);
    }
  }
  if (static_cast<int>(error_idx.size()) != deg) {
    // Locator roots outside the shortened range, or wrong multiplicity:
    // the pattern exceeded the code's correction power and was detected.
    return {DecodeStatus::kUncorrectable, 0};
  }
  for (const auto i : error_idx) codeword.flip(i);
  return {DecodeStatus::kCorrected, deg};
}

}  // namespace sudoku
