#include "codes/crc31.h"

#include <cassert>

#include "codes/gf2poly.h"

namespace sudoku {

std::uint64_t Crc31::canonical_generator() {
  // (x+1) * (smallest primitive polynomial of degree 30). Computed once;
  // the search is a few milliseconds. Verified primitive in tests.
  static const std::uint64_t g = [] {
    const std::uint64_t p30 = gf2::find_primitive(30);
    return gf2::mul(p30, 0b11);  // multiply by (x + 1)
  }();
  return g;
}

Crc31::Crc31() : poly_(canonical_generator()) { build_table(); }

Crc31::Crc31(std::uint64_t generator) : poly_(generator) {
  assert(gf2::degree(generator) == kBits);
  build_table();
}

void Crc31::build_table() {
  // MSB-first table over the low 31 bits of the generator, operating in a
  // 32-bit register whose top bit (bit 31) is the "about to shift out" slot.
  const std::uint32_t low = static_cast<std::uint32_t>(poly_ & 0x7FFFFFFFu);
  for (std::uint32_t byte = 0; byte < 256; ++byte) {
    // Place the byte at the top of the 31-bit register.
    std::uint32_t reg = byte << 23;
    for (int i = 0; i < 8; ++i) {
      const bool top = (reg >> 30) & 1u;
      reg = (reg << 1) & 0x7FFFFFFFu;
      if (top) reg ^= low;
    }
    table_[byte] = reg;
  }
}

std::uint32_t Crc31::compute(const BitVec& bits, std::size_t nbits) const {
  assert(nbits <= bits.size());
  std::uint32_t reg = 0;
  std::size_t i = 0;
  // Bulk: process whole bytes through the table.
  const std::size_t whole_bytes = nbits / 8;
  for (std::size_t b = 0; b < whole_bytes; ++b) {
    std::uint32_t byte = 0;
    for (int k = 0; k < 8; ++k) byte = (byte << 1) | (bits.test(i + k) ? 1u : 0u);
    reg = ((reg << 8) & 0x7FFFFFFFu) ^ table_[((reg >> 23) ^ byte) & 0xFFu];
    i += 8;
  }
  // Tail bits, bit-serial (non-augmented MSB-first, same recurrence the
  // byte table implements: fold the message bit into the top of the
  // register before shifting).
  const std::uint32_t low = static_cast<std::uint32_t>(poly_ & 0x7FFFFFFFu);
  for (; i < nbits; ++i) {
    const bool fold = (((reg >> 30) & 1u) ^ (bits.test(i) ? 1u : 0u)) != 0;
    reg = (reg << 1) & 0x7FFFFFFFu;
    if (fold) reg ^= low;
  }
  return reg;
}

}  // namespace sudoku
