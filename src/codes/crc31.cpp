#include "codes/crc31.h"

#include <cassert>

#include "codes/gf2poly.h"

namespace sudoku {

namespace {

std::uint8_t bitrev8(std::uint8_t b) {
  b = static_cast<std::uint8_t>(((b & 0xF0u) >> 4) | ((b & 0x0Fu) << 4));
  b = static_cast<std::uint8_t>(((b & 0xCCu) >> 2) | ((b & 0x33u) << 2));
  b = static_cast<std::uint8_t>(((b & 0xAAu) >> 1) | ((b & 0x55u) << 1));
  return b;
}

}  // namespace

std::uint64_t Crc31::canonical_generator() {
  // (x+1) * (smallest primitive polynomial of degree 30). Computed once;
  // the search is a few milliseconds. Verified primitive in tests.
  static const std::uint64_t g = [] {
    const std::uint64_t p30 = gf2::find_primitive(30);
    return gf2::mul(p30, 0b11);  // multiply by (x + 1)
  }();
  return g;
}

Crc31::Crc31() : poly_(canonical_generator()) {
  build_table();
  build_slices();
}

Crc31::Crc31(std::uint64_t generator) : poly_(generator) {
  assert(gf2::degree(generator) == kBits);
  build_table();
  build_slices();
}

void Crc31::build_table() {
  // MSB-first table over the low 31 bits of the generator, operating in a
  // 32-bit register whose top bit (bit 31) is the "about to shift out" slot.
  const std::uint32_t low = static_cast<std::uint32_t>(poly_ & 0x7FFFFFFFu);
  for (std::uint32_t byte = 0; byte < 256; ++byte) {
    // Place the byte at the top of the 31-bit register.
    std::uint32_t reg = byte << 23;
    for (int i = 0; i < 8; ++i) {
      const bool top = (reg >> 30) & 1u;
      reg = (reg << 1) & 0x7FFFFFFFu;
      if (top) reg ^= low;
    }
    table_[byte] = reg;
  }
}

void Crc31::build_slices() {
  // The byte step is affine-linear over GF(2): with A(reg) = advance8(reg)
  // and T[] the byte table, step(reg, b) = A(reg) ^ T[b]. Eight steps give
  //   reg' = A^8(reg) ^ A^7(T[b0]) ^ A^6(T[b1]) ^ ... ^ T[b7]
  // so slice k holds A^k(T[.]) and a word costs 8 lookups plus 4 more to
  // advance the register. BitVec stores the first-transmitted bit of each
  // byte lane in the lane's LSB while the CRC consumes it MSB-first; the
  // bit reversal is folded into the slice index.
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t v = table_[bitrev8(static_cast<std::uint8_t>(b))];
    slice_[0][b] = v;
    for (int k = 1; k < 8; ++k) {
      v = advance8(v);
      slice_[k][b] = v;
    }
  }
  // A^8 is linear in the register; decompose it into the four byte lanes.
  for (std::uint32_t b = 0; b < 256; ++b) {
    for (int j = 0; j < 4; ++j) {
      std::uint32_t v = (b << (8 * j)) & 0x7FFFFFFFu;
      for (int s = 0; s < 8; ++s) v = advance8(v);
      fold_[j][b] = v;
    }
  }
}

std::uint32_t Crc31::compute(const BitVec& bits, std::size_t nbits) const {
  assert(nbits <= bits.size());
  std::uint32_t reg = 0;
  // Bulk: one 64-bit message word per step, straight off the backing words.
  const std::size_t whole_words = nbits / 64;
  const auto words = bits.words();
  for (std::size_t wi = 0; wi < whole_words; ++wi) {
    const std::uint64_t w = words[wi];
    reg = fold_[0][reg & 0xFFu] ^ fold_[1][(reg >> 8) & 0xFFu] ^
          fold_[2][(reg >> 16) & 0xFFu] ^ fold_[3][(reg >> 24) & 0xFFu] ^
          slice_[7][w & 0xFFu] ^ slice_[6][(w >> 8) & 0xFFu] ^
          slice_[5][(w >> 16) & 0xFFu] ^ slice_[4][(w >> 24) & 0xFFu] ^
          slice_[3][(w >> 32) & 0xFFu] ^ slice_[2][(w >> 40) & 0xFFu] ^
          slice_[1][(w >> 48) & 0xFFu] ^ slice_[0][(w >> 56) & 0xFFu];
  }
  std::size_t i = whole_words * 64;
  // Tail: whole bytes through the byte table, then bit-serial.
  const std::size_t whole_bytes = nbits / 8;
  for (std::size_t b = i / 8; b < whole_bytes; ++b) {
    std::uint32_t byte = 0;
    for (int k = 0; k < 8; ++k) byte = (byte << 1) | (bits.test(i + k) ? 1u : 0u);
    reg = ((reg << 8) & 0x7FFFFFFFu) ^ table_[((reg >> 23) ^ byte) & 0xFFu];
    i += 8;
  }
  const std::uint32_t low = static_cast<std::uint32_t>(poly_ & 0x7FFFFFFFu);
  for (; i < nbits; ++i) {
    const bool fold = (((reg >> 30) & 1u) ^ (bits.test(i) ? 1u : 0u)) != 0;
    reg = (reg << 1) & 0x7FFFFFFFu;
    if (fold) reg ^= low;
  }
  return reg;
}

std::uint32_t Crc31::compute_bytewise(const BitVec& bits, std::size_t nbits) const {
  assert(nbits <= bits.size());
  std::uint32_t reg = 0;
  std::size_t i = 0;
  // Bulk: process whole bytes through the table.
  const std::size_t whole_bytes = nbits / 8;
  for (std::size_t b = 0; b < whole_bytes; ++b) {
    std::uint32_t byte = 0;
    for (int k = 0; k < 8; ++k) byte = (byte << 1) | (bits.test(i + k) ? 1u : 0u);
    reg = ((reg << 8) & 0x7FFFFFFFu) ^ table_[((reg >> 23) ^ byte) & 0xFFu];
    i += 8;
  }
  // Tail bits, bit-serial (non-augmented MSB-first, same recurrence the
  // byte table implements: fold the message bit into the top of the
  // register before shifting).
  const std::uint32_t low = static_cast<std::uint32_t>(poly_ & 0x7FFFFFFFu);
  for (; i < nbits; ++i) {
    const bool fold = (((reg >> 30) & 1u) ^ (bits.test(i) ? 1u : 0u)) != 0;
    reg = (reg << 1) & 0x7FFFFFFFu;
    if (fold) reg ^= low;
  }
  return reg;
}

std::uint32_t Crc31::compute_bitserial(const BitVec& bits, std::size_t nbits) const {
  assert(nbits <= bits.size());
  const std::uint32_t low = static_cast<std::uint32_t>(poly_ & 0x7FFFFFFFu);
  std::uint32_t reg = 0;
  for (std::size_t i = 0; i < nbits; ++i) {
    const bool fold = (((reg >> 30) & 1u) ^ (bits.test(i) ? 1u : 0u)) != 0;
    reg = (reg << 1) & 0x7FFFFFFFu;
    if (fold) reg ^= low;
  }
  return reg;
}

}  // namespace sudoku
