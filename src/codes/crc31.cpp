#include "codes/crc31.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "codes/gf2poly.h"

namespace sudoku {

namespace {

std::uint8_t bitrev8(std::uint8_t b) {
  b = static_cast<std::uint8_t>(((b & 0xF0u) >> 4) | ((b & 0x0Fu) << 4));
  b = static_cast<std::uint8_t>(((b & 0xCCu) >> 2) | ((b & 0x33u) << 2));
  b = static_cast<std::uint8_t>(((b & 0xAAu) >> 1) | ((b & 0x55u) << 1));
  return b;
}

std::uint64_t bitrev64(std::uint64_t v) {
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r = (r << 8) | bitrev8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  return r;
}

// Active kernel, process-wide. -1 = not yet resolved (first compute() or
// active_kernel() call reads SUDOKU_CRC31_KERNEL and picks the default).
std::atomic<int> g_crc_kernel{-1};

}  // namespace

const char* to_string(CrcKernel k) {
  switch (k) {
    case CrcKernel::kAuto: return "auto";
    case CrcKernel::kBitSerial: return "bit_serial";
    case CrcKernel::kByteTable: return "byte_table";
    case CrcKernel::kSlicing8: return "slicing8";
    case CrcKernel::kClmul: return "clmul";
  }
  return "?";
}

CrcKernel Crc31::kernel_from_name(const char* name) {
  if (name != nullptr) {
    for (const auto k : {CrcKernel::kAuto, CrcKernel::kBitSerial,
                         CrcKernel::kByteTable, CrcKernel::kSlicing8,
                         CrcKernel::kClmul}) {
      if (std::strcmp(name, to_string(k)) == 0) return k;
    }
  }
  // A typo must not silently fall back to a different kernel: the bench
  // records and the dispatch tests both depend on getting exactly the
  // kernel they named.
  std::fprintf(stderr,
               "Crc31: unknown CRC-31 kernel '%s' (valid: auto, bit_serial, "
               "byte_table, slicing8, clmul)\n",
               name == nullptr ? "(null)" : name);
  std::abort();
}

void Crc31::force_kernel(CrcKernel k) {
  if (k == CrcKernel::kAuto) {
    k = clmul_supported() ? CrcKernel::kClmul : CrcKernel::kSlicing8;
  } else if (k == CrcKernel::kClmul && !clmul_supported()) {
    std::fprintf(stderr,
                 "Crc31: clmul kernel requested but not available on this "
                 "build/CPU\n");
    std::abort();
  }
  g_crc_kernel.store(static_cast<int>(k), std::memory_order_relaxed);
}

CrcKernel Crc31::active_kernel() {
  int k = g_crc_kernel.load(std::memory_order_relaxed);
  if (k < 0) {
    // First use: honour the environment override, else pick the fastest.
    // Concurrent first calls race benignly — both resolve the same value.
    force_kernel(kernel_from_name(std::getenv("SUDOKU_CRC31_KERNEL") != nullptr
                                      ? std::getenv("SUDOKU_CRC31_KERNEL")
                                      : "auto"));
    k = g_crc_kernel.load(std::memory_order_relaxed);
  }
  return static_cast<CrcKernel>(k);
}

std::uint64_t Crc31::canonical_generator() {
  // (x+1) * (smallest primitive polynomial of degree 30). Computed once;
  // the search is a few milliseconds. Verified primitive in tests.
  static const std::uint64_t g = [] {
    const std::uint64_t p30 = gf2::find_primitive(30);
    return gf2::mul(p30, 0b11);  // multiply by (x + 1)
  }();
  return g;
}

Crc31::Crc31() : poly_(canonical_generator()) {
  build_table();
  build_slices();
}

Crc31::Crc31(std::uint64_t generator) : poly_(generator) {
  assert(gf2::degree(generator) == kBits);
  build_table();
  build_slices();
}

void Crc31::build_table() {
  // MSB-first table over the low 31 bits of the generator, operating in a
  // 32-bit register whose top bit (bit 31) is the "about to shift out" slot.
  const std::uint32_t low = static_cast<std::uint32_t>(poly_ & 0x7FFFFFFFu);
  for (std::uint32_t byte = 0; byte < 256; ++byte) {
    // Place the byte at the top of the 31-bit register.
    std::uint32_t reg = byte << 23;
    for (int i = 0; i < 8; ++i) {
      const bool top = (reg >> 30) & 1u;
      reg = (reg << 1) & 0x7FFFFFFFu;
      if (top) reg ^= low;
    }
    table_[byte] = reg;
  }
}

void Crc31::build_slices() {
  // The byte step is affine-linear over GF(2): with A(reg) = advance8(reg)
  // and T[] the byte table, step(reg, b) = A(reg) ^ T[b]. Eight steps give
  //   reg' = A^8(reg) ^ A^7(T[b0]) ^ A^6(T[b1]) ^ ... ^ T[b7]
  // so slice k holds A^k(T[.]) and a word costs 8 lookups plus 4 more to
  // advance the register. BitVec stores the first-transmitted bit of each
  // byte lane in the lane's LSB while the CRC consumes it MSB-first; the
  // bit reversal is folded into the slice index.
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t v = table_[bitrev8(static_cast<std::uint8_t>(b))];
    slice_[0][b] = v;
    for (int k = 1; k < 8; ++k) {
      v = advance8(v);
      slice_[k][b] = v;
    }
  }
  // A^8 is linear in the register; decompose it into the four byte lanes.
  for (std::uint32_t b = 0; b < 256; ++b) {
    for (int j = 0; j < 4; ++j) {
      std::uint32_t v = (b << (8 * j)) & 0x7FFFFFFFu;
      for (int s = 0; s < 8; ++s) v = advance8(v);
      fold_[j][b] = v;
    }
  }
  // CLMUL folding constants (always derived — a few microseconds — so the
  // kernel can be force-selected at any time). With BitVec words in
  // reflected bit order, clmul(refl(A), refl(B)) = refl(A·B·x), so to
  // multiply a lane by x^e (mod-congruent) the constant must be
  // refl(x^(e-1) mod g): e = 192 advances the high-degree lane of a
  // 128-bit state over one 128-bit chunk, e = 128 the low-degree lane.
  clmul_fold_[0] = bitrev64(gf2::pow_x_mod(191, poly_));
  clmul_fold_[1] = bitrev64(gf2::pow_x_mod(127, poly_));
}

std::uint32_t Crc31::compute(const BitVec& bits, std::size_t nbits) const {
  switch (active_kernel()) {
    case CrcKernel::kBitSerial: return compute_bitserial(bits, nbits);
    case CrcKernel::kByteTable: return compute_bytewise(bits, nbits);
    case CrcKernel::kClmul: return compute_clmul(bits, nbits);
    default: return compute_slicing8(bits, nbits);
  }
}

std::uint32_t Crc31::finish_scalar(std::uint32_t reg, const BitVec& bits,
                                   std::size_t from, std::size_t nbits) const {
  assert(from % 64 == 0 && from <= nbits);
  // Bulk: one 64-bit message word per step, straight off the backing words.
  const std::size_t whole_words = nbits / 64;
  const auto words = bits.words();
  for (std::size_t wi = from / 64; wi < whole_words; ++wi) {
    reg = word_step(reg, words[wi]);
  }
  std::size_t i = whole_words * 64;
  // Tail: whole bytes through the byte table, then bit-serial.
  const std::size_t whole_bytes = nbits / 8;
  for (std::size_t b = i / 8; b < whole_bytes; ++b) {
    std::uint32_t byte = 0;
    for (int k = 0; k < 8; ++k) byte = (byte << 1) | (bits.test(i + k) ? 1u : 0u);
    reg = ((reg << 8) & 0x7FFFFFFFu) ^ table_[((reg >> 23) ^ byte) & 0xFFu];
    i += 8;
  }
  const std::uint32_t low = static_cast<std::uint32_t>(poly_ & 0x7FFFFFFFu);
  for (; i < nbits; ++i) {
    const bool fold = (((reg >> 30) & 1u) ^ (bits.test(i) ? 1u : 0u)) != 0;
    reg = (reg << 1) & 0x7FFFFFFFu;
    if (fold) reg ^= low;
  }
  return reg;
}

std::uint32_t Crc31::compute_slicing8(const BitVec& bits, std::size_t nbits) const {
  assert(nbits <= bits.size());
  return finish_scalar(0, bits, 0, nbits);
}

std::uint32_t Crc31::compute_bytewise(const BitVec& bits, std::size_t nbits) const {
  assert(nbits <= bits.size());
  std::uint32_t reg = 0;
  std::size_t i = 0;
  // Bulk: process whole bytes through the table.
  const std::size_t whole_bytes = nbits / 8;
  for (std::size_t b = 0; b < whole_bytes; ++b) {
    std::uint32_t byte = 0;
    for (int k = 0; k < 8; ++k) byte = (byte << 1) | (bits.test(i + k) ? 1u : 0u);
    reg = ((reg << 8) & 0x7FFFFFFFu) ^ table_[((reg >> 23) ^ byte) & 0xFFu];
    i += 8;
  }
  // Tail bits, bit-serial (non-augmented MSB-first, same recurrence the
  // byte table implements: fold the message bit into the top of the
  // register before shifting).
  const std::uint32_t low = static_cast<std::uint32_t>(poly_ & 0x7FFFFFFFu);
  for (; i < nbits; ++i) {
    const bool fold = (((reg >> 30) & 1u) ^ (bits.test(i) ? 1u : 0u)) != 0;
    reg = (reg << 1) & 0x7FFFFFFFu;
    if (fold) reg ^= low;
  }
  return reg;
}

#if !SUDOKU_HAS_PCLMUL
// Builds without the PCLMUL translation unit (non-x86-64 targets or
// -DSUDOKU_ENABLE_PCLMUL=OFF): the kernel is never selectable, and a
// direct call is a programming error that must not silently return a
// different kernel's result.
bool Crc31::clmul_supported() { return false; }

std::uint32_t Crc31::compute_clmul(const BitVec&, std::size_t) const {
  std::fprintf(stderr, "Crc31: compute_clmul called in a build without PCLMUL support\n");
  std::abort();
}
#endif

std::uint32_t Crc31::compute_bitserial(const BitVec& bits, std::size_t nbits) const {
  assert(nbits <= bits.size());
  const std::uint32_t low = static_cast<std::uint32_t>(poly_ & 0x7FFFFFFFu);
  std::uint32_t reg = 0;
  for (std::size_t i = 0; i < nbits; ++i) {
    const bool fold = (((reg >> 30) & 1u) ^ (bits.test(i) ? 1u : 0u)) != 0;
    reg = (reg << 1) & 0x7FFFFFFFu;
    if (fold) reg ^= low;
  }
  return reg;
}

}  // namespace sudoku
