#include "codes/gf2poly.h"

#include <bit>
#include <cassert>
#include <vector>

namespace sudoku::gf2 {

int degree(std::uint64_t p) {
  return p == 0 ? -1 : 63 - std::countl_zero(p);
}

std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    a <<= 1;
    b >>= 1;
  }
  return r;
}

std::uint64_t mod(std::uint64_t a, std::uint64_t m) {
  assert(m != 0);
  const int dm = degree(m);
  int da = degree(a);
  while (da >= dm) {
    a ^= m << (da - dm);
    da = degree(a);
  }
  return a;
}

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  const int dm = degree(m);
  assert(dm <= 32);
  std::uint64_t r = 0;
  a = mod(a, m);
  while (b != 0) {
    if (b & 1) r ^= a;
    b >>= 1;
    a <<= 1;
    if (degree(a) >= dm) a ^= m << (degree(a) - dm);
  }
  return mod(r, m);
}

std::uint64_t pow_x_mod(std::uint64_t e, std::uint64_t m) {
  std::uint64_t result = 1;  // polynomial "1"
  std::uint64_t base = mod(2, m);  // polynomial "x"
  while (e != 0) {
    if (e & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    e >>= 1;
  }
  return result;
}

bool is_irreducible(std::uint64_t p, int d) {
  if (degree(p) != d || d < 1) return false;
  // p irreducible iff x^(2^d) == x (mod p) and gcd-style check
  // x^(2^(d/q)) - x coprime with p for each prime divisor q of d.
  // For our small degrees, the cheaper sufficient test: x^(2^d) == x mod p
  // and x^(2^(d/q)) != x mod p for each prime q | d.
  auto frob = [&](int k) {
    // x^(2^k) mod p by repeated squaring of x.
    std::uint64_t r = mod(2, p);
    for (int i = 0; i < k; ++i) r = mulmod(r, r, p);
    return r;
  };
  if (frob(d) != mod(2, p)) return false;
  for (int q = 2; q <= d; ++q) {
    if (d % q != 0) continue;
    bool prime = true;
    for (int t = 2; t * t <= q; ++t)
      if (q % t == 0) { prime = false; break; }
    if (!prime) continue;
    if (frob(d / q) == mod(2, p)) return false;
  }
  return true;
}

bool is_primitive(std::uint64_t p, int d) {
  if (!is_irreducible(p, d)) return false;
  const std::uint64_t order = (std::uint64_t{1} << d) - 1;
  // Factor the group order by trial division.
  std::vector<std::uint64_t> primes;
  std::uint64_t n = order;
  for (std::uint64_t f = 2; f * f <= n; ++f) {
    if (n % f == 0) {
      primes.push_back(f);
      while (n % f == 0) n /= f;
    }
  }
  if (n > 1) primes.push_back(n);
  for (const auto q : primes) {
    if (pow_x_mod(order / q, p) == 1) return false;  // x has smaller order
  }
  return pow_x_mod(order, p) == 1;
}

std::uint64_t find_primitive(int d) {
  // Candidates have the x^d and constant terms set (required for
  // irreducibility) — iterate the middle coefficients.
  const std::uint64_t high = std::uint64_t{1} << d;
  for (std::uint64_t mid = 0; mid < (std::uint64_t{1} << (d - 1)); ++mid) {
    const std::uint64_t cand = high | (mid << 1) | 1;
    if (is_primitive(cand, d)) return cand;
  }
  return 0;  // unreachable for d where primitive polynomials exist
}

}  // namespace sudoku::gf2
