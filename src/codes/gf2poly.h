// GF(2) polynomial arithmetic on machine words (degree <= 63). Used to
// construct and verify the CRC-31 generator polynomial: we build
// g(x) = (x+1)·p(x) with p primitive of degree 30, which guarantees that
// every odd-weight error pattern is detected (the (x+1) factor) and gives
// the 2^-31 misdetection probability the paper assumes for 8+ bit errors.
#pragma once

#include <cstdint>

namespace sudoku::gf2 {

// Degree of a polynomial represented by its coefficient bits (bit i = x^i).
int degree(std::uint64_t p);

// Polynomial multiplication in GF(2)[x] (carry-less multiply).
// Result must fit in 64 bits.
std::uint64_t mul(std::uint64_t a, std::uint64_t b);

// a mod m (m != 0).
std::uint64_t mod(std::uint64_t a, std::uint64_t m);

// a·b mod m with intermediate reduction (safe for deg m <= 32).
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

// x^e mod m by square-and-multiply.
std::uint64_t pow_x_mod(std::uint64_t e, std::uint64_t m);

// True if p (degree d) is irreducible over GF(2).
bool is_irreducible(std::uint64_t p, int d);

// True if p (degree d) is primitive: irreducible and x has full order
// 2^d - 1 in GF(2)[x]/(p). Factors 2^d - 1 by trial division (d <= 32).
bool is_primitive(std::uint64_t p, int d);

// Smallest (by integer value) primitive polynomial of the given degree.
std::uint64_t find_primitive(int d);

}  // namespace sudoku::gf2
