#include "reliability/analytical.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sudoku::reliability {
namespace {

CacheParams paper_params() { return CacheParams{}; }  // defaults = paper's

// Relative-error helper for quantities spanning many decades.
void expect_within_factor(double actual, double expected, double factor,
                          const char* what) {
  ASSERT_GT(actual, 0.0) << what;
  EXPECT_LT(actual / expected, factor) << what << " too high: " << actual;
  EXPECT_GT(actual / expected, 1.0 / factor) << what << " too low: " << actual;
}

TEST(Analytical, Table2LineFailureProbabilities) {
  // Paper Table II row "Probability of line-failure in 20ms".
  const double p = 5.3e-6;
  expect_within_factor(std::exp(log_p_line_ge(522, 2, p)), 3.9e-6, 1.2, "ECC-1");
  expect_within_factor(std::exp(log_p_line_ge(532, 3, p)), 3.8e-9, 1.5, "ECC-2");
  expect_within_factor(std::exp(log_p_line_ge(542, 4, p)), 2.9e-12, 1.5, "ECC-3");
  expect_within_factor(std::exp(log_p_line_ge(552, 5, p)), 1.9e-15, 1.5, "ECC-4");
  expect_within_factor(std::exp(log_p_line_ge(562, 6, p)), 1.0e-18, 1.6, "ECC-5");
  expect_within_factor(std::exp(log_p_line_ge(572, 7, p)), 4.9e-22, 1.6, "ECC-6");
}

TEST(Analytical, Table2CacheFitRates) {
  // Paper Table II row "Cache FIT-Rate".
  const CacheParams c = paper_params();
  expect_within_factor(ecc_k(c, 2).fit(), 7.2e11, 2.0, "ECC-2 FIT");
  expect_within_factor(ecc_k(c, 3).fit(), 5.5e8, 2.0, "ECC-3 FIT");
  expect_within_factor(ecc_k(c, 4).fit(), 3.5e5, 2.0, "ECC-4 FIT");
  expect_within_factor(ecc_k(c, 5).fit(), 191.0, 2.0, "ECC-5 FIT");
  expect_within_factor(ecc_k(c, 6).fit(), 0.092, 2.0, "ECC-6 FIT");
}

TEST(Analytical, Ecc1FailsSpectacularly) {
  // Table II: ECC-1 FIT > 1e14 (the cache fails nearly every interval).
  const CacheParams c = paper_params();
  EXPECT_GT(ecc_k(c, 1).fit(), 1e14);
  EXPECT_GT(ecc_k(c, 1).p_interval(), 0.9);
}

TEST(Analytical, SudokuXMttfSeconds) {
  // §III-F: "an uncorrectable line every 3.71 seconds". Mechanism model
  // lands within ~25%.
  const CacheParams c = paper_params();
  const auto r = sudoku_x_due(c);
  expect_within_factor(r.mttf_seconds(), 3.71, 1.4, "SuDoku-X MTTF");
}

TEST(Analytical, SudokuYMttfBracketsThePaper) {
  // §IV-E quotes 3.49 h (DUE FIT 286e6). The strict model is pessimistic,
  // the mechanistic model (matching our implementation and the paper's own
  // §IV-C claims) is stronger; the paper's number must sit between them.
  const CacheParams c = paper_params();
  const double strict_h = sudoku_y_due(c, SdrModel::kStrict).mttf_hours();
  const double mech_h = sudoku_y_due(c, SdrModel::kMechanistic).mttf_hours();
  EXPECT_LT(strict_h, 3.9);
  EXPECT_GT(mech_h, 3.49);
  EXPECT_GT(mech_h, strict_h);
  // Both sit in the "hours" regime — orders of magnitude above X.
  EXPECT_GT(strict_h * 3600.0, 100.0);
  EXPECT_LT(mech_h, 1000.0);
}

TEST(Analytical, SudokuZIsAstronomicallyStrong) {
  // §V-C: DUE FIT 1e-4, MTTF "8250 billion hours". Mechanism model must
  // land below 1 FIT by orders of magnitude and beat ECC-6 by >= 874x.
  const CacheParams c = paper_params();
  const auto z = sudoku_z_due(c);
  EXPECT_LT(z.fit(), 1e-2);
  const double ecc6_fit = ecc_k(c, 6).fit();
  EXPECT_GT(ecc6_fit / z.fit(), 874.0);
}

TEST(Analytical, SudokuZNoSdrMatchesFootnote4) {
  // Footnote 4: SuDoku-Z without SDR has a FIT rate of ~4 Million.
  const CacheParams c = paper_params();
  expect_within_factor(sudoku_z_no_sdr(c).fit(), 4e6, 3.0, "Z-without-SDR FIT");
}

TEST(Analytical, ReliabilityOrderingXtoYtoZ) {
  const CacheParams c = paper_params();
  const double x = sudoku_x_due(c).fit();
  const double y = sudoku_y_due(c).fit();
  const double z = sudoku_z_due(c).fit();
  EXPECT_GT(x / y, 100.0);   // Y is orders of magnitude stronger than X
  EXPECT_GT(y / z, 1e6);     // Z is many orders stronger than Y
}

TEST(Analytical, SdcDominatedBySevenFaultLines) {
  // Table III structure: the 7-fault event rate dwarfs the 8+ rate, and
  // total SDC (after 2^-31) is far below 1 FIT. The paper's "191
  // events/1e9h" figure equals its ECC-5 row, i.e. counts lines with >= 6
  // faults; we expose both accountings.
  const CacheParams c = paper_params();
  const auto sdc = sudoku_sdc(c);
  EXPECT_GT(sdc.fit_seven_fault_events, sdc.fit_eight_plus_events * 100);
  EXPECT_LT(sdc.sdc_fit, 1e-6);
  EXPECT_GT(sdc.sdc_fit, 1e-14);
  expect_within_factor(sdc.fit_six_plus_events, 191.0, 3.0, "6+-fault events");
  // Paper-style SDC: 191 × 2^-31 ≈ 8.9e-8 (the paper prints 8.9e-9; the
  // arithmetic from its own table gives 8.9e-8 — either way orders below
  // the 1-FIT target).
  expect_within_factor(sdc.sdc_fit_paper_style, 8.9e-8, 3.0, "paper-style SDC");
  // Mechanistic SDC is even lower.
  EXPECT_LT(sdc.sdc_fit, sdc.sdc_fit_paper_style);
}

TEST(Analytical, TotalFitCombinesDueAndSdc) {
  const CacheParams c = paper_params();
  const double due = sudoku_z_due(c).fit();
  const double sdc = sudoku_sdc(c).sdc_fit;
  const double total = sudoku_total(c, 'Z').fit();
  EXPECT_GE(total, due);
  EXPECT_GE(total, sdc);
  EXPECT_LE(total, (due + sdc) * 1.01);
}

TEST(Analytical, Table8ScrubIntervalTrend) {
  // Table VIII: FIT grows steeply with the scrub interval for every scheme,
  // and SuDoku-Z stays below 1 FIT even at 40 ms while ECC-5 fails at 10 ms.
  CacheParams c10 = paper_params(), c20 = paper_params(), c40 = paper_params();
  c10.ber = 2.7e-6;  c10.scrub_interval_s = 0.01;
  c40.ber = 1.09e-5; c40.scrub_interval_s = 0.04;
  EXPECT_GT(ecc_k(c10, 5).fit(), 1.0);      // ECC-5 already insufficient
  EXPECT_LT(sudoku_z_due(c40).fit(), 1.0);  // SuDoku-Z still fine at 40 ms
  EXPECT_LT(ecc_k(c10, 6).fit(), ecc_k(c20, 6).fit());
  EXPECT_LT(ecc_k(c20, 6).fit(), ecc_k(c40, 6).fit());
  EXPECT_LT(sudoku_z_due(c10).fit(), sudoku_z_due(c20).fit());
  EXPECT_LT(sudoku_z_due(c20).fit(), sudoku_z_due(c40).fit());
}

TEST(Analytical, Table9CacheSizeScalesLinearly) {
  // Table IX: halving/doubling the cache scales FIT by ~0.5x/2x.
  CacheParams c32 = paper_params(), c64 = paper_params(), c128 = paper_params();
  c32.num_lines = 1ull << 19;
  c128.num_lines = 1ull << 21;
  const double f32 = sudoku_z_due(c32).fit();
  const double f64 = sudoku_z_due(c64).fit();
  const double f128 = sudoku_z_due(c128).fit();
  EXPECT_NEAR(f64 / f32, 2.0, 0.1);
  EXPECT_NEAR(f128 / f64, 2.0, 0.1);
}

TEST(Analytical, Table10SudokuAlwaysBeatsEcc6) {
  // Table X: at Delta 35/34/33 (BER 5.3e-6 / ~1.4e-5 / ~3.6e-5 per the
  // e-per-unit-Delta scaling), SuDoku-Z stays >= 100x stronger than ECC-6.
  for (const double ber : {5.3e-6, 1.4e-5, 3.6e-5}) {
    CacheParams c = paper_params();
    c.ber = ber;
    const double ratio = ecc_k(c, 6).fit() / sudoku_z_due(c).fit();
    EXPECT_GT(ratio, 100.0) << "ber " << ber;
  }
}

TEST(Analytical, Table11BaselineOrdering) {
  // Table XI: CPPC is hopeless (~1.7e14), RAID-6 and 2DP are far better
  // but still far above SuDoku-Z.
  const CacheParams c = paper_params();
  const double f_cppc = cppc(c).fit();
  const double f_raid6 = raid6(c).fit();
  const double f_2dp = twodp(c).fit();
  const double f_z = sudoku_z_due(c).fit();
  expect_within_factor(f_cppc, 1.69e14, 2.0, "CPPC FIT");
  EXPECT_GT(f_cppc / f_raid6, 1e4);
  EXPECT_GT(f_raid6 / f_z, 1e6);
  EXPECT_GT(f_2dp / f_z, 1e6);
}

TEST(Analytical, Table12HiEccFailsTheFitTarget) {
  // Table XII: Hi-ECC (ECC-6 over 1 KB) has FIT far above SuDoku and above
  // the 1-FIT target.
  const CacheParams c = paper_params();
  const double f_hi = hi_ecc(c).fit();
  const double f_z = sudoku_z_due(c).fit();
  EXPECT_GT(f_hi, 1.0);
  EXPECT_GT(f_hi / f_z, 1e4);
}

TEST(Analytical, Table4SramVminRows) {
  // Table IV: ECC-7/8/9 cache failure probability at BER 1e-3.
  CacheParams c = paper_params();
  c.ber = 1e-3;
  expect_within_factor(sram_vmin_cache_failure_ecc(c, 7), 0.11, 2.0, "ECC-7");
  expect_within_factor(sram_vmin_cache_failure_ecc(c, 8), 0.0066, 2.0, "ECC-8");
  expect_within_factor(sram_vmin_cache_failure_ecc(c, 9), 3.5e-4, 2.0, "ECC-9");
}

TEST(Analytical, GroupSizeTradeoffExists) {
  // §III-D ablation: smaller groups are more reliable but cost more PLT
  // storage. FIT must grow monotonically with group size.
  double prev = 0.0;
  for (const std::uint32_t g : {128u, 256u, 512u, 1024u}) {
    CacheParams c = paper_params();
    c.group_size = g;
    const double f = sudoku_x_due(c).fit();
    EXPECT_GT(f, prev) << "group " << g;
    prev = f;
  }
}

TEST(Analytical, FitResultConversions) {
  // p=1e-9 per 20 ms interval: FIT = 1e-9 · 1.8e14 = 1.8e5; MTTF = 2e7 s.
  FitResult r{std::log(1e-9), 0.02};
  EXPECT_NEAR(r.fit() / 1.8e5, 1.0, 1e-6);
  EXPECT_NEAR(r.mttf_seconds() / 2e7, 1.0, 1e-6);
  EXPECT_NEAR(r.p_interval() / 1e-9, 1.0, 1e-9);
}

}  // namespace
}  // namespace sudoku::reliability
