#include "common/prob.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sudoku {
namespace {

TEST(Prob, LogFactorialSmallValues) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-9);
}

TEST(Prob, BinomCoeffMatchesPascal) {
  EXPECT_NEAR(std::exp(log_binom_coeff(5, 2)), 10.0, 1e-6);
  EXPECT_NEAR(std::exp(log_binom_coeff(10, 5)), 252.0, 1e-5);
  EXPECT_NEAR(std::exp(log_binom_coeff(543, 1)), 543.0, 1e-3);
}

TEST(Prob, BinomPmfSumsToOne) {
  // Sum pmf over all k for a small n.
  const double n = 20, p = 0.3;
  double total = -1e300;
  for (double k = 0; k <= n; ++k) total = log_sum(total, log_binom_pmf(n, k, p));
  EXPECT_NEAR(total, 0.0, 1e-9);
}

TEST(Prob, BinomPmfDegenerateP) {
  EXPECT_EQ(log_binom_pmf(10, 0, 0.0), 0.0);
  EXPECT_EQ(log_binom_pmf(10, 10, 1.0), 0.0);
  EXPECT_TRUE(std::isinf(log_binom_pmf(10, 1, 0.0)));
}

TEST(Prob, TailMatchesDirectSum) {
  const double n = 30, p = 0.1, k = 5;
  double direct = -1e300;
  for (double j = k; j <= n; ++j) direct = log_sum(direct, log_binom_pmf(n, j, p));
  EXPECT_NEAR(log_binom_tail_ge(n, k, p), direct, 1e-9);
}

TEST(Prob, TailHandlesTinyProbabilities) {
  // P[>=2 faults in a 543-bit line] at BER 5.3e-6: ~C(543,2) p^2 = 4.1e-6.
  const double lp = log_binom_tail_ge(543, 2, 5.3e-6);
  const double expected = std::log(543.0 * 542.0 / 2.0) + 2 * std::log(5.3e-6);
  EXPECT_NEAR(lp, expected, 0.01);
}

TEST(Prob, TailAtSevenFaultsMatchesPaperTable2) {
  // P[>=7 faults per line] is the ECC-6 line-failure probability: the
  // paper's Table II lists 4.9e-22 for a 512+60-bit ECC-6 line.
  const double lp = log_binom_tail_ge(572, 7, 5.3e-6);
  EXPECT_TRUE(std::isfinite(lp));
  EXPECT_NEAR(std::exp(lp) / 4.9e-22, 1.0, 0.1);
}

TEST(Prob, TailBoundaries) {
  EXPECT_EQ(log_binom_tail_ge(10, 0, 0.5), 0.0);
  EXPECT_TRUE(std::isinf(log_binom_tail_ge(10, 11, 0.5)));
}

TEST(Prob, LogSumCommutes) {
  const double a = -700, b = -701;
  EXPECT_NEAR(log_sum(a, b), log_sum(b, a), 1e-12);
  EXPECT_NEAR(std::exp(log_sum(std::log(0.25), std::log(0.5))), 0.75, 1e-12);
}

TEST(Prob, LogOneMinusExp) {
  EXPECT_NEAR(log_one_minus_exp(std::log(0.25)), std::log(0.75), 1e-12);
  EXPECT_NEAR(log_one_minus_exp(-1e-12), std::log(1e-12), 1e-3);
}

TEST(Prob, AnyOfNMatchesClosedForm) {
  // 1 - (1-p)^n for moderate values.
  const double p = 1e-3, n = 100;
  const double expected = 1.0 - std::pow(1.0 - p, n);
  EXPECT_NEAR(std::exp(log_any_of_n(std::log(p), n)), expected, 1e-9);
}

TEST(Prob, AnyOfNStableForTinyP) {
  // p = 1e-300, n = 1e6: result must be ~n*p, not 0 or -inf garbage.
  const double lp = std::log(1e-300);
  const double out = log_any_of_n(lp, 1e6);
  EXPECT_NEAR(out, lp + std::log(1e6), 1e-6);
}

TEST(Prob, GaussHermiteWeightsSumToOne) {
  for (const int order : {8, 16, 32, 64}) {
    GaussHermite gh(order);
    double sum = 0;
    for (const auto w : gh.weights) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-12) << "order " << order;
  }
}

TEST(Prob, GaussHermiteIntegratesMoments) {
  GaussHermite gh(32);
  double m1 = 0, m2 = 0, m4 = 0;
  for (std::size_t i = 0; i < gh.nodes.size(); ++i) {
    m1 += gh.weights[i] * gh.nodes[i];
    m2 += gh.weights[i] * gh.nodes[i] * gh.nodes[i];
    m4 += gh.weights[i] * std::pow(gh.nodes[i], 4);
  }
  EXPECT_NEAR(m1, 0.0, 1e-10);  // E[Z] = 0
  EXPECT_NEAR(m2, 1.0, 1e-10);  // E[Z^2] = 1
  EXPECT_NEAR(m4, 3.0, 1e-8);   // E[Z^4] = 3
}

TEST(Prob, GaussHermiteIntegratesExponentialTilt) {
  // E[e^{aZ}] = e^{a^2/2} — exactly the moment the BER integral needs.
  GaussHermite gh(64);
  const double a = -3.5;
  double acc = 0;
  for (std::size_t i = 0; i < gh.nodes.size(); ++i)
    acc += gh.weights[i] * std::exp(a * gh.nodes[i]);
  EXPECT_NEAR(acc, std::exp(a * a / 2), std::exp(a * a / 2) * 1e-6);
}

TEST(Prob, FitConversionRoundTrip) {
  // ECC-6 check from the paper: P_cache(20ms) = 5.1e-16 -> FIT ~ 0.092.
  const double fit = fit_from_interval_prob(5.1e-16, 0.02);
  EXPECT_NEAR(fit, 0.0918, 0.001);
}

TEST(Prob, MttfFromIntervalProb) {
  // SuDoku-X: failure prob ~5.4e-3 per 20 ms -> MTTF ~3.7 s.
  const double mttf = mttf_seconds(5.39e-3, 0.02);
  EXPECT_NEAR(mttf, 3.71, 0.02);
}

}  // namespace
}  // namespace sudoku
