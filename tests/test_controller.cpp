#include "sudoku/controller.h"

#include <gtest/gtest.h>

#include <set>

#include "sttram/fault_injector.h"

namespace sudoku {
namespace {

SudokuConfig small_config(SudokuLevel level) {
  SudokuConfig cfg;
  cfg.geo.num_lines = 1024;
  cfg.geo.group_size = 32;  // 32 groups; 10 line bits >= 2·5 group bits
  cfg.level = level;
  return cfg;
}

BitVec random_data(Rng& rng) {
  BitVec d(LineCodec::kDataBits);
  auto w = d.words();
  for (auto& word : w) word = rng.next_u64();
  return d;
}

// Inject `count` distinct faults into the data region of a stored line.
void inject(SudokuController& c, std::uint64_t line, int count, Rng& rng) {
  std::set<std::uint32_t> used;
  while (static_cast<int>(used.size()) < count) {
    const auto bit = static_cast<std::uint32_t>(rng.next_below(c.codec().total_bits()));
    if (used.insert(bit).second) c.array().flip(line, bit);
  }
}

TEST(Controller, FormatProducesConsistentParities) {
  for (const auto level : {SudokuLevel::kX, SudokuLevel::kZ}) {
    SudokuController c(small_config(level));
    Rng rng(1);
    c.format_random(rng);
    EXPECT_TRUE(c.parities_consistent());
  }
}

TEST(Controller, ReadBackAfterFormat) {
  SudokuController c(small_config(SudokuLevel::kZ));
  Rng rng(2);
  std::vector<BitVec> golden;
  c.format([&](std::uint64_t) {
    golden.push_back(random_data(rng));
    return golden.back();
  });
  for (const std::uint64_t line : {0ull, 100ull, 1023ull}) {
    const auto res = c.read_data(line);
    EXPECT_EQ(res.outcome, SudokuController::ReadOutcome::kClean);
    EXPECT_EQ(res.data, golden[line]);
  }
}

TEST(Controller, WriteUpdatesParityAndReadsBack) {
  SudokuController c(small_config(SudokuLevel::kZ));
  Rng rng(3);
  c.format_random(rng);
  for (int t = 0; t < 50; ++t) {
    const auto line = rng.next_below(1024);
    const BitVec data = random_data(rng);
    c.write_data(line, data);
    EXPECT_EQ(c.read_data(line).data, data);
  }
  EXPECT_TRUE(c.parities_consistent());
}

TEST(Controller, SingleBitFaultCorrectedOnRead) {
  SudokuController c(small_config(SudokuLevel::kX));
  Rng rng(4);
  c.format_random(rng);
  const BitVec want = c.read_data(5).data;
  c.array().flip(5, 17);
  const auto res = c.read_data(5);
  EXPECT_EQ(res.outcome, SudokuController::ReadOutcome::kCorrected);
  EXPECT_EQ(res.data, want);
  // Scrub-on-read persisted the fix.
  EXPECT_EQ(c.read_data(5).outcome, SudokuController::ReadOutcome::kClean);
}

TEST(Controller, MultiBitFaultRepairedByRaid4) {
  // Paper Figure 2: one line with a 6-bit error is rebuilt from the group.
  SudokuController c(small_config(SudokuLevel::kX));
  Rng rng(5);
  c.format_random(rng);
  const BitVec want = c.read_data(40).data;
  inject(c, 40, 6, rng);
  const auto res = c.read_data(40);
  EXPECT_EQ(res.outcome, SudokuController::ReadOutcome::kRepaired);
  EXPECT_EQ(res.data, want);
  EXPECT_TRUE(c.parities_consistent());
}

TEST(Controller, ScrubFixesScatteredSingleBitFaults) {
  SudokuController c(small_config(SudokuLevel::kX));
  Rng rng(6);
  c.format_random(rng);
  std::vector<std::uint64_t> touched;
  for (std::uint64_t line = 3; line < 1024; line += 97) {
    c.array().flip(line, static_cast<std::uint32_t>(rng.next_below(553)));
    touched.push_back(line);
  }
  const auto stats = c.scrub_lines(touched);
  EXPECT_EQ(stats.ecc1_corrections, touched.size());
  EXPECT_EQ(stats.due_lines, 0u);
  EXPECT_TRUE(c.parities_consistent());
}

TEST(Controller, SudokuXFailsOnTwoMultiBitLinesInGroup) {
  // The dominant SuDoku-X failure mode (§IV): two lines, two faults each.
  SudokuController c(small_config(SudokuLevel::kX));
  Rng rng(7);
  c.format_random(rng);
  inject(c, 10, 2, rng);  // lines 10 and 20 share hash-1 group 0 (size 32)
  inject(c, 20, 2, rng);
  const std::uint64_t lines[] = {10, 20};
  const auto stats = c.scrub_lines(lines);
  EXPECT_EQ(stats.due_lines, 2u);
}

TEST(Controller, SudokuYRepairsTwoTwoFaultLinesViaSdr) {
  SudokuController c(small_config(SudokuLevel::kY));
  Rng rng(8);
  c.format_random(rng);
  const BitVec want10 = c.read_data(10).data;
  const BitVec want20 = c.read_data(20).data;
  inject(c, 10, 2, rng);
  inject(c, 20, 2, rng);
  const std::uint64_t lines[] = {10, 20};
  const auto stats = c.scrub_lines(lines);
  EXPECT_EQ(stats.due_lines, 0u);
  EXPECT_GE(stats.sdr_repairs, 1u);  // at least one resurrected, other RAID-4
  EXPECT_EQ(c.read_data(10).data, want10);
  EXPECT_EQ(c.read_data(20).data, want20);
  EXPECT_TRUE(c.parities_consistent());
}

TEST(Controller, SudokuYRepairsThreeTwoFaultLines) {
  // §IV-C: three faulty lines with 2-bit failures each — six mismatch
  // positions, all repairable by SDR.
  SudokuController c(small_config(SudokuLevel::kY));
  Rng rng(9);
  c.format_random(rng);
  std::vector<BitVec> want;
  for (const std::uint64_t l : {3ull, 9ull, 27ull}) want.push_back(c.read_data(l).data);
  inject(c, 3, 2, rng);
  inject(c, 9, 2, rng);
  inject(c, 27, 2, rng);
  const std::uint64_t lines[] = {3, 9, 27};
  const auto stats = c.scrub_lines(lines);
  EXPECT_EQ(stats.due_lines, 0u);
  EXPECT_EQ(c.read_data(3).data, want[0]);
  EXPECT_EQ(c.read_data(9).data, want[1]);
  EXPECT_EQ(c.read_data(27).data, want[2]);
}

TEST(Controller, SudokuYHandlesTwoPlusThreeFaultPair) {
  // Figure 4: a 3-fault line paired with a 2-fault line — SDR resurrects
  // the 2-fault line, RAID-4 finishes the 3-fault one.
  SudokuController c(small_config(SudokuLevel::kY));
  Rng rng(10);
  c.format_random(rng);
  const BitVec want4 = c.read_data(4).data;
  const BitVec want8 = c.read_data(8).data;
  inject(c, 4, 2, rng);
  inject(c, 8, 3, rng);
  const std::uint64_t lines[] = {4, 8};
  const auto stats = c.scrub_lines(lines);
  EXPECT_EQ(stats.due_lines, 0u);
  EXPECT_EQ(c.read_data(4).data, want4);
  EXPECT_EQ(c.read_data(8).data, want8);
}

TEST(Controller, SudokuYFailsOnTwoThreeFaultLines) {
  // §V: two lines with 3+ faults each defeat SDR (one flip cannot bring a
  // 3-fault line within ECC-1 range).
  SudokuController c(small_config(SudokuLevel::kY));
  Rng rng(11);
  c.format_random(rng);
  inject(c, 6, 3, rng);
  inject(c, 12, 3, rng);
  const std::uint64_t lines[] = {6, 12};
  const auto stats = c.scrub_lines(lines);
  EXPECT_EQ(stats.due_lines, 2u);
}

TEST(Controller, SudokuZRepairsTwoThreeFaultLinesViaHash2) {
  // Figure 6: lines B and D fail under Hash-1 but are singletons in their
  // Hash-2 groups, where RAID-4 rebuilds them.
  SudokuController c(small_config(SudokuLevel::kZ));
  Rng rng(12);
  c.format_random(rng);
  const BitVec want6 = c.read_data(6).data;
  const BitVec want12 = c.read_data(12).data;
  inject(c, 6, 3, rng);
  inject(c, 12, 3, rng);
  const std::uint64_t lines[] = {6, 12};
  const auto stats = c.scrub_lines(lines);
  EXPECT_EQ(stats.due_lines, 0u);
  EXPECT_GE(stats.hash2_invocations, 1u);
  EXPECT_EQ(c.read_data(6).data, want6);
  EXPECT_EQ(c.read_data(12).data, want12);
  EXPECT_TRUE(c.parities_consistent());
}

TEST(Controller, SudokuZSurvivesBrokenFourCycle) {
  // A,B share a Hash-1 group; C (in A's Hash-2 group) and D (in B's) share
  // another Hash-1 group. With one of them only lightly damaged, the
  // global fixed-point iteration must untangle all four.
  SudokuConfig cfg = small_config(SudokuLevel::kZ);
  SudokuController c(cfg);
  const SkewedHash& h = c.hash();
  Rng rng(13);
  c.format_random(rng);
  const std::uint64_t a = 0;
  const std::uint64_t b = 1;                    // same hash-1 group as a
  const std::uint64_t cl = h.member2(h.group2(a), 3);  // a's hash-2 group
  const std::uint64_t d = h.member2(h.group2(b), 3);   // b's hash-2 group
  ASSERT_EQ(h.group1(a), h.group1(b));
  ASSERT_EQ(h.group1(cl), h.group1(d));
  ASSERT_NE(h.group1(a), h.group1(cl));
  std::vector<BitVec> want;
  for (const auto l : {a, b, cl, d}) want.push_back(c.read_data(l).data);
  inject(c, a, 3, rng);
  inject(c, b, 3, rng);
  inject(c, cl, 2, rng);  // the weak link: SDR-repairable in its h2 group
  inject(c, d, 3, rng);
  const std::uint64_t lines[] = {a, b, cl, d};
  const auto stats = c.scrub_lines(lines);
  EXPECT_EQ(stats.due_lines, 0u);
  int i = 0;
  for (const auto l : {a, b, cl, d}) {
    EXPECT_EQ(c.read_data(l).data, want[i++]) << "line " << l;
  }
}

TEST(Controller, SudokuZFailsOnFullFourCycle) {
  // The minimal genuinely-uncorrectable pattern: every involved group has
  // two 3-fault lines under both hashes.
  SudokuConfig cfg = small_config(SudokuLevel::kZ);
  SudokuController c(cfg);
  const SkewedHash& h = c.hash();
  Rng rng(14);
  c.format_random(rng);
  const std::uint64_t a = 0;
  const std::uint64_t b = 1;
  const std::uint64_t cl = h.member2(h.group2(a), 3);
  const std::uint64_t d = h.member2(h.group2(b), 3);
  inject(c, a, 3, rng);
  inject(c, b, 3, rng);
  inject(c, cl, 3, rng);
  inject(c, d, 3, rng);
  const std::uint64_t lines[] = {a, b, cl, d};
  const auto stats = c.scrub_lines(lines);
  EXPECT_EQ(stats.due_lines, 4u);
}

TEST(Controller, ScrubStatsAccumulate) {
  ScrubStats a, b;
  a.ecc1_corrections = 3;
  a.due_lines = 1;
  a.due_line_ids = {7};
  b.ecc1_corrections = 2;
  b.sdr_repairs = 4;
  a += b;
  EXPECT_EQ(a.ecc1_corrections, 5u);
  EXPECT_EQ(a.sdr_repairs, 4u);
  EXPECT_EQ(a.due_line_ids.size(), 1u);
}

TEST(Controller, PltStorageMatchesPaperBudget) {
  // §VII-H: two PLTs, each 128 KB for a 64 MB cache with 512-line groups.
  // At full width (553 bits per parity line) each PLT holds 2048 lines.
  SudokuConfig cfg;
  cfg.level = SudokuLevel::kZ;
  SudokuController c(cfg);
  const double kb_per_plt =
      static_cast<double>(c.plt_storage_bits()) / 2.0 / 8.0 / 1024.0;
  // 2048 parity lines ≈ 138 KB raw (the paper quotes the 64 B data payload
  // = 128 KB); accept that range.
  EXPECT_GT(kb_per_plt, 120.0);
  EXPECT_LT(kb_per_plt, 150.0);
}

TEST(Controller, RandomFaultSoakNoSilentCorruption) {
  // Property test: inject random faults at an accelerated BER for many
  // intervals; every line the controller does not flag as DUE must decode
  // to its golden data.
  SudokuConfig cfg = small_config(SudokuLevel::kZ);
  SudokuController c(cfg);
  Rng rng(15);
  std::vector<BitVec> golden;
  c.format([&](std::uint64_t) {
    golden.push_back(random_data(rng));
    return golden.back();
  });
  FaultInjector inj(cfg.geo.num_lines, c.codec().total_bits(), 2e-4);
  std::uint64_t due_total = 0;
  for (int interval = 0; interval < 60; ++interval) {
    const auto batch = inj.sample_interval(rng);
    FaultInjector::apply(batch, c.array());
    std::vector<std::uint64_t> touched;
    touched.reserve(batch.size());
    for (const auto& [line, bits] : batch) touched.push_back(line);
    const auto stats = c.scrub_lines(touched);
    due_total += stats.due_lines;
    const std::set<std::uint64_t> due(stats.due_line_ids.begin(), stats.due_line_ids.end());
    for (const auto line : touched) {
      if (due.count(line)) {
        // Restore lost data so the soak can continue (models a refill).
        c.write_data(line, golden[line]);
        continue;
      }
      const auto res = c.read_data(line);
      ASSERT_EQ(res.data, golden[line]) << "silent corruption on line " << line;
    }
  }
  // At this BER multi-line events happen but Z should fix nearly all.
  SUCCEED() << "DUE lines across soak: " << due_total;
}

}  // namespace
}  // namespace sudoku
