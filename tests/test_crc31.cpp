#include "codes/crc31.h"

#include <gtest/gtest.h>

#include "codes/gf2poly.h"
#include "common/rng.h"

namespace sudoku {
namespace {

BitVec random_bits(std::size_t n, Rng& rng) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.next_bool(0.5)) v.set(i);
  return v;
}

TEST(Crc31, CanonicalGeneratorHasDegree31) {
  EXPECT_EQ(gf2::degree(Crc31::canonical_generator()), 31);
}

TEST(Crc31, Deterministic) {
  Rng rng(1);
  const Crc31 crc;
  const BitVec data = random_bits(512, rng);
  EXPECT_EQ(crc.compute(data), crc.compute(data));
}

TEST(Crc31, FitsIn31Bits) {
  Rng rng(2);
  const Crc31 crc;
  for (int i = 0; i < 100; ++i) {
    const BitVec data = random_bits(512, rng);
    EXPECT_EQ(crc.compute(data) >> 31, 0u);
  }
}

TEST(Crc31, TableAndBitSerialAgree) {
  // Lengths that are not byte multiples force the bit-serial tail; verify
  // it matches pure table processing by computing prefixes.
  Rng rng(3);
  const Crc31 crc;
  const BitVec data = random_bits(543, rng);
  // Compute CRC over 543 bits two ways: directly, and via a copy whose tail
  // alignment differs (shift data into a fresh vector).
  const std::uint32_t a = crc.compute(data, 543);
  BitVec copy(543);
  for (int i = 0; i < 543; ++i)
    if (data.test(i)) copy.set(i);
  EXPECT_EQ(crc.compute(copy, 543), a);
  // And check linearity-based identity below covers the mixed path.
}

TEST(Crc31, IsLinear) {
  // CRC of (a xor b) == CRC(a) xor CRC(b) for a non-augmented CRC with
  // zero init — the property the parity/mismatch reasoning relies on.
  Rng rng(4);
  const Crc31 crc;
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec a = random_bits(512, rng);
    const BitVec b = random_bits(512, rng);
    BitVec x = a;
    x ^= b;
    EXPECT_EQ(crc.compute(x), crc.compute(a) ^ crc.compute(b));
  }
}

TEST(Crc31, DetectsAllSingleBitErrors) {
  Rng rng(5);
  const Crc31 crc;
  const BitVec data = random_bits(512, rng);
  const std::uint32_t good = crc.compute(data);
  for (int i = 0; i < 512; ++i) {
    BitVec bad = data;
    bad.flip(i);
    EXPECT_NE(crc.compute(bad), good) << "missed single-bit error at " << i;
  }
}

TEST(Crc31, DetectsAllOddWeightErrors) {
  // The (x+1) factor in the generator guarantees detection of every
  // odd-weight error pattern. Sample 3-, 5- and 7-bit patterns.
  Rng rng(6);
  const Crc31 crc;
  const BitVec data = random_bits(512, rng);
  const std::uint32_t good = crc.compute(data);
  for (const int weight : {3, 5, 7}) {
    for (int trial = 0; trial < 2000; ++trial) {
      BitVec bad = data;
      int flipped = 0;
      while (flipped < weight) {
        const auto pos = rng.next_below(512);
        if (bad.test(pos) == data.test(pos)) {
          bad.flip(pos);
          ++flipped;
        }
      }
      ASSERT_NE(crc.compute(bad), good) << weight << "-bit error missed";
    }
  }
}

TEST(Crc31, DetectsDoubleBitErrorsSampled) {
  // HD >= 4 for this construction at our lengths; 2-bit errors must be
  // caught. Exhaustive over a stride, sampled otherwise.
  Rng rng(7);
  const Crc31 crc;
  const BitVec data = random_bits(512, rng);
  const std::uint32_t good = crc.compute(data);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto i = rng.next_below(512);
    auto j = rng.next_below(512);
    while (j == i) j = rng.next_below(512);
    BitVec bad = data;
    bad.flip(i);
    bad.flip(j);
    ASSERT_NE(crc.compute(bad), good);
  }
}

TEST(Crc31, DetectsBurstsUpTo31) {
  // Any error burst of length <= deg(g) is detected by construction.
  Rng rng(8);
  const Crc31 crc;
  const BitVec data = random_bits(512, rng);
  const std::uint32_t good = crc.compute(data);
  for (int len = 1; len <= 31; ++len) {
    for (int trial = 0; trial < 50; ++trial) {
      const auto start = rng.next_below(512 - len);
      BitVec bad = data;
      bad.flip(start);              // burst endpoints set
      bad.flip(start + len - 1);
      for (int k = 1; k < len - 1; ++k)
        if (rng.next_bool(0.5)) bad.flip(start + k);
      if (len == 1) bad.flip(start);  // undo double-flip for len 1
      if (bad == data) continue;
      ASSERT_NE(crc.compute(bad), good) << "burst len " << len;
    }
  }
}

TEST(Crc31, ZeroDataHasZeroCrc) {
  const Crc31 crc;
  const BitVec zero(512);
  EXPECT_EQ(crc.compute(zero), 0u);
}

TEST(Crc31, RandomEvenWeightMisdetectionIsRare) {
  // Even-weight (8+) patterns alias with probability ~2^-31; a few
  // thousand samples must all be detected in practice.
  Rng rng(9);
  const Crc31 crc;
  const BitVec data = random_bits(512, rng);
  const std::uint32_t good = crc.compute(data);
  int missed = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    BitVec bad = data;
    int flipped = 0;
    while (flipped < 8) {
      const auto pos = rng.next_below(512);
      if (bad.test(pos) == data.test(pos)) {
        bad.flip(pos);
        ++flipped;
      }
    }
    if (crc.compute(bad) == good) ++missed;
  }
  EXPECT_EQ(missed, 0);
}

}  // namespace
}  // namespace sudoku
