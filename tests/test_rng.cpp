#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sudoku {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(553), 553u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(5);
  std::vector<int> hits(16, 0);
  for (int i = 0; i < 16000; ++i) ++hits[rng.next_below(16)];
  for (const auto h : hits) {
    EXPECT_GT(h, 700);  // ~1000 expected per bucket
    EXPECT_LT(h, 1300);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, BinomialMeanSmallRegime) {
  // Exact-inversion path (mean below 64, p not tiny).
  Rng rng(13);
  const int trials = 20000;
  double sum = 0;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.next_binomial(100, 0.3));
  EXPECT_NEAR(sum / trials, 30.0, 0.5);
}

TEST(Rng, BinomialMeanPoissonRegime) {
  // Tiny-p path: Binomial(1e9, 3e-9) ~ Poisson(3).
  Rng rng(17);
  const int trials = 20000;
  double sum = 0;
  for (int i = 0; i < trials; ++i)
    sum += static_cast<double>(rng.next_binomial(1000000000ull, 3e-9));
  EXPECT_NEAR(sum / trials, 3.0, 0.1);
}

TEST(Rng, BinomialMeanLargeRegime) {
  // Normal-approximation path: the fault-injector regime, ~2900 faults over
  // 5.7e8 bits.
  Rng rng(19);
  const std::uint64_t n = 566272000ull;
  const double p = 5.3e-6;
  const int trials = 5000;
  double sum = 0;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.next_binomial(n, p));
  EXPECT_NEAR(sum / trials, static_cast<double>(n) * p, 5.0);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(23);
  EXPECT_EQ(rng.next_binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.next_binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.next_binomial(100, 1.0), 100u);
}

TEST(Rng, PoissonMean) {
  Rng rng(29);
  const int trials = 50000;
  double sum = 0;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.next_poisson(4.2));
  EXPECT_NEAR(sum / trials, 4.2, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  const int trials = 100000;
  double sum = 0;
  for (int i = 0; i < trials; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

}  // namespace
}  // namespace sudoku
