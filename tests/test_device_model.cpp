#include "sttram/device_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sudoku {
namespace {

TEST(DeviceModel, FixedDeltaMatchesEquationOne) {
  // lambda = f0·e^-Delta; p = 1 - e^(-lambda t).
  const double p = cell_flip_prob_fixed(35.0, 0.02);
  const double lambda = 1e9 * std::exp(-35.0);
  EXPECT_NEAR(p / (1.0 - std::exp(-lambda * 0.02)), 1.0, 1e-6);
}

TEST(DeviceModel, CellMttfAtDelta35IsEighteenDays) {
  // Paper §I: "MTTF for a cell with Delta of 35 is approximately 18 days".
  ThermalParams params;
  const double mttf_days = mttf_cell_at_mean_delta(params) / 86400.0;
  EXPECT_NEAR(mttf_days, 18.3, 0.5);
}

TEST(DeviceModel, PopulationMeanFailureTimeIsAboutAnHour) {
  // Paper §I: with sigma = 10%, "on average, it takes only one hour for a
  // cell to fail" — 1 / E[lambda].
  ThermalParams params;
  const double hours = 1.0 / mean_flip_rate(params) / 3600.0;
  EXPECT_GT(hours, 0.5);
  EXPECT_LT(hours, 2.0);
}

TEST(DeviceModel, EffectiveBerAtDelta35MatchesPaper) {
  // Table I: BER 5.3e-6 over 20 ms at Delta = 35, sigma = 10%. Our
  // integral lands in the same ballpark; the paper's value is recomputed
  // from Naeimi et al. figures, so match within ~30%.
  ThermalParams params;
  const double ber = effective_ber(params, 0.02);
  EXPECT_GT(ber, 3.5e-6);
  EXPECT_LT(ber, 8e-6);
}

TEST(DeviceModel, VariationDominatesBer) {
  // Without variation the BER at Delta = 35 is ~1.3e-8; variation lifts it
  // by more than two orders of magnitude.
  ThermalParams varied;
  ThermalParams fixed;
  fixed.sigma_frac = 0.0;
  const double with_var = effective_ber(varied, 0.02);
  const double without = effective_ber(fixed, 0.02);
  EXPECT_GT(with_var / without, 100.0);
}

TEST(DeviceModel, BerScalesRoughlyLinearlyWithInterval) {
  // Paper §VII-E: "reducing the scrub interval reduces the BER (almost
  // linearly)". Check 10 ms vs 20 ms vs 40 ms ratios.
  ThermalParams params;
  const double b10 = effective_ber(params, 0.01);
  const double b20 = effective_ber(params, 0.02);
  const double b40 = effective_ber(params, 0.04);
  EXPECT_NEAR(b20 / b10, 2.0, 0.15);
  EXPECT_NEAR(b40 / b20, 2.0, 0.15);
}

TEST(DeviceModel, BerIncreasesAsDeltaDrops) {
  ThermalParams p35, p34, p33;
  p34.delta_mean = 34;
  p33.delta_mean = 33;
  const double b35 = effective_ber(p35, 0.02);
  const double b34 = effective_ber(p34, 0.02);
  const double b33 = effective_ber(p33, 0.02);
  EXPECT_GT(b34, b35);
  EXPECT_GT(b33, b34);
  // Roughly a factor of e per unit Delta before saturation effects.
  EXPECT_GT(b34 / b35, 1.8);
  EXPECT_LT(b34 / b35, 3.5);
}

TEST(DeviceModel, Delta60IsOrdersOfMagnitudeSafer) {
  // Table I: Delta 60 gives ~2.7e-12 vs 5.3e-6 at Delta 35 — about six
  // orders of magnitude.
  ThermalParams p60;
  p60.delta_mean = 60.0;
  const double b60 = effective_ber(p60, 0.02);
  ThermalParams p35;
  const double b35 = effective_ber(p35, 0.02);
  EXPECT_LT(b60, 1e-10);
  EXPECT_GT(b35 / b60, 1e4);
}

TEST(DeviceModel, ProbabilitiesAreValid) {
  for (double delta : {20.0, 35.0, 60.0}) {
    for (double t : {1e-3, 0.02, 1.0, 3600.0}) {
      const double p = cell_flip_prob_fixed(delta, t);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
  ThermalParams params;
  const double eb = effective_ber(params, 0.02);
  EXPECT_GE(eb, 0.0);
  EXPECT_LE(eb, 1.0);
}

TEST(DeviceModel, QuadratureOrderConverged) {
  ThermalParams params;
  const double b32 = effective_ber(params, 0.02, 32);
  const double b64 = effective_ber(params, 0.02, 64);
  EXPECT_NEAR(b32 / b64, 1.0, 0.05);
}

}  // namespace
}  // namespace sudoku
