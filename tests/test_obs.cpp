// Unit tests for the observability layer (src/obs) and its JSON emission
// (exp/metrics_io): handle stability, bucket-edge semantics, the
// deterministic shard-merge contract, and the snapshot -> JSON rendering
// the bench artifacts rely on.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "exp/mc_experiments.h"
#include "exp/metrics_io.h"
#include "obs/macros.h"
#include "obs/metrics.h"

namespace sudoku::obs {
namespace {

// ---- counters and gauges ---------------------------------------------

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, MergeKeepsRhsValueOnlyWhenRhsWasSet) {
  Gauge a, b;
  a.set(1.5);
  a += b;  // b never set: a's value survives
  EXPECT_DOUBLE_EQ(a.value(), 1.5);
  EXPECT_EQ(a.samples(), 1u);
  b.set(2.5);
  a += b;  // b set: last-shard-wins
  EXPECT_DOUBLE_EQ(a.value(), 2.5);
  EXPECT_EQ(a.samples(), 2u);
}

// ---- histogram bucket semantics --------------------------------------

TEST(Histogram, BucketEdgesAreHalfOpen) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.buckets().size(), 4u);  // underflow + 2 interior + overflow
  h.observe(0.999);  // underflow: v < edges[0]
  h.observe(1.0);    // exactly on an edge lands in the bucket it opens
  h.observe(1.999);
  h.observe(2.0);
  h.observe(3.999);
  h.observe(4.0);    // exactly on the last edge: overflow
  h.observe(1e9);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.min(), 0.999);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(Histogram, ZeroObservations) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (const auto b : h.buckets()) EXPECT_EQ(b, 0u);
  // Merging an empty histogram is a no-op on the counts.
  Histogram other({1.0, 2.0});
  other.observe(1.5);
  other += h;
  EXPECT_EQ(other.count(), 1u);
}

TEST(Histogram, NegativeAndExtremeValues) {
  Histogram h({0.0, 10.0});
  h.observe(-1e300);
  h.observe(1e300);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), -1e300);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
}

// percentile() interpolates linearly inside the crossing bucket, so it is
// exact where the cumulative distribution touches a bucket edge.
TEST(Histogram, PercentileExactAtBucketEdges) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 observations in [10,20), 10 in [20,30): the CDF reaches 0.5 exactly
  // at edge 20 and 1.0 at edge 30.
  for (int i = 0; i < 10; ++i) h.observe(12.0);
  for (int i = 0; i < 10; ++i) h.observe(25.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 20.0);
  // Interior quantiles interpolate: 0.25 is halfway through bucket [10,20).
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 25.0);
}

TEST(Histogram, PercentileClampsToObservedRange) {
  Histogram h({10.0, 20.0});
  h.observe(14.0);
  h.observe(16.0);
  // q=0/1 return the tracked extremes, and no interior quantile can leave
  // [min, max] even though the bucket spans [10, 20).
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 14.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 16.0);
  EXPECT_GE(h.percentile(0.01), 14.0);
  EXPECT_LE(h.percentile(0.99), 16.0);
}

TEST(Histogram, PercentileOpenEndedBucketsUseTrackedExtremes) {
  Histogram h({10.0, 20.0});
  // All mass in the overflow bucket [20, inf): its missing right boundary
  // is the tracked max, so quantiles interpolate over [20, 100].
  h.observe(20.0);
  h.observe(100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 60.0);
  // All mass in underflow (-inf, 10): left boundary is the tracked min.
  Histogram u({10.0, 20.0});
  u.observe(2.0);
  u.observe(6.0);
  EXPECT_DOUBLE_EQ(u.percentile(0.5), 6.0);  // min + (10-min)/2
  EXPECT_DOUBLE_EQ(u.percentile(1.0), 6.0);
}

TEST(Histogram, PercentileEmptyReturnsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Histogram, SummaryMatchesPercentiles) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 1000; ++i) h.observe(1.5);
  h.observe(7.0);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 1001u);
  EXPECT_DOUBLE_EQ(s.p50, h.percentile(0.5));
  EXPECT_DOUBLE_EQ(s.p99, h.percentile(0.99));
  EXPECT_DOUBLE_EQ(s.p999, h.percentile(0.999));
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  // The single outlier only surfaces past p999's crossing point.
  EXPECT_LT(s.p99, 2.0);
}

// Quantiles of shard-merged registries must equal quantiles of the union
// of observations — the property the service relies on when it merges
// per-client latency histograms.
TEST(Histogram, MergedShardsGiveSameQuantilesAsUnion) {
  const std::vector<double> edges{10.0, 20.0, 40.0, 80.0};
  MetricsRegistry a, b, whole;
  Histogram* ha = a.histogram("lat", edges);
  Histogram* hb = b.histogram("lat", edges);
  Histogram* hw = whole.histogram("lat", edges);
  for (int i = 0; i < 100; ++i) {
    const double v = 10.0 + static_cast<double>(i);
    ((i % 2) ? ha : hb)->observe(v);
    hw->observe(v);
  }
  MetricsRegistry merged;
  merged += a;
  merged += b;
  const Histogram* hm = merged.find_histogram("lat");
  ASSERT_NE(hm, nullptr);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(hm->percentile(q), hw->percentile(q)) << q;
  }
}

TEST(HistogramDeathTest, RejectsBadEdges) {
  EXPECT_DEATH(Histogram(std::vector<double>{}), "edges");
  EXPECT_DEATH(Histogram({2.0, 1.0}), "ascending");
  EXPECT_DEATH(Histogram({1.0, 1.0}), "ascending");
}

TEST(HistogramDeathTest, MergeRejectsMismatchedEdges) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  EXPECT_DEATH(a += b, "edges");
}

// ---- registry ---------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter* c = reg.counter("a.count");
  EXPECT_EQ(reg.counter("a.count"), c);  // same handle on re-registration
  c->inc();
  // Handles survive a move of the registry (node-based storage).
  MetricsRegistry moved = std::move(reg);
  c->inc();
  EXPECT_EQ(moved.find_counter("a.count")->value(), 2u);
}

TEST(MetricsRegistry, FindWithoutCreation) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  EXPECT_TRUE(reg.empty());
  reg.gauge("g")->set(1.0);
  EXPECT_FALSE(reg.empty());
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryDeathTest, KindCollisionAborts) {
  MetricsRegistry a;
  a.counter("x");
  EXPECT_DEATH(a.gauge("x"), "x");
  MetricsRegistry b;
  b.gauge("x")->set(1.0);
  MetricsRegistry c;
  c.counter("x")->inc();
  EXPECT_DEATH(b += c, "x");
}

TEST(MetricsRegistryDeathTest, HistogramRedefinitionAborts) {
  MetricsRegistry reg;
  reg.histogram("h", {1.0, 2.0});
  EXPECT_DEATH(reg.histogram("h", {1.0, 3.0}), "h");
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.histogram("z.hist", {1.0})->observe(0.5);
  reg.counter("a.count")->inc();
  reg.gauge("m.gauge")->set(3.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.count");
  EXPECT_EQ(snap[1].name, "m.gauge");
  EXPECT_EQ(snap[2].name, "z.hist");
  EXPECT_EQ(snap[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(snap[1].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(snap[2].kind, MetricSample::Kind::kHistogram);
}

// ---- deterministic shard merge ----------------------------------------

// Populate one shard's registry from its trial range, mimicking how the
// exp engine gives every shard its own registry and merges in shard-index
// order. The per-trial updates depend only on the global trial index, so
// any sharding of [0, trials) must reduce to the same registry.
void run_shard(MetricsRegistry& reg, std::uint64_t first, std::uint64_t count) {
  Counter* events = reg.counter("t.events");
  Gauge* last = reg.gauge("t.last_trial");
  Histogram* spread = reg.histogram("t.spread", {8.0, 32.0, 128.0});
  for (std::uint64_t t = first; t < first + count; ++t) {
    events->inc(t % 3);
    last->set(static_cast<double>(t));
    spread->observe(static_cast<double>(t % 200));
  }
}

MetricsRegistry merged_over(std::uint64_t trials, std::uint64_t shards) {
  std::vector<MetricsRegistry> parts(shards);
  const std::uint64_t chunk = (trials + shards - 1) / shards;
  std::uint64_t first = 0;
  for (std::uint64_t s = 0; s < shards && first < trials; ++s) {
    const std::uint64_t count = std::min(chunk, trials - first);
    run_shard(parts[s], first, count);
    first += count;
  }
  MetricsRegistry total;
  for (auto& p : parts) total += p;  // shard-index order
  return total;
}

TEST(MetricsRegistry, ShardedMergeIsBitIdenticalFor1And2And8Shards) {
  const auto r1 = merged_over(1000, 1);
  const auto r2 = merged_over(1000, 2);
  const auto r8 = merged_over(1000, 8);
  // The rendered artifact is the strongest equality we can assert — it
  // covers every counter value, gauge value/sample count, bucket count
  // and double sum bit-for-bit (json_number is round-trip exact).
  const std::string j1 = exp::metrics_to_json(r1).str();
  EXPECT_EQ(j1, exp::metrics_to_json(r2).str());
  EXPECT_EQ(j1, exp::metrics_to_json(r8).str());
  EXPECT_EQ(r1.find_counter("t.events")->value(), 999u);
  EXPECT_DOUBLE_EQ(r1.find_gauge("t.last_trial")->value(), 999.0);
  EXPECT_EQ(r1.find_histogram("t.spread")->count(), 1000u);
}

TEST(MetricsRegistry, MergeUnionsDisjointNames) {
  MetricsRegistry a, b;
  a.counter("only.a")->inc(5);
  b.counter("only.b")->inc(7);
  b.histogram("only.b.hist", {1.0})->observe(2.0);
  a += b;
  EXPECT_EQ(a.find_counter("only.a")->value(), 5u);
  EXPECT_EQ(a.find_counter("only.b")->value(), 7u);
  EXPECT_EQ(a.find_histogram("only.b.hist")->overflow(), 1u);
}

// The end-to-end acceptance property: the Monte-Carlo experiment's merged
// registry (riding inside McResult through the real thread pool) renders
// identically for 1 and 8 threads.
TEST(MetricsRegistry, EngineMergedMetricsIdenticalAcrossThreadCounts) {
  reliability::McConfig cfg;
  cfg.cache.num_lines = 1ull << 12;
  cfg.cache.group_size = 64;
  cfg.cache.ber = 2e-4;
  cfg.level = SudokuLevel::kX;
  cfg.max_intervals = 120;
  cfg.seed = 42;
  const auto r1 = exp::run_montecarlo_parallel(cfg, {.threads = 1, .chunk = 16});
  const auto r8 = exp::run_montecarlo_parallel(cfg, {.threads = 8, .chunk = 16});
#if SUDOKU_OBS_ENABLED
  ASSERT_FALSE(r1.metrics.empty());
  EXPECT_GT(r1.metrics.find_counter("mc.intervals")->value(), 0u);
#endif
  EXPECT_EQ(exp::metrics_to_json(r1.metrics).str(),
            exp::metrics_to_json(r8.metrics).str());
}

// ---- snapshot -> JSON round trip --------------------------------------

TEST(MetricsIo, RendersEveryKindWithExactValues) {
  MetricsRegistry reg;
  reg.counter("c")->inc(7);
  reg.gauge("g")->set(2.5);
  Histogram* h = reg.histogram("h", {1.0, 2.0});
  h->observe(0.5);
  h->observe(1.5);
  h->observe(3.5);
  const std::string json = exp::metrics_to_json(reg).str();
  EXPECT_EQ(json,
            "{\"c\":7,"
            "\"g\":{\"gauge\":2.5,\"samples\":1},"
            "\"h\":{\"edges\":[1,2],\"buckets\":[1,1,1],\"count\":3,"
            "\"sum\":5.5,\"min\":0.5,\"max\":3.5}}");
}

TEST(MetricsIo, EmptyHistogramOmitsMinMax) {
  MetricsRegistry reg;
  reg.histogram("h", {1.0});
  const std::string json = exp::metrics_to_json(reg).str();
  EXPECT_EQ(json, "{\"h\":{\"edges\":[1],\"buckets\":[0,0],\"count\":0,\"sum\":0}}");
}

TEST(MetricsIo, EmptyRegistryRendersEmptyObject) {
  MetricsRegistry reg;
  EXPECT_EQ(exp::metrics_to_json(reg).str(), "{}");
}

// ---- macros -----------------------------------------------------------

TEST(ObsMacros, NullHandlesAreSafe) {
  Counter* c = nullptr;
  Gauge* g = nullptr;
  Histogram* h = nullptr;
  OBS_INC(c);
  OBS_ADD(c, 5);
  OBS_SET(g, 1.0);
  OBS_OBSERVE(h, 1.0);
  SUCCEED();  // detached instrumentation must be a no-op, not a crash
}

TEST(ObsMacros, LiveHandlesRecord) {
  MetricsRegistry reg;
  Counter* c = reg.counter("m.c");
  Histogram* h = reg.histogram("m.h", {10.0});
  OBS_INC(c);
  OBS_ADD(c, 2);
  OBS_OBSERVE(h, 3.0);
#if SUDOKU_OBS_ENABLED
  EXPECT_EQ(c->value(), 3u);
  EXPECT_EQ(h->count(), 1u);
#else
  EXPECT_EQ(c->value(), 0u);  // macros compiled out
  EXPECT_EQ(h->count(), 0u);
#endif
}

}  // namespace
}  // namespace sudoku::obs
