#include "cache/cache_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sudoku::cache {
namespace {

CacheConfig tiny_config() {
  CacheConfig c;
  c.size_bytes = 64 * 1024;  // 64 KB: 128 sets × 8 ways
  return c;
}

TEST(CacheModel, GeometryMatchesTableVI) {
  CacheConfig c;  // defaults = paper's LLC
  EXPECT_EQ(c.num_lines(), 1u << 20);
  EXPECT_EQ(c.num_sets(), 131072u);
  EXPECT_EQ(c.ways, 8u);
}

TEST(CacheModel, FirstAccessMissesThenHits) {
  CacheModel cache(tiny_config());
  const auto miss = cache.access(0x1000, false);
  EXPECT_FALSE(miss.hit);
  const auto hit = cache.access(0x1000, false);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.line_index, miss.line_index);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheModel, SameLineDifferentBytesHit) {
  CacheModel cache(tiny_config());
  cache.access(0x1000, false);
  EXPECT_TRUE(cache.access(0x103F, false).hit);   // same 64 B block
  EXPECT_FALSE(cache.access(0x1040, false).hit);  // next block
}

TEST(CacheModel, LruEvictsOldest) {
  CacheConfig cfg = tiny_config();
  CacheModel cache(cfg);
  // Fill one set (ways + 1 distinct tags mapping to set 0).
  const std::uint64_t set_stride = cfg.num_sets() * cfg.line_bytes;
  for (std::uint32_t i = 0; i <= cfg.ways; ++i) {
    cache.access(i * set_stride, false);
  }
  // Tag 0 was oldest and must be gone; tag 1..ways still resident.
  EXPECT_FALSE(cache.contains(0));
  for (std::uint32_t i = 1; i <= cfg.ways; ++i) {
    EXPECT_TRUE(cache.contains(i * set_stride)) << i;
  }
}

TEST(CacheModel, TouchRefreshesLru) {
  CacheConfig cfg = tiny_config();
  CacheModel cache(cfg);
  const std::uint64_t set_stride = cfg.num_sets() * cfg.line_bytes;
  for (std::uint32_t i = 0; i < cfg.ways; ++i) cache.access(i * set_stride, false);
  cache.access(0, false);                       // refresh tag 0
  cache.access(cfg.ways * set_stride, false);   // evicts tag 1, not 0
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(set_stride));
}

TEST(CacheModel, DirtyEvictionSignalsWriteback) {
  CacheConfig cfg = tiny_config();
  CacheModel cache(cfg);
  const std::uint64_t set_stride = cfg.num_sets() * cfg.line_bytes;
  cache.access(0, true);  // dirty
  for (std::uint32_t i = 1; i <= cfg.ways; ++i) {
    const auto res = cache.access(i * set_stride, false);
    if (i == cfg.ways) {
      EXPECT_TRUE(res.writeback);
      EXPECT_EQ(res.victim_addr, 0u);
    } else {
      EXPECT_FALSE(res.writeback);
    }
  }
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheModel, CleanEvictionNoWriteback) {
  CacheConfig cfg = tiny_config();
  CacheModel cache(cfg);
  const std::uint64_t set_stride = cfg.num_sets() * cfg.line_bytes;
  for (std::uint32_t i = 0; i <= cfg.ways; ++i) {
    EXPECT_FALSE(cache.access(i * set_stride, false).writeback);
  }
}

TEST(CacheModel, WriteHitMarksDirty) {
  CacheConfig cfg = tiny_config();
  CacheModel cache(cfg);
  const std::uint64_t set_stride = cfg.num_sets() * cfg.line_bytes;
  cache.access(0, false);      // clean fill
  cache.access(0, true);       // write hit -> dirty
  for (std::uint32_t i = 1; i <= cfg.ways; ++i) cache.access(i * set_stride, false);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheModel, LineIndexStableAndInRange) {
  CacheConfig cfg = tiny_config();
  CacheModel cache(cfg);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t addr = rng.next_below(1u << 26);
    const auto res = cache.access(addr, rng.next_bool(0.3));
    EXPECT_LT(res.line_index, cfg.num_lines());
  }
}

TEST(CacheModel, HitRateHighForSmallFootprint) {
  CacheModel cache(tiny_config());
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) {
    cache.access(rng.next_below(32 * 1024) & ~63ull, false);  // fits in half
  }
  EXPECT_GT(cache.stats().hit_rate(), 0.95);
}

TEST(CacheModel, HitRateLowForHugeFootprint) {
  CacheModel cache(tiny_config());
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    cache.access(rng.next_below(1u << 28) & ~63ull, false);  // 4096x cache
  }
  EXPECT_LT(cache.stats().hit_rate(), 0.05);
}

TEST(CacheModel, BankMappingCoversAllBanks) {
  CacheConfig cfg = tiny_config();
  CacheModel cache(cfg);
  std::vector<int> seen(cfg.banks, 0);
  for (std::uint64_t line = 0; line < 1024; ++line) {
    ++seen[cache.bank_of(line * cfg.line_bytes)];
  }
  for (const auto s : seen) EXPECT_EQ(s, 1024 / static_cast<int>(cfg.banks));
}

}  // namespace
}  // namespace sudoku::cache
