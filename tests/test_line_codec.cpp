#include "sudoku/line_codec.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace sudoku {
namespace {

BitVec random_data(Rng& rng) {
  BitVec d(LineCodec::kDataBits);
  auto w = d.words();
  for (auto& word : w) word = rng.next_u64();
  return d;
}

TEST(LineCodec, LayoutMatchesPaper) {
  // 512 data + 31 CRC + 10 ECC = 553 bits; 43 bits of overhead per line vs
  // 60 for ECC-6 (the "30% less storage" headline, before PLT amortization).
  LineCodec codec;
  EXPECT_EQ(LineCodec::kDataBits, 512u);
  EXPECT_EQ(LineCodec::kCrcBits, 31u);
  EXPECT_EQ(codec.ecc_bits(), 10u);
  EXPECT_EQ(codec.total_bits(), 553u);
}

TEST(LineCodec, EncodeDecodeRoundTrip) {
  Rng rng(1);
  LineCodec codec;
  for (int t = 0; t < 20; ++t) {
    const BitVec data = random_data(rng);
    const BitVec stored = codec.encode(data);
    EXPECT_TRUE(codec.fully_clean(stored));
    EXPECT_TRUE(codec.crc_ok(stored));
    EXPECT_EQ(codec.extract_data(stored), data);
  }
}

TEST(LineCodec, CleanLineReportsClean) {
  Rng rng(2);
  LineCodec codec;
  BitVec stored = codec.encode(random_data(rng));
  EXPECT_EQ(codec.check_and_correct(stored), LineCodec::LineState::kClean);
}

TEST(LineCodec, CorrectsSingleBitAnywhere) {
  // Paper §III-E: ECC over data+CRC corrects a single fault in data, CRC,
  // or the ECC bits themselves.
  Rng rng(3);
  LineCodec codec;
  const BitVec data = random_data(rng);
  const BitVec good = codec.encode(data);
  for (std::uint32_t i = 0; i < codec.total_bits(); ++i) {
    BitVec bad = good;
    bad.flip(i);
    EXPECT_EQ(codec.check_and_correct(bad), LineCodec::LineState::kCorrected) << i;
    EXPECT_EQ(bad, good);
  }
}

TEST(LineCodec, TwoBitFaultsAreUncorrectableButDetected) {
  Rng rng(4);
  LineCodec codec;
  const BitVec good = codec.encode(random_data(rng));
  for (int t = 0; t < 2000; ++t) {
    const auto i = rng.next_below(codec.total_bits());
    auto j = rng.next_below(codec.total_bits());
    while (j == i) j = rng.next_below(codec.total_bits());
    BitVec bad = good;
    bad.flip(i);
    bad.flip(j);
    EXPECT_EQ(codec.check_and_correct(bad), LineCodec::LineState::kUncorrectable);
    // The line must be left untouched for RAID/SDR to work on.
    BitVec expect = good;
    expect.flip(i);
    expect.flip(j);
    EXPECT_EQ(bad, expect);
  }
}

TEST(LineCodec, MultiBitFaultsUpToSevenDetected) {
  // CRC-31 detection claim: odd counts are guaranteed by the (x+1) factor;
  // even counts alias with ~2^-31 — sampled patterns must all be flagged.
  Rng rng(5);
  LineCodec codec;
  const BitVec good = codec.encode(random_data(rng));
  for (int faults = 3; faults <= 7; ++faults) {
    for (int t = 0; t < 400; ++t) {
      BitVec bad = good;
      std::set<std::uint64_t> used;
      while (static_cast<int>(used.size()) < faults) {
        const auto pos = rng.next_below(codec.total_bits());
        if (used.insert(pos).second) bad.flip(pos);
      }
      ASSERT_EQ(codec.check_and_correct(bad), LineCodec::LineState::kUncorrectable)
          << faults << " faults silently accepted";
    }
  }
}

TEST(LineCodec, CrcOkIgnoresEccBits) {
  // crc_ok is the paper's 1-cycle read check: it validates data vs CRC
  // field only. A fault in the ECC region leaves crc_ok true.
  Rng rng(6);
  LineCodec codec;
  BitVec stored = codec.encode(random_data(rng));
  stored.flip(codec.total_bits() - 1);  // ECC bit
  EXPECT_TRUE(codec.crc_ok(stored));
  EXPECT_FALSE(codec.fully_clean(stored));
  // ...and the scrub path fixes it.
  EXPECT_EQ(codec.check_and_correct(stored), LineCodec::LineState::kCorrected);
}

TEST(LineCodec, SdrPrimitiveFlipThenCorrect) {
  // Flip one of two faulty bits (position known from parity mismatch):
  // ECC-1 + CRC must then fully repair the line.
  Rng rng(7);
  LineCodec codec;
  const BitVec good = codec.encode(random_data(rng));
  for (int t = 0; t < 500; ++t) {
    const auto i = rng.next_below(codec.total_bits());
    auto j = rng.next_below(codec.total_bits());
    while (j == i) j = rng.next_below(codec.total_bits());
    BitVec bad = good;
    bad.flip(i);
    bad.flip(j);
    bad.flip(i);  // SDR's trial flip at a mismatch position
    EXPECT_EQ(codec.check_and_correct(bad), LineCodec::LineState::kCorrected);
    EXPECT_EQ(bad, good);
  }
}

TEST(LineCodec, WrongTrialFlipLeavesLineUncorrectable) {
  // SDR flips a mismatch position belonging to the *other* faulty line:
  // this line then has three faults and must still be flagged.
  Rng rng(8);
  LineCodec codec;
  const BitVec good = codec.encode(random_data(rng));
  for (int t = 0; t < 500; ++t) {
    std::set<std::uint64_t> used;
    while (used.size() < 3) used.insert(rng.next_below(codec.total_bits()));
    BitVec bad = good;
    for (const auto p : used) bad.flip(p);
    EXPECT_EQ(codec.check_and_correct(bad), LineCodec::LineState::kUncorrectable);
  }
}

TEST(LineCodec, DistinctDataYieldsDistinctCodewords) {
  Rng rng(9);
  LineCodec codec;
  const BitVec a = random_data(rng);
  BitVec b = a;
  b.flip(100);
  EXPECT_NE(codec.encode(a), codec.encode(b));
}

}  // namespace
}  // namespace sudoku
