#include "codes/gf2m.h"

#include <gtest/gtest.h>

namespace sudoku {
namespace {

TEST(GF2m, FieldSizes) {
  GF2m f8(8);
  EXPECT_EQ(f8.size(), 256u);
  EXPECT_EQ(f8.order(), 255u);
  GF2m f10(10);
  EXPECT_EQ(f10.size(), 1024u);
}

TEST(GF2m, AlphaGeneratesWholeField) {
  GF2m f(8);
  std::vector<bool> seen(256, false);
  for (std::uint32_t e = 0; e < f.order(); ++e) {
    const auto v = f.alpha_pow(e);
    ASSERT_NE(v, 0u);
    ASSERT_FALSE(seen[v]) << "alpha^" << e << " repeats";
    seen[v] = true;
  }
}

TEST(GF2m, MultiplicationByZeroAndOne) {
  GF2m f(10);
  for (std::uint32_t a : {0u, 1u, 5u, 1023u}) {
    EXPECT_EQ(f.mul(a, 0), 0u);
    EXPECT_EQ(f.mul(0, a), 0u);
    EXPECT_EQ(f.mul(a, 1), a);
  }
}

TEST(GF2m, MultiplicationCommutesAndAssociates) {
  GF2m f(8);
  for (std::uint32_t a = 1; a < 256; a += 17) {
    for (std::uint32_t b = 1; b < 256; b += 13) {
      EXPECT_EQ(f.mul(a, b), f.mul(b, a));
      for (std::uint32_t c = 1; c < 256; c += 31) {
        EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
      }
    }
  }
}

TEST(GF2m, DistributesOverAddition) {
  GF2m f(8);
  for (std::uint32_t a = 1; a < 256; a += 7) {
    for (std::uint32_t b = 0; b < 256; b += 11) {
      for (std::uint32_t c = 0; c < 256; c += 13) {
        EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
      }
    }
  }
}

TEST(GF2m, InverseIsTwoSided) {
  GF2m f(10);
  for (std::uint32_t a = 1; a < 1024; a += 37) {
    const auto inv = f.inv(a);
    EXPECT_EQ(f.mul(a, inv), 1u);
    EXPECT_EQ(f.mul(inv, a), 1u);
  }
}

TEST(GF2m, DivisionInvertsMultiplication) {
  GF2m f(8);
  for (std::uint32_t a = 0; a < 256; a += 5) {
    for (std::uint32_t b = 1; b < 256; b += 9) {
      EXPECT_EQ(f.div(f.mul(a, b), b), a);
    }
  }
}

TEST(GF2m, PowMatchesRepeatedMul) {
  GF2m f(8);
  const std::uint32_t a = 0x53;
  std::uint32_t acc = 1;
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(f.pow(a, e), acc);
    acc = f.mul(acc, a);
  }
}

TEST(GF2m, PowOfZero) {
  GF2m f(8);
  EXPECT_EQ(f.pow(0, 0), 1u);
  EXPECT_EQ(f.pow(0, 5), 0u);
}

TEST(GF2m, FrobeniusFixedField) {
  // x^(2^m) == x for all field elements.
  GF2m f(8);
  for (std::uint32_t a = 0; a < 256; ++a) {
    EXPECT_EQ(f.pow(a, 256), a);
  }
}

}  // namespace
}  // namespace sudoku
