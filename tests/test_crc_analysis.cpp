#include "codes/crc_analysis.h"

#include <gtest/gtest.h>

namespace sudoku {
namespace {

TEST(CrcAnalysis, AgreesWithRealCrcOnSampledPatterns) {
  // The analysis predicts zero undetected weight-2 patterns; confirm by
  // computing the real CRC on a sample of them (the analysis itself is
  // signature-based, so this cross-checks the linearity reduction).
  Crc31 crc;
  CrcAnalysis analysis(crc, 512);
  ASSERT_EQ(analysis.count_undetected_exhaustive(2), 0u);
  Rng rng(1);
  BitVec data(512);
  for (int i = 0; i < 512; ++i)
    if (rng.next_bool(0.5)) data.set(i);
  const std::uint32_t good = crc.compute(data);
  for (int trial = 0; trial < 500; ++trial) {
    BitVec bad = data;
    const auto i = rng.next_below(512);
    auto j = rng.next_below(512);
    while (j == i) j = rng.next_below(512);
    bad.flip(i);
    bad.flip(j);
    ASSERT_NE(crc.compute(bad), good);
  }
}

TEST(CrcAnalysis, DetectsAllOddWeightsStructurally) {
  Crc31 crc;
  CrcAnalysis analysis(crc, 512);
  EXPECT_TRUE(analysis.detects_all_odd_weights());
}

TEST(CrcAnalysis, NoUndetectedWeightOneOrTwo) {
  Crc31 crc;
  CrcAnalysis analysis(crc, 512);
  EXPECT_EQ(analysis.count_undetected_exhaustive(1), 0u);
  EXPECT_EQ(analysis.count_undetected_exhaustive(2), 0u);
}

TEST(CrcAnalysis, VerifiedMinimumDistanceAtLeastFour) {
  // Exhaustive through weight 3: the (x+1)·primitive construction gives
  // HD >= 4 at our lengths (odd weights are free; weight 2 needs the
  // primitive part to repeat within 2^30-1 positions, impossible here).
  Crc31 crc;
  CrcAnalysis analysis(crc, 512);
  EXPECT_GE(analysis.verified_minimum_distance(3), 3);
}

TEST(CrcAnalysis, SampledHighWeightsRarelyEvade) {
  // Weights 5 and 7 are odd: guaranteed detection. Weights 6 and 8:
  // misdetection ~2^-31 per pattern; thousands of samples find none.
  Crc31 crc;
  CrcAnalysis analysis(crc, 512);
  Rng rng(2);
  EXPECT_EQ(analysis.count_undetected_sampled(5, 5000, rng), 0u);
  EXPECT_EQ(analysis.count_undetected_sampled(7, 5000, rng), 0u);
  EXPECT_EQ(analysis.count_undetected_sampled(6, 20000, rng), 0u);
  EXPECT_EQ(analysis.count_undetected_sampled(8, 20000, rng), 0u);
}

TEST(CrcAnalysis, WeakPolynomialIsExposed) {
  // A deliberately degenerate generator: x^31 + x = x·(x^30 + 1). It still
  // contains the (x+1) factor (even term count), but x has order 30 in the
  // quotient, so any two flipped bits 30 positions apart cancel — the
  // analysis must expose those undetected weight-2 patterns.
  Crc31 weak((1ull << 31) | (1ull << 1));  // x^31 + x
  CrcAnalysis analysis(weak, 512);
  EXPECT_TRUE(analysis.detects_all_odd_weights());
  // Undetected weight-2 patterns exist for this degenerate generator.
  EXPECT_GT(analysis.count_undetected_exhaustive(2), 0u);
}

TEST(CrcAnalysis, StoredCrcFieldCoveredByAnalysis) {
  Crc31 crc;
  CrcAnalysis analysis(crc, 512);
  EXPECT_EQ(analysis.total_bits(), 543u);
}

}  // namespace
}  // namespace sudoku
