// Composable fault-scenario engine (src/faults/scenario.h): determinism
// contract, per-kind semantics, JSON round-trip, and the end-to-end MC
// integration (mixed faults with bit-identical shard splits).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "baselines/ecck_cache.h"
#include "baselines/mc_runner.h"
#include "faults/scenario.h"
#include "reliability/montecarlo.h"
#include "sudoku/controller.h"

namespace sudoku::faults {
namespace {

Geometry sudoku_geometry(std::uint64_t num_lines = 1024) {
  SudokuConfig cfg;
  cfg.geo.num_lines = num_lines;
  cfg.geo.group_size = 32;
  SudokuController ctrl(cfg);
  return {num_lines, ctrl.codec().total_bits()};
}

bool batches_equal(const FaultBatch& a, const FaultBatch& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [unit, bits] : a) {
    const auto it = b.find(unit);
    if (it == b.end() || it->second != bits) return false;
  }
  return true;
}

TEST(FaultScenario, SameSpecSeedGeometryIsBitIdentical) {
  const Geometry geo = sudoku_geometry();
  const ScenarioSpec spec = ScenarioSpec::builtin("mixed");
  const FaultScenario a(spec, geo, 42);
  const FaultScenario b(spec, geo, 42);
  ASSERT_EQ(a.fingerprint(), b.fingerprint());
  for (std::uint64_t t = 0; t < 50; ++t) {
    ScenarioTick ta, tb;
    EXPECT_TRUE(batches_equal(a.transient(t, &ta), b.transient(t, &tb))) << t;
    EXPECT_EQ(ta.transient_bits, tb.transient_bits);
    EXPECT_EQ(ta.cluster_events, tb.cluster_events);
    EXPECT_EQ(a.stuck(t).cells(), b.stuck(t).cells()) << t;
  }
}

TEST(FaultScenario, QueriesAreOrderIndependent) {
  // A shard starting at t=30 sees exactly what a full run sees there.
  const Geometry geo = sudoku_geometry();
  const FaultScenario s(ScenarioSpec::builtin("mixed"), geo, 7);
  ScenarioTick tick;
  const FaultBatch late_first = s.transient(30, &tick);
  for (std::uint64_t t = 0; t < 30; ++t) (void)s.transient(t);
  EXPECT_TRUE(batches_equal(late_first, s.transient(30)));
}

TEST(FaultScenario, FingerprintSeparatesSeedGeometryAndSpec) {
  const Geometry geo = sudoku_geometry();
  const ScenarioSpec spec = ScenarioSpec::builtin("stuck");
  const FaultScenario base(spec, geo, 1);
  EXPECT_NE(base.fingerprint(), FaultScenario(spec, geo, 2).fingerprint());
  const Geometry geo2 = sudoku_geometry(2048);
  EXPECT_NE(base.fingerprint(), FaultScenario(spec, geo2, 1).fingerprint());
  EXPECT_NE(base.fingerprint(),
            FaultScenario(ScenarioSpec::builtin("iid"), geo, 1).fingerprint());
}

TEST(FaultScenario, StuckAtCellsAreConstantOverTime) {
  const Geometry geo = sudoku_geometry();
  ScenarioSpec spec;
  spec.name = "stuck-only";
  SourceSpec src;
  src.kind = SourceKind::kStuckAt;
  src.cells = 20;
  spec.sources.push_back(src);
  const FaultScenario s(spec, geo, 9);
  const auto first = s.stuck(0).cells();
  ASSERT_EQ(first.size(), 20u);
  for (std::uint64_t t : {1ull, 13ull, 999ull}) {
    EXPECT_EQ(s.stuck(t).cells(), first) << t;
  }
  EXPECT_TRUE(s.has_stuck_sources());
  EXPECT_TRUE(s.transient(5).empty());  // no transient sources
}

TEST(FaultScenario, IntermittentDutyCycleActivatesCellsPeriodically) {
  const Geometry geo = sudoku_geometry();
  ScenarioSpec spec;
  spec.name = "blink";
  SourceSpec src;
  src.kind = SourceKind::kIntermittent;
  src.cells = 8;
  src.period = 6;
  src.active = 2;
  spec.sources.push_back(src);
  const FaultScenario s(spec, geo, 3);

  // Each cell must be stuck in exactly `active` out of every `period`
  // consecutive intervals, and the duty cycle must repeat.
  std::set<std::pair<std::uint64_t, std::uint32_t>> seen;
  std::uint64_t active_cell_intervals = 0;
  for (std::uint64_t t = 0; t < src.period; ++t) {
    const auto cells = s.stuck(t).cells();
    active_cell_intervals += cells.size();
    for (const auto& c : cells) seen.insert({c.unit, c.bit});
    EXPECT_EQ(s.stuck(t + src.period).cells(), cells) << t;
  }
  EXPECT_EQ(active_cell_intervals, 8u * src.active);
  EXPECT_EQ(seen.size(), 8u);  // every cell was active at some point
}

TEST(FaultScenario, WeibullPopulationGrowsMonotonically) {
  const Geometry geo = sudoku_geometry();
  ScenarioSpec spec;
  spec.name = "wearout";
  SourceSpec src;
  src.kind = SourceKind::kWeibull;
  src.cells = 32;
  src.weibull_k = 2.0;
  src.weibull_scale = 50.0;
  spec.sources.push_back(src);
  const FaultScenario s(spec, geo, 5);

  std::size_t prev = 0;
  for (std::uint64_t t = 0; t < 400; t += 20) {
    const std::size_t now = s.stuck(t).cells().size();
    EXPECT_GE(now, prev) << "wear-out must be monotone at t=" << t;
    prev = now;
  }
  // By 8x the characteristic life essentially the whole population is dead.
  EXPECT_EQ(s.stuck(400).cells().size(), 32u);
  EXPECT_LT(s.stuck(0).cells().size(), 32u);
}

TEST(FaultScenario, ClusterEventsRespectShapeAndGeometry) {
  const Geometry geo{128, 64};
  ScenarioSpec spec;
  spec.name = "rows";
  SourceSpec src;
  src.kind = SourceKind::kCluster;
  src.events_per_interval = 2.0;
  src.shape = ClusterShape::kRow;
  src.span_bits = 9;
  spec.sources.push_back(src);
  const FaultScenario s(spec, geo, 11);

  std::uint64_t events = 0;
  for (std::uint64_t t = 0; t < 200; ++t) {
    ScenarioTick tick;
    const auto batch = s.transient(t, &tick);
    events += tick.cluster_events;
    for (const auto& [unit, bits] : batch) {
      ASSERT_LT(unit, geo.num_units);
      ASSERT_FALSE(bits.empty());
      ASSERT_TRUE(std::is_sorted(bits.begin(), bits.end()));
      for (const auto bit : bits) ASSERT_LT(bit, geo.bits_per_unit);
      // A single row event is confined to one unit and spans at most
      // span_bits consecutive bits (possibly clipped at the unit edge).
      // Intervals with multiple events can overlap in a unit, so only
      // single-event intervals pin the footprint.
      if (tick.cluster_events == 1) {
        EXPECT_LE(bits.back() - bits.front() + 1, src.span_bits);
      }
    }
  }
  EXPECT_GT(events, 0u);
}

TEST(FaultScenario, ColumnClusterHitsSameBitAcrossUnits) {
  const Geometry geo{64, 32};
  ScenarioSpec spec;
  spec.name = "cols";
  SourceSpec src;
  src.kind = SourceKind::kCluster;
  src.events_per_interval = 1.0;
  src.shape = ClusterShape::kCol;
  src.span_units = 5;
  spec.sources.push_back(src);
  const FaultScenario s(spec, geo, 13);

  bool saw_multi_unit = false;
  for (std::uint64_t t = 0; t < 100; ++t) {
    ScenarioTick tick;
    const auto batch = s.transient(t, &tick);
    if (tick.cluster_events != 1 || batch.size() < 2) continue;
    saw_multi_unit = true;
    // One column event: every touched unit has the same single bit set.
    const std::uint32_t bit = batch.begin()->second.front();
    for (const auto& [unit, bits] : batch) {
      EXPECT_EQ(bits.size(), 1u);
      EXPECT_EQ(bits.front(), bit);
    }
  }
  EXPECT_TRUE(saw_multi_unit);
}

TEST(FaultScenario, ThermalRampRaisesFaultRate) {
  const Geometry geo = sudoku_geometry();
  ScenarioSpec spec;
  spec.name = "ramp";
  SourceSpec src;
  src.kind = SourceKind::kThermal;
  src.delta_start = 35.0;
  src.delta_end = 29.0;  // hotter end of the ramp = smaller Δ = more faults
  src.ramp_intervals = 100;
  spec.sources.push_back(src);
  const FaultScenario s(spec, geo, 17);

  std::uint64_t early = 0, late = 0;
  for (std::uint64_t t = 0; t < 30; ++t) {
    ScenarioTick tick;
    (void)s.transient(t, &tick);
    early += tick.transient_bits;
    (void)s.transient(t + 100, &tick);  // past the ramp: steady hot state
    late += tick.transient_bits;
  }
  EXPECT_GT(late, early);
}

TEST(FaultScenario, XorMergeCancelsDoubleFlips) {
  // Two identical overlapping cluster sources: every event pair flipping
  // the same footprint cancels to nothing. Seeded identically they always
  // coincide, so the merged batch must be empty whenever both fire alike.
  // (We can't force coincidence from the outside, so this just pins that
  // the merge path never produces a bit listed twice.)
  const Geometry geo{64, 32};
  ScenarioSpec spec;
  spec.name = "pair";
  SourceSpec src;
  src.kind = SourceKind::kIid;
  src.ber = 0.02;
  spec.sources.push_back(src);
  spec.sources.push_back(src);
  const FaultScenario s(spec, geo, 19);
  for (std::uint64_t t = 0; t < 50; ++t) {
    const auto batch = s.transient(t);
    for (const auto& [unit, bits] : batch) {
      ASSERT_TRUE(std::adjacent_find(bits.begin(), bits.end()) == bits.end());
    }
  }
}

TEST(ScenarioSpec, JsonRoundTripPreservesSpec) {
  for (const auto& name : ScenarioSpec::builtin_names()) {
    const ScenarioSpec spec = ScenarioSpec::builtin(name);
    std::string error;
    const auto parsed = ScenarioSpec::parse(spec.to_json(), &error);
    ASSERT_TRUE(parsed.has_value()) << name << ": " << error;
    EXPECT_EQ(*parsed, spec) << name;
  }
}

TEST(ScenarioSpec, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ScenarioSpec::parse("[]", &error).has_value());
  EXPECT_FALSE(
      ScenarioSpec::parse(R"({"name":"x","sources":[{"kind":"martian"}]})",
                          &error)
          .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ScenarioSpec, BuiltinNamesCoverTheMatrix) {
  const auto names = ScenarioSpec::builtin_names();
  EXPECT_GE(names.size(), 7u);
  for (const auto& name : names) {
    EXPECT_FALSE(ScenarioSpec::builtin(name).sources.empty()) << name;
  }
}

TEST(AssertCells, IsIdempotent) {
  SttramArray array(8, 64);
  const std::vector<StuckCell> cells = {{1, 3, true}, {1, 7, false}, {5, 63, true}};
  assert_cells(array, cells);
  const BitVec line1 = array.read_line(1);
  const BitVec line5 = array.read_line(5);
  assert_cells(array, cells);
  EXPECT_TRUE(array.line_equals(1, line1));
  EXPECT_TRUE(array.line_equals(5, line5));
  EXPECT_TRUE(array.test(1, 3));
  EXPECT_FALSE(array.test(1, 7));
  EXPECT_TRUE(array.test(5, 63));
}

TEST(ActiveStuck, EqualOutsideStuckMasksOnlyStuckPositions) {
  ActiveStuck stuck(std::vector<StuckCell>{{2, 4, true}, {2, 9, false}});
  BitVec golden(16);
  golden.set(1);
  BitVec stored = golden;
  stored.set(4);  // differs only at the stuck position
  EXPECT_TRUE(stuck.equal_outside_stuck(2, stored, golden));
  stored.set(11);  // a genuine divergence
  EXPECT_FALSE(stuck.equal_outside_stuck(2, stored, golden));
  // A unit with no stuck cells degenerates to plain equality.
  EXPECT_FALSE(stuck.equal_outside_stuck(3, stored, golden));
  EXPECT_TRUE(stuck.equal_outside_stuck(3, golden, golden));
}

// ---- MC integration -------------------------------------------------------

TEST(ScenarioMc, StuckOnlyScenarioIsFullyToleratedBySudokuX) {
  // §VI: a sparse population of permanent cells is corrected on every
  // scrub — no DUEs, no SDC, and the fault never "heals".
  reliability::McConfig cfg;
  cfg.cache.num_lines = 1024;
  cfg.cache.group_size = 32;
  cfg.level = SudokuLevel::kX;
  cfg.max_intervals = 64;
  cfg.seed = 21;
  cfg.per_trial_seed_streams = true;

  ScenarioSpec spec;
  spec.name = "stuck-sparse";
  SourceSpec src;
  src.kind = SourceKind::kStuckAt;
  src.cells = 16;
  spec.sources.push_back(src);
  const FaultScenario scenario(spec, sudoku_geometry(1024), cfg.seed);
  cfg.scenario = &scenario;

  const auto result = reliability::run_montecarlo(cfg);
  EXPECT_EQ(result.intervals, 64u);
  EXPECT_EQ(result.due_lines, 0u);
  EXPECT_EQ(result.sdc_lines, 0u);
  EXPECT_GT(result.ecc1_corrections, 0u);
}

TEST(ScenarioMc, ShardSplitIsBitIdenticalToMonolithicRun) {
  const Geometry geo = sudoku_geometry(1024);
  const FaultScenario scenario(ScenarioSpec::builtin("mixed"), geo, 33);

  reliability::McConfig cfg;
  cfg.cache.num_lines = 1024;
  cfg.cache.group_size = 32;
  cfg.level = SudokuLevel::kZ;
  cfg.seed = 33;
  cfg.per_trial_seed_streams = true;
  cfg.scenario = &scenario;

  cfg.max_intervals = 40;
  cfg.first_trial = 0;
  const auto whole = reliability::run_montecarlo(cfg);

  cfg.max_intervals = 25;
  auto merged = reliability::run_montecarlo(cfg);
  cfg.first_trial = 25;
  cfg.max_intervals = 15;
  merged += reliability::run_montecarlo(cfg);

  EXPECT_EQ(whole.intervals, merged.intervals);
  EXPECT_EQ(whole.faults_injected, merged.faults_injected);
  EXPECT_EQ(whole.ecc1_corrections, merged.ecc1_corrections);
  EXPECT_EQ(whole.raid4_repairs, merged.raid4_repairs);
  EXPECT_EQ(whole.sdr_repairs, merged.sdr_repairs);
  EXPECT_EQ(whole.due_lines, merged.due_lines);
  EXPECT_EQ(whole.sdc_lines, merged.sdc_lines);
  EXPECT_EQ(whole.failure_intervals, merged.failure_intervals);
}

TEST(ScenarioMc, BaselineRunnerShardSplitMatchesToo) {
  baselines::EccKCache cache(256, 4);
  const Geometry geo{cache.num_units(), cache.bits_per_unit()};
  const FaultScenario scenario(ScenarioSpec::builtin("clustered"), geo, 55);

  baselines::BaselineMcConfig cfg;
  cfg.seed = 55;
  cfg.per_trial_seed_streams = true;
  cfg.scenario = &scenario;

  cfg.max_intervals = 40;
  cfg.first_trial = 0;
  baselines::EccKCache whole_cache(256, 4);
  const auto whole = baselines::run_baseline_mc(whole_cache, cfg);

  cfg.max_intervals = 17;
  baselines::EccKCache a_cache(256, 4);
  auto merged = baselines::run_baseline_mc(a_cache, cfg);
  cfg.first_trial = 17;
  cfg.max_intervals = 23;
  baselines::EccKCache b_cache(256, 4);
  merged += baselines::run_baseline_mc(b_cache, cfg);

  EXPECT_EQ(whole.intervals, merged.intervals);
  EXPECT_EQ(whole.faults_injected, merged.faults_injected);
  EXPECT_EQ(whole.corrected, merged.corrected);
  EXPECT_EQ(whole.due_units, merged.due_units);
  EXPECT_EQ(whole.sdc_units, merged.sdc_units);
  EXPECT_EQ(whole.failure_intervals, merged.failure_intervals);
}

}  // namespace
}  // namespace sudoku::faults
