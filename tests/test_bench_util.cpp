// Covers the shared bench plumbing: the exp JSON emitter (escaping and
// round-trip-exact number formatting) and the --threads/--seed/--json arg
// parser in bench_util.h.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <limits>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "exp/json.h"
#include "exp/result_sink.h"

namespace sudoku::exp {
namespace {

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab\r"), "line\\nbreak\\ttab\\r");
  EXPECT_EQ(json_escape(std::string("nul\x01" "byte")), "nul\\u0001byte");
  EXPECT_EQ(json_escape("utf8 \xc3\xa9"), "utf8 \xc3\xa9");  // passthrough
}

TEST(JsonNumber, ScientificValuesRoundTripExactly) {
  const double values[] = {0.0,       1.0,     -1.0,         0.1,
                           5.3e-6,    1e-300,  -2.5e17,      3.141592653589793,
                           1.8e14,    2e-31,   1.0 / 3.0,    6.02214076e23};
  for (const double v : values) {
    const std::string s = json_number(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(JsonNumber, PrefersShortRepresentations) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(std::uint64_t{18446744073709551615ull}),
            "18446744073709551615");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(JsonObject, PreservesInsertionOrderAndTypes) {
  JsonObject o;
  o.set("name", "mc").set("trials", std::uint64_t{42}).set("ok", true).set("p", 0.25);
  EXPECT_EQ(o.str(), "{\"name\":\"mc\",\"trials\":42,\"ok\":true,\"p\":0.25}");
}

TEST(JsonObject, NestedObjectsAndArrays) {
  JsonObject inner;
  inner.set("a", 1);
  JsonArray arr;
  arr.push(std::uint64_t{1}).push("two").push(inner);
  JsonObject o;
  o.set("items", arr).set("empty", JsonObject{});
  EXPECT_EQ(o.str(), "{\"items\":[1,\"two\",{\"a\":1}],\"empty\":{}}");
}

TEST(JsonObject, PrettyPrintsOneMemberPerLine) {
  JsonObject o;
  o.set("a", 1).set("b", 2);
  EXPECT_EQ(o.str(true), "{\n  \"a\": 1,\n  \"b\": 2\n}");
}

TEST(ResultSinkTest, WritesArtifactUnderOutDir) {
  const auto dir = std::filesystem::temp_directory_path() / "sudoku_exp_test_out";
  std::filesystem::remove_all(dir);
  const ResultSink sink(dir);
  JsonObject config, result;
  config.set("seed", std::uint64_t{9});
  result.set("failures", std::uint64_t{3});
  RunStats stats;
  stats.trials = 100;
  stats.wall_seconds = 2.0;
  stats.threads = 4;
  stats.shards = 7;
  const auto path = sink.write("unit_test", config, result, stats);
  EXPECT_EQ(path, dir / "unit_test.json");
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("\"experiment\": \"unit_test\""), std::string::npos);
  EXPECT_NE(text.find("\"trials_per_second\":50"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(BenchArgs, ParsesSharedFlags) {
  const char* argv[] = {"bench", "--threads=8", "--seed=1234", "--json",
                        "--out=/tmp/x", "--scale=3"};
  const auto args = bench::BenchArgs::parse(6, const_cast<char**>(argv));
  EXPECT_EQ(args.threads, 8u);
  EXPECT_EQ(args.seed, 1234u);
  EXPECT_TRUE(args.json);
  EXPECT_EQ(args.out_dir, "/tmp/x");
  EXPECT_EQ(args.scale, 3u);
}

TEST(BenchArgs, LegacyPositionalScaleAndDefaults) {
  const char* argv[] = {"bench", "7"};
  const auto args = bench::BenchArgs::parse(2, const_cast<char**>(argv));
  EXPECT_EQ(args.scale, 7u);
  EXPECT_EQ(args.threads, 0u);
  EXPECT_FALSE(args.json);
  EXPECT_EQ(args.out_dir, "bench/out");
  EXPECT_EQ(args.seed_or(99), 99u);
}

TEST(BenchArgs, SeedOverrideWinsOverFallback) {
  const char* argv[] = {"bench", "--seed=5"};
  const auto args = bench::BenchArgs::parse(2, const_cast<char**>(argv));
  EXPECT_EQ(args.seed_or(99), 5u);
}

TEST(BenchArgs, ParsesCheckpointAndResume) {
  const char* argv[] = {"bench", "--checkpoint=/tmp/ck", "--resume"};
  const auto args = bench::BenchArgs::parse(3, const_cast<char**>(argv));
  EXPECT_TRUE(args.checkpointing());
  EXPECT_EQ(args.checkpoint_dir, "/tmp/ck");
  EXPECT_TRUE(args.resume);
}

TEST(BenchArgs, CheckpointingOffByDefault) {
  const char* argv[] = {"bench"};
  const auto args = bench::BenchArgs::parse(1, const_cast<char**>(argv));
  EXPECT_FALSE(args.checkpointing());
  EXPECT_FALSE(args.resume);
}

// Malformed/unknown input must exit 2 with a usage message — never escape
// as an uncaught std::invalid_argument/std::out_of_range.
using BenchArgsDeath = ::testing::Test;

int parse_and_return(std::initializer_list<const char*> argv_list) {
  std::vector<const char*> argv(argv_list);
  bench::BenchArgs::parse(static_cast<int>(argv.size()),
                          const_cast<char**>(argv.data()));
  return 0;  // only reached when parse() did not exit
}

TEST(BenchArgsDeath, NonNumericSeedExitsTwo) {
  EXPECT_EXIT(parse_and_return({"bench", "--seed=abc"}),
              ::testing::ExitedWithCode(2), "invalid value for --seed");
}

TEST(BenchArgsDeath, OverflowSeedExitsTwo) {
  EXPECT_EXIT(parse_and_return({"bench", "--seed=99999999999999999999999"}),
              ::testing::ExitedWithCode(2), "out of range for --seed");
}

TEST(BenchArgsDeath, NegativeScaleExitsTwo) {
  EXPECT_EXIT(parse_and_return({"bench", "--scale=-3"}),
              ::testing::ExitedWithCode(2), "invalid value for --scale");
}

TEST(BenchArgsDeath, ThreadsBeyondUnsignedExitsTwo) {
  EXPECT_EXIT(parse_and_return({"bench", "--threads=4294967296"}),
              ::testing::ExitedWithCode(2), "out of range for --threads");
}

TEST(BenchArgsDeath, TrailingJunkExitsTwo) {
  EXPECT_EXIT(parse_and_return({"bench", "--seed=12abc"}),
              ::testing::ExitedWithCode(2), "invalid value for --seed");
}

TEST(BenchArgsDeath, UnknownFlagExitsTwo) {
  EXPECT_EXIT(parse_and_return({"bench", "--bogus"}),
              ::testing::ExitedWithCode(2), "unknown argument");
}

TEST(BenchArgsDeath, ResumeWithoutCheckpointExitsTwo) {
  EXPECT_EXIT(parse_and_return({"bench", "--resume"}),
              ::testing::ExitedWithCode(2), "--resume requires --checkpoint");
}

TEST(BenchArgsDeath, EmptyCheckpointDirExitsTwo) {
  EXPECT_EXIT(parse_and_return({"bench", "--checkpoint="}),
              ::testing::ExitedWithCode(2), "--checkpoint needs a directory");
}

TEST(BenchArgsDeath, HelpExitsZeroWithUsage) {
  EXPECT_EXIT(parse_and_return({"bench", "--help"}),
              ::testing::ExitedWithCode(0), "");
}

// Analytical benches have no worker pool, trial budget, or checkpointable
// shards: the corresponding flags must hit the usage+exit-2 path instead
// of being silently swallowed.
int parse_analytical_and_return(std::initializer_list<const char*> argv_list) {
  std::vector<const char*> argv(argv_list);
  bench::BenchArgs::Options opts;
  opts.threads = false;
  opts.checkpoint = false;
  opts.scale = false;
  bench::BenchArgs::parse(static_cast<int>(argv.size()),
                          const_cast<char**>(argv.data()), opts);
  return 0;
}

TEST(BenchArgsDeath, AnalyticalBenchRejectsThreads) {
  EXPECT_EXIT(parse_analytical_and_return({"bench", "--threads=4"}),
              ::testing::ExitedWithCode(2),
              "--threads is not supported by this bench");
}

TEST(BenchArgsDeath, AnalyticalBenchRejectsCheckpointAndResume) {
  EXPECT_EXIT(parse_analytical_and_return({"bench", "--checkpoint=/tmp/ck"}),
              ::testing::ExitedWithCode(2),
              "--checkpoint is not supported by this bench");
  EXPECT_EXIT(parse_analytical_and_return({"bench", "--resume"}),
              ::testing::ExitedWithCode(2),
              "--resume is not supported by this bench");
}

TEST(BenchArgsDeath, AnalyticalBenchRejectsScaleAndPositional) {
  EXPECT_EXIT(parse_analytical_and_return({"bench", "--scale=3"}),
              ::testing::ExitedWithCode(2),
              "--scale is not supported by this bench");
  EXPECT_EXIT(parse_analytical_and_return({"bench", "7"}),
              ::testing::ExitedWithCode(2), "unknown argument");
}

TEST(BenchArgs, AnalyticalBenchStillTakesSeedJsonOut) {
  const char* argv[] = {"bench", "--seed=3", "--json", "--out=/tmp/o"};
  bench::BenchArgs::Options opts;
  opts.threads = false;
  opts.checkpoint = false;
  opts.scale = false;
  const auto args =
      bench::BenchArgs::parse(4, const_cast<char**>(argv), opts);
  EXPECT_EQ(args.seed, 3u);
  EXPECT_TRUE(args.json);
  EXPECT_EQ(args.out_dir, "/tmp/o");
}

TEST(BenchArgs, ExtraFlagsAreCollected) {
  const char* argv[] = {"bench", "--gbench"};
  bench::BenchArgs::Options opts;
  opts.extra_flags = {"--gbench"};
  const auto args = bench::BenchArgs::parse(2, const_cast<char**>(argv), opts);
  EXPECT_TRUE(args.has_extra("--gbench"));
  EXPECT_FALSE(args.has_extra("--other"));
}

TEST(BenchArgsDeath, UndeclaredExtraFlagStillUnknown) {
  EXPECT_EXIT(parse_and_return({"bench", "--gbench"}),
              ::testing::ExitedWithCode(2), "unknown argument");
}

// ---- load-sweep flags (--clients/--banks/--duration-ms) ---------------

int parse_load_and_return(std::initializer_list<const char*> argv_list) {
  std::vector<const char*> argv(argv_list);
  bench::BenchArgs::Options opts;
  opts.threads = false;
  opts.checkpoint = false;
  opts.scale = false;
  opts.load = true;
  bench::BenchArgs::parse(static_cast<int>(argv.size()),
                          const_cast<char**>(argv.data()), opts);
  return 0;
}

TEST(BenchArgs, ParsesLoadSweepFlags) {
  const char* argv[] = {"bench", "--clients=8", "--banks=4",
                        "--duration-ms=250"};
  bench::BenchArgs::Options opts;
  opts.load = true;
  const auto args = bench::BenchArgs::parse(4, const_cast<char**>(argv), opts);
  EXPECT_EQ(args.clients, 8u);
  EXPECT_EQ(args.banks, 4u);
  EXPECT_EQ(args.duration_ms, 250u);
}

TEST(BenchArgs, LoadSweepFlagsDefaultToZeroMeaningSweep) {
  const char* argv[] = {"bench"};
  bench::BenchArgs::Options opts;
  opts.load = true;
  const auto args = bench::BenchArgs::parse(1, const_cast<char**>(argv), opts);
  EXPECT_EQ(args.clients, 0u);
  EXPECT_EQ(args.banks, 0u);
  EXPECT_EQ(args.duration_ms, 0u);
}

TEST(BenchArgsDeath, NonLoadBenchRejectsClients) {
  EXPECT_EXIT(parse_and_return({"bench", "--clients=8"}),
              ::testing::ExitedWithCode(2),
              "--clients is not supported by this bench");
}

TEST(BenchArgsDeath, NonLoadBenchRejectsBanksAndDuration) {
  EXPECT_EXIT(parse_and_return({"bench", "--banks=4"}),
              ::testing::ExitedWithCode(2),
              "--banks is not supported by this bench");
  EXPECT_EXIT(parse_and_return({"bench", "--duration-ms=100"}),
              ::testing::ExitedWithCode(2),
              "--duration-ms is not supported by this bench");
}

TEST(BenchArgsDeath, MalformedClientsExitsTwo) {
  EXPECT_EXIT(parse_load_and_return({"bench", "--clients=abc"}),
              ::testing::ExitedWithCode(2), "invalid value for --clients");
}

// A zero-client or zero-bank service measures nothing: explicit 0 is an
// error, not "use the default".
TEST(BenchArgsDeath, ExplicitZeroClientsExitsTwo) {
  EXPECT_EXIT(parse_load_and_return({"bench", "--clients=0"}),
              ::testing::ExitedWithCode(2), "out of range for --clients");
}

TEST(BenchArgsDeath, ExplicitZeroBanksExitsTwo) {
  EXPECT_EXIT(parse_load_and_return({"bench", "--banks=0"}),
              ::testing::ExitedWithCode(2), "out of range for --banks");
}

TEST(BenchArgsDeath, OverflowDurationExitsTwo) {
  EXPECT_EXIT(parse_load_and_return({"bench", "--duration-ms=4294967296"}),
              ::testing::ExitedWithCode(2), "out of range for --duration-ms");
}

// The batch-sweep accounting that keeps throughput honest on partial
// final batches (bench_codec_throughput's batch rows charge
// batched_items, never nominal-batch * count).
TEST(BenchBatchAccounting, BatchCountRoundsUp) {
  using sudoku::bench::batch_count;
  EXPECT_EQ(batch_count(0, 64), 0u);
  EXPECT_EQ(batch_count(1, 64), 1u);
  EXPECT_EQ(batch_count(63, 64), 1u);
  EXPECT_EQ(batch_count(64, 64), 1u);
  EXPECT_EQ(batch_count(65, 64), 2u);
  EXPECT_EQ(batch_count(130, 64), 3u);
  EXPECT_EQ(batch_count(200, 64), 4u);
  EXPECT_EQ(batch_count(10, 0), 0u);  // degenerate batch size
}

TEST(BenchBatchAccounting, BatchWidthChargesPartialTail) {
  using sudoku::bench::batch_width;
  // 200 items in 64-batches: 64, 64, 64, then a partial 8-line tail.
  EXPECT_EQ(batch_width(200, 64, 0), 64u);
  EXPECT_EQ(batch_width(200, 64, 2), 64u);
  EXPECT_EQ(batch_width(200, 64, 3), 8u);
  EXPECT_EQ(batch_width(200, 64, 4), 0u);  // past the end
  EXPECT_EQ(batch_width(1, 64, 0), 1u);
  EXPECT_EQ(batch_width(63, 64, 0), 63u);
  EXPECT_EQ(batch_width(64, 64, 0), 64u);
  EXPECT_EQ(batch_width(65, 64, 1), 1u);
  EXPECT_EQ(batch_width(65, 0, 0), 0u);
}

TEST(BenchBatchAccounting, BatchedItemsNeverExceedsRequested) {
  using sudoku::bench::batch_count;
  using sudoku::bench::batched_items;
  for (const std::uint64_t items : {0u, 1u, 63u, 64u, 65u, 130u, 200u}) {
    const std::uint64_t nb = batch_count(items, 64);
    // Every batch processed: payload is exactly the stream length, not
    // the nominal nb * 64 (which overstates 200 -> 256).
    EXPECT_EQ(batched_items(items, 64, nb), items) << items;
    // Truncated run: payload is only the full batches actually touched.
    if (nb > 0) {
      EXPECT_EQ(batched_items(items, 64, nb - 1), (nb - 1) * 64) << items;
    }
  }
  EXPECT_EQ(batched_items(200, 64, 4), 200u);
  EXPECT_EQ(batched_items(200, 64, 99), 200u);  // extra batches add nothing
}

}  // namespace
}  // namespace sudoku::exp
