#include "reliability/montecarlo.h"

#include <gtest/gtest.h>

#include "reliability/analytical.h"

namespace sudoku::reliability {
namespace {

// Small accelerated configurations keep MC runtimes in CI territory while
// still exercising every correction path.
McConfig accel_config(SudokuLevel level, double ber, std::uint64_t intervals) {
  McConfig cfg;
  cfg.cache.num_lines = 1ull << 14;  // 1 MB cache
  cfg.cache.group_size = 128;
  cfg.cache.ber = ber;
  cfg.level = level;
  cfg.max_intervals = intervals;
  cfg.seed = 42;
  return cfg;
}

TEST(MonteCarlo, InjectsExpectedFaultVolume) {
  auto cfg = accel_config(SudokuLevel::kX, 1e-5, 50);
  const auto res = run_montecarlo(cfg);
  EXPECT_EQ(res.intervals, 50u);
  const double expected =
      static_cast<double>(cfg.cache.num_lines) * kSudokuLineBits * cfg.cache.ber * 50;
  EXPECT_NEAR(static_cast<double>(res.faults_injected), expected, expected * 0.3);
}

TEST(MonteCarlo, MostFaultsAreEcc1Corrected) {
  // At modest BER nearly every touched line has a single fault.
  const auto res = run_montecarlo(accel_config(SudokuLevel::kX, 1e-5, 50));
  EXPECT_GT(res.ecc1_corrections * 10, res.faults_injected * 9);
}

TEST(MonteCarlo, NoSilentCorruptionAcrossLevels) {
  for (const auto level : {SudokuLevel::kX, SudokuLevel::kY, SudokuLevel::kZ}) {
    const auto res = run_montecarlo(accel_config(level, 5e-5, 40));
    EXPECT_EQ(res.sdc_lines, 0u) << to_string(level);
  }
}

TEST(MonteCarlo, LevelOrderingUnderAcceleratedBer) {
  // At an accelerated BER, X fails much more often than Y, which fails
  // more often than Z — the paper's central claim, observed functionally.
  const double ber = 2e-4;
  const auto x = run_montecarlo(accel_config(SudokuLevel::kX, ber, 300));
  const auto y = run_montecarlo(accel_config(SudokuLevel::kY, ber, 300));
  const auto z = run_montecarlo(accel_config(SudokuLevel::kZ, ber, 300));
  EXPECT_GT(x.due_lines, 0u);
  EXPECT_GT(x.due_lines, y.due_lines * 2);
  EXPECT_GE(y.due_lines, z.due_lines);
  EXPECT_LT(z.failure_intervals, x.failure_intervals);
}

TEST(MonteCarlo, MatchesAnalyticalSudokuX) {
  // Cross-validation: MC failure probability for SuDoku-X at accelerated
  // BER must agree with the analytical model within statistical error.
  auto cfg = accel_config(SudokuLevel::kX, 2e-4, 1200);
  const auto mc = run_montecarlo(cfg);
  const auto an = sudoku_x_due(cfg.cache);
  ASSERT_GT(mc.failure_intervals, 20u);  // enough events for a comparison
  const double ratio = mc.p_failure_per_interval() / an.p_interval();
  EXPECT_GT(ratio, 0.5) << mc.summary();
  EXPECT_LT(ratio, 2.0) << mc.summary();
}

TEST(MonteCarlo, RepairMachineryActuallyRuns) {
  const auto res = run_montecarlo(accel_config(SudokuLevel::kZ, 2e-4, 300));
  EXPECT_GT(res.raid4_repairs, 0u);
  EXPECT_GT(res.groups_repaired, 0u);
  // SDR events occur at this rate too.
  EXPECT_GT(res.sdr_repairs + res.hash2_invocations, 0u);
}

TEST(MonteCarlo, EarlyStopOnTargetFailures) {
  auto cfg = accel_config(SudokuLevel::kX, 5e-4, 100000);
  cfg.target_failures = 3;
  const auto res = run_montecarlo(cfg);
  EXPECT_EQ(res.failure_intervals, 3u);
  EXPECT_LT(res.intervals, 100000u);
}

TEST(MonteCarlo, DeterministicForSeed) {
  auto cfg = accel_config(SudokuLevel::kY, 1e-4, 50);
  const auto a = run_montecarlo(cfg);
  const auto b = run_montecarlo(cfg);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.due_lines, b.due_lines);
  EXPECT_EQ(a.ecc1_corrections, b.ecc1_corrections);
}

TEST(MonteCarlo, FitAndMttfConversions) {
  McResult r;
  r.intervals = 1000;
  r.failure_intervals = 10;
  EXPECT_NEAR(r.p_failure_per_interval(), 0.01, 1e-12);
  EXPECT_NEAR(r.mttf_seconds(0.02), 2.0, 1e-9);
  EXPECT_NEAR(r.fit(0.02) / (0.01 * 1.8e14), 1.0, 1e-9);
}

}  // namespace
}  // namespace sudoku::reliability
