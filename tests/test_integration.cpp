// Cross-module integration tests: cache residency driving RAID-group
// membership, host read/write traffic interleaved with fault injection,
// write-error (§VIII-B) tolerance, and end-to-end consistency invariants.
#include <gtest/gtest.h>

#include <set>

#include "cache/cache_model.h"
#include "reliability/montecarlo.h"
#include "sttram/fault_injector.h"
#include "sudoku/controller.h"

namespace sudoku {
namespace {

BitVec random_data(Rng& rng) {
  BitVec d(LineCodec::kDataBits);
  auto w = d.words();
  for (auto& word : w) word = rng.next_u64();
  return d;
}

TEST(Integration, CacheLineIndexFeedsSudokuController) {
  // The LLC model maps addresses to physical line indices; those indices
  // are SuDoku's line ids. A workload's resident lines must always be
  // valid controller lines.
  cache::CacheConfig ccfg;
  ccfg.size_bytes = 1u << 20;  // 16K lines
  cache::CacheModel llc(ccfg);

  SudokuConfig scfg;
  scfg.geo.num_lines = ccfg.num_lines();
  scfg.geo.group_size = 64;
  scfg.level = SudokuLevel::kZ;
  SudokuController ctrl(scfg);
  Rng rng(1);
  ctrl.format_random(rng);

  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = rng.next_below(1u << 24) & ~63ull;
    const bool is_write = rng.next_bool(0.3);
    const auto res = llc.access(addr, is_write);
    ASSERT_LT(res.line_index, scfg.geo.num_lines);
    if (is_write) {
      ctrl.write_data(res.line_index, random_data(rng));
    } else {
      const auto rr = ctrl.read_data(res.line_index);
      ASSERT_NE(rr.outcome, SudokuController::ReadOutcome::kDue);
    }
  }
  EXPECT_TRUE(ctrl.parities_consistent());
}

TEST(Integration, HostTrafficInterleavedWithFaults) {
  // Writes, reads and thermal faults interleave; no silent corruption may
  // ever surface on reads the controller declares good.
  SudokuConfig cfg;
  cfg.geo.num_lines = 4096;
  cfg.geo.group_size = 64;
  cfg.level = SudokuLevel::kZ;
  SudokuController ctrl(cfg);
  Rng rng(2);
  std::vector<BitVec> shadow;
  ctrl.format([&](std::uint64_t) {
    shadow.push_back(random_data(rng));
    return shadow.back();
  });

  FaultInjector inj(cfg.geo.num_lines, ctrl.codec().total_bits(), 5e-5);
  for (int round = 0; round < 30; ++round) {
    // Thermal faults.
    const auto batch = inj.sample_interval(rng);
    FaultInjector::apply(batch, ctrl.array());
    std::vector<std::uint64_t> touched;
    for (const auto& [line, bits] : batch) touched.push_back(line);
    const auto stats = ctrl.scrub_lines(touched);
    const std::set<std::uint64_t> lost(stats.due_line_ids.begin(),
                                       stats.due_line_ids.end());
    for (const auto l : lost) {
      ctrl.write_data(l, shadow[l]);  // refill
    }
    // Host traffic.
    for (int i = 0; i < 200; ++i) {
      const auto line = rng.next_below(cfg.geo.num_lines);
      if (rng.next_bool(0.5)) {
        shadow[line] = random_data(rng);
        ctrl.write_data(line, shadow[line]);
      } else {
        const auto r = ctrl.read_data(line);
        ASSERT_NE(r.outcome, SudokuController::ReadOutcome::kDue);
        ASSERT_EQ(r.data, shadow[line]) << "line " << line;
      }
    }
  }
  EXPECT_TRUE(ctrl.parities_consistent());
}

TEST(Integration, WriteErrorsToleratedLikeRetentionErrors) {
  // §VIII-B: with WER ≈ retention BER, reliability is similar — and no
  // SDC appears either way.
  reliability::McConfig cfg;
  cfg.cache.num_lines = 1u << 14;  // SuDoku-Z needs lines >= group^2
  cfg.cache.group_size = 128;
  cfg.cache.ber = 1e-4;
  cfg.level = SudokuLevel::kZ;
  cfg.max_intervals = 60;
  cfg.seed = 3;

  const auto retention_only = run_montecarlo(cfg);

  cfg.host_writes_per_interval = 200;
  cfg.wer = 1e-4;
  const auto with_wer = run_montecarlo(cfg);

  EXPECT_EQ(retention_only.sdc_lines, 0u);
  EXPECT_EQ(with_wer.sdc_lines, 0u);
  EXPECT_GT(with_wer.faults_injected, retention_only.faults_injected);
  // Write errors are corrected through the same machinery.
  EXPECT_GE(with_wer.ecc1_corrections, retention_only.ecc1_corrections);
}

TEST(Integration, DueLinesAreExactlyTheUnrecoverableOnes) {
  // Force a known-unrecoverable pattern among recoverable ones and check
  // the DUE report names exactly the right lines.
  SudokuConfig cfg;
  cfg.geo.num_lines = 1024;
  cfg.geo.group_size = 32;
  cfg.level = SudokuLevel::kY;  // no second hash: 3+3 pairs are fatal
  SudokuController ctrl(cfg);
  Rng rng(4);
  ctrl.format_random(rng);

  auto inject = [&](std::uint64_t line, int count) {
    std::set<std::uint32_t> used;
    while (static_cast<int>(used.size()) < count) {
      const auto bit = static_cast<std::uint32_t>(rng.next_below(553));
      if (used.insert(bit).second) ctrl.array().flip(line, bit);
    }
  };
  inject(5, 1);    // ECC-1 territory
  inject(40, 4);   // lone multi-bit: RAID-4
  inject(70, 2);   // pair of 2-fault lines in one group: SDR
  inject(80, 2);
  inject(200, 3);  // pair of 3-fault lines: DUE under Y
  inject(210, 3);

  const std::uint64_t touched[] = {5, 40, 70, 80, 200, 210};
  const auto stats = ctrl.scrub_lines(touched);
  const std::set<std::uint64_t> due(stats.due_line_ids.begin(), stats.due_line_ids.end());
  EXPECT_EQ(due, (std::set<std::uint64_t>{200, 210}));
}

TEST(Integration, ScrubAllEquivalentToSparseScrubOnTouched) {
  // The sparse scrub (only touched lines) must leave the array in the same
  // state as a full scrub.
  SudokuConfig cfg;
  cfg.geo.num_lines = 1024;
  cfg.geo.group_size = 32;
  cfg.level = SudokuLevel::kZ;

  Rng rng(5);
  SudokuController a(cfg), b(cfg);
  Rng fa(77), fb(77);
  a.format_random(fa);
  b.format_random(fb);

  FaultInjector inj(cfg.geo.num_lines, a.codec().total_bits(), 2e-4);
  const auto batch = inj.sample_interval(rng);
  FaultInjector::apply(batch, a.array());
  FaultInjector::apply(batch, b.array());

  std::vector<std::uint64_t> touched;
  for (const auto& [line, bits] : batch) touched.push_back(line);
  a.scrub_lines(touched);
  b.scrub_all();

  for (std::uint64_t line = 0; line < cfg.geo.num_lines; ++line) {
    ASSERT_TRUE(a.array().line_equals(line, b.array().read_line(line))) << line;
  }
}

TEST(Integration, ControllerSurvivesBackToBackIntervalsWithoutRefill) {
  // Even if DUE lines are never refilled (no backing store), the scrub
  // machinery must not corrupt *other* lines or crash.
  SudokuConfig cfg;
  cfg.geo.num_lines = 1024;
  cfg.geo.group_size = 32;
  cfg.level = SudokuLevel::kX;  // fails often at this BER
  SudokuController ctrl(cfg);
  Rng rng(6);
  std::vector<BitVec> shadow;
  ctrl.format([&](std::uint64_t) {
    shadow.push_back(random_data(rng));
    return shadow.back();
  });

  FaultInjector inj(cfg.geo.num_lines, ctrl.codec().total_bits(), 1e-4);
  std::set<std::uint64_t> ever_due;
  for (int round = 0; round < 15; ++round) {
    const auto batch = inj.sample_interval(rng);
    FaultInjector::apply(batch, ctrl.array());
    std::vector<std::uint64_t> touched;
    for (const auto& [line, bits] : batch) touched.push_back(line);
    const auto stats = ctrl.scrub_lines(touched);
    for (const auto l : stats.due_line_ids) ever_due.insert(l);
  }
  // Lines never reported DUE must still hold their data.
  int checked = 0;
  for (std::uint64_t line = 0; line < cfg.geo.num_lines; ++line) {
    if (ever_due.count(line)) continue;
    const auto r = ctrl.read_data(line);
    if (r.outcome == SudokuController::ReadOutcome::kDue) continue;  // new faults
    ASSERT_EQ(r.data, shadow[line]) << line;
    ++checked;
  }
  EXPECT_GT(checked, 900);
}

}  // namespace
}  // namespace sudoku
