#include "sudoku/scrubber.h"

#include <gtest/gtest.h>

#include "reliability/montecarlo.h"

namespace sudoku {
namespace {

SudokuConfig small_config(SudokuLevel level) {
  SudokuConfig cfg;
  cfg.geo.num_lines = 4096;
  cfg.geo.group_size = 64;
  cfg.level = level;
  return cfg;
}

TEST(ScrubSchedule, BandwidthMatchesPaperEstimate) {
  // §II-D footnote: a 64 MB cache scrubbed every 20 ms costs "not more
  // than a few percent" of bandwidth. 1M lines / 16 banks × 9 ns / 20 ms.
  ScrubSchedule s;
  const double frac = s.bandwidth_fraction(1ull << 20);
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.05);
}

TEST(ScrubSchedule, BandwidthScalesWithInterval) {
  ScrubSchedule fast, slow;
  fast.interval_s = 0.01;
  slow.interval_s = 0.04;
  EXPECT_NEAR(fast.bandwidth_fraction(1u << 20) / slow.bandwidth_fraction(1u << 20),
              4.0, 1e-9);
}

TEST(ContinuousScrub, VisitsEveryLineEachInterval) {
  SudokuController ctrl(small_config(SudokuLevel::kX));
  Rng rng(1);
  ctrl.format_random(rng);
  ScrubSchedule sched;
  const auto stats = run_continuous_scrub(ctrl, sched, 0.0, 8, 3, rng);
  EXPECT_EQ(stats.sweeps, 3u);
  EXPECT_EQ(stats.lines_scrubbed, 3u * 4096);
  EXPECT_EQ(stats.faults_injected, 0u);
  EXPECT_NEAR(stats.simulated_seconds, 0.06, 1e-9);
}

TEST(ContinuousScrub, CorrectsContinuouslyArrivingFaults) {
  SudokuController ctrl(small_config(SudokuLevel::kZ));
  Rng rng(2);
  ctrl.format_random(rng);
  ScrubSchedule sched;
  // Rate chosen for ~1 fault per line-visit-window overall.
  const double rate = 1e-2 / 553;  // per bit per second
  const auto stats = run_continuous_scrub(ctrl, sched, rate, 16, 10, rng);
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_GT(stats.ecc1_corrections, 0u);
  EXPECT_EQ(stats.due_lines, 0u);  // mostly single-bit at this rate
  // Drain faults that arrived after their line's last visit, then audit.
  ctrl.scrub_all();
  EXPECT_TRUE(ctrl.parities_consistent());
}

TEST(ContinuousScrub, SlicedSweepMatchesBatchedHarnessRate) {
  // The batched (interval-barrier) harness injects a full interval of
  // faults then scrubs everything; continuous slicing halves the average
  // exposure. DUE rates must agree within ~2-3x (the batched harness is
  // conservative).
  const double per_interval_ber = 6e-4;
  const double rate = per_interval_ber / 0.02;  // per bit per second

  SudokuController ctrl(small_config(SudokuLevel::kX));
  Rng rng(3);
  ctrl.format_random(rng);
  ScrubSchedule sched;
  const auto cont = run_continuous_scrub(ctrl, sched, rate, 16, 150, rng);

  reliability::McConfig mcfg;
  mcfg.cache.num_lines = 4096;
  mcfg.cache.group_size = 64;
  mcfg.cache.ber = per_interval_ber;
  mcfg.level = SudokuLevel::kX;
  mcfg.max_intervals = 150;
  mcfg.seed = 3;
  const auto batched = reliability::run_montecarlo(mcfg);

  // Both observe failures at this accelerated rate.
  EXPECT_GT(cont.due_lines + batched.due_lines, 0u);
  const double cont_rate = cont.due_rate_per_second();
  const double batched_rate =
      static_cast<double>(batched.due_lines) / (150 * 0.02);
  if (cont_rate > 0 && batched_rate > 0) {
    EXPECT_LT(cont_rate / batched_rate, 3.0);
    EXPECT_GT(cont_rate / batched_rate, 1.0 / 6.0);
  }
}

TEST(ContinuousScrub, HigherRateMeansMoreDue) {
  ScrubSchedule sched;
  std::uint64_t due_low, due_high;
  {
    SudokuController ctrl(small_config(SudokuLevel::kX));
    Rng rng(4);
    ctrl.format_random(rng);
    due_low = run_continuous_scrub(ctrl, sched, 1e-4 / 0.02, 8, 100, rng).due_lines;
  }
  {
    SudokuController ctrl(small_config(SudokuLevel::kX));
    Rng rng(4);
    ctrl.format_random(rng);
    due_high = run_continuous_scrub(ctrl, sched, 2e-3 / 0.02, 8, 100, rng).due_lines;
  }
  EXPECT_GT(due_high, due_low);
}

}  // namespace
}  // namespace sudoku
