// Parameterised property sweeps across the configuration space: for every
// combination of protection level, RAID-Group size and inner-code strength,
// the core invariants must hold under randomized fault injection:
//   P1. no silent corruption — every line not reported DUE decodes to its
//       golden data;
//   P2. parity consistency — after a scrub, every PLT entry equals the XOR
//       of its group;
//   P3. monotonicity — Z never loses a line that Y saves, Y never loses a
//       line that X saves (on identical fault patterns);
//   P4. repairability guarantee — any *single* multi-bit line per group is
//       always repaired, regardless of fault count (RAID-4 erasure bound).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "sttram/fault_injector.h"
#include "sudoku/controller.h"
#include "sudoku/line_codec.h"

namespace sudoku {
namespace {

using Params = std::tuple<SudokuLevel, std::uint32_t /*group*/, int /*inner t*/>;

class SweepTest : public ::testing::TestWithParam<Params> {
 protected:
  SudokuConfig make_config() const {
    const auto [level, group, t] = GetParam();
    SudokuConfig cfg;
    cfg.geo.num_lines = 4096;  // >= group^2 for all swept group sizes
    cfg.geo.group_size = group;
    cfg.level = level;
    cfg.inner_ecc_t = t;
    return cfg;
  }
};

TEST_P(SweepTest, NoSilentCorruptionAndParityConsistency) {
  const SudokuConfig cfg = make_config();
  SudokuController ctrl(cfg);
  Rng rng(99);
  SttramArray golden(cfg.geo.num_lines, ctrl.codec().total_bits());
  ctrl.format([&](std::uint64_t line) {
    BitVec d(LineCodec::kDataBits);
    auto w = d.words();
    for (auto& word : w) word = rng.next_u64();
    golden.write_line(line, ctrl.codec().encode(d));
    return d;
  });

  FaultInjector inj(cfg.geo.num_lines, ctrl.codec().total_bits(), 3e-4);
  for (int interval = 0; interval < 15; ++interval) {
    const auto batch = inj.sample_interval(rng);
    FaultInjector::apply(batch, ctrl.array());
    std::vector<std::uint64_t> touched;
    for (const auto& [line, bits] : batch) touched.push_back(line);
    const auto stats = ctrl.scrub_lines(touched);
    const std::set<std::uint64_t> due(stats.due_line_ids.begin(), stats.due_line_ids.end());
    for (const auto line : touched) {
      if (due.count(line)) {
        ctrl.array().write_line(line, golden.read_line(line));  // refill
        continue;
      }
      // P1: silent corruption forbidden.
      ASSERT_TRUE(ctrl.array().line_equals(line, golden.read_line(line)))
          << "line " << line << " silently corrupted";
    }
  }
  // P2: parities consistent after the campaign.
  EXPECT_TRUE(ctrl.parities_consistent());
}

TEST_P(SweepTest, LoneMultiBitLineAlwaysRepairable) {
  const SudokuConfig cfg = make_config();
  SudokuController ctrl(cfg);
  Rng rng(7);
  ctrl.format_random(rng);
  // P4: a single faulty line per group, arbitrary fault count up to 20.
  for (const int nfaults : {2, 5, 11, 20}) {
    const std::uint64_t line = rng.next_below(cfg.geo.num_lines);
    const BitVec want = ctrl.read_data(line).data;
    std::set<std::uint32_t> used;
    while (static_cast<int>(used.size()) < nfaults) {
      const auto bit = static_cast<std::uint32_t>(rng.next_below(ctrl.codec().total_bits()));
      if (used.insert(bit).second) ctrl.array().flip(line, bit);
    }
    const std::uint64_t lines[] = {line};
    const auto stats = ctrl.scrub_lines(lines);
    ASSERT_EQ(stats.due_lines, 0u) << nfaults << " faults";
    ASSERT_EQ(ctrl.read_data(line).data, want);
  }
}

std::string sweep_name(const ::testing::TestParamInfo<Params>& info) {
  std::string name = to_string(std::get<0>(info.param));
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  return name + "_g" + std::to_string(std::get<1>(info.param)) + "_t" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, SweepTest,
    ::testing::Combine(::testing::Values(SudokuLevel::kX, SudokuLevel::kY, SudokuLevel::kZ),
                       ::testing::Values(16u, 64u), ::testing::Values(1, 2)),
    sweep_name);

// P5: differential codec property. Random data + a random fault mask of
// weight <= 6 through encode -> inject -> check_and_correct must land in
// exactly one of three lawful outcomes, cross-checked bit-for-bit against
// the golden codeword with BitVec::distance:
//   kClean         -> the mask was empty (anything else is silent corruption);
//   kCorrected     -> the stored line equals the golden codeword exactly;
//   kUncorrectable -> the line is untouched (repair is RAID/SDR's job).
// Masks of weight <= t must never reach kUncorrectable (inner-code bound).
// Every assertion prints the trial seed so a failure is replayable.
class CodecDifferential : public ::testing::TestWithParam<int /*inner t*/> {};

TEST_P(CodecDifferential, RandomMasksCorrectExactlyOrDetect) {
  const int t = GetParam();
  const LineCodec codec(t);
  const std::uint32_t width = codec.total_bits();
  const std::uint64_t base_seed = 0xd1fful;
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    BitVec data(LineCodec::kDataBits);
    for (auto& w : data.words()) w = rng.next_u64();
    const BitVec golden = codec.encode(data);

    const int weight = static_cast<int>(rng.next_below(7));  // 0..6 faults
    std::set<std::uint32_t> mask;
    while (static_cast<int>(mask.size()) < weight) {
      mask.insert(static_cast<std::uint32_t>(rng.next_below(width)));
    }
    BitVec stored = golden;
    for (const auto bit : mask) stored.flip(bit);
    ASSERT_EQ(stored.distance(golden), mask.size()) << "seed " << seed;

    const BitVec injected = stored;
    const auto state = codec.check_and_correct(stored);
    switch (state) {
      case LineCodec::LineState::kClean:
        ASSERT_TRUE(mask.empty())
            << "seed " << seed << ": " << mask.size()
            << "-bit mask passed undetected (silent corruption)";
        ASSERT_EQ(stored.distance(golden), 0u) << "seed " << seed;
        break;
      case LineCodec::LineState::kCorrected:
        ASSERT_EQ(stored.distance(golden), 0u)
            << "seed " << seed << ": correction did not restore the codeword";
        ASSERT_EQ(codec.extract_data(stored), data) << "seed " << seed;
        ASSERT_TRUE(codec.fully_clean(stored)) << "seed " << seed;
        break;
      case LineCodec::LineState::kUncorrectable:
        ASSERT_GT(mask.size(), static_cast<std::size_t>(t))
            << "seed " << seed << ": <=t faults must be corrected";
        ASSERT_EQ(stored, injected)
            << "seed " << seed << ": unrepairable line was modified";
        break;
    }
    if (static_cast<int>(mask.size()) <= t) {
      ASSERT_NE(state, LineCodec::LineState::kUncorrectable) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(InnerEcc, CodecDifferential, ::testing::Values(1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           // Lvalue operand: the char* + string&& overload hits
                           // GCC 12's -Wrestrict false positive (PR 105329).
                           const std::string t = std::to_string(info.param);
                           return "t" + t;
                         });

// P3: level monotonicity on identical fault patterns.
TEST(LevelMonotonicity, ZSavesWhateverYSavesWhateverXSaves) {
  Rng pattern_rng(123);
  for (int trial = 0; trial < 25; ++trial) {
    // Generate one shared fault pattern: a few multi-bit lines in one group
    // plus scattered singles.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> flips;
    const int nlines = 2 + static_cast<int>(pattern_rng.next_below(3));
    for (int l = 0; l < nlines; ++l) {
      const std::uint64_t line = pattern_rng.next_below(64);  // group 0/1
      const int nf = 2 + static_cast<int>(pattern_rng.next_below(3));
      for (int f = 0; f < nf; ++f) {
        flips.emplace_back(line,
                           static_cast<std::uint32_t>(pattern_rng.next_below(553)));
      }
    }

    std::uint64_t due_by_level[3];
    int idx = 0;
    for (const auto level : {SudokuLevel::kX, SudokuLevel::kY, SudokuLevel::kZ}) {
      SudokuConfig cfg;
      cfg.geo.num_lines = 4096;
      cfg.geo.group_size = 64;
      cfg.level = level;
      SudokuController ctrl(cfg);
      Rng fmt(42);
      ctrl.format_random(fmt);
      std::set<std::uint64_t> touched_set;
      for (const auto& [line, bit] : flips) {
        ctrl.array().flip(line, bit);
        touched_set.insert(line);
      }
      std::vector<std::uint64_t> touched(touched_set.begin(), touched_set.end());
      due_by_level[idx++] = ctrl.scrub_lines(touched).due_lines;
    }
    EXPECT_GE(due_by_level[0], due_by_level[1]) << "X lost fewer than Y, trial " << trial;
    EXPECT_GE(due_by_level[1], due_by_level[2]) << "Y lost fewer than Z, trial " << trial;
  }
}

}  // namespace
}  // namespace sudoku
