#include "raid/raid6.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sudoku {
namespace {

std::vector<BitVec> random_group(std::uint32_t n, std::uint32_t bits, Rng& rng) {
  std::vector<BitVec> lines(n, BitVec(bits));
  for (auto& l : lines) {
    for (std::uint32_t i = 0; i < bits; ++i)
      if (rng.next_bool(0.5)) l.set(i);
  }
  return lines;
}

TEST(Raid6, PIsXorOfLines) {
  Rng rng(1);
  Raid6 raid(8, 553);
  auto lines = random_group(8, 553, rng);
  BitVec p, q;
  raid.compute(lines, p, q);
  BitVec manual(553);
  for (const auto& l : lines) manual ^= l;
  EXPECT_EQ(p, manual);
}

TEST(Raid6, ReconstructOne) {
  Rng rng(2);
  Raid6 raid(16, 553);
  auto lines = random_group(16, 553, rng);
  BitVec p, q;
  raid.compute(lines, p, q);
  for (std::uint32_t victim : {0u, 7u, 15u}) {
    const BitVec rebuilt = raid.reconstruct_one(lines, victim, p);
    EXPECT_EQ(rebuilt, lines[victim]);
  }
}

TEST(Raid6, ReconstructTwoAllPairsSmallGroup) {
  Rng rng(3);
  Raid6 raid(6, 100);
  auto lines = random_group(6, 100, rng);
  BitVec p, q;
  raid.compute(lines, p, q);
  for (std::uint32_t a = 0; a < 6; ++a) {
    for (std::uint32_t b = a + 1; b < 6; ++b) {
      const auto [da, db] = raid.reconstruct_two(lines, a, b, p, q);
      EXPECT_EQ(da, lines[a]) << a << "," << b;
      EXPECT_EQ(db, lines[b]) << a << "," << b;
    }
  }
}

TEST(Raid6, ReconstructTwoFullSizeGroup) {
  // The paper's comparison point uses 512-line groups, which requires the
  // GF(2^16) coefficient path.
  Rng rng(4);
  Raid6 raid(512, 553);
  auto lines = random_group(512, 553, rng);
  BitVec p, q;
  raid.compute(lines, p, q);
  const auto [da, db] = raid.reconstruct_two(lines, 3, 400, p, q);
  EXPECT_EQ(da, lines[3]);
  EXPECT_EQ(db, lines[400]);
}

TEST(Raid6, QDiffersFromP) {
  // Q must weight lines distinctly, otherwise two-erasure decode is
  // singular. Also sanity: Q != P for generic content.
  Rng rng(5);
  Raid6 raid(8, 64);
  auto lines = random_group(8, 64, rng);
  BitVec p, q;
  raid.compute(lines, p, q);
  EXPECT_NE(p, q);
}

TEST(Raid6, ZeroGroupHasZeroParities) {
  Raid6 raid(8, 64);
  std::vector<BitVec> lines(8, BitVec(64));
  BitVec p, q;
  raid.compute(lines, p, q);
  EXPECT_TRUE(p.none());
  EXPECT_TRUE(q.none());
}

TEST(Raid6, DetectsCorruptionViaParityMismatch) {
  // Not a decode path, but the invariant callers rely on: corrupting any
  // line breaks P.
  Rng rng(6);
  Raid6 raid(8, 128);
  auto lines = random_group(8, 128, rng);
  BitVec p, q;
  raid.compute(lines, p, q);
  lines[5].flip(77);
  BitVec p2, q2;
  raid.compute(lines, p2, q2);
  EXPECT_NE(p, p2);
  EXPECT_NE(q, q2);
}

}  // namespace
}  // namespace sudoku
