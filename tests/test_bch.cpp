#include "codes/bch.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace sudoku {
namespace {

BitVec random_codeword(const Bch& bch, Rng& rng) {
  BitVec cw(bch.codeword_bits());
  for (std::size_t i = 0; i < bch.message_bits(); ++i)
    if (rng.next_bool(0.5)) cw.set(i);
  bch.encode(cw);
  return cw;
}

void flip_random_distinct(BitVec& cw, int count, Rng& rng) {
  std::set<std::uint64_t> used;
  while (static_cast<int>(used.size()) < count) {
    const auto pos = rng.next_below(cw.size());
    if (used.insert(pos).second) cw.flip(pos);
  }
}

TEST(Bch, ParityBitsMatchPaperBudget) {
  // ECC-t over 512-bit data with m = 10 costs 10·t bits — Table II's
  // "60 bits per line" for ECC-6.
  for (int t = 1; t <= 6; ++t) {
    Bch bch(10, t, 512);
    EXPECT_EQ(bch.parity_bits(), static_cast<std::size_t>(10 * t)) << "t=" << t;
  }
}

TEST(Bch, CleanCodewordDecodesClean) {
  Rng rng(1);
  Bch bch(10, 3, 512);
  for (int trial = 0; trial < 10; ++trial) {
    BitVec cw = random_codeword(bch, rng);
    const auto res = bch.decode(cw);
    EXPECT_EQ(res.status, Bch::DecodeStatus::kClean);
    EXPECT_EQ(res.corrected, 0);
  }
}

class BchCorrection : public ::testing::TestWithParam<int> {};

TEST_P(BchCorrection, CorrectsUpToTErrors) {
  const int t = GetParam();
  Rng rng(100 + t);
  Bch bch(10, t, 512);
  for (int nerr = 1; nerr <= t; ++nerr) {
    for (int trial = 0; trial < 8; ++trial) {
      const BitVec good = random_codeword(bch, rng);
      BitVec bad = good;
      flip_random_distinct(bad, nerr, rng);
      const auto res = bch.decode(bad);
      EXPECT_EQ(res.status, Bch::DecodeStatus::kCorrected)
          << "t=" << t << " nerr=" << nerr;
      EXPECT_EQ(res.corrected, nerr);
      EXPECT_EQ(bad, good);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTolerances, BchCorrection, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Bch, ErrorsInParityRegionAlsoCorrected) {
  Rng rng(2);
  Bch bch(10, 2, 512);
  const BitVec good = random_codeword(bch, rng);
  BitVec bad = good;
  bad.flip(good.size() - 1);  // last parity bit
  bad.flip(good.size() - 7);
  const auto res = bch.decode(bad);
  EXPECT_EQ(res.status, Bch::DecodeStatus::kCorrected);
  EXPECT_EQ(bad, good);
}

TEST(Bch, BeyondTNeverClaimsClean) {
  // t+1 or more errors must never be reported as a clean codeword: they
  // either get flagged uncorrectable or miscorrect to a *different*
  // codeword (the decoder cannot silently claim "no errors").
  Rng rng(3);
  Bch bch(10, 2, 512);
  const BitVec good = random_codeword(bch, rng);
  int miscorrections = 0;
  int detected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    BitVec bad = good;
    flip_random_distinct(bad, 5, rng);
    const auto res = bch.decode(bad);
    ASSERT_NE(res.status, Bch::DecodeStatus::kClean);
    if (res.status == Bch::DecodeStatus::kUncorrectable) {
      ++detected;
    } else {
      ++miscorrections;
      EXPECT_NE(bad, good);  // miscorrection produced some other codeword
    }
  }
  // With 5 errors against a t=2 decoder the overwhelming majority of
  // patterns are detected.
  EXPECT_GT(detected, miscorrections);
}

TEST(Bch, ShortMessageWorks) {
  Rng rng(4);
  Bch bch(8, 2, 100);
  const BitVec good = random_codeword(bch, rng);
  BitVec bad = good;
  flip_random_distinct(bad, 2, rng);
  const auto res = bch.decode(bad);
  EXPECT_EQ(res.status, Bch::DecodeStatus::kCorrected);
  EXPECT_EQ(bad, good);
}

TEST(Bch, HiEccGeometryEcc6Over1KB) {
  // Hi-ECC baseline (paper §VIII-C): ECC-6 over 8192 data bits (m = 14).
  Rng rng(5);
  Bch bch(14, 6, 8192);
  EXPECT_EQ(bch.parity_bits(), 84u);
  const BitVec good = random_codeword(bch, rng);
  BitVec bad = good;
  flip_random_distinct(bad, 6, rng);
  const auto res = bch.decode(bad);
  EXPECT_EQ(res.status, Bch::DecodeStatus::kCorrected);
  EXPECT_EQ(bad, good);
}

TEST(Bch, EncodeIsSystematic) {
  // The message bits appear verbatim in the codeword prefix.
  Rng rng(6);
  Bch bch(10, 3, 512);
  BitVec cw(bch.codeword_bits());
  BitVec msg(512);
  for (int i = 0; i < 512; ++i)
    if (rng.next_bool(0.5)) {
      msg.set(i);
      cw.set(i);
    }
  bch.encode(cw);
  for (int i = 0; i < 512; ++i) EXPECT_EQ(cw.test(i), msg.test(i));
}

TEST(Bch, AllZeroMessageEncodesToAllZero) {
  Bch bch(10, 4, 512);
  BitVec cw(bch.codeword_bits());
  bch.encode(cw);
  EXPECT_TRUE(cw.none());
}

}  // namespace
}  // namespace sudoku
