// Large-codeword ECC frontier (ROADMAP item 5): parameterized BCH designs,
// the generalized region cache they plug into, and the (n, k, t) analytical
// FIT model — including the regression that Hi-ECC is exactly the 1 KB/t
// instantiation of all three.
#include <gtest/gtest.h>

#include <set>

#include "baselines/hiecc_cache.h"
#include "baselines/region_cache.h"
#include "codes/ecc_design.h"
#include "reliability/analytical.h"

namespace sudoku {
namespace {

using baselines::HiEccCache;
using baselines::RegionEccCache;

// ---------- field-order selection ----------

TEST(EccDesign, MinFieldOrderKnownPoints) {
  // 64 B line: 512 + 10t <= 1023 for every frontier strength.
  EXPECT_EQ(min_bch_field_order(512, 1), 10);
  EXPECT_EQ(min_bch_field_order(512, 6), 10);
  // 512 B: 4096 + 13t <= 8191.
  EXPECT_EQ(min_bch_field_order(4096, 6), 13);
  // 1 KB: 8192 needs m=14 (2^13 - 1 = 8191 misses by one bit) — the
  // Hi-ECC geometry, 84 parity bits at t=6.
  EXPECT_EQ(min_bch_field_order(8192, 1), 14);
  EXPECT_EQ(min_bch_field_order(8192, 6), 14);
  // 4 KB: 32768 > 2^15 - 1, so m=16 even at t=1.
  EXPECT_EQ(min_bch_field_order(32768, 1), 16);
  EXPECT_EQ(min_bch_field_order(32768, 6), 16);
  // Beyond the GF2m table: 64 KB payloads don't fit any m <= 16.
  EXPECT_EQ(min_bch_field_order(65536, 1), 0);
}

TEST(EccDesign, MakeDesignResolvesHiEccGeometry) {
  const EccDesign d = make_ecc_design(1024, 6);
  EXPECT_EQ(d.name, "1KB-t6");
  EXPECT_EQ(d.data_bits, 8192u);
  EXPECT_EQ(d.m, 14);
  EXPECT_EQ(d.parity_bits, 84u);  // generator degree = m*t here
  EXPECT_EQ(d.codeword_bits, 8276u);
  EXPECT_EQ(d.lines_per_codeword(), 16u);
  EXPECT_DOUBLE_EQ(d.capacity_overhead(), 84.0 / 8192.0);
  EXPECT_DOUBLE_EQ(d.read_amplification(), 8276.0 / 512.0);
  EXPECT_DOUBLE_EQ(d.write_amplification(), (8276.0 + 512.0 + 84.0) / 512.0);
}

TEST(EccDesign, MakeDesignRejectsBadGeometry) {
  EXPECT_THROW(make_ecc_design(0, 1), std::invalid_argument);
  EXPECT_THROW(make_ecc_design(100, 1), std::invalid_argument);  // not 64 B lines
  EXPECT_THROW(make_ecc_design(65536, 1), std::invalid_argument);  // no field fits
}

TEST(EccDesign, FrontierAxesSpanTheSweep) {
  const auto& sizes = frontier_codeword_bytes();
  const auto& ts = frontier_strengths();
  ASSERT_GE(sizes.size(), 3u);
  ASSERT_GE(ts.size(), 4u);
  // Every (size, t) cell of the advertised sweep must construct.
  for (const auto bytes : sizes) {
    for (const int t : ts) {
      const EccDesign d = make_ecc_design(bytes, t);
      EXPECT_GT(d.parity_bits, 0u);
      EXPECT_LE(d.parity_bits, static_cast<std::uint32_t>(d.m * d.t));
    }
  }
}

TEST(EccDesign, CodecRoundTripsAndCorrectsTErrors) {
  for (const auto bytes : {64u, 512u}) {
    const EccDesign d = make_ecc_design(bytes, 4);
    Bch bch = make_bch(d);
    Rng rng(bytes);
    BitVec cw(bch.codeword_bits());
    for (std::uint32_t i = 0; i < d.data_bits; ++i) {
      if (rng.next_bool(0.5)) cw.set(i);
    }
    bch.encode(cw);
    const BitVec golden = cw;
    std::set<std::uint32_t> flipped;
    while (flipped.size() < 4u) {
      const auto bit = static_cast<std::uint32_t>(rng.next_below(cw.size()));
      if (flipped.insert(bit).second) cw.flip(bit);
    }
    EXPECT_EQ(bch.decode(cw).status, Bch::DecodeStatus::kCorrected);
    EXPECT_EQ(cw, golden) << d.name;
  }
}

// ---------- generalized region cache ----------

void inject(RegionEccCache& cache, std::uint64_t region, int count, Rng& rng) {
  std::set<std::uint32_t> used;
  while (static_cast<int>(used.size()) < count) {
    const auto bit = static_cast<std::uint32_t>(rng.next_below(cache.bits_per_unit()));
    if (used.insert(bit).second) cache.array().flip(region, bit);
  }
}

TEST(RegionEccCache, CorrectsTFaultsAcrossTheSweep) {
  for (const auto bytes : {512u, 1024u}) {
    for (const int t : {2, 4}) {
      RegionEccCache cache(64, bytes, t);  // 64 lines = several regions
      Rng rng(bytes + static_cast<std::uint64_t>(t));
      cache.format_random(rng);
      const BitVec golden = cache.array().read_line(1);
      inject(cache, 1, t, rng);
      const std::uint64_t units[] = {1};
      const auto stats = cache.scrub_units(units);
      EXPECT_EQ(stats.corrected, 1u) << cache.name();
      EXPECT_EQ(cache.array().read_line(1), golden) << cache.name();
    }
  }
}

TEST(RegionEccCache, BeyondTFaultsAreDetected) {
  RegionEccCache cache(64, 512, 3);
  Rng rng(3);
  cache.format_random(rng);
  inject(cache, 2, 5, rng);  // t + 2
  const std::uint64_t units[] = {2};
  EXPECT_EQ(cache.scrub_units(units).due_units, 1u);
}

TEST(RegionEccCache, RejectsLineCountNotMultipleOfRegion) {
  EXPECT_THROW(RegionEccCache(60, 512, 2), std::invalid_argument);  // 60 % 8 != 0
  EXPECT_THROW(RegionEccCache(0, 512, 2), std::invalid_argument);
}

TEST(RegionEccCache, LineDataPathRoundTripsWithRmwAccounting) {
  RegionEccCache cache(32, 512, 2);  // 4 regions of 8 lines
  Rng rng(11);
  cache.format_random(rng);
  cache.reset_io_stats();

  BitVec data(RegionEccCache::kLineDataBits);
  for (std::uint32_t i = 0; i < data.size(); i += 2) data.set(i);
  cache.write_line_data(9, data);  // region 1, slot 1
  const auto rd = cache.read_line_data(9);
  EXPECT_EQ(rd.status, RegionEccCache::LineReadStatus::kClean);
  EXPECT_EQ(rd.data, data);
  // Neighbouring line in the same region survived the RMW.
  EXPECT_EQ(cache.read_line_data(10).status, RegionEccCache::LineReadStatus::kClean);

  const auto& io = cache.io_stats();
  EXPECT_EQ(io.line_reads, 2u);
  EXPECT_EQ(io.line_writes, 1u);
  EXPECT_EQ(io.rmw_encodes, 1u);
  EXPECT_EQ(io.region_decodes, 3u);
  const std::uint64_t cw = cache.codec().codeword_bits();
  // Write: read + write a full codeword; each clean read: one codeword read.
  EXPECT_EQ(io.stored_bits_read, 3 * cw);
  EXPECT_EQ(io.stored_bits_written, cw);
  EXPECT_GT(io.bandwidth_amplification(), cache.design().read_amplification());
}

TEST(RegionEccCache, ScrubOnReadRepairsCorrectableRegion) {
  RegionEccCache cache(32, 512, 2);
  Rng rng(12);
  cache.format_random(rng);
  const BitVec golden = cache.array().read_line(0);
  inject(cache, 0, 2, rng);
  const auto rd = cache.read_line_data(3);  // any line of region 0
  EXPECT_EQ(rd.status, RegionEccCache::LineReadStatus::kCorrected);
  EXPECT_EQ(cache.array().read_line(0), golden);
  // Second read sees the repaired region.
  EXPECT_EQ(cache.read_line_data(3).status, RegionEccCache::LineReadStatus::kClean);
}

// ---------- Hi-ECC as the (1 KB, t) special case ----------

TEST(RegionEccCache, HiEccIsTheOneKilobyteInstantiation) {
  HiEccCache hi(256);
  EXPECT_EQ(hi.name(), "Hi-ECC(ECC-6/1KB)");  // paper-facing name preserved
  EXPECT_EQ(hi.lines_per_region(), HiEccCache::kLinesPerRegion);
  EXPECT_EQ(hi.design().data_bits, HiEccCache::kRegionDataBits);
  EXPECT_EQ(hi.design().parity_bits, 84u);
  EXPECT_DOUBLE_EQ(hi.overhead_bits_per_line(), 84.0 / 16.0);

  // Same seed => bit-identical formatted contents in the generalized cache:
  // the RNG consumption and encode path must not have drifted.
  RegionEccCache gen(256, 1024, 6);
  Rng a(77), b(77);
  hi.format_random(a);
  gen.format_random(b);
  for (std::uint64_t r = 0; r < hi.num_units(); ++r) {
    ASSERT_EQ(hi.array().read_line(r), gen.array().read_line(r)) << r;
  }
}

// ---------- analytical (n, k, t) FIT ----------

TEST(RegionCodeFit, HiEccIsTheRegionCodeSpecialCase) {
  reliability::CacheParams p;
  p.num_lines = 1ull << 20;
  const auto hi = reliability::hi_ecc(p);
  const auto gen = reliability::region_code_fit(p, 8192, 84, 6);
  EXPECT_DOUBLE_EQ(hi.log_p_interval, gen.log_p_interval);  // exact, not approx
  EXPECT_DOUBLE_EQ(hi.fit(), gen.fit());
}

TEST(RegionCodeFit, StrongerCodeAndSmallerCodewordBothLowerFit) {
  reliability::CacheParams p;
  for (const auto bytes : frontier_codeword_bytes()) {
    double prev_fit = -1.0;
    for (const int t : frontier_strengths()) {
      const EccDesign d = make_ecc_design(bytes, t);
      const auto r = reliability::region_code_fit(p, d.data_bits, d.parity_bits, d.t);
      if (prev_fit >= 0.0) {
        EXPECT_LT(r.fit(), prev_fit) << d.name;
      }
      prev_fit = r.fit();
    }
  }
  // At fixed strength, concentrating more bits under one codeword weakens it.
  const EccDesign small = make_ecc_design(512, 4);
  const EccDesign large = make_ecc_design(4096, 4);
  const auto fit_small =
      reliability::region_code_fit(p, small.data_bits, small.parity_bits, 4);
  const auto fit_large =
      reliability::region_code_fit(p, large.data_bits, large.parity_bits, 4);
  EXPECT_LT(fit_small.fit(), fit_large.fit());
}

}  // namespace
}  // namespace sudoku
