#include "sim/dram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sudoku::sim {
namespace {

DramConfig small_config() {
  DramConfig c;
  return c;  // defaults = Table VI DDR3-800 x2
}

TEST(Dram, DecodeSeparatesChannelsByBlock) {
  DramModel dram(small_config());
  const auto a = dram.decode(0);
  const auto b = dram.decode(64);
  EXPECT_NE(a.channel, b.channel);  // consecutive blocks alternate channels
  EXPECT_EQ(dram.decode(128).channel, a.channel);
}

TEST(Dram, DecodeFieldsInRange) {
  DramModel dram(small_config());
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto d = dram.decode(rng.next_u64() >> 20);
    EXPECT_LT(d.channel, 2u);
    EXPECT_LT(d.rank, 2u);
    EXPECT_LT(d.bank, 8u);
  }
}

TEST(Dram, RowHitIsFasterThanRowMiss) {
  DramConfig cfg = small_config();
  DramModel dram(cfg);
  // Same bank, same row: stride over all channels/banks/ranks hits the
  // next block of bank 0's row 0.
  const std::uint64_t same_row_stride =
      64ull * cfg.channels * cfg.banks_per_rank * cfg.ranks_per_channel;
  const double t0 = dram.access(0, 0.0, false);                      // cold
  const double t1 = dram.access(same_row_stride, t0, false) - t0;    // hit
  EXPECT_GT(t0, t1);  // first access pays tRCD on top
  EXPECT_EQ(dram.stats().row_hits, 1u);
  EXPECT_EQ(dram.stats().row_misses, 1u);
}

TEST(Dram, RowConflictPaysPrecharge) {
  DramConfig cfg = small_config();
  DramModel dram(cfg);
  // Two different rows of the same bank: second access must be the slowest
  // of the three access types.
  const std::uint64_t row_stride =
      64ull * cfg.channels * cfg.banks_per_rank * cfg.ranks_per_channel *
      (cfg.row_bytes / 64);
  const double t0 = dram.access(0, 0.0, false);
  const double start2 = t0 + 1.0;
  const double t_conflict = dram.access(row_stride, start2, false) - start2;
  EXPECT_EQ(dram.stats().row_conflicts, 1u);
  // Conflict latency >= tRP + tRCD + tCAS + burst.
  const auto& T = cfg.timing;
  EXPECT_GE(t_conflict, T.tRP + T.tRCD + T.tCAS + T.tBurst - 1e-9);
}

TEST(Dram, LatencyIsReasonableForDdr3) {
  // A cold access should land in the 60-120 ns range typical of DDR3-800.
  DramModel dram(small_config());
  const double t = dram.access(0, 0.0, false);
  EXPECT_GT(t, 50.0);
  EXPECT_LT(t, 150.0);
}

TEST(Dram, BusSerializesBursts) {
  DramModel dram(small_config());
  // Two simultaneous accesses to the same channel but different banks: the
  // data bursts cannot overlap on the shared bus.
  const std::uint64_t bank_stride = 64ull * 2;  // next bank, same channel
  const double t_a = dram.access(0, 0.0, false);
  const double t_b = dram.access(bank_stride, 0.0, false);
  EXPECT_GE(std::abs(t_b - t_a), small_config().timing.tBurst - 1e-9);
}

TEST(Dram, ChannelsAreIndependent) {
  DramModel dram(small_config());
  const double t_a = dram.access(0, 0.0, false);    // channel 0
  const double t_b = dram.access(64, 0.0, false);   // channel 1
  EXPECT_NEAR(t_a, t_b, 1e-9);  // no shared resources between them
}

TEST(Dram, TfawLimitsActivateBursts) {
  DramConfig cfg = small_config();
  cfg.ranks_per_channel = 1;
  DramModel dram(cfg);
  // Five activates to distinct banks of one rank at t=0: the fifth must be
  // pushed past tFAW.
  double last = 0.0;
  for (int b = 0; b < 5; ++b) {
    const std::uint64_t addr = 64ull * 2 * b;  // same channel, banks 0..4
    last = dram.access(addr, 0.0, false);
  }
  EXPECT_GE(last, cfg.timing.tFAW);
}

TEST(Dram, RefreshEventuallyBlocksBank) {
  DramConfig cfg = small_config();
  DramModel dram(cfg);
  dram.access(0, 0.0, false);
  // Jump far past several tREFI periods; refreshes must have been applied.
  dram.access(0, 10 * cfg.timing.tREFI, false);
  EXPECT_GT(dram.stats().refreshes_applied, 5u);
}

TEST(Dram, StreamingEnjoysHighRowHitRate) {
  // A sequential sweep touches one row per bank; hits dominate, with the
  // residual misses caused by periodic refreshes closing rows (the serial
  // issue pattern here stretches the sweep across many tREFI periods).
  DramModel dram(small_config());
  double t = 0.0;
  for (std::uint64_t addr = 0; addr < 64 * 4096; addr += 64) {
    t = dram.access(addr, t, false);
  }
  EXPECT_GT(dram.stats().row_hit_rate(), 0.75);
  EXPECT_GT(dram.stats().refreshes_applied, 0u);
}

TEST(Dram, RandomTrafficHasLowRowHitRate) {
  DramModel dram(small_config());
  Rng rng(2);
  double t = 0.0;
  for (int i = 0; i < 4096; ++i) {
    t = dram.access((rng.next_u64() >> 24) & ~63ull, t, false);
  }
  EXPECT_LT(dram.stats().row_hit_rate(), 0.3);
}

TEST(Dram, WritesAddRecoveryTime) {
  // tWR only matters once tRAS is already satisfied, so open the row first
  // (cold miss), then do a row-hit access (read vs write), then force a
  // conflict: the post-write precharge must wait out the recovery.
  DramConfig cfg = small_config();
  DramModel w(cfg), r(cfg);
  const std::uint64_t same_row =
      64ull * cfg.channels * cfg.banks_per_rank * cfg.ranks_per_channel;
  const std::uint64_t row_stride = same_row * (cfg.row_bytes / 64);
  const double t0w = w.access(0, 0.0, false);
  const double t0r = r.access(0, 0.0, false);
  const double tw = w.access(same_row, t0w, true);    // row-hit write
  const double tr = r.access(same_row, t0r, false);   // row-hit read
  EXPECT_NEAR(tw, tr, 1e-9);  // data completion identical...
  // ...but the write leaves the bank busy for tWR longer.
  const double after_w = w.access(row_stride, tw, false);
  const double after_r = r.access(row_stride, tr, false);
  EXPECT_GT(after_w, after_r);
}

TEST(Dram, MonotoneUnderLoad) {
  // Completion times never go backwards for a serially-dependent stream.
  DramModel dram(small_config());
  Rng rng(3);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double done = dram.access((rng.next_u64() >> 26) & ~63ull, t, rng.next_bool(0.3));
    ASSERT_GE(done, t);
    t = done;
  }
}

}  // namespace
}  // namespace sudoku::sim
