// Importance-sampled rare-event estimator (src/exp/rare_event.h): the
// likelihood-ratio math against closed forms, the stratified estimator
// against unweighted MC within joint confidence intervals, determinism,
// and the effective-sample-size win that justifies the machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/prob.h"
#include "exp/mc_experiments.h"
#include "exp/rare_event.h"
#include "reliability/analytical.h"
#include "reliability/montecarlo.h"
#include "sttram/fault_injector.h"

namespace sudoku::exp {
namespace {

using reliability::McConfig;
using sudoku::FaultInjector;

// ---- planning ----------------------------------------------------------

TEST(RareEventPlan, DeterministicAndCoversTheTargetSupport) {
  StratifyParams params;
  params.total_bits = 64.0 * 553.0;
  params.ber = 5.3e-6;
  params.trials = 20000;
  params.min_count = 4;

  const auto a = plan_strata(params);
  const auto b = plan_strata(params);
  ASSERT_EQ(a.strata.size(), b.strata.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < a.strata.size(); ++i) {
    EXPECT_EQ(a.strata[i].count, b.strata[i].count);
    EXPECT_EQ(a.strata[i].trials, b.strata[i].trials);
    EXPECT_GE(a.strata[i].trials, params.min_stratum_trials);
    if (i > 0) {
      EXPECT_GT(a.strata[i].count, a.strata[i - 1].count);
    }
    total += a.strata[i].trials;
  }
  EXPECT_EQ(a.strata.front().count, params.min_count);
  EXPECT_GE(total, params.trials);  // floors may overshoot, never undershoot
  // Truncation bias bound: tiny relative to the base tail at min_count.
  const double tail = std::exp(log_binom_tail_ge(
      params.total_bits, static_cast<double>(params.min_count), params.ber));
  EXPECT_LT(a.excluded_mass, 1e-6 * tail + 1e-300);
}

TEST(RareEventPlan, RejectsDegenerateInputs) {
  StratifyParams params;
  params.total_bits = 0;
  params.ber = 1e-4;
  EXPECT_THROW(plan_strata(params), std::runtime_error);
  params.total_bits = 1000;
  params.ber = 0.0;
  EXPECT_THROW(plan_strata(params), std::runtime_error);
  params.ber = 1e-4;
  params.min_count = 2000;  // past the entire support
  EXPECT_THROW(plan_strata(params), std::runtime_error);
}

// ---- likelihood-ratio math against closed forms ------------------------

// Threshold toy: the unit "fails" iff the fault count reaches T. Then
// pi_k = 1{k >= T} with zero conditional variance, so the estimate must
// reproduce the exact Binomial tail up to the planned truncation mass.
TEST(RareEventMath, ThresholdModelReproducesBinomialTailExactly) {
  StratifyParams params;
  params.total_bits = 4096;
  params.ber = 1e-4;
  params.trials = 2000;
  params.min_count = 2;

  const auto plan = plan_strata(params);
  constexpr std::uint64_t kThreshold = 3;
  const auto est = run_stratified(
      plan, /*seed=*/1, [](std::uint64_t count, Rng&) { return count >= kThreshold; });

  const double exact = std::exp(log_binom_tail_ge(
      params.total_bits, static_cast<double>(kThreshold), params.ber));
  EXPECT_NEAR(est.p_unit, exact, est.excluded_mass + 1e-15 * exact);
  EXPECT_EQ(est.ci95_unit(), est.ci95_unit());  // finite (not NaN)
}

// Bernoulli-thinning toy: given k faults each "matters" independently with
// probability q, failing iff any matters: pi_k = 1 - (1-q)^k. Closed form:
// P[fail] = 1 - ((1-p) + p(1-q))^N = 1 - (1 - pq)^N. Exercises the
// weighted recombination with genuinely noisy per-stratum estimates.
TEST(RareEventMath, ThinnedModelMatchesClosedFormWithinCi) {
  StratifyParams params;
  params.total_bits = 8192;
  params.ber = 2e-4;
  params.trials = 30000;
  params.min_count = 1;

  const double q = 0.05;
  const auto plan = plan_strata(params);
  const auto est = run_stratified(plan, /*seed=*/5,
                                  [&](std::uint64_t count, Rng& rng) {
                                    for (std::uint64_t i = 0; i < count; ++i) {
                                      if (rng.next_double() < q) return true;
                                    }
                                    return false;
                                  });

  const double exact =
      -std::expm1(params.total_bits * std::log1p(-params.ber * q));
  EXPECT_NEAR(est.p_unit, exact, est.ci95_unit() + est.excluded_mass);
  EXPECT_GT(est.ess, 0.0);
}

// ECC-k block toy (what bench_table2 cross-checks at the operating point):
// 64 independent lines, a line fails past k faults. Closed form is the
// lifted per-line Binomial tail.
TEST(RareEventMath, EccBlockToyMatchesClosedFormWithinCi) {
  const int k = 1;
  const std::uint64_t block_lines = 64;
  const std::uint32_t line_bits = 522;
  const double ber = 5.3e-6;

  StratifyParams params;
  params.total_bits = static_cast<double>(block_lines) * line_bits;
  params.ber = ber;
  params.trials = 20000;
  params.min_count = static_cast<std::uint64_t>(k) + 1;

  const auto plan = plan_strata(params);
  FaultInjector injector(block_lines, line_bits, ber);
  const auto est = run_stratified(
      plan, /*seed=*/11, [&](std::uint64_t count, Rng& rng) {
        const auto batch = injector.sample_exact(rng, count);
        for (const auto& [line, bits] : batch) {
          if (bits.size() > static_cast<std::size_t>(k)) return true;
        }
        return false;
      });

  const double p_line =
      std::exp(reliability::log_p_line_ge(line_bits, k + 1, ber));
  const double exact = lift_units(p_line, static_cast<double>(block_lines));
  EXPECT_NEAR(est.p_unit, exact, est.ci95_unit() + est.excluded_mass);
  // ECC-1 at p~2.4e-4 is only moderately rare, so the win here is modest;
  // the 100x acceptance bar lives at the fig7 operating point
  // (RareEventEngine.OperatingPointEssBeatsUnweightedBy100x).
  EXPECT_GT(est.ess, 10.0 * static_cast<double>(est.trials));
}

TEST(RareEventMath, DeterministicForFixedSeed) {
  StratifyParams params;
  params.total_bits = 4096;
  params.ber = 1e-4;
  params.trials = 5000;
  params.min_count = 1;
  const auto plan = plan_strata(params);
  const auto trial = [](std::uint64_t count, Rng& rng) {
    return count >= 2 && rng.next_double() < 0.3;
  };
  const auto a = run_stratified(plan, 123, trial);
  const auto b = run_stratified(plan, 123, trial);
  EXPECT_EQ(a.p_unit, b.p_unit);
  EXPECT_EQ(a.var_unit, b.var_unit);
  const auto c = run_stratified(plan, 124, trial);
  EXPECT_NE(a.p_unit, c.p_unit);  // the seed actually feeds the streams
}

// ---- full-controller estimator -----------------------------------------

// Same system measured both ways at a BER where unweighted MC still sees
// events: the estimates must agree within the joint 95% interval. This is
// ISSUE 8's cross-validation acceptance criterion in test form.
TEST(RareEventEngine, AgreesWithUnweightedMcWithinJointCi) {
  McConfig cfg;
  cfg.cache.num_lines = 64;
  cfg.cache.group_size = 64;
  cfg.cache.ber = 1e-4;
  cfg.level = SudokuLevel::kX;
  cfg.max_intervals = 8000;
  cfg.seed = 424;

  const auto unweighted = run_montecarlo_parallel(cfg, {});
  const double p_mc = unweighted.p_failure_per_interval();
  const double var_mc =
      p_mc * (1.0 - p_mc) / static_cast<double>(unweighted.intervals);

  RareEventConfig recfg;
  recfg.base = cfg;
  recfg.trials = 8000;
  recfg.min_count = 4;  // SuDoku-X: a DUE needs two 2-fault lines
  const auto est = run_rare_event(recfg);

  const double joint = 1.96 * std::sqrt(est.var_unit + var_mc);
  EXPECT_NEAR(est.p_unit, p_mc, joint + est.excluded_mass);
  // BER 1e-4 is deliberately NOT rare (the unweighted side needs events to
  // compare against), so stratification only breaks even here — its win is
  // asserted where it matters, at the operating point below. This guards
  // against the estimator being catastrophically *worse*.
  EXPECT_LT(est.var_unit, 4.0 * var_mc);
}

// At the paper's operating point (fig7's lowest-BER point, 5.3e-6) the
// acceptance bar: effective sample size at least 100x the same number of
// unweighted trials.
TEST(RareEventEngine, OperatingPointEssBeatsUnweightedBy100x) {
  RareEventConfig recfg;
  recfg.base.cache.num_lines = 64;
  recfg.base.cache.group_size = 64;
  recfg.base.cache.ber = 5.3e-6;
  recfg.base.level = SudokuLevel::kX;
  recfg.base.seed = 41;
  recfg.trials = 8000;
  recfg.min_count = 4;

  const auto est = run_rare_event(recfg);
  EXPECT_GE(est.ess, 100.0 * static_cast<double>(est.trials));
  // And the estimate itself must sit on the analytical value — wide bound
  // (3 sigma + truncation) so only genuine breakage trips it.
  const auto cp = recfg.base.cache;
  const double analytic = reliability::sudoku_x_due(cp).p_interval();
  EXPECT_NEAR(est.p_unit, analytic,
              3.0 * std::sqrt(est.var_unit) + est.excluded_mass + 0.5 * analytic);
}

TEST(RareEventEngine, ThreadCountDoesNotChangeTheEstimate) {
  RareEventConfig recfg;
  recfg.base.cache.num_lines = 64;
  recfg.base.cache.group_size = 64;
  recfg.base.cache.ber = 1e-4;
  recfg.base.level = SudokuLevel::kX;
  recfg.base.seed = 99;
  recfg.trials = 2000;
  recfg.min_count = 4;

  ExpOptions one;
  one.threads = 1;
  ExpOptions three;
  three.threads = 3;
  const auto a = run_rare_event(recfg, one);
  const auto b = run_rare_event(recfg, three);
  EXPECT_EQ(a.p_unit, b.p_unit);
  EXPECT_EQ(a.var_unit, b.var_unit);
  EXPECT_EQ(a.trials, b.trials);
}

TEST(RareEventEngine, RejectsWriteErrorMode) {
  RareEventConfig recfg;
  recfg.base.cache.num_lines = 64;
  recfg.base.cache.group_size = 64;
  recfg.base.host_writes_per_interval = 10;
  recfg.base.wer = 1e-6;
  EXPECT_THROW(run_rare_event(recfg), std::runtime_error);
}

// ---- lifting -----------------------------------------------------------

TEST(RareEventLift, MatchesIndependentCompositionAndPropagatesVariance) {
  EXPECT_DOUBLE_EQ(lift_units(0.0, 1000), 0.0);
  EXPECT_DOUBLE_EQ(lift_units(1.0, 1000), 1.0);
  const double p = 3e-4;
  EXPECT_NEAR(lift_units(p, 64), 1.0 - std::pow(1.0 - p, 64), 1e-13);
  // Delta method: slope^2 * var, slope = n(1-p)^(n-1).
  const double var = 1e-10;
  const double slope = 64.0 * std::pow(1.0 - p, 63.0);
  EXPECT_NEAR(lift_units_variance(p, var, 64), slope * slope * var, 1e-20);
  // Small-p regime: lifting ~multiplies by n (second-order term ~n^2 p^2 / 2).
  EXPECT_NEAR(lift_units(1e-12, 16384), 16384e-12, 1e-15);
}

}  // namespace
}  // namespace sudoku::exp
