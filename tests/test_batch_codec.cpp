// Differential test battery for the BatchCodec engine (docs/perf.md):
// the bit-plane transpose, the bit-sliced Hamming and BCH batch syndrome
// kernels, LineCodec::fully_clean_batch, decode_with_syndromes, and the
// CRC-31 kernel dispatch (force_kernel / SUDOKU_CRC31_KERNEL) including
// the PCLMUL folding path. Everything is pinned to the bit-serial
// oracles under the "bit-identical or it doesn't ship" rule; every
// randomized assertion prints its trial seed so a failure replays.
//
// Oracle-cost note: the BCH bit-serial reference runs at ~1 MB/s, so the
// 1e4-batch sweeps compare word-for-word against syndromes() — itself
// pinned bit-identical to syndromes_reference() by
// tests/test_codec_kernels.cpp — and re-check a sampled line per ~50
// batches against the true bit-serial oracle. The corner-pattern batches
// compare every line against the bit-serial oracle directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <vector>

#include "codes/batch_codec.h"
#include "codes/bch.h"
#include "codes/crc31.h"
#include "codes/hamming.h"
#include "common/rng.h"
#include "sudoku/line_codec.h"

namespace sudoku {
namespace {

constexpr int kBatchTrials = 10000;  // >= 1e4 random batches per code
constexpr std::uint64_t kBaseSeed = 0xba7c4c0dec5ull;

// Batch widths cycled across trials: the corner widths 1, 63, 64 plus a
// spread of partial widths so every trial count exercises ragged lanes.
constexpr std::size_t kWidths[] = {1, 63, 64, 12, 2, 33, 64, 7,
                                   48, 11, 64, 25, 5, 63, 17, 40};

BitVec random_bits(std::size_t n, Rng& rng) {
  BitVec v(n);
  auto w = v.words();
  for (auto& word : w) word = rng.next_u64();
  if (n % 64) w[w.size() - 1] &= (std::uint64_t{1} << (n % 64)) - 1;
  return v;
}

// Flip a random mask of <= max_weight distinct bits.
void inject(BitVec& v, Rng& rng, int max_weight) {
  const int weight = static_cast<int>(rng.next_below(max_weight + 1));
  std::set<std::uint64_t> mask;
  while (static_cast<int>(mask.size()) < weight) mask.insert(rng.next_below(v.size()));
  for (const auto bit : mask) v.flip(bit);
}

// Stage a batch of codewords and finalize.
void load_batch(BitPlanes& planes, const std::vector<BitVec>& batch,
                std::size_t nbits) {
  planes.reset(nbits, batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    planes.load_line(i, batch[i].words());
  }
  planes.finalize();
}

// ---------------------------------------------------------------------------
// Transpose + BitPlanes container
// ---------------------------------------------------------------------------

TEST(BatchCodec, Transpose64MatchesNaiveAndRoundTrips) {
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t seed = kBaseSeed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    std::uint64_t m[64], orig[64];
    for (auto& w : m) w = rng.next_u64();
    std::copy(std::begin(m), std::end(m), std::begin(orig));
    transpose64(m);
    for (int r = 0; r < 64; ++r) {
      for (int c = 0; c < 64; ++c) {
        ASSERT_EQ((m[r] >> c) & 1u, (orig[c] >> r) & 1u)
            << "seed " << seed << " r " << r << " c " << c;
      }
    }
    transpose64(m);  // involution
    for (int r = 0; r < 64; ++r) ASSERT_EQ(m[r], orig[r]) << "seed " << seed;
  }
}

TEST(BatchCodec, BitPlanesMatchStagedLines) {
  // Planes must reproduce every staged bit, and lanes of unstaged slots
  // must read zero — for full, partial, and single-line batches and for
  // word-aligned and ragged codeword widths.
  for (const std::size_t nbits : {64ul, 127ul, 553ul, 572ul}) {
    for (int trial = 0; trial < 64; ++trial) {
      const std::uint64_t seed = kBaseSeed + 1000 + static_cast<std::uint64_t>(trial);
      Rng rng(seed);
      const std::size_t count = kWidths[trial % std::size(kWidths)];
      std::vector<BitVec> batch;
      for (std::size_t i = 0; i < count; ++i) batch.push_back(random_bits(nbits, rng));
      BitPlanes planes;
      load_batch(planes, batch, nbits);
      ASSERT_EQ(planes.nbits(), nbits);
      ASSERT_EQ(planes.count(), count);
      for (std::size_t p = 0; p < nbits; ++p) {
        const std::uint64_t plane = planes.plane(p);
        for (std::size_t line = 0; line < count; ++line) {
          ASSERT_EQ((plane >> line) & 1u, batch[line].test(p) ? 1u : 0u)
              << "seed " << seed << " nbits " << nbits << " bit " << p
              << " line " << line;
        }
        ASSERT_EQ(plane & ~planes.lane_mask(), 0u)
            << "seed " << seed << " nbits " << nbits << " bit " << p;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hamming batch kernel vs the bit-serial oracle
// ---------------------------------------------------------------------------

TEST(BatchCodec, HammingBatchSyndromesMatchBitSerialOracle) {
  const Hamming h(LineCodec::kMessageBits);  // the production 543->553 code
  const std::size_t n = h.codeword_bits();
  BitPlanes planes;
  std::vector<std::uint32_t> out(BitPlanes::kMaxLines);
  for (int trial = 0; trial < kBatchTrials; ++trial) {
    const std::uint64_t seed = kBaseSeed + 2000 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    const std::size_t count = kWidths[trial % std::size(kWidths)];
    std::vector<BitVec> batch;
    for (std::size_t i = 0; i < count; ++i) {
      BitVec cw = random_bits(n, rng);
      h.encode(cw);
      inject(cw, rng, 6);  // some lines stay clean (weight 0), some dirty
      batch.push_back(std::move(cw));
    }
    load_batch(planes, batch, n);
    h.batch_syndromes(planes, out.data());
    const std::uint64_t clean = h.batch_syndromes_zero(planes);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t oracle = h.syndrome_reference(batch[i]);
      ASSERT_EQ(out[i], oracle) << "seed " << seed << " line " << i;
      ASSERT_EQ((clean >> i) & 1u, oracle == 0 ? 1u : 0u)
          << "seed " << seed << " line " << i;
    }
    ASSERT_EQ(clean & ~planes.lane_mask(), 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// BCH batch kernel vs syndromes() (oracle-pinned) + sampled bit-serial
// ---------------------------------------------------------------------------

class BatchBch : public ::testing::TestWithParam<int /*t*/> {};

TEST_P(BatchBch, BatchSyndromesMatchWordHornerAndSampledOracle) {
  const int t = GetParam();
  const Bch bch(10, t, 512);
  const std::size_t n = bch.codeword_bits();
  const std::size_t nsyn = static_cast<std::size_t>(2 * t);
  BitPlanes planes;
  std::vector<std::uint32_t> out(BitPlanes::kMaxLines * nsyn);
  for (int trial = 0; trial < kBatchTrials; ++trial) {
    const std::uint64_t seed = kBaseSeed + 3000 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    const std::size_t count = kWidths[trial % std::size(kWidths)];
    std::vector<BitVec> batch;
    for (std::size_t i = 0; i < count; ++i) {
      BitVec cw = random_bits(n, rng);
      for (std::size_t b = 512; b < n; ++b) cw.reset(b);
      bch.encode(cw);
      inject(cw, rng, 8);
      batch.push_back(std::move(cw));
    }
    load_batch(planes, batch, n);
    bch.batch_syndromes(planes, out.data());
    const std::uint64_t clean = bch.batch_syndromes_zero(planes);
    for (std::size_t i = 0; i < count; ++i) {
      const auto horner = bch.syndromes(batch[i]);
      ASSERT_EQ(nsyn, horner.size());
      for (std::size_t j = 0; j < nsyn; ++j) {
        ASSERT_EQ(out[i * nsyn + j], horner[j])
            << "seed " << seed << " t " << t << " line " << i << " S_" << j + 1;
      }
      const bool zero = std::all_of(horner.begin(), horner.end(),
                                    [](std::uint32_t s) { return s == 0; });
      ASSERT_EQ((clean >> i) & 1u, zero ? 1u : 0u)
          << "seed " << seed << " t " << t << " line " << i;
    }
    ASSERT_EQ(clean & ~planes.lane_mask(), 0u) << "seed " << seed << " t " << t;
    if (trial % 50 == 0) {
      // Close the oracle chain on a sampled line: batch == bit-serial.
      const std::size_t i = rng.next_below(count);
      const auto oracle = bch.syndromes_reference(batch[i]);
      for (std::size_t j = 0; j < nsyn; ++j) {
        ASSERT_EQ(out[i * nsyn + j], oracle[j])
            << "seed " << seed << " t " << t << " line " << i << " S_" << j + 1;
      }
    }
  }
}

TEST_P(BatchBch, DecodeWithSyndromesMatchesDecode) {
  // The batched scrub paths feed batch syndromes into
  // decode_with_syndromes; the outcome (status, corrected count, final
  // codeword) must be identical to the self-contained decode().
  const int t = GetParam();
  const Bch bch(10, t, 512);
  const std::size_t n = bch.codeword_bits();
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t seed = kBaseSeed + 4000 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    BitVec cw = random_bits(n, rng);
    for (std::size_t b = 512; b < n; ++b) cw.reset(b);
    bch.encode(cw);
    inject(cw, rng, t + 2);  // clean, correctable, and uncorrectable mixes
    BitVec via_decode = cw;
    const auto a = bch.decode(via_decode);
    BitVec via_syndromes = cw;
    const auto s = bch.syndromes(cw);
    const auto b = bch.decode_with_syndromes(via_syndromes, s);
    ASSERT_EQ(a.status, b.status) << "seed " << seed << " t " << t;
    ASSERT_EQ(a.corrected, b.corrected) << "seed " << seed << " t " << t;
    ASSERT_EQ(via_decode, via_syndromes) << "seed " << seed << " t " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Strengths, BatchBch, ::testing::Values(2, 3, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           // Lvalue operand: the char* + string&& overload hits
                           // GCC 12's -Wrestrict false positive (PR 105329).
                           const std::string t = std::to_string(info.param);
                           return "t" + t;
                         });

TEST(BatchCodec, HiEccWidthBatchSyndromesMatchOracle) {
  // The m=14 Hi-ECC geometry (8192-bit regions): a shorter sweep vs
  // syndromes(), with a handful of lines closed against the bit-serial
  // oracle (which runs at <1 MB/s at this width).
  const Bch bch(14, 6, 8192);
  const std::size_t n = bch.codeword_bits();
  const std::size_t nsyn = 12;
  BitPlanes planes;
  std::vector<std::uint32_t> out(BitPlanes::kMaxLines * nsyn);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t seed = kBaseSeed + 5000 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    const std::size_t count = kWidths[trial % std::size(kWidths)];
    std::vector<BitVec> batch;
    for (std::size_t i = 0; i < count; ++i) {
      BitVec cw = random_bits(n, rng);
      for (std::size_t b = 8192; b < n; ++b) cw.reset(b);
      bch.encode(cw);
      inject(cw, rng, 8);
      batch.push_back(std::move(cw));
    }
    load_batch(planes, batch, n);
    bch.batch_syndromes(planes, out.data());
    const std::uint64_t clean = bch.batch_syndromes_zero(planes);
    for (std::size_t i = 0; i < count; ++i) {
      const auto horner = bch.syndromes(batch[i]);
      const bool zero = std::all_of(horner.begin(), horner.end(),
                                    [](std::uint32_t s) { return s == 0; });
      for (std::size_t j = 0; j < nsyn; ++j) {
        ASSERT_EQ(out[i * nsyn + j], horner[j])
            << "seed " << seed << " line " << i << " S_" << j + 1;
      }
      ASSERT_EQ((clean >> i) & 1u, zero ? 1u : 0u) << "seed " << seed << " line " << i;
    }
    if (trial % 100 == 0) {
      const std::size_t i = rng.next_below(count);
      const auto oracle = bch.syndromes_reference(batch[i]);
      for (std::size_t j = 0; j < nsyn; ++j) {
        ASSERT_EQ(out[i * nsyn + j], oracle[j])
            << "seed " << seed << " line " << i << " S_" << j + 1;
      }
      BitVec via_decode = batch[i];
      const auto a = bch.decode(via_decode);
      BitVec via_syndromes = batch[i];
      const auto b = bch.decode_with_syndromes(
          via_syndromes, {out.data() + i * nsyn, nsyn});
      ASSERT_EQ(a.status, b.status) << "seed " << seed;
      ASSERT_EQ(via_decode, via_syndromes) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Corner batches: the patterns most likely to break a transpose or an
// accumulator indexing bug, every line closed against the bit-serial oracle.
// ---------------------------------------------------------------------------

TEST(BatchCodec, CornerPatternBatchesMatchBitSerialOracles) {
  const Hamming h(LineCodec::kMessageBits);
  const Bch bch10(10, 6, 512);
  const Bch bch14(14, 6, 8192);
  struct Geometry {
    std::size_t n;
    const Hamming* hamming;
    const Bch* bch;
  };
  const Geometry geoms[] = {{h.codeword_bits(), &h, nullptr},
                            {bch10.codeword_bits(), nullptr, &bch10},
                            {bch14.codeword_bits(), nullptr, &bch14}};
  BitPlanes planes;
  for (const auto& g : geoms) {
    std::vector<BitVec> batch;
    for (std::size_t i = 0; i < BitPlanes::kMaxLines; ++i) {
      BitVec cw(g.n);
      switch (i % 4) {
        case 0:  // all-zero: the canonical codeword of every linear code
          break;
        case 1:  // all-one
          for (std::size_t b = 0; b < g.n; ++b) cw.set(b);
          break;
        case 2:  // single bit, position varied across lines
          cw.set((i * 131) % g.n);
          break;
        case 3: {  // 32-bit burst straddling word boundaries
          const std::size_t start = (i * 97) % (g.n - 32);
          for (std::size_t b = start; b < start + 32; ++b) cw.set(b);
          break;
        }
      }
      batch.push_back(std::move(cw));
    }
    load_batch(planes, batch, g.n);
    if (g.hamming != nullptr) {
      std::vector<std::uint32_t> out(batch.size());
      g.hamming->batch_syndromes(planes, out.data());
      const std::uint64_t clean = g.hamming->batch_syndromes_zero(planes);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::uint32_t oracle = g.hamming->syndrome_reference(batch[i]);
        ASSERT_EQ(out[i], oracle) << "n " << g.n << " line " << i;
        ASSERT_EQ((clean >> i) & 1u, oracle == 0 ? 1u : 0u) << "line " << i;
      }
    } else {
      const std::size_t nsyn = 12;
      std::vector<std::uint32_t> out(batch.size() * nsyn);
      g.bch->batch_syndromes(planes, out.data());
      const std::uint64_t clean = g.bch->batch_syndromes_zero(planes);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto oracle = g.bch->syndromes_reference(batch[i]);
        const bool zero = std::all_of(oracle.begin(), oracle.end(),
                                      [](std::uint32_t s) { return s == 0; });
        for (std::size_t j = 0; j < nsyn; ++j) {
          ASSERT_EQ(out[i * nsyn + j], oracle[j])
              << "n " << g.n << " line " << i << " S_" << j + 1;
        }
        ASSERT_EQ((clean >> i) & 1u, zero ? 1u : 0u) << "n " << g.n << " line " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Stream chunking: sizes 1, 63, 64, 65, ... split into <=64-line batches
// exactly like the scrubber sweep and the throughput bench.
// ---------------------------------------------------------------------------

TEST(BatchCodec, StreamSizesCoverFullAndPartialTails) {
  const Bch bch(10, 3, 512);
  const std::size_t n = bch.codeword_bits();
  const std::size_t nsyn = 6;
  BitPlanes planes;
  for (const std::size_t total : {1ul, 63ul, 64ul, 65ul, 130ul, 200ul}) {
    const std::uint64_t seed = kBaseSeed + 7000 + total;
    Rng rng(seed);
    std::vector<BitVec> stream;
    for (std::size_t i = 0; i < total; ++i) {
      BitVec cw = random_bits(n, rng);
      for (std::size_t b = 512; b < n; ++b) cw.reset(b);
      bch.encode(cw);
      inject(cw, rng, 6);
      stream.push_back(std::move(cw));
    }
    std::vector<std::uint32_t> out(BitPlanes::kMaxLines * nsyn);
    for (std::size_t base = 0; base < total; base += BitPlanes::kMaxLines) {
      const std::size_t count = std::min(BitPlanes::kMaxLines, total - base);
      planes.reset(n, count);
      for (std::size_t i = 0; i < count; ++i) {
        planes.load_line(i, stream[base + i].words());
      }
      planes.finalize();
      bch.batch_syndromes(planes, out.data());
      for (std::size_t i = 0; i < count; ++i) {
        const auto horner = bch.syndromes(stream[base + i]);
        for (std::size_t j = 0; j < nsyn; ++j) {
          ASSERT_EQ(out[i * nsyn + j], horner[j])
              << "seed " << seed << " total " << total << " line " << base + i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// LineCodec::fully_clean_batch vs per-line fully_clean
// ---------------------------------------------------------------------------

TEST(BatchCodec, FullyCleanBatchMatchesPerLine) {
  // ECC-1 (Hamming inner code) and ECC-2 (BCH inner code), with fault
  // masks that produce clean lines, inner-dirty lines, and the nasty case
  // of inner-clean lines whose CRC fails (faults aliasing to a codeword).
  for (const int t : {1, 2}) {
    const LineCodec codec(t);
    BitPlanes planes;
    for (int trial = 0; trial < 1500; ++trial) {
      const std::uint64_t seed =
          kBaseSeed + 8000 + static_cast<std::uint64_t>(t * 100000 + trial);
      Rng rng(seed);
      const std::size_t count = kWidths[trial % std::size(kWidths)];
      std::vector<BitVec> batch;
      for (std::size_t i = 0; i < count; ++i) {
        BitVec stored = codec.encode(random_bits(LineCodec::kDataBits, rng));
        inject(stored, rng, 8);
        batch.push_back(std::move(stored));
      }
      const std::uint64_t mask = codec.fully_clean_batch(batch, planes);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ((mask >> i) & 1u, codec.fully_clean(batch[i]) ? 1u : 0u)
            << "seed " << seed << " t " << t << " line " << i;
      }
      ASSERT_EQ(mask & ~planes.lane_mask(), 0u) << "seed " << seed << " t " << t;
    }
  }
}

// ---------------------------------------------------------------------------
// CRC-31 kernel dispatch
// ---------------------------------------------------------------------------

// Restores the default dispatch even when an assertion bails out early —
// force_kernel is process-wide.
struct KernelRestore {
  ~KernelRestore() { Crc31::force_kernel(CrcKernel::kAuto); }
};

TEST(CrcDispatch, ForcedKernelsAllProduceTheOracleDigest) {
  KernelRestore restore;
  const Crc31 crc;
  std::vector<CrcKernel> kernels = {CrcKernel::kBitSerial, CrcKernel::kByteTable,
                                    CrcKernel::kSlicing8};
  if (Crc31::clmul_supported()) kernels.push_back(CrcKernel::kClmul);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t seed = kBaseSeed + 9000 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    const std::size_t n = 1 + rng.next_below(700);
    const BitVec data = random_bits(n, rng);
    const std::uint32_t oracle = crc.compute_bitserial(data, n);
    for (const CrcKernel k : kernels) {
      Crc31::force_kernel(k);
      ASSERT_EQ(Crc31::active_kernel(), k) << to_string(k);
      ASSERT_EQ(crc.compute(data, n), oracle)
          << "seed " << seed << " len " << n << " kernel " << to_string(k);
    }
  }
  Crc31::force_kernel(CrcKernel::kAuto);
  const CrcKernel resolved = Crc31::active_kernel();
  ASSERT_NE(resolved, CrcKernel::kAuto);
  ASSERT_EQ(resolved, Crc31::clmul_supported() ? CrcKernel::kClmul
                                               : CrcKernel::kSlicing8);
}

TEST(CrcDispatch, KernelNamesParse) {
  ASSERT_EQ(Crc31::kernel_from_name("auto"), CrcKernel::kAuto);
  ASSERT_EQ(Crc31::kernel_from_name("bit_serial"), CrcKernel::kBitSerial);
  ASSERT_EQ(Crc31::kernel_from_name("byte_table"), CrcKernel::kByteTable);
  ASSERT_EQ(Crc31::kernel_from_name("slicing8"), CrcKernel::kSlicing8);
  ASSERT_EQ(Crc31::kernel_from_name("clmul"), CrcKernel::kClmul);
  for (const CrcKernel k : {CrcKernel::kAuto, CrcKernel::kBitSerial,
                            CrcKernel::kByteTable, CrcKernel::kSlicing8,
                            CrcKernel::kClmul}) {
    ASSERT_EQ(Crc31::kernel_from_name(to_string(k)), k);
  }
}

TEST(CrcDispatchDeathTest, UnknownKernelNameAbortsLoudly) {
  // A typo in SUDOKU_CRC31_KERNEL must never silently fall back to a
  // different kernel.
  ASSERT_DEATH(Crc31::kernel_from_name("bogus"), "unknown CRC-31 kernel");
  ASSERT_DEATH(Crc31::kernel_from_name(""), "unknown CRC-31 kernel");
}

TEST(CrcDispatch, ClmulKernelMatchesOracleAcrossLengths) {
  if (!Crc31::clmul_supported()) GTEST_SKIP() << "host lacks pclmulqdq";
  const Crc31 crc;
  Rng rng(kBaseSeed + 10000);
  const BitVec data = random_bits(1201, rng);
  // Every boundary the folding loop + scalar tail can split on: below one
  // 128-bit chunk, exactly at chunk/word/byte edges, and ragged tails.
  for (const std::size_t n :
       {0ul, 1ul, 31ul, 63ul, 64ul, 65ul, 127ul, 128ul, 129ul, 191ul, 192ul,
        255ul, 256ul, 257ul, 300ul, 383ul, 384ul, 512ul, 543ul, 553ul, 700ul,
        896ul, 1024ul, 1025ul, 1152ul, 1201ul}) {
    ASSERT_EQ(crc.compute_clmul(data, n), crc.compute_bitserial(data, n))
        << "len " << n;
  }
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t seed = kBaseSeed + 10001 + static_cast<std::uint64_t>(trial);
    Rng trng(seed);
    const std::size_t n = trng.next_below(1202);
    const BitVec d = random_bits(n == 0 ? 1 : n, trng);
    ASSERT_EQ(crc.compute_clmul(d, n), crc.compute_bitserial(d, n))
        << "seed " << seed << " len " << n;
  }
}

}  // namespace
}  // namespace sudoku
